// Common result type for the DAG generators: the graph plus the intended
// structural classification (tests cross-check it against core::classify)
// and human-readable notes about the construction.
#pragma once

#include <string>

#include "core/graph.hpp"

namespace wsf::graphs {

/// Tri-state expectation: -1 = unspecified, 0 = must be false, 1 = must be
/// true. Tests compare against core::classify on every generated graph.
struct Expectation {
  int structured = -1;
  int single_touch = -1;
  int local_touch = -1;
  int fork_join = -1;
  int single_touch_super = -1;
  int local_touch_super = -1;
};

struct GeneratedDag {
  core::Graph graph;
  std::string name;
  /// Short description of the construction and its paper reference.
  std::string notes;
  Expectation expect;
};

}  // namespace wsf::graphs
