#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "core/builder.hpp"
#include "graphs/generators.hpp"
#include "support/check.hpp"

namespace wsf::graphs {

GeneratedDag fig5a(const std::vector<std::uint32_t>& touch_order) {
  const auto count = static_cast<std::uint32_t>(touch_order.size());
  WSF_REQUIRE(count >= 1, "fig5a needs at least one future");
  {
    std::vector<std::uint32_t> sorted(touch_order);
    std::sort(sorted.begin(), sorted.end());
    for (std::uint32_t i = 0; i < count; ++i)
      WSF_REQUIRE(sorted[i] == i,
                  "touch_order must be a permutation of 0.." << count - 1);
  }
  core::GraphBuilder b;
  const auto main = b.main_thread();
  std::vector<core::ThreadId> futures(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const auto fk = b.fork(main, core::kNoBlock,
                           "create[" + std::to_string(i) + "]");
    b.step(fk.future_thread);  // the future's computation
    futures[i] = fk.future_thread;
  }
  b.step(main, core::kNoBlock, "w");
  for (std::uint32_t idx : touch_order)
    b.touch(main, futures[idx], core::kNoBlock,
            "touch[" + std::to_string(idx) + "]");

  // Fork-join programs can only touch in LIFO (reverse-creation) order.
  bool lifo = true;
  for (std::uint32_t i = 0; i < count; ++i)
    if (touch_order[i] != count - 1 - i) lifo = false;

  GeneratedDag d;
  d.graph = b.finish();
  d.name = "fig5a";
  d.notes = "Figure 5(a): futures touched in a chosen (e.g. priority) "
            "order — structured single-touch for every order, fork-join "
            "only for the reverse order";
  d.expect = {.structured = 1,
              .single_touch = 1,
              .local_touch = 1,
              .fork_join = lifo ? 1 : 0,
              .single_touch_super = 1,
              .local_touch_super = 1};
  return d;
}

GeneratedDag fig5b(std::uint32_t body_len) {
  WSF_REQUIRE(body_len >= 1, "fig5b needs a future body");
  core::GraphBuilder b;
  const auto main = b.main_thread();
  // MethodB: Future x = some computation;
  const auto fx = b.fork(main, core::kNoBlock, "create-x");
  for (std::uint32_t i = 0; i < body_len; ++i) b.step(fx.future_thread);
  // Future y = MethodC(x): x is passed to the new thread...
  const auto fc = b.fork(main, core::kNoBlock, "create-y");
  // ...which touches it (MethodC's f.touch()).
  b.touch(fc.future_thread, fx.future_thread, core::kNoBlock, "touch-x");
  for (std::uint32_t i = 0; i < body_len; ++i) b.step(fc.future_thread);
  // The main thread finally touches y.
  b.step(main);
  b.touch(main, fc.future_thread, core::kNoBlock, "touch-y");

  GeneratedDag d;
  d.graph = b.finish();
  d.name = "fig5b";
  d.notes = "Figure 5(b): a future passed to another thread that touches "
            "it — structured single-touch, not local-touch, not fork-join";
  d.expect = {.structured = 1,
              .single_touch = 1,
              .local_touch = 0,
              .fork_join = 0,
              .single_touch_super = 1,
              .local_touch_super = 0};
  return d;
}

}  // namespace wsf::graphs
