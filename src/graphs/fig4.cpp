#include "core/builder.hpp"
#include "graphs/generators.hpp"
#include "support/check.hpp"

#include <cstdint>
#include <string>

namespace wsf::graphs {

GeneratedDag fig4(std::uint32_t delay, bool lifo_touch_order) {
  WSF_REQUIRE(delay >= 1, "fig4 needs a delay chain");
  core::GraphBuilder b;
  const auto main = b.main_thread();
  for (std::uint32_t i = 0; i < delay; ++i)
    b.step(main, core::kNoBlock, "d[" + std::to_string(i + 1) + "]");
  const auto f1 = b.fork(main, core::kNoBlock, "u1");
  b.step(f1.future_thread);
  const auto f2 = b.fork(main, core::kNoBlock, "u2");
  b.step(f2.future_thread);
  b.step(main, core::kNoBlock, "w");
  if (lifo_touch_order) {
    b.touch(main, f2.future_thread, core::kNoBlock, "v2");
    b.touch(main, f1.future_thread, core::kNoBlock, "v1");
  } else {
    b.touch(main, f1.future_thread, core::kNoBlock, "v1");
    b.touch(main, f2.future_thread, core::kNoBlock, "v2");
  }

  GeneratedDag d;
  d.graph = b.finish();
  d.name = "fig4";
  d.notes = "Figure 4: the structured counterpart of Figure 3 — touches "
            "live after the forks, so they can never be checked before "
            "their future threads are spawned";
  d.expect = {.structured = 1,
              .single_touch = 1,
              .local_touch = 1,
              .fork_join = lifo_touch_order ? 1 : 0,
              .single_touch_super = 1,
              .local_touch_super = 1};
  return d;
}

}  // namespace wsf::graphs
