#include "core/builder.hpp"
#include "graphs/generators.hpp"
#include "support/check.hpp"

#include <cstdint>
#include <string>

namespace wsf::graphs {

GeneratedDag fig3(std::uint32_t delay) {
  WSF_REQUIRE(delay >= 1, "fig3 needs a delay chain");
  core::GraphBuilder b;
  const auto main = b.main_thread();

  // The root forks the *producer* side T_L: a delay chain followed by two
  // forks u1, u2 spawning the future threads Tf1, Tf2. The main thread
  // continues to x and immediately touches both futures — before the forks
  // that spawn them have run. This is the Figure 3 shape: a thief that
  // steals x checks v1/v2 before u1/u2 execute.
  const auto tl = b.fork(main, core::kNoBlock, "root-fork", core::kNoBlock,
                         "d[1]");
  const auto left = tl.future_thread;
  for (std::uint32_t i = 1; i < delay; ++i)
    b.step(left, core::kNoBlock, "d[" + std::to_string(i + 1) + "]");
  const auto f1 = b.fork(left, core::kNoBlock, "u1");
  b.step(f1.future_thread);  // Tf1 body
  const auto f2 = b.fork(left, core::kNoBlock, "u2");
  b.step(f2.future_thread);  // Tf2 body
  b.step(left, core::kNoBlock, "lst");

  b.step(main, core::kNoBlock, "x");
  b.touch(main, f1.future_thread, core::kNoBlock, "v1");
  b.touch(main, f2.future_thread, core::kNoBlock, "v2");
  b.touch(main, left, core::kNoBlock, "je");

  GeneratedDag d;
  d.graph = b.finish();
  d.name = "fig3";
  d.notes = "Figure 3: unstructured futures — the touches v1, v2 are "
            "checked before their future threads are spawned when a thief "
            "steals x";
  d.expect = {.structured = 0,
              .single_touch = 0,
              .local_touch = 0,
              .fork_join = 0,
              .single_touch_super = 0,
              .local_touch_super = 0};
  return d;
}

}  // namespace wsf::graphs
