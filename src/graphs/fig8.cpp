#include <cstddef>
#include <cstdint>
#include <string>

#include "core/builder.hpp"
#include "graphs/generators.hpp"
#include "support/check.hpp"

namespace wsf::graphs {

// Defined in fig7.cpp.
namespace detail7 {
void emit_fig7a_tail(core::GraphBuilder& b, core::ThreadId host,
                     std::uint32_t n, std::size_t cache_lines,
                     core::ThreadId carried, const std::string& prefix);
}  // namespace detail7

namespace {

/// One branching parity stage (paper Figure 8): the branch carries a future
/// to touch; it forks two fresh single-node futures (at u and x), touches
/// the carried one (at v), then splits into two sub-branches that carry the
/// fresh futures. Leaves end in the Figure 7(a) tail.
void emit_branch(core::GraphBuilder& b, core::ThreadId tid,
                 core::ThreadId carried, std::uint32_t depth, std::uint32_t n,
                 std::size_t cache_lines, const std::string& prefix) {
  if (depth == 0) {
    detail7::emit_fig7a_tail(b, tid, n, cache_lines, carried, prefix);
    return;
  }
  const auto fa = b.fork(tid, core::kNoBlock, prefix + "u", core::kNoBlock,
                         prefix + "su");
  const auto fx = b.fork(tid, core::kNoBlock, prefix + "x", core::kNoBlock,
                         prefix + "sx");
  b.step(tid, core::kNoBlock, prefix + "w");
  b.touch(tid, carried, core::kNoBlock, prefix + "v");
  const auto fy = b.fork(tid, core::kNoBlock, prefix + "y");
  emit_branch(b, fy.future_thread, fa.future_thread, depth - 1, n,
              cache_lines, prefix + "L.");
  emit_branch(b, tid, fx.future_thread, depth - 1, n, cache_lines,
              prefix + "R.");
  b.touch(tid, fy.future_thread, core::kNoBlock, prefix + "j");
}

}  // namespace

GeneratedDag fig8(std::uint32_t depth, std::uint32_t n,
                  std::size_t cache_lines) {
  core::GraphBuilder b;
  const auto main = b.main_thread();
  b.step(main);
  auto carried =
      b.fork(main, core::kNoBlock, "r", core::kNoBlock, "s[1]").future_thread;
  if (depth % 2 == 0) {
    // The tail's cheap/deviated parity alternates with the number of stages
    // on a root-to-leaf path (as in Figure 7(b), where k must be even).
    // Insert one non-branching stage so every path has odd stage count and
    // the *sequential* execution stays in the cheap state.
    const auto pad =
        b.fork(main, core::kNoBlock, "pad.u", core::kNoBlock, "pad.s");
    b.step(main, core::kNoBlock, "pad.w");
    b.touch(main, carried, core::kNoBlock, "pad.v");
    carried = pad.future_thread;
  }
  emit_branch(b, main, carried, depth, n, cache_lines, "b.");
  GeneratedDag d;
  d.graph = b.finish();
  d.name = "fig8";
  d.notes = "Figure 8: binary tree of parity stages (t = Θ(2^depth) "
            "touches); one steal of s[1] under parent-first delivers every "
            "leaf's 7(a) tail deviated: Ω(t·T∞) deviations, Ω(C·t·T∞) "
            "additional misses; the sequential execution incurs O(C + t)";
  d.expect = {.structured = 1,
              .single_touch = 1,
              .local_touch = 0,
              .fork_join = 0,
              .single_touch_super = 1,
              .local_touch_super = 0};
  return d;
}

}  // namespace wsf::graphs
