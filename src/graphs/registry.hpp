// Name-based generator registry for CLI tools and examples.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "graphs/generated.hpp"

namespace wsf::graphs {

/// Generic knobs every registered generator understands (each maps them to
/// its own parameters; unused knobs are ignored).
struct RegistryParams {
  /// Primary size parameter (chain length, tree depth, stage count…).
  std::uint32_t size = 8;
  /// Secondary size parameter (items, inner length…).
  std::uint32_t size2 = 4;
  /// Cache lines C for block-annotated constructions (0 = no blocks).
  std::size_t cache_lines = 0;
  /// Seed for the random families.
  std::uint64_t seed = 1;
};

/// Instantiates the named construction ("fig2", "fig3", "fig4", "fig5a",
/// "fig5b", "fig6a", "fig6b", "fig6c", "fig7a", "fig7b", "fig8",
/// "forkjoin", "fib", "chain", "future-chain", "pipeline",
/// "random-single-touch", "random-local-touch").
/// Throws wsf::CheckError for unknown names.
GeneratedDag make_named(const std::string& name, const RegistryParams& p);

/// All registered names, for --help output.
std::vector<std::string> registry_names();

}  // namespace wsf::graphs
