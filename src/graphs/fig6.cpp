#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "graphs/detail.hpp"
#include "graphs/generators.hpp"
#include "support/check.hpp"

namespace wsf::graphs {
namespace {

/// Appends a fig6b spine to `host`: a *nested* chain of k spine threads,
/// where each spine fork R_j spawns the next spine level as its future
/// thread and keeps gadget j as its continuation. Under future-first a
/// processor dives down the spine pushing the k gadget starts into its
/// deque, so the gadget starts (f[1] forks) are the stealable tops and every
/// sleeping gadget owner's deque exposes its f[2] directly — which is what
/// lets Fig6Controller's rescue priority run the paper's 3-processor
/// rotation without deadlock. Layout per level j (1-based):
///   th[j-1]: … → R_j (fork th[j]) → gadget_j (future chain) → q_j (touch
///   of th[j]) → [becomes th[j-1]'s tail]
/// Roles get "<prefix>sg[j]." prefixes.
void emit_fig6b(core::GraphBuilder& b, core::ThreadId host, std::uint32_t k,
                std::uint32_t m, std::size_t cache_lines,
                const std::string& prefix) {
  WSF_REQUIRE(k >= 1, "fig6b needs at least one gadget");
  std::vector<core::ThreadId> th(k + 1);
  th[0] = host;
  for (std::uint32_t j = 1; j <= k; ++j) {
    const auto fk = b.fork(th[j - 1], core::kNoBlock,
                           prefix + "R[" + std::to_string(j) + "]");
    th[j] = fk.future_thread;
  }
  b.step(th[k], core::kNoBlock, prefix + "deep");
  // Bottom-up so every touch targets a completed thread.
  for (std::uint32_t j = k; j >= 1; --j) {
    detail::emit_future_chain(b, th[j - 1], m, /*rest_len=*/1, cache_lines,
                              prefix + "sg[" + std::to_string(j) + "].");
    b.touch(th[j - 1], th[j], core::kNoBlock,
            prefix + "q[" + std::to_string(j) + "]");
  }
}

/// Binary fork tree distributing `count` fig6b spines over future threads;
/// joins fork-join style.
void emit_tree(core::GraphBuilder& b, core::ThreadId tid, std::uint32_t lo,
               std::uint32_t hi, std::uint32_t k, std::uint32_t m,
               std::size_t cache_lines) {
  if (lo == hi) {
    emit_fig6b(b, tid, k, m, cache_lines,
               "grp[" + std::to_string(lo) + "].");
    return;
  }
  const std::uint32_t mid = lo + (hi - lo) / 2;
  const auto fk = b.fork(tid);
  emit_tree(b, fk.future_thread, lo, mid, k, m, cache_lines);
  emit_tree(b, tid, mid + 1, hi, k, m, cache_lines);
  b.touch(tid, fk.future_thread);
}

}  // namespace

GeneratedDag fig6a(std::uint32_t m, std::size_t cache_lines) {
  GeneratedDag d = future_chain(m, /*rest_len=*/1, cache_lines);
  d.name = "fig6a";
  d.notes = "Theorem 9 gadget (paper Fig. 6(a)): one steal costs Θ(m) "
            "deviations and Θ(m·C) additional misses under future-first";
  return d;
}

GeneratedDag fig6b(std::uint32_t k, std::uint32_t m,
                   std::size_t cache_lines) {
  core::GraphBuilder b;
  emit_fig6b(b, b.main_thread(), k, m, cache_lines, "");
  GeneratedDag d;
  d.graph = b.finish();
  d.name = "fig6b";
  d.notes = "Theorem 9 spine (paper Fig. 6(b)): k gadget dances with 3 "
            "processors give Θ(k·m) deviations, span Θ(k + m)";
  d.expect = {.structured = 1,
              .single_touch = 1,
              .local_touch = 0,
              .fork_join = 0,
              .single_touch_super = 1,
              .local_touch_super = 0};
  return d;
}

GeneratedDag fig6c(std::uint32_t groups, std::uint32_t k, std::uint32_t m,
                   std::size_t cache_lines) {
  WSF_REQUIRE(groups >= 1, "fig6c needs at least one group");
  core::GraphBuilder b;
  emit_tree(b, b.main_thread(), 1, groups, k, m, cache_lines);
  GeneratedDag d;
  d.graph = b.finish();
  d.name = "fig6c";
  d.notes = "Theorem 9 composition (paper Fig. 6(c)): `groups` parallel "
            "fig6b spines; 3·groups processors incur Ω(P·T∞²) deviations";
  d.expect = {.structured = 1,
              .single_touch = 1,
              .local_touch = 0,
              .fork_join = 0,
              .single_touch_super = 1,
              .local_touch_super = 0};
  return d;
}

}  // namespace wsf::graphs
