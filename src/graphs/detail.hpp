// Internal helpers shared by the generator translation units.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/builder.hpp"

namespace wsf::graphs::detail {

/// Appends a future-passing chain gadget (the certified-single-touch
/// realization of the paper's Figure 6(a); see generators.hpp) to thread
/// `host`. Roles are emitted with the given prefix: "<p>f[j]", "<p>g",
/// "<p>x[j]", "<p>s[j]", "<p>r[j]".
///
/// Layout (m forks, host thread H):
///   H:   … → f_1 → f_2 → … → f_m → g → x_m
///   t_1: body chain            (touch edge → x_1 in t_2)
///   t_j: start chain → x_{j-1} → rest chain   (touch edge → x_j in t_{j+1})
///
/// With cache_lines = C > 0: f_j access block C+1, t_1's body and every
/// rest chain ascend blocks 1…C, every start chain descends C…1 — the
/// palindrome that keeps the sequential execution at O(m + C) misses while
/// a stolen f-side thrashes with Θ(m·C).
void emit_future_chain(core::GraphBuilder& b, core::ThreadId host,
                       std::uint32_t m, std::uint32_t rest_len,
                       std::size_t cache_lines, const std::string& prefix);

}  // namespace wsf::graphs::detail
