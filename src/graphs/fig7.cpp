#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/builder.hpp"
#include "graphs/generators.hpp"
#include "support/check.hpp"

namespace wsf::graphs {
namespace detail7 {

/// Appends the Figure 7(a) tail to `host`:
///   u_t(fork {s}) → w → [touch of `carried` if valid] → x_1…x_n (forks of
///   the Z_i block-scan threads) → v_t (touch of {s}) → y_n … y_1.
/// Under parent-first, whether {s} is executed before or after the x_i
/// pushes decides cheap vs thrashing y/Z alternation.
void emit_fig7a_tail(core::GraphBuilder& b, core::ThreadId host,
                     std::uint32_t n, std::size_t cache_lines,
                     core::ThreadId carried, const std::string& prefix) {
  WSF_REQUIRE(n >= 1, "fig7a tail needs at least one Z thread");
  const auto C = static_cast<core::BlockId>(cache_lines);
  const core::BlockId m1 = cache_lines > 0 ? 1 : core::kNoBlock;
  const core::BlockId mC1 = cache_lines > 0 ? C + 1 : core::kNoBlock;

  const auto s = b.fork(host, core::kNoBlock, prefix + "ut", core::kNoBlock,
                        prefix + "s");
  b.step(host, core::kNoBlock, prefix + "w");
  if (carried != core::kInvalidThread)
    b.touch(host, carried, core::kNoBlock, prefix + "vin");

  std::vector<core::ThreadId> z(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const auto fk = b.fork(host, m1, prefix + "x[" + std::to_string(i + 1) +
                                        "]",
                           m1);
    z[i] = fk.future_thread;
    if (cache_lines > 0)
      for (core::BlockId j = 2; j <= C; ++j) b.step(z[i], j);
  }
  // Spacer: the last x_n fork's right child may not be the touch v.
  b.step(host, core::kNoBlock, prefix + "pv");
  b.touch(host, s.future_thread, core::kNoBlock, prefix + "v");
  for (std::uint32_t i = n; i >= 1; --i) {
    b.touch(host, z[i - 1], mC1, prefix + "y[" + std::to_string(i) + "]");
  }
}

}  // namespace detail7

GeneratedDag fig7a(std::uint32_t n, std::size_t cache_lines) {
  core::GraphBuilder b;
  // A root spacer before the tail keeps the first fork's children clean.
  b.step(b.main_thread());
  detail7::emit_fig7a_tail(b, b.main_thread(), n, cache_lines,
                           core::kInvalidThread, "");
  GeneratedDag d;
  d.graph = b.finish();
  d.name = "fig7a";
  d.notes = "Figure 7(a)/Figure 2: under parent-first, stealing {s} makes "
            "the touch v fire early and the y/Z alternation thrash: n "
            "deviations, Ω(n·C) additional misses";
  d.expect = {.structured = 1,
              .single_touch = 1,
              .local_touch = 1,
              .fork_join = 0,
              .single_touch_super = 1,
              .local_touch_super = 1};
  return d;
}

GeneratedDag fig7b(std::uint32_t k, std::uint32_t n,
                   std::size_t cache_lines) {
  if (k % 2 == 1) ++k;  // the paper's tail argument needs even k
  WSF_REQUIRE(k >= 2, "fig7b needs at least two stages");
  core::GraphBuilder b;
  const auto main = b.main_thread();
  b.step(main);
  // r forks the chain's first single-node future thread {s_1}.
  auto prev =
      b.fork(main, core::kNoBlock, "r", core::kNoBlock, "s[1]").future_thread;
  // Stages 1 … k-1: u_i forks {s_{i+1}}, w_i, v_i touches {s_i}.
  for (std::uint32_t i = 1; i < k; ++i) {
    const auto next = b.fork(main, core::kNoBlock,
                             "u[" + std::to_string(i) + "]", core::kNoBlock,
                             "s[" + std::to_string(i + 1) + "]");
    b.step(main, core::kNoBlock, "w[" + std::to_string(i) + "]");
    b.touch(main, prev, core::kNoBlock, "v[" + std::to_string(i) + "]");
    prev = next.future_thread;
  }
  // Stage k is the Figure 7(a) tail, with v_k = the carried touch of {s_k}.
  detail7::emit_fig7a_tail(b, main, n, cache_lines, prev, "tail.");
  GeneratedDag d;
  d.graph = b.finish();
  d.name = "fig7b";
  d.notes = "Figure 7(b): one steal of s_1 flips every stage's w_i/s_i "
            "parity and delivers the 7(a) tail in the deviated state: Ω(T∞) "
            "deviations, Ω(C·T∞) additional misses from a single steal";
  d.expect = {.structured = 1,
              .single_touch = 1,
              .local_touch = 1,
              .fork_join = 0,
              .single_touch_super = 1,
              .local_touch_super = 1};
  return d;
}

}  // namespace wsf::graphs
