#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "core/builder.hpp"
#include "graphs/generators.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace wsf::graphs {

// Declared in generators.hpp (ablation section).
GeneratedDag unstructured_mix(std::uint32_t pairs, double unstructured_frac,
                              std::uint32_t delay, std::uint64_t seed) {
  WSF_REQUIRE(pairs >= 1, "need at least one producer/consumer pair");
  WSF_REQUIRE(unstructured_frac >= 0.0 && unstructured_frac <= 1.0,
              "fraction must be in [0,1]");
  core::GraphBuilder b;
  support::Xoshiro256 rng(seed);
  const auto main = b.main_thread();

  // Decide per pair whether its consumer is forked BEFORE the producer
  // (Figure 3 shape — unstructured) or the touch happens in the main thread
  // after the producer's fork (Figure 4 shape — structured).
  std::vector<char> early(pairs);
  std::vector<core::ThreadId> consumer(pairs, core::kInvalidThread);
  for (std::uint32_t i = 0; i < pairs; ++i)
    early[i] = rng.chance(unstructured_frac) ? 1 : 0;

  // Phase 1: fork the early (unstructured) consumers; their bodies are
  // completed in phase 3 once the producers exist.
  for (std::uint32_t i = 0; i < pairs; ++i) {
    if (!early[i]) continue;
    const auto fk = b.fork(main, core::kNoBlock,
                           "cfork[" + std::to_string(i) + "]",
                           core::kNoBlock, "x[" + std::to_string(i) + "]");
    consumer[i] = fk.future_thread;
  }

  // Phase 2: delay chain, then the producers.
  for (std::uint32_t d = 0; d < delay; ++d) b.step(main);
  std::vector<core::ThreadId> producer(pairs);
  for (std::uint32_t i = 0; i < pairs; ++i) {
    const auto fk = b.fork(main, core::kNoBlock,
                           "u[" + std::to_string(i) + "]");
    b.step(fk.future_thread);  // producer body
    producer[i] = fk.future_thread;
  }
  b.step(main, core::kNoBlock, "w");

  // Phase 3: attach the touches. Early consumers touch inside their own
  // thread (checked before the producer's fork under a thieving schedule);
  // structured pairs touch in the main thread.
  for (std::uint32_t i = 0; i < pairs; ++i) {
    if (early[i]) {
      b.touch(consumer[i], producer[i], core::kNoBlock,
              "v[" + std::to_string(i) + "]");
      b.touch(main, consumer[i], core::kNoBlock,
              "join[" + std::to_string(i) + "]");
    } else {
      b.touch(main, producer[i], core::kNoBlock,
              "v[" + std::to_string(i) + "]");
    }
  }

  const bool any_early = std::any_of(early.begin(), early.end(),
                                     [](char c) { return c != 0; });
  GeneratedDag d;
  d.graph = b.finish();
  d.name = "unstructured-mix";
  d.notes = "ablation (paper §7): fraction " +
            std::to_string(unstructured_frac) +
            " of consumers forked before their producers (Figure 3 shape)";
  d.expect = {.structured = any_early ? 0 : 1,
              .single_touch = any_early ? 0 : 1,
              .local_touch = any_early ? 0 : 1,
              .fork_join = -1,
              .single_touch_super = any_early ? 0 : 1,
              .local_touch_super = any_early ? 0 : 1};
  return d;
}

}  // namespace wsf::graphs
