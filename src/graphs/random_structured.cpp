#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/builder.hpp"
#include "graphs/generators.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace wsf::graphs {
namespace {

using core::GraphBuilder;
using core::ThreadId;

core::BlockId random_block(support::Xoshiro256& rng,
                           const RandomDagParams& p) {
  if (p.blocks == 0) return core::kNoBlock;
  return static_cast<core::BlockId>(rng.below(p.blocks)) + 1;
}

/// Recursive single-touch builder. Invariants that keep the result a
/// structured single-touch computation (Definition 2) by construction:
///   * every spawned thread is either touched by its owner later in the
///     owning thread (any order — Figure 5(a)), passed to a child spawned
///     at a LATER fork (Figure 5(b); the touch then happens inside that
///     child, which is a descendant of the future's fork's right child),
///     or — when the super-final variant is on — left for the super final
///     node (Definition 13);
///   * children are built eagerly and completely at their fork, so a touch
///     always targets the producer thread's final node.
struct SingleTouchBuilder {
  GraphBuilder& b;
  support::Xoshiro256 rng;
  const RandomDagParams& p;
  std::size_t nodes_made = 0;

  void build_thread(ThreadId tid, std::uint32_t depth,
                    std::optional<ThreadId> must_touch) {
    std::vector<ThreadId> owned;
    // The root thread keeps generating until the size target is met;
    // non-root threads have short random bodies.
    const bool is_root = depth == 0;
    const std::uint32_t steps = 2 + static_cast<std::uint32_t>(rng.below(5));
    bool last_was_fork = false;
    for (std::uint32_t i = 0;
         (is_root && nodes_made < p.target_nodes) || i < steps || must_touch;
         ++i) {
      if (!is_root && i > 64) break;  // bound non-root thread length
      const bool may_fork =
          depth < p.max_depth && nodes_made < p.target_nodes;
      if (may_fork && rng.chance(p.fork_prob)) {
        const auto fk = b.fork(tid, random_block(rng, p));
        nodes_made += 2;
        std::optional<ThreadId> pass;
        // Pass either a still-owned future or our own touch obligation to
        // the child (future forwarding).
        if (must_touch && rng.chance(p.pass_prob)) {
          pass = must_touch;
          must_touch.reset();
        } else if (!owned.empty() && rng.chance(p.pass_prob)) {
          const std::size_t idx = rng.below(owned.size());
          pass = owned[idx];
          owned.erase(owned.begin() + static_cast<std::ptrdiff_t>(idx));
        }
        build_thread(fk.future_thread, depth + 1, pass);
        owned.push_back(fk.future_thread);
        last_was_fork = true;
        continue;
      }
      if (must_touch && !last_was_fork && rng.chance(0.35)) {
        b.touch(tid, *must_touch, random_block(rng, p));
        ++nodes_made;
        must_touch.reset();
        last_was_fork = false;
        continue;
      }
      b.step(tid, random_block(rng, p));
      ++nodes_made;
      last_was_fork = false;
    }
    if (must_touch) {
      if (last_was_fork) b.step(tid);
      b.touch(tid, *must_touch, random_block(rng, p));
      ++nodes_made;
      last_was_fork = false;
    }
    // Touch the owned futures we did not pass on. Optionally leave some for
    // the super final node (side-effect futures, Definition 13).
    if (p.shuffle_touch_order) {
      for (std::size_t i = owned.size(); i > 1; --i) {
        const std::size_t j = rng.below(i);
        std::swap(owned[i - 1], owned[j]);
      }
    } else {
      // LIFO (fork-join) order.
      std::reverse(owned.begin(), owned.end());
    }
    for (ThreadId t : owned) {
      if (p.side_effect_prob > 0 && rng.chance(p.side_effect_prob))
        continue;  // left untouched; finish_super() collects it
      if (last_was_fork) {
        b.step(tid);
        ++nodes_made;
      }
      b.touch(tid, t, random_block(rng, p));
      ++nodes_made;
      last_was_fork = false;
    }
    if (last_was_fork) {
      // Never leave a thread's tail at a fork awaiting its right child
      // (the super-final edge or the owner's touch edge needs a clean tail).
      b.step(tid);
      ++nodes_made;
    }
  }
};

/// Recursive local-touch builder (Definition 3): every spawned thread is a
/// (possibly multi-future) producer whose result nodes are touched by the
/// spawning thread only, at random later positions.
struct LocalTouchBuilder {
  GraphBuilder& b;
  support::Xoshiro256 rng;
  const RandomDagParams& p;
  std::size_t nodes_made = 0;

  void build_thread(ThreadId tid, std::uint32_t depth) {
    // (producer node, produced-by thread) obligations to touch.
    std::vector<core::NodeId> obligations;
    const bool is_root = depth == 0;
    const std::uint32_t steps = 2 + static_cast<std::uint32_t>(rng.below(6));
    bool last_was_fork = false;
    for (std::uint32_t i = 0;
         (is_root && nodes_made < p.target_nodes) || i < steps; ++i) {
      const bool may_fork =
          depth < p.max_depth && nodes_made < p.target_nodes;
      if (may_fork && rng.chance(p.fork_prob)) {
        const auto fk = b.fork(tid, random_block(rng, p));
        nodes_made += 2;
        // The child produces 1–3 futures: its interior/final result nodes.
        const auto results =
            build_producer(fk.future_thread, depth + 1,
                           1 + static_cast<std::uint32_t>(rng.below(3)));
        obligations.insert(obligations.end(), results.begin(),
                           results.end());
        last_was_fork = true;
        continue;
      }
      if (!obligations.empty() && !last_was_fork && rng.chance(0.4)) {
        touch_one(tid, obligations);
        last_was_fork = false;
        continue;
      }
      b.step(tid, random_block(rng, p));
      ++nodes_made;
      last_was_fork = false;
    }
    while (!obligations.empty()) {
      if (last_was_fork) {
        b.step(tid);
        ++nodes_made;
        last_was_fork = false;
      }
      touch_one(tid, obligations);
    }
  }

  void touch_one(ThreadId tid, std::vector<core::NodeId>& obligations) {
    const std::size_t idx = rng.below(obligations.size());
    b.touch_node(tid, obligations[idx], random_block(rng, p));
    ++nodes_made;
    obligations.erase(obligations.begin() +
                      static_cast<std::ptrdiff_t>(idx));
  }

  /// Builds a producer thread computing `futures` results; returns the
  /// producer nodes carrying them (the last one is the thread's tail).
  std::vector<core::NodeId> build_producer(ThreadId tid, std::uint32_t depth,
                                           std::uint32_t futures) {
    build_thread(tid, depth);  // producers may themselves fork and consume
    std::vector<core::NodeId> results;
    for (std::uint32_t i = 0; i < futures; ++i) {
      results.push_back(b.step(tid, random_block(rng, p)));
      ++nodes_made;
    }
    return results;
  }
};

}  // namespace

GeneratedDag random_single_touch(const RandomDagParams& params) {
  core::GraphBuilder b;
  SingleTouchBuilder builder{b, support::Xoshiro256(params.seed), params};
  builder.build_thread(b.main_thread(), 0, std::nullopt);
  GeneratedDag d;
  const bool super = params.side_effect_prob > 0;
  d.graph = super ? b.finish_super() : b.finish();
  d.name = "random-single-touch";
  d.notes = "random structured single-touch DAG, seed " +
            std::to_string(params.seed);
  d.expect = {.structured = super ? -1 : 1,
              .single_touch = super ? -1 : 1,
              .local_touch = -1,
              .fork_join = params.shuffle_touch_order ? -1 : -1,
              .single_touch_super = 1,
              .local_touch_super = -1};
  return d;
}

GeneratedDag random_local_touch(const RandomDagParams& params) {
  core::GraphBuilder b;
  LocalTouchBuilder builder{b, support::Xoshiro256(params.seed), params};
  builder.build_thread(b.main_thread(), 0);
  GeneratedDag d;
  d.graph = b.finish();
  d.name = "random-local-touch";
  d.notes = "random structured local-touch DAG, seed " +
            std::to_string(params.seed);
  d.expect = {.structured = 1,
              .single_touch = -1,
              .local_touch = 1,
              .fork_join = -1,
              .single_touch_super = -1,
              .local_touch_super = 1};
  return d;
}

}  // namespace wsf::graphs
