#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/builder.hpp"
#include "graphs/generators.hpp"
#include "support/check.hpp"

namespace wsf::graphs {

GeneratedDag pipeline(std::uint32_t stages, std::uint32_t items,
                      std::size_t cache_lines) {
  WSF_REQUIRE(stages >= 1, "pipeline needs at least one producer stage");
  WSF_REQUIRE(items >= 1, "pipeline needs at least one item");
  core::GraphBuilder b;

  // Stage threads are nested: stage s-1 forks stage s at its start
  // (Definition 3: each future thread is touched only by its parent).
  std::vector<core::ThreadId> stage(stages + 1);
  stage[0] = b.main_thread();
  for (std::uint32_t s = 1; s <= stages; ++s) {
    const auto fk = b.fork(stage[s - 1], core::kNoBlock,
                           "fork[" + std::to_string(s) + "]");
    stage[s] = fk.future_thread;
  }
  // A fork's right child may not be a touch (model convention), so every
  // consumer gets a spacer between its stage fork and its first touch.
  for (std::uint32_t s = 0; s < stages; ++s)
    b.step(stage[s], core::kNoBlock, "pre[" + std::to_string(s) + "]");

  auto block_of = [&](std::uint32_t s, std::uint32_t i) -> core::BlockId {
    if (cache_lines == 0) return core::kNoBlock;
    return static_cast<core::BlockId>((s * items + i) % (cache_lines + 1)) +
           1;
  };

  // Producer nodes per stage; built innermost-first so touch edges always
  // point at existing nodes.
  std::vector<std::vector<core::NodeId>> produced(stages + 1);
  for (std::uint32_t i = 0; i < items; ++i) {
    produced[stages].push_back(
        b.step(stage[stages], block_of(stages, i),
               "p[" + std::to_string(stages) + "][" + std::to_string(i) +
                   "]"));
  }
  for (std::int32_t s = static_cast<std::int32_t>(stages) - 1; s >= 0; --s) {
    const auto su = static_cast<std::uint32_t>(s);
    for (std::uint32_t i = 0; i < items; ++i) {
      // Consume item i from the downstream stage, then produce our own
      // (the main thread, stage 0, only consumes).
      b.touch_node(stage[su], produced[su + 1][i], core::kNoBlock,
                   "t[" + std::to_string(su) + "][" + std::to_string(i) +
                       "]");
      if (su >= 1) {
        produced[su].push_back(
            b.step(stage[su], block_of(su, i),
                   "p[" + std::to_string(su) + "][" + std::to_string(i) +
                       "]"));
      }
    }
  }

  GeneratedDag d;
  d.graph = b.finish();
  d.name = "pipeline";
  d.notes = "local-touch pipeline (Definition 3), " +
            std::to_string(stages) + " producer stages x " +
            std::to_string(items) + " items; multi-future producer threads";
  const int single = items == 1 ? 1 : 0;
  d.expect = {.structured = 1,
              .single_touch = single,
              .local_touch = 1,
              .fork_join = single,
              .single_touch_super = single,
              .local_touch_super = 1};
  return d;
}

}  // namespace wsf::graphs
