#include "graphs/registry.hpp"

#include "graphs/generators.hpp"
#include "support/check.hpp"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace wsf::graphs {

GeneratedDag make_named(const std::string& name, const RegistryParams& p) {
  if (name == "chain") return serial_chain(p.size);
  if (name == "forkjoin") return binary_forkjoin_tree(p.size, p.size2);
  if (name == "fib") return fib_dag(p.size);
  if (name == "future-chain") return future_chain(p.size, p.size2,
                                                  p.cache_lines);
  if (name == "pipeline") return pipeline(p.size, p.size2, p.cache_lines);
  if (name == "fig2" || name == "fig7a") {
    GeneratedDag d = fig7a(p.size, p.cache_lines);
    if (name == "fig2") d.name = "fig2";
    return d;
  }
  if (name == "fig3") return fig3(p.size);
  if (name == "fig4") return fig4(p.size, /*lifo_touch_order=*/true);
  if (name == "fig5a") {
    // A fixed non-LIFO priority order over `size` futures.
    std::vector<std::uint32_t> order;
    for (std::uint32_t i = 0; i < p.size; ++i) order.push_back(i);
    if (order.size() >= 2) std::swap(order.front(), order.back());
    return fig5a(order);
  }
  if (name == "fig5b") return fig5b(p.size);
  if (name == "fig6a") return fig6a(p.size, p.cache_lines);
  if (name == "fig6b") return fig6b(p.size, p.size2, p.cache_lines);
  if (name == "fig6c") return fig6c(p.size2, p.size, p.size, p.cache_lines);
  if (name == "fig7b") return fig7b(p.size, p.size2, p.cache_lines);
  if (name == "fig8") return fig8(p.size, p.size2, p.cache_lines);
  if (name == "unstructured-mix")
    return unstructured_mix(p.size, 0.5, p.size2, p.seed);
  if (name == "random-single-touch") {
    RandomDagParams rp;
    rp.seed = p.seed;
    rp.target_nodes = p.size * 50;
    rp.blocks = p.cache_lines ? p.cache_lines * 2 : 0;
    return random_single_touch(rp);
  }
  if (name == "random-local-touch") {
    RandomDagParams rp;
    rp.seed = p.seed;
    rp.target_nodes = p.size * 50;
    rp.blocks = p.cache_lines ? p.cache_lines * 2 : 0;
    return random_local_touch(rp);
  }
  WSF_REQUIRE(false, "unknown construction '" << name << "'");
  return {};
}

std::vector<std::string> registry_names() {
  return {"chain",  "forkjoin", "fib",   "future-chain",
          "pipeline", "fig2",   "fig3",  "fig4",
          "fig5a",  "fig5b",    "fig6a", "fig6b",
          "fig6c",  "fig7a",    "fig7b", "fig8",
          "unstructured-mix",
          "random-single-touch", "random-local-touch"};
}

}  // namespace wsf::graphs
