#include "graphs/generators.hpp"

namespace wsf::graphs {

// Figure 2 of the paper replaces Spoonhower et al.'s one-touch gadget with a
// DAG on which a single touch costs Ω(C·T∞) additional misses under the
// parent-first policy. The paper notes the DAG "is similar to the DAG in
// Figure 7(a)", and the proof of Theorem 10 carries the analysis; we expose
// it as the fig7a construction under its Figure 2 name so bench E4 can sweep
// C directly. (No separate generator: the two figures share one gadget.)

}  // namespace wsf::graphs
