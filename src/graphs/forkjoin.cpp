#include "core/builder.hpp"
#include "graphs/generators.hpp"
#include "support/check.hpp"

#include <cstddef>
#include <cstdint>
#include <string>

namespace wsf::graphs {
namespace {

void build_tree(core::GraphBuilder& b, core::ThreadId tid,
                std::uint32_t depth, std::uint32_t leaf_work) {
  if (depth == 0) {
    for (std::uint32_t i = 0; i < leaf_work; ++i) b.step(tid);
    return;
  }
  // Cilk idiom: spawn the left subtree as a future thread, run the right
  // subtree inline, then join (touch) the spawned child.
  const auto fk = b.fork(tid);
  build_tree(b, fk.future_thread, depth - 1, leaf_work);
  build_tree(b, tid, depth - 1, leaf_work);
  b.touch(tid, fk.future_thread);
}

void build_fib(core::GraphBuilder& b, core::ThreadId tid, std::uint32_t n) {
  if (n < 2) {
    b.step(tid);
    return;
  }
  const auto fk = b.fork(tid);
  build_fib(b, fk.future_thread, n - 1);
  build_fib(b, tid, n - 2);
  b.touch(tid, fk.future_thread);  // join fib(n-1)
  b.step(tid);                     // the addition
}

}  // namespace

GeneratedDag binary_forkjoin_tree(std::uint32_t depth,
                                  std::uint32_t leaf_work) {
  WSF_REQUIRE(leaf_work >= 1, "leaves need at least one node");
  core::GraphBuilder b;
  build_tree(b, b.main_thread(), depth, leaf_work);
  GeneratedDag d;
  d.graph = b.finish();
  d.name = "forkjoin-tree";
  d.notes = "perfect binary fork-join tree, depth " + std::to_string(depth);
  d.expect = {.structured = 1,
              .single_touch = 1,
              .local_touch = 1,
              .fork_join = 1,
              .single_touch_super = 1,
              .local_touch_super = 1};
  return d;
}

GeneratedDag fib_dag(std::uint32_t n) {
  WSF_REQUIRE(n <= 24, "fib DAG grows exponentially; n <= 24");
  core::GraphBuilder b;
  build_fib(b, b.main_thread(), n);
  GeneratedDag d;
  d.graph = b.finish();
  d.name = "fib";
  d.notes = "fib(" + std::to_string(n) + ") spawn/join recursion";
  d.expect = {.structured = 1,
              .single_touch = 1,
              .local_touch = 1,
              .fork_join = 1,
              .single_touch_super = 1,
              .local_touch_super = 1};
  return d;
}

GeneratedDag serial_chain(std::size_t length) {
  WSF_REQUIRE(length >= 1, "chain needs at least one node");
  core::GraphBuilder b;
  for (std::size_t i = 1; i < length; ++i) b.step(b.main_thread());
  GeneratedDag d;
  d.graph = b.finish();
  d.name = "serial-chain";
  d.notes = "single thread, no futures";
  d.expect = {.structured = 1,
              .single_touch = 1,
              .local_touch = 1,
              .fork_join = 1,
              .single_touch_super = 1,
              .local_touch_super = 1};
  return d;
}

}  // namespace wsf::graphs
