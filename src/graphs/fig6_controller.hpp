// Adversarial schedule controller for the Theorem 9 lower-bound DAGs
// (fig6a / fig6b / fig6c). Reproduces the paper's executions generically by
// reacting to the role families emitted by the future-chain gadgets:
//
//   * a processor that executes a gadget's first fork "…f[1]" goes to sleep
//     holding the first link's body (it becomes the gadget's *owner*);
//   * any free processor preferentially steals a deque top tagged "…f[2]"
//     (the gadget's stolen fork chain) and runs the f-side solo;
//   * when the f-side reaches "…g", the owner wakes and replays the t-side,
//     incurring Θ(m) deviations per gadget (Θ(m·C) extra misses with cache
//     annotations).
//
// With fig6b/fig6c compositions and 3 (resp. 3·groups) processors, the pool
// self-organizes into the paper's rotation: finished owners steal the next
// spine fork, finished f-thieves free the next owner.
#pragma once

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sched/controller.hpp"
#include "sched/simulator.hpp"

namespace wsf::graphs {

class Fig6Controller : public sched::ScheduleController {
 public:
  void on_start(const sched::Simulator& sim) override {
    asleep_.assign(sim.num_procs(), 0);
    const auto& roles = sim.graph().all_roles();
    for (const auto& [role, node] : roles) {
      if (ends_with(role, "f[1]")) {
        // Gadget key = everything before the final "f[1]".
        sleep_at_[node] = role.substr(0, role.size() - 4);
      } else if (ends_with(role, "f[2]")) {
        f2_nodes_.insert(node);
      } else if (role == "g" || ends_with(role, ".g")) {
        wake_at_[node] =
            role.size() == 1 ? std::string() : role.substr(0, role.size() - 1);
      }
    }
  }

  bool awake(const sched::Simulator&, core::ProcId p) override {
    return !asleep_[p];
  }

  core::ProcId pick_victim(const sched::Simulator& sim,
                           core::ProcId thief) override {
    core::ProcId fallback = thief;
    for (core::ProcId q = 0; q < sim.num_procs(); ++q) {
      if (q == thief || sim.deque_empty(q)) continue;
      if (f2_nodes_.count(sim.deque_of(q).front())) return q;
      if (fallback == thief) fallback = q;
    }
    return fallback;
  }

  void on_execute(const sched::Simulator&, core::ProcId p,
                  core::NodeId v) override {
    if (auto it = sleep_at_.find(v); it != sleep_at_.end()) {
      asleep_[p] = 1;
      owner_[it->second] = p;
      return;
    }
    if (auto it = wake_at_.find(v); it != wake_at_.end()) {
      if (auto o = owner_.find(it->second); o != owner_.end())
        asleep_[o->second] = 0;
    }
  }

 private:
  static bool ends_with(const std::string& s, const std::string& suffix) {
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
  }

  std::vector<char> asleep_;
  std::unordered_map<core::NodeId, std::string> sleep_at_;  // node → gadget
  std::unordered_map<core::NodeId, std::string> wake_at_;   // node → gadget
  std::unordered_map<std::string, core::ProcId> owner_;     // gadget → owner
  std::unordered_set<core::NodeId> f2_nodes_;
};

}  // namespace wsf::graphs
