// Parameterized generators for every DAG construction in the paper plus the
// generic families (fork-join trees, pipelines, random structured DAGs) used
// by tests and benches. Each generator documents its mapping to the paper's
// figure and the schedule that realizes the claimed behaviour.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graphs/generated.hpp"

namespace wsf::graphs {

// ---------------------------------------------------------------------------
// Generic families
// ---------------------------------------------------------------------------

/// Single-thread chain of `length` nodes (no futures at all). Sanity baseline.
GeneratedDag serial_chain(std::size_t length);

/// Perfect binary fork-join tree of the given depth; each leaf is a chain of
/// `leaf_work` nodes. Cilk-style (spawn left subtree, run right inline, then
/// join). Structured single-touch, local-touch, and fork-join.
GeneratedDag binary_forkjoin_tree(std::uint32_t depth,
                                  std::uint32_t leaf_work = 1);

/// The fib(n) recursion DAG (spawn fib(n-1), run fib(n-2) inline, join, add).
GeneratedDag fib_dag(std::uint32_t n);

/// Future-passing chain — the paper's Figure 5(b) pattern iterated m times,
/// and the engine of our Theorem 9 lower bound (see fig6a below): the main
/// thread forks threads t_1 … t_m; each t_j's future is touched inside
/// t_{j+1} (passed to the next thread), t_m's inside the main thread. With
/// `cache_lines` = C > 0 the nodes are annotated with the m1…m{C+1} block
/// pattern that makes one steal cost Θ(m·C) additional misses under
/// future-first; with C = 0 the graph is block-free and one steal costs
/// Θ(m) deviations. `rest_len` pads t_j bodies when C = 0.
///
/// Roles: "f[j]" (fork of t_j), "g" (main spacer), "x[j]" (touch of t_j),
/// "s[j]" (first node of t_j), "r[j]" (last node of t_j).
GeneratedDag future_chain(std::uint32_t m, std::uint32_t rest_len,
                          std::size_t cache_lines);

/// Local-touch pipeline (Definition 3; Blelloch & Reid-Miller style): stage
/// threads are nested (stage s forks stage s+1), stage s+1 produces `items`
/// futures that stage s touches in order. Multi-future producer threads with
/// interior future parents; structured local-touch but not single-touch.
/// With cache_lines = C > 0, item i of stage s accesses block
/// (s*items + i) mod (C+1) to create reuse across stages.
GeneratedDag pipeline(std::uint32_t stages, std::uint32_t items,
                      std::size_t cache_lines = 0);

// ---------------------------------------------------------------------------
// Random structured families (property tests, Theorem 8/12 expectations)
// ---------------------------------------------------------------------------

struct RandomDagParams {
  std::uint64_t seed = 1;
  /// Approximate number of nodes to generate.
  std::size_t target_nodes = 400;
  /// Maximum thread-nesting depth.
  std::uint32_t max_depth = 8;
  /// Probability that a thread step forks a future thread.
  double fork_prob = 0.25;
  /// Probability that an owned future is passed to the next spawned child
  /// instead of touched locally (exercises Figure 5(b) passing).
  double pass_prob = 0.3;
  /// When true, touches happen in random (non-LIFO) order — still
  /// single-touch but not fork-join (Figure 5(a)).
  bool shuffle_touch_order = true;
  /// Number of distinct memory blocks to scatter over nodes (0 = none).
  std::size_t blocks = 0;
  /// Fraction of threads left untouched so that finish_super() gives them
  /// the super final node as their only touch (Definition 13). 0 disables
  /// the super final node entirely.
  double side_effect_prob = 0.0;
};

/// Random structured single-touch computation (Definition 2), optionally
/// with a super final node (Definition 13) when side_effect_prob > 0.
GeneratedDag random_single_touch(const RandomDagParams& params);

/// Random structured local-touch computation (Definition 3): every future
/// thread is a (possibly multi-future) producer touched only by its parent.
GeneratedDag random_local_touch(const RandomDagParams& params);

// ---------------------------------------------------------------------------
// Paper constructions
// ---------------------------------------------------------------------------

/// Figure 2 / Figure 7(a): structured single-touch DAG where ONE touch (the
/// touch v of future thread {s}) costs Ω(C·T∞) additional misses under the
/// parent-first policy. Main thread: u1 (forks {s}) → u2 → u3 → u4 →
/// x_1…x_n (each forking a C-node block-scan thread Z_i) → v (touch of s) →
/// y_n … y_1 (touches of Z_n … Z_1). Blocks: x_i→m1, Z_i→m1…mC, y_i→m{C+1}.
/// Sequential parent-first: Z's run before v ⇒ O(C) misses. If a thief
/// steals s early (roles "s"), v unblocks before the Z's ⇒ the y_i/Z_i
/// alternation thrashes: n deviations and Ω(C·n) additional misses.
GeneratedDag fig7a(std::uint32_t n, std::size_t cache_lines);

/// Figure 7(b): parity chain of k stages in front of a fig7a tail. One steal
/// of s_1 at the very beginning flips the execution parity of every stage
/// (w_i vs s_i order) and arrives at the tail in the deviated state:
/// Ω(T∞) deviations and Ω(C·T∞) additional misses from a single steal.
/// k is rounded up to even (the paper's requirement).
GeneratedDag fig7b(std::uint32_t k, std::uint32_t n,
                   std::size_t cache_lines);

/// Figure 8: binary tree of parity stages of the given depth (t = Θ(2^depth)
/// touches), each leaf ending in a fig7a tail. One steal at the root makes
/// every leaf arrive deviated: Ω(t·T∞) deviations, Ω(C·t·T∞) additional
/// misses, while the sequential execution incurs O(C + t) misses.
GeneratedDag fig8(std::uint32_t depth, std::uint32_t n,
                  std::size_t cache_lines);

/// Figure 3: an *unstructured* computation where touches can be checked
/// before their future threads are spawned. The root forks a consumer
/// thread [x → v1 → v2] whose touches v1, v2 consume futures that the main
/// thread only forks after a delay chain of `delay` nodes. Violates
/// Definition 1 (the classifier reports it); a thief that steals x reaches
/// the touches prematurely (SimResult::premature_touches > 0).
GeneratedDag fig3(std::uint32_t delay);

/// Figure 4: the structured counterpart of fig3 — same two futures, but the
/// touches live in the main thread after both forks. `lifo_touch_order`
/// selects fork-join (touch v2 then v1) or the non-LIFO order (still
/// structured single-touch; not fork-join).
GeneratedDag fig4(std::uint32_t delay, bool lifo_touch_order);

/// Figure 5(a): a thread creates `count` futures and touches them in the
/// given order (a permutation of 0…count-1). Any order is structured
/// single-touch; only the reverse order is fork-join.
GeneratedDag fig5a(const std::vector<std::uint32_t>& touch_order);

/// Figure 5(b): MethodB/MethodC — a future is created by the main thread and
/// passed to a second future thread, which touches it. Structured
/// single-touch, not local-touch, not fork-join.
GeneratedDag fig5b(std::uint32_t body_len);

/// Figure 6(a)-equivalent: one future_chain gadget with cache annotations.
/// Under future-first, ONE steal yields Θ(m) deviations and Θ(m·C)
/// additional misses while the sequential execution incurs O(m + C) misses.
/// (See DESIGN.md for the mapping between the paper's drawing and this
/// certified-single-touch realization.)
GeneratedDag fig6a(std::uint32_t m, std::size_t cache_lines);

/// Figure 6(b): a spine of k fig6a gadget threads. k gadget dances (3
/// processors, self-organizing via Fig6Controller) give Θ(k·m) deviations
/// with span Θ(k + m·C'): with m = k this is Θ(T∞²) deviations for constant
/// P — the paper's Figure 6(b).
GeneratedDag fig6b(std::uint32_t k, std::uint32_t m,
                   std::size_t cache_lines);

/// Figure 6(c): a binary fork tree spawning `groups` fig6b spines evaluated
/// in parallel by 3·groups processors: Θ(groups·k·m) = Ω(P·T∞²) deviations.
GeneratedDag fig6c(std::uint32_t groups, std::uint32_t k, std::uint32_t m,
                   std::size_t cache_lines);

// ---------------------------------------------------------------------------
// Ablation (Section 7 — "how far can these restrictions be weakened?")
// ---------------------------------------------------------------------------

/// Interpolates between Figure 4 (structured) and Figure 3 (unstructured):
/// `pairs` producer/consumer pairs of which a seeded random fraction
/// `unstructured_frac` has the consumer forked *before* its producer
/// (so its touch can be checked before the future thread is spawned).
/// With frac = 0 the DAG is structured single-touch; any early consumer
/// makes the classifier reject it and premature touches appear under
/// thieving schedules (bench_ablation_structure sweeps the fraction).
GeneratedDag unstructured_mix(std::uint32_t pairs, double unstructured_frac,
                              std::uint32_t delay, std::uint64_t seed);

}  // namespace wsf::graphs
