#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "graphs/detail.hpp"
#include "graphs/generators.hpp"
#include "support/check.hpp"

namespace wsf::graphs {

namespace detail {

void emit_future_chain(core::GraphBuilder& b, core::ThreadId host,
                       std::uint32_t m, std::uint32_t rest_len,
                       std::size_t cache_lines, const std::string& prefix) {
  WSF_REQUIRE(m >= 1, "future_chain needs at least one link");
  const auto C = static_cast<core::BlockId>(cache_lines);
  const core::BlockId poison = cache_lines > 0 ? C + 1 : core::kNoBlock;

  auto ascending = [&] {  // blocks 1…C
    std::vector<core::BlockId> v;
    for (core::BlockId i = 1; i <= C; ++i) v.push_back(i);
    return v;
  };
  auto descending = [&] {  // blocks C…1
    std::vector<core::BlockId> v;
    for (core::BlockId i = C; i >= 1; --i) v.push_back(i);
    return v;
  };
  auto plain = [&](std::uint32_t len) {
    return std::vector<core::BlockId>(std::max<std::uint32_t>(len, 1),
                                      core::kNoBlock);
  };

  // Forks f_1 … f_m in the host thread; each creates t_j's first node.
  std::vector<core::ThreadId> t(m);
  for (std::uint32_t j = 0; j < m; ++j) {
    // The future thread's first node is the head of t_1's body chain or of
    // t_j's start chain; blocks continue below.
    const core::BlockId first_block =
        cache_lines > 0 ? (j == 0 ? core::BlockId{1} : C) : core::kNoBlock;
    const auto fk =
        b.fork(host, poison, prefix + "f[" + std::to_string(j + 1) + "]",
               first_block, prefix + "s[" + std::to_string(j + 1) + "]");
    t[j] = fk.future_thread;
  }
  b.step(host, core::kNoBlock, prefix + "g");

  // t_1 body: the fork already created its first node (block 1); extend.
  if (cache_lines > 0) {
    for (core::BlockId i = 2; i <= C; ++i) b.step(t[0], i);
  } else {
    for (std::uint32_t i = 1; i < std::max<std::uint32_t>(rest_len, 1); ++i)
      b.step(t[0]);
  }
  b.set_role(t[0], prefix + "r[1]");

  // t_j (j >= 2): start chain (first node exists), touch of t_{j-1}, rest.
  for (std::uint32_t j = 1; j < m; ++j) {
    if (cache_lines > 0) {
      for (core::BlockId i = C - 1; i >= 1; --i) b.step(t[j], i);
    }
    b.touch(t[j], t[j - 1], core::kNoBlock,
            prefix + "x[" + std::to_string(j) + "]");
    if (cache_lines > 0) {
      b.chain(t[j], ascending());
    } else {
      b.chain(t[j], plain(rest_len));
    }
    b.set_role(t[j], prefix + "r[" + std::to_string(j + 1) + "]");
  }
  (void)descending;  // documented layout; descending is inlined above

  // The host touches the last link.
  b.touch(host, t[m - 1], core::kNoBlock,
          prefix + "x[" + std::to_string(m) + "]");
}

}  // namespace detail

GeneratedDag future_chain(std::uint32_t m, std::uint32_t rest_len,
                          std::size_t cache_lines) {
  core::GraphBuilder b;
  detail::emit_future_chain(b, b.main_thread(), m, rest_len, cache_lines, "");
  GeneratedDag d;
  d.graph = b.finish();
  d.name = "future-chain";
  d.notes = "Figure 5(b) passing chain, m=" + std::to_string(m) +
            (cache_lines ? ", C=" + std::to_string(cache_lines) : "");
  // With a single link the chain degenerates to one locally-touched future.
  const int local = m == 1 ? 1 : 0;
  d.expect = {.structured = 1,
              .single_touch = 1,
              .local_touch = local,
              .fork_join = local,
              .single_touch_super = 1,
              .local_touch_super = local};
  return d;
}

}  // namespace wsf::graphs
