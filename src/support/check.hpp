// Lightweight precondition / invariant checking used across the library.
//
// WSF_CHECK is always on (model invariants are cheap relative to simulation
// work, and silently-corrupt schedules would invalidate every experiment);
// WSF_DCHECK compiles away in release builds and is used on hot paths.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace wsf {

/// Thrown when a WSF_CHECK / WSF_REQUIRE condition fails. Carries the failing
/// expression, source location, and an optional user message.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* kind, const char* expr,
                                      const char* file, int line,
                                      const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

// Builds the optional streamed message lazily, only on failure.
class CheckMessage {
 public:
  template <typename T>
  CheckMessage& operator<<(const T& v) {
    os_ << v;
    return *this;
  }
  std::string str() const { return os_.str(); }

 private:
  std::ostringstream os_;
};

}  // namespace detail
}  // namespace wsf

/// Always-on invariant check. Usage: WSF_CHECK(x > 0) or
/// WSF_CHECK(x > 0, "x was " << x).
#define WSF_CHECK(cond, ...)                                             \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::wsf::detail::check_failed(                                       \
          "WSF_CHECK", #cond, __FILE__, __LINE__,                        \
          (::wsf::detail::CheckMessage{} << "" __VA_ARGS__).str());      \
    }                                                                    \
  } while (0)

/// Precondition check on public API boundaries (same behaviour, distinct
/// label so failures read as caller errors rather than internal bugs).
#define WSF_REQUIRE(cond, ...)                                           \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::wsf::detail::check_failed(                                       \
          "WSF_REQUIRE", #cond, __FILE__, __LINE__,                      \
          (::wsf::detail::CheckMessage{} << "" __VA_ARGS__).str());      \
    }                                                                    \
  } while (0)

#ifndef NDEBUG
#define WSF_DCHECK(cond, ...) WSF_CHECK(cond, __VA_ARGS__)
#else
#define WSF_DCHECK(cond, ...) \
  do {                        \
  } while (0)
#endif
