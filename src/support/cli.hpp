// Minimal command-line flag parser for bench/example binaries.
//
// Supports --name=value and --name value forms plus boolean switches
// (--verbose). Unknown flags are an error so typos in sweep scripts fail
// loudly instead of silently running the default experiment.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace wsf::support {

/// Declarative flag registry + parser.
///
/// Usage:
///   ArgParser args("bench_thm8");
///   auto& p = args.add_int("procs", 8, "simulated processors");
///   args.parse(argc, argv);   // throws CheckError on bad input
///   use(p.value);
class ArgParser {
 public:
  explicit ArgParser(std::string program_description);

  struct IntFlag {
    std::int64_t value;
  };
  struct DoubleFlag {
    double value;
  };
  struct StringFlag {
    std::string value;
  };
  struct BoolFlag {
    bool value;
  };

  /// Registers a flag; the returned reference stays valid for the parser's
  /// lifetime and holds the parsed (or default) value after parse().
  IntFlag& add_int(const std::string& name, std::int64_t def,
                   const std::string& help);
  DoubleFlag& add_double(const std::string& name, double def,
                         const std::string& help);
  StringFlag& add_string(const std::string& name, const std::string& def,
                         const std::string& help);
  BoolFlag& add_bool(const std::string& name, bool def,
                     const std::string& help);

  /// Parses argv. Handles --help by printing usage and returning false (the
  /// caller should exit 0). Throws wsf::CheckError on malformed input.
  bool parse(int argc, const char* const* argv);

  /// Renders the usage/help text.
  std::string usage() const;

 private:
  enum class Kind { Int, Double, String, Bool };
  struct Entry {
    Kind kind;
    std::string help;
    std::string default_repr;
    std::size_t index;  // into the per-kind storage deque
  };

  void set_value(const std::string& name, const std::string& value);

  std::string description_;
  std::map<std::string, Entry> entries_;
  // Heap-owned flag cells so the references handed out by add_*() stay valid
  // as more flags are registered.
  std::vector<std::unique_ptr<IntFlag>> ints_;
  std::vector<std::unique_ptr<DoubleFlag>> doubles_;
  std::vector<std::unique_ptr<StringFlag>> strings_;
  std::vector<std::unique_ptr<BoolFlag>> bools_;
};

}  // namespace wsf::support
