#include "support/cli.hpp"

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <utility>

#include "support/check.hpp"

namespace wsf::support {

ArgParser::ArgParser(std::string program_description)
    : description_(std::move(program_description)) {}

ArgParser::IntFlag& ArgParser::add_int(const std::string& name,
                                       std::int64_t def,
                                       const std::string& help) {
  WSF_REQUIRE(!entries_.count(name), "duplicate flag --" << name);
  ints_.push_back(std::make_unique<IntFlag>(IntFlag{def}));
  auto* f = ints_.back().get();
  entries_[name] = {Kind::Int, help, std::to_string(def), ints_.size() - 1};
  return *f;
}

ArgParser::DoubleFlag& ArgParser::add_double(const std::string& name,
                                             double def,
                                             const std::string& help) {
  WSF_REQUIRE(!entries_.count(name), "duplicate flag --" << name);
  doubles_.push_back(std::make_unique<DoubleFlag>(DoubleFlag{def}));
  auto* f = doubles_.back().get();
  entries_[name] = {Kind::Double, help, std::to_string(def),
                    doubles_.size() - 1};
  return *f;
}

ArgParser::StringFlag& ArgParser::add_string(const std::string& name,
                                             const std::string& def,
                                             const std::string& help) {
  WSF_REQUIRE(!entries_.count(name), "duplicate flag --" << name);
  strings_.push_back(std::make_unique<StringFlag>(StringFlag{def}));
  auto* f = strings_.back().get();
  entries_[name] = {Kind::String, help, def, strings_.size() - 1};
  return *f;
}

ArgParser::BoolFlag& ArgParser::add_bool(const std::string& name, bool def,
                                         const std::string& help) {
  WSF_REQUIRE(!entries_.count(name), "duplicate flag --" << name);
  bools_.push_back(std::make_unique<BoolFlag>(BoolFlag{def}));
  auto* f = bools_.back().get();
  entries_[name] = {Kind::Bool, help, def ? "true" : "false",
                    bools_.size() - 1};
  return *f;
}

void ArgParser::set_value(const std::string& name, const std::string& value) {
  auto it = entries_.find(name);
  WSF_REQUIRE(it != entries_.end(), "unknown flag --" << name);
  const Entry& e = it->second;
  switch (e.kind) {
    case Kind::Int: {
      char* end = nullptr;
      const long long v = std::strtoll(value.c_str(), &end, 10);
      WSF_REQUIRE(end && *end == '\0',
                  "flag --" << name << " expects an integer, got '" << value
                            << "'");
      ints_[e.index]->value = v;
      break;
    }
    case Kind::Double: {
      char* end = nullptr;
      const double v = std::strtod(value.c_str(), &end);
      WSF_REQUIRE(end && *end == '\0',
                  "flag --" << name << " expects a number, got '" << value
                            << "'");
      doubles_[e.index]->value = v;
      break;
    }
    case Kind::String:
      strings_[e.index]->value = value;
      break;
    case Kind::Bool:
      WSF_REQUIRE(value == "true" || value == "false" || value == "1" ||
                      value == "0",
                  "flag --" << name << " expects true/false, got '" << value
                            << "'");
      bools_[e.index]->value = (value == "true" || value == "1");
      break;
  }
}

bool ArgParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      return false;
    }
    WSF_REQUIRE(arg.rfind("--", 0) == 0, "expected --flag, got '" << arg
                                                                  << "'");
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      set_value(arg.substr(0, eq), arg.substr(eq + 1));
      continue;
    }
    auto it = entries_.find(arg);
    WSF_REQUIRE(it != entries_.end(), "unknown flag --" << arg);
    if (it->second.kind == Kind::Bool) {
      bools_[it->second.index]->value = true;  // bare switch form
      continue;
    }
    WSF_REQUIRE(i + 1 < argc, "flag --" << arg << " needs a value");
    set_value(arg, argv[++i]);
  }
  return true;
}

std::string ArgParser::usage() const {
  std::ostringstream os;
  os << description_ << "\n\nFlags:\n";
  for (const auto& [name, e] : entries_) {
    os << "  --" << name << "  (default: " << e.default_repr << ")\n      "
       << e.help << "\n";
  }
  return os.str();
}

}  // namespace wsf::support
