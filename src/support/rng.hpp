// Deterministic, seedable pseudo-random number generation.
//
// Every randomized component in this repository (victim selection, stall
// injection, random DAG generation) draws from these generators so that every
// experiment is exactly reproducible from its seed. We implement
// SplitMix64 (for seeding) and xoshiro256** (for streams) rather than using
// std::mt19937 because their state is trivially copyable, they are fast, and
// their output is identical across standard library implementations.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace wsf::support {

/// SplitMix64: tiny generator used to expand a single 64-bit seed into
/// well-distributed state for other generators (Steele et al.).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  /// Returns the next 64-bit value in the stream.
  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: general-purpose generator (Blackman & Vigna). Satisfies the
/// C++ UniformRandomBitGenerator concept so it can drive std distributions,
/// though we provide bias-free helpers below and prefer those.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words of state from a single seed via SplitMix64.
  explicit Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) {
    SplitMix64 sm(seed);
    for (auto& w : state_) w = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) using Lemire's rejection method
  /// (bias-free). bound must be nonzero.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p) { return uniform01() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

/// Derives a fresh, decorrelated seed for a named sub-stream. Used to give
/// each simulated processor / generator its own independent stream from one
/// experiment seed.
std::uint64_t derive_seed(std::uint64_t base, std::uint64_t stream_index);

}  // namespace wsf::support
