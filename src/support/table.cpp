#include "support/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "support/check.hpp"

namespace wsf::support {

std::string format_double(double v) {
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  // Integers print without a decimal point; otherwise 4 decimals, trimmed.
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.4f", v);
  std::string s = buf;
  while (!s.empty() && s.back() == '0') s.pop_back();
  if (!s.empty() && s.back() == '.') s.pop_back();
  return s;
}

std::string csv_field(const std::string& cell) {
  if (cell.find_first_of(",\"\n\r") == std::string::npos) return cell;
  std::string quoted;
  quoted.reserve(cell.size() + 2);
  quoted += '"';
  for (const char ch : cell) {
    if (ch == '"') quoted += '"';
    quoted += ch;
  }
  quoted += '"';
  return quoted;
}

std::string csv_line(const std::vector<std::string>& cells) {
  // A lone empty field would render as a blank line, which the parser
  // (correctly) skips; quote it so the record round-trips.
  if (cells.size() == 1 && cells[0].empty()) return "\"\"\n";
  std::string line;
  for (std::size_t c = 0; c < cells.size(); ++c) {
    if (c) line += ',';
    line += csv_field(cells[c]);
  }
  line += '\n';
  return line;
}

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  WSF_REQUIRE(!headers_.empty(), "a table needs at least one column");
}

Table& Table::row() {
  rows_.emplace_back();
  rows_.back().reserve(headers_.size());
  return *this;
}

Table& Table::add(const std::string& cell) {
  WSF_REQUIRE(!rows_.empty(), "call row() before add()");
  WSF_REQUIRE(rows_.back().size() < headers_.size(),
              "row already has " << headers_.size() << " cells");
  rows_.back().push_back(cell);
  return *this;
}

Table& Table::add(const char* cell) { return add(std::string(cell)); }

Table& Table::add(std::int64_t v) { return add(std::to_string(v)); }
Table& Table::add(std::uint64_t v) { return add(std::to_string(v)); }
Table& Table::add(double v) {
  // NaN marks a value that does not exist (a single-sample stderr, say)
  // rather than a computed result, so it becomes the missing cell.
  if (std::isnan(v)) return add(std::string());
  return add(format_double(v));
}

Table& Table::add_row(std::vector<std::string> cells) {
  WSF_REQUIRE(cells.size() <= headers_.size(),
              "row has " << cells.size() << " cells but the table has "
                         << headers_.size() << " columns");
  rows_.push_back(std::move(cells));
  return *this;
}

namespace {

// The aligned rendering of a cell: missing values print as an em dash.
// Returns the replacement text and its display width (the dash is one
// column wide but three UTF-8 bytes, so byte length cannot be used).
std::pair<std::string, std::size_t> display_cell(const std::string& cell) {
  if (cell.empty()) return {"—", 1};
  return {cell, cell.size()};
}

}  // namespace

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      widths[c] = std::max(widths[c], display_cell(r[c]).second);

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      // Absent trailing cells of a short row are as missing as explicit
      // empty ones; render both the same way.
      const auto [text, width] =
          display_cell(c < cells.size() ? cells[c] : std::string());
      os << "  ";
      // Right-align everything; numeric columns dominate bench output.
      os << std::string(widths[c] - width, ' ') << text;
    }
    os << "\n";
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << "  " << std::string(total > 2 ? total - 2 : 0, '-') << "\n";
  for (const auto& r : rows_) emit_row(r);
  return os.str();
}

std::string Table::to_csv() const {
  std::string out = csv_line(headers_);
  for (const auto& r : rows_) out += csv_line(r);
  return out;
}

namespace {

// RFC-4180 splitter: quoted fields may contain commas, doubled quotes, and
// newlines; records end at LF, CRLF, or a bare CR; empty lines are skipped.
std::vector<std::vector<std::string>> parse_csv_records(
    const std::string& text) {
  std::vector<std::vector<std::string>> records;
  std::size_t i = 0;
  const std::size_t n = text.size();
  while (i < n) {
    if (text[i] == '\n' || text[i] == '\r') {
      ++i;  // empty line (or the LF of a CRLF already consumed below)
      continue;
    }
    std::vector<std::string> fields;
    bool record_done = false;
    while (!record_done) {
      std::string field;
      if (i < n && text[i] == '"') {
        ++i;
        bool closed = false;
        while (i < n) {
          if (text[i] == '"') {
            if (i + 1 < n && text[i + 1] == '"') {
              field += '"';
              i += 2;
            } else {
              ++i;
              closed = true;
              break;
            }
          } else {
            field += text[i++];
          }
        }
        WSF_REQUIRE(closed, "CSV: unterminated quoted field in record "
                                << records.size() + 1);
        WSF_REQUIRE(i >= n || text[i] == ',' || text[i] == '\n' ||
                        text[i] == '\r',
                    "CSV: stray character after closing quote in record "
                        << records.size() + 1);
      } else {
        while (i < n && text[i] != ',' && text[i] != '\n' && text[i] != '\r')
          field += text[i++];
      }
      fields.push_back(std::move(field));
      if (i >= n) {
        record_done = true;
      } else if (text[i] == ',') {
        ++i;
      } else {  // '\n' or '\r'
        if (text[i] == '\r' && i + 1 < n && text[i + 1] == '\n') ++i;
        ++i;
        record_done = true;
      }
    }
    records.push_back(std::move(fields));
  }
  return records;
}

}  // namespace

Table Table::from_csv(const std::string& csv) {
  std::vector<std::vector<std::string>> records = parse_csv_records(csv);
  WSF_REQUIRE(!records.empty(), "CSV: no header record");
  Table table(std::move(records[0]));
  for (std::size_t r = 1; r < records.size(); ++r) {
    WSF_REQUIRE(records[r].size() <= table.headers_.size(),
                "CSV: record " << r + 1 << " has " << records[r].size()
                               << " fields but the header has "
                               << table.headers_.size());
    table.rows_.push_back(std::move(records[r]));
  }
  return table;
}

namespace {

// JSON numbers: -?digits[.digits][e[+-]digits] — exactly what
// format_double / std::to_string emit; "nan"/"inf" fall through to strings.
bool is_json_number(const std::string& s) {
  std::size_t i = 0;
  if (i < s.size() && s[i] == '-') ++i;
  const std::size_t int_begin = i;
  while (i < s.size() && s[i] >= '0' && s[i] <= '9') ++i;
  if (i == int_begin) return false;
  if (i < s.size() && s[i] == '.') {
    ++i;
    const std::size_t frac_begin = i;
    while (i < s.size() && s[i] >= '0' && s[i] <= '9') ++i;
    if (i == frac_begin) return false;
  }
  if (i < s.size() && (s[i] == 'e' || s[i] == 'E')) {
    ++i;
    if (i < s.size() && (s[i] == '+' || s[i] == '-')) ++i;
    const std::size_t exp_begin = i;
    while (i < s.size() && s[i] >= '0' && s[i] <= '9') ++i;
    if (i == exp_begin) return false;
  }
  return i == s.size();
}

void append_json_string(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (const char ch : s) {
    if (ch == '"' || ch == '\\') {
      os << '\\' << ch;
    } else if (static_cast<unsigned char>(ch) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", ch);
      os << buf;
    } else {
      os << ch;
    }
  }
  os << '"';
}

}  // namespace

std::string Table::to_json() const {
  std::ostringstream os;
  os << "[\n";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    os << "  {";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      if (c) os << ", ";
      append_json_string(os, headers_[c]);
      os << ": ";
      const std::string& cell =
          c < rows_[r].size() ? rows_[r][c] : std::string();
      if (cell.empty())
        os << "null";
      else if (is_json_number(cell))
        os << cell;
      else
        append_json_string(os, cell);
    }
    os << (r + 1 < rows_.size() ? "},\n" : "}\n");
  }
  os << "]\n";
  return os.str();
}

void Table::print(const std::string& title) const {
  std::printf("%s\n%s\n", title.c_str(), to_string().c_str());
}

}  // namespace wsf::support
