#include "support/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "support/check.hpp"

namespace wsf::support {

std::string format_double(double v) {
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  // Integers print without a decimal point; otherwise 4 decimals, trimmed.
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.4f", v);
  std::string s = buf;
  while (!s.empty() && s.back() == '0') s.pop_back();
  if (!s.empty() && s.back() == '.') s.pop_back();
  return s;
}

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  WSF_REQUIRE(!headers_.empty(), "a table needs at least one column");
}

Table& Table::row() {
  rows_.emplace_back();
  rows_.back().reserve(headers_.size());
  return *this;
}

Table& Table::add(const std::string& cell) {
  WSF_REQUIRE(!rows_.empty(), "call row() before add()");
  WSF_REQUIRE(rows_.back().size() < headers_.size(),
              "row already has " << headers_.size() << " cells");
  rows_.back().push_back(cell);
  return *this;
}

Table& Table::add(const char* cell) { return add(std::string(cell)); }

Table& Table::add(std::int64_t v) { return add(std::to_string(v)); }
Table& Table::add(std::uint64_t v) { return add(std::to_string(v)); }
Table& Table::add(double v) { return add(format_double(v)); }

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      widths[c] = std::max(widths[c], r[c].size());

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      os << "  ";
      // Right-align everything; numeric columns dominate bench output.
      os << std::string(widths[c] - cell.size(), ' ') << cell;
    }
    os << "\n";
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << "  " << std::string(total > 2 ? total - 2 : 0, '-') << "\n";
  for (const auto& r : rows_) emit_row(r);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto sanitize = [](std::string s) {
    std::replace(s.begin(), s.end(), ',', ';');
    return s;
  };
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << (c ? "," : "") << sanitize(headers_[c]);
  os << "\n";
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c)
      os << (c ? "," : "") << sanitize(r[c]);
    os << "\n";
  }
  return os.str();
}

namespace {

// JSON numbers: -?digits[.digits][e[+-]digits] — exactly what
// format_double / std::to_string emit; "nan"/"inf" fall through to strings.
bool is_json_number(const std::string& s) {
  std::size_t i = 0;
  if (i < s.size() && s[i] == '-') ++i;
  const std::size_t int_begin = i;
  while (i < s.size() && s[i] >= '0' && s[i] <= '9') ++i;
  if (i == int_begin) return false;
  if (i < s.size() && s[i] == '.') {
    ++i;
    const std::size_t frac_begin = i;
    while (i < s.size() && s[i] >= '0' && s[i] <= '9') ++i;
    if (i == frac_begin) return false;
  }
  if (i < s.size() && (s[i] == 'e' || s[i] == 'E')) {
    ++i;
    if (i < s.size() && (s[i] == '+' || s[i] == '-')) ++i;
    const std::size_t exp_begin = i;
    while (i < s.size() && s[i] >= '0' && s[i] <= '9') ++i;
    if (i == exp_begin) return false;
  }
  return i == s.size();
}

void append_json_string(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (const char ch : s) {
    if (ch == '"' || ch == '\\') {
      os << '\\' << ch;
    } else if (static_cast<unsigned char>(ch) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", ch);
      os << buf;
    } else {
      os << ch;
    }
  }
  os << '"';
}

}  // namespace

std::string Table::to_json() const {
  std::ostringstream os;
  os << "[\n";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    os << "  {";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      if (c) os << ", ";
      append_json_string(os, headers_[c]);
      os << ": ";
      const std::string& cell =
          c < rows_[r].size() ? rows_[r][c] : std::string();
      if (is_json_number(cell))
        os << cell;
      else
        append_json_string(os, cell);
    }
    os << (r + 1 < rows_.size() ? "},\n" : "}\n");
  }
  os << "]\n";
  return os.str();
}

void Table::print(const std::string& title) const {
  std::printf("%s\n%s\n", title.c_str(), to_string().c_str());
}

}  // namespace wsf::support
