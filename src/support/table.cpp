#include "support/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "support/check.hpp"

namespace wsf::support {

std::string format_double(double v) {
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  // Integers print without a decimal point; otherwise 4 decimals, trimmed.
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.4f", v);
  std::string s = buf;
  while (!s.empty() && s.back() == '0') s.pop_back();
  if (!s.empty() && s.back() == '.') s.pop_back();
  return s;
}

std::string csv_field(const std::string& cell) {
  if (cell.find_first_of(",\"\n\r") == std::string::npos) return cell;
  std::string quoted;
  quoted.reserve(cell.size() + 2);
  quoted += '"';
  for (const char ch : cell) {
    if (ch == '"') quoted += '"';
    quoted += ch;
  }
  quoted += '"';
  return quoted;
}

std::string csv_line(const std::vector<std::string>& cells) {
  // A lone empty field would render as a blank line, which the parser
  // (correctly) skips; quote it so the record round-trips.
  if (cells.size() == 1 && cells[0].empty()) return "\"\"\n";
  std::string line;
  for (std::size_t c = 0; c < cells.size(); ++c) {
    if (c) line += ',';
    line += csv_field(cells[c]);
  }
  line += '\n';
  return line;
}

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  WSF_REQUIRE(!headers_.empty(), "a table needs at least one column");
}

Table& Table::row() {
  rows_.emplace_back();
  rows_.back().reserve(headers_.size());
  return *this;
}

Table& Table::add(const std::string& cell) {
  WSF_REQUIRE(!rows_.empty(), "call row() before add()");
  WSF_REQUIRE(rows_.back().size() < headers_.size(),
              "row already has " << headers_.size() << " cells");
  rows_.back().push_back(cell);
  return *this;
}

Table& Table::add(const char* cell) { return add(std::string(cell)); }

Table& Table::add(std::int64_t v) { return add(std::to_string(v)); }
Table& Table::add(std::uint64_t v) { return add(std::to_string(v)); }
Table& Table::add(double v) {
  // NaN marks a value that does not exist (a single-sample stderr, say)
  // rather than a computed result, so it becomes the missing cell.
  if (std::isnan(v)) return add(std::string());
  return add(format_double(v));
}

Table& Table::add_row(std::vector<std::string> cells) {
  WSF_REQUIRE(cells.size() <= headers_.size(),
              "row has " << cells.size() << " cells but the table has "
                         << headers_.size() << " columns");
  rows_.push_back(std::move(cells));
  return *this;
}

std::size_t Table::column_index(const std::string& name) const {
  for (std::size_t c = 0; c < headers_.size(); ++c)
    if (headers_[c] == name) return c;
  std::string all;
  for (const auto& h : headers_) all += (all.empty() ? "" : ", ") + h;
  WSF_REQUIRE(false, "no column '" << name << "' (columns: " << all << ")");
  return 0;  // unreachable
}

bool Table::has_column(const std::string& name) const {
  for (const auto& h : headers_)
    if (h == name) return true;
  return false;
}

const std::string& Table::cell(std::size_t row, std::size_t col) const {
  WSF_REQUIRE(row < rows_.size(), "row " << row << " out of range ("
                                         << rows_.size() << " rows)");
  WSF_REQUIRE(col < headers_.size(), "column " << col << " out of range ("
                                               << headers_.size()
                                               << " columns)");
  static const std::string kMissing;
  return col < rows_[row].size() ? rows_[row][col] : kMissing;
}

double Table::number(std::size_t row, std::size_t col) const {
  const std::string& c = cell(row, col);
  if (c.empty()) return std::numeric_limits<double>::quiet_NaN();
  double v = 0.0;
  WSF_REQUIRE(cell_to_number(c, &v),
              "cell '" << c << "' in column '" << headers_[col]
                       << "' is not a number");
  return v;
}

namespace {

// The aligned rendering of a cell: missing values print as an em dash.
// Returns the replacement text and its display width (the dash is one
// column wide but three UTF-8 bytes, so byte length cannot be used).
std::pair<std::string, std::size_t> display_cell(const std::string& cell) {
  if (cell.empty()) return {"—", 1};
  return {cell, cell.size()};
}

}  // namespace

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      widths[c] = std::max(widths[c], display_cell(r[c]).second);

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      // Absent trailing cells of a short row are as missing as explicit
      // empty ones; render both the same way.
      const auto [text, width] =
          display_cell(c < cells.size() ? cells[c] : std::string());
      os << "  ";
      // Right-align everything; numeric columns dominate bench output.
      os << std::string(widths[c] - width, ' ') << text;
    }
    os << "\n";
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << "  " << std::string(total > 2 ? total - 2 : 0, '-') << "\n";
  for (const auto& r : rows_) emit_row(r);
  return os.str();
}

std::string Table::to_csv() const {
  std::string out = csv_line(headers_);
  for (const auto& r : rows_) out += csv_line(r);
  return out;
}

namespace {

// RFC-4180 splitter: quoted fields may contain commas, doubled quotes, and
// newlines; records end at LF, CRLF, or a bare CR; empty lines are skipped.
std::vector<std::vector<std::string>> parse_csv_records(
    const std::string& text) {
  std::vector<std::vector<std::string>> records;
  std::size_t i = 0;
  const std::size_t n = text.size();
  while (i < n) {
    if (text[i] == '\n' || text[i] == '\r') {
      ++i;  // empty line (or the LF of a CRLF already consumed below)
      continue;
    }
    std::vector<std::string> fields;
    bool record_done = false;
    while (!record_done) {
      std::string field;
      if (i < n && text[i] == '"') {
        ++i;
        bool closed = false;
        while (i < n) {
          if (text[i] == '"') {
            if (i + 1 < n && text[i + 1] == '"') {
              field += '"';
              i += 2;
            } else {
              ++i;
              closed = true;
              break;
            }
          } else {
            field += text[i++];
          }
        }
        WSF_REQUIRE(closed, "CSV: unterminated quoted field in record "
                                << records.size() + 1);
        WSF_REQUIRE(i >= n || text[i] == ',' || text[i] == '\n' ||
                        text[i] == '\r',
                    "CSV: stray character after closing quote in record "
                        << records.size() + 1);
      } else {
        while (i < n && text[i] != ',' && text[i] != '\n' && text[i] != '\r')
          field += text[i++];
      }
      fields.push_back(std::move(field));
      if (i >= n) {
        record_done = true;
      } else if (text[i] == ',') {
        ++i;
      } else {  // '\n' or '\r'
        if (text[i] == '\r' && i + 1 < n && text[i + 1] == '\n') ++i;
        ++i;
        record_done = true;
      }
    }
    records.push_back(std::move(fields));
  }
  return records;
}

}  // namespace

Table Table::from_csv(const std::string& csv) {
  std::vector<std::vector<std::string>> records = parse_csv_records(csv);
  WSF_REQUIRE(!records.empty(), "CSV: no header record");
  Table table(std::move(records[0]));
  for (std::size_t r = 1; r < records.size(); ++r) {
    WSF_REQUIRE(records[r].size() <= table.headers_.size(),
                "CSV: record " << r + 1 << " has " << records[r].size()
                               << " fields but the header has "
                               << table.headers_.size());
    table.rows_.push_back(std::move(records[r]));
  }
  return table;
}

namespace {

// JSON numbers: -?digits[.digits][e[+-]digits] — exactly what
// format_double / std::to_string emit; "nan"/"inf" fall through to strings.
bool is_json_number(const std::string& s) {
  std::size_t i = 0;
  if (i < s.size() && s[i] == '-') ++i;
  const std::size_t int_begin = i;
  while (i < s.size() && s[i] >= '0' && s[i] <= '9') ++i;
  if (i == int_begin) return false;
  if (i < s.size() && s[i] == '.') {
    ++i;
    const std::size_t frac_begin = i;
    while (i < s.size() && s[i] >= '0' && s[i] <= '9') ++i;
    if (i == frac_begin) return false;
  }
  if (i < s.size() && (s[i] == 'e' || s[i] == 'E')) {
    ++i;
    if (i < s.size() && (s[i] == '+' || s[i] == '-')) ++i;
    const std::size_t exp_begin = i;
    while (i < s.size() && s[i] >= '0' && s[i] <= '9') ++i;
    if (i == exp_begin) return false;
  }
  return i == s.size();
}

void append_json_string(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (const char ch : s) {
    if (ch == '"' || ch == '\\') {
      os << '\\' << ch;
    } else if (static_cast<unsigned char>(ch) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", ch);
      os << buf;
    } else {
      os << ch;
    }
  }
  os << '"';
}

}  // namespace

bool cell_to_number(const std::string& cell, double* out) {
  if (!is_json_number(cell)) return false;
  char* end = nullptr;
  const double v = std::strtod(cell.c_str(), &end);
  if (end != cell.c_str() + cell.size()) return false;
  *out = v;
  return true;
}

std::string Table::to_json() const {
  std::ostringstream os;
  os << "[\n";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    os << "  {";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      if (c) os << ", ";
      append_json_string(os, headers_[c]);
      os << ": ";
      const std::string& cell =
          c < rows_[r].size() ? rows_[r][c] : std::string();
      if (cell.empty())
        os << "null";
      else if (is_json_number(cell))
        os << cell;
      else
        append_json_string(os, cell);
    }
    os << (r + 1 < rows_.size() ? "},\n" : "}\n");
  }
  os << "]\n";
  return os.str();
}

namespace {

// Minimal JSON reader for the array-of-flat-objects shape to_json emits.
// Values are captured as table cells: strings unescaped, numbers kept as
// their literal spelling (so numeric formatting round-trips exactly),
// null as the missing cell, booleans as "true"/"false".
class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : text_(text) {}

  void skip_ws() {
    while (i_ < text_.size() &&
           (text_[i_] == ' ' || text_[i_] == '\t' || text_[i_] == '\n' ||
            text_[i_] == '\r'))
      ++i_;
  }

  bool eat(char ch) {
    skip_ws();
    if (i_ < text_.size() && text_[i_] == ch) {
      ++i_;
      return true;
    }
    return false;
  }

  void expect(char ch) {
    WSF_REQUIRE(eat(ch), "JSON: expected '" << ch << "' at offset " << i_);
  }

  bool at_end() {
    skip_ws();
    return i_ >= text_.size();
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      WSF_REQUIRE(i_ < text_.size(), "JSON: unterminated string");
      const char ch = text_[i_++];
      if (ch == '"') return out;
      if (ch != '\\') {
        out += ch;
        continue;
      }
      WSF_REQUIRE(i_ < text_.size(), "JSON: unterminated escape");
      const char esc = text_[i_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          WSF_REQUIRE(i_ + 4 <= text_.size(), "JSON: truncated \\u escape");
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = text_[i_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              WSF_REQUIRE(false, "JSON: bad \\u escape digit '" << h << "'");
          }
          // to_json only escapes control characters (< 0x20); encode the
          // general case as UTF-8 anyway so foreign files parse.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          WSF_REQUIRE(false, "JSON: unknown escape '\\" << esc << "'");
      }
    }
  }

  // A scalar value rendered as a table cell.
  std::string parse_value() {
    skip_ws();
    WSF_REQUIRE(i_ < text_.size(), "JSON: value expected");
    const char ch = text_[i_];
    if (ch == '"') return parse_string();
    if (eat_word("null")) return std::string();
    if (eat_word("true")) return "true";
    if (eat_word("false")) return "false";
    // Number: capture the literal token text verbatim.
    const std::size_t begin = i_;
    if (i_ < text_.size() && (text_[i_] == '-' || text_[i_] == '+')) ++i_;
    while (i_ < text_.size() &&
           ((text_[i_] >= '0' && text_[i_] <= '9') || text_[i_] == '.' ||
            text_[i_] == 'e' || text_[i_] == 'E' || text_[i_] == '+' ||
            text_[i_] == '-'))
      ++i_;
    const std::string token = text_.substr(begin, i_ - begin);
    double ignored = 0.0;
    WSF_REQUIRE(cell_to_number(token, &ignored),
                "JSON: expected a value at offset " << begin);
    return token;
  }

 private:
  bool eat_word(const char* word) {
    const std::size_t len = std::string(word).size();
    if (text_.compare(i_, len, word) != 0) return false;
    i_ += len;
    return true;
  }

  const std::string& text_;
  std::size_t i_ = 0;
};

}  // namespace

Table Table::from_json(const std::string& json) {
  JsonReader reader(json);
  reader.expect('[');
  std::vector<std::string> headers;
  std::vector<std::vector<std::string>> rows;
  if (!reader.eat(']')) {
    do {
      reader.expect('{');
      std::vector<std::string> keys;
      std::vector<std::string> cells;
      if (!reader.eat('}')) {
        do {
          keys.push_back(reader.parse_string());
          reader.expect(':');
          cells.push_back(reader.parse_value());
        } while (reader.eat(','));
        reader.expect('}');
      }
      if (rows.empty() && headers.empty()) {
        headers = keys;
      } else {
        WSF_REQUIRE(keys == headers,
                    "JSON: row " << rows.size() + 1 << " keys differ from "
                                 << "the first row's");
      }
      rows.push_back(std::move(cells));
    } while (reader.eat(','));
    reader.expect(']');
  }
  WSF_REQUIRE(reader.at_end(), "JSON: trailing content after the array");
  WSF_REQUIRE(!headers.empty(),
              "JSON: no rows (a table cannot recover its columns from an "
              "empty array)");
  Table table(std::move(headers));
  for (auto& cells : rows) table.rows_.push_back(std::move(cells));
  return table;
}

void Table::print(const std::string& title) const {
  std::printf("%s\n%s\n", title.c_str(), to_string().c_str());
}

}  // namespace wsf::support
