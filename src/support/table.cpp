#include "support/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "support/check.hpp"

namespace wsf::support {

std::string format_double(double v) {
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  // Integers print without a decimal point; otherwise 4 decimals, trimmed.
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.4f", v);
  std::string s = buf;
  while (!s.empty() && s.back() == '0') s.pop_back();
  if (!s.empty() && s.back() == '.') s.pop_back();
  return s;
}

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  WSF_REQUIRE(!headers_.empty(), "a table needs at least one column");
}

Table& Table::row() {
  rows_.emplace_back();
  rows_.back().reserve(headers_.size());
  return *this;
}

Table& Table::add(const std::string& cell) {
  WSF_REQUIRE(!rows_.empty(), "call row() before add()");
  WSF_REQUIRE(rows_.back().size() < headers_.size(),
              "row already has " << headers_.size() << " cells");
  rows_.back().push_back(cell);
  return *this;
}

Table& Table::add(const char* cell) { return add(std::string(cell)); }

Table& Table::add(std::int64_t v) { return add(std::to_string(v)); }
Table& Table::add(std::uint64_t v) { return add(std::to_string(v)); }
Table& Table::add(double v) { return add(format_double(v)); }

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      widths[c] = std::max(widths[c], r[c].size());

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      os << "  ";
      // Right-align everything; numeric columns dominate bench output.
      os << std::string(widths[c] - cell.size(), ' ') << cell;
    }
    os << "\n";
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << "  " << std::string(total > 2 ? total - 2 : 0, '-') << "\n";
  for (const auto& r : rows_) emit_row(r);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto sanitize = [](std::string s) {
    std::replace(s.begin(), s.end(), ',', ';');
    return s;
  };
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << (c ? "," : "") << sanitize(headers_[c]);
  os << "\n";
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c)
      os << (c ? "," : "") << sanitize(r[c]);
    os << "\n";
  }
  return os.str();
}

void Table::print(const std::string& title) const {
  std::printf("%s\n%s\n", title.c_str(), to_string().c_str());
}

}  // namespace wsf::support
