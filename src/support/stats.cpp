#include "support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "support/check.hpp"

namespace wsf::support {

void Accumulator::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

LinearFit fit_linear(const std::vector<double>& xs,
                     const std::vector<double>& ys) {
  WSF_REQUIRE(xs.size() == ys.size(), "paired samples required");
  WSF_REQUIRE(xs.size() >= 2, "need at least two points to fit a line");
  const auto n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
    syy += ys[i] * ys[i];
  }
  LinearFit fit;
  const double denom = n * sxx - sx * sx;
  if (denom == 0.0) {
    // Degenerate (all x equal): report a flat line through the mean.
    fit.slope = 0.0;
    fit.intercept = sy / n;
    fit.r2 = 0.0;
    return fit;
  }
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  double ss_res = 0, ss_tot = 0;
  const double ymean = sy / n;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double pred = fit.slope * xs[i] + fit.intercept;
    ss_res += (ys[i] - pred) * (ys[i] - pred);
    ss_tot += (ys[i] - ymean) * (ys[i] - ymean);
  }
  fit.r2 = ss_tot == 0.0 ? 1.0 : 1.0 - ss_res / ss_tot;
  return fit;
}

LinearFit fit_loglog(const std::vector<double>& xs,
                     const std::vector<double>& ys) {
  WSF_REQUIRE(xs.size() == ys.size(), "paired samples required");
  std::vector<double> lx, ly;
  lx.reserve(xs.size());
  ly.reserve(ys.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    WSF_REQUIRE(xs[i] > 0 && ys[i] > 0, "log-log fit needs positive samples");
    lx.push_back(std::log(xs[i]));
    ly.push_back(std::log(ys[i]));
  }
  return fit_linear(lx, ly);
}

double median(std::vector<double> samples) {
  if (samples.empty()) return 0.0;
  const std::size_t mid = samples.size() / 2;
  std::nth_element(samples.begin(), samples.begin() + mid, samples.end());
  double hi = samples[mid];
  if (samples.size() % 2 == 1) return hi;
  std::nth_element(samples.begin(), samples.begin() + mid - 1,
                   samples.begin() + mid);
  return (samples[mid - 1] + hi) / 2.0;
}

double mean_of(const std::vector<double>& samples) {
  if (samples.empty()) return 0.0;
  double s = 0;
  for (double x : samples) s += x;
  return s / static_cast<double>(samples.size());
}

}  // namespace wsf::support
