// Aligned plain-text table printer used by the benchmark harnesses to emit
// the paper-shaped result rows, with lossless CSV emission/parsing for the
// sweep checkpoint/merge pipeline and JSON output for plotting.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace wsf::support {

/// Collects rows of string/number cells and renders them either as an
/// aligned ASCII table (human-readable bench output), RFC-4180 CSV, or
/// JSON. An empty-string cell means "no value" (e.g. the stderr of a
/// single-replicate measurement): it renders as an em dash in the aligned
/// table, an empty CSV field, and JSON null.
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row; subsequent add() calls fill it left to right.
  Table& row();

  Table& add(const std::string& cell);
  Table& add(const char* cell);
  Table& add(std::int64_t v);
  Table& add(std::uint64_t v);
  Table& add(int v) { return add(static_cast<std::int64_t>(v)); }
  Table& add(unsigned v) { return add(static_cast<std::uint64_t>(v)); }
  /// Doubles are rendered with up to 4 significant decimals, trimming
  /// trailing zeros, so ratio columns stay readable. NaN becomes the
  /// missing-value cell (see class comment).
  Table& add(double v);

  /// Appends a whole row of pre-rendered cells (at most one per column).
  Table& add_row(std::vector<std::string> cells);

  std::size_t num_rows() const { return rows_.size(); }
  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  /// Index of the named column (first match). Throws wsf::CheckError when
  /// the column does not exist — callers that want optional columns should
  /// test has_column() first.
  std::size_t column_index(const std::string& name) const;
  bool has_column(const std::string& name) const;

  /// The cell at (row, col). Trailing cells a short row never stored read
  /// as the empty (missing) cell, exactly as every renderer treats them.
  /// Throws on an out-of-range row or column.
  const std::string& cell(std::size_t row, std::size_t col) const;

  /// The cell parsed as a double: NaN for a missing/empty cell, the value
  /// for a fully-numeric cell, and wsf::CheckError for anything else (a
  /// policy name in a column an analysis op tried to aggregate, say).
  double number(std::size_t row, std::size_t col) const;

  /// Renders the aligned table (with a separator under the header).
  std::string to_string() const;
  /// Renders RFC-4180 CSV: cells containing commas, quotes, or newlines are
  /// quoted with embedded quotes doubled, so to_csv/from_csv round-trip
  /// losslessly.
  std::string to_csv() const;
  /// Parses to_csv() output (or any RFC-4180 CSV; CRLF line ends and a
  /// missing final newline are accepted, empty lines are skipped) back into
  /// a Table. The first record is the header row. Rows may have fewer cells
  /// than the header but not more; a row with zero cells does not
  /// round-trip (it has no record representation). Throws wsf::CheckError
  /// on malformed input (e.g. an unterminated quoted cell).
  static Table from_csv(const std::string& csv);
  /// Renders a JSON array with one object per row, keyed by the headers.
  /// Cells that are plain decimal numbers are emitted unquoted, missing
  /// cells as null; everything else becomes an escaped JSON string.
  std::string to_json() const;
  /// Parses to_json() output (an array of flat objects whose values are
  /// strings, numbers, booleans, or null) back into a Table. Column order
  /// is the first object's key order and every object must repeat it;
  /// numeric values keep their literal spelling, so
  /// from_json(to_json(t)).to_json() == t.to_json(). null becomes the
  /// missing (empty) cell. Throws wsf::CheckError on malformed input.
  static Table from_json(const std::string& json);

  /// Convenience: print to stdout with a title line.
  void print(const std::string& title) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double like Table::add(double): compact fixed notation.
std::string format_double(double v);

/// RFC-4180 encoding of one CSV field: returns the cell quoted (embedded
/// quotes doubled) when it contains a comma, quote, or CR/LF, unchanged
/// otherwise. Table::to_csv and the sweep checkpoint writer share this so
/// their bytes agree.
std::string csv_field(const std::string& cell);

/// One CSV record from pre-rendered cells, csv_field-encoded and
/// newline-terminated.
std::string csv_line(const std::vector<std::string>& cells);

/// Parses a cell as a double if it is fully numeric (optional sign,
/// digits, optional fraction/exponent — the grammar to_json treats as a
/// number). Returns false for empty or non-numeric cells, leaving *out
/// unchanged.
bool cell_to_number(const std::string& cell, double* out);

}  // namespace wsf::support
