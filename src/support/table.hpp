// Aligned plain-text table printer used by the benchmark harnesses to emit
// the paper-shaped result rows, with optional CSV output for plotting.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace wsf::support {

/// Collects rows of string/number cells and renders them either as an
/// aligned ASCII table (human-readable bench output) or CSV.
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row; subsequent add() calls fill it left to right.
  Table& row();

  Table& add(const std::string& cell);
  Table& add(const char* cell);
  Table& add(std::int64_t v);
  Table& add(std::uint64_t v);
  Table& add(int v) { return add(static_cast<std::int64_t>(v)); }
  Table& add(unsigned v) { return add(static_cast<std::uint64_t>(v)); }
  /// Doubles are rendered with up to 4 significant decimals, trimming
  /// trailing zeros, so ratio columns stay readable.
  Table& add(double v);

  std::size_t num_rows() const { return rows_.size(); }

  /// Renders the aligned table (with a separator under the header).
  std::string to_string() const;
  /// Renders RFC-4180-ish CSV (no quoting of embedded commas needed for our
  /// numeric output; commas in cells are replaced with ';').
  std::string to_csv() const;
  /// Renders a JSON array with one object per row, keyed by the headers.
  /// Cells that are plain decimal numbers are emitted unquoted; everything
  /// else becomes an escaped JSON string.
  std::string to_json() const;

  /// Convenience: print to stdout with a title line.
  void print(const std::string& title) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double like Table::add(double): compact fixed notation.
std::string format_double(double v);

}  // namespace wsf::support
