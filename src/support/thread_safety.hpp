// Compile-time lock discipline: wrappers for clang's thread-safety
// capability analysis (-Wthread-safety), no-ops elsewhere.
//
// The runtime's concurrency contracts — which mutex guards which member,
// which functions must (not) hold which lock — are encoded as attributes on
// the declarations themselves, so a clang build with -Wthread-safety
// -Werror rejects any access that violates them. gcc (and MSVC) compile the
// same tree with the macros expanding to nothing; the contracts are then
// exercised dynamically instead (TSan jobs + tests/test_annotations.cpp),
// so both toolchains check the same discipline, one statically and one at
// run time.
//
// Policy (enforced by CI's static-analysis job, documented in README):
//   * every new mutex-protected member carries WSF_GUARDED_BY;
//   * every function with a locking precondition carries WSF_REQUIRES /
//     WSF_EXCLUDES;
//   * raw std::mutex is reserved for code the analysis cannot see through
//     (std::condition_variable interop lives in CondVar below) — everything
//     else uses support::Mutex + LockGuard/UniqueLock.
//
// The macro set mirrors the canonical mutex.h from the clang documentation
// ("Thread Safety Analysis", https://clang.llvm.org/docs/ThreadSafetyAnalysis.html).
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__) && (!defined(SWIG))
#define WSF_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define WSF_THREAD_ANNOTATION(x)  // no-op: capability analysis is clang-only
#endif

/// Marks a class as a capability ("mutex" in diagnostics).
#define WSF_CAPABILITY(x) WSF_THREAD_ANNOTATION(capability(x))
/// Marks an RAII class whose lifetime equals a critical section.
#define WSF_SCOPED_CAPABILITY WSF_THREAD_ANNOTATION(scoped_lockable)
/// Data member readable/writable only while holding `x`.
#define WSF_GUARDED_BY(x) WSF_THREAD_ANNOTATION(guarded_by(x))
/// Pointer member whose *pointee* is protected by `x`.
#define WSF_PT_GUARDED_BY(x) WSF_THREAD_ANNOTATION(pt_guarded_by(x))
/// Documented lock-order edges (checked by -Wthread-safety-analysis when
/// the locks nest).
#define WSF_ACQUIRED_BEFORE(...) \
  WSF_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define WSF_ACQUIRED_AFTER(...) \
  WSF_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
/// The caller must hold the listed capabilities exclusively.
#define WSF_REQUIRES(...) \
  WSF_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// The caller must hold the listed capabilities at least shared.
#define WSF_REQUIRES_SHARED(...) \
  WSF_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
/// The function acquires the capability (and the caller must not hold it).
#define WSF_ACQUIRE(...) \
  WSF_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define WSF_ACQUIRE_SHARED(...) \
  WSF_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
/// The function releases the capability (the caller must hold it).
#define WSF_RELEASE(...) \
  WSF_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define WSF_RELEASE_SHARED(...) \
  WSF_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
/// The function acquires the capability iff it returns `b`.
#define WSF_TRY_ACQUIRE(...) \
  WSF_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
/// The caller must NOT hold the listed capabilities (deadlock guard for
/// functions that acquire them internally).
#define WSF_EXCLUDES(...) WSF_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Asserts (at run time) that the capability is held; informs the analysis.
#define WSF_ASSERT_CAPABILITY(x) WSF_THREAD_ANNOTATION(assert_capability(x))
/// The function returns a reference to the named capability.
#define WSF_RETURN_CAPABILITY(x) WSF_THREAD_ANNOTATION(lock_returned(x))
/// Escape hatch: the function's body is not analyzed. Every use must carry
/// a comment saying why the analysis cannot see through it.
#define WSF_NO_THREAD_SAFETY_ANALYSIS \
  WSF_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace wsf::support {

/// An annotated std::mutex: a clang "capability" the analysis can track.
/// Use with LockGuard/UniqueLock; lock()/unlock() are public for the rare
/// caller that needs manual control (which the analysis still checks).
class WSF_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() WSF_ACQUIRE() { m_.lock(); }
  void unlock() WSF_RELEASE() { m_.unlock(); }
  bool try_lock() WSF_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  friend class CondVar;
  friend class UniqueLock;
  std::mutex m_;
};

/// std::lock_guard over an annotated Mutex (a scoped capability: the
/// analysis treats the guarded region as the object's lifetime).
class WSF_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& m) WSF_ACQUIRE(m) : m_(m) { m_.lock(); }
  ~LockGuard() WSF_RELEASE() { m_.unlock(); }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& m_;
};

/// std::unique_lock over an annotated Mutex — the lock form CondVar::wait
/// needs. Deliberately minimal: no deferred/adopted states, so the
/// capability is held for exactly the object's lifetime (what the static
/// analysis assumes; wait()'s internal release/reacquire is invisible to it
/// and re-established before wait returns, so the modelling stays sound).
class WSF_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& m) WSF_ACQUIRE(m) : lock_(m.m_) {}
  ~UniqueLock() WSF_RELEASE() = default;
  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// std::condition_variable over annotated locks. Waits take a UniqueLock,
/// so the compiler proves the caller holds the mutex across the wait —
/// the precondition std::condition_variable leaves to the programmer.
/// Predicates run with the lock held; a predicate reading WSF_GUARDED_BY
/// members must be a lambda defined at the wait site (the analysis checks
/// lambda bodies in their enclosing context).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  template <typename Predicate>
  void wait(UniqueLock& lock, Predicate pred) {
    cv_.wait(lock.lock_, std::move(pred));
  }

  template <typename Rep, typename Period, typename Predicate>
  bool wait_for(UniqueLock& lock,
                const std::chrono::duration<Rep, Period>& timeout,
                Predicate pred) {
    return cv_.wait_for(lock.lock_, timeout, std::move(pred));
  }

 private:
  std::condition_variable cv_;
};

}  // namespace wsf::support
