// Flat ring-buffer double-ended queue.
//
// The simulator keeps one deque per simulated processor and hits them on
// every round; std::deque's segmented storage (one heap block per few
// entries, an indirection per access) dominates the hot path on
// million-node sweeps. This deque stores elements contiguously in a
// power-of-two ring, so push/pop at either end are a masked index bump and
// the whole structure stays cache-resident for the typical (shallow) deque
// depths work stealing produces.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "support/check.hpp"

namespace wsf::support {

/// Growable ring-buffer deque. Index 0 is the front; push/pop at both ends
/// (back = the owner end, front = the thief end of a work-stealing deque).
/// Intended for trivially copyable element types; growth copies elements.
template <typename T>
class RingDeque {
 public:
  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  /// Element i counted from the front (index 0 = front).
  const T& operator[](std::size_t i) const {
    WSF_DCHECK(i < size_);
    return buf_[(head_ + i) & mask()];
  }
  const T& front() const {
    WSF_DCHECK(size_ > 0);
    return buf_[head_];
  }
  const T& back() const {
    WSF_DCHECK(size_ > 0);
    return buf_[(head_ + size_ - 1) & mask()];
  }

  // By value so pushing an element of this deque (d.push_back(d.front()))
  // stays safe when grow() reallocates the buffer.
  void push_back(T v) {
    if (size_ == buf_.size()) grow();
    buf_[(head_ + size_) & mask()] = std::move(v);
    ++size_;
  }
  void pop_back() {
    WSF_DCHECK(size_ > 0);
    --size_;
  }
  /// Push at the front (the steal end) — used when transplanting a stolen
  /// batch so its relative order can be reversed without scratch space.
  void push_front(T v) {
    if (size_ == buf_.size()) grow();
    head_ = (head_ + buf_.size() - 1) & mask();
    buf_[head_] = std::move(v);
    ++size_;
  }
  void pop_front() {
    WSF_DCHECK(size_ > 0);
    head_ = (head_ + 1) & mask();
    --size_;
  }

  void clear() {
    head_ = 0;
    size_ = 0;
  }

  /// Reserves capacity for at least n elements (rounded up to a power of
  /// two) so the first pushes do not reallocate.
  void reserve(std::size_t n) {
    std::size_t cap = buf_.empty() ? kInitialCapacity : buf_.size();
    while (cap < n) cap *= 2;
    if (cap != buf_.size()) regrow(cap);
  }

 private:
  static constexpr std::size_t kInitialCapacity = 8;

  // Valid only when buf_ is non-empty; callers guard via size_/grow().
  std::size_t mask() const { return buf_.size() - 1; }

  void grow() {
    regrow(buf_.empty() ? kInitialCapacity : buf_.size() * 2);
  }

  void regrow(std::size_t cap) {
    std::vector<T> next(cap);
    for (std::size_t i = 0; i < size_; ++i) next[i] = (*this)[i];
    buf_ = std::move(next);
    head_ = 0;
  }

  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace wsf::support
