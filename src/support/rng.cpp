#include "support/rng.hpp"

#include "support/check.hpp"

#include <cstdint>

namespace wsf::support {

std::uint64_t Xoshiro256::below(std::uint64_t bound) {
  WSF_REQUIRE(bound != 0, "below() requires a nonzero bound");
  // Lemire's multiply-shift rejection sampling: unbiased and branch-light.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::uint64_t derive_seed(std::uint64_t base, std::uint64_t stream_index) {
  // Mix the stream index into the base seed through SplitMix64 so adjacent
  // indices yield decorrelated streams.
  SplitMix64 sm(base ^ (0x9e3779b97f4a7c15ULL * (stream_index + 1)));
  sm.next();
  return sm.next();
}

}  // namespace wsf::support
