// Minimal move-only type-erased callable (std::move_only_function is C++23;
// this is the subset the runtime needs). Futures are move-only, so task
// closures that capture them cannot live in std::function.
#pragma once

#include <memory>
#include <utility>

#include "support/check.hpp"

namespace wsf::support {

template <typename Signature>
class MoveOnlyFunction;

template <typename R, typename... Args>
class MoveOnlyFunction<R(Args...)> {
 public:
  MoveOnlyFunction() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, MoveOnlyFunction>>>
  MoveOnlyFunction(F&& f)  // NOLINT(google-explicit-constructor)
      : impl_(std::make_unique<Model<std::decay_t<F>>>(std::forward<F>(f))) {
  }

  MoveOnlyFunction(MoveOnlyFunction&&) noexcept = default;
  MoveOnlyFunction& operator=(MoveOnlyFunction&&) noexcept = default;
  MoveOnlyFunction(const MoveOnlyFunction&) = delete;
  MoveOnlyFunction& operator=(const MoveOnlyFunction&) = delete;

  explicit operator bool() const { return impl_ != nullptr; }

  R operator()(Args... args) {
    WSF_REQUIRE(impl_ != nullptr, "call of an empty MoveOnlyFunction");
    return impl_->call(std::forward<Args>(args)...);
  }

 private:
  struct Concept {
    virtual ~Concept() = default;
    virtual R call(Args... args) = 0;
  };
  template <typename F>
  struct Model final : Concept {
    explicit Model(F f) : fn(std::move(f)) {}
    R call(Args... args) override {
      return fn(std::forward<Args>(args)...);
    }
    F fn;
  };

  std::unique_ptr<Concept> impl_;
};

}  // namespace wsf::support
