// Streaming statistics and scaling-fit helpers for the benchmark harnesses.
//
// The paper's results are asymptotic shapes (deviations ~ P*T_inf^2, misses ~
// C*t*T_inf, ...). Benches validate shapes by (a) reporting measured/predicted
// ratios across a sweep and (b) fitting log-log slopes; both live here.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace wsf::support {

/// Welford-style streaming accumulator: mean / variance / min / max without
/// storing samples.
class Accumulator {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Result of an ordinary least-squares fit y = slope*x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  /// Coefficient of determination in [0,1]; 1 means a perfect fit.
  double r2 = 0.0;
};

/// Least-squares fit over paired samples. Requires xs.size() == ys.size() and
/// at least two points.
LinearFit fit_linear(const std::vector<double>& xs,
                     const std::vector<double>& ys);

/// Fits y = a * x^b by linear regression in log-log space and returns the
/// exponent b (slope) and log a (intercept). All samples must be positive.
/// This is how benches verify growth exponents (e.g. deviations vs T_inf
/// should have slope ~2 under Theorem 9's construction).
LinearFit fit_loglog(const std::vector<double>& xs,
                     const std::vector<double>& ys);

/// Median of a copy of the samples (empty input yields 0).
double median(std::vector<double> samples);

/// Convenience: arithmetic mean of a vector (empty input yields 0).
double mean_of(const std::vector<double>& samples);

}  // namespace wsf::support
