// Pluggable execution backends for experiment sweeps.
//
// A sweep grid point ("configuration") can execute on either engine:
//   * SimBackend — the deterministic round-based ABP simulator
//     (sched::Simulator), with cache simulation: the paper's model, every
//     measure exactly reproducible from (spec, seed).
//   * RuntimeBackend — the real fiber-based Chase–Lev work-stealing
//     runtime (runtime::Scheduler + runtime::GraphReplayer): the same
//     core::Graph replayed with one future per spawned thread and real
//     parks/wakes per touch edge, measured through WorkerCounters and the
//     same core::count_deviations over recorded per-worker orders.
// Both emit the same SweepCell row shape; measures an engine cannot
// produce (cache misses on the runtime, fiber switches in the simulator)
// stay empty and render as missing cells. The `backend` identity column —
// covered by the checkpoint spec signature — keeps the two kinds of rows
// from ever merging silently.
//
// A Backend instance is not thread-safe: run_sweep creates one per worker
// thread. The RuntimeBackend does not own schedulers — it leases the
// process-shared long-lived runtime::SharedScheduler for each pool shape
// (workers × policy) and serializes its measured replicates through the
// lease's exclusive mutex, so N sweep threads share warm pools instead of
// churning one scheduler each.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/graph.hpp"

namespace wsf::exp {

struct SweepConfig;
struct SweepCell;

enum class BackendKind : std::uint8_t { Sim, Runtime };

inline const char* to_string(BackendKind k) {
  return k == BackendKind::Sim ? "sim" : "runtime";
}

BackendKind backend_from_string(const std::string& s);

/// One execution engine. run_config executes a configuration's seed
/// replicates (seeds seed_base … seed_base + seed_count - 1) and aggregates
/// them into the shared sweep row shape. Not thread-safe; create one
/// Backend per executing thread.
class Backend {
 public:
  virtual ~Backend() = default;
  virtual BackendKind kind() const = 0;
  virtual SweepCell run_config(const core::Graph& g, const SweepConfig& cfg,
                               std::uint64_t seed_base,
                               std::uint64_t seed_count) = 0;
};

std::unique_ptr<Backend> make_backend(BackendKind kind);

}  // namespace wsf::exp
