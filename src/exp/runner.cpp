// Concurrent sweep execution: one job per configuration, jobs pulled from a
// shared atomic cursor by std::thread workers. Each job is an independent
// sequence of run_experiment() calls on an immutable shared graph, so the
// workers share nothing mutable and need no locks; rows are written into
// preallocated slots, keeping the output order (and therefore the CSV)
// deterministic regardless of how the OS schedules the workers.
#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "exp/sweep.hpp"
#include "support/check.hpp"

namespace wsf::exp {

SweepResult run_sweep(const SweepSpec& spec, unsigned threads) {
  const std::vector<SweepConfig> configs = expand_spec(spec);
  const std::vector<graphs::GeneratedDag> graphs = generate_graphs(spec);

  SweepResult result;
  result.seeds = spec.seeds;
  result.seed_base = spec.seed_base;
  result.rows.resize(configs.size());

  unsigned workers = threads ? threads : std::thread::hardware_concurrency();
  if (workers == 0) workers = 1;
  if (workers > configs.size())
    workers = static_cast<unsigned>(configs.size());

  std::atomic<std::size_t> next{0};
  // A failing configuration (controller deadlock, graph invariant breach —
  // unknown family names already threw in generate_graphs above) must
  // surface to the caller, not std::terminate a worker: the first exception
  // is kept and rethrown after all workers drain.
  std::exception_ptr failure;
  std::mutex failure_mutex;
  auto work = [&] {
    for (std::size_t i; (i = next.fetch_add(1)) < configs.size();) {
      try {
        const SweepConfig& cfg = configs[i];
        result.rows[i].config = cfg;
        result.rows[i].cell =
            run_replicates(graphs[cfg.graph_index].graph, cfg.options,
                           spec.seed_base, spec.seeds);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(failure_mutex);
        if (!failure) failure = std::current_exception();
      }
    }
  };

  if (workers <= 1) {
    work();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) pool.emplace_back(work);
    for (std::thread& t : pool) t.join();
  }
  if (failure) std::rethrow_exception(failure);
  return result;
}

}  // namespace wsf::exp
