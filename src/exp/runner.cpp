// Concurrent sweep execution: one job per configuration, jobs pulled from a
// shared atomic cursor by std::thread workers. Each job runs its
// configuration's replicates through that configuration's Backend (the
// deterministic simulator or the real work-stealing runtime) on an
// immutable shared graph; backends are created per worker thread, so the
// workers share nothing mutable and need no locks. Rows are written into
// preallocated slots, keeping the output order (and therefore the CSV)
// deterministic regardless of how the OS schedules the workers. Sharding
// and resume are handled here by filtering the job list — shard k of n owns
// the configs with index % n == k, and SweepRunOptions::skip drops configs
// a checkpoint already holds.
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <thread>
#include <vector>

#include "exp/backend.hpp"
#include "exp/sweep.hpp"
#include "support/check.hpp"
#include "support/thread_safety.hpp"

namespace wsf::exp {

namespace {

/// Cross-worker state of one sweep run, with its lock discipline spelled
/// out as capability annotations (support/thread_safety.hpp): the first
/// failure is kept under its own mutex, and the caller's on_row hook — the
/// checkpoint append path — is serialized by row_mutex, so hook authors
/// may write files and mutate captures without their own locking. The
/// result rows themselves need no lock: each worker writes only the slots
/// of configs it owns (disjoint indices), and the join() at the end of
/// run_sweep_expanded publishes them to the caller.
struct SweepShared {
  /// Set (relaxed) by the first failing worker; checked (relaxed) by every
  /// worker before pulling the next job. relaxed on both sides: the flag
  /// only stops *new* work from starting — the failure itself is
  /// published by failure_mutex, and the workers' results by join() — so
  /// no payload rides on this flag's ordering.
  std::atomic<bool> cancelled{false};
  support::Mutex failure_mutex;
  /// The first exception any worker hit; later ones are dropped.
  std::exception_ptr failure WSF_GUARDED_BY(failure_mutex);
  /// Serializes SweepRunOptions::on_row (checkpoint appends).
  support::Mutex row_mutex;
};

}  // namespace

SweepResult run_sweep_expanded(const SweepSpec& spec,
                               const std::vector<SweepConfig>& configs,
                               const SweepRunOptions& opts) {
  WSF_REQUIRE(opts.shard.count >= 1, "shard count must be at least 1");
  WSF_REQUIRE(opts.shard.index < opts.shard.count,
              "shard index " << opts.shard.index << " out of range for "
                             << opts.shard.count << " shards");
  const std::vector<graphs::GeneratedDag> graphs = generate_graphs(spec);

  SweepResult result;
  result.seeds = spec.seeds;
  result.seed_base = spec.seed_base;
  result.rows.resize(configs.size());
  // Every row knows its configuration even when sharding/resume skips the
  // job; to_table tells the two apart by the cell's replicate count.
  for (std::size_t i = 0; i < configs.size(); ++i)
    result.rows[i].config = configs[i];

  std::vector<std::size_t> jobs;
  jobs.reserve(configs.size() / opts.shard.count + 1);
  for (std::size_t i = opts.shard.index; i < configs.size();
       i += opts.shard.count)
    if (!opts.skip || !opts.skip(i)) jobs.push_back(i);

  unsigned workers = opts.threads ? opts.threads
                                  : std::thread::hardware_concurrency();
  if (workers == 0) workers = 1;
  if (workers > jobs.size()) workers = static_cast<unsigned>(jobs.size());

  // The job cursor: workers claim configs with fetch_add. relaxed-ordered
  // (the default's seq_cst is not needed): the claimed index is the only
  // payload, and it travels in the returned value itself.
  std::atomic<std::size_t> next{0};
  // A failing configuration (controller deadlock, graph invariant breach —
  // unknown family names already threw in generate_graphs above) must
  // surface to the caller, not std::terminate a worker. The first exception
  // is kept and rethrown after all workers drain; `cancelled` makes the
  // other workers stop pulling new jobs instead of grinding through the
  // rest of a doomed grid.
  SweepShared shared;
  auto work = [&] {
    // One backend instance of each kind per worker thread: backends are
    // stateful (the runtime backend keeps a live scheduler between
    // configurations) and not thread-safe.
    std::unique_ptr<Backend> backends[2];
    const auto backend_for = [&backends](BackendKind kind) -> Backend& {
      auto& slot = backends[static_cast<std::size_t>(kind)];
      if (!slot) slot = make_backend(kind);
      return *slot;
    };
    // relaxed loads/fetch_add: see the SweepShared::cancelled and `next`
    // comments — neither flag nor cursor carries a payload beyond its own
    // value.
    for (std::size_t j;
         !shared.cancelled.load(std::memory_order_relaxed) &&
         (j = next.fetch_add(1, std::memory_order_relaxed)) < jobs.size();) {
      const std::size_t i = jobs[j];
      try {
        const SweepConfig& cfg = configs[i];
        const auto t0 = std::chrono::steady_clock::now();
        result.rows[i].cell = backend_for(cfg.backend)
                                  .run_config(graphs[cfg.graph_index].graph,
                                              cfg, spec.seed_base,
                                              spec.seeds);
        result.rows[i].wall_ms = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - t0)
                .count());
        if (opts.on_row) {
          const support::LockGuard lock(shared.row_mutex);
          opts.on_row(i, result.rows[i]);
        }
      } catch (...) {
        // relaxed: stops new claims; the exception itself is published
        // under failure_mutex below.
        shared.cancelled.store(true, std::memory_order_relaxed);
        const support::LockGuard lock(shared.failure_mutex);
        if (!shared.failure) shared.failure = std::current_exception();
      }
    }
  };

  if (workers <= 1) {
    work();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) pool.emplace_back(work);
    for (std::thread& t : pool) t.join();
  }
  // The workers are joined: reading the failure slot needs no lock for
  // correctness, but taking it keeps the capability contract unconditional
  // (and the uncontended acquire is free).
  const support::LockGuard lock(shared.failure_mutex);
  if (shared.failure) std::rethrow_exception(shared.failure);
  return result;
}

SweepResult run_sweep(const SweepSpec& spec, const SweepRunOptions& opts) {
  return run_sweep_expanded(spec, expand_spec(spec), opts);
}

SweepResult run_sweep(const SweepSpec& spec, unsigned threads) {
  SweepRunOptions opts;
  opts.threads = threads;
  return run_sweep(spec, opts);
}

}  // namespace wsf::exp
