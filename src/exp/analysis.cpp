#include "exp/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "exp/checkpoint.hpp"
#include "exp/sweep.hpp"
#include "support/check.hpp"
#include "support/stats.hpp"

namespace wsf::exp::analysis {

using support::Table;

Table select(const Table& t, const std::vector<std::string>& columns) {
  WSF_REQUIRE(!columns.empty(), "select needs at least one column");
  std::vector<std::size_t> indices;
  indices.reserve(columns.size());
  for (const std::string& name : columns)
    indices.push_back(t.column_index(name));
  Table out(columns);
  for (std::size_t r = 0; r < t.num_rows(); ++r) {
    std::vector<std::string> cells;
    cells.reserve(indices.size());
    for (const std::size_t c : indices) cells.push_back(t.cell(r, c));
    out.add_row(std::move(cells));
  }
  return out;
}

Table filter(const Table& t,
             const std::function<bool(const RowView&)>& pred) {
  Table out(t.headers());
  for (std::size_t r = 0; r < t.num_rows(); ++r)
    if (pred(RowView(t, r))) out.add_row(t.rows()[r]);
  return out;
}

Table filter_eq(const Table& t, const std::string& column,
                const std::string& value) {
  const std::size_t c = t.column_index(column);
  Table out(t.headers());
  for (std::size_t r = 0; r < t.num_rows(); ++r)
    if (t.cell(r, c) == value) out.add_row(t.rows()[r]);
  return out;
}

namespace {

const char* agg_prefix(Agg agg) {
  switch (agg) {
    case Agg::Mean: return "mean";
    case Agg::Stderr: return "stderr";
    case Agg::Min: return "min";
    case Agg::Max: return "max";
    case Agg::Count: return "count";
    case Agg::Sum: return "sum";
  }
  return "agg";
}

double aggregate_of(const support::Accumulator& acc, Agg agg) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  switch (agg) {
    case Agg::Mean:
      return acc.count() ? acc.mean() : nan;
    case Agg::Stderr:
      // Delegates to exp::stderr_of (NaN below two samples) so the sweep
      // tables and group_by aggregates can never disagree on the formula.
      return stderr_of(acc);
    case Agg::Min:
      return acc.count() ? acc.min() : nan;
    case Agg::Max:
      return acc.count() ? acc.max() : nan;
    case Agg::Count:
      return static_cast<double>(acc.count());
    case Agg::Sum:
      return acc.count() ? acc.sum() : nan;
  }
  return nan;
}

}  // namespace

Table group_by(const Table& t, const std::vector<std::string>& keys,
               const std::vector<AggSpec>& aggs) {
  WSF_REQUIRE(!keys.empty(), "group_by needs at least one key column");
  WSF_REQUIRE(!aggs.empty(), "group_by needs at least one aggregate");
  std::vector<std::size_t> key_idx;
  for (const std::string& k : keys) key_idx.push_back(t.column_index(k));
  std::vector<std::size_t> agg_idx;
  std::vector<std::string> headers = keys;
  for (const AggSpec& a : aggs) {
    agg_idx.push_back(t.column_index(a.column));
    headers.push_back(a.as.empty()
                          ? std::string(agg_prefix(a.agg)) + "_" + a.column
                          : a.as);
  }

  // Groups in first-appearance order so the output is deterministic.
  std::map<std::vector<std::string>, std::size_t> group_of;
  std::vector<std::vector<std::string>> group_keys;
  std::vector<std::vector<support::Accumulator>> group_accs;
  for (std::size_t r = 0; r < t.num_rows(); ++r) {
    std::vector<std::string> key;
    key.reserve(key_idx.size());
    for (const std::size_t c : key_idx) key.push_back(t.cell(r, c));
    auto [it, inserted] = group_of.emplace(key, group_keys.size());
    if (inserted) {
      group_keys.push_back(std::move(key));
      group_accs.emplace_back(aggs.size());
    }
    std::vector<support::Accumulator>& accs = group_accs[it->second];
    for (std::size_t a = 0; a < aggs.size(); ++a) {
      // Missing cells carry no sample; number() rejects non-numeric ones.
      const double v = t.number(r, agg_idx[a]);
      if (!std::isnan(v)) accs[a].add(v);
    }
  }

  Table out(headers);
  for (std::size_t g = 0; g < group_keys.size(); ++g) {
    out.row();
    for (const std::string& k : group_keys[g]) out.add(k);
    for (std::size_t a = 0; a < aggs.size(); ++a)
      out.add(aggregate_of(group_accs[g][a], aggs[a].agg));
  }
  return out;
}

Table pivot(const Table& t, const std::vector<std::string>& row_keys,
            const std::string& column_key,
            const std::string& value_column) {
  WSF_REQUIRE(!row_keys.empty(), "pivot needs at least one row key");
  std::vector<std::size_t> key_idx;
  for (const std::string& k : row_keys) key_idx.push_back(t.column_index(k));
  const std::size_t col_idx = t.column_index(column_key);
  const std::size_t val_idx = t.column_index(value_column);

  // Output rows and columns both in first-appearance order.
  std::map<std::vector<std::string>, std::size_t> row_of;
  std::vector<std::vector<std::string>> row_keys_seen;
  std::map<std::string, std::size_t> col_of;
  std::vector<std::string> cols_seen;
  struct Entry {
    std::size_t row, col;
    std::string value;
  };
  std::vector<Entry> entries;
  std::map<std::pair<std::size_t, std::size_t>, std::size_t> seen;
  for (std::size_t r = 0; r < t.num_rows(); ++r) {
    std::vector<std::string> key;
    key.reserve(key_idx.size());
    for (const std::size_t c : key_idx) key.push_back(t.cell(r, c));
    auto [rit, rnew] = row_of.emplace(key, row_keys_seen.size());
    if (rnew) row_keys_seen.push_back(std::move(key));
    const std::string& col_val = t.cell(r, col_idx);
    auto [cit, cnew] = col_of.emplace(col_val, cols_seen.size());
    if (cnew) cols_seen.push_back(col_val);
    WSF_REQUIRE(
        seen.emplace(std::make_pair(rit->second, cit->second), r).second,
        "pivot: two rows share " << column_key << "='" << col_val
                                 << "' under the same row key (aggregate "
                                 << "before pivoting)");
    entries.push_back({rit->second, cit->second, t.cell(r, val_idx)});
  }

  std::vector<std::string> headers = row_keys;
  headers.insert(headers.end(), cols_seen.begin(), cols_seen.end());
  Table out(headers);
  std::vector<std::vector<std::string>> matrix(
      row_keys_seen.size(),
      std::vector<std::string>(headers.size()));
  for (std::size_t g = 0; g < row_keys_seen.size(); ++g)
    for (std::size_t k = 0; k < row_keys.size(); ++k)
      matrix[g][k] = row_keys_seen[g][k];
  for (const Entry& e : entries)
    matrix[e.row][row_keys.size() + e.col] = e.value;
  for (auto& row : matrix) out.add_row(std::move(row));
  return out;
}

Table with_column(const Table& t, const std::string& name,
                  const std::function<std::string(const RowView&)>& fn) {
  std::vector<std::string> headers = t.headers();
  headers.push_back(name);
  Table out(headers);
  for (std::size_t r = 0; r < t.num_rows(); ++r) {
    std::vector<std::string> cells = t.rows()[r];
    cells.resize(t.headers().size());  // pad a short row up to the column
    cells.push_back(fn(RowView(t, r)));
    out.add_row(std::move(cells));
  }
  return out;
}

Table with_ratio(const Table& t, const std::string& name,
                 const std::string& numerator,
                 const std::string& denominator) {
  const std::size_t num_idx = t.column_index(numerator);
  const std::size_t den_idx = t.column_index(denominator);
  return with_column(t, name, [&, num_idx, den_idx](const RowView& r) {
    const double num = t.number(r.index(), num_idx);
    const double den = t.number(r.index(), den_idx);
    if (std::isnan(num) || std::isnan(den) || den == 0.0)
      return std::string();
    return support::format_double(num / den);
  });
}

Table with_constant(const Table& t, const std::string& name,
                    const std::string& value) {
  return with_column(t, name,
                     [&value](const RowView&) { return value; });
}

namespace {

// Numeric-aware cell ordering: -1 / 0 / +1.
int compare_cells(const std::string& a, const std::string& b) {
  if (a.empty() || b.empty()) {
    if (a.empty() && b.empty()) return 0;
    return a.empty() ? -1 : 1;  // missing sorts first
  }
  double na = 0.0, nb = 0.0;
  if (support::cell_to_number(a, &na) && support::cell_to_number(b, &nb)) {
    if (na < nb) return -1;
    if (na > nb) return 1;
    return 0;
  }
  return a.compare(b) < 0 ? -1 : (a == b ? 0 : 1);
}

}  // namespace

Table sort_by(const Table& t, const std::vector<std::string>& columns) {
  WSF_REQUIRE(!columns.empty(), "sort_by needs at least one column");
  std::vector<std::size_t> idx;
  for (const std::string& c : columns) idx.push_back(t.column_index(c));
  std::vector<std::size_t> order(t.num_rows());
  for (std::size_t r = 0; r < order.size(); ++r) order[r] = r;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     for (const std::size_t c : idx) {
                       const int cmp = compare_cells(t.cell(a, c),
                                                     t.cell(b, c));
                       if (cmp != 0) return cmp < 0;
                     }
                     return false;
                   });
  Table out(t.headers());
  for (const std::size_t r : order) out.add_row(t.rows()[r]);
  return out;
}

std::vector<std::string> distinct(const Table& t,
                                  const std::string& column) {
  const std::size_t c = t.column_index(column);
  std::vector<std::string> values;
  std::map<std::string, bool> seen;
  for (std::size_t r = 0; r < t.num_rows(); ++r)
    if (seen.emplace(t.cell(r, c), true).second)
      values.push_back(t.cell(r, c));
  return values;
}

Table concat(const Table& a, const Table& b) {
  WSF_REQUIRE(a.headers() == b.headers(),
              "concat: the tables have different columns");
  Table out(a.headers());
  for (const auto& row : a.rows()) out.add_row(row);
  for (const auto& row : b.rows()) out.add_row(row);
  return out;
}

Table join(const Table& left, const Table& right,
           const std::vector<std::string>& keys,
           const std::string& left_suffix, const std::string& right_suffix) {
  WSF_REQUIRE(!keys.empty(), "join needs at least one key column");
  WSF_REQUIRE(left_suffix != right_suffix,
              "join: the suffixes must differ ('" << left_suffix << "')");
  std::vector<std::size_t> lkeys, rkeys;
  for (const std::string& k : keys) {
    lkeys.push_back(left.column_index(k));
    rkeys.push_back(right.column_index(k));
  }
  const auto is_key = [&keys](const std::string& name) {
    for (const std::string& k : keys)
      if (k == name) return true;
    return false;
  };

  // Output columns: the key tuple once, then every non-key column of each
  // side, suffixed so the two runs' measures sit side by side.
  std::vector<std::string> headers = keys;
  std::vector<std::size_t> lvals, rvals;
  for (std::size_t c = 0; c < left.headers().size(); ++c)
    if (!is_key(left.headers()[c])) {
      headers.push_back(left.headers()[c] + left_suffix);
      lvals.push_back(c);
    }
  for (std::size_t c = 0; c < right.headers().size(); ++c)
    if (!is_key(right.headers()[c])) {
      headers.push_back(right.headers()[c] + right_suffix);
      rvals.push_back(c);
    }

  // Key tuple → right-row indices, preserving right order per key.
  const auto key_of = [](const Table& t, std::size_t row,
                         const std::vector<std::size_t>& cols) {
    std::string key;
    for (const std::size_t c : cols) {
      key += t.cell(row, c);
      key += '\x1f';  // unit separator: cells cannot collide across columns
    }
    return key;
  };
  std::map<std::string, std::vector<std::size_t>> by_key;
  for (std::size_t r = 0; r < right.num_rows(); ++r)
    by_key[key_of(right, r, rkeys)].push_back(r);

  Table out(std::move(headers));
  for (std::size_t lr = 0; lr < left.num_rows(); ++lr) {
    const auto it = by_key.find(key_of(left, lr, lkeys));
    if (it == by_key.end()) continue;  // inner join: unmatched rows drop
    for (const std::size_t rr : it->second) {
      std::vector<std::string> cells;
      cells.reserve(keys.size() + lvals.size() + rvals.size());
      for (const std::size_t c : lkeys) cells.push_back(left.cell(lr, c));
      for (const std::size_t c : lvals) cells.push_back(left.cell(lr, c));
      for (const std::size_t c : rvals) cells.push_back(right.cell(rr, c));
      out.add_row(std::move(cells));
    }
  }
  return out;
}

Table load_sweep(const std::string& text) {
  const std::size_t first = text.find_first_not_of(" \t\r\n");
  WSF_REQUIRE(first != std::string::npos, "empty sweep input");
  if (text[first] == '[') return Table::from_json(text);

  if (text.rfind(kCheckpointSignaturePrefix, 0) == 0) {
    // A (possibly torn) checkpoint: drop the signature line and an
    // unterminated final record, order rows by configuration index, and
    // strip the bookkeeping columns so the result is plain sweep rows.
    std::string body = text;
    if (body.back() != '\n') {
      const std::size_t last = body.rfind('\n');
      WSF_REQUIRE(last != std::string::npos,
                  "checkpoint input has no complete record");
      body.resize(last + 1);
    }
    const std::size_t line_end = body.find('\n');
    Table t = Table::from_csv(body.substr(line_end + 1));
    WSF_REQUIRE(t.headers().front() == "config_index",
                "checkpoint input is missing its config_index column");
    t = sort_by(t, {"config_index"});
    std::vector<std::string> keep;
    for (const std::string& h : t.headers())
      if (h != "config_index" && h != "wall_ms") keep.push_back(h);
    return select(t, keep);
  }
  return Table::from_csv(text);
}

namespace {

std::vector<FigureFamily> build_figure_families() {
  const std::string misses = "mean_additional_misses";
  const std::string devs = "mean_deviations";
  return {
      {"fig2", "single-touch future chain (Fig. 2): extra cache misses "
               "under parallel stealing", "procs", misses},
      {"fig3", "unstructured future passing (Fig. 3): deviation blow-up",
       "procs", devs},
      {"fig4", "multi-touch chain (Fig. 4): deviations from late touches",
       "procs", devs},
      {"fig5a", "non-LIFO touch order (Fig. 5a): deviations", "procs",
       devs},
      {"fig5b", "touch fan-in (Fig. 5b): deviations", "procs", devs},
      {"fig6a", "deviation lower bound, chain gadget (Fig. 6a)", "procs",
       devs},
      {"fig6b", "deviation lower bound, repeated gadget (Fig. 6b)",
       "procs", devs},
      {"fig6c", "deviation lower bound, nested gadget (Fig. 6c)", "procs",
       devs},
      {"fig7a", "local-touch chain (Fig. 7a): extra misses stay O(C)",
       "procs", misses},
      {"fig7b", "blocked local-touch chain (Fig. 7b): extra misses",
       "procs", misses},
      {"fig8", "super-final nodes (Fig. 8): parent-first extra misses",
       "procs", misses},
      {"chain", "serial chain baseline: extra misses", "procs", misses},
      {"future-chain", "deviation chains: extra misses vs chain length",
       "procs", misses},
      {"forkjoin", "binary fork-join tree: extra misses", "procs", misses},
      {"fib", "fib DAG: extra misses", "procs", misses},
      {"pipeline", "pipeline DAG: extra misses", "procs", misses},
      {"unstructured-mix", "structured vs unstructured ablation: "
                           "deviations", "procs", devs},
      {"random-single-touch", "random structured DAG, single touches: "
                              "extra misses", "procs", misses},
      {"random-local-touch", "random structured DAG, local touches: "
                             "extra misses", "procs", misses},
  };
}

}  // namespace

const std::vector<FigureFamily>& figure_families() {
  static const std::vector<FigureFamily> families = build_figure_families();
  return families;
}

const FigureFamily* find_figure_family(const std::string& family) {
  for (const FigureFamily& f : figure_families())
    if (f.family == family) return &f;
  return nullptr;
}

namespace {

// Quotes a .dat token when it contains whitespace (gnuplot honours double
// quotes in data files, including columnheader()).
std::string dat_token(const std::string& cell) {
  if (cell.empty()) return "NaN";
  if (cell.find_first_of(" \t\"") == std::string::npos) return cell;
  std::string quoted = "\"";
  for (const char ch : cell) {
    if (ch == '"') quoted += '\\';
    quoted += ch;
  }
  quoted += '"';
  return quoted;
}

std::string render_dat(const Table& wide, const Figure& fig) {
  std::ostringstream os;
  os << "# wsf-plot: " << fig.family << " — " << fig.measure << " vs "
     << fig.x << "\n";
  os << "# " << fig.series.size() << " series, " << fig.points
     << " points; missing cells are NaN\n";
  os << dat_token(fig.x);
  for (const std::string& s : fig.series) os << ' ' << dat_token(s);
  os << '\n';
  for (std::size_t r = 0; r < wide.num_rows(); ++r) {
    for (std::size_t c = 0; c < wide.headers().size(); ++c) {
      if (c) os << ' ';
      os << dat_token(wide.cell(r, c));
    }
    os << '\n';
  }
  return os.str();
}

std::string render_gp(const Figure& fig, const std::string& title,
                      bool categorical_x) {
  std::ostringstream os;
  os << "# gnuplot script regenerated by wsf-plot — run: gnuplot "
     << fig.family << ".gp\n";
  os << "set terminal pngcairo size 960,640\n";
  os << "set output '" << fig.family << ".png'\n";
  os << "set title \"" << title << "\"\n";
  os << "set xlabel \"" << fig.x << "\"\n";
  os << "set ylabel \"" << fig.measure << "\"\n";
  os << "set key outside right top\n";
  os << "set grid\n";
  os << "set datafile missing 'NaN'\n";
  if (categorical_x) {
    // A non-numeric x axis (layout, policy, family) plots by row ordinal
    // with the x cell as the tic label — `using 1:i` would silently drop
    // every point.
    os << "set xtics rotate by -25\n";
    os << "plot for [i=2:" << fig.series.size() + 1 << "] '" << fig.family
       << ".dat' using 0:i:xtic(1) with linespoints lw 2 pt 7 title "
       << "columnheader(i)\n";
  } else {
    os << "plot for [i=2:" << fig.series.size() + 1 << "] '" << fig.family
       << ".dat' using 1:i with linespoints lw 2 pt 7 title "
       << "columnheader(i)\n";
  }
  return os.str();
}

std::string render_ascii(const Table& wide, const Figure& fig,
                         const std::string& title) {
  constexpr std::size_t kWidth = 64;
  constexpr std::size_t kHeight = 16;
  const std::size_t n_series = fig.series.size();

  // Collect the points of every series; a non-numeric x falls back to the
  // row's ordinal position so categorical axes still preview.
  struct Point {
    double x, y;
    std::size_t series;
  };
  std::vector<Point> points;
  for (std::size_t r = 0; r < wide.num_rows(); ++r) {
    double x = 0.0;
    if (!support::cell_to_number(wide.cell(r, 0), &x) ||
        !std::isfinite(x))
      x = static_cast<double>(r);
    for (std::size_t s = 0; s < n_series; ++s) {
      double y = 0.0;
      // Non-finite cells (an overflowing literal parses to inf) would
      // poison the scale and make the grid-coordinate cast UB; skip them
      // like missing cells.
      if (support::cell_to_number(wide.cell(r, 1 + s), &y) &&
          std::isfinite(y))
        points.push_back({x, y, s});
    }
  }
  if (points.empty()) return title + "\n  (no finite data points)\n";

  double xmin = points.front().x, xmax = points.front().x;
  double ymin = points.front().y, ymax = points.front().y;
  for (const Point& p : points) {
    xmin = std::min(xmin, p.x);
    xmax = std::max(xmax, p.x);
    ymin = std::min(ymin, p.y);
    ymax = std::max(ymax, p.y);
  }
  if (xmax == xmin) xmax = xmin + 1.0;
  if (ymax == ymin) ymax = ymin + 1.0;

  std::vector<std::string> grid(kHeight, std::string(kWidth, ' '));
  for (const Point& p : points) {
    const auto col = static_cast<std::size_t>(
        (p.x - xmin) / (xmax - xmin) * (kWidth - 1) + 0.5);
    const auto row = static_cast<std::size_t>(
        (p.y - ymin) / (ymax - ymin) * (kHeight - 1) + 0.5);
    char& cell = grid[kHeight - 1 - row][col];
    const char symbol =
        static_cast<char>('A' + static_cast<char>(p.series % 26));
    cell = (cell == ' ' || cell == symbol) ? symbol : '*';
  }

  const std::string ymin_label = support::format_double(ymin);
  const std::string ymax_label = support::format_double(ymax);
  const std::size_t gutter = std::max(ymin_label.size(), ymax_label.size());
  std::ostringstream os;
  os << title << "\n";
  for (std::size_t r = 0; r < kHeight; ++r) {
    std::string label;
    if (r == 0) label = ymax_label;
    if (r == kHeight - 1) label = ymin_label;
    os << std::string(gutter - label.size(), ' ') << label << " |"
       << grid[r] << "\n";
  }
  os << std::string(gutter + 1, ' ') << '+' << std::string(kWidth, '-')
     << "\n";
  const std::string xmin_label = support::format_double(xmin);
  const std::string xmax_label = support::format_double(xmax);
  os << std::string(gutter + 2, ' ') << xmin_label;
  if (xmax_label.size() + xmin_label.size() < kWidth)
    os << std::string(kWidth - xmin_label.size() - xmax_label.size(), ' ')
       << xmax_label;
  os << "  (" << fig.x << ")\n";
  for (std::size_t s = 0; s < n_series; ++s)
    os << "  " << static_cast<char>('A' + static_cast<char>(s % 26))
       << " = " << fig.series[s] << "\n";
  return os.str();
}

}  // namespace

Figure render_figure(const Table& sweep, const std::string& family,
                     const FigureOptions& opts) {
  const FigureFamily* registered = find_figure_family(family);
  const FigureFamily defaults =
      registered ? *registered
                 : FigureFamily{family, family + " (unregistered family)",
                                "procs", "mean_additional_misses"};
  Figure fig;
  fig.family = family;
  fig.x = opts.x.empty() ? defaults.x : opts.x;
  const std::string measure =
      opts.measure.empty() ? defaults.measure : opts.measure;

  WSF_REQUIRE(sweep.has_column("family"),
              "sweep input has no 'family' column — is this wsf-sweep "
              "output?");
  Table rows = filter_eq(sweep, "family", family);
  WSF_REQUIRE(rows.num_rows() > 0,
              "no sweep rows for family '" << family
                                           << "' — was it in the grid?");
  WSF_REQUIRE(rows.has_column(fig.x),
              "x-axis column '" << fig.x << "' is not in the sweep output");
  WSF_REQUIRE(rows.has_column(measure),
              "measure column '" << measure
                                 << "' is not in the sweep output");

  fig.measure = measure;
  if (opts.normalize) {
    WSF_REQUIRE(rows.has_column("mean_seq_misses"),
                "--normalize needs the mean_seq_misses baseline column");
    fig.measure = measure + "_over_seq";
    rows = with_ratio(rows, fig.measure, measure, "mean_seq_misses");
    // Rows without a baseline (C=0 configs simulate no cache, so their
    // sequential miss count is 0) have no normalized value; drop them
    // rather than emitting NaN-only series.
    const std::string& ratio_col = fig.measure;
    rows = filter(rows, [&ratio_col](const RowView& r) {
      return !r.get(ratio_col).empty();
    });
    WSF_REQUIRE(rows.num_rows() > 0,
                "figure '" << family << "': no rows have a sequential-miss "
                           << "baseline to normalize by (all cache_lines=0?)");
  }

  // Series: the axes that actually vary within this family's rows. A file
  // holding both execution backends (wsf-sweep --backend=both) splits into
  // sim-vs-runtime series the same way a --compare run pair does.
  std::vector<std::string> series_cols = opts.series_columns;
  if (series_cols.empty()) {
    for (const char* cand : {"policy", "touch_enable", "cache_lines",
                             "procs", "layout", "steal", "victim", "size",
                             "size2", "backend", "run"})
      if (std::string(cand) != fig.x && rows.has_column(cand) &&
          distinct(rows, cand).size() > 1)
        series_cols.push_back(cand);
  }
  const std::string fallback_label = fig.measure;
  rows = with_column(rows, "__series",
                     [&series_cols, &fallback_label](const RowView& r) {
    if (series_cols.empty()) return fallback_label;
    std::string label;
    for (const std::string& col : series_cols) {
      std::string part;
      if (col == "policy" || col == "touch_enable" || col == "run" ||
          col == "backend" || col == "layout" || col == "steal" ||
          col == "victim")
        part = r.get(col);
      else if (col == "cache_lines")
        part = "C=" + r.get(col);
      else if (col == "procs")
        part = "P=" + r.get(col);
      else
        part = col + "=" + r.get(col);
      label += (label.empty() ? "" : " ") + part;
    }
    return label;
  });

  Table wide = sort_by(pivot(rows, {fig.x}, "__series", fig.measure),
                       {fig.x});
  fig.points = wide.num_rows();
  fig.series.assign(wide.headers().begin() + 1, wide.headers().end());

  // A series with no finite value means the data path silently broke
  // (wrong column, all-missing cells); fail the figure, not just the plot.
  bool any_point = false;
  for (std::size_t s = 0; s < fig.series.size(); ++s) {
    std::size_t finite = 0;
    for (std::size_t r = 0; r < wide.num_rows(); ++r) {
      double v = 0.0;
      if (support::cell_to_number(wide.cell(r, 1 + s), &v) &&
          std::isfinite(v))
        ++finite;
    }
    WSF_REQUIRE(finite > 0, "figure '" << family << "': series '"
                                       << fig.series[s]
                                       << "' is empty or NaN-only");
    any_point = true;
  }
  WSF_REQUIRE(any_point && fig.points > 0,
              "figure '" << family << "' has no data points");

  // Categorical x (layout, policy, …): any non-numeric cell switches the
  // gnuplot script to ordinal-position plotting with xtic labels.
  bool categorical_x = false;
  for (std::size_t r = 0; r < wide.num_rows() && !categorical_x; ++r) {
    double v = 0.0;
    if (!support::cell_to_number(wide.cell(r, 0), &v)) categorical_x = true;
  }

  const std::string title = defaults.title;
  fig.dat = render_dat(wide, fig);
  fig.gp = render_gp(fig, title, categorical_x);
  fig.ascii = render_ascii(wide, fig, title);
  return fig;
}

}  // namespace wsf::exp::analysis
