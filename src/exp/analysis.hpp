// Relational analysis over sweep tables and paper-figure regeneration.
//
// Everything here is a pure function from support::Table to support::Table
// (or to rendered figure text), so the same pipeline composes over a
// single-run sweep CSV, a resumed checkpoint, the merge of shard
// checkpoints, or an in-memory to_table() result: load_sweep() normalizes
// any of those into sweep rows, the relational ops (select / filter /
// group_by / pivot / derived columns) reshape them, and render_figure()
// turns one graph family's rows into a gnuplot-ready .dat/.gp pair plus a
// self-contained ASCII preview — the paper's cache-miss and deviation
// curves regenerated from raw rows. The wsf-plot CLI (tools/wsf_plot.cpp)
// is a thin I/O wrapper over this header.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "support/table.hpp"

namespace wsf::exp::analysis {

/// Read-only view of one table row, handed to predicates and
/// derived-column functions.
class RowView {
 public:
  RowView(const support::Table& table, std::size_t row)
      : table_(&table), row_(row) {}

  /// The cell under the named column ("" when the row is short).
  const std::string& get(const std::string& column) const {
    return table_->cell(row_, table_->column_index(column));
  }
  /// The cell as a double: NaN when missing, CheckError when non-numeric.
  double num(const std::string& column) const {
    return table_->number(row_, table_->column_index(column));
  }
  std::size_t index() const { return row_; }

 private:
  const support::Table* table_;
  std::size_t row_;
};

/// Projection: the named columns, in the given order (columns may repeat).
support::Table select(const support::Table& t,
                      const std::vector<std::string>& columns);

/// Rows for which the predicate holds, in order.
support::Table filter(const support::Table& t,
                      const std::function<bool(const RowView&)>& pred);

/// Rows whose `column` cell equals `value` exactly.
support::Table filter_eq(const support::Table& t, const std::string& column,
                         const std::string& value);

/// Aggregations group_by can compute over a numeric column. Missing
/// (empty) cells are skipped; a group whose cells are all missing yields a
/// missing cell. Stderr is stddev/sqrt(n), missing below two samples —
/// the same convention as exp::stderr_of.
enum class Agg { Mean, Stderr, Min, Max, Count, Sum };

struct AggSpec {
  std::string column;
  Agg agg = Agg::Mean;
  /// Output column name; empty derives "<agg>_<column>" (e.g.
  /// "mean_steals").
  std::string as;
};

/// SQL-style group-by: one output row per distinct key tuple (in first-
/// appearance order — deterministic), key columns first, then one column
/// per aggregate.
support::Table group_by(const support::Table& t,
                        const std::vector<std::string>& keys,
                        const std::vector<AggSpec>& aggs);

/// Long→wide reshape: rows sharing a `row_keys` tuple collapse into one
/// output row; each distinct `column_key` value becomes its own column (in
/// first-appearance order) holding that row's `value_column` cell.
/// Combinations never seen stay missing; a (row_keys, column_key) pair
/// seen twice is an error — aggregate first if that can happen.
support::Table pivot(const support::Table& t,
                     const std::vector<std::string>& row_keys,
                     const std::string& column_key,
                     const std::string& value_column);

/// Appends a derived column computed per row.
support::Table with_column(const support::Table& t, const std::string& name,
                           const std::function<std::string(const RowView&)>& fn);

/// Appends `name` = numerator / denominator per row, format_double-
/// rendered; missing when either side is missing or the denominator is 0.
/// The paper's derived measures are ratios of sweep columns — e.g.
/// miss-ratio-vs-sequential-baseline
///   with_ratio(t, "miss_ratio", "mean_additional_misses",
///              "mean_seq_misses")
/// or speedup of a measure between two pivoted policy columns.
support::Table with_ratio(const support::Table& t, const std::string& name,
                          const std::string& numerator,
                          const std::string& denominator);

/// Appends a constant column (used to tag rows with their run before
/// concatenating two sweeps for a --compare overlay).
support::Table with_constant(const support::Table& t, const std::string& name,
                             const std::string& value);

/// Stable sort by the listed columns, leftmost major. Two cells that both
/// parse as numbers compare numerically; otherwise lexicographically;
/// missing cells sort first.
support::Table sort_by(const support::Table& t,
                       const std::vector<std::string>& columns);

/// Distinct values of one column, in first-appearance order.
std::vector<std::string> distinct(const support::Table& t,
                                  const std::string& column);

/// Vertical concatenation; headers must agree exactly.
support::Table concat(const support::Table& a, const support::Table& b);

/// SQL-style inner join on an equal key tuple: one output row per matching
/// (left row, right row) pair, left order major, right order minor. Output
/// columns are the keys once, then every non-key column of the left table
/// suffixed with `left_suffix`, then every non-key column of the right
/// table suffixed with `right_suffix` — the multi-measure wide shape the
/// sim-vs-runtime comparison table is built from:
///   join(sim_rows, runtime_rows, {"family", "procs", "policy", …})
/// puts mean_deviations_A (simulated) next to mean_deviations_B (measured
/// on the real scheduler) for every grid point. Unmatched rows drop;
/// missing key columns throw wsf::CheckError.
support::Table join(const support::Table& left, const support::Table& right,
                    const std::vector<std::string>& keys,
                    const std::string& left_suffix = "_A",
                    const std::string& right_suffix = "_B");

/// Normalizes any sweep output format into plain sweep rows:
///   - a sweep CSV (wsf-sweep --format=csv, or merge_checkpoints output),
///   - a checkpoint file (signature line recognized and dropped, rows
///     reordered by config_index, the config_index / wall_ms bookkeeping
///     columns stripped — a torn final line is dropped, as on resume),
///   - a sweep JSON array (wsf-sweep --format=json).
/// A two-shard merged run therefore loads byte-for-byte identically to a
/// single run, which render_figure preserves.
support::Table load_sweep(const std::string& text);

/// One paper figure family the regeneration pipeline knows: which graph
/// family's rows it draws, what the paper plots on each axis, and a title.
struct FigureFamily {
  std::string family;   // the sweep "family" column value (registry name)
  std::string title;    // what the paper's figure shows
  std::string x = "procs";
  std::string measure = "mean_additional_misses";
};

/// Every registered figure family (the paper's fig2–fig8 constructions,
/// the chain/ablation/forkjoin/pipeline families, and the random DAGs):
/// one entry per graphs::registry_names() name.
const std::vector<FigureFamily>& figure_families();

/// The registered entry for one family name; nullptr when unknown.
const FigureFamily* find_figure_family(const std::string& family);

struct FigureOptions {
  /// Measure (y) column; empty uses the family default.
  std::string measure;
  /// X-axis column; empty uses the family default ("procs").
  std::string x;
  /// Divide the measure by the sequential-baseline column
  /// (mean_seq_misses), the paper's relative-overhead presentation.
  bool normalize = false;
  /// Columns whose distinct values split the rows into series. Empty
  /// auto-selects, in this order, those of {policy, touch_enable,
  /// cache_lines, size, size2, run} that exist and vary within the family.
  std::vector<std::string> series_columns;
};

/// One regenerated figure: gnuplot data + script + ASCII preview.
struct Figure {
  std::string family;
  std::string measure;     // resolved y-axis column (after --normalize)
  std::string x;           // resolved x-axis column
  std::string dat;         // whitespace .dat: x, then one column per series
  std::string gp;          // gnuplot script plotting <family>.dat
  std::string ascii;       // self-contained ASCII chart with legend
  std::vector<std::string> series;  // series labels, .dat column order
  std::size_t points = 0;           // rows in the .dat body
};

/// Regenerates one family's figure from sweep rows. Pure: identical input
/// tables give byte-identical .dat/.gp/ascii. Throws wsf::CheckError when
/// the family has no rows, the x/measure columns are absent, or any series
/// ends up empty or NaN-only — so a silently-broken data path fails a CI
/// job instead of uploading an empty plot.
Figure render_figure(const support::Table& sweep, const std::string& family,
                     const FigureOptions& opts = {});

}  // namespace wsf::exp::analysis
