#include "exp/checkpoint.hpp"

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "support/check.hpp"

namespace wsf::exp {

namespace {

constexpr const char* kSignaturePrefix = kCheckpointSignaturePrefix;

std::size_t parse_config_index(const std::string& cell) {
  WSF_REQUIRE(!cell.empty() &&
                  cell.find_first_not_of("0123456789") == std::string::npos,
              "checkpoint: bad config_index '" << cell << "'");
  try {
    return static_cast<std::size_t>(std::stoull(cell));
  } catch (const std::out_of_range&) {
    WSF_REQUIRE(false, "checkpoint: config_index out of range: '" << cell
                                                                  << "'");
  }
  return 0;  // unreachable
}

// Verifies the configuration-identity columns of a restored row (family,
// sizes, P, policies, cache geometry — as opposed to measured values)
// against the config the resuming spec expanded at that index. The spec
// signature already covers the whole grid; this per-row check additionally
// pins each row to its index.
void check_row_matches_config(const std::vector<std::string>& headers,
                              const std::vector<std::string>& cells,
                              const SweepConfig& config,
                              std::uint64_t seeds, std::size_t index) {
  std::map<std::string, std::string> expected;
  expected["backend"] = to_string(config.backend);
  expected["family"] = config.family;
  expected["size"] = std::to_string(config.params.size);
  expected["size2"] = std::to_string(config.params.size2);
  expected["procs"] = std::to_string(config.options.procs);
  expected["policy"] = to_string(config.options.policy);
  expected["touch_enable"] = to_string(config.options.touch_enable);
  expected["cache_lines"] = std::to_string(config.options.cache_lines);
  expected["layout"] = core::to_string(config.layout);
  expected["steal"] = core::to_string(config.options.steal_policy);
  expected["victim"] = core::to_string(config.options.victim_policy);
  expected["replicates"] = std::to_string(seeds);
  for (std::size_t c = 0; c < headers.size() && c < cells.size(); ++c) {
    const auto it = expected.find(headers[c]);
    if (it == expected.end()) continue;
    WSF_REQUIRE(cells[c] == it->second,
                "checkpoint row for config "
                    << index << " does not match this sweep spec: column '"
                    << headers[c] << "' is '" << cells[c] << "', expected '"
                    << it->second
                    << "' (was the checkpoint written by a different grid?)");
  }
}

// Reads a whole file; empty string when unreadable (the caller decides
// whether that is an error).
std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return std::string();
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace

std::vector<std::string> checkpoint_headers() {
  std::vector<std::string> headers{"config_index", "wall_ms"};
  const std::vector<std::string> table = sweep_table_headers();
  headers.insert(headers.end(), table.begin(), table.end());
  return headers;
}

std::string spec_signature(const SweepSpec& spec) {
  const std::vector<GraphAxis> axes = flatten_graph_axes(spec);
  const std::size_t configs = spec.backends.size() * axes.size() *
                              spec.cache_lines.size() *
                              spec.layouts.size() * spec.procs.size() *
                              spec.policies.size() *
                              spec.touch_enables.size() *
                              spec.steal_policies.size() *
                              spec.victim_policies.size();
  // The stall probability must be encoded losslessly (%.17g, not the
  // table's 4-decimal rendering): two runs whose stall values agree only
  // to 4 decimals are different experiments and must not splice.
  char stall[32];
  std::snprintf(stall, sizeof stall, "%.17g", spec.stall_prob);
  std::ostringstream os;
  // merge_checkpoints parses the configs= token back out to know the full
  // grid size; keep it first and space-delimited.
  os << "configs=" << configs << " backends=";
  for (const BackendKind b : spec.backends) os << to_string(b) << ';';
  os << " graphs=";
  for (const GraphAxis& axis : axes)
    os << axis.family << ':' << axis.params.size << ':' << axis.params.size2
       << ':' << axis.params.seed << ';';
  os << " procs=";
  for (const std::uint32_t p : spec.procs) os << p << ';';
  os << " policies=";
  for (const core::ForkPolicy p : spec.policies) os << to_string(p) << ';';
  os << " touch=";
  for (const sched::TouchEnable t : spec.touch_enables)
    os << to_string(t) << ';';
  os << " cache_lines=";
  for (const std::size_t c : spec.cache_lines) os << c << ';';
  os << " layouts=";
  for (const core::NodeOrderKind k : spec.layouts)
    os << core::to_string(k) << ';';
  os << " steals=";
  for (const core::StealPolicy s : spec.steal_policies)
    os << core::to_string(s) << ';';
  os << " victims=";
  for (const core::VictimPolicy v : spec.victim_policies)
    os << core::to_string(v) << ';';
  os << " cache_policy=" << spec.cache_policy << " stall=" << stall
     << " seeds=" << spec.seeds << " seed_base=" << spec.seed_base
     << " max_steps=" << spec.max_steps;
  return os.str();
}

Checkpoint load_checkpoint(const std::string& path) {
  std::string text = slurp(path);
  WSF_REQUIRE(!text.empty(), "cannot read checkpoint '" << path << "'");
  // The writer terminates every record with '\n', so a final line without
  // one is the torn tail of a killed run — drop it. (This also catches
  // tears that land inside the last field: such a record can still have a
  // plausible field count, so newline termination, not arity, is the
  // completeness test.)
  if (text.back() != '\n') {
    const std::size_t last_newline = text.rfind('\n');
    WSF_REQUIRE(last_newline != std::string::npos,
                "checkpoint '" << path << "' has no complete record");
    text.resize(last_newline + 1);
  }

  const std::size_t line_end = text.find('\n');
  const std::string first_line = text.substr(0, line_end);
  WSF_REQUIRE(first_line.rfind(kSignaturePrefix, 0) == 0,
              "'" << path << "' is not a sweep checkpoint (missing '"
                  << kSignaturePrefix << "' signature line)");
  Checkpoint checkpoint{
      first_line.substr(std::string(kSignaturePrefix).size()),
      support::Table::from_csv(text.substr(line_end + 1))};

  const support::Table& table = checkpoint.table;
  WSF_REQUIRE(!table.headers().empty() &&
                  table.headers().front() == "config_index",
              "'" << path << "' is not a sweep checkpoint (first column "
                  << "must be config_index)");
  for (std::size_t r = 0; r < table.rows().size(); ++r)
    WSF_REQUIRE(table.rows()[r].size() == table.headers().size(),
                "checkpoint '" << path << "': record " << r + 3 << " has "
                               << table.rows()[r].size() << " of "
                               << table.headers().size() << " fields");
  return checkpoint;
}

support::Table merge_checkpoints(const std::vector<Checkpoint>& shards) {
  WSF_REQUIRE(!shards.empty(), "nothing to merge");
  const std::vector<std::string>& headers = shards.front().table.headers();
  // Same check the resume path makes: a checkpoint from a build with a
  // different column set must not quietly produce a foreign-layout CSV.
  WSF_REQUIRE(headers == checkpoint_headers(),
              "merge inputs have a different column set than this build "
              "emits");
  std::map<std::size_t, const std::vector<std::string>*> by_index;
  for (std::size_t s = 0; s < shards.size(); ++s) {
    WSF_REQUIRE(shards[s].signature == shards.front().signature,
                "shard " << s << " was written by a different sweep spec "
                         << "(signature mismatch)");
    WSF_REQUIRE(shards[s].table.headers() == headers,
                "shard " << s << " has a different column set");
    for (const auto& cells : shards[s].table.rows()) {
      const std::size_t index = parse_config_index(cells.front());
      WSF_REQUIRE(by_index.emplace(index, &cells).second,
                  "config " << index << " appears in more than one shard");
    }
  }
  // The signature's configs= token gives the full grid size, so missing
  // *trailing* configurations are caught too (a max-index contiguity check
  // alone would silently accept a truncated final shard).
  const std::string& signature = shards.front().signature;
  constexpr const char* kConfigsToken = "configs=";
  WSF_REQUIRE(signature.rfind(kConfigsToken, 0) == 0,
              "checkpoint signature lacks the configs= token: '" << signature
                                                                 << "'");
  const std::size_t expected = parse_config_index(signature.substr(
      std::string(kConfigsToken).size(),
      signature.find(' ') - std::string(kConfigsToken).size()));
  WSF_REQUIRE(!by_index.empty(), "merge inputs contain no rows");
  WSF_REQUIRE(by_index.rbegin()->first < expected,
              "config " << by_index.rbegin()->first
                        << " out of range for a " << expected
                        << "-config grid");
  WSF_REQUIRE(by_index.size() == expected,
              "merged shards are incomplete: " << by_index.size() << " of "
                  << expected
                  << " configs present (did every shard finish?)");

  // Strip the bookkeeping columns (config_index, wall_ms): the merged
  // table must be byte-identical to an unsharded run's, and wall times are
  // machine-dependent.
  support::Table merged(
      std::vector<std::string>(headers.begin() + 2, headers.end()));
  for (const auto& [index, cells] : by_index)
    merged.add_row(std::vector<std::string>(cells->begin() + 2,
                                            cells->end()));
  return merged;
}

support::Table run_sweep_table(const SweepSpec& spec,
                               const SweepTableOptions& opts) {
  WSF_REQUIRE(opts.shard.count >= 1, "shard count must be at least 1");
  WSF_REQUIRE(opts.shard.index < opts.shard.count,
              "shard index " << opts.shard.index << " out of range for "
                             << opts.shard.count << " shards");
  const std::vector<SweepConfig> configs = expand_spec(spec);
  const std::vector<std::string> table_headers = sweep_table_headers();
  const std::vector<std::string> ckpt_headers = checkpoint_headers();
  const std::string signature = spec_signature(spec);

  // Restore configurations an earlier (killed) run already finished. A
  // resumable checkpoint has at least its signature and header lines
  // complete (two newlines); a file killed during that initial write is
  // rewritten from scratch — but only if it is recognizably ours, so a
  // wrong --checkpoint path never clobbers an unrelated file.
  std::map<std::size_t, std::vector<std::string>> restored;
  bool resuming = false;
  if (!opts.checkpoint_path.empty()) {
    const std::string existing = slurp(opts.checkpoint_path);
    const std::size_t first_newline = existing.find('\n');
    resuming = first_newline != std::string::npos &&
               existing.find('\n', first_newline + 1) != std::string::npos;
    if (!existing.empty() && !resuming) {
      // Compare as far as the (possibly torn) first line goes.
      const std::string prefix = kSignaturePrefix;
      const std::size_t n = std::min(existing.size(), prefix.size());
      WSF_REQUIRE(existing.compare(0, n, prefix, 0, n) == 0,
                  "refusing to overwrite '" << opts.checkpoint_path
                      << "': not a wsf-sweep checkpoint");
    }
  }
  if (resuming) {
    const Checkpoint ckpt = load_checkpoint(opts.checkpoint_path);
    WSF_REQUIRE(ckpt.signature == signature,
                "checkpoint '" << opts.checkpoint_path
                               << "' was written by a different sweep spec:\n"
                               << "  checkpoint: " << ckpt.signature << "\n"
                               << "  this run:   " << signature);
    WSF_REQUIRE(ckpt.table.headers() == ckpt_headers,
                "checkpoint '" << opts.checkpoint_path
                               << "' has a different column set than this "
                               << "build emits");
    for (const auto& cells : ckpt.table.rows()) {
      const std::size_t index = parse_config_index(cells.front());
      WSF_REQUIRE(index < configs.size(),
                  "checkpoint config_index " << index << " out of range ("
                      << configs.size() << " configs in this grid)");
      WSF_REQUIRE(index % opts.shard.count == opts.shard.index,
                  "checkpoint config " << index << " is not owned by shard "
                      << opts.shard.index << "/" << opts.shard.count);
      check_row_matches_config(ckpt_headers, cells, configs[index],
                               spec.seeds, index);
      WSF_REQUIRE(!cells[1].empty() &&
                      cells[1].find_first_not_of("0123456789") ==
                          std::string::npos,
                  "checkpoint row for config " << index
                                               << " has a bad wall_ms cell '"
                                               << cells[1] << "'");
      std::vector<std::string> row(cells.begin() + 1, cells.end());
      WSF_REQUIRE(restored.emplace(index, std::move(row)).second,
                  "checkpoint lists config " << index << " twice");
    }
    // Rewrite the checkpoint from the validated rows (atomically, via a
    // temp file) before appending: a killed run can leave a torn final
    // line, and appending after it would splice two records into one.
    const std::string tmp_path = opts.checkpoint_path + ".tmp";
    {
      std::ofstream tmp(tmp_path, std::ios::trunc | std::ios::binary);
      WSF_REQUIRE(tmp.good(), "cannot write '" << tmp_path << "'");
      tmp << kSignaturePrefix << signature << '\n';
      tmp << support::csv_line(ckpt_headers);
      for (const auto& [index, row] : restored) {
        std::vector<std::string> cells;
        cells.reserve(ckpt_headers.size());
        cells.push_back(std::to_string(index));
        cells.insert(cells.end(), row.begin(), row.end());
        tmp << support::csv_line(cells);
      }
      tmp.flush();
      WSF_REQUIRE(tmp.good(), "write to '" << tmp_path << "' failed");
    }
    WSF_REQUIRE(std::rename(tmp_path.c_str(),
                            opts.checkpoint_path.c_str()) == 0,
                "cannot replace checkpoint '" << opts.checkpoint_path
                                              << "'");
  }

  std::ofstream ckpt_out;
  if (!opts.checkpoint_path.empty()) {
    ckpt_out.open(opts.checkpoint_path,
                  resuming ? std::ios::app | std::ios::binary
                           : std::ios::trunc | std::ios::binary);
    WSF_REQUIRE(ckpt_out.good(),
                "cannot open checkpoint '" << opts.checkpoint_path
                                           << "' for writing");
    if (!resuming) {
      ckpt_out << kSignaturePrefix << signature << '\n';
      ckpt_out << support::csv_line(ckpt_headers);
      ckpt_out.flush();
    }
  }

  // Heartbeat bookkeeping: how many configurations this shard owns, how
  // many are already done (restored), and when execution started — enough
  // for a done/total + ETA line per finished configuration.
  std::size_t owned = 0;
  for (std::size_t i = opts.shard.index; i < configs.size();
       i += opts.shard.count)
    ++owned;
  std::size_t done = restored.size();
  std::size_t executed = 0;
  const auto progress_start = std::chrono::steady_clock::now();
  if (opts.progress && !restored.empty())
    *opts.progress << "wsf-sweep: resumed " << restored.size() << "/"
                   << owned << " configs from checkpoint\n";

  SweepRunOptions run_opts;
  run_opts.threads = opts.threads;
  run_opts.shard = opts.shard;
  run_opts.skip = [&restored](std::size_t index) {
    return restored.count(index) != 0;
  };
  // Rendered once per executed config (on_row is serialized) and reused
  // for the final table, so row formatting is not paid twice.
  std::map<std::size_t, std::vector<std::string>> rendered;
  run_opts.on_row = [&](std::size_t index, const SweepRow& row) {
    const auto it =
        rendered.emplace(index, sweep_row_cells(row.config, row.cell)).first;
    if (ckpt_out.is_open()) {
      std::vector<std::string> cells;
      cells.reserve(ckpt_headers.size());
      cells.push_back(std::to_string(index));
      cells.push_back(std::to_string(row.wall_ms));
      cells.insert(cells.end(), it->second.begin(), it->second.end());
      ckpt_out << support::csv_line(cells);
      ckpt_out.flush();
      WSF_REQUIRE(ckpt_out.good(), "checkpoint append to '"
                                       << opts.checkpoint_path
                                       << "' failed");
    }
    if (opts.progress) {
      ++done;
      ++executed;
      const double elapsed_s =
          std::chrono::duration_cast<std::chrono::duration<double>>(
              std::chrono::steady_clock::now() - progress_start)
              .count();
      const std::size_t remaining = owned - done;
      const double eta_s =
          executed ? elapsed_s / static_cast<double>(executed) *
                         static_cast<double>(remaining)
                   : 0.0;
      char line[160];
      std::snprintf(line, sizeof line,
                    "wsf-sweep: %zu/%zu configs (%.1f%%), elapsed %.1fs, "
                    "ETA %.1fs\n",
                    done, owned,
                    100.0 * static_cast<double>(done) /
                        static_cast<double>(owned ? owned : 1),
                    elapsed_s, eta_s);
      *opts.progress << line;
      opts.progress->flush();
    }
    if (opts.on_row) opts.on_row(index, row);
  };
  (void)run_sweep_expanded(spec, configs, run_opts);

  support::Table table(table_headers);
  for (std::size_t i = opts.shard.index; i < configs.size();
       i += opts.shard.count) {
    const auto restored_it = restored.find(i);
    if (restored_it != restored.end()) {
      // Drop the leading wall_ms bookkeeping cell (see checkpoint_headers).
      table.add_row(std::vector<std::string>(restored_it->second.begin() + 1,
                                             restored_it->second.end()));
      continue;
    }
    const auto rendered_it = rendered.find(i);
    WSF_CHECK(rendered_it != rendered.end(),
              "config " << i << " neither restored nor executed");
    table.add_row(std::move(rendered_it->second));
  }
  return table;
}

}  // namespace wsf::exp
