#include "exp/sweep.hpp"

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "core/deviation.hpp"
#include "sched/sequential.hpp"
#include "sched/simulator.hpp"
#include "support/check.hpp"

namespace wsf::exp {

SweepSpec smoke_spec() {
  SweepSpec spec;
  graphs::RegistryParams params;
  params.size = 4;
  params.size2 = 3;
  for (const char* family : {"fig2", "fig4"})
    spec.graphs.push_back({family, params, {}});
  spec.procs = {1, 2, 4, 8, 16};
  spec.policies = {core::ForkPolicy::FutureFirst,
                   core::ForkPolicy::ParentFirst};
  spec.touch_enables = {sched::TouchEnable::TouchFirst,
                        sched::TouchEnable::ContinuationFirst};
  spec.cache_lines = {0, 4, 8};
  spec.seeds = 2;
  return spec;
}

std::vector<GraphAxis> flatten_graph_axes(const SweepSpec& spec) {
  std::vector<GraphAxis> flat;
  for (const GraphAxis& axis : spec.graphs) {
    if (axis.sizes.empty()) {
      flat.push_back({axis.family, axis.params, {}});
      continue;
    }
    for (const std::uint32_t size : axis.sizes) {
      GraphAxis single{axis.family, axis.params, {}};
      single.params.size = size;
      flat.push_back(std::move(single));
    }
  }
  return flat;
}

std::vector<SweepConfig> expand_spec(const SweepSpec& spec) {
  WSF_REQUIRE(!spec.graphs.empty(), "sweep needs at least one graph axis");
  WSF_REQUIRE(!spec.backends.empty(),
              "sweep needs at least one execution backend");
  WSF_REQUIRE(!spec.procs.empty(), "sweep needs at least one P value");
  WSF_REQUIRE(!spec.policies.empty(), "sweep needs at least one fork policy");
  WSF_REQUIRE(!spec.touch_enables.empty(),
              "sweep needs at least one touch-enable rule");
  WSF_REQUIRE(!spec.cache_lines.empty(),
              "sweep needs at least one cache geometry (0 = no cache)");
  WSF_REQUIRE(!spec.layouts.empty(),
              "sweep needs at least one node layout order");
  WSF_REQUIRE(!spec.steal_policies.empty(),
              "sweep needs at least one steal policy");
  WSF_REQUIRE(!spec.victim_policies.empty(),
              "sweep needs at least one victim policy");
  WSF_REQUIRE(spec.seeds >= 1, "sweep needs at least one seed replicate");

  const std::vector<GraphAxis> axes = flatten_graph_axes(spec);
  std::vector<SweepConfig> configs;
  configs.reserve(spec.backends.size() * axes.size() *
                  spec.cache_lines.size() * spec.layouts.size() *
                  spec.procs.size() * spec.policies.size() *
                  spec.touch_enables.size() * spec.steal_policies.size() *
                  spec.victim_policies.size());
  for (const BackendKind backend : spec.backends) {
    for (std::size_t gi = 0; gi < axes.size(); ++gi) {
      for (std::size_t ci = 0; ci < spec.cache_lines.size(); ++ci) {
        for (std::size_t li = 0; li < spec.layouts.size(); ++li) {
          for (const std::uint32_t procs : spec.procs) {
            for (const core::ForkPolicy policy : spec.policies) {
              for (const sched::TouchEnable touch : spec.touch_enables) {
                for (const core::StealPolicy steal : spec.steal_policies) {
                  for (const core::VictimPolicy victim :
                       spec.victim_policies) {
                    SweepConfig cfg;
                    cfg.family = axes[gi].family;
                    cfg.params = axes[gi].params;
                    cfg.params.cache_lines = spec.cache_lines[ci];
                    // Both backends of one grid point replay one shared
                    // graph (generate_graphs order: axes × cache_lines ×
                    // layouts; the steal axes reuse it untouched).
                    cfg.graph_index =
                        (gi * spec.cache_lines.size() + ci) *
                            spec.layouts.size() +
                        li;
                    cfg.backend = backend;
                    cfg.layout = spec.layouts[li];
                    cfg.options.procs = procs;
                    cfg.options.policy = policy;
                    cfg.options.touch_enable = touch;
                    cfg.options.steal_policy = steal;
                    cfg.options.victim_policy = victim;
                    cfg.options.cache_lines = spec.cache_lines[ci];
                    cfg.options.cache_policy = spec.cache_policy;
                    cfg.options.stall_prob = spec.stall_prob;
                    cfg.options.seed = spec.seed_base;
                    cfg.options.max_steps = spec.max_steps;
                    configs.push_back(cfg);
                  }
                }
              }
            }
          }
        }
      }
    }
  }
  return configs;
}

std::vector<graphs::GeneratedDag> generate_graphs(const SweepSpec& spec) {
  const std::vector<GraphAxis> axes = flatten_graph_axes(spec);
  std::vector<graphs::GeneratedDag> out;
  out.reserve(axes.size() * spec.cache_lines.size() * spec.layouts.size());
  for (const GraphAxis& axis : axes) {
    for (const std::size_t lines : spec.cache_lines) {
      graphs::RegistryParams params = axis.params;
      params.cache_lines = lines;
      const graphs::GeneratedDag base = graphs::make_named(axis.family,
                                                           params);
      for (const core::NodeOrderKind kind : spec.layouts) {
        if (kind == core::NodeOrderKind::Construction) {
          out.push_back(base);
          continue;
        }
        // Same DAG, nodes renumbered into the layout order; the random
        // order is seeded from the axis seed so the grid stays
        // reproducible from the spec alone.
        const core::NodeOrder order =
            sched::make_node_order(base.graph, kind, axis.params.seed);
        graphs::GeneratedDag variant = base;
        variant.graph = core::relabeled_graph(base.graph, order.new_id_of);
        variant.name = base.name + "@" + core::to_string(kind);
        out.push_back(std::move(variant));
      }
    }
  }
  return out;
}

SweepCell run_replicates(const core::Graph& g, sched::SimOptions opts,
                         std::uint64_t seed_base, std::uint64_t seed_count) {
  WSF_REQUIRE(seed_count >= 1, "need at least one replicate");
  SweepCell cell;
  // The DAG stats and the sequential baseline are seed-independent, so they
  // are computed once per cell instead of once per replicate the way a
  // per-seed run_experiment() loop would; each replicate then runs only the
  // parallel simulation and the deviation comparison. Cell values are
  // identical to run_experiment()'s by construction.
  cell.stats = core::compute_stats(g);
  const sched::SeqResult seq = sched::run_sequential(g, opts);
  opts.record_trace = true;  // deviation counting needs proc_orders
  opts.seed = seed_base;
  // The whole replicate batch runs through one simulator arena and one
  // deviation counter: reset(seed) rewinds the simulator in place,
  // run_in_place() recycles the result's trace vectors, and the counter
  // keeps its predecessor/flag tables — so a steady-state replicate pays
  // no per-seed allocation at all (simulator state, result vectors, or
  // deviation report).
  sched::Simulator sim(g, opts);
  core::DeviationCounter dev_counter(g, seq.order);
  for (std::uint64_t k = 0; k < seed_count; ++k) {
    if (k > 0) sim.reset(seed_base + k);
    const sched::SimResult& par = sim.run_in_place();
    const core::DeviationReport& deviations =
        dev_counter.count(par.proc_orders);
    const auto additional_misses =
        static_cast<std::int64_t>(par.total_misses()) -
        static_cast<std::int64_t>(seq.misses);
    cell.deviations.add(static_cast<double>(deviations.deviations));
    cell.additional_misses.add(static_cast<double>(additional_misses));
    cell.seq_misses.add(static_cast<double>(seq.misses));
    cell.steals.add(static_cast<double>(par.steals));
    cell.declined_steals.add(static_cast<double>(par.declined_steals));
    cell.steps.add(static_cast<double>(par.steps));
    cell.premature_touches.add(static_cast<double>(par.premature_touches));
    cell.batch_stolen_items.add(static_cast<double>(par.batch_stolen_items));
  }
  return cell;
}

double stderr_of(const support::Accumulator& acc) {
  // One sample has no spread estimate; reporting 0 would be false
  // precision, so the cell is marked missing (NaN renders as "—"/blank).
  if (acc.count() < 2) return std::numeric_limits<double>::quiet_NaN();
  return acc.stddev() / std::sqrt(static_cast<double>(acc.count()));
}

std::vector<std::string> sweep_table_headers() {
  return {"backend", "family", "size", "size2", "nodes", "span", "touches",
          "procs", "policy", "touch_enable", "cache_lines", "layout",
          "steal", "victim", "replicates",
          "mean_deviations", "stderr_deviations", "mean_additional_misses",
          "stderr_additional_misses", "mean_seq_misses", "mean_steals",
          "stderr_steals", "mean_steps", "mean_declined_steals",
          "mean_premature_touches", "mean_parked_touches",
          "mean_fiber_switches", "mean_migrations", "mean_wall_us",
          "mean_batch_stolen_items"};
}

void add_sweep_row(support::Table& table, const SweepConfig& c,
                   const SweepCell& cell) {
  // A measure the configuration's backend never produced (count 0) is a
  // missing cell, not a fake 0 — NaN renders as "—"/blank/null.
  const auto mean_or_missing = [](const support::Accumulator& acc) {
    return acc.count() ? acc.mean()
                       : std::numeric_limits<double>::quiet_NaN();
  };
  table.row()
      .add(to_string(c.backend))
      .add(c.family)
      .add(static_cast<std::uint64_t>(c.params.size))
      .add(static_cast<std::uint64_t>(c.params.size2))
      .add(static_cast<std::uint64_t>(cell.stats.nodes))
      .add(static_cast<std::uint64_t>(cell.stats.span))
      .add(static_cast<std::uint64_t>(cell.stats.touches))
      .add(static_cast<std::uint64_t>(c.options.procs))
      .add(to_string(c.options.policy))
      .add(to_string(c.options.touch_enable))
      .add(static_cast<std::uint64_t>(c.options.cache_lines))
      .add(core::to_string(c.layout))
      .add(core::to_string(c.options.steal_policy))
      .add(core::to_string(c.options.victim_policy))
      .add(static_cast<std::uint64_t>(cell.deviations.count()))
      .add(cell.deviations.mean())
      .add(stderr_of(cell.deviations))
      .add(mean_or_missing(cell.additional_misses))
      .add(stderr_of(cell.additional_misses))
      .add(mean_or_missing(cell.seq_misses))
      .add(cell.steals.mean())
      .add(stderr_of(cell.steals))
      .add(mean_or_missing(cell.steps))
      .add(mean_or_missing(cell.declined_steals))
      .add(mean_or_missing(cell.premature_touches))
      .add(mean_or_missing(cell.parked_touches))
      .add(mean_or_missing(cell.fiber_switches))
      .add(mean_or_missing(cell.migrations))
      .add(mean_or_missing(cell.wall_us))
      .add(mean_or_missing(cell.batch_stolen_items));
}

std::vector<std::string> sweep_row_cells(const SweepConfig& c,
                                         const SweepCell& cell) {
  support::Table scratch(sweep_table_headers());
  add_sweep_row(scratch, c, cell);
  return scratch.rows().front();
}

support::Table to_table(const SweepResult& result) {
  support::Table table(sweep_table_headers());
  for (const SweepRow& row : result.rows) {
    // Sharded / resumed runs leave non-owned configs with an empty cell.
    if (row.cell.deviations.count() == 0) continue;
    add_sweep_row(table, row.config, row.cell);
  }
  return table;
}

}  // namespace wsf::exp
