// Restartable, distributable sweeps: incremental row persistence and shard
// merging on top of exp::run_sweep.
//
// A checkpoint file is a one-line spec signature ("# wsf-sweep-checkpoint
// …", covering every sweep parameter that affects results) followed by a
// CSV whose first column is the configuration's expand_spec() index and
// whose remaining columns are exactly the final sweep-table cells
// (sweep_row_cells). Rows are appended (and flushed) as configurations
// finish, so a killed run resumes by re-executing only the missing
// configs, and the checkpoints of a sharded run merge into a table
// byte-identical to a single-process run's.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "exp/sweep.hpp"
#include "support/table.hpp"

namespace wsf::exp {

/// First bytes of every checkpoint file: the signature-line prefix. One
/// definition shared by the writer (run_sweep_table), the loader, and the
/// format sniffing in analysis::load_sweep / wsf-plot, so the formats
/// cannot drift apart silently.
inline constexpr const char* kCheckpointSignaturePrefix =
    "# wsf-sweep-checkpoint ";

/// Execution knobs for run_sweep_table.
struct SweepTableOptions {
  /// Worker threads (0 = one per hardware thread).
  unsigned threads = 0;
  SweepShard shard;
  /// When set, finished configurations are appended here incrementally and
  /// configurations already present are restored instead of re-executed.
  std::string checkpoint_path;
  /// Progress hook, called (serialized) after each configuration finishes
  /// and its checkpoint row is durable.
  std::function<void(std::size_t config_index, const SweepRow& row)> on_row;
  /// When set, a heartbeat line — "done/total configs, percent, elapsed,
  /// ETA" — is written here (serialized with on_row) after each finished
  /// configuration, plus one line up front for configurations restored
  /// from a checkpoint. The wsf-sweep --progress flag points this at
  /// stderr.
  std::ostream* progress = nullptr;
};

/// The checkpoint CSV header: "config_index" and "wall_ms" bookkeeping
/// columns followed by sweep_table_headers(). wall_ms (per-configuration
/// wall time on the worker that ran it) survives resume verbatim but is
/// stripped — like config_index — from merged/final tables, whose bytes
/// must not depend on machine speed.
std::vector<std::string> checkpoint_headers();

/// Canonical one-line digest of every spec field that affects sweep
/// results (axes, P/policy/touch/cache lists, seeds, stall probability,
/// cache policy, …). Stored in the checkpoint and compared on resume, so
/// a checkpoint written under different parameters — even ones the table
/// rows do not carry, like --seed-base or --stall — is rejected instead
/// of spliced in.
std::string spec_signature(const SweepSpec& spec);

/// A loaded checkpoint: the signature of the spec that wrote it plus its
/// config_index-keyed rows.
struct Checkpoint {
  std::string signature;
  support::Table table;
};

/// Reads a checkpoint file. Tolerates the torn tail a killed run can
/// leave: the writer terminates every record with '\n', so a final line
/// without one is dropped. Any other malformation throws wsf::CheckError.
Checkpoint load_checkpoint(const std::string& path);

/// Reassembles shard checkpoints into the final sweep table: signatures
/// must agree, rows are keyed by config_index, must cover 0 … N-1 exactly
/// once across the shards, and are emitted in index order with the
/// config_index column stripped — byte-identical to the table of one
/// unsharded run.
support::Table merge_checkpoints(const std::vector<Checkpoint>& shards);

/// Runs (this shard of) the sweep with optional checkpoint persistence and
/// resume, and returns the final sweep table: one row per owned
/// configuration in expand_spec() order, restored verbatim from the
/// checkpoint where available and computed otherwise. A checkpoint whose
/// signature or per-row identity columns disagree with the spec is
/// rejected, so resuming with different flags fails loudly instead of
/// splicing mismatched results.
support::Table run_sweep_table(const SweepSpec& spec,
                               const SweepTableOptions& opts);

}  // namespace wsf::exp
