#include "exp/backend.hpp"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/deviation.hpp"
#include "core/policy.hpp"
#include "core/traversal.hpp"
#include "exp/sweep.hpp"
#include "runtime/pool.hpp"
#include "runtime/replay.hpp"
#include "sched/sequential.hpp"
#include "support/check.hpp"
#include "support/thread_safety.hpp"

namespace wsf::exp {

BackendKind backend_from_string(const std::string& s) {
  if (s == "sim" || s == "simulator") return BackendKind::Sim;
  if (s == "runtime" || s == "rt") return BackendKind::Runtime;
  WSF_REQUIRE(false, "unknown backend '" << s << "' (sim | runtime)");
  return BackendKind::Sim;
}

namespace {

class SimBackend final : public Backend {
 public:
  BackendKind kind() const override { return BackendKind::Sim; }
  SweepCell run_config(const core::Graph& g, const SweepConfig& cfg,
                       std::uint64_t seed_base,
                       std::uint64_t seed_count) override {
    return run_replicates(g, cfg.options, seed_base, seed_count);
  }
};

class RuntimeBackend final : public Backend {
 public:
  BackendKind kind() const override { return BackendKind::Runtime; }

  // seed_base is unused: the runtime is not deterministic per seed (real
  // thread interleavings), and the shared scheduler's victim-selection
  // seed is fixed at acquisition.
  SweepCell run_config(const core::Graph& g, const SweepConfig& cfg,
                       std::uint64_t /*seed_base*/,
                       std::uint64_t seed_count) override {
    WSF_REQUIRE(seed_count >= 1, "need at least one replicate");
    const runtime::SpawnPolicy policy =
        cfg.options.policy == core::ForkPolicy::FutureFirst
            ? runtime::SpawnPolicy::FutureFirst
            : runtime::SpawnPolicy::ParentFirst;
    ensure_scheduler(cfg.options.procs, policy, cfg.options.steal_policy,
                     cfg.options.victim_policy);

    SweepCell cell;
    cell.stats = core::compute_stats(g);
    // The deviation measure is defined against the same sequential baseline
    // as the simulator's (policy + touch-enable rule; seed-independent).
    const sched::SeqResult seq = sched::run_sequential(g, cfg.options);
    core::DeviationCounter dev_counter(g, seq.order);
    runtime::GraphReplayer replayer(g);
    runtime::ReplayOptions replay_opts;
    replay_opts.touch_enable = cfg.options.touch_enable;

    // Replicates reuse the scheduler (live workers, pooled fiber stacks)
    // and the replayer/deviation arenas; unlike the simulator the runtime
    // is not deterministic per seed — the spread across replicates is real
    // OS-scheduling variation, which is exactly what the sim-vs-runtime
    // comparison is after. The scheduler is a process-shared service; the
    // exclusive lease keeps other tenants (sweep threads measuring the
    // same pool shape) out of this cell's per-job counter deltas.
    support::LockGuard exclusive(lease_->exclusive());
    for (std::uint64_t k = 0; k < seed_count; ++k) {
      const runtime::ReplayResult r =
          replayer.run(lease_->scheduler(), replay_opts);
      const core::DeviationReport& deviations =
          dev_counter.count(replayer.worker_orders());
      const runtime::WorkerCounters total = r.counters.total();
      cell.deviations.add(static_cast<double>(deviations.deviations));
      cell.steals.add(static_cast<double>(total.steals));
      cell.batch_stolen_items.add(
          static_cast<double>(total.batch_stolen_items));
      cell.premature_touches.add(static_cast<double>(r.premature_touches));
      cell.parked_touches.add(static_cast<double>(total.parked_touches));
      cell.fiber_switches.add(static_cast<double>(total.fiber_resumes));
      cell.migrations.add(static_cast<double>(total.migrations));
      // Service time, not admission-to-completion: the sweep measures the
      // schedule's execution cost, and queue time under a busy shared
      // scheduler is admission noise, not locality. (Runtime rows are
      // non-deterministic, so this refinement breaks no golden tables.)
      cell.wall_us.add(static_cast<double>(r.service_us));
      // additional_misses / seq_misses / steps / declined_steals stay
      // empty: the runtime has no cache model or round grid, and its
      // steal-attempt count includes idle spinning, so deriving "declined"
      // attempts from it would be noise, not a measure.
    }
    return cell;
  }

 private:
  /// A lease on the process-shared long-lived scheduler for this pool
  /// shape. Every sweep thread measuring (workers, policy) submits to the
  /// same warm pool — live worker threads and pooled fiber stacks are
  /// shared instead of churned per Backend — and serializes its measured
  /// replicates through the lease's exclusive mutex so per-job counters
  /// stay isolated. Leases held by this Backend keep their schedulers
  /// alive for the sweep's duration; the last Backend to release drops
  /// them.
  void ensure_scheduler(std::uint32_t workers, runtime::SpawnPolicy policy,
                        core::StealPolicy steal, core::VictimPolicy victim) {
    if (lease_ && workers == workers_ && policy == policy_ &&
        steal == steal_ && victim == victim_)
      return;
    runtime::RuntimeOptions opts;
    opts.workers = workers;
    opts.policy = policy;
    opts.steal = steal;
    opts.victim = victim;
    // Replay thread bodies are a flat loop (no user recursion), so a small
    // stack keeps many concurrently-live fibers cheap.
    opts.stack_bytes = 128 * 1024;
    lease_ = runtime::SharedScheduler::acquire(opts);
    if (std::find(held_.begin(), held_.end(), lease_) == held_.end())
      held_.push_back(lease_);
    workers_ = workers;
    policy_ = policy;
    steal_ = steal;
    victim_ = victim;
  }

  std::shared_ptr<runtime::SharedScheduler> lease_;
  /// Keeps every pool shape this Backend used alive until the Backend
  /// dies, so a grid alternating shapes does not restart schedulers.
  std::vector<std::shared_ptr<runtime::SharedScheduler>> held_;
  std::uint32_t workers_ = 0;
  runtime::SpawnPolicy policy_ = runtime::SpawnPolicy::FutureFirst;
  core::StealPolicy steal_ = core::StealPolicy::One;
  core::VictimPolicy victim_ = core::VictimPolicy::Uniform;
};

}  // namespace

std::unique_ptr<Backend> make_backend(BackendKind kind) {
  if (kind == BackendKind::Runtime)
    return std::make_unique<RuntimeBackend>();
  return std::make_unique<SimBackend>();
}

}  // namespace wsf::exp
