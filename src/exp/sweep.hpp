// Declarative experiment sweeps — the paper's result grids in one shot.
//
// Every figure/theorem table in the paper is a grid: deviations and
// additional cache misses swept over processors P, fork policy, touch rule,
// cache geometry, and graph family. A SweepSpec declares such a grid; the
// runner expands it into concrete configurations, executes each
// configuration's seed replicates as independent run_experiment() calls
// across std::thread workers, and aggregates the paper's measures with
// mean/stderr. The wsf-sweep CLI (tools/wsf_sweep.cpp) exposes the whole
// thing as one command; bench harnesses declare their series through the
// same types instead of hand-rolled loops.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/layout.hpp"
#include "core/policy.hpp"
#include "core/traversal.hpp"
#include "exp/backend.hpp"
#include "graphs/generated.hpp"
#include "graphs/registry.hpp"
#include "sched/options.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace wsf::exp {

/// One graph-family entry of a sweep: the registry name plus its size
/// parameters. `params.cache_lines` is overwritten per grid point with the
/// swept cache geometry so block-annotated constructions are parameterized
/// by the same C as the simulated cache (exactly how the paper's figures
/// are stated).
struct GraphAxis {
  std::string family;
  graphs::RegistryParams params;
  /// Per-family primary-size axis: the entry expands into one grid point
  /// per listed size (each overriding `params.size`). Empty means the
  /// single size already in `params.size` — so families with different
  /// natural scales (chain length vs tree depth) can sweep different size
  /// lists in one spec.
  std::vector<std::uint32_t> sizes;
};

/// Declarative description of an experiment grid. The cartesian product
/// graphs × cache_lines × procs × policies × touch_enables is the
/// configuration list; each configuration is replicated `seeds` times with
/// schedule seeds seed_base, seed_base+1, … so any cell can be reproduced
/// by a single run_experiment() call with the same options and seed.
struct SweepSpec {
  std::vector<GraphAxis> graphs;
  /// Execution engines to run the grid on (exp/backend.hpp). The backend
  /// is the outermost expansion axis, so `{Sim, Runtime}` runs the whole
  /// grid on the simulator first and then again on the real work-stealing
  /// runtime, with a `backend` identity column telling the rows apart.
  std::vector<BackendKind> backends = {BackendKind::Sim};
  std::vector<std::uint32_t> procs = {1, 2, 4, 8};
  std::vector<core::ForkPolicy> policies = {core::ForkPolicy::FutureFirst};
  std::vector<sched::TouchEnable> touch_enables = {
      sched::TouchEnable::TouchFirst};
  std::vector<std::size_t> cache_lines = {0};
  /// Node memory-layout orders (core/layout.hpp): each grid point's graph
  /// is relabeled into the given order before anything runs, making layout
  /// an experimental axis — block ids and the cache simulation see the
  /// permuted node numbering while the schedule-structure measures
  /// (deviations, steals) are invariant under it (tests/test_layout.cpp).
  /// The `sequential` kind uses the default-policy 1-processor baseline
  /// order; `random` is seeded from each axis's params.seed.
  std::vector<core::NodeOrderKind> layouts = {
      core::NodeOrderKind::Construction};
  /// Steal-amount policies (core/policy.hpp): how much a thief claims per
  /// successful steal. Like `layouts`, an identity axis carried through
  /// checkpoints, resume validation, and the output table.
  std::vector<core::StealPolicy> steal_policies = {core::StealPolicy::One};
  /// Victim-selection policies: how a thief picks whom to rob.
  std::vector<core::VictimPolicy> victim_policies = {
      core::VictimPolicy::Uniform};
  std::string cache_policy = "lru";
  double stall_prob = 0.2;
  /// Replicates per configuration (random schedule seeds).
  std::uint64_t seeds = 4;
  std::uint64_t seed_base = 1;
  /// Per-replicate round budget (0 = the simulator's auto formula); a
  /// failing configuration surfaces as a CheckError instead of hanging the
  /// whole sweep.
  std::uint64_t max_steps = 0;
};

/// One grid point: the graph reference plus fully-resolved simulator
/// options. `options.seed` holds the spec's seed_base; replicates override
/// it with seed_base + k.
struct SweepConfig {
  std::string family;
  graphs::RegistryParams params;
  /// Index into the shared graph list (generate_graphs()); configurations
  /// differing only in backend / P / policy / touch rule share one
  /// generated graph.
  std::size_t graph_index = 0;
  /// Execution engine this configuration runs on.
  BackendKind backend = BackendKind::Sim;
  /// Node memory-layout order the referenced graph was relabeled into.
  core::NodeOrderKind layout = core::NodeOrderKind::Construction;
  sched::SimOptions options;
};

/// Aggregate of the seed replicates of one configuration. An accumulator a
/// backend never feeds (cache misses on the runtime, fiber switches in the
/// simulator) stays at count 0 and renders as a missing cell — the row
/// shape is shared, the measure coverage is per backend (see the README's
/// backend matrix).
struct SweepCell {
  core::DagStats stats;
  support::Accumulator deviations;
  support::Accumulator additional_misses;
  support::Accumulator seq_misses;
  support::Accumulator steals;
  support::Accumulator declined_steals;
  support::Accumulator steps;
  support::Accumulator premature_touches;
  /// Runtime-backend measures (runtime::WorkerCounters): touches that
  /// parked their consumer fiber, total fiber context switches,
  /// cross-worker continuation migrations, and wall time per replicate.
  support::Accumulator parked_touches;
  support::Accumulator fiber_switches;
  support::Accumulator migrations;
  support::Accumulator wall_us;
  /// Items claimed beyond the first across all steal-half batches (both
  /// backends feed it; identically zero under StealPolicy::One).
  support::Accumulator batch_stolen_items;
};

struct SweepRow {
  SweepConfig config;
  SweepCell cell;
  /// Wall-clock milliseconds this configuration's replicates took on the
  /// worker that ran them. Bookkeeping, not a measurement: it goes into
  /// checkpoint rows (so long grids can be cost-profiled and re-sharded)
  /// but never into the sweep result table, whose bytes must not depend
  /// on machine speed.
  std::uint64_t wall_ms = 0;
};

struct SweepResult {
  std::vector<SweepRow> rows;
  std::uint64_t seeds = 0;
  std::uint64_t seed_base = 1;
};

/// The fast deterministic CI grid behind `wsf-sweep --smoke`: tiny
/// fig2/fig4 graphs, full P × policy × touch × cache axes, 2 seeds. One
/// definition shared by the CLI and the golden-file test, so the checked-in
/// golden CSV is byte-exact against what CI runs.
SweepSpec smoke_spec();

/// Expands the spec into its configuration list (no graphs generated, no
/// simulation). Order: backends × graphs (each axis expanded over its size
/// list) × cache_lines × layouts × procs × policies × touch_enables ×
/// steal_policies × victim_policies, innermost last — the row order of
/// every emitter below. The steal axes don't affect graph generation, so
/// graph_index ignores them.
std::vector<SweepConfig> expand_spec(const SweepSpec& spec);

/// The spec's graph axes with per-family size lists flattened into one
/// single-size entry per (axis, size) pair, in spec order — the axis list
/// expand_spec() and generate_graphs() actually iterate.
std::vector<GraphAxis> flatten_graph_axes(const SweepSpec& spec);

/// Generates the shared graph list referenced by SweepConfig::graph_index:
/// one graph per (flattened graph axis, cache_lines, layout) triple, in
/// axis-major order. Non-construction layouts are relabelings of the same
/// base graph (core::relabeled_graph). Configurations differing only in
/// backend / P / policy / touch rule share one generated graph.
std::vector<graphs::GeneratedDag> generate_graphs(const SweepSpec& spec);

/// Runs `seed_count` replicate simulator experiments (seeds seed_base …
/// seed_base + seed_count - 1) of one configuration and aggregates them —
/// the SimBackend implementation. The sequential baseline inside
/// run_experiment() is seed-independent, so seq_misses has zero variance
/// by construction. The replicates are batched through one simulator
/// arena (Simulator::reset + run_in_place) and one core::DeviationCounter,
/// so a steady-state replicate re-allocates neither simulator state nor
/// result/report vectors (bench_sim_reuse measures the difference).
SweepCell run_replicates(const core::Graph& g, sched::SimOptions opts,
                         std::uint64_t seed_base, std::uint64_t seed_count);

/// Deterministic 1-of-n partition of the configuration list: shard k runs
/// the configs whose expand_spec() index i satisfies i % count == index
/// (round-robin, so families/sizes of very different cost spread evenly
/// across machines). The default {0, 1} is "everything".
struct SweepShard {
  std::uint32_t index = 0;
  std::uint32_t count = 1;
};

/// Execution knobs for run_sweep beyond the spec itself.
struct SweepRunOptions {
  /// Worker threads (0 = one per hardware thread).
  unsigned threads = 0;
  SweepShard shard;
  /// Configs (by expand_spec() index) to skip even though this shard owns
  /// them — how a resumed run avoids re-executing checkpointed configs.
  std::function<bool(std::size_t config_index)> skip;
  /// Called under a lock after each configuration's replicates finish, with
  /// the expand_spec() index and the finished row — the checkpoint writer
  /// and progress reporting hook. An exception thrown here cancels the
  /// sweep exactly like a failing configuration.
  std::function<void(std::size_t config_index, const SweepRow& row)> on_row;
};

/// Executes the sweep: every configuration's replicates run as one job,
/// jobs are distributed over std::thread workers. Result rows are indexed
/// by expand_spec() order regardless of worker scheduling, so the output
/// is deterministic. Rows skipped by sharding/resume keep their config but
/// an empty cell (deviations.count() == 0). The first failing job (or
/// on_row exception) cancels the remaining jobs promptly and is rethrown
/// once the workers drain.
SweepResult run_sweep(const SweepSpec& spec, const SweepRunOptions& opts);

/// run_sweep with a pre-expanded configuration list (must be
/// expand_spec(spec)'s output) — lets callers that already expanded the
/// grid (checkpoint resume validation) avoid expanding it twice.
SweepResult run_sweep_expanded(const SweepSpec& spec,
                               const std::vector<SweepConfig>& configs,
                               const SweepRunOptions& opts);

/// Convenience overload: run everything on `threads` workers.
SweepResult run_sweep(const SweepSpec& spec, unsigned threads = 0);

/// Standard error of the mean (stddev / sqrt(n)); NaN below two samples —
/// a single replicate has no spread estimate, and pretending "0" would
/// claim false precision. Table::add(double) renders the NaN as a missing
/// cell.
double stderr_of(const support::Accumulator& acc);

/// Column headers of the sweep result table, shared by to_table and the
/// checkpoint format.
std::vector<std::string> sweep_table_headers();

/// Appends one configuration's row to a sweep table — the single source of
/// truth for sweep-row formatting, so a checkpointed/merged CSV is
/// byte-identical to a single-run one.
void add_sweep_row(support::Table& table, const SweepConfig& config,
                   const SweepCell& cell);

/// The exact table cells add_sweep_row emits, as strings (the checkpoint
/// row format).
std::vector<std::string> sweep_row_cells(const SweepConfig& config,
                                         const SweepCell& cell);

/// Renders the sweep as a Table with mean and stderr columns for the
/// paper's measures; rows never executed (sharded/skipped configs) are
/// omitted. Use Table::to_string / to_csv / to_json for the output format.
support::Table to_table(const SweepResult& result);

}  // namespace wsf::exp
