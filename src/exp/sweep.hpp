// Declarative experiment sweeps — the paper's result grids in one shot.
//
// Every figure/theorem table in the paper is a grid: deviations and
// additional cache misses swept over processors P, fork policy, touch rule,
// cache geometry, and graph family. A SweepSpec declares such a grid; the
// runner expands it into concrete configurations, executes each
// configuration's seed replicates as independent run_experiment() calls
// across std::thread workers, and aggregates the paper's measures with
// mean/stderr. The wsf-sweep CLI (tools/wsf_sweep.cpp) exposes the whole
// thing as one command; bench harnesses declare their series through the
// same types instead of hand-rolled loops.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/policy.hpp"
#include "core/traversal.hpp"
#include "graphs/generated.hpp"
#include "graphs/registry.hpp"
#include "sched/options.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace wsf::exp {

/// One graph-family entry of a sweep: the registry name plus its size
/// parameters. `params.cache_lines` is overwritten per grid point with the
/// swept cache geometry so block-annotated constructions are parameterized
/// by the same C as the simulated cache (exactly how the paper's figures
/// are stated).
struct GraphAxis {
  std::string family;
  graphs::RegistryParams params;
};

/// Declarative description of an experiment grid. The cartesian product
/// graphs × cache_lines × procs × policies × touch_enables is the
/// configuration list; each configuration is replicated `seeds` times with
/// schedule seeds seed_base, seed_base+1, … so any cell can be reproduced
/// by a single run_experiment() call with the same options and seed.
struct SweepSpec {
  std::vector<GraphAxis> graphs;
  std::vector<std::uint32_t> procs = {1, 2, 4, 8};
  std::vector<core::ForkPolicy> policies = {core::ForkPolicy::FutureFirst};
  std::vector<sched::TouchEnable> touch_enables = {
      sched::TouchEnable::TouchFirst};
  std::vector<std::size_t> cache_lines = {0};
  std::string cache_policy = "lru";
  double stall_prob = 0.2;
  /// Replicates per configuration (random schedule seeds).
  std::uint64_t seeds = 4;
  std::uint64_t seed_base = 1;
};

/// One grid point: the graph reference plus fully-resolved simulator
/// options. `options.seed` holds the spec's seed_base; replicates override
/// it with seed_base + k.
struct SweepConfig {
  std::string family;
  graphs::RegistryParams params;
  /// Index into the shared graph list (generate_graphs()); configurations
  /// differing only in P / policy / touch rule share one generated graph.
  std::size_t graph_index = 0;
  sched::SimOptions options;
};

/// Aggregate of the seed replicates of one configuration.
struct SweepCell {
  core::DagStats stats;
  support::Accumulator deviations;
  support::Accumulator additional_misses;
  support::Accumulator seq_misses;
  support::Accumulator steals;
  support::Accumulator declined_steals;
  support::Accumulator steps;
  support::Accumulator premature_touches;
};

struct SweepRow {
  SweepConfig config;
  SweepCell cell;
};

struct SweepResult {
  std::vector<SweepRow> rows;
  std::uint64_t seeds = 0;
  std::uint64_t seed_base = 1;
};

/// Expands the spec into its configuration list (no graphs generated, no
/// simulation). Order: graphs × cache_lines × procs × policies ×
/// touch_enables, innermost last — the row order of every emitter below.
std::vector<SweepConfig> expand_spec(const SweepSpec& spec);

/// Generates the shared graph list referenced by SweepConfig::graph_index:
/// one graph per (graph axis, cache_lines) pair, in axis-major order.
std::vector<graphs::GeneratedDag> generate_graphs(const SweepSpec& spec);

/// Runs `seed_count` replicate experiments (seeds seed_base …
/// seed_base + seed_count - 1) of one configuration and aggregates them.
/// The sequential baseline inside run_experiment() is seed-independent, so
/// seq_misses has zero variance by construction.
SweepCell run_replicates(const core::Graph& g, sched::SimOptions opts,
                         std::uint64_t seed_base, std::uint64_t seed_count);

/// Executes the whole sweep: every configuration's replicates run as one
/// job, jobs are distributed over `threads` std::thread workers (0 = one
/// per hardware thread). Result rows are in expand_spec() order regardless
/// of worker scheduling, so the output is deterministic.
SweepResult run_sweep(const SweepSpec& spec, unsigned threads = 0);

/// Standard error of the mean (stddev / sqrt(n); 0 below two samples).
double stderr_of(const support::Accumulator& acc);

/// Renders the sweep as a Table (one row per configuration) with mean and
/// stderr columns for the paper's measures; use Table::to_string /
/// to_csv / to_json for the output format.
support::Table to_table(const SweepResult& result);

}  // namespace wsf::exp
