#include "runtime/fiber.hpp"

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <utility>

// AddressSanitizer cannot follow swapcontext on its own: every switch must be
// bracketed with __sanitizer_start_switch_fiber / __sanitizer_finish_switch_
// fiber or ASan reports bogus stack-buffer-overflows from the foreign stack
// (and its fake-stack GC may free live frames). The macros below compile to
// nothing outside ASan builds.
#if defined(__SANITIZE_ADDRESS__)
#define WSF_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define WSF_ASAN_FIBERS 1
#endif
#endif

#ifdef WSF_ASAN_FIBERS
#include <sanitizer/common_interface_defs.h>
#define WSF_ASAN_START_SWITCH(save, bottom, size) \
  __sanitizer_start_switch_fiber((save), (bottom), (size))
#define WSF_ASAN_FINISH_SWITCH(saved, bottom, size) \
  __sanitizer_finish_switch_fiber((saved), (bottom), (size))
#else
#define WSF_ASAN_START_SWITCH(save, bottom, size) ((void)0)
#define WSF_ASAN_FINISH_SWITCH(saved, bottom, size) ((void)0)
#endif

// ThreadSanitizer likewise needs each stack switch announced through
// __tsan_switch_to_fiber, or every stolen continuation looks like a data
// race (control transfer through the deque is invisible to it).
#if defined(__SANITIZE_THREAD__)
#define WSF_TSAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define WSF_TSAN_FIBERS 1
#endif
#endif

#ifdef WSF_TSAN_FIBERS
#include <sanitizer/tsan_interface.h>
#define WSF_TSAN_CREATE() __tsan_create_fiber(0)
#define WSF_TSAN_DESTROY(f) __tsan_destroy_fiber(f)
#define WSF_TSAN_CURRENT() __tsan_get_current_fiber()
#define WSF_TSAN_SWITCH(f) __tsan_switch_to_fiber((f), 0)
#else
#define WSF_TSAN_CREATE() nullptr
#define WSF_TSAN_DESTROY(f) ((void)0)
#define WSF_TSAN_CURRENT() nullptr
#define WSF_TSAN_SWITCH(f) ((void)0)
#endif

namespace wsf::runtime {

Fiber::Fiber(FiberFn fn, std::size_t stack_bytes)
    : fn_(std::move(fn)), stack_bytes_(stack_bytes) {
  WSF_REQUIRE(stack_bytes_ >= 16 * 1024, "fiber stack too small");
  stack_ = static_cast<char*>(std::malloc(stack_bytes_));
  WSF_CHECK(stack_ != nullptr, "fiber stack allocation failed");
  tsan_fiber_ = WSF_TSAN_CREATE();
}

Fiber::~Fiber() {
  WSF_CHECK(!started_ || finished_,
            "destroying a live fiber (suspended mid-execution)");
  WSF_TSAN_DESTROY(tsan_fiber_);
  std::free(stack_);
}

void Fiber::rebind(FiberFn fn) {
  WSF_REQUIRE(!started_ || finished_, "rebind of a live fiber");
  fn_ = std::move(fn);
  started_ = false;
  finished_ = false;
  return_to_ = nullptr;
}

void Fiber::trampoline(unsigned hi, unsigned lo) {
  auto* self = reinterpret_cast<Fiber*>(
      (static_cast<std::uintptr_t>(hi) << 32) |
      static_cast<std::uintptr_t>(lo));
  // First instructions on the fiber stack: complete the switch that
  // resume() started, learning the resumer's stack extent for suspend().
  WSF_ASAN_FINISH_SWITCH(nullptr, &self->resumer_stack_, &self->resumer_size_);
  self->run();
  // Returning from a makecontext function with uc_link == nullptr would
  // terminate the thread; instead mark finished and switch back.
  self->finished_ = true;
  ucontext_t* back = self->return_to_;
  ucontext_t dummy;
  // nullptr fake-stack save: this fiber is done, let ASan release its frames.
  WSF_ASAN_START_SWITCH(nullptr, self->resumer_stack_, self->resumer_size_);
  WSF_TSAN_SWITCH(self->resumer_tsan_);
  swapcontext(&dummy, back);  // never returns
  WSF_CHECK(false, "resumed a finished fiber");
}

void Fiber::run() { fn_(*this); }

void Fiber::resume(ucontext_t* from) {
  WSF_REQUIRE(!finished_, "resume of a finished fiber");
  return_to_ = from;
  if (!started_) {
    started_ = true;
    WSF_CHECK(getcontext(&context_) == 0, "getcontext failed");
    context_.uc_stack.ss_sp = stack_;
    context_.uc_stack.ss_size = stack_bytes_;
    context_.uc_link = nullptr;
    const auto self = reinterpret_cast<std::uintptr_t>(this);
    makecontext(&context_, reinterpret_cast<void (*)()>(&Fiber::trampoline),
                2, static_cast<unsigned>(self >> 32),
                static_cast<unsigned>(self & 0xffffffffu));
  }
  resumer_tsan_ = WSF_TSAN_CURRENT();
  WSF_ASAN_START_SWITCH(&resumer_fake_stack_, stack_, stack_bytes_);
  WSF_TSAN_SWITCH(tsan_fiber_);
  WSF_CHECK(swapcontext(from, &context_) == 0, "swapcontext failed");
  // Back on the resumer's stack (the fiber suspended or finished).
  WSF_ASAN_FINISH_SWITCH(resumer_fake_stack_, nullptr, nullptr);
}

void Fiber::suspend() {
  ucontext_t* back = return_to_;
  WSF_ASAN_START_SWITCH(&fiber_fake_stack_, resumer_stack_, resumer_size_);
  WSF_TSAN_SWITCH(resumer_tsan_);
  WSF_CHECK(swapcontext(&context_, back) == 0, "swapcontext failed");
  // Resumed again, possibly from a different worker thread: refresh the
  // resumer stack extent before the next suspension.
  WSF_ASAN_FINISH_SWITCH(fiber_fake_stack_, &resumer_stack_, &resumer_size_);
}

}  // namespace wsf::runtime
