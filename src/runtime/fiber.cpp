#include "runtime/fiber.hpp"

#include <cstdlib>

namespace wsf::runtime {

Fiber::Fiber(FiberFn fn, std::size_t stack_bytes)
    : fn_(std::move(fn)), stack_bytes_(stack_bytes) {
  WSF_REQUIRE(stack_bytes_ >= 16 * 1024, "fiber stack too small");
  stack_ = static_cast<char*>(std::malloc(stack_bytes_));
  WSF_CHECK(stack_ != nullptr, "fiber stack allocation failed");
}

Fiber::~Fiber() {
  WSF_CHECK(!started_ || finished_,
            "destroying a live fiber (suspended mid-execution)");
  std::free(stack_);
}

void Fiber::rebind(FiberFn fn) {
  WSF_REQUIRE(!started_ || finished_, "rebind of a live fiber");
  fn_ = std::move(fn);
  started_ = false;
  finished_ = false;
  return_to_ = nullptr;
}

void Fiber::trampoline(unsigned hi, unsigned lo) {
  auto* self = reinterpret_cast<Fiber*>(
      (static_cast<std::uintptr_t>(hi) << 32) |
      static_cast<std::uintptr_t>(lo));
  self->run();
  // Returning from a makecontext function with uc_link == nullptr would
  // terminate the thread; instead mark finished and switch back.
  self->finished_ = true;
  ucontext_t* back = self->return_to_;
  ucontext_t dummy;
  swapcontext(&dummy, back);  // never returns
  WSF_CHECK(false, "resumed a finished fiber");
}

void Fiber::run() { fn_(*this); }

void Fiber::resume(ucontext_t* from) {
  WSF_REQUIRE(!finished_, "resume of a finished fiber");
  return_to_ = from;
  if (!started_) {
    started_ = true;
    WSF_CHECK(getcontext(&context_) == 0, "getcontext failed");
    context_.uc_stack.ss_sp = stack_;
    context_.uc_stack.ss_size = stack_bytes_;
    context_.uc_link = nullptr;
    const auto self = reinterpret_cast<std::uintptr_t>(this);
    makecontext(&context_, reinterpret_cast<void (*)()>(&Fiber::trampoline),
                2, static_cast<unsigned>(self >> 32),
                static_cast<unsigned>(self & 0xffffffffu));
  }
  WSF_CHECK(swapcontext(from, &context_) == 0, "swapcontext failed");
}

void Fiber::suspend() {
  ucontext_t* back = return_to_;
  WSF_CHECK(swapcontext(&context_, back) == 0, "swapcontext failed");
}

}  // namespace wsf::runtime
