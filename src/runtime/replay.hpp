// Replays a computation DAG on the real work-stealing runtime.
//
// The simulator (sched::Simulator) executes a core::Graph under the paper's
// round-based ABP model; this layer executes the *same* graph on the fiber
// runtime (runtime::Scheduler): one future is spawned per future thread at
// its fork node (honoring the scheduler's SpawnPolicy, i.e. the fork
// policy), and every touch edge becomes a real synchronization — the
// consumer fiber parks on a per-edge event and the producer wakes it when
// the future parent executes, following the touch-enable rule
// (sched::TouchEnable):
//   * TouchFirst — the producer suspends, pushes its own continuation, and
//     switches to the woken consumer (eager resume);
//   * ContinuationFirst — the producer pushes the consumer onto its deque
//     and keeps running its own thread.
//
// With one worker the resulting node execution order is exactly the
// sequential baseline's (tests/test_replay.cpp asserts this on every
// registered graph family); with P workers the recorded per-worker orders
// feed core::count_deviations, so the simulator's deviation measure and the
// runtime's are the same function over the same row shape — the sim-vs-
// runtime validation the experiment pipeline's RuntimeBackend performs.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/graph.hpp"
#include "core/ids.hpp"
#include "core/layout.hpp"
#include "runtime/counters.hpp"
#include "runtime/future.hpp"
#include "runtime/pool.hpp"
#include "sched/options.hpp"

namespace wsf::runtime {

struct ReplayOptions {
  /// Producer-side choice when a publish finds a parked consumer and the
  /// producer still has a continuation of its own (sched/options.hpp).
  sched::TouchEnable touch_enable = sched::TouchEnable::TouchFirst;
  /// Ask the scheduler for a per-job counter snapshot and report the job's
  /// delta in ReplayResult::counters. Exact when the replay has the
  /// scheduler to itself (the sweep backend holds an exclusive lease);
  /// leave off on hot admission paths (wsf-load) where per-job baselines
  /// would both allocate and blur across tenants.
  bool job_counters = true;
  /// Inbox priority class for the replay job (JobOptions::priority).
  JobPriority priority = JobPriority::Normal;
  /// Relative deadline for the replay job (JobOptions::deadline); 0 =
  /// none. A replay shed past its deadline never runs — collect() reports
  /// outcome == JobOutcome::Shed with zeroed measures instead of failing.
  std::chrono::microseconds deadline{0};
};

/// Measures of one replay run. The per-worker node orders live in the
/// GraphReplayer (worker_orders()) so replicate loops can reuse their
/// allocations.
struct ReplayResult {
  /// This job's counter delta (empty when ReplayOptions::job_counters is
  /// off).
  CountersReport counters;
  /// Touches reached before the fork spawning their future thread executed
  /// (the Figure 3 hazard; 0 for structured computations).
  std::uint64_t premature_touches = 0;
  /// Admission-to-completion wall time of the job, microseconds
  /// (queue_us + service_us).
  std::uint64_t wall_us = 0;
  /// Admission-to-first-run wait (queue time), microseconds.
  std::uint64_t queue_us = 0;
  /// First-run-to-completion wall time (service time), microseconds — the
  /// locality-sensitive measure: admission backlog under load is excluded.
  std::uint64_t service_us = 0;
  /// How the job ended. Completed unless the replay carried a deadline it
  /// missed (Shed: the node/measure fields above are zero — it never ran)
  /// or its batch was dropped (Abandoned).
  JobOutcome outcome = JobOutcome::Completed;
};

/// Reusable arena for replaying one graph: per-touch-edge events, executed
/// marks, and per-worker order vectors are allocated once and recycled
/// across replicates — the runtime analogue of Simulator::reset.
class GraphReplayer {
 public:
  explicit GraphReplayer(const core::Graph& g);

  /// Executes the whole DAG on `sched` and returns the run's measures —
  /// submit() + collect(). Not reentrant: one run at a time per replayer
  /// (several replayers may share one scheduler concurrently).
  ReplayResult run(Scheduler& sched, const ReplayOptions& opts = {});

  /// Admits the replay as one scheduler job and returns immediately.
  void submit(Scheduler& sched, const ReplayOptions& opts = {});
  /// Stages the replay into `batch` (admitted when the batch is submitted).
  void stage(Batch& batch, const ReplayOptions& opts = {});
  /// Blocks until the job admitted by submit()/stage() completes and
  /// returns its measures.
  ReplayResult collect();

  /// Node sequences per worker recorded by the last run(), in execution
  /// order; concatenated they cover every node exactly once. Valid until
  /// the next run().
  const std::vector<std::vector<core::NodeId>>& worker_orders() const {
    return orders_;
  }

 private:
  /// Resets the arenas for a fresh run on a scheduler with `workers`
  /// workers.
  void prepare(std::uint32_t workers, const ReplayOptions& opts);
  void run_thread(core::ThreadId tid);
  void wait_gates(core::NodeId v);
  void record(core::NodeId v);
  void publish(core::NodeId v, core::NodeId cont);
  /// The first synchronization `v` still has to wait for: the event of its
  /// incoming touch edge, then (for the final node) each super-final
  /// predecessor's event. nullptr when every gate is ready — i.e. the node
  /// is enabled in the ABP sense as soon as its local parent executed.
  detail::FutureStateBase* unready_gate(core::NodeId v);
  detail::FutureStateBase& event_of(core::NodeId producer);

  const core::Graph& g_;
  /// SoA/CSR view of g_ — every per-node query on the replay hot path
  /// (kinds, fork children, future parents, successors) is an indexed load.
  core::GraphLayout layout_;
  /// events_[event_index_[v]] is published when v (a node with an outgoing
  /// touch edge, including super-final predecessors) executes.
  std::vector<std::int32_t> event_index_;
  std::unique_ptr<detail::FutureStateBase[]> events_;
  std::size_t event_count_ = 0;
  std::unique_ptr<std::atomic<std::uint8_t>[]> executed_;
  std::vector<std::vector<core::NodeId>> orders_;
  std::atomic<std::uint64_t> premature_{0};
  bool touch_first_ = true;
  bool job_counters_ = true;
  JobHandle<void> handle_;
};

/// Convenience one-shot replay (constructs a throwaway arena).
ReplayResult replay_graph(Scheduler& sched, const core::Graph& g,
                          const ReplayOptions& opts,
                          std::vector<std::vector<core::NodeId>>* orders);

}  // namespace wsf::runtime
