#include "runtime/replay.hpp"

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

#include "support/check.hpp"

namespace wsf::runtime {

GraphReplayer::GraphReplayer(const core::Graph& g) : g_(g), layout_(g) {
  const std::size_t n = g_.num_nodes();
  event_index_.assign(n, -1);
  std::size_t count = 0;
  for (core::NodeId v = 0; v < static_cast<core::NodeId>(n); ++v) {
    for (const core::HalfEdge& out : layout_.successors(v))
      if (out.kind == core::EdgeKind::Touch)
        event_index_[v] = static_cast<std::int32_t>(count++);
  }
  event_count_ = count;
  events_ = std::make_unique<detail::FutureStateBase[]>(count);
  executed_ = std::make_unique<std::atomic<std::uint8_t>[]>(n);
}

detail::FutureStateBase& GraphReplayer::event_of(core::NodeId producer) {
  const std::int32_t index = event_index_[producer];
  WSF_DCHECK(index >= 0, "node has no outgoing touch edge");
  return events_[static_cast<std::size_t>(index)];
}

detail::FutureStateBase* GraphReplayer::unready_gate(core::NodeId v) {
  if (layout_.is_touch(v)) {
    detail::FutureStateBase& e = event_of(layout_.future_parent_of(v));
    if (!e.ready()) return &e;
  }
  if (v == layout_.final_node())
    for (const core::NodeId pred : g_.super_final_preds()) {
      detail::FutureStateBase& e = event_of(pred);
      if (!e.ready()) return &e;
    }
  return nullptr;
}

void GraphReplayer::wait_gates(core::NodeId v) {
  // Figure 3 hazard accounting, mirroring the simulator: the consumer
  // reached a touch that is not ready although the fork spawning its future
  // thread has not even executed (impossible in structured computations).
  if (layout_.is_touch(v) && v != layout_.final_node() &&
      !event_of(layout_.future_parent_of(v)).ready()) {
    const core::NodeId fork = layout_.corresponding_fork_of(v);
    // relaxed ×2: executed_ is a hazard-accounting probe — a stale 0 at
    // worst overcounts a racy premature touch, which is what the measure
    // means; premature_ is a statistics counter read only after collect()'s
    // quiescent join.
    if (fork != core::kInvalidNode &&
        !executed_[fork].load(std::memory_order_relaxed))
      premature_.fetch_add(1, std::memory_order_relaxed);  // see above
  }
  while (detail::FutureStateBase* gate = unready_gate(v))
    detail::wait_until_ready(*gate);
}

void GraphReplayer::record(core::NodeId v) {
  // Re-read the worker on every use: the fiber may have migrated at the
  // previous suspension point.
  detail::Worker* w = detail::current_worker();
  orders_[w->id()].push_back(v);
  // relaxed: see wait_gates — executed_ feeds a tolerant statistics probe;
  // real ordering between nodes travels through the future-state events.
  executed_[v].store(1, std::memory_order_relaxed);
}

void GraphReplayer::publish(core::NodeId v, core::NodeId cont) {
  Fiber* waiter = event_of(v).publish_ready();
  if (!waiter) return;  // consumer not parked (it will see the ready event)
  detail::Worker* w = detail::current_worker();
  if (cont == core::kInvalidNode) {
    // v is its thread's last node: this fiber finishes right after the
    // publish, so the woken consumer runs next on this worker — in the
    // simulator the enabled touch is the sole enabled child and is executed
    // next, whatever the touch-enable rule.
    w->counters().direct_handoffs++;
    w->set_handoff(waiter);
    return;
  }
  if (touch_first_) {
    // Touch-first: run the enabled touch now. The producer's own
    // continuation is pushed onto the deque — unless its next node is
    // itself an unready touch (not enabled), in which case the fiber parks
    // on that touch's event instead: the simulator never pushes a node
    // that is not enabled, and matching that is what makes the 1-worker
    // replay order equal the sequential baseline.
    detail::FutureStateBase* park = unready_gate(cont);
    if (park) w->counters().parked_touches++;
    w->counters().direct_handoffs++;
    w->switch_to(*detail::current_fiber(), waiter, park);
  } else {
    // Continuation-first: wake the consumer through the deque bottom and
    // keep executing the producer's own thread.
    w->push_resume(waiter);
  }
}

void GraphReplayer::run_thread(core::ThreadId tid) {
  core::NodeId v = g_.thread_info(tid).first_node;
  while (v != core::kInvalidNode) {
    wait_gates(v);
    record(v);
    core::NodeId cont = core::kInvalidNode;
    if (layout_.is_fork(v)) {
      cont = layout_.fork_right_child(v);
      const core::ThreadId child =
          layout_.thread_of(layout_.fork_left_child(v));
      // A real future per spawned thread; the scheduler's SpawnPolicy (the
      // fork policy) decides whether the child runs inline with the parent
      // continuation pushed (future-first) or is pushed while the parent
      // continues (parent-first). Synchronization happens through the
      // per-touch-edge events, so the future handle itself is a side-effect
      // task the scheduler's quiescence tracking waits for.
      (void)spawn([this, child] { run_thread(child); });
    } else {
      core::NodeId touch_target = core::kInvalidNode;
      for (const core::HalfEdge& out : layout_.successors(v)) {
        if (out.kind == core::EdgeKind::Continuation)
          cont = out.node;
        else if (out.kind == core::EdgeKind::Touch)
          touch_target = out.node;
      }
      if (touch_target != core::kInvalidNode) publish(v, cont);
    }
    v = cont;
  }
}

void GraphReplayer::prepare(std::uint32_t workers,
                            const ReplayOptions& opts) {
  WSF_REQUIRE(!handle_.valid(),
              "GraphReplayer: a run is already in flight (collect() it "
              "first; one run at a time per replayer)");
  const std::size_t n = g_.num_nodes();
  touch_first_ = opts.touch_enable == sched::TouchEnable::TouchFirst;
  job_counters_ = opts.job_counters;
  orders_.resize(workers);
  for (auto& order : orders_) {
    order.clear();
    order.reserve(n / workers + 1);
  }
  // relaxed throughout the reset: prepare() runs before the job is
  // submitted, and submit/run-completion (JobState's release/acquire
  // protocol) order these stores against every worker that will read them.
  for (std::size_t i = 0; i < event_count_; ++i)
    events_[i].state.store(detail::kEmpty, std::memory_order_relaxed);
  for (std::size_t v = 0; v < n; ++v)
    executed_[v].store(0, std::memory_order_relaxed);  // ditto
  premature_.store(0, std::memory_order_relaxed);      // ditto
}

void GraphReplayer::submit(Scheduler& sched, const ReplayOptions& opts) {
  prepare(sched.num_workers(), opts);
  handle_ = sched.submit(
      [this] { run_thread(layout_.thread_of(layout_.root())); },
      {.counters = opts.job_counters,
       .priority = opts.priority,
       .deadline = opts.deadline});
}

void GraphReplayer::stage(Batch& batch, const ReplayOptions& opts) {
  prepare(batch.scheduler().num_workers(), opts);
  handle_ = batch.add(
      [this] { run_thread(layout_.thread_of(layout_.root())); },
      {.counters = opts.job_counters,
       .priority = opts.priority,
       .deadline = opts.deadline});
}

ReplayResult GraphReplayer::collect() {
  WSF_REQUIRE(handle_.valid(), "collect() without a submitted run");
  JobHandle<void> handle = std::move(handle_);
  ReplayResult result;
  result.outcome = handle.wait_outcome();
  if (result.outcome != JobOutcome::Completed) {
    // The replay never ran (deadline shed, or its batch was dropped):
    // there are no nodes to check and no measures beyond the queue wait.
    result.wall_us = handle.latency_us();
    result.queue_us = handle.queue_us();
    return result;
  }

  std::size_t executed = 0;
  for (const auto& order : orders_) executed += order.size();
  WSF_CHECK(executed == g_.num_nodes(),
            "runtime replay executed " << executed << " of " << g_.num_nodes()
                                       << " nodes");
  if (job_counters_) result.counters = handle.counters();
  // relaxed: wait_outcome() above completed the job (acquire on
  // JobState::done), so every worker's counting store already
  // happens-before this read.
  result.premature_touches = premature_.load(std::memory_order_relaxed);
  result.wall_us = handle.latency_us();
  result.queue_us = handle.queue_us();
  result.service_us = handle.service_us();
  return result;
}

ReplayResult GraphReplayer::run(Scheduler& sched, const ReplayOptions& opts) {
  submit(sched, opts);
  return collect();
}

ReplayResult replay_graph(Scheduler& sched, const core::Graph& g,
                          const ReplayOptions& opts,
                          std::vector<std::vector<core::NodeId>>* orders) {
  GraphReplayer replayer(g);
  ReplayResult result = replayer.run(sched, opts);
  if (orders) *orders = replayer.worker_orders();
  return result;
}

}  // namespace wsf::runtime
