// Convenience parallel algorithms on top of spawn/touch — the patterns a
// downstream user reaches for first. All are structured single-touch by
// construction (every spawned future is touched exactly once by its
// creating task), so the paper's locality bounds apply under the
// future-first policy.
#pragma once

#include <cstddef>
#include <utility>

#include "runtime/pool.hpp"

namespace wsf::runtime {

/// Runs body(i) for every i in [begin, end), recursively splitting the
/// range and spawning the left half until ranges are at most `grain` wide.
/// Must be called from inside a task. Blocks (parks) until the whole range
/// is done.
template <typename Body>
void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  Body&& body) {
  WSF_REQUIRE(grain >= 1, "grain must be at least 1");
  if (begin >= end) return;
  if (end - begin <= grain) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  const std::size_t mid = begin + (end - begin) / 2;
  auto left = spawn([=, &body] { parallel_for(begin, mid, grain, body); });
  parallel_for(mid, end, grain, body);
  left.touch();
}

/// Runs both callables, the first as a spawned future (executed immediately
/// under future-first) and the second inline; returns their results as a
/// pair. The classic fork-join two-way split.
template <typename F, typename G>
auto parallel_invoke(F&& f, G&& g)
    -> std::pair<std::invoke_result_t<F>, std::invoke_result_t<G>> {
  auto left = spawn(std::forward<F>(f));
  auto right = g();
  return {left.touch(), std::move(right)};
}

/// Parallel reduction of body(i) over [begin, end) with a binary combiner.
/// `identity` is the neutral element. Structured single-touch, like
/// parallel_for.
template <typename T, typename Body, typename Combine>
T parallel_reduce(std::size_t begin, std::size_t end, std::size_t grain,
                  T identity, Body&& body, Combine&& combine) {
  WSF_REQUIRE(grain >= 1, "grain must be at least 1");
  if (begin >= end) return identity;
  if (end - begin <= grain) {
    T acc = identity;
    for (std::size_t i = begin; i < end; ++i) acc = combine(acc, body(i));
    return acc;
  }
  const std::size_t mid = begin + (end - begin) / 2;
  auto left = spawn([=, &body, &combine] {
    return parallel_reduce(begin, mid, grain, identity, body, combine);
  });
  T right = parallel_reduce(mid, end, grain, identity, body, combine);
  return combine(left.touch(), std::move(right));
}

}  // namespace wsf::runtime
