// Futures for the work-stealing runtime, with single-touch enforcement.
//
// A Future<T> is created by wsf::runtime::spawn and consumed exactly once by
// touch() (Definition 2 — the discipline the paper shows preserves cache
// locality; the runtime enforces it at run time). touch() never blocks the
// worker thread: an unresolved touch parks the consumer fiber, and the
// producer resumes it directly when the value arrives (the eager-resume /
// TouchFirst rule).
//
// Synchronization protocol (one word per future):
//   state == kEmpty : value not produced, nobody waiting
//   state == kReady : value produced
//   otherwise       : Fiber* of the parked consumer
// The consumer publishes its fiber *from the scheduler context after it has
// fully suspended* (see Worker::publish_pending_park), which closes the
// resume-before-suspend race; producer and consumer linearize on one
// exchange/CAS pair.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <memory>
#include <utility>

#include "support/check.hpp"

namespace wsf::runtime {

class Fiber;
class Scheduler;

namespace detail {

inline constexpr std::uintptr_t kEmpty = 0;
inline constexpr std::uintptr_t kReady = 1;

/// Type-erased part of the shared state; the scheduler interacts with
/// futures only through this.
struct FutureStateBase {
  std::atomic<std::uintptr_t> state{kEmpty};
  std::exception_ptr error;

  virtual ~FutureStateBase() = default;

  bool ready() const {
    // acquire pairs with publish_ready's release half: observing kReady
    // makes the produced value (FutureState::storage, error) visible to
    // the consumer that goes on to take() it.
    return state.load(std::memory_order_acquire) == kReady;
  }

  /// Producer side: publish readiness; returns the parked consumer fiber to
  /// resume, or nullptr if none was waiting.
  Fiber* publish_ready() {
    // acq_rel: the release half publishes the produced value to consumers
    // (ready()'s acquire / try_park's acquire-on-failure); the acquire half
    // pairs with try_park's release so the producer sees the parked fiber's
    // fully-suspended state before resuming it.
    const std::uintptr_t prev =
        state.exchange(kReady, std::memory_order_acq_rel);
    if (prev == kEmpty || prev == kReady) return nullptr;
    return reinterpret_cast<Fiber*>(prev);
  }

  /// Consumer side (called from the scheduler after the consumer fiber
  /// suspended): try to park `f`. Returns false when the value arrived in
  /// the meantime and the fiber should be resumed immediately.
  bool try_park(Fiber* f) {
    std::uintptr_t expected = kEmpty;
    // success release: publishes the suspended fiber's saved context to the
    // producer (publish_ready's acquire half). failure acquire: the value
    // already arrived — pairs with publish_ready's release half so the
    // immediate resume path sees the payload.
    return state.compare_exchange_strong(
        expected, reinterpret_cast<std::uintptr_t>(f),
        std::memory_order_release, std::memory_order_acquire);
  }
};

template <typename T>
struct FutureState final : FutureStateBase {
  alignas(T) unsigned char storage[sizeof(T)];

  template <typename U>
  void emplace(U&& v) {
    ::new (static_cast<void*>(storage)) T(std::forward<U>(v));
  }
  T take() {
    T* p = std::launder(reinterpret_cast<T*>(storage));
    T v = std::move(*p);
    p->~T();
    return v;
  }
  ~FutureState() override {
    // If the value was produced but never consumed, destroy it here.
    if (ready() && !error && !taken) {
      std::launder(reinterpret_cast<T*>(storage))->~T();
    }
  }
  bool taken = false;
};

template <>
struct FutureState<void> final : FutureStateBase {};

/// Implemented in pool.cpp: parks the calling fiber until the state is
/// ready (counts the touch; may return immediately if already ready).
void wait_until_ready(FutureStateBase& state);

}  // namespace detail

/// Move-only handle to the result of a spawned task. Enforces the paper's
/// single-touch discipline: touching twice (or touching an empty handle)
/// throws wsf::CheckError.
template <typename T>
class Future {
 public:
  Future() = default;
  explicit Future(std::shared_ptr<detail::FutureState<T>> state)
      : state_(std::move(state)) {}

  Future(Future&&) noexcept = default;
  Future& operator=(Future&&) noexcept = default;
  Future(const Future&) = delete;
  Future& operator=(const Future&) = delete;

  /// True while this handle still holds an untouched future.
  bool valid() const { return state_ != nullptr; }

  /// Non-consuming readiness probe (for monitoring; the model's touch is
  /// the consuming operation below).
  bool ready() const { return state_ && state_->ready(); }

  /// Returns the task's result, parking the calling fiber until it is
  /// produced. Consumes the handle: a second touch throws.
  T touch() {
    WSF_REQUIRE(state_ != nullptr,
                "touch of an empty or already-touched future "
                "(single-touch discipline violated)");
    auto st = std::move(state_);
    detail::wait_until_ready(*st);
    if (st->error) std::rethrow_exception(st->error);
    if constexpr (!std::is_void_v<T>) {
      st->taken = true;
      return st->take();
    }
  }

 private:
  std::shared_ptr<detail::FutureState<T>> state_;
};

}  // namespace wsf::runtime
