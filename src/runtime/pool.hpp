// The work-stealing scheduler: worker threads, fibers, spawn policies.
//
// This is the runtime counterpart of the paper's model:
//   * one Chase–Lev deque per worker (parsimonious work stealing, §3);
//   * SpawnPolicy::FutureFirst — spawn suspends the parent, pushes its
//     continuation onto the deque bottom, and runs the future inline
//     (work-first; the policy Theorem 8 recommends);
//   * SpawnPolicy::ParentFirst — spawn pushes the future task and the parent
//     continues (help-first; the policy Theorem 10 warns about);
//   * an unresolved touch parks the consumer fiber; the producer resumes it
//     directly when the value is ready (eager resume).
//
// Every task runs on its own fiber (pooled stacks), so continuations are
// first-class and can be stolen like any other work item.
//
// Usage:
//   Scheduler sched({.workers = 4, .policy = SpawnPolicy::FutureFirst});
//   int r = sched.run([] {
//     auto f = spawn([] { return heavy(); });   // Future<int>
//     int local = other_work();
//     return f.touch() + local;
//   });
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "runtime/chase_lev.hpp"
#include "support/move_only_function.hpp"
#include "runtime/counters.hpp"
#include "runtime/fiber.hpp"
#include "runtime/future.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace wsf::runtime {

enum class SpawnPolicy {
  /// Run the spawned future first; push the parent continuation
  /// (work-first — recommended by the paper for structured computations).
  FutureFirst,
  /// Continue the parent; push the spawned future (help-first).
  ParentFirst,
};

inline const char* to_string(SpawnPolicy p) {
  return p == SpawnPolicy::FutureFirst ? "future-first" : "parent-first";
}

struct RuntimeOptions {
  /// Worker threads; 0 = hardware concurrency.
  std::uint32_t workers = 0;
  SpawnPolicy policy = SpawnPolicy::FutureFirst;
  /// Stack bytes per fiber.
  std::size_t stack_bytes = 256 * 1024;
  /// Seed for victim selection.
  std::uint64_t seed = 0x5eed;
};

class Scheduler;

namespace detail {

/// A unit of deque work: either a fresh task (closure not yet started) or a
/// suspended fiber to resume.
struct Job {
  enum class Kind : std::uint8_t { Fresh, Resume };
  Kind kind;
  support::MoveOnlyFunction<void()> run;  // Fresh
  Fiber* fiber = nullptr;     // Resume
};

class Worker {
 public:
  Worker(Scheduler& sched, std::uint32_t id, const RuntimeOptions& opts);
  ~Worker();

  void main_loop();

  /// Called by spawn (future-first): defer-push the parent continuation and
  /// hand the fresh child job to the scheduler, then suspend the parent.
  void spawn_future_first(Fiber& parent, std::unique_ptr<Job> child);
  /// Called by spawn (parent-first): push the fresh child job.
  void spawn_parent_first(std::unique_ptr<Job> child);
  /// Called by touch on an unresolved future: park the calling fiber.
  void park_on(FutureStateBase& state, Fiber& f);
  /// Called by a producer that found a parked consumer.
  void set_handoff(Fiber* f);
  /// Wakes a parked fiber by pushing it onto the deque bottom as a Resume
  /// job, without suspending the caller (a continuation-first wake).
  void push_resume(Fiber* f);
  /// Suspends `current` to run `next` immediately (a touch-first wake).
  /// The suspended fiber becomes available again either as a deque Resume
  /// job (park_state == nullptr) or parked on `park_state` — the graph
  /// replay parks instead of pushing when the fiber's next step is itself
  /// an unready touch, mirroring the simulator's enabling semantics (a
  /// never-enabled node is never pushed). Must be called from inside
  /// `current`.
  void switch_to(Fiber& current, Fiber* next, FutureStateBase* park_state);

  WorkerCounters& counters() { return counters_; }
  std::uint32_t id() const { return id_; }
  Scheduler& scheduler() { return sched_; }
  ChaseLevDeque<Job*>& deque() { return deque_; }

 private:
  friend class wsf::runtime::Scheduler;

  Job* find_work();
  void execute(Job* job);
  void run_fiber(Fiber* f);
  /// Consumes the pending handoff (counting it), nullptr when none is set.
  Fiber* take_handoff();
  Fiber* acquire_fiber(support::MoveOnlyFunction<void()> body);
  void recycle(Fiber* f);
  void publish_pending_park();

  Scheduler& sched_;
  std::uint32_t id_;
  std::size_t stack_bytes_;
  ChaseLevDeque<Job*> deque_;
  support::Xoshiro256 rng_;
  WorkerCounters counters_;

  // Scheduler-context scratch used by the suspend protocols.
  ucontext_t sched_ctx_{};
  Fiber* handoff_ = nullptr;
  std::unique_ptr<Job> pending_child_;
  Fiber* pending_continuation_ = nullptr;
  FutureStateBase* pending_park_state_ = nullptr;
  Fiber* pending_park_fiber_ = nullptr;
  std::vector<std::unique_ptr<Fiber>> fiber_pool_;
  std::vector<std::unique_ptr<Fiber>> live_fibers_;
};

/// The worker the calling thread belongs to, nullptr outside the pool.
/// noinline so fiber code re-reads it after suspension points (fibers can
/// migrate across worker threads).
Worker* current_worker() noexcept;
/// The fiber currently executing on this thread (nullptr on a scheduler
/// context).
Fiber* current_fiber() noexcept;

}  // namespace detail

class Scheduler {
 public:
  explicit Scheduler(const RuntimeOptions& opts = {});
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Runs `root` to completion inside the pool and returns its result. Also
  /// waits for all side-effect tasks (futures never touched) to finish —
  /// the runtime analogue of the paper's super final node (§6.2). May be
  /// called repeatedly (not concurrently).
  template <typename F>
  auto run(F&& root) -> std::invoke_result_t<F> {
    using R = std::invoke_result_t<F>;
    auto state = std::make_shared<detail::FutureState<R>>();
    inject(make_job(state, std::forward<F>(root)));
    wait_quiescent();
    WSF_CHECK(state->ready(), "root task did not complete");
    if (state->error) std::rethrow_exception(state->error);
    if constexpr (!std::is_void_v<R>) {
      state->taken = true;
      return state->take();
    }
  }

  SpawnPolicy policy() const { return opts_.policy; }
  std::uint32_t num_workers() const {
    return static_cast<std::uint32_t>(workers_.size());
  }

  /// Snapshot of all worker counters since the last reset (racy while tasks
  /// run; exact when quiescent).
  CountersReport counters() const;
  /// Rebaselines the counters so subsequent counters() calls report only
  /// events from here on. Implemented as a baseline snapshot, not a write
  /// to the live cells: workers stay the sole writers of their counters.
  void reset_counters();

  /// Wraps a closure and its future state into a fresh deque job. Exposed
  /// for spawn(); not part of the stable user API.
  template <typename R, typename F>
  static std::unique_ptr<detail::Job> make_job(
      std::shared_ptr<detail::FutureState<R>> state, F&& fn) {
    auto job = std::make_unique<detail::Job>();
    job->kind = detail::Job::Kind::Fresh;
    job->run = [state = std::move(state),
                fn = std::forward<F>(fn)]() mutable {
      try {
        if constexpr (std::is_void_v<R>) {
          fn();
        } else {
          state->emplace(fn());
        }
      } catch (...) {
        state->error = std::current_exception();
      }
      if (Fiber* waiter = state->publish_ready()) {
        detail::current_worker()->set_handoff(waiter);
        detail::current_worker()->counters().direct_handoffs++;
      }
    };
    return job;
  }

 private:
  friend class detail::Worker;

  void inject(std::unique_ptr<detail::Job> job);
  void wait_quiescent();
  detail::Job* take_injected();

  void task_started() {
    outstanding_.fetch_add(1, std::memory_order_relaxed);
  }
  void task_finished();

  RuntimeOptions opts_;
  std::vector<std::unique_ptr<detail::Worker>> workers_;
  /// Per-worker counter values captured at the last reset_counters().
  std::vector<WorkerCounters> baseline_;
  std::vector<std::thread> threads_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> outstanding_{0};

  std::mutex inbox_mutex_;
  std::vector<detail::Job*> inbox_;

  std::mutex quiescent_mutex_;
  std::condition_variable quiescent_cv_;
};

/// Spawns `fn` as a future task under the scheduler's policy. Must be
/// called from inside a task (i.e. on a worker fiber).
template <typename F>
auto spawn(F&& fn) -> Future<std::invoke_result_t<F>> {
  using R = std::invoke_result_t<F>;
  detail::Worker* w = detail::current_worker();
  WSF_REQUIRE(w != nullptr, "spawn() outside the scheduler");
  auto state = std::make_shared<detail::FutureState<R>>();
  auto job = Scheduler::make_job(state, std::forward<F>(fn));
  w->counters().spawns++;
  if (w->scheduler().policy() == SpawnPolicy::FutureFirst) {
    Fiber* parent = detail::current_fiber();
    WSF_CHECK(parent != nullptr, "spawn outside a task fiber");
    w->spawn_future_first(*parent, std::move(job));
  } else {
    w->spawn_parent_first(std::move(job));
  }
  return Future<R>(std::move(state));
}

}  // namespace wsf::runtime
