// The work-stealing scheduler: worker threads, fibers, spawn policies.
//
// This is the runtime counterpart of the paper's model:
//   * one Chase–Lev deque per worker (parsimonious work stealing, §3);
//   * SpawnPolicy::FutureFirst — spawn suspends the parent, pushes its
//     continuation onto the deque bottom, and runs the future inline
//     (work-first; the policy Theorem 8 recommends);
//   * SpawnPolicy::ParentFirst — spawn pushes the future task and the parent
//     continues (help-first; the policy Theorem 10 warns about);
//   * an unresolved touch parks the consumer fiber; the producer resumes it
//     directly when the value is ready (eager resume).
//
// Every task runs on its own fiber (pooled stacks), so continuations are
// first-class and can be stolen like any other work item.
//
// The scheduler is a long-lived service: worker threads start once and then
// serve a *stream* of jobs. A job is one root closure plus everything it
// spawns; each job's completion is tracked independently (per-job
// outstanding-task count), so concurrent submitters never wait on each
// other's work. Admission goes through a FIFO inbox; idle workers park on a
// condition variable and are woken by admission, so a pool of idle
// schedulers costs ~no CPU.
//
// One-shot usage (unchanged):
//   Scheduler sched({.workers = 4, .policy = SpawnPolicy::FutureFirst});
//   int r = sched.run([] {
//     auto f = spawn([] { return heavy(); });   // Future<int>
//     int local = other_work();
//     return f.touch() + local;
//   });
//
// Service usage:
//   auto h1 = sched.submit([] { return job_a(); });
//   auto h2 = sched.submit([] { return job_b(); });   // runs concurrently
//   use(h1.wait(), h2.wait());
//
// Reuse contract: submit()/run() may be called from any thread that is not
// a worker (use spawn() from inside a task); futures spawned by a job must
// be touched within that job; the destructor drains in-flight jobs before
// stopping the workers.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/policy.hpp"
#include "runtime/chase_lev.hpp"
#include "support/move_only_function.hpp"
#include "runtime/counters.hpp"
#include "runtime/fiber.hpp"
#include "runtime/future.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"
#include "support/thread_safety.hpp"

namespace wsf::runtime {

enum class SpawnPolicy {
  /// Run the spawned future first; push the parent continuation
  /// (work-first — recommended by the paper for structured computations).
  FutureFirst,
  /// Continue the parent; push the spawned future (help-first).
  ParentFirst,
};

inline const char* to_string(SpawnPolicy p) {
  return p == SpawnPolicy::FutureFirst ? "future-first" : "parent-first";
}

struct RuntimeOptions {
  /// Worker threads; 0 = hardware concurrency.
  std::uint32_t workers = 0;
  SpawnPolicy policy = SpawnPolicy::FutureFirst;
  /// Stack bytes per fiber.
  std::size_t stack_bytes = 256 * 1024;
  /// Seed for victim selection.
  std::uint64_t seed = 0x5eed;
  /// How much a thief claims per successful steal (one task, or up to half
  /// the victim's deque via ChaseLevDeque::steal_batch).
  core::StealPolicy steal = core::StealPolicy::One;
  /// How a thief picks its victim (uniform random, last-victim affinity,
  /// or nearest-neighbor scan).
  core::VictimPolicy victim = core::VictimPolicy::Uniform;
  /// Admission-inbox capacity in jobs; 0 = unbounded (the pre-backpressure
  /// behavior). With a bound, submission under a full inbox follows the
  /// caller's SubmitPolicy (Block / Reject / Timeout) — the service's
  /// memory and tail latency stay bounded under sustained overload.
  std::size_t inbox_capacity = 0;
};

class Scheduler;
class Batch;

/// Admission-inbox priority class. The inbox is a small priority-bucketed
/// FIFO: higher classes are taken first; admission order is preserved
/// within a class.
enum class JobPriority : std::uint8_t { High = 0, Normal = 1, Low = 2 };
inline constexpr std::size_t kNumJobPriorities = 3;

inline const char* to_string(JobPriority p) {
  switch (p) {
    case JobPriority::High: return "high";
    case JobPriority::Low: return "low";
    default: return "normal";
  }
}

/// What happened to a submitted job, observable via JobHandle::outcome()
/// once done().
enum class JobOutcome : std::uint8_t {
  Pending = 0,    ///< not yet done
  Completed = 1,  ///< ran to completion (result or exception available)
  Shed = 2,       ///< deadline expired before it started; never ran
  Abandoned = 3,  ///< its Batch was destroyed before submission; never ran
};

inline const char* to_string(JobOutcome o) {
  switch (o) {
    case JobOutcome::Completed: return "completed";
    case JobOutcome::Shed: return "shed";
    case JobOutcome::Abandoned: return "abandoned";
    default: return "pending";
  }
}

/// Per-job knobs passed at submission.
struct JobOptions {
  /// Snapshot every worker's counters at admission and report the job's
  /// delta through JobHandle::counters(). The delta is exact (and satisfies
  /// the WorkerCounters reconciliation identities) when the job had the
  /// scheduler to itself; with concurrent tenants it includes their events
  /// too. Costs one per-worker snapshot per job — leave off on hot
  /// admission paths.
  bool counters = false;
  /// Inbox priority class (irrelevant once the job reaches a deque: only
  /// admission order is prioritized, stealing stays uniform).
  JobPriority priority = JobPriority::Normal;
  /// Relative deadline from admission; 0 = none. A job still in the inbox
  /// past its deadline is shed at take-time: it never runs, its handle
  /// resolves with JobOutcome::Shed, and the shedding worker counts it in
  /// WorkerCounters::shed.
  std::chrono::microseconds deadline{0};
};

/// What a submitter does when the bounded inbox is full.
enum class SubmitPolicy : std::uint8_t {
  /// Wait (condition variable) until space frees; the wait is charged to
  /// AdmissionStats::blocked_us.
  Block,
  /// Fail fast: try_submit returns Rejected and the job never existed as
  /// far as the scheduler is concerned (the caller retries or backs off).
  Reject,
  /// Wait at most AdmitOptions::timeout, then fail with TimedOut.
  Timeout,
};

inline const char* to_string(SubmitPolicy p) {
  switch (p) {
    case SubmitPolicy::Reject: return "reject";
    case SubmitPolicy::Timeout: return "timeout";
    default: return "block";
  }
}

/// Admission knobs for try_submit. Plain submit() always uses Block.
struct AdmitOptions {
  SubmitPolicy policy = SubmitPolicy::Block;
  /// Bound for SubmitPolicy::Timeout.
  std::chrono::microseconds timeout{1000};
};

enum class SubmitStatus : std::uint8_t { Admitted, Rejected, TimedOut };

inline const char* to_string(SubmitStatus s) {
  switch (s) {
    case SubmitStatus::Rejected: return "rejected";
    case SubmitStatus::TimedOut: return "timed-out";
    default: return "admitted";
  }
}

/// Typed result of try_submit: the handle is valid only when admitted, so
/// a rejected submission is a value the caller can branch/retry on, not an
/// exception.
template <typename R>
class JobHandle;
template <typename R>
struct SubmitResult {
  SubmitStatus status = SubmitStatus::Admitted;
  JobHandle<R> handle;
  bool admitted() const { return status == SubmitStatus::Admitted; }
};

/// Submit-side admission statistics (process of record for everything the
/// per-worker counters cannot carry — these events happen on submitter
/// threads, so the cells are true multi-writer atomics, unlike the
/// single-writer WorkerCounters). Identities at quiescence:
///   submitted == admitted + rejected + timed_out
///   admitted  == completed + shed      (shed from WorkerCounters::shed)
struct AdmissionStats {
  std::uint64_t submitted = 0;  ///< jobs offered (attempts, retries counted)
  std::uint64_t admitted = 0;   ///< jobs that entered the inbox
  std::uint64_t rejected = 0;   ///< failed fast under SubmitPolicy::Reject
  std::uint64_t timed_out = 0;  ///< gave up under SubmitPolicy::Timeout
  std::uint64_t blocked_us = 0; ///< submitter wall time spent waiting for space
};

namespace detail {

/// Completion state of one submitted job (a root closure plus everything
/// it spawned). Shared between the submitting thread's JobHandle and every
/// work item belonging to the job.
/// Synchronization: `done` is the job's publication flag — the completing
/// worker writes every result field (latency_us, delta) *before* its
/// release-store of done, and readers (JobHandle) check done with an
/// acquire-load first, so those fields need no lock of their own.
/// want_counters/submitted/baseline are written once at admission, before
/// the job is visible to any worker, and read-only afterwards.
struct JobState {
  /// Tasks of this job not yet finished (the root counts as one).
  /// fetch_add is relaxed (only the count matters while running);
  /// fetch_sub is acq_rel so the final decrement orders every task's
  /// effects before completion (see Scheduler::task_finished).
  std::atomic<std::uint64_t> outstanding{1};
  /// Set (release, under quiescent_mutex_ for the cv protocol) exactly
  /// once, by the completing worker or by Scheduler::abandon.
  std::atomic<bool> done{false};
  bool want_counters = false;
  /// Inbox priority class, fixed at admission.
  JobPriority priority = JobPriority::Normal;
  std::chrono::steady_clock::time_point submitted{};
  /// Absolute deadline (max() = none), computed from JobOptions::deadline
  /// at staging. Written once before the job is visible; read at take-time.
  std::chrono::steady_clock::time_point deadline{
      std::chrono::steady_clock::time_point::max()};
  /// Admission-to-completion latency, stamped at completion. Atomic so
  /// done()-polling readers racing completion stay well-defined; relaxed
  /// because the done flag's release/acquire pair publishes it.
  std::atomic<std::uint64_t> latency_us{0};
  /// Admission-to-first-run wait (queue time); kQueueUnset until the root
  /// task starts. Written exactly once, by the worker that starts the root
  /// (children only exist after the root ran, so there is a single writer);
  /// relaxed because done's release/acquire pair publishes the final value
  /// and in-flight polls only need a non-torn read.
  std::atomic<std::uint64_t> queue_us{kQueueUnset};
  static constexpr std::uint64_t kQueueUnset = ~std::uint64_t{0};
  /// How the job ended; written before done's release-store, so any reader
  /// that observed done sees the final outcome.
  std::atomic<JobOutcome> outcome{JobOutcome::Pending};
  /// Per-worker counter values at admission (want_counters only).
  std::vector<WorkerCounters> baseline;
  /// live − baseline at completion (want_counters only).
  CountersReport delta;
};

/// A unit of deque work: either a fresh task (closure not yet started) or a
/// suspended fiber to resume. Every work item belongs to a job, whose
/// completion it keeps alive.
struct Job {
  enum class Kind : std::uint8_t { Fresh, Resume };
  Kind kind;
  support::MoveOnlyFunction<void()> run;  // Fresh
  Fiber* fiber = nullptr;     // Resume
  std::shared_ptr<JobState> job;
};

class Worker {
 public:
  Worker(Scheduler& sched, std::uint32_t id, const RuntimeOptions& opts);
  ~Worker();

  void main_loop();

  /// Called by spawn (future-first): defer-push the parent continuation and
  /// hand the fresh child job to the scheduler, then suspend the parent.
  void spawn_future_first(Fiber& parent, std::unique_ptr<Job> child);
  /// Called by spawn (parent-first): push the fresh child job.
  void spawn_parent_first(std::unique_ptr<Job> child);
  /// Called by touch on an unresolved future: park the calling fiber.
  void park_on(FutureStateBase& state, Fiber& f);
  /// Called by a producer that found a parked consumer.
  void set_handoff(Fiber* f);
  /// Wakes a parked fiber by pushing it onto the deque bottom as a Resume
  /// job, without suspending the caller (a continuation-first wake).
  void push_resume(Fiber* f);
  /// Suspends `current` to run `next` immediately (a touch-first wake).
  /// The suspended fiber becomes available again either as a deque Resume
  /// job (park_state == nullptr) or parked on `park_state` — the graph
  /// replay parks instead of pushing when the fiber's next step is itself
  /// an unready touch, mirroring the simulator's enabling semantics (a
  /// never-enabled node is never pushed). Must be called from inside
  /// `current`.
  void switch_to(Fiber& current, Fiber* next, FutureStateBase* park_state);

  WorkerCounters& counters() { return counters_; }
  std::uint32_t id() const { return id_; }
  Scheduler& scheduler() { return sched_; }
  ChaseLevDeque<Job*>& deque() { return deque_; }

 private:
  friend class wsf::runtime::Scheduler;
  friend struct WorkerAudit;  // tests/test_false_sharing.cpp

  Job* find_work();
  /// Chooses a steal victim under victim_policy_ (never this worker).
  std::uint32_t pick_victim(std::uint32_t n);
  /// One steal operation against `victim` under steal_policy_: steal-one
  /// takes the victim's top; steal-half claims up to half the victim's
  /// items, runs the oldest, and pushes the rest onto this worker's deque
  /// (their acquisition is counted when they are popped, like
  /// take_injected's admission batching).
  Job* steal_from(std::uint32_t victim);
  void execute(Job* job);
  void run_fiber(Fiber* f);
  /// Consumes the pending handoff (counting it), nullptr when none is set.
  Fiber* take_handoff();
  Fiber* acquire_fiber(support::MoveOnlyFunction<void()> body);
  void recycle(Fiber* f);
  void publish_pending_park();

  // ---- false-sharing layout (audited by tests/test_false_sharing.cpp) ----
  // The deque indices and the counters are the only Worker state other
  // threads touch (thieves CAS deque_.top_; snapshot readers scan
  // counters_). Both are line-aligned — their types already force this, but
  // the explicit alignas pins the intent against type changes — so the cold
  // header fields above deque_ and the owner-only scratch below counters_
  // never share a line with cross-thread traffic.
  Scheduler& sched_;
  std::uint32_t id_;
  std::size_t stack_bytes_;
  core::StealPolicy steal_policy_;
  core::VictimPolicy victim_policy_;
  alignas(64) ChaseLevDeque<Job*> deque_;
  support::Xoshiro256 rng_;
  alignas(64) WorkerCounters counters_;

  // ---- owner-only steal-loop state ----
  static constexpr std::uint32_t kNoVictim = ~std::uint32_t{0};
  /// Last worker a steal succeeded from (VictimPolicy::LastVictim).
  std::uint32_t last_victim_ = kNoVictim;
  /// Consecutive find_work rounds that ended in a failed steal; drives the
  /// capped exponential backoff and resets on any acquired work.
  std::uint32_t failed_steal_streak_ = 0;
  /// Current backoff sleep in microseconds (capped exponential).
  std::uint32_t backoff_us_ = 0;
  /// Scratch buffer for ChaseLevDeque::steal_batch claims.
  std::vector<Job*> steal_buf_;

  // Scheduler-context scratch used by the suspend protocols.
  ucontext_t sched_ctx_{};
  Fiber* handoff_ = nullptr;
  std::unique_ptr<Job> pending_child_;
  Fiber* pending_continuation_ = nullptr;
  FutureStateBase* pending_park_state_ = nullptr;
  Fiber* pending_park_fiber_ = nullptr;
  /// The job whose work item execute() is currently running. Every edge a
  /// running fiber creates (spawned children, pushed continuations, parked
  /// wakes, handoffs) stays within its own job — futures never cross job
  /// boundaries — so the whole run_fiber chain charges this job.
  std::shared_ptr<JobState> current_job_;
  /// Small same-thread stack cache; overflow goes to the scheduler-wide
  /// free list so one worker cannot strand stacks other workers need.
  std::vector<std::unique_ptr<Fiber>> fiber_pool_;
};

/// The worker the calling thread belongs to, nullptr outside the pool.
/// noinline so fiber code re-reads it after suspension points (fibers can
/// migrate across worker threads).
Worker* current_worker() noexcept;
/// The fiber currently executing on this thread (nullptr on a scheduler
/// context).
Fiber* current_fiber() noexcept;

}  // namespace detail

/// Completion handle of one submitted job. Move-only; wait() may be called
/// once (for non-void R it consumes the value). done()/latency_us() are
/// valid anytime; counters() after completion, when the job was submitted
/// with JobOptions{.counters = true}.
template <typename R>
class JobHandle {
 public:
  JobHandle() = default;
  JobHandle(JobHandle&&) noexcept = default;
  JobHandle& operator=(JobHandle&&) noexcept = default;

  bool valid() const { return job_ != nullptr; }
  bool done() const {
    // acquire pairs with the completing worker's release-store: once done
    // reads true, every result field of the JobState is visible.
    return job_ && job_->done.load(std::memory_order_acquire);
  }
  /// Blocks until the job (root + everything it spawned) completes, then
  /// returns the root's result or rethrows its exception. Throws if the
  /// job never ran — shed past its deadline, or abandoned (its Batch was
  /// destroyed before submission); use wait_outcome() to branch without
  /// exceptions.
  R wait();
  /// Blocks until the job resolves and reports how, without consuming the
  /// result or throwing — the overload-tolerant wait: callers that expect
  /// shedding check the outcome, then call wait() only on Completed.
  JobOutcome wait_outcome();
  /// How the job ended; JobOutcome::Pending until done().
  JobOutcome outcome() const {
    WSF_REQUIRE(job_ != nullptr, "outcome() on an empty JobHandle");
    // acquire mirrors done(): observing a final outcome implies the
    // completing worker's other stores are visible too.
    return job_->outcome.load(std::memory_order_acquire);
  }
  /// Admission-to-completion wall time; valid once done(). For Shed jobs
  /// this is the time spent queued before the shed.
  std::uint64_t latency_us() const {
    WSF_REQUIRE(job_ != nullptr, "latency_us() on an empty JobHandle");
    // acquire mirrors done(): a reader that polls latency_us directly
    // still sees the completing worker's stores once a nonzero arrives.
    return job_->latency_us.load(std::memory_order_acquire);
  }
  /// Admission-to-first-run wait (queue time); valid once done(). Equals
  /// latency_us() for jobs that never ran (shed/abandoned).
  std::uint64_t queue_us() const {
    WSF_REQUIRE(job_ != nullptr, "queue_us() on an empty JobHandle");
    // acquire: same publication contract as latency_us above.
    const std::uint64_t q = job_->queue_us.load(std::memory_order_acquire);
    return q == detail::JobState::kQueueUnset ? 0 : q;
  }
  /// First-run-to-completion wall time (service time); valid once done().
  /// Zero for jobs that never ran. latency_us() == queue_us() +
  /// service_us(), so overload shows up in queue time instead of being
  /// smeared into one number.
  std::uint64_t service_us() const {
    const std::uint64_t l = latency_us();
    const std::uint64_t q = queue_us();
    return l > q ? l - q : 0;
  }
  /// The job's counter delta; valid once done(), requires
  /// JobOptions{.counters = true} at submission.
  const CountersReport& counters() const {
    WSF_REQUIRE(job_ && job_->want_counters,
                "counters() needs JobOptions{.counters = true}");
    WSF_REQUIRE(done(), "counters() before the job completed");
    return job_->delta;
  }

 private:
  friend class Scheduler;
  friend class Batch;
  JobHandle(Scheduler* sched, std::shared_ptr<detail::FutureState<R>> state,
            std::shared_ptr<detail::JobState> job)
      : sched_(sched), state_(std::move(state)), job_(std::move(job)) {}

  Scheduler* sched_ = nullptr;
  std::shared_ptr<detail::FutureState<R>> state_;
  std::shared_ptr<detail::JobState> job_;
};

class Scheduler {
 public:
  explicit Scheduler(const RuntimeOptions& opts = {});
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Admits `root` as a new job and returns immediately. The job completes
  /// when the root and every task it spawned have finished (futures never
  /// touched included — the runtime analogue of the paper's super final
  /// node, §6.2). Safe to call from several threads concurrently; must not
  /// be called from a worker (use spawn() inside tasks).
  template <typename F>
  auto submit(F&& root, const JobOptions& opts = {})
      -> JobHandle<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto state = std::make_shared<detail::FutureState<R>>();
    auto job = make_job(state, std::forward<F>(root));
    std::shared_ptr<detail::JobState> js = make_job_state(opts);
    job->job = js;
    inject(std::move(job));
    return JobHandle<R>(this, std::move(state), std::move(js));
  }

  /// Runs `root` to completion inside the pool and returns its result —
  /// submit() + wait(). May be called repeatedly and, because completion is
  /// tracked per job, concurrently from several submitter threads.
  template <typename F>
  auto run(F&& root) -> std::invoke_result_t<F> {
    return submit(std::forward<F>(root)).wait();
  }

  /// submit() with an explicit admission policy. Returns a typed result:
  /// the handle is valid only when status == Admitted. Under an unbounded
  /// inbox (inbox_capacity == 0) admission always succeeds immediately.
  template <typename F>
  auto try_submit(F&& root, const JobOptions& opts = {},
                  const AdmitOptions& admit_opts = {})
      -> SubmitResult<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto state = std::make_shared<detail::FutureState<R>>();
    auto job = make_job(state, std::forward<F>(root));
    std::shared_ptr<detail::JobState> js = make_job_state(opts);
    job->job = js;
    detail::Job* raw = job.get();
    const SubmitStatus st = admit(&raw, 1, admit_opts);
    if (st != SubmitStatus::Admitted) return {st, JobHandle<R>{}};
    job.release();  // ownership passed to the inbox by admit()
    return {st, JobHandle<R>(this, std::move(state), std::move(js))};
  }

  /// Admits every job staged in `batch` with one queue operation and one
  /// worker wake — the cheap way to push thousands of small jobs.
  void submit(Batch&& batch) WSF_EXCLUDES(inbox_mutex_, idle_mutex_);

  /// submit(Batch&&) with an explicit admission policy; all-or-nothing.
  /// On Rejected/TimedOut the batch is left intact — the caller can retry
  /// later or drop it (dropping abandons the jobs, resolving their handles
  /// with JobOutcome::Abandoned). A Block/Timeout batch larger than the
  /// inbox capacity can never fit and is refused up front.
  SubmitStatus try_submit(Batch& batch, const AdmitOptions& admit_opts = {})
      WSF_EXCLUDES(inbox_mutex_, idle_mutex_);

  /// Blocks until no job is in flight. (New submissions admitted while
  /// draining extend the wait.)
  void drain() WSF_EXCLUDES(quiescent_mutex_);

  /// Pre-provisions `count` fiber stacks into the scheduler-wide free
  /// list — capacity planning for a known admission burst, so a load run
  /// reaches zero steady-state stack allocation deterministically instead
  /// of relying on warmup having touched the peak. Acquiring a prewarmed
  /// stack counts as stacks_reused; prewarming itself counts nothing.
  void prewarm(std::size_t count) WSF_EXCLUDES(fiber_free_mutex_);

  SpawnPolicy policy() const { return opts_.policy; }
  std::uint32_t num_workers() const {
    return static_cast<std::uint32_t>(workers_.size());
  }
  /// Admission-inbox capacity in jobs; 0 = unbounded.
  std::size_t inbox_capacity() const { return opts_.inbox_capacity; }

  /// Snapshot of the submit-side admission statistics (racy while
  /// submitters run; exact at quiescence — see AdmissionStats for the
  /// identities that close against the worker counters).
  AdmissionStats admission() const {
    AdmissionStats s;
    // relaxed: statistics snapshot — cells may be mutually skewed while
    // submitters race; each read is atomic and exactness holds at
    // quiescence, same contract as RelaxedCounter.
    s.submitted = adm_submitted_.load(std::memory_order_relaxed);
    s.admitted = adm_admitted_.load(std::memory_order_relaxed);    // ditto
    s.rejected = adm_rejected_.load(std::memory_order_relaxed);    // ditto
    s.timed_out = adm_timed_out_.load(std::memory_order_relaxed);  // ditto
    s.blocked_us = adm_blocked_us_.load(std::memory_order_relaxed);  // ditto
    return s;
  }

  /// Snapshot of all worker counters since the last reset (racy while tasks
  /// run; exact when quiescent).
  CountersReport counters() const;
  /// Rebaselines the counters so subsequent counters() calls report only
  /// events from here on. Implemented as a baseline snapshot, not a write
  /// to the live cells: workers stay the sole writers of their counters.
  /// Scheduler-wide — for per-job deltas use JobOptions{.counters = true}.
  void reset_counters();

  /// Wraps a closure and its future state into a fresh deque job. Exposed
  /// for spawn(); not part of the stable user API.
  template <typename R, typename F>
  static std::unique_ptr<detail::Job> make_job(
      std::shared_ptr<detail::FutureState<R>> state, F&& fn) {
    auto job = std::make_unique<detail::Job>();
    job->kind = detail::Job::Kind::Fresh;
    job->run = [state = std::move(state),
                fn = std::forward<F>(fn)]() mutable {
      try {
        if constexpr (std::is_void_v<R>) {
          fn();
        } else {
          state->emplace(fn());
        }
      } catch (...) {
        state->error = std::current_exception();
      }
      if (Fiber* waiter = state->publish_ready()) {
        detail::current_worker()->set_handoff(waiter);
        detail::current_worker()->counters().direct_handoffs++;
      }
    };
    return job;
  }

 private:
  friend class detail::Worker;
  friend class Batch;
  template <typename R>
  friend class JobHandle;

  /// Allocates the completion state for a new job (stamps the admission
  /// time and absolute deadline; snapshots counter baselines when
  /// opts.counters).
  std::shared_ptr<detail::JobState> make_job_state(const JobOptions& opts);
  void inject(std::unique_ptr<detail::Job> job)
      WSF_EXCLUDES(inbox_mutex_, idle_mutex_);
  /// The one admission gate: applies the capacity bound under
  /// `admit_opts.policy`, then moves all `n` jobs into the priority
  /// buckets and wakes workers. All-or-nothing; on success ownership of
  /// the raw pointers passes to the inbox (callers release their
  /// unique_ptrs), on failure the caller keeps them. Updates the
  /// admission statistics either way.
  SubmitStatus admit(detail::Job** jobs, std::size_t n,
                     const AdmitOptions& admit_opts)
      WSF_EXCLUDES(inbox_mutex_, idle_mutex_);
  /// Pops the oldest injected job of the highest nonempty priority class;
  /// pulls a few more into the calling worker's deque (admission batching)
  /// so a burst of tiny jobs does not serialize on the inbox lock.
  /// Deadline-expired jobs encountered on the way are shed: never run,
  /// charged to `taker.counters().shed`, their handles resolved with
  /// JobOutcome::Shed.
  detail::Job* take_injected(detail::Worker& taker)
      WSF_EXCLUDES(inbox_mutex_);
  /// Marks a staged-but-never-admitted job completed-without-running so
  /// its handle's wait() throws instead of hanging.
  void abandon(std::unique_ptr<detail::Job> job)
      WSF_EXCLUDES(quiescent_mutex_);
  /// Resolves a job that will never run (Shed or Abandoned): stamps its
  /// latency/queue time, publishes the outcome + done flag, and — when the
  /// job had been admitted — retires it from jobs_in_flight_.
  void finish_without_run(detail::JobState& js, JobOutcome outcome,
                          bool was_admitted)
      WSF_EXCLUDES(quiescent_mutex_);

  void task_started(detail::JobState& js) {
    // relaxed: only the count matters while the job runs; the completing
    // decrement (acq_rel in task_finished) provides the ordering.
    js.outstanding.fetch_add(1, std::memory_order_relaxed);
  }
  void task_finished(detail::JobState& js) WSF_EXCLUDES(quiescent_mutex_);
  void complete_job(detail::JobState& js) WSF_EXCLUDES(quiescent_mutex_);
  void wait_job(detail::JobState& js) WSF_EXCLUDES(quiescent_mutex_);

  /// Fiber-stack free list shared by all workers: recycled stacks beyond a
  /// worker's small local cache land here, so steady-state load re-uses
  /// stacks instead of growing per-worker pools.
  void push_free_fiber(std::unique_ptr<Fiber> f)
      WSF_EXCLUDES(fiber_free_mutex_);
  std::unique_ptr<Fiber> take_free_fiber() WSF_EXCLUDES(fiber_free_mutex_);

  RuntimeOptions opts_;
  /// Immutable after the constructor returns (and the constructor starts
  /// the worker threads only after the vector is fully built), so workers
  /// may index into it lock-free.
  std::vector<std::unique_ptr<detail::Worker>> workers_;
  /// Per-worker counter values captured at the last reset_counters().
  std::vector<WorkerCounters> baseline_;
  std::vector<std::thread> threads_;
  /// Shutdown flag: release-store under idle_mutex_ in the destructor
  /// (part of the cv protocol), acquire-load in worker idle loops.
  std::atomic<bool> stop_{false};
  /// Jobs admitted and not yet completed (drain()'s condition). Incremented
  /// relaxed at admission — going *away* from quiescence never needs to
  /// wake anyone; decremented acq_rel under quiescent_mutex_ so drain()'s
  /// cv wait cannot miss the step to zero.
  std::atomic<std::uint64_t> jobs_in_flight_{0};

  support::Mutex inbox_mutex_;
  /// Priority-bucketed FIFO: one deque per JobPriority class, taken
  /// highest class first, admission order within a class. With
  /// inbox_capacity == 0 (default) and Normal-only traffic this degrades
  /// to exactly the old single FIFO.
  std::array<std::deque<detail::Job*>, kNumJobPriorities> inbox_
      WSF_GUARDED_BY(inbox_mutex_);
  /// Total jobs across all buckets — the capacity bound's subject.
  std::size_t inbox_size_ WSF_GUARDED_BY(inbox_mutex_) = 0;
  /// Queued jobs carrying a deadline; lets take_injected skip the clock
  /// read entirely on deadline-free streams (the common case).
  std::size_t inbox_deadlines_ WSF_GUARDED_BY(inbox_mutex_) = 0;
  /// Submitters currently blocked waiting for space; takers only notify
  /// the space cv when this is nonzero, keeping the unbounded/uncontended
  /// take path free of cv traffic.
  std::size_t space_waiters_ WSF_GUARDED_BY(inbox_mutex_) = 0;
  /// Blocked/timed-out submitters park here; take_injected notifies as it
  /// frees space under a bounded capacity.
  support::CondVar inbox_space_cv_;

  // Submit-side admission statistics (see AdmissionStats). True RMW
  // atomics — many submitter threads bump them concurrently — unlike the
  // single-writer RelaxedCounter cells in WorkerCounters.
  std::atomic<std::uint64_t> adm_submitted_{0};
  std::atomic<std::uint64_t> adm_admitted_{0};
  std::atomic<std::uint64_t> adm_rejected_{0};
  std::atomic<std::uint64_t> adm_timed_out_{0};
  std::atomic<std::uint64_t> adm_blocked_us_{0};

  /// Idle workers park here; admission bumps the epoch and notifies. The
  /// epoch closes the race between a worker's last find_work() miss and
  /// its wait: an admission between the two changes the epoch the worker
  /// read before re-checking, so the wait predicate is already true.
  /// The epoch itself stays atomic (not WSF_GUARDED_BY): waiters read it
  /// lock-free before deciding to park; only the *bump* must happen under
  /// idle_mutex_ for the cv protocol. Bumps use release, reads acquire,
  /// so a woken worker also sees the admitted job.
  support::Mutex idle_mutex_;
  support::CondVar idle_cv_;
  std::atomic<std::uint64_t> work_epoch_{0};

  support::Mutex fiber_free_mutex_;
  std::vector<std::unique_ptr<Fiber>> fiber_free_
      WSF_GUARDED_BY(fiber_free_mutex_);

  /// Serves JobHandle::wait() and drain(). Completion events are rare
  /// (once per job), so one scheduler-wide cv is enough. Guards no members
  /// directly: the waited-on state (JobState::done, jobs_in_flight_) is
  /// atomic, and the mutex exists so completion's store→notify cannot
  /// interleave into a waiter between its predicate check and its sleep.
  support::Mutex quiescent_mutex_;
  support::CondVar quiescent_cv_;
};

/// Stages jobs for a single admission: handles are live immediately, the
/// jobs start running when the batch is passed to Scheduler::submit. A
/// batch destroyed without being submitted abandons its jobs — their
/// handles' wait() throws.
class Batch {
 public:
  explicit Batch(Scheduler& sched) : sched_(&sched) {}
  ~Batch() {
    for (auto& job : staged_) sched_->abandon(std::move(job));
  }
  Batch(Batch&&) noexcept = default;
  Batch& operator=(Batch&&) = delete;
  Batch(const Batch&) = delete;
  Batch& operator=(const Batch&) = delete;

  template <typename F>
  auto add(F&& root, const JobOptions& opts = {})
      -> JobHandle<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto state = std::make_shared<detail::FutureState<R>>();
    auto job = Scheduler::make_job(state, std::forward<F>(root));
    std::shared_ptr<detail::JobState> js = sched_->make_job_state(opts);
    job->job = js;
    staged_.push_back(std::move(job));
    return JobHandle<R>(sched_, std::move(state), std::move(js));
  }

  std::size_t size() const { return staged_.size(); }
  Scheduler& scheduler() { return *sched_; }

 private:
  friend class Scheduler;
  Scheduler* sched_;
  std::vector<std::unique_ptr<detail::Job>> staged_;
};

template <typename R>
R JobHandle<R>::wait() {
  const JobOutcome o = wait_outcome();
  WSF_CHECK(o != JobOutcome::Shed, "job was shed: its deadline expired "
            "before it started (use wait_outcome() to handle shedding)");
  WSF_CHECK(state_->ready(),
            "job did not complete (batch abandoned before submit?)");
  if (state_->error) std::rethrow_exception(state_->error);
  if constexpr (!std::is_void_v<R>) {
    state_->taken = true;
    return state_->take();
  }
}

template <typename R>
JobOutcome JobHandle<R>::wait_outcome() {
  WSF_REQUIRE(job_ != nullptr, "wait_outcome() on an empty JobHandle");
  sched_->wait_job(*job_);
  // acquire pairs with the completing worker's outcome store before its
  // done release (wait_job already synchronized, but keep the read
  // self-sufficient).
  return job_->outcome.load(std::memory_order_acquire);
}

/// A process-wide, reference-counted lease on a long-lived Scheduler.
/// acquire() returns the live scheduler for (resolved worker count, policy,
/// stack size, steal policy, victim policy) or starts one; the scheduler
/// dies when the last lease drops.
/// This is how independent components (e.g. the sweep backend's worker
/// threads) share one warm pool instead of churning a scheduler each.
/// RuntimeOptions::seed is deliberately not part of the key: it only
/// perturbs victim selection, and the runtime is not deterministic per seed
/// anyway (unlike the simulator).
class SharedScheduler {
 public:
  static std::shared_ptr<SharedScheduler> acquire(const RuntimeOptions& opts);

  Scheduler& scheduler() { return sched_; }
  /// Hold while per-job counter deltas must be free of other tenants'
  /// events (JobOptions::counters is exact only in isolation). An
  /// annotated capability, so lessee code can carry WSF_REQUIRES /
  /// WSF_GUARDED_BY contracts on it (exp::RuntimeBackend does).
  support::Mutex& exclusive() WSF_RETURN_CAPABILITY(exclusive_) {
    return exclusive_;
  }

 private:
  explicit SharedScheduler(const RuntimeOptions& opts) : sched_(opts) {}
  Scheduler sched_;
  support::Mutex exclusive_;
};

/// Spawns `fn` as a future task under the scheduler's policy. Must be
/// called from inside a task (i.e. on a worker fiber).
template <typename F>
auto spawn(F&& fn) -> Future<std::invoke_result_t<F>> {
  using R = std::invoke_result_t<F>;
  detail::Worker* w = detail::current_worker();
  WSF_REQUIRE(w != nullptr, "spawn() outside the scheduler");
  auto state = std::make_shared<detail::FutureState<R>>();
  auto job = Scheduler::make_job(state, std::forward<F>(fn));
  w->counters().spawns++;
  if (w->scheduler().policy() == SpawnPolicy::FutureFirst) {
    Fiber* parent = detail::current_fiber();
    WSF_CHECK(parent != nullptr, "spawn outside a task fiber");
    w->spawn_future_first(*parent, std::move(job));
  } else {
    w->spawn_parent_first(std::move(job));
  }
  return Future<R>(std::move(state));
}

}  // namespace wsf::runtime
