// Stackful fibers on top of ucontext, with pooled stacks.
//
// The runtime runs every task on its own fiber so that (a) under the
// future-first policy a spawn can suspend the parent mid-function and push
// its continuation onto the deque (work-first semantics, the policy the
// paper recommends), and (b) a touch of an unresolved future can park the
// consumer without blocking the worker thread.
//
// Fibers may be resumed by a *different* worker thread than the one that
// suspended them (stolen continuations). glibc's swapcontext does not switch
// TLS, so any code running inside a fiber must re-read its current worker
// through a noinline accessor after every suspension point; the scheduler
// does this for the user.
#pragma once

#include <ucontext.h>

#include <cstddef>
#include <cstdint>
#include "support/move_only_function.hpp"

#include "support/check.hpp"

namespace wsf::runtime {

class Fiber;

/// Entry function a fiber executes; when it returns, the fiber is finished.
using FiberFn = support::MoveOnlyFunction<void(Fiber&)>;

/// A suspendable execution context with its own heap-allocated stack.
/// Lifecycle: created bound to a function, switched into from a native
/// (worker) context, may suspend back any number of times, and finishes by
/// returning. Stacks are reusable through rebind().
class Fiber {
 public:
  /// Creates a fiber with a fresh stack of `stack_bytes`.
  Fiber(FiberFn fn, std::size_t stack_bytes);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Reinitializes a *finished* fiber with a new entry function, reusing its
  /// stack — the scheduler's stack pool in one call.
  void rebind(FiberFn fn);

  /// Switches from the caller's native context into the fiber. Returns when
  /// the fiber suspends or finishes. Must not be called from inside a fiber.
  void resume(ucontext_t* from);

  /// Suspends the fiber, switching back to the context that resumed it.
  /// Must be called from inside this fiber.
  void suspend();

  bool finished() const { return finished_; }

  /// Scheduler scratch: an opaque pointer slot the owner may use (e.g. to
  /// chain parked fibers).
  void* user_data = nullptr;

 private:
  static void trampoline(unsigned hi, unsigned lo);
  void run();

  FiberFn fn_;
  ucontext_t context_{};
  ucontext_t* return_to_ = nullptr;
  char* stack_ = nullptr;
  std::size_t stack_bytes_ = 0;
  bool started_ = false;
  bool finished_ = false;

  // AddressSanitizer fiber-switch bookkeeping (see fiber.cpp). Declared
  // unconditionally so sanitized and plain translation units agree on the
  // layout; unused outside ASan builds.
  void* resumer_fake_stack_ = nullptr;
  void* fiber_fake_stack_ = nullptr;
  const void* resumer_stack_ = nullptr;
  std::size_t resumer_size_ = 0;

  // ThreadSanitizer fiber contexts (see fiber.cpp); unused outside TSan.
  void* tsan_fiber_ = nullptr;
  void* resumer_tsan_ = nullptr;
};

}  // namespace wsf::runtime
