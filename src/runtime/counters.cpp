#include "runtime/counters.hpp"

#include <sstream>
#include <string>

namespace wsf::runtime {

WorkerCounters& WorkerCounters::operator+=(const WorkerCounters& o) {
  spawns += o.spawns;
  tasks_run += o.tasks_run;
  steals += o.steals;
  steal_attempts += o.steal_attempts;
  touches += o.touches;
  parked_touches += o.parked_touches;
  direct_handoffs += o.direct_handoffs;
  migrations += o.migrations;
  fibers_created += o.fibers_created;
  stacks_reused += o.stacks_reused;
  return *this;
}

namespace {
// Saturating subtraction: a counters() snapshot racing a concurrent
// reset_counters() can observe a baseline ahead of the live value it read a
// moment earlier; clamping keeps such a torn report at 0 instead of ~2^64.
std::uint64_t monus(std::uint64_t a, std::uint64_t b) {
  return a > b ? a - b : 0;
}
}  // namespace

WorkerCounters& WorkerCounters::operator-=(const WorkerCounters& o) {
  spawns = monus(spawns, o.spawns);
  tasks_run = monus(tasks_run, o.tasks_run);
  steals = monus(steals, o.steals);
  steal_attempts = monus(steal_attempts, o.steal_attempts);
  touches = monus(touches, o.touches);
  parked_touches = monus(parked_touches, o.parked_touches);
  direct_handoffs = monus(direct_handoffs, o.direct_handoffs);
  migrations = monus(migrations, o.migrations);
  fibers_created = monus(fibers_created, o.fibers_created);
  stacks_reused = monus(stacks_reused, o.stacks_reused);
  return *this;
}

WorkerCounters CountersReport::total() const {
  WorkerCounters t;
  for (const auto& w : per_worker) t += w;
  return t;
}

std::string CountersReport::to_string() const {
  const WorkerCounters t = total();
  std::ostringstream os;
  os << "spawns=" << t.spawns << " tasks=" << t.tasks_run
     << " steals=" << t.steals << "/" << t.steal_attempts
     << " touches=" << t.touches << " parked=" << t.parked_touches
     << " handoffs=" << t.direct_handoffs << " migrations=" << t.migrations
     << " fibers=" << t.fibers_created << " reused=" << t.stacks_reused;
  return os.str();
}

}  // namespace wsf::runtime
