#include "runtime/counters.hpp"

#include <sstream>

namespace wsf::runtime {

WorkerCounters& WorkerCounters::operator+=(const WorkerCounters& o) {
  spawns += o.spawns;
  tasks_run += o.tasks_run;
  steals += o.steals;
  steal_attempts += o.steal_attempts;
  touches += o.touches;
  parked_touches += o.parked_touches;
  direct_handoffs += o.direct_handoffs;
  migrations += o.migrations;
  fibers_created += o.fibers_created;
  stacks_reused += o.stacks_reused;
  return *this;
}

WorkerCounters CountersReport::total() const {
  WorkerCounters t;
  for (const auto& w : per_worker) t += w;
  return t;
}

std::string CountersReport::to_string() const {
  const WorkerCounters t = total();
  std::ostringstream os;
  os << "spawns=" << t.spawns << " tasks=" << t.tasks_run
     << " steals=" << t.steals << "/" << t.steal_attempts
     << " touches=" << t.touches << " parked=" << t.parked_touches
     << " handoffs=" << t.direct_handoffs << " migrations=" << t.migrations
     << " fibers=" << t.fibers_created << " reused=" << t.stacks_reused;
  return os.str();
}

}  // namespace wsf::runtime
