#include "runtime/counters.hpp"

#include <sstream>
#include <string>

namespace wsf::runtime {

namespace {

// Field list shared by the arithmetic operators so a new counter cannot be
// added to one and forgotten in the other.
template <typename F>
void for_each_field(WorkerCounters& a, const WorkerCounters& b, F&& f) {
  f(a.spawns, b.spawns);
  f(a.tasks_run, b.tasks_run);
  f(a.steals, b.steals);
  f(a.steal_attempts, b.steal_attempts);
  f(a.touches, b.touches);
  f(a.parked_touches, b.parked_touches);
  f(a.direct_handoffs, b.direct_handoffs);
  f(a.migrations, b.migrations);
  f(a.fibers_created, b.fibers_created);
  f(a.stacks_reused, b.stacks_reused);
  f(a.local_pops, b.local_pops);
  f(a.inbox_takes, b.inbox_takes);
  f(a.resumes, b.resumes);
  f(a.inline_children, b.inline_children);
  f(a.handoff_runs, b.handoff_runs);
  f(a.continuations_pushed, b.continuations_pushed);
  f(a.wakes_pushed, b.wakes_pushed);
  f(a.fiber_resumes, b.fiber_resumes);
  f(a.shed, b.shed);
  f(a.batch_steals, b.batch_steals);
  f(a.batch_stolen_items, b.batch_stolen_items);
  f(a.steal_backoffs, b.steal_backoffs);
}

// Saturating subtraction: a counters() snapshot racing a concurrent
// reset_counters() can observe a baseline ahead of the live value it read a
// moment earlier; clamping keeps such a torn report at 0 instead of ~2^64.
std::uint64_t monus(std::uint64_t a, std::uint64_t b) {
  return a > b ? a - b : 0;
}

}  // namespace

WorkerCounters& WorkerCounters::operator+=(const WorkerCounters& o) {
  for_each_field(*this, o,
                 [](RelaxedCounter& a, const RelaxedCounter& b) { a += b; });
  return *this;
}

WorkerCounters& WorkerCounters::operator-=(const WorkerCounters& o) {
  for_each_field(*this, o, [](RelaxedCounter& a, const RelaxedCounter& b) {
    a = monus(a, b);
  });
  return *this;
}

WorkerCounters counters_since(const WorkerCounters& live,
                              const WorkerCounters& baseline) {
  WorkerCounters delta = live;
  delta -= baseline;
  return delta;
}

WorkerCounters CountersReport::total() const {
  WorkerCounters t;
  for (const auto& w : per_worker) t += w;
  return t;
}

std::string CountersReport::to_string() const {
  const WorkerCounters t = total();
  std::ostringstream os;
  os << "spawns=" << t.spawns << " tasks=" << t.tasks_run
     << " steals=" << t.steals << "/" << t.steal_attempts
     << " touches=" << t.touches << " parked=" << t.parked_touches
     << " handoffs=" << t.direct_handoffs << " migrations=" << t.migrations
     << " fibers=" << t.fibers_created << " reused=" << t.stacks_reused
     << " pops=" << t.local_pops << " inbox=" << t.inbox_takes
     << " resumes=" << t.resumes << " inline=" << t.inline_children
     << " handoff_runs=" << t.handoff_runs
     << " cont_pushed=" << t.continuations_pushed
     << " wakes=" << t.wakes_pushed << " switches=" << t.fiber_resumes
     << " shed=" << t.shed << " batch_steals=" << t.batch_steals << "/"
     << t.batch_stolen_items << " backoffs=" << t.steal_backoffs;
  return os.str();
}

}  // namespace wsf::runtime
