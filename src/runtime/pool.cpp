#include "runtime/pool.hpp"

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

namespace wsf::runtime {
namespace detail {

namespace {
thread_local Worker* tl_worker = nullptr;
thread_local Fiber* tl_fiber = nullptr;
}  // namespace

// noinline: fiber code must re-read these after suspension points, because a
// fiber can resume on a different worker thread (ucontext does not switch
// TLS).
__attribute__((noinline)) Worker* current_worker() noexcept {
  return tl_worker;
}
__attribute__((noinline)) Fiber* current_fiber() noexcept {
  return tl_fiber;
}

void wait_until_ready(FutureStateBase& state) {
  Worker* w = current_worker();
  WSF_REQUIRE(w != nullptr, "touch() outside the scheduler");
  w->counters().touches++;
  if (state.ready()) return;
  Fiber* f = current_fiber();
  WSF_CHECK(f != nullptr, "touch outside a task fiber");
  w->counters().parked_touches++;
  w->park_on(state, *f);
  // Resumed: the producer published the value before waking us.
  WSF_CHECK(state.ready(), "parked touch resumed before the value arrived");
}

Worker::Worker(Scheduler& sched, std::uint32_t id,
               const RuntimeOptions& opts)
    : sched_(sched),
      id_(id),
      stack_bytes_(opts.stack_bytes),
      rng_(support::derive_seed(opts.seed, id)) {}

Worker::~Worker() = default;

void Worker::main_loop() {
  tl_worker = this;
  int idle_spins = 0;
  while (true) {
    Job* job = find_work();
    if (job) {
      idle_spins = 0;
      execute(job);
      continue;
    }
    if (sched_.stop_.load(std::memory_order_acquire)) break;
    if (++idle_spins < 64) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
  tl_worker = nullptr;
}

Job* Worker::find_work() {
  if (Job* j = deque_.pop_bottom()) {
    counters_.local_pops++;
    return j;
  }
  if (Job* j = sched_.take_injected()) {
    counters_.inbox_takes++;
    return j;
  }
  // One random steal attempt per round, like the model's parsimonious
  // thief.
  const std::uint32_t n = sched_.num_workers();
  if (n <= 1) return nullptr;
  counters_.steal_attempts++;
  auto victim = static_cast<std::uint32_t>(rng_.below(n - 1));
  if (victim >= id_) ++victim;
  Job* j = sched_.workers_[victim]->deque_.steal_top();
  if (j) counters_.steals++;
  return j;
}

Fiber* Worker::acquire_fiber(support::MoveOnlyFunction<void()> body) {
  auto wrapped = [body = std::move(body)](Fiber&) mutable { body(); };
  if (!fiber_pool_.empty()) {
    std::unique_ptr<Fiber> f = std::move(fiber_pool_.back());
    fiber_pool_.pop_back();
    f->rebind(std::move(wrapped));
    counters_.stacks_reused++;
    Fiber* raw = f.get();
    live_fibers_.push_back(std::move(f));
    return raw;
  }
  counters_.fibers_created++;
  auto f = std::make_unique<Fiber>(std::move(wrapped), stack_bytes_);
  Fiber* raw = f.get();
  live_fibers_.push_back(std::move(f));
  return raw;
}

void Worker::recycle(Fiber* f) {
  // Move the finished fiber from the live set into the pool. The fiber may
  // have been created by a different worker (migration); ownership follows
  // the finisher, so search both this worker's live set and, failing that,
  // adopt it (the creating worker keeps the unique_ptr; transferring
  // ownership across workers would race). To keep this simple and safe, a
  // fiber is recycled only by its creating worker; others leave it to be
  // garbage-collected at shutdown.
  for (std::size_t i = 0; i < live_fibers_.size(); ++i) {
    if (live_fibers_[i].get() == f) {
      std::unique_ptr<Fiber> owned = std::move(live_fibers_[i]);
      live_fibers_[i] = std::move(live_fibers_.back());
      live_fibers_.pop_back();
      fiber_pool_.push_back(std::move(owned));
      return;
    }
  }
  // Not ours: the creating worker still holds it in live_fibers_; it will
  // be freed at scheduler shutdown.
}

void Worker::execute(Job* job) {
  Fiber* f = nullptr;
  if (job->kind == Job::Kind::Fresh) {
    counters_.tasks_run++;
    f = acquire_fiber(std::move(job->run));
  } else {
    f = job->fiber;
    counters_.resumes++;
    if (f->user_data != this) counters_.migrations++;
  }
  delete job;
  run_fiber(f);
}

Fiber* Worker::take_handoff() {
  Fiber* next = std::exchange(handoff_, nullptr);
  if (next) counters_.handoff_runs++;
  return next;
}

void Worker::run_fiber(Fiber* f) {
  while (f) {
    f->user_data = this;
    tl_fiber = f;
    counters_.fiber_resumes++;
    f->resume(&sched_ctx_);
    tl_fiber = nullptr;
    // Back on the scheduler context. NOTE: `this` is still valid — the
    // scheduler context never migrates.
    Fiber* next = nullptr;
    if (f->finished()) {
      sched_.task_finished();
      next = take_handoff();
      recycle(f);
    } else {
      // The fiber suspended: a future-first spawn, a touch-first yield
      // (switch_to without a park state), or a park (possibly a yield-park
      // combined with a handoff — see switch_to).
      if (pending_continuation_) {
        // Now that the fiber is truly suspended, make its continuation
        // stealable, then run the fresh child (future-first spawn) or the
        // handed-off waiter (touch-first yield).
        auto* resume = new Job{Job::Kind::Resume, {},
                               std::exchange(pending_continuation_, nullptr)};
        deque_.push_bottom(resume);
        counters_.continuations_pushed++;
        if (pending_child_) {
          counters_.tasks_run++;
          counters_.inline_children++;
          next = acquire_fiber(std::move(pending_child_->run));
          pending_child_.reset();
        } else {
          next = take_handoff();
        }
      } else {
        publish_pending_park();
        next = take_handoff();
      }
    }
    f = next;
  }
}

void Worker::publish_pending_park() {
  FutureStateBase* st = std::exchange(pending_park_state_, nullptr);
  Fiber* f = std::exchange(pending_park_fiber_, nullptr);
  WSF_CHECK(st != nullptr && f != nullptr, "suspend without a protocol");
  if (!st->try_park(f)) {
    // The producer beat us to it; resume the consumer immediately — unless
    // this was a yield-park already carrying a handed-off waiter, in which
    // case the consumer is woken through the deque instead.
    if (handoff_ == nullptr) {
      handoff_ = f;
    } else {
      push_resume(f);
    }
  }
}

void Worker::spawn_future_first(Fiber& parent, std::unique_ptr<Job> child) {
  sched_.task_started();
  pending_child_ = std::move(child);
  pending_continuation_ = &parent;
  parent.suspend();
  // Resumed (possibly on another worker after a steal) — nothing to do;
  // the caller must re-read current_worker().
}

void Worker::spawn_parent_first(std::unique_ptr<Job> child) {
  sched_.task_started();
  deque_.push_bottom(child.release());
}

void Worker::park_on(FutureStateBase& state, Fiber& f) {
  pending_park_state_ = &state;
  pending_park_fiber_ = &f;
  f.suspend();
}

void Worker::set_handoff(Fiber* f) {
  WSF_CHECK(handoff_ == nullptr, "double handoff");
  handoff_ = f;
}

void Worker::push_resume(Fiber* f) {
  deque_.push_bottom(new Job{Job::Kind::Resume, {}, f});
  counters_.wakes_pushed++;
}

void Worker::switch_to(Fiber& current, Fiber* next,
                       FutureStateBase* park_state) {
  if (park_state) {
    pending_park_state_ = park_state;
    pending_park_fiber_ = &current;
  } else {
    pending_continuation_ = &current;
  }
  set_handoff(next);
  current.suspend();
  // Resumed (possibly on another worker) — the caller must re-read
  // current_worker().
}

}  // namespace detail

Scheduler::Scheduler(const RuntimeOptions& opts) : opts_(opts) {
  std::uint32_t n = opts_.workers;
  if (n == 0) n = std::max(1u, std::thread::hardware_concurrency());
  for (std::uint32_t i = 0; i < n; ++i)
    workers_.push_back(std::make_unique<detail::Worker>(*this, i, opts_));
  baseline_.resize(n);
  threads_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i)
    threads_.emplace_back([this, i] { workers_[i]->main_loop(); });
}

Scheduler::~Scheduler() {
  stop_.store(true, std::memory_order_release);
  for (auto& t : threads_) t.join();
  // Any jobs left in the inbox (none, if every run() completed) leak
  // nothing: quiescence guarantees an empty inbox here.
  for (detail::Job* j : inbox_) delete j;
}

void Scheduler::inject(std::unique_ptr<detail::Job> job) {
  task_started();
  std::lock_guard<std::mutex> lock(inbox_mutex_);
  inbox_.push_back(job.release());
}

detail::Job* Scheduler::take_injected() {
  std::lock_guard<std::mutex> lock(inbox_mutex_);
  if (inbox_.empty()) return nullptr;
  detail::Job* j = inbox_.back();
  inbox_.pop_back();
  return j;
}

void Scheduler::task_finished() {
  if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lock(quiescent_mutex_);
    quiescent_cv_.notify_all();
  }
}

void Scheduler::wait_quiescent() {
  std::unique_lock<std::mutex> lock(quiescent_mutex_);
  quiescent_cv_.wait(lock, [this] {
    return outstanding_.load(std::memory_order_acquire) == 0;
  });
}

CountersReport Scheduler::counters() const {
  CountersReport report;
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    WorkerCounters since = workers_[i]->counters();
    since -= baseline_[i];
    report.per_worker.push_back(since);
  }
  return report;
}

void Scheduler::reset_counters() {
  for (std::size_t i = 0; i < workers_.size(); ++i)
    baseline_[i] = workers_[i]->counters();
}

}  // namespace wsf::runtime
