#include "runtime/pool.hpp"

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <thread>
#include <tuple>
#include <utility>

#include "support/thread_safety.hpp"

namespace wsf::runtime {
namespace detail {

namespace {
thread_local Worker* tl_worker = nullptr;
thread_local Fiber* tl_fiber = nullptr;
}  // namespace

// noinline: fiber code must re-read these after suspension points, because a
// fiber can resume on a different worker thread (ucontext does not switch
// TLS).
__attribute__((noinline)) Worker* current_worker() noexcept {
  return tl_worker;
}
__attribute__((noinline)) Fiber* current_fiber() noexcept {
  return tl_fiber;
}

void wait_until_ready(FutureStateBase& state) {
  Worker* w = current_worker();
  WSF_REQUIRE(w != nullptr, "touch() outside the scheduler");
  w->counters().touches++;
  if (state.ready()) return;
  Fiber* f = current_fiber();
  WSF_CHECK(f != nullptr, "touch outside a task fiber");
  w->counters().parked_touches++;
  w->park_on(state, *f);
  // Resumed: the producer published the value before waking us.
  WSF_CHECK(state.ready(), "parked touch resumed before the value arrived");
}

Worker::Worker(Scheduler& sched, std::uint32_t id,
               const RuntimeOptions& opts)
    : sched_(sched),
      id_(id),
      stack_bytes_(opts.stack_bytes),
      steal_policy_(opts.steal),
      victim_policy_(opts.victim),
      rng_(support::derive_seed(opts.seed, id)) {}

Worker::~Worker() = default;

void Worker::main_loop() {
  tl_worker = this;
  int idle_spins = 0;
  while (true) {
    Job* job = find_work();
    if (job) {
      idle_spins = 0;
      execute(job);
      continue;
    }
    // acquire pairs with the destructor's release-store: after stop reads
    // true the drained state (no jobs in flight) is visible too.
    if (sched_.stop_.load(std::memory_order_acquire)) break;
    if (++idle_spins < 64) {
      std::this_thread::yield();
      continue;
    }
    // Park. Read the admission epoch, re-check for work (an admission
    // between the miss above and the wait would otherwise be slept
    // through; bumping the epoch under idle_mutex_ closes the remaining
    // window), then wait until the epoch moves, stop is requested, or a
    // timeout re-arms the steal loop — work pushed onto a peer's deque
    // does not bump the epoch, so sleepers must still poll for steals.
    // acquire pairs with the admission-side release bump: a worker that
    // observes a moved epoch also observes the job that caused it.
    const std::uint64_t epoch =
        sched_.work_epoch_.load(std::memory_order_acquire);
    if ((job = find_work()) != nullptr) {
      idle_spins = 0;
      execute(job);
      continue;
    }
    {
      support::UniqueLock lock(sched_.idle_mutex_);
      sched_.idle_cv_.wait_for(
          lock, std::chrono::microseconds(100), [&] {
            // Both acquire: see the comment on the pre-lock epoch read;
            // stop additionally orders the destructor's drained state.
            return sched_.work_epoch_.load(std::memory_order_acquire) !=
                       epoch ||
                   sched_.stop_.load(std::memory_order_acquire);
          });
    }
    idle_spins = 0;
  }
  tl_worker = nullptr;
}

Job* Worker::find_work() {
  if (Job* j = deque_.pop_bottom()) {
    counters_.local_pops++;
    failed_steal_streak_ = 0;
    return j;
  }
  if (Job* j = sched_.take_injected(*this)) {
    counters_.inbox_takes++;
    failed_steal_streak_ = 0;
    return j;
  }
  // One steal operation per round, like the model's parsimonious thief
  // (StealPolicy::Half claims a batch, but still one operation per round).
  // A single worker has no victims: skip selection entirely so 1-worker
  // replays burn no steal_attempts and no RNG draws.
  const std::uint32_t n = sched_.num_workers();
  if (n <= 1) return nullptr;
  counters_.steal_attempts++;
  const std::uint32_t victim = pick_victim(n);
  Job* j = steal_from(victim);
  if (j != nullptr) {
    counters_.steals++;
    last_victim_ = victim;
    failed_steal_streak_ = 0;
    backoff_us_ = 0;
    return j;
  }
  last_victim_ = kNoVictim;
  // Capped exponential backoff once a few consecutive rounds fail: an idle
  // thief hammering top_ CASes generates coherence traffic on every victim
  // line it probes; sleeping before the next probe costs only latency it
  // was already wasting. main_loop's epoch park still bounds the worst
  // case, and any acquired work resets the streak.
  constexpr std::uint32_t kBackoffAfter = 4;
  constexpr std::uint32_t kBackoffStartUs = 2;
  constexpr std::uint32_t kBackoffCapUs = 64;
  if (++failed_steal_streak_ >= kBackoffAfter) {
    if (backoff_us_ == 0) {
      backoff_us_ = kBackoffStartUs;
    } else if (backoff_us_ < kBackoffCapUs) {
      backoff_us_ *= 2;
    }
    counters_.steal_backoffs++;
    std::this_thread::sleep_for(std::chrono::microseconds(backoff_us_));
  }
  return nullptr;
}

std::uint32_t Worker::pick_victim(std::uint32_t n) {
  switch (victim_policy_) {
    case core::VictimPolicy::LastVictim:
      // Affinity: retry the worker the last steal succeeded from — it
      // likely still has work, and re-stealing from one victim keeps the
      // thief's working set on fewer remote lines. Falls back to uniform
      // when there is no remembered victim.
      if (last_victim_ != kNoVictim && last_victim_ < n &&
          last_victim_ != id_)
        return last_victim_;
      break;
    case core::VictimPolicy::Nearest: {
      // Deterministic neighbor scan by index distance: a stand-in for
      // topology awareness (adjacent workers as cache/NUMA neighbors).
      for (std::uint32_t d = 1; d < n; ++d) {
        const std::uint32_t v = (id_ + d) % n;
        if (!sched_.workers_[v]->deque_.empty_estimate()) return v;
      }
      return (id_ + 1) % n;  // all look empty: probe the next ring slot
    }
    case core::VictimPolicy::Uniform:
      break;
  }
  auto victim = static_cast<std::uint32_t>(rng_.below(n - 1));
  if (victim >= id_) ++victim;
  return victim;
}

Job* Worker::steal_from(std::uint32_t victim) {
  ChaseLevDeque<Job*>& vd = sched_.workers_[victim]->deque_;
  if (steal_policy_ == core::StealPolicy::One) return vd.steal_top();
  // Steal-half: claim up to half the victim's items (bounded so one batch
  // cannot monopolize a huge deque), run the oldest, and keep the rest.
  constexpr std::size_t kMaxStealBatch = 16;
  steal_buf_.clear();
  const std::size_t got = vd.steal_batch(steal_buf_, kMaxStealBatch);
  if (got == 0) return nullptr;
  // steal_buf_ is oldest-first; index 0 is what steal-one would have
  // taken. The extras become ordinary deque work on *this* worker —
  // uncounted here, acquired later as local_pops (the take_injected
  // precedent), so the acquisition identities close unchanged. Push newest
  // first: LIFO pops then run them oldest-first after the returned job.
  for (std::size_t i = got; i > 1; --i) deque_.push_bottom(steal_buf_[i - 1]);
  if (got > 1) {
    counters_.batch_steals++;
    counters_.batch_stolen_items += got - 1;
  }
  return steal_buf_[0];
}

Fiber* Worker::acquire_fiber(support::MoveOnlyFunction<void()> body) {
  auto wrapped = [body = std::move(body)](Fiber&) mutable { body(); };
  std::unique_ptr<Fiber> f;
  if (!fiber_pool_.empty()) {
    f = std::move(fiber_pool_.back());
    fiber_pool_.pop_back();
  } else {
    f = sched_.take_free_fiber();
  }
  if (f) {
    f->rebind(std::move(wrapped));
    counters_.stacks_reused++;
    return f.release();
  }
  counters_.fibers_created++;
  return new Fiber(std::move(wrapped), stack_bytes_);
}

void Worker::recycle(Fiber* f) {
  // Ownership follows the finisher: whichever worker ran the fiber to
  // completion pools its stack. (The previous design kept ownership with
  // the *creating* worker, so a fiber that finished elsewhere after a
  // migration was never recycled and its stack lived until scheduler
  // shutdown — unbounded growth under a sustained job stream.) A small
  // local cache keeps the common case lock-free; everything beyond it
  // goes to the scheduler-wide free list so one worker cannot strand
  // stacks the others need.
  constexpr std::size_t kLocalFiberCache = 2;
  std::unique_ptr<Fiber> owned(f);
  if (fiber_pool_.size() < kLocalFiberCache) {
    fiber_pool_.push_back(std::move(owned));
    return;
  }
  sched_.push_free_fiber(std::move(owned));
}

void Worker::execute(Job* job) {
  // Everything the work item does — spawns, parks, wakes, handoffs — is
  // charged to its job: those edges never cross job boundaries (futures
  // are touched within the job that spawned them).
  current_job_ = std::move(job->job);
  Fiber* f = nullptr;
  if (job->kind == Job::Kind::Fresh) {
    // First Fresh task of the job == the root starting: stamp queue time
    // (admission → first run). Children are created only after the root
    // ran, and they reach other workers through deque push/steal edges
    // that order this store before their load — so the stamp has a single
    // writer and every later reader sees it set.
    // relaxed: single-writer store (see above); the done flag's
    // release/acquire pair publishes the final value to JobHandle readers.
    if (current_job_->queue_us.load(std::memory_order_relaxed) ==
        JobState::kQueueUnset) {
      current_job_->queue_us.store(
          static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::microseconds>(
                  std::chrono::steady_clock::now() - current_job_->submitted)
                  .count()),
          std::memory_order_relaxed);  // see above
    }
    counters_.tasks_run++;
    f = acquire_fiber(std::move(job->run));
  } else {
    f = job->fiber;
    counters_.resumes++;
    if (f->user_data != this) counters_.migrations++;
  }
  delete job;
  run_fiber(f);
}

Fiber* Worker::take_handoff() {
  Fiber* next = std::exchange(handoff_, nullptr);
  if (next) counters_.handoff_runs++;
  return next;
}

void Worker::run_fiber(Fiber* f) {
  while (f) {
    f->user_data = this;
    tl_fiber = f;
    counters_.fiber_resumes++;
    f->resume(&sched_ctx_);
    tl_fiber = nullptr;
    // Back on the scheduler context. NOTE: `this` is still valid — the
    // scheduler context never migrates.
    Fiber* next = nullptr;
    if (f->finished()) {
      sched_.task_finished(*current_job_);
      next = take_handoff();
      recycle(f);
    } else {
      // The fiber suspended: a future-first spawn, a touch-first yield
      // (switch_to without a park state), or a park (possibly a yield-park
      // combined with a handoff — see switch_to).
      if (pending_continuation_) {
        // Now that the fiber is truly suspended, make its continuation
        // stealable, then run the fresh child (future-first spawn) or the
        // handed-off waiter (touch-first yield).
        auto* resume =
            new Job{Job::Kind::Resume, {},
                    std::exchange(pending_continuation_, nullptr),
                    current_job_};
        deque_.push_bottom(resume);
        counters_.continuations_pushed++;
        if (pending_child_) {
          counters_.tasks_run++;
          counters_.inline_children++;
          next = acquire_fiber(std::move(pending_child_->run));
          pending_child_.reset();
        } else {
          next = take_handoff();
        }
      } else {
        publish_pending_park();
        next = take_handoff();
      }
    }
    f = next;
  }
}

void Worker::publish_pending_park() {
  FutureStateBase* st = std::exchange(pending_park_state_, nullptr);
  Fiber* f = std::exchange(pending_park_fiber_, nullptr);
  WSF_CHECK(st != nullptr && f != nullptr, "suspend without a protocol");
  if (!st->try_park(f)) {
    // The producer beat us to it; resume the consumer immediately — unless
    // this was a yield-park already carrying a handed-off waiter, in which
    // case the consumer is woken through the deque instead.
    if (handoff_ == nullptr) {
      handoff_ = f;
    } else {
      push_resume(f);
    }
  }
}

void Worker::spawn_future_first(Fiber& parent, std::unique_ptr<Job> child) {
  child->job = current_job_;
  sched_.task_started(*current_job_);
  pending_child_ = std::move(child);
  pending_continuation_ = &parent;
  parent.suspend();
  // Resumed (possibly on another worker after a steal) — nothing to do;
  // the caller must re-read current_worker().
}

void Worker::spawn_parent_first(std::unique_ptr<Job> child) {
  child->job = current_job_;
  sched_.task_started(*current_job_);
  deque_.push_bottom(child.release());
}

void Worker::park_on(FutureStateBase& state, Fiber& f) {
  pending_park_state_ = &state;
  pending_park_fiber_ = &f;
  f.suspend();
}

void Worker::set_handoff(Fiber* f) {
  WSF_CHECK(handoff_ == nullptr, "double handoff");
  handoff_ = f;
}

void Worker::push_resume(Fiber* f) {
  deque_.push_bottom(new Job{Job::Kind::Resume, {}, f, current_job_});
  counters_.wakes_pushed++;
}

void Worker::switch_to(Fiber& current, Fiber* next,
                       FutureStateBase* park_state) {
  if (park_state) {
    pending_park_state_ = park_state;
    pending_park_fiber_ = &current;
  } else {
    pending_continuation_ = &current;
  }
  set_handoff(next);
  current.suspend();
  // Resumed (possibly on another worker) — the caller must re-read
  // current_worker().
}

}  // namespace detail

Scheduler::Scheduler(const RuntimeOptions& opts) : opts_(opts) {
  std::uint32_t n = opts_.workers;
  if (n == 0) n = std::max(1u, std::thread::hardware_concurrency());
  for (std::uint32_t i = 0; i < n; ++i)
    workers_.push_back(std::make_unique<detail::Worker>(*this, i, opts_));
  baseline_.resize(n);
  threads_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i)
    threads_.emplace_back([this, i] { workers_[i]->main_loop(); });
}

Scheduler::~Scheduler() {
  drain();
  {
    support::LockGuard lock(idle_mutex_);
    // Both release, and under idle_mutex_ so parked workers cannot miss
    // the wake: a worker re-checks its predicate while holding the lock.
    stop_.store(true, std::memory_order_release);
    work_epoch_.fetch_add(1, std::memory_order_release);  // see above
  }
  idle_cv_.notify_all();
  for (auto& t : threads_) t.join();
  // drain() emptied the inbox; defensive cleanup if a job was admitted
  // concurrently with destruction (a contract violation). Locked even
  // though the workers are gone — inbox_ is guarded by inbox_mutex_, and
  // the uncontended acquire is cheaper than carving out an exemption.
  support::LockGuard lock(inbox_mutex_);
  for (auto& bucket : inbox_)
    for (detail::Job* j : bucket) delete j;
}

std::shared_ptr<detail::JobState> Scheduler::make_job_state(
    const JobOptions& opts) {
  auto js = std::make_shared<detail::JobState>();
  js->submitted = std::chrono::steady_clock::now();
  js->priority = opts.priority;
  if (opts.deadline.count() > 0) js->deadline = js->submitted + opts.deadline;
  if (opts.counters) {
    js->want_counters = true;
    js->baseline.reserve(workers_.size());
    for (const auto& w : workers_) js->baseline.push_back(w->counters());
  }
  return js;
}

void Scheduler::inject(std::unique_ptr<detail::Job> job) {
  detail::Job* raw = job.get();
  const SubmitStatus st = admit(&raw, 1, AdmitOptions{});
  WSF_CHECK(st == SubmitStatus::Admitted, "Block admission cannot fail");
  job.release();  // the inbox owns it now
}

void Scheduler::submit(Batch&& batch) {
  const SubmitStatus st = try_submit(batch, AdmitOptions{});
  WSF_CHECK(st == SubmitStatus::Admitted, "Block admission cannot fail");
}

SubmitStatus Scheduler::try_submit(Batch& batch,
                                   const AdmitOptions& admit_opts) {
  WSF_REQUIRE(batch.sched_ == this,
              "batch was staged for a different scheduler");
  if (batch.staged_.empty()) return SubmitStatus::Admitted;
  std::vector<detail::Job*> raw;
  raw.reserve(batch.staged_.size());
  for (const auto& job : batch.staged_) raw.push_back(job.get());
  const SubmitStatus st = admit(raw.data(), raw.size(), admit_opts);
  if (st != SubmitStatus::Admitted) return st;  // batch left intact
  for (auto& job : batch.staged_) job.release();  // the inbox owns them now
  batch.staged_.clear();
  return st;
}

SubmitStatus Scheduler::admit(detail::Job** jobs, std::size_t n,
                              const AdmitOptions& admit_opts) {
  using clock = std::chrono::steady_clock;
  // relaxed (here and for every adm_* cell): pure statistics — no payload
  // is published through them and AdmissionStats is exact at quiescence.
  adm_submitted_.fetch_add(n, std::memory_order_relaxed);
  const std::size_t cap = opts_.inbox_capacity;
  // An oversized batch can never fit under Block/Timeout — refuse up
  // front instead of deadlocking the submitter.
  WSF_REQUIRE(cap == 0 || admit_opts.policy == SubmitPolicy::Reject ||
                  n <= cap,
              "batch exceeds the inbox capacity and would block forever");
  {
    support::UniqueLock lock(inbox_mutex_);
    if (cap != 0 && inbox_size_ + n > cap) {
      if (admit_opts.policy == SubmitPolicy::Reject) {
        adm_rejected_.fetch_add(n, std::memory_order_relaxed);  // see above
        return SubmitStatus::Rejected;
      }
      const clock::time_point t0 = clock::now();
      bool fits = true;
      ++space_waiters_;
      if (admit_opts.policy == SubmitPolicy::Block) {
        inbox_space_cv_.wait(lock, [&] { return inbox_size_ + n <= cap; });
      } else {
        fits = inbox_space_cv_.wait_for(
            lock, admit_opts.timeout,
            [&] { return inbox_size_ + n <= cap; });
      }
      --space_waiters_;
      adm_blocked_us_.fetch_add(  // see above
          static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::microseconds>(
                  clock::now() - t0)
                  .count()),
          std::memory_order_relaxed);  // see above
      if (!fits) {
        adm_timed_out_.fetch_add(n, std::memory_order_relaxed);  // see above
        return SubmitStatus::TimedOut;
      }
    }
    // Admitted: count the jobs in flight *before* they become visible to
    // workers (both under inbox_mutex_, so a taker that sees a job also
    // sees the incremented count — its completion can never drive
    // jobs_in_flight_ below zero).
    // relaxed: moving away from quiescence wakes nobody; only the
    // decrement back toward zero (complete_job) joins the cv protocol.
    jobs_in_flight_.fetch_add(n, std::memory_order_relaxed);
    for (std::size_t i = 0; i < n; ++i) {
      detail::Job* j = jobs[i];
      inbox_[static_cast<std::size_t>(j->job->priority)].push_back(j);
      if (j->job->deadline != clock::time_point::max()) ++inbox_deadlines_;
    }
    inbox_size_ += n;
  }
  {
    support::LockGuard lock(idle_mutex_);
    // release, under idle_mutex_: one bump + notify admits all n jobs;
    // pairs with the idle loop's acquire reads and closes the miss/park
    // race (see the work_epoch_ declaration).
    work_epoch_.fetch_add(1, std::memory_order_release);
  }
  idle_cv_.notify_all();
  adm_admitted_.fetch_add(n, std::memory_order_relaxed);  // see above
  return SubmitStatus::Admitted;
}

void Scheduler::abandon(std::unique_ptr<detail::Job> job) {
  // Staged but never admitted (its Batch was destroyed): jobs_in_flight_
  // was never incremented. Mark the job done so its handle's wait()
  // returns — and throws, because the future state is unfulfilled.
  std::shared_ptr<detail::JobState> js = std::move(job->job);
  job.reset();
  finish_without_run(*js, JobOutcome::Abandoned, /*was_admitted=*/false);
}

void Scheduler::finish_without_run(detail::JobState& js, JobOutcome outcome,
                                   bool was_admitted) {
  const std::uint64_t waited = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - js.submitted)
          .count());
  // All three relaxed: the done flag's release-store below publishes them
  // to acquire-side readers (same contract as complete_job). The whole
  // wait was queueing — the job never ran, so service time is zero.
  js.queue_us.store(waited, std::memory_order_relaxed);
  js.latency_us.store(waited, std::memory_order_relaxed);  // ditto
  js.outcome.store(outcome, std::memory_order_relaxed);    // ditto
  {
    support::LockGuard lock(quiescent_mutex_);
    // release (under quiescent_mutex_ for the cv protocol): pairs with
    // wait_job's acquire so the waiter sees the outcome and timings.
    js.done.store(true, std::memory_order_release);
    if (was_admitted) {
      // acq_rel: the step toward zero must be ordered with drain()'s
      // acquire read, exactly as in complete_job.
      jobs_in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    }
  }
  quiescent_cv_.notify_all();
}

detail::Job* Scheduler::take_injected(detail::Worker& taker) {
  constexpr std::size_t kAdmitBatch = 4;
  /// Bounded shed work per call: a take under a deadline-heavy backlog
  /// sheds at most this many expired jobs, then returns and lets the next
  /// find_work round continue — keeping the inbox critical section short.
  constexpr std::size_t kShedBatch = 8;
  detail::Job* first = nullptr;
  detail::Job* extras[kAdmitBatch - 1];
  std::size_t n_extras = 0;
  detail::Job* shed[kShedBatch];
  std::size_t n_shed = 0;
  bool notify_space = false;
  {
    support::LockGuard lock(inbox_mutex_);
    if (inbox_size_ == 0) return nullptr;
    // One clock read per take, and only on streams that carry deadlines.
    const auto now = inbox_deadlines_ > 0
                         ? std::chrono::steady_clock::now()
                         : std::chrono::steady_clock::time_point::min();
    const std::size_t before = inbox_size_;
    for (auto& bucket : inbox_) {  // highest priority class first
      while (!bucket.empty() && n_extras + 1 < kAdmitBatch &&
             n_shed < kShedBatch) {
        detail::Job* j = bucket.front();
        const bool has_deadline =
            j->job->deadline != std::chrono::steady_clock::time_point::max();
        const bool expired = has_deadline && now >= j->job->deadline;
        bucket.pop_front();
        --inbox_size_;
        if (has_deadline) --inbox_deadlines_;
        if (expired) {
          shed[n_shed++] = j;
        } else if (first == nullptr) {
          first = j;
        } else {
          extras[n_extras++] = j;
        }
      }
      if ((first != nullptr && n_extras + 1 >= kAdmitBatch) ||
          n_shed >= kShedBatch)
        break;
    }
    notify_space = opts_.inbox_capacity != 0 && space_waiters_ > 0 &&
                   inbox_size_ < before;
  }
  // Wake blocked submitters outside the lock — they reacquire it in their
  // wait predicate anyway.
  if (notify_space) inbox_space_cv_.notify_all();
  // Expired jobs never run: resolve their handles as Shed and charge the
  // shedding worker's counter. They were admitted, so each retires one
  // jobs_in_flight_ slot. Not counted as inbox_takes — the acquisition
  // identities only track jobs that execute. The counter is bumped before
  // the handles resolve: finish_without_run wakes waiters, and a woken
  // client reading WorkerCounters must already see its job's shed.
  if (n_shed > 0) taker.counters().shed += n_shed;
  for (std::size_t i = 0; i < n_shed; ++i) {
    std::shared_ptr<detail::JobState> js = std::move(shed[i]->job);
    delete shed[i];
    finish_without_run(*js, JobOutcome::Shed, /*was_admitted=*/true);
  }
  // The extras become ordinary deque work (stealable); their acquisition
  // is counted when they are popped or stolen, so the work-accounting
  // identities still see exactly one source per job. Push newest first:
  // LIFO pops then run them oldest-first after `first`.
  for (std::size_t i = n_extras; i > 0; --i)
    taker.deque().push_bottom(extras[i - 1]);
  return first;
}

void Scheduler::task_finished(detail::JobState& js) {
  // acq_rel: the release half publishes this task's effects to whichever
  // thread performs the final decrement; the acquire half makes the final
  // decrementer see every other task's effects before completing the job.
  if (js.outstanding.fetch_sub(1, std::memory_order_acq_rel) == 1)
    complete_job(js);
}

void Scheduler::complete_job(detail::JobState& js) {
  // relaxed: the done flag's release-store below publishes the latency
  // (and the counter delta) to acquire-side readers.
  js.latency_us.store(
      static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - js.submitted)
              .count()),
      std::memory_order_relaxed);  // see above
  if (js.want_counters) {
    // The acq_rel fetch_sub chain on js.outstanding ordered every event of
    // the job before this read, so the delta is complete.
    js.delta.per_worker.clear();
    for (std::size_t i = 0; i < workers_.size(); ++i)
      js.delta.per_worker.push_back(
          counters_since(workers_[i]->counters(), js.baseline[i]));
  }
  // relaxed: published by done's release-store below, like the latency.
  js.outcome.store(JobOutcome::Completed, std::memory_order_relaxed);
  {
    support::LockGuard lock(quiescent_mutex_);
    // release: publishes the job's results (latency, delta) to wait_job's
    // acquire read. Under quiescent_mutex_ so the store→notify pair cannot
    // slip between a waiter's predicate check and its sleep.
    js.done.store(true, std::memory_order_release);
    // acq_rel: the step toward zero must be ordered with drain()'s
    // acquire read (and with other completions' decrements).
    jobs_in_flight_.fetch_sub(1, std::memory_order_acq_rel);
  }
  quiescent_cv_.notify_all();
}

void Scheduler::wait_job(detail::JobState& js) {
  // acquire pairs with complete_job/abandon's release-store: done == true
  // makes the job's results visible to this thread.
  if (js.done.load(std::memory_order_acquire)) return;
  support::UniqueLock lock(quiescent_mutex_);
  quiescent_cv_.wait(lock, [&js] {
    // acquire: same pairing as the fast path above.
    return js.done.load(std::memory_order_acquire);
  });
}

void Scheduler::drain() {
  support::UniqueLock lock(quiescent_mutex_);
  quiescent_cv_.wait(lock, [this] {
    // acquire pairs with complete_job's acq_rel decrement: at zero, every
    // completed job's effects are visible to the drainer.
    return jobs_in_flight_.load(std::memory_order_acquire) == 0;
  });
}

void Scheduler::prewarm(std::size_t count) {
  for (std::size_t i = 0; i < count; ++i)
    push_free_fiber(
        std::make_unique<Fiber>([](Fiber&) {}, opts_.stack_bytes));
}

void Scheduler::push_free_fiber(std::unique_ptr<Fiber> f) {
  support::LockGuard lock(fiber_free_mutex_);
  fiber_free_.push_back(std::move(f));
}

std::unique_ptr<Fiber> Scheduler::take_free_fiber() {
  support::LockGuard lock(fiber_free_mutex_);
  if (fiber_free_.empty()) return nullptr;
  std::unique_ptr<Fiber> f = std::move(fiber_free_.back());
  fiber_free_.pop_back();
  return f;
}

CountersReport Scheduler::counters() const {
  CountersReport report;
  for (std::size_t i = 0; i < workers_.size(); ++i)
    report.per_worker.push_back(
        counters_since(workers_[i]->counters(), baseline_[i]));
  return report;
}

void Scheduler::reset_counters() {
  for (std::size_t i = 0; i < workers_.size(); ++i)
    baseline_[i] = workers_[i]->counters();
}

namespace {

/// The process-wide lease registry behind SharedScheduler::acquire. A
/// named struct (not function-statics) so the map can carry its
/// WSF_GUARDED_BY contract — capability attributes attach to members.
struct LeaseRegistry {
  struct Key {
    std::uint32_t workers;
    SpawnPolicy policy;
    std::size_t stack_bytes;
    core::StealPolicy steal;
    core::VictimPolicy victim;
    bool operator<(const Key& o) const {
      return std::tie(workers, policy, stack_bytes, steal, victim) <
             std::tie(o.workers, o.policy, o.stack_bytes, o.steal, o.victim);
    }
  };
  support::Mutex mutex;
  std::map<Key, std::weak_ptr<SharedScheduler>> entries
      WSF_GUARDED_BY(mutex);
};

LeaseRegistry& lease_registry() {
  static LeaseRegistry registry;
  return registry;
}

}  // namespace

std::shared_ptr<SharedScheduler> SharedScheduler::acquire(
    const RuntimeOptions& opts) {
  RuntimeOptions resolved = opts;
  if (resolved.workers == 0)
    resolved.workers = std::max(1u, std::thread::hardware_concurrency());
  const LeaseRegistry::Key key{resolved.workers, resolved.policy,
                               resolved.stack_bytes, resolved.steal,
                               resolved.victim};

  LeaseRegistry& registry = lease_registry();
  support::LockGuard lock(registry.mutex);
  auto it = registry.entries.find(key);
  if (it != registry.entries.end())
    if (std::shared_ptr<SharedScheduler> live = it->second.lock())
      return live;
  std::shared_ptr<SharedScheduler> fresh(new SharedScheduler(resolved));
  registry.entries[key] = fresh;
  for (auto i = registry.entries.begin(); i != registry.entries.end();)
    i = i->second.expired() ? registry.entries.erase(i) : std::next(i);
  return fresh;
}

}  // namespace wsf::runtime
