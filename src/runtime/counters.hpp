// Software performance counters for the runtime — the "perf counters" side
// of the reproduction: they surface the schedule-structure quantities the
// paper reasons about (steals, parked touches, continuation migrations)
// without requiring hardware PMUs.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace wsf::runtime {

/// A relaxed-atomic event counter. Each cell is written by exactly one
/// worker — its owner — and only ever *read* from other threads
/// (Scheduler::counters / reset_counters snapshot it; they never write the
/// live cell), so plain uint64_t would be a data race on the read side;
/// relaxed atomics make the cross-thread snapshot well-defined without
/// ordering cost on the hot increment paths. The increments are
/// deliberately not RMW (see below), so the single-writer invariant is
/// load-bearing: a second writer would lose updates. Copyable (unlike
/// std::atomic) so counter structs can be snapshotted into a
/// CountersReport by value.
class RelaxedCounter {
 public:
  RelaxedCounter() noexcept = default;
  RelaxedCounter(const RelaxedCounter& o) noexcept : v_(o.load()) {}
  RelaxedCounter& operator=(const RelaxedCounter& o) noexcept {
    // relaxed: counters are statistics — snapshots tolerate skew between
    // cells; exactness holds at quiescence (see the class comment).
    v_.store(o.load(), std::memory_order_relaxed);
    return *this;
  }
  RelaxedCounter& operator=(std::uint64_t v) noexcept {
    // relaxed: same statistics contract as above.
    v_.store(v, std::memory_order_relaxed);
    return *this;
  }
  std::uint64_t load() const noexcept {
    // relaxed: atomicity (no torn reads) is all a cross-thread snapshot
    // needs; no payload is published through a counter value.
    return v_.load(std::memory_order_relaxed);
  }
  operator std::uint64_t() const noexcept { return load(); }
  // Increments are load+store, not fetch_add: each cell has a single
  // writer (its worker), so the RMW's atomicity is never needed and these
  // compile to a plain add — the counters sit on scheduling hot paths the
  // benchmarks measure. Cross-thread reads/resets stay well-defined.
  RelaxedCounter& operator++() noexcept { return *this += 1; }
  std::uint64_t operator++(int) noexcept {
    const std::uint64_t old = load();
    // relaxed: single-writer (see above), so load+store cannot lose an
    // update and needs no ordering.
    v_.store(old + 1, std::memory_order_relaxed);
    return old;
  }
  RelaxedCounter& operator+=(std::uint64_t d) noexcept {
    // relaxed: single-writer load+store, as above.
    v_.store(load() + d, std::memory_order_relaxed);
    return *this;
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Per-worker counters, cache-line padded; aggregated by Counters::total().
///
/// The work-acquisition counters reconcile exactly at quiescence (each cell
/// written by its single owner, every job consumed):
///   * every deque/inbox-sourced job was obtained exactly one way:
///       local_pops + inbox_takes + steals
///         == (tasks_run - inline_children) + resumes
///     (`steals` counts steal *operations*, each yielding the one job the
///     thief runs directly; under StealPolicy::Half the extra
///     `batch_stolen_items` go onto the thief's own deque uncounted —
///     like take_injected's admission batching — and are later acquired
///     as local_pops, so the identity closes unchanged. Jobs moved out of
///     other workers' deques total steals + batch_stolen_items.)
///   * every Resume job that was created was executed:
///       resumes == continuations_pushed + wakes_pushed
///   * every park is resolved by exactly one wake:
///       parked_touches == handoff_runs + wakes_pushed
///   * every fiber activation has one source:
///       fiber_resumes == tasks_run + resumes + handoff_runs
/// tests/test_runtime.cpp (Accounting suite) asserts all four.
///
/// `shed` (jobs dropped past their deadline at inbox take-time) touches
/// none of the acquisition counters — a shed job is popped from the inbox
/// but never counted as an inbox_take and never runs — so the identities
/// above close unchanged, and the admission-level identity
///   admitted == completed + shed
/// closes against Scheduler::admission() at quiescence. The submit-side
/// admission counters (rejected, timed_out, blocked_us) live on the
/// Scheduler as true RMW atomics, NOT here: they are written by arbitrary
/// submitter threads, which would break this struct's single-writer
/// load+store contract.
struct alignas(64) WorkerCounters {
  RelaxedCounter spawns;
  RelaxedCounter tasks_run;
  RelaxedCounter steals;
  RelaxedCounter steal_attempts;
  RelaxedCounter touches;
  /// Touches that found the future unresolved and parked the consumer — a
  /// deviation-producing event in the paper's model.
  RelaxedCounter parked_touches;
  /// Producer finished with a parked consumer and switched to it directly
  /// (the TouchFirst/eager-resume rule).
  RelaxedCounter direct_handoffs;
  /// Continuations resumed on a different worker than the one that
  /// suspended them (migrations — the locality hazard).
  RelaxedCounter migrations;
  RelaxedCounter fibers_created;
  RelaxedCounter stacks_reused;
  /// Jobs obtained by popping the bottom of the worker's own deque.
  RelaxedCounter local_pops;
  /// Jobs taken from the scheduler inbox (one per Scheduler::run call).
  RelaxedCounter inbox_takes;
  /// Resume jobs executed (suspended fibers continued from a deque).
  RelaxedCounter resumes;
  /// Future-first children run directly, without ever entering a deque.
  RelaxedCounter inline_children;
  /// Fibers run directly from a handoff: a parked consumer woken by its
  /// producer, or the immediate wake after a lost park race.
  RelaxedCounter handoff_runs;
  /// Resume jobs created for suspended continuations (future-first spawns
  /// and touch-first yields).
  RelaxedCounter continuations_pushed;
  /// Parked fibers woken by pushing a Resume job instead of a handoff
  /// (continuation-first wakes and lost-park fallbacks).
  RelaxedCounter wakes_pushed;
  /// Context switches into a fiber (the replay layer's "fiber switches"
  /// measure).
  RelaxedCounter fiber_resumes;
  /// Jobs this worker shed at inbox take-time because their deadline had
  /// expired before they started (they never ran; see the class comment
  /// for how this reconciles with the acquisition identities).
  RelaxedCounter shed;
  /// Steal operations that claimed two or more items (StealPolicy::Half
  /// batches; a batch that got exactly one item is just a steal).
  RelaxedCounter batch_steals;
  /// Items claimed *beyond the first* across all batch steals. The first
  /// item of every successful steal op is counted in `steals`; these
  /// extras land on the thief's deque and reconcile as later local_pops
  /// (see the class comment).
  RelaxedCounter batch_stolen_items;
  /// Backoff episodes: a worker slept (capped exponential) after a run of
  /// consecutive failed steal rounds. Counts episodes, not spins.
  RelaxedCounter steal_backoffs;

  WorkerCounters& operator+=(const WorkerCounters& o);
  /// Field-wise saturating difference, for reporting counts since a
  /// baseline snapshot. Saturation (rather than wrap) bounds the damage if
  /// a snapshot races a concurrent rebaseline.
  WorkerCounters& operator-=(const WorkerCounters& o);
};

// ---- false-sharing audit (compile-time) ----
// Each worker's counter block must start on its own cache line and occupy
// whole lines, so one worker's single-writer increments never invalidate a
// neighbour's counters (the blocks sit contiguously in Scheduler::baseline_
// and CountersReport::per_worker). The increments compile to plain adds
// (see RelaxedCounter); these asserts keep the layout half of that bargain.
static_assert(sizeof(RelaxedCounter) == sizeof(std::uint64_t),
              "RelaxedCounter must stay a bare counter word");
static_assert(alignof(WorkerCounters) == 64,
              "WorkerCounters must be cache-line aligned");
static_assert(sizeof(WorkerCounters) % 64 == 0,
              "WorkerCounters must occupy whole cache lines");

/// live − baseline, field-wise saturating — the delta of one measurement
/// window (a job, a bench phase) against a snapshot taken at its start.
/// The per-job counter reports the scheduler attaches to JobHandles are
/// built from this, one call per worker.
WorkerCounters counters_since(const WorkerCounters& live,
                              const WorkerCounters& baseline);

/// Aggregates and pretty-prints a set of worker counters.
struct CountersReport {
  std::vector<WorkerCounters> per_worker;
  WorkerCounters total() const;
  std::string to_string() const;
};

}  // namespace wsf::runtime
