// Software performance counters for the runtime — the "perf counters" side
// of the reproduction: they surface the schedule-structure quantities the
// paper reasons about (steals, parked touches, continuation migrations)
// without requiring hardware PMUs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace wsf::runtime {

/// Per-worker counters, cache-line padded; aggregated by Counters::total().
struct alignas(64) WorkerCounters {
  std::uint64_t spawns = 0;
  std::uint64_t tasks_run = 0;
  std::uint64_t steals = 0;
  std::uint64_t steal_attempts = 0;
  std::uint64_t touches = 0;
  /// Touches that found the future unresolved and parked the consumer — a
  /// deviation-producing event in the paper's model.
  std::uint64_t parked_touches = 0;
  /// Producer finished with a parked consumer and switched to it directly
  /// (the TouchFirst/eager-resume rule).
  std::uint64_t direct_handoffs = 0;
  /// Continuations resumed on a different worker than the one that
  /// suspended them (migrations — the locality hazard).
  std::uint64_t migrations = 0;
  std::uint64_t fibers_created = 0;
  std::uint64_t stacks_reused = 0;

  WorkerCounters& operator+=(const WorkerCounters& o);
};

/// Aggregates and pretty-prints a set of worker counters.
struct CountersReport {
  std::vector<WorkerCounters> per_worker;
  WorkerCounters total() const;
  std::string to_string() const;
};

}  // namespace wsf::runtime
