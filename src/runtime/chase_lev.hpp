// Lock-free work-stealing deque (Chase & Lev, SPAA'05), with the C11
// memory-order discipline of Lê, Pop, Cohen & Zappa Nardelli (PPoPP'13).
//
// The owner pushes and pops at the bottom; thieves steal from the top —
// exactly the parsimonious discipline of the paper's Section 3. Elements are
// raw pointers (the scheduler owns object lifetimes).
//
// Memory reclamation: grown arrays are retired to a list and freed when the
// deque is destroyed. A thief may still be reading a retired array, so
// retiring (rather than freeing) is required for safety; the transient extra
// memory is bounded by 2x the peak deque size.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/check.hpp"

namespace wsf::runtime {

template <typename T>
class ChaseLevDeque {
  static_assert(std::is_pointer_v<T>, "deque elements must be pointers");

 public:
  explicit ChaseLevDeque(std::size_t initial_capacity = 64)
      : array_(new Array(round_up(initial_capacity))) {}

  ChaseLevDeque(const ChaseLevDeque&) = delete;
  ChaseLevDeque& operator=(const ChaseLevDeque&) = delete;

  ~ChaseLevDeque() {
    // relaxed: destruction requires external quiescence (no concurrent
    // owner or thieves), so no ordering is carried here.
    delete array_.load(std::memory_order_relaxed);
    for (Array* a : retired_) delete a;
  }

  /// Owner-only: push onto the bottom.
  void push_bottom(T value) {
    // relaxed: bottom_ is only ever written by the owner — this thread.
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    // acquire pairs with thieves' CAS-release on top_: the owner must see
    // a stolen slot as free before it can overwrite it after wraparound.
    const std::int64_t t = top_.load(std::memory_order_acquire);
    // relaxed: array_ is replaced only by the owner (grow), so the owner
    // always sees its own latest store.
    Array* a = array_.load(std::memory_order_relaxed);
    if (b - t > static_cast<std::int64_t>(a->capacity) - 1) {
      a = grow(a, t, b);
    }
    a->put(b, value);
    // A release *store* (not Lê et al.'s release fence + relaxed store): the
    // orderings are equivalent for this publish, and ThreadSanitizer does not
    // model fences, so the fence form makes every steal look like a race on
    // the element's payload.
    bottom_.store(b + 1, std::memory_order_release);
  }

  /// Owner-only: pop from the bottom. Returns nullptr when empty.
  T pop_bottom() {
    // relaxed ×2: owner-written index, owner-replaced array (see
    // push_bottom) — the owner reads only its own stores here.
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Array* a = array_.load(std::memory_order_relaxed);  // see above
    // relaxed store + seq_cst fence (Lê et al. Fig. 1): the fence makes
    // the bottom_ decrement and the top_ read below a single point in the
    // total order against steal_top's fence, so owner and thief cannot
    // both see the *other*'s index as unmoved and take the same element.
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);  // see above
    // relaxed: the fence above already orders this read; the CAS below
    // revalidates top_ before anything irrevocable happens.
    std::int64_t t = top_.load(std::memory_order_relaxed);
    if (t > b) {
      // Deque was empty; restore. relaxed: owner-only index.
      bottom_.store(b + 1, std::memory_order_relaxed);
      return nullptr;
    }
    T value = a->get(b);
    if (t == b) {
      // Last element: race against thieves for it. seq_cst success keeps
      // the CAS in the same total order as the fences; relaxed failure is
      // enough because losing means a thief's seq_cst CAS already won.
      if (!top_.compare_exchange_strong(t, t + 1,
                                        std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        value = nullptr;  // a thief won
      }
      // relaxed: owner-only index.
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return value;
  }

  /// Thief: steal from the top. Returns nullptr on empty or lost race.
  T steal_top() {
    // acquire: pairs with competing thieves' CAS-release so this thief
    // reads element slots no earlier than the top_ it based them on.
    std::int64_t t = top_.load(std::memory_order_acquire);
    // seq_cst fence: the counterpart of pop_bottom's fence — orders this
    // thief's top_ read against the owner's in-flight bottom_ decrement.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    // acquire pairs with push_bottom's release store of bottom_: observing
    // the new bottom_ makes the pushed element's payload visible (TSan
    // models this pairing; a fence-based publish would not be seen).
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    if (t >= b) return nullptr;
    // consume (≥ acquire on every implementation): pairs with grow()'s
    // release store — the thief must see the copied elements in the
    // replacement array, and only data-dependent loads follow.
    Array* a = array_.load(std::memory_order_consume);
    T value = a->get(t);
    // seq_cst success: the claim must join the fence total order so the
    // owner's last-element CAS and this one cannot both succeed. relaxed
    // failure: a lost race returns nullptr without using any loaded data.
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return nullptr;  // lost the race
    }
    return value;
  }

  /// Thief: steal up to `max_n` items from the top, bounded by half the
  /// victim's observed size (steal-half). Claimed items are appended to
  /// `out` oldest-first; returns the number claimed (0 on empty or a lost
  /// first race).
  ///
  /// Why not one batch CAS (top += k)? With an owner that pops at the
  /// bottom, a multi-item claim cannot be validated: owner pops of the
  /// elements in (t, t+k) never touch top_, so a thief's successful CAS
  /// t -> t+k can believe it owns items the owner already ran. (Deques
  /// whose *owner* CASes the steal index — e.g. FIFO runqueues — don't
  /// have this hazard; a bottom-popping Chase–Lev deque does.) For the
  /// same reason each claim must re-read bottom_ behind a seq_cst fence:
  /// a loop that only CASes top_ per item can still consume an element a
  /// concurrent owner free-pop already took. So the batch is a strict
  /// composition of the proven steal_top protocol — it amortizes victim
  /// selection and the thief's re-dispatch, not the claim itself — and
  /// stops at the first lost race or empty observation.
  std::size_t steal_batch(std::vector<T>& out, std::size_t max_n) {
    // relaxed ×2 (both loads): sizing probe only — `want` is an advisory
    // bound, and no payload is read under these indices; every actual
    // claim below runs the full fence-ordered steal_top protocol.
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    const std::int64_t b =
        bottom_.load(std::memory_order_relaxed);  // see probe comment above
    if (t >= b) return 0;
    // Half of the observed size, rounded up so a 1-element deque still
    // yields one item.
    const auto avail = static_cast<std::size_t>(b - t);
    std::size_t want = (avail + 1) / 2;
    if (want > max_n) want = max_n;
    std::size_t got = 0;
    while (got < want) {
      T value = steal_top();
      if (value == nullptr) break;  // emptied, or lost a race — stop here
      out.push_back(value);
      ++got;
    }
    return got;
  }

  /// Racy size estimate (monitoring only).
  std::size_t size_estimate() const {
    // relaxed ×2: a monitoring probe; staleness is acceptable by contract
    // and no payload is read based on these indices.
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);  // ditto
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

  bool empty_estimate() const { return size_estimate() == 0; }

 private:
  struct Array {
    explicit Array(std::size_t cap) : capacity(cap), mask(cap - 1) {
      slots = new std::atomic<T>[cap];
    }
    ~Array() { delete[] slots; }
    // Slot accesses are relaxed: element visibility rides on the index
    // publications (push_bottom's release store of bottom_, grow()'s
    // release store of array_) — a slot is read only under an index the
    // reader obtained through one of those.
    T get(std::int64_t i) const {
      return slots[i & static_cast<std::int64_t>(mask)].load(
          std::memory_order_relaxed);  // see the slot-access comment above
    }
    void put(std::int64_t i, T v) {
      slots[i & static_cast<std::int64_t>(mask)].store(
          v, std::memory_order_relaxed);  // see the slot-access comment above
    }
    std::size_t capacity;
    std::size_t mask;
    std::atomic<T>* slots;
  };

  static std::size_t round_up(std::size_t n) {
    std::size_t c = 8;
    while (c < n) c <<= 1;
    return c;
  }

  Array* grow(Array* old, std::int64_t t, std::int64_t b) {
    auto* bigger = new Array(old->capacity * 2);
    for (std::int64_t i = t; i < b; ++i) bigger->put(i, old->get(i));
    // release publishes the copied elements with the new array pointer;
    // pairs with steal_top's consume load.
    array_.store(bigger, std::memory_order_release);
    retired_.push_back(old);
    return bigger;
  }

  friend struct ChaseLevAudit;

  // top_ is CAS-hammered by thieves; bottom_ is the owner's hot index;
  // array_ changes only on grow but is loaded on every operation. Each owns
  // a cache line so a steal never invalidates the owner's push/pop line and
  // a push never bounces the thieves' top_ line (ChaseLevAudit verifies).
  alignas(64) std::atomic<std::int64_t> top_{0};
  alignas(64) std::atomic<std::int64_t> bottom_{0};
  alignas(64) std::atomic<Array*> array_;
  std::vector<Array*> retired_;  // owner-only (grow happens on the owner)
};

/// Compile-time false-sharing audit of the deque's shared indices.
/// offsetof on a non-standard-layout class is conditionally-supported; GCC
/// and Clang both evaluate it for this layout, so only the warning needs
/// suppressing.
struct ChaseLevAudit {
  using Deque = ChaseLevDeque<void*>;
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Winvalid-offsetof"
  static constexpr std::size_t top = offsetof(Deque, top_);
  static constexpr std::size_t bottom = offsetof(Deque, bottom_);
  static constexpr std::size_t array = offsetof(Deque, array_);
#pragma GCC diagnostic pop
};

static_assert(alignof(ChaseLevDeque<void*>) == 64,
              "deque must start on a cache line");
static_assert(ChaseLevAudit::top / 64 != ChaseLevAudit::bottom / 64,
              "thief index and owner index must not share a cache line");
static_assert(ChaseLevAudit::bottom / 64 != ChaseLevAudit::array / 64 &&
                  ChaseLevAudit::top / 64 != ChaseLevAudit::array / 64,
              "array pointer must not share a line with either index");

}  // namespace wsf::runtime
