// Lock-free work-stealing deque (Chase & Lev, SPAA'05), with the C11
// memory-order discipline of Lê, Pop, Cohen & Zappa Nardelli (PPoPP'13).
//
// The owner pushes and pops at the bottom; thieves steal from the top —
// exactly the parsimonious discipline of the paper's Section 3. Elements are
// raw pointers (the scheduler owns object lifetimes).
//
// Memory reclamation: grown arrays are retired to a list and freed when the
// deque is destroyed. A thief may still be reading a retired array, so
// retiring (rather than freeing) is required for safety; the transient extra
// memory is bounded by 2x the peak deque size.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/check.hpp"

namespace wsf::runtime {

template <typename T>
class ChaseLevDeque {
  static_assert(std::is_pointer_v<T>, "deque elements must be pointers");

 public:
  explicit ChaseLevDeque(std::size_t initial_capacity = 64)
      : array_(new Array(round_up(initial_capacity))) {}

  ChaseLevDeque(const ChaseLevDeque&) = delete;
  ChaseLevDeque& operator=(const ChaseLevDeque&) = delete;

  ~ChaseLevDeque() {
    delete array_.load(std::memory_order_relaxed);
    for (Array* a : retired_) delete a;
  }

  /// Owner-only: push onto the bottom.
  void push_bottom(T value) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Array* a = array_.load(std::memory_order_relaxed);
    if (b - t > static_cast<std::int64_t>(a->capacity) - 1) {
      a = grow(a, t, b);
    }
    a->put(b, value);
    // A release *store* (not Lê et al.'s release fence + relaxed store): the
    // orderings are equivalent for this publish, and ThreadSanitizer does not
    // model fences, so the fence form makes every steal look like a race on
    // the element's payload.
    bottom_.store(b + 1, std::memory_order_release);
  }

  /// Owner-only: pop from the bottom. Returns nullptr when empty.
  T pop_bottom() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Array* a = array_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);
    if (t > b) {
      // Deque was empty; restore.
      bottom_.store(b + 1, std::memory_order_relaxed);
      return nullptr;
    }
    T value = a->get(b);
    if (t == b) {
      // Last element: race against thieves for it.
      if (!top_.compare_exchange_strong(t, t + 1,
                                        std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        value = nullptr;  // a thief won
      }
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return value;
  }

  /// Thief: steal from the top. Returns nullptr on empty or lost race.
  T steal_top() {
    std::int64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    if (t >= b) return nullptr;
    Array* a = array_.load(std::memory_order_consume);
    T value = a->get(t);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return nullptr;  // lost the race
    }
    return value;
  }

  /// Racy size estimate (monitoring only).
  std::size_t size_estimate() const {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

  bool empty_estimate() const { return size_estimate() == 0; }

 private:
  struct Array {
    explicit Array(std::size_t cap) : capacity(cap), mask(cap - 1) {
      slots = new std::atomic<T>[cap];
    }
    ~Array() { delete[] slots; }
    T get(std::int64_t i) const {
      return slots[i & static_cast<std::int64_t>(mask)].load(
          std::memory_order_relaxed);
    }
    void put(std::int64_t i, T v) {
      slots[i & static_cast<std::int64_t>(mask)].store(
          v, std::memory_order_relaxed);
    }
    std::size_t capacity;
    std::size_t mask;
    std::atomic<T>* slots;
  };

  static std::size_t round_up(std::size_t n) {
    std::size_t c = 8;
    while (c < n) c <<= 1;
    return c;
  }

  Array* grow(Array* old, std::int64_t t, std::int64_t b) {
    auto* bigger = new Array(old->capacity * 2);
    for (std::int64_t i = t; i < b; ++i) bigger->put(i, old->get(i));
    array_.store(bigger, std::memory_order_release);
    retired_.push_back(old);
    return bigger;
  }

  friend struct ChaseLevAudit;

  // top_ is CAS-hammered by thieves; bottom_ is the owner's hot index;
  // array_ changes only on grow but is loaded on every operation. Each owns
  // a cache line so a steal never invalidates the owner's push/pop line and
  // a push never bounces the thieves' top_ line (ChaseLevAudit verifies).
  alignas(64) std::atomic<std::int64_t> top_{0};
  alignas(64) std::atomic<std::int64_t> bottom_{0};
  alignas(64) std::atomic<Array*> array_;
  std::vector<Array*> retired_;  // owner-only (grow happens on the owner)
};

/// Compile-time false-sharing audit of the deque's shared indices.
/// offsetof on a non-standard-layout class is conditionally-supported; GCC
/// and Clang both evaluate it for this layout, so only the warning needs
/// suppressing.
struct ChaseLevAudit {
  using Deque = ChaseLevDeque<void*>;
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Winvalid-offsetof"
  static constexpr std::size_t top = offsetof(Deque, top_);
  static constexpr std::size_t bottom = offsetof(Deque, bottom_);
  static constexpr std::size_t array = offsetof(Deque, array_);
#pragma GCC diagnostic pop
};

static_assert(alignof(ChaseLevDeque<void*>) == 64,
              "deque must start on a cache line");
static_assert(ChaseLevAudit::top / 64 != ChaseLevAudit::bottom / 64,
              "thief index and owner index must not share a cache line");
static_assert(ChaseLevAudit::bottom / 64 != ChaseLevAudit::array / 64 &&
                  ChaseLevAudit::top / 64 != ChaseLevAudit::array / 64,
              "array pointer must not share a line with either index");

}  // namespace wsf::runtime
