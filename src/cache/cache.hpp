// Cache models for the locality measurements (Section 3 of the paper).
//
// The paper's model: each processor has a fully associative cache of C lines
// with LRU replacement, and each DAG node accesses at most one memory block.
// The upper-bound results hold for all "simple" replacement policies (the
// footnote in Section 3, citing Acar et al.), so the suite also provides
// FIFO, direct-mapped, and set-associative LRU models; bench E10 re-runs the
// headline experiments across them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "core/ids.hpp"

namespace wsf::cache {

/// Abstract cache: a set of lines, each holding one memory block.
/// Implementations define the replacement policy.
class CacheModel {
 public:
  virtual ~CacheModel() = default;

  /// Simulates an access to `block`. Returns true on a miss (the block was
  /// not resident; it is resident afterwards). Updates hit/miss counters.
  bool access(core::BlockId block);

  /// Evicts everything and zeroes the counters.
  virtual void reset() = 0;

  /// Number of lines (C in the paper's notation).
  virtual std::size_t capacity() const = 0;

  /// Human-readable policy name ("lru", "fifo", ...).
  virtual std::string name() const = 0;

  /// True if the block is currently resident (no counter update, no
  /// replacement side effects). Used by tests.
  virtual bool contains(core::BlockId block) const = 0;

  std::uint64_t misses() const { return misses_; }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t accesses() const { return misses_ + hits_; }

 protected:
  /// Policy-specific lookup+insert. Returns true on miss.
  virtual bool lookup_and_insert(core::BlockId block) = 0;

  void reset_counters() {
    misses_ = 0;
    hits_ = 0;
  }

 private:
  std::uint64_t misses_ = 0;
  std::uint64_t hits_ = 0;
};

inline bool CacheModel::access(core::BlockId block) {
  const bool miss = lookup_and_insert(block);
  if (miss)
    ++misses_;
  else
    ++hits_;
  return miss;
}

/// Fully associative LRU cache of `lines` lines — the paper's model.
std::unique_ptr<CacheModel> make_lru(std::size_t lines);

/// Fully associative FIFO cache.
std::unique_ptr<CacheModel> make_fifo(std::size_t lines);

/// Direct-mapped cache (line = block mod C).
std::unique_ptr<CacheModel> make_direct_mapped(std::size_t lines);

/// Set-associative cache with LRU within each set; `lines` must be a
/// multiple of `ways`.
std::unique_ptr<CacheModel> make_set_associative(std::size_t lines,
                                                 std::size_t ways);

/// Factory by policy name: "lru", "fifo", "direct", "assoc<W>" (e.g.
/// "assoc4"). Throws wsf::CheckError for unknown names.
std::unique_ptr<CacheModel> make_cache(const std::string& policy,
                                       std::size_t lines);

}  // namespace wsf::cache
