#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cache/cache.hpp"
#include "support/check.hpp"

namespace wsf::cache {
namespace {

/// W-way set-associative cache with LRU within each set. The paper's
/// footnote notes Acar et al.'s drifted-node bounds cover set-associative
/// caches too; bench E10 demonstrates the shape is preserved.
class SetAssociativeCache final : public CacheModel {
 public:
  SetAssociativeCache(std::size_t lines, std::size_t ways)
      : lines_(lines), ways_(ways), sets_(lines / ways) {
    WSF_REQUIRE(ways_ > 0, "need at least one way");
    WSF_REQUIRE(lines_ > 0 && lines_ % ways_ == 0,
                "lines (" << lines_ << ") must be a multiple of ways ("
                          << ways_ << ")");
    reset();
  }

  void reset() override {
    // Each set holds `ways_` (block, age) pairs; age 0 = most recent.
    blocks_.assign(lines_, core::kNoBlock);
    age_.assign(lines_, 0);
    reset_counters();
  }

  std::size_t capacity() const override { return lines_; }
  std::string name() const override {
    return "assoc" + std::to_string(ways_);
  }

  bool contains(core::BlockId block) const override {
    const std::size_t base = set_of(block) * ways_;
    for (std::size_t w = 0; w < ways_; ++w)
      if (blocks_[base + w] == block) return true;
    return false;
  }

 protected:
  bool lookup_and_insert(core::BlockId block) override {
    const std::size_t base = set_of(block) * ways_;
    std::size_t victim = base;
    std::uint32_t oldest = 0;
    for (std::size_t w = 0; w < ways_; ++w) {
      const std::size_t i = base + w;
      if (blocks_[i] == block) {
        touch_way(base, i);
        return false;
      }
      if (blocks_[i] == core::kNoBlock) {
        // Prefer empty ways outright.
        victim = i;
        oldest = UINT32_MAX;
      } else if (oldest != UINT32_MAX && age_[i] >= oldest) {
        victim = i;
        oldest = age_[i];
      }
    }
    blocks_[victim] = block;
    touch_way(base, victim);
    return true;
  }

 private:
  std::size_t set_of(core::BlockId block) const {
    const auto u = static_cast<std::uint64_t>(block);
    return static_cast<std::size_t>(u % sets_);
  }

  /// Marks way `i` most-recently-used within its set.
  void touch_way(std::size_t base, std::size_t i) {
    for (std::size_t w = 0; w < ways_; ++w) ++age_[base + w];
    age_[i] = 0;
  }

  std::size_t lines_;
  std::size_t ways_;
  std::size_t sets_;
  std::vector<core::BlockId> blocks_;
  std::vector<std::uint32_t> age_;
};

}  // namespace

std::unique_ptr<CacheModel> make_set_associative(std::size_t lines,
                                                 std::size_t ways) {
  return std::make_unique<SetAssociativeCache>(lines, ways);
}

}  // namespace wsf::cache
