#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cache/cache.hpp"
#include "support/check.hpp"

namespace wsf::cache {
namespace {

/// Direct-mapped cache: block b lives only in line (b mod C).
class DirectMappedCache final : public CacheModel {
 public:
  explicit DirectMappedCache(std::size_t lines)
      : lines_(lines), slot_(lines, core::kNoBlock) {
    WSF_REQUIRE(lines_ > 0, "cache needs at least one line");
  }

  void reset() override {
    slot_.assign(lines_, core::kNoBlock);
    reset_counters();
  }

  std::size_t capacity() const override { return lines_; }
  std::string name() const override { return "direct"; }

  bool contains(core::BlockId block) const override {
    return slot_[index(block)] == block;
  }

 protected:
  bool lookup_and_insert(core::BlockId block) override {
    auto& line = slot_[index(block)];
    if (line == block) return false;
    line = block;
    return true;
  }

 private:
  std::size_t index(core::BlockId block) const {
    // Blocks are non-negative in practice (generators allocate small ids);
    // fold the sign bit away to keep the index valid for any input.
    const auto u = static_cast<std::uint64_t>(block);
    return static_cast<std::size_t>(u % lines_);
  }

  std::size_t lines_;
  std::vector<core::BlockId> slot_;
};

}  // namespace

std::unique_ptr<CacheModel> make_direct_mapped(std::size_t lines) {
  return std::make_unique<DirectMappedCache>(lines);
}

}  // namespace wsf::cache
