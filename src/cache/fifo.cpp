#include <cstddef>
#include <deque>
#include <memory>
#include <string>
#include <unordered_set>

#include "cache/cache.hpp"
#include "support/check.hpp"

namespace wsf::cache {
namespace {

/// Fully associative FIFO: evicts the line that has been resident longest,
/// regardless of use. A "simple" policy in the sense of Acar et al., so the
/// paper's upper bounds also apply to it (bench E10 checks the shape).
class FifoCache final : public CacheModel {
 public:
  explicit FifoCache(std::size_t lines) : lines_(lines) {
    WSF_REQUIRE(lines_ > 0, "cache needs at least one line");
  }

  void reset() override {
    order_.clear();
    resident_.clear();
    reset_counters();
  }

  std::size_t capacity() const override { return lines_; }
  std::string name() const override { return "fifo"; }

  bool contains(core::BlockId block) const override {
    return resident_.count(block) != 0;
  }

 protected:
  bool lookup_and_insert(core::BlockId block) override {
    if (resident_.count(block)) return false;
    if (order_.size() == lines_) {
      resident_.erase(order_.front());
      order_.pop_front();
    }
    order_.push_back(block);
    resident_.insert(block);
    return true;
  }

 private:
  std::size_t lines_;
  std::deque<core::BlockId> order_;
  std::unordered_set<core::BlockId> resident_;
};

}  // namespace

std::unique_ptr<CacheModel> make_fifo(std::size_t lines) {
  return std::make_unique<FifoCache>(lines);
}

}  // namespace wsf::cache
