#include <cstddef>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>

#include "cache/cache.hpp"
#include "support/check.hpp"

namespace wsf::cache {
namespace {

/// Fully associative LRU: recency list (front = most recent) plus an index
/// from block to list position. O(1) amortized per access.
class LruCache final : public CacheModel {
 public:
  explicit LruCache(std::size_t lines) : lines_(lines) {
    WSF_REQUIRE(lines_ > 0, "cache needs at least one line");
  }

  void reset() override {
    recency_.clear();
    index_.clear();
    reset_counters();
  }

  std::size_t capacity() const override { return lines_; }
  std::string name() const override { return "lru"; }

  bool contains(core::BlockId block) const override {
    return index_.count(block) != 0;
  }

 protected:
  bool lookup_and_insert(core::BlockId block) override {
    auto it = index_.find(block);
    if (it != index_.end()) {
      recency_.splice(recency_.begin(), recency_, it->second);
      return false;  // hit
    }
    if (recency_.size() == lines_) {
      index_.erase(recency_.back());
      recency_.pop_back();
    }
    recency_.push_front(block);
    index_[block] = recency_.begin();
    return true;  // miss
  }

 private:
  std::size_t lines_;
  std::list<core::BlockId> recency_;
  std::unordered_map<core::BlockId, std::list<core::BlockId>::iterator>
      index_;
};

}  // namespace

std::unique_ptr<CacheModel> make_lru(std::size_t lines) {
  return std::make_unique<LruCache>(lines);
}

}  // namespace wsf::cache
