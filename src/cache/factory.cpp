#include <cstddef>
#include <cstdlib>
#include <memory>
#include <string>

#include "cache/cache.hpp"
#include "support/check.hpp"

namespace wsf::cache {

std::unique_ptr<CacheModel> make_cache(const std::string& policy,
                                       std::size_t lines) {
  if (policy == "lru") return make_lru(lines);
  if (policy == "fifo") return make_fifo(lines);
  if (policy == "direct") return make_direct_mapped(lines);
  if (policy.rfind("assoc", 0) == 0) {
    const std::string ways_str = policy.substr(5);
    char* end = nullptr;
    const long ways = std::strtol(ways_str.c_str(), &end, 10);
    WSF_REQUIRE(end && *end == '\0' && ways > 0,
                "bad associativity in cache policy '" << policy << "'");
    return make_set_associative(lines, static_cast<std::size_t>(ways));
  }
  WSF_REQUIRE(false, "unknown cache policy '"
                         << policy << "' (try lru, fifo, direct, assocW)");
  return nullptr;
}

}  // namespace wsf::cache
