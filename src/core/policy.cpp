#include "core/policy.hpp"

#include "support/check.hpp"

namespace wsf::core {

StealPolicy steal_policy_from_string(const std::string& s) {
  if (s == "one" || s == "single") return StealPolicy::One;
  if (s == "half" || s == "steal-half") return StealPolicy::Half;
  WSF_REQUIRE(false, "unknown steal policy '" << s << "' (one | half)");
  return StealPolicy::One;
}

VictimPolicy victim_policy_from_string(const std::string& s) {
  if (s == "uniform" || s == "random") return VictimPolicy::Uniform;
  if (s == "last-victim" || s == "last" || s == "affinity")
    return VictimPolicy::LastVictim;
  if (s == "nearest" || s == "neighbor") return VictimPolicy::Nearest;
  WSF_REQUIRE(false, "unknown victim policy '"
                         << s << "' (uniform | last-victim | nearest)");
  return VictimPolicy::Uniform;
}

}  // namespace wsf::core
