// Graphviz (DOT) export of computation DAGs, with the paper's visual
// conventions: continuation edges solid, future edges dashed, touch edges
// dotted; one cluster per thread; roles as labels.
#pragma once

#include <cstddef>
#include <string>

#include "core/graph.hpp"

namespace wsf::core {

struct DotOptions {
  /// Group nodes of each thread in a subgraph cluster.
  bool cluster_threads = true;
  /// Include memory-block annotations ("m3") on node labels.
  bool show_blocks = true;
  /// Cap on nodes rendered; larger graphs are truncated with a note
  /// (Graphviz output beyond a few thousand nodes is unusable anyway).
  std::size_t max_nodes = 5000;
};

/// Renders the graph as a DOT digraph string.
std::string to_dot(const Graph& g, const DotOptions& opts = {});

}  // namespace wsf::core
