#include "core/builder.hpp"

#include "support/check.hpp"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace wsf::core {

GraphBuilder::GraphBuilder() {
  // Main thread with its root node.
  g_.threads_.push_back(ThreadInfo{});
  const NodeId root = g_.add_node(/*thread=*/0, kNoBlock);
  ThreadInfo& main = g_.threads_[0];
  main.first_node = root;
  main.last_node = root;
  main.length = 1;
  tails_.push_back(root);
}

NodeId GraphBuilder::tail(ThreadId t) const {
  WSF_REQUIRE(t < tails_.size(), "unknown thread " << t);
  return tails_[t];
}

void GraphBuilder::require_open(ThreadId t) const {
  WSF_REQUIRE(!finished_, "builder already finished");
  WSF_REQUIRE(t < tails_.size(), "unknown thread " << t);
}

NodeId GraphBuilder::append(ThreadId t, BlockId block, EdgeKind in_kind,
                            NodeId from) {
  const NodeId id = g_.add_node(t, block);
  g_.add_edge(from, id, in_kind);
  ThreadInfo& ti = g_.threads_[t];
  if (ti.first_node == kInvalidNode) ti.first_node = id;
  ti.last_node = id;
  ti.length += 1;
  tails_[t] = id;
  return id;
}

NodeId GraphBuilder::step(ThreadId t, BlockId block, const std::string& role) {
  require_open(t);
  const NodeId id = append(t, block, EdgeKind::Continuation, tails_[t]);
  if (!role.empty()) g_.set_role(id, role);
  return id;
}

NodeId GraphBuilder::chain(ThreadId t, const std::vector<BlockId>& blocks) {
  require_open(t);
  WSF_REQUIRE(!blocks.empty(), "chain needs at least one block");
  NodeId last = kInvalidNode;
  for (BlockId b : blocks) last = step(t, b);
  return last;
}

GraphBuilder::Fork GraphBuilder::fork(ThreadId t, BlockId fork_block,
                                      const std::string& fork_role,
                                      BlockId future_first_block,
                                      const std::string& future_first_role) {
  require_open(t);
  Fork result;
  result.fork_node = step(t, fork_block);
  if (!fork_role.empty()) g_.set_role(result.fork_node, fork_role);
  g_.fork_nodes_.push_back(result.fork_node);

  // Spawn the future thread with its first node (the fork's left child).
  result.future_thread = static_cast<ThreadId>(g_.threads_.size());
  ThreadInfo ti;
  ti.parent = t;
  ti.fork_node = result.fork_node;
  g_.threads_.push_back(ti);
  tails_.push_back(kInvalidNode);
  const NodeId first = g_.add_node(result.future_thread, future_first_block);
  g_.add_edge(result.fork_node, first, EdgeKind::Future);
  ThreadInfo& stored = g_.threads_[result.future_thread];
  stored.first_node = first;
  stored.last_node = first;
  stored.length = 1;
  tails_[result.future_thread] = first;
  result.future_first = first;
  if (!future_first_role.empty()) g_.set_role(first, future_first_role);
  return result;
}

NodeId GraphBuilder::touch(ThreadId consumer, ThreadId producer, BlockId block,
                           const std::string& role) {
  require_open(consumer);
  WSF_REQUIRE(producer < tails_.size(), "unknown producer thread");
  return touch_node(consumer, tails_[producer], block, role);
}

NodeId GraphBuilder::touch_node(ThreadId consumer, NodeId future_parent,
                                BlockId block, const std::string& role) {
  require_open(consumer);
  WSF_REQUIRE(future_parent < g_.num_nodes(), "unknown future parent node");
  const NodeId local_parent = tails_[consumer];
  // A fork's right child cannot be a touch (paper convention). At build
  // time the fork may not have its continuation edge yet, so detect forks
  // by their outgoing future edge.
  bool local_parent_is_fork = false;
  {
    const Node& lp = g_.nodes_[local_parent];
    for (std::uint8_t i = 0; i < lp.out_count; ++i)
      if (lp.out[i].kind == EdgeKind::Future) local_parent_is_fork = true;
  }
  WSF_REQUIRE(!local_parent_is_fork,
              "a fork's right child cannot be a touch (paper convention); "
              "insert a step() after fork "
                  << local_parent);
  WSF_REQUIRE(g_.thread_of(future_parent) != consumer,
              "a thread cannot touch its own future parent");
  const NodeId id = append(consumer, block, EdgeKind::Continuation,
                           local_parent);
  g_.add_edge(future_parent, id, EdgeKind::Touch);
  if (!role.empty()) g_.set_role(id, role);
  return id;
}

void GraphBuilder::set_role(ThreadId t, const std::string& role) {
  require_open(t);
  g_.set_role(tails_[t], role);
}

Graph GraphBuilder::finish() {
  WSF_REQUIRE(!finished_, "builder already finished");
  finished_ = true;
  g_.final_ = tails_[0];
  g_.build_touch_index();
  g_.validate();
  return std::move(g_);
}

Graph GraphBuilder::finish_super(bool touch_all) {
  WSF_REQUIRE(!finished_, "builder already finished");
  // Fresh final node so the super edges target a dedicated sink; the main
  // thread's previous tail connects to it by a continuation edge.
  step(/*main=*/0);
  finished_ = true;
  g_.final_ = tails_[0];
  for (ThreadId t = 1; t < g_.threads_.size(); ++t) {
    const NodeId last = g_.threads_[t].last_node;
    const Node& n = g_.nodes_[last];
    bool already_touches = false;
    for (std::uint8_t i = 0; i < n.out_count; ++i)
      if (n.out[i].kind == EdgeKind::Touch) already_touches = true;
    if (!already_touches) {
      // This thread's only synchronization point becomes the super final
      // node (a side-effect future, Definition 13).
      g_.add_super_final_edge(last);
    } else if (touch_all && n.out_count < 2) {
      g_.add_super_final_edge(last);
    }
  }
  g_.build_touch_index();
  g_.validate();
  return std::move(g_);
}

}  // namespace wsf::core
