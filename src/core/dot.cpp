#include "core/dot.hpp"

#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>

namespace wsf::core {

std::string to_dot(const Graph& g, const DotOptions& opts) {
  std::ostringstream os;
  os << "digraph computation {\n"
     << "  rankdir=TB;\n"
     << "  node [shape=circle, fontsize=10, width=0.3];\n";
  const std::size_t limit = std::min(g.num_nodes(), opts.max_nodes);

  auto label = [&](NodeId id) {
    std::ostringstream l;
    const std::string& role = g.role_of(id);
    if (!role.empty())
      l << role;
    else
      l << id;
    if (opts.show_blocks && g.block_of(id) != kNoBlock)
      l << "\\nm" << g.block_of(id);
    return l.str();
  };

  if (opts.cluster_threads) {
    for (ThreadId t = 0; t < g.num_threads(); ++t) {
      os << "  subgraph cluster_thread" << t << " {\n"
         << "    style=dotted; label=\"t" << t << "\";\n";
      for (NodeId id = 0; id < limit; ++id) {
        if (g.thread_of(id) != t) continue;
        os << "    n" << id << " [label=\"" << label(id) << "\"";
        if (g.is_touch(id)) os << ", shape=doublecircle";
        if (g.is_fork(id)) os << ", style=filled, fillcolor=lightgray";
        os << "];\n";
      }
      os << "  }\n";
    }
  } else {
    for (NodeId id = 0; id < limit; ++id)
      os << "  n" << id << " [label=\"" << label(id) << "\"];\n";
  }

  for (NodeId id = 0; id < limit; ++id) {
    const Node& n = g.node(id);
    for (std::uint8_t i = 0; i < n.out_count; ++i) {
      if (n.out[i].node >= limit) continue;
      os << "  n" << id << " -> n" << n.out[i].node;
      switch (n.out[i].kind) {
        case EdgeKind::Continuation:
          break;
        case EdgeKind::Future:
          os << " [style=dashed]";
          break;
        case EdgeKind::Touch:
          os << " [style=dotted]";
          break;
      }
      os << ";\n";
    }
  }
  if (limit < g.num_nodes())
    os << "  truncated [shape=box, label=\"… " << (g.num_nodes() - limit)
       << " more nodes\"];\n";
  os << "}\n";
  return os.str();
}

}  // namespace wsf::core
