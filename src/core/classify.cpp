#include "core/classify.hpp"

#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/traversal.hpp"
#include "support/check.hpp"

namespace wsf::core {
namespace {

/// Touches of a thread, with super-final membership split out. A thread
/// "touches the super final node" when its last node carries a super-final
/// edge (Section 6.2).
struct ThreadTouches {
  std::vector<NodeId> regular;  // proper touch nodes
  bool touches_super_final = false;
};

ThreadTouches collect_touches(const Graph& g, ThreadId t) {
  ThreadTouches out;
  const auto touches = g.touches_of_thread(t);
  out.regular.assign(touches.begin(), touches.end());
  const NodeId last = g.thread_info(t).last_node;
  for (NodeId pred : g.super_final_preds()) {
    if (pred == last) out.touches_super_final = true;
  }
  // A regular touch edge may also target the final node (e.g. a fork-join
  // program whose final node joins a future). Those count as regular touches
  // and are already in `regular`.
  return out;
}

std::string describe(const Graph& g, NodeId n) {
  std::ostringstream os;
  os << "node " << n;
  const std::string& role = g.role_of(n);
  if (!role.empty()) os << " ('" << role << "')";
  return os.str();
}

}  // namespace

StructureReport classify(const Graph& g) {
  StructureReport r;
  r.has_super_final = g.has_super_final();
  r.structured = true;
  r.single_touch = true;
  r.local_touch = true;
  r.single_touch_super = true;
  r.local_touch_super = true;
  r.fork_join = true;

  auto violation = [&r](const std::string& what) {
    r.violations.push_back(what);
  };

  for (NodeId fork : g.fork_nodes()) {
    const NodeId left = g.fork_left_child(fork);
    const NodeId right = g.fork_right_child(fork);
    const ThreadId t = g.thread_of(left);
    const ThreadId parent_thread = g.thread_of(fork);
    const ThreadTouches touches = collect_touches(g, t);

    const std::vector<char> desc_of_fork = reachable_from(g, fork);
    const std::vector<char> desc_of_right = reachable_from(g, right);

    // --- Definition 1, condition (1): local parents of t's touches are
    // descendants of the fork.
    bool cond1 = true;
    for (NodeId x : touches.regular) {
      const NodeId lp = g.local_parent_of(x);
      if (!desc_of_fork[lp]) {
        cond1 = false;
        violation("Def1(1): local parent of touch " + describe(g, x) +
                  " is not a descendant of fork " + describe(g, fork));
      }
    }
    // --- Definition 1, condition (2): at least one touch of t descends from
    // the fork's right child.
    std::size_t touches_under_right = 0;
    for (NodeId x : touches.regular)
      if (desc_of_right[x]) ++touches_under_right;
    const bool cond2 = touches_under_right >= 1;
    if (!cond2)
      violation("Def1(2): no touch of the thread spawned at fork " +
                describe(g, fork) +
                " is a descendant of the fork's right child");
    if (!(cond1 && cond2)) r.structured = false;

    // --- Definition 2: exactly one touch, a descendant of the right child.
    const bool d2 = cond1 && touches.regular.size() == 1 &&
                    touches_under_right == 1 && !touches.touches_super_final;
    if (!d2) r.single_touch = false;

    // --- Definition 3: all touches in the parent thread, under right child.
    bool d3 = !touches.regular.empty() && !touches.touches_super_final;
    for (NodeId x : touches.regular) {
      if (g.thread_of(x) != parent_thread || !desc_of_right[x]) d3 = false;
    }
    if (!d3) r.local_touch = false;

    // --- Definition 13: one or two touches; the regular one (if any) under
    // the right child with a structured local parent; the other the super
    // final node.
    bool d13 = cond1;
    const std::size_t total =
        touches.regular.size() + (touches.touches_super_final ? 1 : 0);
    if (total < 1 || total > 2) d13 = false;
    if (touches.regular.size() > 1) d13 = false;
    for (NodeId x : touches.regular)
      if (!desc_of_right[x]) d13 = false;
    if (!d13) r.single_touch_super = false;

    // --- Definition 17: touched only by the super final node and by the
    // parent thread at descendants of the right child.
    bool d17 = total >= 1;
    for (NodeId x : touches.regular)
      if (g.thread_of(x) != parent_thread || !desc_of_right[x]) d17 = false;
    if (!d17) r.local_touch_super = false;
  }

  // --- Fork-join: walk each thread and require LIFO matching between the
  // forks it performs and the touches it executes.
  for (ThreadId t = 0; t < g.num_threads() && r.fork_join; ++t) {
    std::vector<ThreadId> open;  // this thread's not-yet-touched futures
    NodeId cur = g.thread_info(t).first_node;
    while (cur != kInvalidNode) {
      if (g.is_fork(cur)) {
        open.push_back(g.thread_of(g.fork_left_child(cur)));
      } else if (g.is_touch(cur)) {
        const ThreadId ft = g.future_thread_of(cur);
        if (open.empty() || open.back() != ft) {
          r.fork_join = false;
          violation("fork-join: touch " + describe(g, cur) +
                    " does not match the most recent open future");
          break;
        }
        open.pop_back();
      }
      // Advance along the continuation edge.
      const Node& n = g.node(cur);
      NodeId next = kInvalidNode;
      for (std::uint8_t i = 0; i < n.out_count; ++i)
        if (n.out[i].kind == EdgeKind::Continuation) next = n.out[i].node;
      cur = next;
    }
    if (!open.empty()) {
      r.fork_join = false;
      violation("fork-join: thread " + std::to_string(t) +
                " leaves futures untouched");
    }
  }
  // Fork-join is a subset of single-touch + local-touch; guard against the
  // LIFO walk accepting graphs the stricter definitions reject.
  r.fork_join = r.fork_join && r.single_touch && r.local_touch;

  return r;
}

bool is_structured(const Graph& g) { return classify(g).structured; }
bool is_structured_single_touch(const Graph& g) {
  return classify(g).single_touch;
}
bool is_structured_local_touch(const Graph& g) {
  return classify(g).local_touch;
}

}  // namespace wsf::core
