#include "core/deviation.hpp"

#include "support/check.hpp"

#include <cstddef>
#include <utility>
#include <vector>

namespace wsf::core {

DeviationCounter::DeviationCounter(const Graph& g,
                                   const std::vector<NodeId>& seq_order)
    : g_(g) {
  const std::size_t n = g.num_nodes();
  WSF_REQUIRE(seq_order.size() == n,
              "sequential order must cover every node: " << seq_order.size()
                                                         << " vs " << n);
  // seq_pred[v] = node executed immediately before v sequentially.
  seq_pred_.assign(n, kInvalidNode);
  for (std::size_t i = 1; i < seq_order.size(); ++i)
    seq_pred_[seq_order[i]] = seq_order[i - 1];

  // Right children of forks, for the breakdown.
  is_fork_child_.assign(n, 0);
  for (NodeId fork : g.fork_nodes()) {
    is_fork_child_[g.fork_left_child(fork)] = 1;
    is_fork_child_[g.fork_right_child(fork)] = 1;
  }
}

const DeviationReport& DeviationCounter::count(
    const std::vector<std::vector<NodeId>>& proc_orders) {
  const std::size_t n = g_.num_nodes();
  DeviationReport& r = report_;
  r.deviations = 0;
  r.touch_deviations = 0;
  r.fork_child_deviations = 0;
  r.other_deviations = 0;
  r.is_deviation.assign(n, 0);
  std::size_t executed = 0;
  for (const auto& order : proc_orders) {
    for (std::size_t i = 0; i < order.size(); ++i) {
      ++executed;
      const NodeId v = order[i];
      const NodeId actual_prev = i == 0 ? kInvalidNode : order[i - 1];
      const NodeId wanted_prev = seq_pred_[v];
      if (wanted_prev == kInvalidNode) continue;  // first node overall
      if (actual_prev == wanted_prev) continue;
      r.is_deviation[v] = 1;
      ++r.deviations;
      if (g_.is_touch(v))
        ++r.touch_deviations;
      else if (is_fork_child_[v])
        ++r.fork_child_deviations;
      else
        ++r.other_deviations;
    }
  }
  WSF_REQUIRE(executed == n, "parallel execution covered "
                                 << executed << " of " << n << " nodes");
  return r;
}

DeviationReport count_deviations(
    const Graph& g, const std::vector<NodeId>& seq_order,
    const std::vector<std::vector<NodeId>>& proc_orders) {
  DeviationCounter counter(g, seq_order);
  return counter.count(proc_orders);
}

std::vector<DeviationChain> deviation_chains(
    const Graph& g, const DeviationReport& report,
    const std::vector<NodeId>& stolen_nodes) {
  std::vector<DeviationChain> chains;
  chains.reserve(stolen_nodes.size());
  for (NodeId stolen : stolen_nodes) {
    DeviationChain chain;
    chain.stolen = stolen;
    // The stolen node is a fork's right child in parsimonious stealing
    // (only fork children enter deques); find its fork. The left child
    // case (parent-first pushes the future thread head) roots the chain at
    // the same fork.
    const Node& sn = g.node(stolen);
    NodeId fork = kInvalidNode;
    if (sn.in_count == 1 && (sn.in[0].kind == EdgeKind::Continuation ||
                             sn.in[0].kind == EdgeKind::Future)) {
      const NodeId pred = sn.in[0].node;
      if (g.is_fork(pred)) fork = pred;
    }
    if (fork == kInvalidNode) {
      chains.push_back(std::move(chain));
      continue;
    }
    // Follow: fork → its future thread's touch; if that touch deviated and
    // lies inside another (forked) future thread, continue with that
    // thread's touch.
    ThreadId t = g.thread_of(g.fork_left_child(fork));
    std::size_t guard = 0;
    while (guard++ <= g.num_nodes()) {
      const auto touches = g.touches_of_thread(t);
      if (touches.size() != 1) break;  // chains are defined for single-touch
      const NodeId x = touches.front();
      if (!report.is_deviation[x]) break;
      chain.touches.push_back(x);
      const ThreadId next = g.thread_of(x);
      if (next == 0 || next == t) break;  // reached the main thread
      t = next;
    }
    chains.push_back(std::move(chain));
  }
  return chains;
}

}  // namespace wsf::core
