// Incremental, thread-centric construction of computation DAGs.
//
// The builder mirrors how a future-parallel program unfolds: each thread has
// a cursor (its current last node); `step` extends a thread by a continuation
// edge, `fork` spawns a future thread, `touch` consumes a future. The builder
// maintains the paper's structural conventions during construction and
// Graph::validate() re-checks them wholesale at finish().
//
// Example — the structured single-touch DAG of Figure 4 (simplified):
//
//   GraphBuilder b;
//   auto main = b.main_thread();
//   auto f1 = b.fork(main);              // u1 spawns future thread
//   b.step(f1.future_thread);            //   future body
//   b.step(main);                        // parent continues (right child)
//   b.touch(main, f1.future_thread);     // v1 touches the future
//   Graph g = b.finish();
#pragma once

#include <string>
#include <vector>

#include "core/graph.hpp"
#include "core/ids.hpp"

namespace wsf::core {

/// Builds a Graph under the model conventions of Section 2.1.
class GraphBuilder {
 public:
  GraphBuilder();

  /// The main thread; its first node (the root) exists from construction.
  ThreadId main_thread() const { return 0; }

  /// The current last node of a thread (its cursor).
  NodeId tail(ThreadId t) const;

  /// Appends a plain node to thread t via a continuation edge and returns it.
  /// `block` is the memory block the node accesses (kNoBlock for none);
  /// `role` optionally tags the node for scripted schedules.
  NodeId step(ThreadId t, BlockId block = kNoBlock,
              const std::string& role = "");

  /// Appends a chain of `count` nodes accessing `blocks[i % blocks.size()]`;
  /// returns the last node. Used for the Y_i / Z_i block-scan chains in the
  /// paper's lower-bound constructions.
  NodeId chain(ThreadId t, const std::vector<BlockId>& blocks);

  struct Fork {
    /// The fork node appended to the parent thread.
    NodeId fork_node = kInvalidNode;
    /// The newly spawned (still empty) future thread. Its first node is
    /// created by the first step()/fork() on it and is the fork's left child.
    ThreadId future_thread = kInvalidThread;
    /// First node of the future thread (the fork's left child), created
    /// eagerly so the future edge exists immediately.
    NodeId future_first = kInvalidNode;
  };

  /// Appends a fork node to thread t and spawns a future thread whose first
  /// node (left child) is created immediately. The *right* child is created
  /// by the next step()/fork()/touch... on t — except touch: the paper's
  /// convention forbids a fork child from being a touch, and the builder
  /// rejects it.
  Fork fork(ThreadId t, BlockId fork_block = kNoBlock,
            const std::string& fork_role = "",
            BlockId future_first_block = kNoBlock,
            const std::string& future_first_role = "");

  /// Appends a touch node to thread `consumer`: its local parent is the
  /// consumer's tail (continuation edge) and its future parent is the
  /// *current tail* of `producer` (touch edge). The producer thread may
  /// continue afterwards (multi-future producers, Definition 3) or stop
  /// there (single-touch, Definition 2).
  NodeId touch(ThreadId consumer, ThreadId producer,
               BlockId block = kNoBlock, const std::string& role = "");

  /// Like touch(), but the future parent is an explicit node (which must
  /// still have a free out-edge slot). Used to build unstructured DAGs such
  /// as Figure 3 where a touch edge comes from deep inside another thread.
  NodeId touch_node(ThreadId consumer, NodeId future_parent,
                    BlockId block = kNoBlock, const std::string& role = "");

  /// Tags the current tail of a thread with a role.
  void set_role(ThreadId t, const std::string& role);

  /// Finalizes: the main thread's tail becomes the final node. Every other
  /// thread must already end in a touch edge. Validates and returns the
  /// graph; the builder must not be used afterwards.
  Graph finish();

  /// Finalizes with a super final node (Section 6.2): first appends a fresh
  /// final node to the main thread, then adds a touch edge from the last
  /// node of every thread that does not already end in a touch edge (their
  /// only touch becomes the super final node; side-effect futures). When
  /// `touch_all` is true, threads already touched elsewhere also get a
  /// super-final edge if their last node has a free out-slot (Definition 13
  /// allows at most two touches: one regular + the super final node).
  Graph finish_super(bool touch_all = false);

 private:
  NodeId append(ThreadId t, BlockId block, EdgeKind in_kind, NodeId from);
  void require_open(ThreadId t) const;

  Graph g_;
  bool finished_ = false;
  /// Per-thread cursor; kInvalidNode once... threads always have ≥1 node.
  std::vector<NodeId> tails_;
};

}  // namespace wsf::core
