// Computation-DAG representation (Section 2.1 of the paper).
//
// A future-parallel computation is a DAG whose nodes are unit tasks and whose
// edges are one of three kinds:
//   * continuation edges — from one node to the next in the same thread,
//   * future edges       — from a fork node to the first node of the thread
//                          it spawns,
//   * touch edges        — from a node of the future thread (the "future
//                          parent") to the touch node in another thread.
//
// Model conventions enforced here (and checked by Graph::validate):
//   * every node has in/out degree 1 or 2, except the root (in 0), the final
//     node (out 0, and possibly in > 2 when it is a "super final node",
//     Section 6.2),
//   * a fork's two children both have in-degree 1 and are not touches,
//   * a touch has exactly two predecessors: its local parent (continuation
//     edge) and its future parent (touch edge),
//   * every non-main thread's last node has exactly one outgoing edge, a
//     touch edge (the thread's synchronization point, Section 4).
//
// Graphs are normally produced through GraphBuilder (builder.hpp), which
// maintains these invariants during construction.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/ids.hpp"

namespace wsf::core {

enum class EdgeKind : std::uint8_t {
  Continuation = 0,
  Future = 1,
  Touch = 2,
};

const char* to_string(EdgeKind k);

/// A directed edge endpoint stored inline in a node.
struct HalfEdge {
  NodeId node = kInvalidNode;
  EdgeKind kind = EdgeKind::Continuation;
};

/// One task in the computation DAG. Nodes are POD-ish and stored contiguously
/// in the Graph; all structural queries go through Graph methods.
struct Node {
  /// Thread (maximal continuation chain) this node belongs to.
  ThreadId thread = kInvalidThread;
  /// Memory block accessed when this node executes (kNoBlock for none).
  BlockId block = kNoBlock;
  std::array<HalfEdge, 2> out{};
  std::array<HalfEdge, 2> in{};
  std::uint8_t out_count = 0;
  std::uint8_t in_count = 0;
};

/// Bookkeeping for one thread of the computation.
struct ThreadInfo {
  NodeId first_node = kInvalidNode;
  NodeId last_node = kInvalidNode;
  /// Thread that spawned this one (kInvalidThread for the main thread).
  ThreadId parent = kInvalidThread;
  /// The fork node at which this thread was spawned (kInvalidNode for main).
  NodeId fork_node = kInvalidNode;
  /// Number of nodes in the thread.
  std::uint32_t length = 0;
};

/// Immutable-after-construction computation DAG with the paper's node/edge
/// vocabulary. Construction happens through GraphBuilder.
class Graph {
 public:
  // ---- sizes ----
  std::size_t num_nodes() const { return nodes_.size(); }
  std::size_t num_threads() const { return threads_.size(); }
  /// Number of directed edges (each out half-edge once, super-final edges
  /// included). Maintained incrementally — O(1).
  std::size_t num_edges() const { return edge_count_; }

  // ---- node access ----
  const Node& node(NodeId id) const { return nodes_[id]; }
  NodeId root() const { return 0; }
  NodeId final_node() const { return final_; }

  ThreadId thread_of(NodeId id) const { return nodes_[id].thread; }
  BlockId block_of(NodeId id) const { return nodes_[id].block; }

  /// Total in-degree including super-final extra predecessors.
  std::size_t in_degree(NodeId id) const;
  std::size_t out_degree(NodeId id) const { return nodes_[id].out_count; }

  // ---- node kind predicates (paper terminology) ----
  /// A fork has two out-edges: a continuation edge (to the parent thread's
  /// next node, its "right child") and a future edge (to the first node of
  /// the spawned thread, its "left child").
  bool is_fork(NodeId id) const;
  /// A touch has an incoming touch edge. (The paper does not distinguish
  /// touch nodes from join nodes; neither do we.)
  bool is_touch(NodeId id) const;
  /// A future parent is a node with an outgoing touch edge.
  bool is_future_parent(NodeId id) const;

  /// For a fork: the first node of the spawned future thread.
  NodeId fork_left_child(NodeId fork) const;
  /// For a fork: the continuation of the parent thread.
  NodeId fork_right_child(NodeId fork) const;
  /// For a touch: the predecessor reached by the incoming touch edge.
  NodeId future_parent_of(NodeId touch) const;
  /// For a touch: the predecessor in the same thread (continuation edge).
  NodeId local_parent_of(NodeId touch) const;
  /// For a touch: the thread that computes the touched future, i.e. the
  /// thread of its future parent.
  ThreadId future_thread_of(NodeId touch) const;
  /// For a touch: the fork at which its future thread was spawned
  /// ("corresponding fork"). kInvalidNode if the future thread is main.
  NodeId corresponding_fork_of(NodeId touch) const;

  // ---- threads ----
  const ThreadInfo& thread_info(ThreadId t) const { return threads_[t]; }
  /// All touch nodes whose future parent lies in thread t ("touches of t"),
  /// in construction order. Backed by a CSR index built when the builder
  /// finishes the graph — no per-call allocation or scan.
  std::span<const NodeId> touches_of_thread(ThreadId t) const;

  // ---- enumeration ----
  /// All touch nodes in construction order (excludes the final node's
  /// super-final in-edges; see num_super_final_edges).
  const std::vector<NodeId>& touch_nodes() const { return touch_nodes_; }
  /// All fork nodes in construction order.
  const std::vector<NodeId>& fork_nodes() const { return fork_nodes_; }

  // ---- super final node (Section 6.2) ----
  bool has_super_final() const { return !super_final_preds_.empty(); }
  /// Extra predecessors of the final node beyond its two slots (each is the
  /// last node of some thread, connected by a touch edge).
  const std::vector<NodeId>& super_final_preds() const {
    return super_final_preds_;
  }

  // ---- roles ----
  /// Generators tag nodes with string roles ("w", "u[3]", ...) so schedule
  /// controllers can script the executions in the paper's proofs by role.
  void set_role(NodeId id, const std::string& role);
  /// Node carrying the role, or kInvalidNode.
  NodeId node_by_role(const std::string& role) const;
  /// Role of a node, or empty string.
  const std::string& role_of(NodeId id) const;
  /// All role assignments (role → node), for controllers that organize
  /// scripted schedules around role families.
  const std::unordered_map<std::string, NodeId>& all_roles() const {
    return role_to_node_;
  }

  /// Structural validation of all the model conventions listed at the top of
  /// this header. Throws wsf::CheckError with a description on violation.
  void validate() const;

 private:
  friend class GraphBuilder;
  friend Graph relabeled_graph(const Graph& g,
                               const std::vector<NodeId>& new_id_of);

  NodeId add_node(ThreadId thread, BlockId block);
  void add_edge(NodeId from, NodeId to, EdgeKind kind);
  /// Registers an extra predecessor of the final node (super-final edge).
  void add_super_final_edge(NodeId from);
  /// Builds the per-thread touch CSR. Called once the structure is final
  /// (builder finish / relabel); touches_of_thread requires it.
  void build_touch_index();

  std::vector<Node> nodes_;
  std::vector<ThreadInfo> threads_;
  std::vector<NodeId> touch_nodes_;
  std::vector<NodeId> fork_nodes_;
  std::vector<NodeId> super_final_preds_;
  NodeId final_ = kInvalidNode;
  std::size_t edge_count_ = 0;

  // CSR over touches_of_thread: thread t's touches are
  // thread_touches_[thread_touch_off_[t] .. thread_touch_off_[t+1]).
  std::vector<std::uint32_t> thread_touch_off_;
  std::vector<NodeId> thread_touches_;

  std::unordered_map<std::string, NodeId> role_to_node_;
  std::unordered_map<NodeId, std::string> node_to_role_;
};

/// A structurally identical copy of `g` whose node ids are permuted:
/// old node v becomes new node new_id_of[v]. The permutation must keep the
/// root at id 0 (Graph::root() is id 0 by convention). Threads keep their
/// ids; every NodeId-bearing table (edges, thread bounds, touch/fork lists,
/// roles, super-final predecessors) is remapped, and enumeration lists are
/// re-sorted into the new construction (id) order. The relabeled graph
/// passes validate() and represents the same computation — only the memory
/// layout order of nodes changes, which is exactly the cache variable the
/// layout experiments sweep.
Graph relabeled_graph(const Graph& g, const std::vector<NodeId>& new_id_of);

}  // namespace wsf::core
