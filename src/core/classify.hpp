// Structure classification of computation DAGs — the paper's Definitions
// 1, 2, 3 (Section 4) and 13, 17 (Section 6.2), plus fork-join detection.
//
// The classifier is the static half of the paper's contribution: it decides
// whether a computation is disciplined enough for the locality guarantees to
// apply (Theorems 8, 12, 16, 18). It is evaluated on test- and example-scale
// graphs; generators record their intended class and tests cross-check.
#pragma once

#include <string>
#include <vector>

#include "core/graph.hpp"

namespace wsf::core {

/// Full classification result with human-readable violation notes.
struct StructureReport {
  /// Definition 1: for the future thread t of any fork v, local parents of
  /// t's touches are descendants of v, and at least one touch of t is a
  /// descendant of v's right child.
  bool structured = false;
  /// Definition 2: structured and each future thread is touched exactly
  /// once, at a descendant of its fork's right child.
  bool single_touch = false;
  /// Definition 3: each future thread is touched only by its parent thread,
  /// at descendants of its fork's right child.
  bool local_touch = false;
  /// Definition 13: structured single-touch with a super final node — each
  /// future thread has one or two touches: a descendant of its fork's right
  /// child and/or the super final node.
  bool single_touch_super = false;
  /// Definition 17: local-touch where the super final node may also touch.
  bool local_touch_super = false;
  /// Fork-join (Cilk-style) computation: single-touch + local-touch with
  /// properly nested (LIFO) touch order per thread. A strict subset of
  /// structured single-touch computations (Section 4).
  bool fork_join = false;
  /// Whether the graph carries super-final edges at all.
  bool has_super_final = false;
  /// One line per violated condition, for diagnostics.
  std::vector<std::string> violations;
};

/// Classifies a validated graph against all the paper's structure
/// definitions. Cost is O(forks × edges); intended for graphs up to a few
/// hundred thousand nodes.
StructureReport classify(const Graph& g);

/// Convenience predicates built on classify().
bool is_structured(const Graph& g);
bool is_structured_single_touch(const Graph& g);
bool is_structured_local_touch(const Graph& g);

}  // namespace wsf::core
