// Deviation (drifted-node) accounting — Section 4 of the paper, following
// Acar, Blelloch & Blumofe (SPAA'00) and Spoonhower et al. (SPAA'09).
//
// Consider the sequential execution, and let v1 be the node executed
// immediately before v2. A *deviation* occurs in a parallel execution when a
// processor executes v2 but not immediately after executing v1 itself.
// Additional cache misses of the parallel execution are bounded by
// C × deviations (Acar et al.), which is why every bench reports both.
#pragma once

#include <cstddef>
#include <vector>

#include "core/graph.hpp"
#include "core/ids.hpp"

namespace wsf::core {

/// Result of comparing a parallel execution against the sequential order.
struct DeviationReport {
  std::size_t deviations = 0;
  /// Flag per NodeId: 1 if that node was a deviation.
  std::vector<char> is_deviation;
  /// Deviations that are touch nodes vs fork right-children vs other — the
  /// paper proves only the first two kinds can occur (Section 5.1); tests
  /// assert `other == 0` on structured computations.
  std::size_t touch_deviations = 0;
  std::size_t fork_child_deviations = 0;
  std::size_t other_deviations = 0;
};

/// Counts deviations of a parallel execution.
///
/// `seq_order`  — node execution order of the sequential execution (all
///                nodes exactly once).
/// `proc_orders` — for each processor, the sequence of nodes it executed, in
///                execution order; every node appears exactly once across
///                all processors.
DeviationReport count_deviations(
    const Graph& g, const std::vector<NodeId>& seq_order,
    const std::vector<std::vector<NodeId>>& proc_orders);

/// Replicate-loop arena for deviation counting: the sequential-predecessor
/// and fork-child lookup tables are derived once per (graph, seq_order) and
/// the report's flag vector is recycled, so counting a batch of replicates
/// costs no per-replicate allocation or O(n) table rebuilding — the
/// deviation-side analogue of Simulator::reset. count() results are
/// identical to count_deviations() by construction.
class DeviationCounter {
 public:
  DeviationCounter(const Graph& g, const std::vector<NodeId>& seq_order);

  /// Counts one execution's deviations into the reused report. The returned
  /// reference is valid until the next count() call.
  const DeviationReport& count(
      const std::vector<std::vector<NodeId>>& proc_orders);

 private:
  const Graph& g_;
  std::vector<NodeId> seq_pred_;
  std::vector<char> is_fork_child_;
  DeviationReport report_;
};

/// A deviation chain (proof of Theorem 8): starting from a stolen fork
/// right-child u, the touch x₁ of the fork's future thread may deviate;
/// if x₁ lies in a future thread t₂, t₂'s own touch x₂ may deviate next,
/// and so on — a directed path of at most T∞ touches per steal.
struct DeviationChain {
  /// The stolen right child that roots the chain.
  NodeId stolen = kInvalidNode;
  /// The deviated touches x₁, x₂, … in chain order (possibly empty when
  /// the steal caused no touch deviation).
  std::vector<NodeId> touches;
};

/// Extracts the deviation chain rooted at each stolen node (single-touch
/// computations only: each future thread has one touch, so chains are
/// unique). A chain is followed while its touches are flagged as deviations
/// in `report`.
std::vector<DeviationChain> deviation_chains(
    const Graph& g, const DeviationReport& report,
    const std::vector<NodeId>& stolen_nodes);

}  // namespace wsf::core
