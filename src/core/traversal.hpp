// Graph traversals and global DAG measures (work, span, reachability).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/graph.hpp"
#include "core/ids.hpp"
#include "core/layout.hpp"

namespace wsf::core {

/// Kahn topological order over all nodes. The returned order respects every
/// edge kind (continuation, future, touch, super-final). If the graph has a
/// cycle, the order covers fewer nodes than num_nodes(). The Graph overload
/// builds a transient layout view; callers holding a GraphLayout already
/// should pass it directly.
std::vector<NodeId> topological_order(const GraphLayout& layout);
std::vector<NodeId> topological_order(const Graph& g);

/// For every node, the length (in nodes) of the longest directed path from
/// the root ending at that node; dist[root] == 1.
std::vector<std::uint32_t> longest_path_from_root(const GraphLayout& layout);
std::vector<std::uint32_t> longest_path_from_root(const Graph& g);

/// The computation span T_inf: number of nodes on a critical path. The paper
/// measures path "length"; with unit-time nodes, counting nodes equals
/// execution time of the critical path, which is the quantity the bounds use.
std::uint32_t span(const GraphLayout& layout);
std::uint32_t span(const Graph& g);

/// Work T_1 = total number of nodes (each node is one unit task).
inline std::size_t work(const Graph& g) { return g.num_nodes(); }

/// Set of nodes reachable from `from` by directed edges, including `from`
/// itself, as a dense flag vector indexed by NodeId.
std::vector<char> reachable_from(const Graph& g, NodeId from);

/// True iff `descendant` is reachable from `ancestor` (a node is its own
/// descendant for ancestor == descendant; the paper's "descendant of v"
/// means strictly after v, so callers pass the child they mean).
bool is_descendant(const Graph& g, NodeId ancestor, NodeId descendant);

/// Aggregate measures used throughout the benches and tests.
struct DagStats {
  std::size_t nodes = 0;
  std::size_t edges = 0;
  std::size_t threads = 0;
  /// Number of touch nodes t (super-final in-edges are not counted as
  /// touches; the super final node is "not a real touch", Section 4).
  std::size_t touches = 0;
  std::size_t forks = 0;
  std::uint32_t span = 0;
  /// Number of distinct memory blocks referenced by nodes.
  std::size_t distinct_blocks = 0;
};

DagStats compute_stats(const GraphLayout& layout);
DagStats compute_stats(const Graph& g);

}  // namespace wsf::core
