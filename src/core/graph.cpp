#include "core/graph.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/traversal.hpp"
#include "support/check.hpp"

namespace wsf::core {

const char* to_string(EdgeKind k) {
  switch (k) {
    case EdgeKind::Continuation:
      return "continuation";
    case EdgeKind::Future:
      return "future";
    case EdgeKind::Touch:
      return "touch";
  }
  return "?";
}

std::size_t Graph::in_degree(NodeId id) const {
  std::size_t d = nodes_[id].in_count;
  if (id == final_) d += super_final_preds_.size();
  return d;
}

bool Graph::is_fork(NodeId id) const {
  const Node& n = nodes_[id];
  if (n.out_count != 2) return false;
  return (n.out[0].kind == EdgeKind::Future &&
          n.out[1].kind == EdgeKind::Continuation) ||
         (n.out[0].kind == EdgeKind::Continuation &&
          n.out[1].kind == EdgeKind::Future);
}

bool Graph::is_touch(NodeId id) const {
  const Node& n = nodes_[id];
  for (std::uint8_t i = 0; i < n.in_count; ++i)
    if (n.in[i].kind == EdgeKind::Touch) return true;
  return false;
}

bool Graph::is_future_parent(NodeId id) const {
  const Node& n = nodes_[id];
  for (std::uint8_t i = 0; i < n.out_count; ++i)
    if (n.out[i].kind == EdgeKind::Touch) return true;
  return false;
}

NodeId Graph::fork_left_child(NodeId fork) const {
  const Node& n = nodes_[fork];
  WSF_REQUIRE(is_fork(fork), "node " << fork << " is not a fork");
  for (std::uint8_t i = 0; i < n.out_count; ++i)
    if (n.out[i].kind == EdgeKind::Future) return n.out[i].node;
  return kInvalidNode;
}

NodeId Graph::fork_right_child(NodeId fork) const {
  const Node& n = nodes_[fork];
  WSF_REQUIRE(is_fork(fork), "node " << fork << " is not a fork");
  for (std::uint8_t i = 0; i < n.out_count; ++i)
    if (n.out[i].kind == EdgeKind::Continuation) return n.out[i].node;
  return kInvalidNode;
}

NodeId Graph::future_parent_of(NodeId touch) const {
  const Node& n = nodes_[touch];
  for (std::uint8_t i = 0; i < n.in_count; ++i)
    if (n.in[i].kind == EdgeKind::Touch) return n.in[i].node;
  WSF_REQUIRE(false, "node " << touch << " is not a touch");
  return kInvalidNode;
}

NodeId Graph::local_parent_of(NodeId touch) const {
  const Node& n = nodes_[touch];
  bool has_touch_edge = false;
  NodeId local = kInvalidNode;
  for (std::uint8_t i = 0; i < n.in_count; ++i) {
    if (n.in[i].kind == EdgeKind::Touch)
      has_touch_edge = true;
    else
      local = n.in[i].node;
  }
  WSF_REQUIRE(has_touch_edge, "node " << touch << " is not a touch");
  return local;
}

ThreadId Graph::future_thread_of(NodeId touch) const {
  return nodes_[future_parent_of(touch)].thread;
}

NodeId Graph::corresponding_fork_of(NodeId touch) const {
  return threads_[future_thread_of(touch)].fork_node;
}

std::span<const NodeId> Graph::touches_of_thread(ThreadId t) const {
  WSF_DCHECK(thread_touch_off_.size() == threads_.size() + 1,
             "touch index not built (graph not finished?)");
  return std::span<const NodeId>(thread_touches_)
      .subspan(thread_touch_off_[t],
               thread_touch_off_[t + 1] - thread_touch_off_[t]);
}

void Graph::build_touch_index() {
  // Counting sort of touch_nodes_ by future thread, preserving the relative
  // (construction) order within each thread — the order the old per-call
  // scan produced.
  thread_touch_off_.assign(threads_.size() + 1, 0);
  for (NodeId touch : touch_nodes_)
    ++thread_touch_off_[future_thread_of(touch) + 1];
  for (std::size_t t = 1; t < thread_touch_off_.size(); ++t)
    thread_touch_off_[t] += thread_touch_off_[t - 1];
  thread_touches_.assign(touch_nodes_.size(), kInvalidNode);
  std::vector<std::uint32_t> cursor(thread_touch_off_.begin(),
                                    thread_touch_off_.end() - 1);
  for (NodeId touch : touch_nodes_)
    thread_touches_[cursor[future_thread_of(touch)]++] = touch;
}

void Graph::set_role(NodeId id, const std::string& role) {
  WSF_REQUIRE(id < nodes_.size(), "role on unknown node " << id);
  WSF_REQUIRE(!role_to_node_.count(role), "duplicate role '" << role << "'");
  role_to_node_[role] = id;
  node_to_role_[id] = role;
}

NodeId Graph::node_by_role(const std::string& role) const {
  auto it = role_to_node_.find(role);
  return it == role_to_node_.end() ? kInvalidNode : it->second;
}

const std::string& Graph::role_of(NodeId id) const {
  static const std::string kEmpty;
  auto it = node_to_role_.find(id);
  return it == node_to_role_.end() ? kEmpty : it->second;
}

NodeId Graph::add_node(ThreadId thread, BlockId block) {
  WSF_CHECK(nodes_.size() < kInvalidNode, "graph too large");
  Node n;
  n.thread = thread;
  n.block = block;
  nodes_.push_back(n);
  return static_cast<NodeId>(nodes_.size() - 1);
}

void Graph::add_edge(NodeId from, NodeId to, EdgeKind kind) {
  Node& f = nodes_[from];
  Node& t = nodes_[to];
  WSF_CHECK(f.out_count < 2,
            "node " << from << " already has two out-edges");
  WSF_CHECK(t.in_count < 2, "node " << to << " already has two in-edges");
  f.out[f.out_count++] = HalfEdge{to, kind};
  t.in[t.in_count++] = HalfEdge{from, kind};
  ++edge_count_;
  if (kind == EdgeKind::Touch) {
    // A node becomes a touch when its touch in-edge is added; record it once.
    touch_nodes_.push_back(to);
  }
}

void Graph::add_super_final_edge(NodeId from) {
  WSF_CHECK(final_ != kInvalidNode, "finalize the graph before super edges");
  Node& f = nodes_[from];
  WSF_CHECK(f.out_count < 2,
            "node " << from << " already has two out-edges");
  f.out[f.out_count++] = HalfEdge{final_, EdgeKind::Touch};
  super_final_preds_.push_back(from);
  ++edge_count_;
}

void Graph::validate() const {
  WSF_CHECK(!nodes_.empty(), "empty graph");
  WSF_CHECK(final_ != kInvalidNode, "graph was never finalized");

  // Degree conventions.
  for (NodeId id = 0; id < static_cast<NodeId>(nodes_.size()); ++id) {
    const Node& n = nodes_[id];
    if (id == root()) {
      WSF_CHECK(in_degree(id) == 0, "root must have in-degree 0");
    } else {
      WSF_CHECK(in_degree(id) >= 1 && (in_degree(id) <= 2 || id == final_),
                "node " << id << " has in-degree " << in_degree(id));
    }
    if (id == final_) {
      WSF_CHECK(n.out_count == 0, "final node must have out-degree 0");
    } else {
      WSF_CHECK(n.out_count >= 1 && n.out_count <= 2,
                "node " << id << " has out-degree " << int(n.out_count));
    }
    // No node mixes two out-edges of the same kind, and the only legal
    // out-degree-2 combinations are fork (continuation+future) and future
    // parent (continuation+touch).
    if (n.out_count == 2) {
      // Two touch out-edges are legal only when one of them is a
      // super-final edge (Definition 13: a regular touch plus the super
      // final node).
      if (n.out[0].kind == n.out[1].kind) {
        WSF_CHECK(n.out[0].kind == EdgeKind::Touch &&
                      (n.out[0].node == final_ || n.out[1].node == final_) &&
                      has_super_final(),
                  "node " << id << " has two out-edges of the same kind");
      } else {
        const bool fork = is_fork(id);
        const bool fparent =
            (n.out[0].kind == EdgeKind::Continuation ||
             n.out[1].kind == EdgeKind::Continuation) &&
            (n.out[0].kind == EdgeKind::Touch ||
             n.out[1].kind == EdgeKind::Touch);
        WSF_CHECK(fork || fparent,
                  "node " << id << " has an illegal out-edge combination");
      }
    }
    // Touches have exactly one continuation and one touch in-edge.
    if (is_touch(id) && id != final_) {
      WSF_CHECK(n.in_count == 2, "touch " << id << " must have in-degree 2");
      const bool ok =
          (n.in[0].kind == EdgeKind::Touch &&
           n.in[1].kind == EdgeKind::Continuation) ||
          (n.in[1].kind == EdgeKind::Touch &&
           n.in[0].kind == EdgeKind::Continuation);
      WSF_CHECK(ok, "touch " << id
                             << " needs one continuation and one touch edge");
    }
  }

  // Fork children: in-degree 1 and not touches (paper convention).
  for (NodeId fork : fork_nodes_) {
    const NodeId l = fork_left_child(fork);
    const NodeId r = fork_right_child(fork);
    WSF_CHECK(in_degree(l) == 1 && !is_touch(l),
              "left child of fork " << fork << " violates the convention");
    WSF_CHECK(in_degree(r) == 1 && !is_touch(r),
              "right child of fork " << fork << " violates the convention");
  }

  // Thread structure: every non-main thread starts at a future edge and ends
  // with a single outgoing touch edge.
  for (ThreadId t = 0; t < static_cast<ThreadId>(threads_.size()); ++t) {
    const ThreadInfo& ti = threads_[t];
    WSF_CHECK(ti.first_node != kInvalidNode, "thread " << t << " is empty");
    if (t == 0) {
      WSF_CHECK(ti.first_node == root(), "main thread must start at root");
      WSF_CHECK(ti.last_node == final_, "main thread must end at final node");
    } else {
      const Node& first = nodes_[ti.first_node];
      WSF_CHECK(first.in_count == 1 && first.in[0].kind == EdgeKind::Future,
                "thread " << t << " must start with a future edge");
      const Node& last = nodes_[ti.last_node];
      WSF_CHECK(last.out_count >= 1, "thread " << t << " has a dangling tail");
      for (std::uint8_t i = 0; i < last.out_count; ++i)
        WSF_CHECK(last.out[i].kind == EdgeKind::Touch,
                  "thread " << t
                            << "'s last node must carry only touch edges");
    }
  }

  // Acyclicity + full reachability: the topological order covers all nodes
  // exactly when the in-degree bookkeeping is consistent and there is no
  // cycle; every node must reach the final node (unique sink).
  const std::vector<NodeId> topo = topological_order(*this);
  WSF_CHECK(topo.size() == nodes_.size(),
            "graph has a cycle or disconnected bookkeeping: topo covers "
                << topo.size() << " of " << nodes_.size() << " nodes");
  std::vector<char> reaches_final(nodes_.size(), 0);
  reaches_final[final_] = 1;
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const Node& n = nodes_[*it];
    for (std::uint8_t i = 0; i < n.out_count; ++i)
      if (reaches_final[n.out[i].node]) reaches_final[*it] = 1;
  }
  for (NodeId id = 0; id < static_cast<NodeId>(nodes_.size()); ++id)
    WSF_CHECK(reaches_final[id],
              "node " << id << " cannot reach the final node");
}

}  // namespace wsf::core
