// Fork scheduling policy (Section 3 / Section 5 of the paper).
//
// After executing a fork, a parsimonious work-stealing processor executes one
// child and pushes the other onto the bottom of its deque. The paper's second
// contribution is that for structured computations the *future thread first*
// choice gives provably good cache locality (Theorem 8) while *parent thread
// first* can be as bad as unstructured futures (Theorem 10).
#pragma once

#include <string>

namespace wsf::core {

enum class ForkPolicy {
  /// Execute the spawned future thread (the fork's left child); push the
  /// parent continuation. This is "work-first" in Cilk terminology and the
  /// policy the paper recommends.
  FutureFirst,
  /// Continue the parent thread (the fork's right child); push the future
  /// task. This is "help-first" and the policy Theorem 10 shows can be bad.
  ParentFirst,
};

inline const char* to_string(ForkPolicy p) {
  return p == ForkPolicy::FutureFirst ? "future-first" : "parent-first";
}

inline ForkPolicy fork_policy_from_string(const std::string& s) {
  if (s == "future-first" || s == "future" || s == "work-first")
    return ForkPolicy::FutureFirst;
  return ForkPolicy::ParentFirst;
}

/// How much a thief claims per successful steal operation.
enum class StealPolicy {
  /// Claim exactly one task from the victim's top (the classic ABP /
  /// parsimonious discipline the paper analyzes).
  One,
  /// Claim up to half the victim's observed items in one operation
  /// (steal-half amortization: thieves visit the victim's top line once
  /// per batch instead of once per task).
  Half,
};

inline const char* to_string(StealPolicy p) {
  return p == StealPolicy::One ? "one" : "half";
}

StealPolicy steal_policy_from_string(const std::string& s);

/// How a thief picks its victim.
enum class VictimPolicy {
  /// Uniformly random among the other workers (the paper's model).
  Uniform,
  /// Retry the last worker a steal succeeded from before falling back to
  /// uniform choice (affinity: a recently productive victim likely still
  /// has work, and its lines may still be warm nearby).
  LastVictim,
  /// Scan neighbors by index distance (id+1, id+2, … wrapping) and take
  /// the first non-empty deque — a stand-in for topology-aware locality.
  Nearest,
};

inline const char* to_string(VictimPolicy p) {
  switch (p) {
    case VictimPolicy::Uniform: return "uniform";
    case VictimPolicy::LastVictim: return "last-victim";
    case VictimPolicy::Nearest: return "nearest";
  }
  return "uniform";
}

VictimPolicy victim_policy_from_string(const std::string& s);

}  // namespace wsf::core
