// Fork scheduling policy (Section 3 / Section 5 of the paper).
//
// After executing a fork, a parsimonious work-stealing processor executes one
// child and pushes the other onto the bottom of its deque. The paper's second
// contribution is that for structured computations the *future thread first*
// choice gives provably good cache locality (Theorem 8) while *parent thread
// first* can be as bad as unstructured futures (Theorem 10).
#pragma once

#include <string>

namespace wsf::core {

enum class ForkPolicy {
  /// Execute the spawned future thread (the fork's left child); push the
  /// parent continuation. This is "work-first" in Cilk terminology and the
  /// policy the paper recommends.
  FutureFirst,
  /// Continue the parent thread (the fork's right child); push the future
  /// task. This is "help-first" and the policy Theorem 10 shows can be bad.
  ParentFirst,
};

inline const char* to_string(ForkPolicy p) {
  return p == ForkPolicy::FutureFirst ? "future-first" : "parent-first";
}

inline ForkPolicy fork_policy_from_string(const std::string& s) {
  if (s == "future-first" || s == "future" || s == "work-first")
    return ForkPolicy::FutureFirst;
  return ForkPolicy::ParentFirst;
}

}  // namespace wsf::core
