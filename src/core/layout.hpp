// Memory-layout views of the computation DAG.
//
// Two pieces, both motivated by the paper's cache-locality argument:
//
//  * GraphLayout — a structure-of-arrays / CSR snapshot of a Graph for the
//    hot execution loops. The AoS Node records interleave thread, block,
//    and both endpoint arrays in one 40-byte struct, so a scheduler loop
//    that only needs "the successors of v" or "is v a touch" drags the
//    whole record through the cache. The layout view splits those accesses
//    into flat parallel arrays (thread_of / block_of / flags / CSR
//    successor + predecessor index) and precomputes every per-node lookup
//    the simulator, sequential executor, and runtime replayer perform per
//    executed node (corresponding fork, future parent, fork children),
//    replacing branch-and-scan Graph methods and per-call vector
//    allocations with O(1) indexed loads.
//
//  * NodeOrder — a permutation of node ids, making the *physical order* of
//    nodes in memory an experimental variable. The paper holds layout
//    fixed; with relabeled_graph any graph can be laid out in construction
//    order, DFS order, the 1-processor baseline's execution order, or a
//    seeded random order, and results map back to original ids through the
//    permutation. Scheduling measures (deviations, simulated misses) are
//    invariant under relabeling — asserted by tests — while real-machine
//    effects (wall time, hardware misses) may not be: that gap is exactly
//    what the layout sweep axis measures.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/graph.hpp"
#include "core/ids.hpp"

namespace wsf::core {

/// How node ids (= node memory order) are assigned. Construction is the
/// generator's natural order; the others are derived permutations.
enum class NodeOrderKind : std::uint8_t {
  Construction = 0,
  /// Deterministic preorder DFS from the root over out-edges.
  Dfs = 1,
  /// Execution order of the 1-processor baseline under the default policy
  /// (future-first, touch-first) — the order a sequential run walks memory.
  Sequential = 2,
  /// Seeded uniform shuffle (root pinned at id 0).
  Random = 3,
};

const char* to_string(NodeOrderKind k);
/// Parses "construction" | "dfs" | "sequential" | "random". Throws
/// CheckError on anything else.
NodeOrderKind node_order_from_string(const std::string& s);

/// A node permutation with both directions, so results computed on the
/// relabeled graph can be mapped back to original ids.
struct NodeOrder {
  NodeOrderKind kind = NodeOrderKind::Construction;
  /// new_id_of[old_id] = new_id.
  std::vector<NodeId> new_id_of;
  /// old_id_of[new_id] = old_id (the inverse permutation).
  std::vector<NodeId> old_id_of;

  /// Maps a node sequence expressed in relabeled ids back to original ids.
  std::vector<NodeId> to_original(std::span<const NodeId> relabeled) const;
};

/// The identity order over g's nodes.
NodeOrder construction_order(const Graph& g);
/// Deterministic preorder DFS from the root (out-edges in storage order).
NodeOrder dfs_order(const Graph& g);
/// Seeded uniform shuffle of ids 1..n-1; the root stays id 0.
NodeOrder random_order(const Graph& g, std::uint64_t seed);
/// Builds a NodeOrder from an execution/visit sequence of old ids (each id
/// exactly once, sequence[0] == root): node visited k-th gets new id k.
/// This is how the sequential baseline order becomes a layout (see
/// sched::make_node_order, which runs the baseline).
NodeOrder order_from_sequence(const Graph& g, NodeOrderKind kind,
                              std::span<const NodeId> sequence);

/// Read-only SoA/CSR view of a Graph. Construction is O(nodes + edges);
/// the view borrows the Graph, which must outlive it. All ids are the
/// graph's own — a layout never re-orders anything (use relabeled_graph
/// for that).
class GraphLayout {
 public:
  explicit GraphLayout(const Graph& g);

  const Graph& graph() const { return *g_; }
  std::size_t num_nodes() const { return thread_of_.size(); }
  std::size_t num_edges() const { return succ_.size(); }
  NodeId root() const { return g_->root(); }
  NodeId final_node() const { return final_; }

  // ---- flat per-node arrays ----
  ThreadId thread_of(NodeId v) const { return thread_of_[v]; }
  BlockId block_of(NodeId v) const { return block_of_[v]; }
  /// Total in-degree including super-final predecessors of the final node.
  std::uint32_t in_degree(NodeId v) const { return in_degree_[v]; }

  bool is_fork(NodeId v) const { return (flags_[v] & kFork) != 0; }
  bool is_touch(NodeId v) const { return (flags_[v] & kTouch) != 0; }
  bool is_future_parent(NodeId v) const {
    return (flags_[v] & kFutureParent) != 0;
  }

  // ---- CSR adjacency ----
  /// Out half-edges of v (kinds included), super-final edges included for
  /// their producers.
  std::span<const HalfEdge> successors(NodeId v) const {
    return {succ_.data() + succ_off_[v], succ_off_[v + 1] - succ_off_[v]};
  }
  /// In half-edges of v; for the final node this includes the super-final
  /// touch predecessors (unlike Graph::node(v).in, which has only 2 slots).
  std::span<const HalfEdge> predecessors(NodeId v) const {
    return {pred_.data() + pred_off_[v], pred_off_[v + 1] - pred_off_[v]};
  }

  // ---- precomputed per-node relations (kInvalidNode when inapplicable) ----
  /// For a fork: first node of the spawned thread.
  NodeId fork_left_child(NodeId fork) const { return left_child_[fork]; }
  /// For a fork: continuation of the parent thread.
  NodeId fork_right_child(NodeId fork) const { return right_child_[fork]; }
  /// For a touch: the predecessor across the incoming touch edge.
  NodeId future_parent_of(NodeId touch) const {
    return future_parent_[touch];
  }
  /// For a touch: the fork that spawned its future thread (kInvalidNode
  /// when the future thread is main).
  NodeId corresponding_fork_of(NodeId touch) const {
    return corr_fork_[touch];
  }

  // ---- per-thread touch ranges ----
  std::span<const NodeId> touches_of_thread(ThreadId t) const {
    return g_->touches_of_thread(t);
  }

 private:
  static constexpr std::uint8_t kFork = 1;
  static constexpr std::uint8_t kTouch = 2;
  static constexpr std::uint8_t kFutureParent = 4;

  const Graph* g_;
  NodeId final_ = kInvalidNode;

  std::vector<ThreadId> thread_of_;
  std::vector<BlockId> block_of_;
  std::vector<std::uint32_t> in_degree_;
  std::vector<std::uint8_t> flags_;

  std::vector<std::uint32_t> succ_off_;
  std::vector<HalfEdge> succ_;
  std::vector<std::uint32_t> pred_off_;
  std::vector<HalfEdge> pred_;

  std::vector<NodeId> left_child_;
  std::vector<NodeId> right_child_;
  std::vector<NodeId> future_parent_;
  std::vector<NodeId> corr_fork_;
};

}  // namespace wsf::core
