#include "core/traversal.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "support/check.hpp"

namespace wsf::core {

std::vector<NodeId> topological_order(const GraphLayout& layout) {
  const std::size_t n = layout.num_nodes();
  std::vector<std::uint32_t> pending(n);
  std::vector<NodeId> order;
  order.reserve(n);
  std::vector<NodeId> frontier;
  for (NodeId id = 0; id < static_cast<NodeId>(n); ++id) {
    pending[id] = layout.in_degree(id);
    if (pending[id] == 0) frontier.push_back(id);
  }
  while (!frontier.empty()) {
    const NodeId cur = frontier.back();
    frontier.pop_back();
    order.push_back(cur);
    for (const HalfEdge& out : layout.successors(cur)) {
      WSF_DCHECK(pending[out.node] > 0);
      if (--pending[out.node] == 0) frontier.push_back(out.node);
    }
  }
  return order;
}

std::vector<NodeId> topological_order(const Graph& g) {
  return topological_order(GraphLayout(g));
}

std::vector<std::uint32_t> longest_path_from_root(const GraphLayout& layout) {
  const std::vector<NodeId> topo = topological_order(layout);
  WSF_CHECK(topo.size() == layout.num_nodes(),
            "longest path requires a DAG");
  std::vector<std::uint32_t> dist(layout.num_nodes(), 0);
  dist[layout.root()] = 1;
  for (NodeId cur : topo) {
    if (dist[cur] == 0) continue;  // unreachable from root (validate forbids)
    for (const HalfEdge& out : layout.successors(cur))
      dist[out.node] = std::max(dist[out.node], dist[cur] + 1);
  }
  return dist;
}

std::vector<std::uint32_t> longest_path_from_root(const Graph& g) {
  return longest_path_from_root(GraphLayout(g));
}

std::uint32_t span(const GraphLayout& layout) {
  const auto dist = longest_path_from_root(layout);
  std::uint32_t best = 0;
  for (auto d : dist) best = std::max(best, d);
  return best;
}

std::uint32_t span(const Graph& g) { return span(GraphLayout(g)); }

std::vector<char> reachable_from(const Graph& g, NodeId from) {
  std::vector<char> seen(g.num_nodes(), 0);
  std::vector<NodeId> stack{from};
  seen[from] = 1;
  while (!stack.empty()) {
    const NodeId cur = stack.back();
    stack.pop_back();
    const Node& node = g.node(cur);
    for (std::uint8_t i = 0; i < node.out_count; ++i) {
      const NodeId succ = node.out[i].node;
      if (!seen[succ]) {
        seen[succ] = 1;
        stack.push_back(succ);
      }
    }
  }
  return seen;
}

bool is_descendant(const Graph& g, NodeId ancestor, NodeId descendant) {
  if (ancestor == descendant) return true;
  // Depth-first search with early exit; fine at the scales classification
  // runs at (tests and example graphs).
  std::vector<char> seen(g.num_nodes(), 0);
  std::vector<NodeId> stack{ancestor};
  seen[ancestor] = 1;
  while (!stack.empty()) {
    const NodeId cur = stack.back();
    stack.pop_back();
    const Node& node = g.node(cur);
    for (std::uint8_t i = 0; i < node.out_count; ++i) {
      const NodeId succ = node.out[i].node;
      if (succ == descendant) return true;
      if (!seen[succ]) {
        seen[succ] = 1;
        stack.push_back(succ);
      }
    }
  }
  return false;
}

DagStats compute_stats(const GraphLayout& layout) {
  const Graph& g = layout.graph();
  DagStats s;
  s.nodes = layout.num_nodes();
  s.edges = layout.num_edges();
  s.threads = g.num_threads();
  s.touches = g.touch_nodes().size();
  s.forks = g.fork_nodes().size();
  s.span = span(layout);
  std::unordered_set<BlockId> blocks;
  for (NodeId id = 0; id < layout.num_nodes(); ++id)
    if (layout.block_of(id) != kNoBlock) blocks.insert(layout.block_of(id));
  s.distinct_blocks = blocks.size();
  return s;
}

DagStats compute_stats(const Graph& g) {
  return compute_stats(GraphLayout(g));
}

}  // namespace wsf::core
