#include "core/traversal.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "support/check.hpp"

namespace wsf::core {

std::vector<NodeId> topological_order(const Graph& g) {
  const std::size_t n = g.num_nodes();
  std::vector<std::uint32_t> pending(n);
  std::vector<NodeId> order;
  order.reserve(n);
  std::vector<NodeId> frontier;
  for (NodeId id = 0; id < static_cast<NodeId>(n); ++id) {
    pending[id] = static_cast<std::uint32_t>(g.in_degree(id));
    if (pending[id] == 0) frontier.push_back(id);
  }
  while (!frontier.empty()) {
    const NodeId cur = frontier.back();
    frontier.pop_back();
    order.push_back(cur);
    const Node& node = g.node(cur);
    for (std::uint8_t i = 0; i < node.out_count; ++i) {
      const NodeId succ = node.out[i].node;
      WSF_DCHECK(pending[succ] > 0);
      if (--pending[succ] == 0) frontier.push_back(succ);
    }
  }
  return order;
}

std::vector<std::uint32_t> longest_path_from_root(const Graph& g) {
  const std::vector<NodeId> topo = topological_order(g);
  WSF_CHECK(topo.size() == g.num_nodes(), "longest path requires a DAG");
  std::vector<std::uint32_t> dist(g.num_nodes(), 0);
  dist[g.root()] = 1;
  for (NodeId cur : topo) {
    if (dist[cur] == 0) continue;  // unreachable from root (validate forbids)
    const Node& node = g.node(cur);
    for (std::uint8_t i = 0; i < node.out_count; ++i) {
      const NodeId succ = node.out[i].node;
      dist[succ] = std::max(dist[succ], dist[cur] + 1);
    }
  }
  return dist;
}

std::uint32_t span(const Graph& g) {
  const auto dist = longest_path_from_root(g);
  std::uint32_t best = 0;
  for (auto d : dist) best = std::max(best, d);
  return best;
}

std::vector<char> reachable_from(const Graph& g, NodeId from) {
  std::vector<char> seen(g.num_nodes(), 0);
  std::vector<NodeId> stack{from};
  seen[from] = 1;
  while (!stack.empty()) {
    const NodeId cur = stack.back();
    stack.pop_back();
    const Node& node = g.node(cur);
    for (std::uint8_t i = 0; i < node.out_count; ++i) {
      const NodeId succ = node.out[i].node;
      if (!seen[succ]) {
        seen[succ] = 1;
        stack.push_back(succ);
      }
    }
  }
  return seen;
}

bool is_descendant(const Graph& g, NodeId ancestor, NodeId descendant) {
  if (ancestor == descendant) return true;
  // Depth-first search with early exit; fine at the scales classification
  // runs at (tests and example graphs).
  std::vector<char> seen(g.num_nodes(), 0);
  std::vector<NodeId> stack{ancestor};
  seen[ancestor] = 1;
  while (!stack.empty()) {
    const NodeId cur = stack.back();
    stack.pop_back();
    const Node& node = g.node(cur);
    for (std::uint8_t i = 0; i < node.out_count; ++i) {
      const NodeId succ = node.out[i].node;
      if (succ == descendant) return true;
      if (!seen[succ]) {
        seen[succ] = 1;
        stack.push_back(succ);
      }
    }
  }
  return false;
}

DagStats compute_stats(const Graph& g) {
  DagStats s;
  s.nodes = g.num_nodes();
  s.edges = g.num_edges();
  s.threads = g.num_threads();
  s.touches = g.touch_nodes().size();
  s.forks = g.fork_nodes().size();
  s.span = span(g);
  std::unordered_set<BlockId> blocks;
  for (NodeId id = 0; id < g.num_nodes(); ++id)
    if (g.block_of(id) != kNoBlock) blocks.insert(g.block_of(id));
  s.distinct_blocks = blocks.size();
  return s;
}

}  // namespace wsf::core
