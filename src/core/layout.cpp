#include "core/layout.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace wsf::core {

const char* to_string(NodeOrderKind k) {
  switch (k) {
    case NodeOrderKind::Construction:
      return "construction";
    case NodeOrderKind::Dfs:
      return "dfs";
    case NodeOrderKind::Sequential:
      return "sequential";
    case NodeOrderKind::Random:
      return "random";
  }
  return "?";
}

NodeOrderKind node_order_from_string(const std::string& s) {
  if (s == "construction") return NodeOrderKind::Construction;
  if (s == "dfs") return NodeOrderKind::Dfs;
  if (s == "sequential" || s == "seq") return NodeOrderKind::Sequential;
  if (s == "random") return NodeOrderKind::Random;
  WSF_REQUIRE(false, "unknown node order '"
                         << s
                         << "' (construction | dfs | sequential | random)");
  return NodeOrderKind::Construction;
}

std::vector<NodeId> NodeOrder::to_original(
    std::span<const NodeId> relabeled) const {
  std::vector<NodeId> out;
  out.reserve(relabeled.size());
  for (const NodeId v : relabeled) {
    WSF_REQUIRE(v < old_id_of.size(), "node " << v << " outside the order");
    out.push_back(old_id_of[v]);
  }
  return out;
}

namespace {

NodeOrder finish_order(const Graph& g, NodeOrderKind kind,
                       std::vector<NodeId> new_id_of) {
  NodeOrder order;
  order.kind = kind;
  order.new_id_of = std::move(new_id_of);
  order.old_id_of.assign(g.num_nodes(), kInvalidNode);
  for (NodeId v = 0; v < static_cast<NodeId>(g.num_nodes()); ++v) {
    const NodeId nv = order.new_id_of[v];
    WSF_CHECK(nv < g.num_nodes() && order.old_id_of[nv] == kInvalidNode,
              "node order is not a permutation at node " << v);
    order.old_id_of[nv] = v;
  }
  WSF_CHECK(order.new_id_of[g.root()] == 0,
            "node order must keep the root at id 0");
  return order;
}

}  // namespace

NodeOrder construction_order(const Graph& g) {
  std::vector<NodeId> ids(g.num_nodes());
  for (NodeId v = 0; v < static_cast<NodeId>(ids.size()); ++v) ids[v] = v;
  return finish_order(g, NodeOrderKind::Construction, std::move(ids));
}

NodeOrder dfs_order(const Graph& g) {
  const std::size_t n = g.num_nodes();
  std::vector<NodeId> new_id_of(n, kInvalidNode);
  std::vector<NodeId> stack{g.root()};
  NodeId next = 0;
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    if (new_id_of[v] != kInvalidNode) continue;
    new_id_of[v] = next++;
    const Node& node = g.node(v);
    // Push in reverse so out[0]'s subtree is numbered first (preorder).
    for (int i = node.out_count - 1; i >= 0; --i)
      stack.push_back(node.out[i].node);
  }
  WSF_CHECK(static_cast<std::size_t>(next) == n,
            "DFS reached " << next << " of " << n << " nodes");
  return finish_order(g, NodeOrderKind::Dfs, std::move(new_id_of));
}

NodeOrder random_order(const Graph& g, std::uint64_t seed) {
  const std::size_t n = g.num_nodes();
  std::vector<NodeId> old_of_new(n);
  for (NodeId v = 0; v < static_cast<NodeId>(n); ++v) old_of_new[v] = v;
  // Fisher–Yates over ids 1..n-1: the root keeps id 0 by convention.
  support::Xoshiro256 rng(seed);
  for (std::size_t i = n; i > 2; --i) {
    const std::size_t j = 1 + static_cast<std::size_t>(rng.below(i - 1));
    std::swap(old_of_new[i - 1], old_of_new[j]);
  }
  std::vector<NodeId> new_id_of(n, kInvalidNode);
  for (NodeId nv = 0; nv < static_cast<NodeId>(n); ++nv)
    new_id_of[old_of_new[nv]] = nv;
  return finish_order(g, NodeOrderKind::Random, std::move(new_id_of));
}

NodeOrder order_from_sequence(const Graph& g, NodeOrderKind kind,
                              std::span<const NodeId> sequence) {
  const std::size_t n = g.num_nodes();
  WSF_REQUIRE(sequence.size() == n,
              "order sequence covers " << sequence.size() << " of " << n
                                       << " nodes");
  std::vector<NodeId> new_id_of(n, kInvalidNode);
  for (std::size_t k = 0; k < n; ++k) {
    const NodeId v = sequence[k];
    WSF_REQUIRE(v < n && new_id_of[v] == kInvalidNode,
                "order sequence repeats or skips node " << v);
    new_id_of[v] = static_cast<NodeId>(k);
  }
  return finish_order(g, kind, std::move(new_id_of));
}

Graph relabeled_graph(const Graph& g, const std::vector<NodeId>& new_id_of) {
  const std::size_t n = g.num_nodes();
  WSF_REQUIRE(new_id_of.size() == n,
              "permutation covers " << new_id_of.size() << " of " << n
                                    << " nodes");
  WSF_REQUIRE(new_id_of[g.root()] == 0,
              "relabeling must keep the root at id 0");
  const auto map = [&](NodeId v) {
    return v == kInvalidNode ? kInvalidNode : new_id_of[v];
  };

  Graph out;
  out.nodes_.resize(n);
  for (NodeId v = 0; v < static_cast<NodeId>(n); ++v) {
    Node node = g.nodes_[v];
    for (std::uint8_t i = 0; i < node.out_count; ++i)
      node.out[i].node = map(node.out[i].node);
    for (std::uint8_t i = 0; i < node.in_count; ++i)
      node.in[i].node = map(node.in[i].node);
    const NodeId nv = new_id_of[v];
    WSF_REQUIRE(nv < n, "permutation target " << nv << " out of range");
    out.nodes_[nv] = node;
  }
  out.threads_ = g.threads_;
  for (ThreadInfo& ti : out.threads_) {
    ti.first_node = map(ti.first_node);
    ti.last_node = map(ti.last_node);
    ti.fork_node = map(ti.fork_node);
  }
  const auto remap_sorted = [&](const std::vector<NodeId>& in) {
    std::vector<NodeId> mapped;
    mapped.reserve(in.size());
    for (const NodeId v : in) mapped.push_back(map(v));
    // The relabeled graph's construction order IS its id order; sorting
    // keeps the enumeration lists consistent with that convention (and
    // deterministic).
    std::sort(mapped.begin(), mapped.end());
    return mapped;
  };
  out.touch_nodes_ = remap_sorted(g.touch_nodes_);
  out.fork_nodes_ = remap_sorted(g.fork_nodes_);
  out.super_final_preds_ = remap_sorted(g.super_final_preds_);
  out.final_ = map(g.final_);
  out.edge_count_ = g.edge_count_;
  for (const auto& [role, v] : g.role_to_node_) {
    out.role_to_node_[role] = map(v);
    out.node_to_role_[map(v)] = role;
  }
  out.build_touch_index();
  out.validate();
  return out;
}

GraphLayout::GraphLayout(const Graph& g) : g_(&g), final_(g.final_node()) {
  const std::size_t n = g.num_nodes();
  thread_of_.resize(n);
  block_of_.resize(n);
  in_degree_.resize(n);
  flags_.assign(n, 0);
  left_child_.assign(n, kInvalidNode);
  right_child_.assign(n, kInvalidNode);
  future_parent_.assign(n, kInvalidNode);
  corr_fork_.assign(n, kInvalidNode);

  succ_off_.assign(n + 1, 0);
  pred_off_.assign(n + 1, 0);
  for (NodeId v = 0; v < static_cast<NodeId>(n); ++v) {
    const Node& node = g.node(v);
    thread_of_[v] = node.thread;
    block_of_[v] = node.block;
    in_degree_[v] = static_cast<std::uint32_t>(g.in_degree(v));
    succ_off_[v + 1] = node.out_count;
    pred_off_[v + 1] = node.in_count;
  }
  // The final node's in array holds at most 2 slots; its super-final touch
  // predecessors only exist in the side list. The predecessor CSR includes
  // them so in_degree(v) == predecessors(v).size() for every node.
  if (final_ != kInvalidNode)
    pred_off_[final_ + 1] +=
        static_cast<std::uint32_t>(g.super_final_preds().size());
  for (std::size_t v = 0; v < n; ++v) {
    succ_off_[v + 1] += succ_off_[v];
    pred_off_[v + 1] += pred_off_[v];
  }
  succ_.resize(succ_off_[n]);
  pred_.resize(pred_off_[n]);

  std::vector<std::uint32_t> pred_cursor(pred_off_.begin(),
                                         pred_off_.end() - 1);
  for (NodeId v = 0; v < static_cast<NodeId>(n); ++v) {
    const Node& node = g.node(v);
    std::uint32_t s = succ_off_[v];
    for (std::uint8_t i = 0; i < node.out_count; ++i)
      succ_[s++] = node.out[i];
    for (std::uint8_t i = 0; i < node.in_count; ++i)
      pred_[pred_cursor[v]++] = node.in[i];

    // Node-kind flags from the inline arrays (identical to the Graph
    // predicates; super-final edges never make the final node a touch).
    bool has_future_out = false, has_cont_out = false, has_touch_out = false;
    for (std::uint8_t i = 0; i < node.out_count; ++i) {
      has_future_out |= node.out[i].kind == EdgeKind::Future;
      has_cont_out |= node.out[i].kind == EdgeKind::Continuation;
      has_touch_out |= node.out[i].kind == EdgeKind::Touch;
    }
    if (node.out_count == 2 && has_future_out && has_cont_out)
      flags_[v] |= kFork;
    if (has_touch_out) flags_[v] |= kFutureParent;
    for (std::uint8_t i = 0; i < node.in_count; ++i)
      if (node.in[i].kind == EdgeKind::Touch) flags_[v] |= kTouch;
  }
  for (const NodeId p : g.super_final_preds())
    pred_[pred_cursor[final_]++] = HalfEdge{p, EdgeKind::Touch};

  // Precomputed per-node relations the execution loops ask for per node.
  for (NodeId v = 0; v < static_cast<NodeId>(n); ++v) {
    const Node& node = g.node(v);
    if (is_fork(v)) {
      for (std::uint8_t i = 0; i < node.out_count; ++i) {
        if (node.out[i].kind == EdgeKind::Future)
          left_child_[v] = node.out[i].node;
        else if (node.out[i].kind == EdgeKind::Continuation)
          right_child_[v] = node.out[i].node;
      }
    }
    if (is_touch(v)) {
      for (std::uint8_t i = 0; i < node.in_count; ++i)
        if (node.in[i].kind == EdgeKind::Touch)
          future_parent_[v] = node.in[i].node;
      const ThreadId ft = g.thread_of(future_parent_[v]);
      corr_fork_[v] = g.thread_info(ft).fork_node;
    }
  }
}

}  // namespace wsf::core
