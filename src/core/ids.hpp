// Fundamental identifier types for the computation-DAG model (Section 2 of
// the paper). Kept in one tiny header so every layer shares the same vocab.
#pragma once

#include <cstdint>
#include <limits>

namespace wsf::core {

/// Index of a node within a Graph. Nodes are created in construction order;
/// NodeId 0 is always the root.
using NodeId = std::uint32_t;

/// Index of a thread (maximal continuation chain). ThreadId 0 is always the
/// main thread (root → final node).
using ThreadId = std::uint32_t;

/// Index of a simulated processor.
using ProcId = std::uint32_t;

/// Identifier of the memory block accessed by a node; the model lets each
/// instruction access at most one block (Section 3).
using BlockId = std::int64_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
inline constexpr ThreadId kInvalidThread =
    std::numeric_limits<ThreadId>::max();
/// A node with kNoBlock performs no memory access.
inline constexpr BlockId kNoBlock = -1;

}  // namespace wsf::core
