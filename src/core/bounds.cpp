#include "core/bounds.hpp"

#include <cstdint>

namespace wsf::core {

double abp_steal_bound(std::uint64_t procs, std::uint64_t span) {
  return static_cast<double>(procs) * static_cast<double>(span);
}

double structured_deviation_bound(std::uint64_t procs, std::uint64_t span) {
  return static_cast<double>(procs) * static_cast<double>(span) *
         static_cast<double>(span);
}

double structured_miss_bound(std::uint64_t cache_lines, std::uint64_t procs,
                             std::uint64_t span) {
  return static_cast<double>(cache_lines) *
         structured_deviation_bound(procs, span);
}

double parent_first_deviation_bound(std::uint64_t touches,
                                    std::uint64_t span) {
  return static_cast<double>(touches) * static_cast<double>(span);
}

double parent_first_miss_bound(std::uint64_t cache_lines,
                               std::uint64_t touches, std::uint64_t span) {
  return static_cast<double>(cache_lines) *
         parent_first_deviation_bound(touches, span);
}

double unstructured_deviation_bound(std::uint64_t procs,
                                    std::uint64_t touches,
                                    std::uint64_t span) {
  return (static_cast<double>(procs) + static_cast<double>(touches)) *
         static_cast<double>(span);
}

}  // namespace wsf::core
