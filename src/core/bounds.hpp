// Closed-form values of the paper's bounds, used by benches to print
// measured/predicted ratio columns. These are the bound expressions with the
// constants dropped; the *shape* check is that the ratio stays roughly flat
// (or bounded) across a sweep.
#pragma once

#include <cstdint>

namespace wsf::core {

/// Expected steals of parsimonious work stealing: O(P·T∞)
/// (Arora, Blumofe & Plaxton, SPAA'98 — the baseline Theorem 8 builds on).
double abp_steal_bound(std::uint64_t procs, std::uint64_t span);

/// Theorem 8 / 12 / 16 / 18 deviation bound for structured computations with
/// the future-first policy: O(P·T∞²).
double structured_deviation_bound(std::uint64_t procs, std::uint64_t span);

/// Theorem 8 cache-miss bound: O(C·P·T∞²).
double structured_miss_bound(std::uint64_t cache_lines, std::uint64_t procs,
                             std::uint64_t span);

/// Theorem 10 deviation lower bound for parent-first on structured
/// single-touch computations: Ω(t·T∞).
double parent_first_deviation_bound(std::uint64_t touches,
                                    std::uint64_t span);

/// Theorem 10 cache-miss lower bound: Ω(C·t·T∞).
double parent_first_miss_bound(std::uint64_t cache_lines,
                               std::uint64_t touches, std::uint64_t span);

/// Spoonhower et al.'s general-futures deviation bound: Ω(P·T∞ + t·T∞).
double unstructured_deviation_bound(std::uint64_t procs,
                                    std::uint64_t touches,
                                    std::uint64_t span);

}  // namespace wsf::core
