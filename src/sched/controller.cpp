#include "sched/controller.hpp"

#include "sched/simulator.hpp"
#include "support/check.hpp"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace wsf::sched {

void ScheduleController::on_start(const Simulator&) {}
bool ScheduleController::awake(const Simulator&, core::ProcId) { return true; }
void ScheduleController::on_execute(const Simulator&, core::ProcId,
                                    core::NodeId) {}
void ScheduleController::on_steal(const Simulator&, core::ProcId,
                                  core::ProcId, core::NodeId) {}

RandomController::RandomController(std::uint64_t seed, double stall_prob,
                                   bool steal_nonempty_only,
                                   core::VictimPolicy victim_policy)
    : rng_(seed),
      stall_prob_(stall_prob),
      steal_nonempty_only_(steal_nonempty_only),
      victim_policy_(victim_policy) {}

void RandomController::on_start(const Simulator& sim) {
  // "None yet" is each thief's own index (a thief never steals from
  // itself), so LastVictim starts every run with a clean affinity slate.
  last_victim_.resize(sim.num_procs());
  for (core::ProcId p = 0; p < sim.num_procs(); ++p) last_victim_[p] = p;
}

bool RandomController::awake(const Simulator&, core::ProcId) {
  if (stall_prob_ <= 0.0) return true;
  return !rng_.chance(stall_prob_);
}

core::ProcId RandomController::pick_victim(const Simulator& sim,
                                           core::ProcId thief) {
  const std::uint32_t procs = sim.num_procs();
  if (procs <= 1) return thief;  // nobody to steal from
  switch (victim_policy_) {
    case core::VictimPolicy::LastVictim: {
      // Affinity: retry the last productive victim while it still has
      // work; no RNG draw is spent on the retry. Falls through to the
      // uniform draw when there is no (or an emptied) remembered victim.
      const core::ProcId last = last_victim_[thief];
      if (last != thief && !sim.deque_empty(last)) return last;
      break;
    }
    case core::VictimPolicy::Nearest:
      // Deterministic ring scan by index distance; declines the round when
      // every other deque is empty (no RNG draws at all).
      for (core::ProcId d = 1; d < procs; ++d) {
        const core::ProcId v = (thief + d) % procs;
        if (!sim.deque_empty(v)) return v;
      }
      return thief;
    case core::VictimPolicy::Uniform:
      break;
  }
  if (!steal_nonempty_only_) {
    // Faithful ABP: uniform over the other processors; may fail.
    auto v = static_cast<core::ProcId>(rng_.below(procs - 1));
    if (v >= thief) ++v;
    return v;
  }
  // Uniform over processors with non-empty deques.
  candidates_.clear();
  candidates_.reserve(procs);
  for (core::ProcId q = 0; q < procs; ++q)
    if (q != thief && !sim.deque_empty(q)) candidates_.push_back(q);
  if (candidates_.empty()) return thief;
  return candidates_[rng_.below(candidates_.size())];
}

void RandomController::on_steal(const Simulator&, core::ProcId thief,
                                core::ProcId victim, core::NodeId) {
  if (victim_policy_ == core::VictimPolicy::LastVictim)
    last_victim_[thief] = victim;
}

ScriptController& ScriptController::sleep_after(const std::string& role,
                                                core::ProcId p) {
  pending_rules_.push_back({role, p, true});
  return *this;
}

ScriptController& ScriptController::wake_after(const std::string& role,
                                               core::ProcId p) {
  pending_rules_.push_back({role, p, false});
  return *this;
}

ScriptController& ScriptController::sleep_now(core::ProcId p) {
  initially_asleep_.push_back(p);
  return *this;
}

ScriptController& ScriptController::prefer_victim(
    core::ProcId thief, std::vector<core::ProcId> victims) {
  victim_pref_[thief] = std::move(victims);
  return *this;
}

void ScriptController::on_start(const Simulator& sim) {
  asleep_.assign(sim.num_procs(), 0);
  for (core::ProcId p : initially_asleep_) {
    WSF_REQUIRE(p < sim.num_procs(), "sleep_now: bad processor " << p);
    asleep_[p] = 1;
  }
  triggers_.clear();
  for (const PendingRule& r : pending_rules_) {
    const core::NodeId v = sim.graph().node_by_role(r.role);
    WSF_REQUIRE(v != core::kInvalidNode,
                "schedule script references unknown role '" << r.role << "'");
    WSF_REQUIRE(r.proc < sim.num_procs(),
                "schedule script references bad processor " << r.proc);
    triggers_[v].push_back({r.proc, r.sleep});
  }
}

bool ScriptController::awake(const Simulator&, core::ProcId p) {
  return !asleep_[p];
}

core::ProcId ScriptController::pick_victim(const Simulator& sim,
                                           core::ProcId thief) {
  auto it = victim_pref_.find(thief);
  if (it != victim_pref_.end()) {
    for (core::ProcId v : it->second)
      if (v != thief && !sim.deque_empty(v)) return v;
  }
  for (core::ProcId v = 0; v < sim.num_procs(); ++v)
    if (v != thief && !sim.deque_empty(v)) return v;
  return thief;  // nothing to steal; skip this round
}

void ScriptController::on_execute(const Simulator&, core::ProcId,
                                  core::NodeId v) {
  auto it = triggers_.find(v);
  if (it == triggers_.end()) return;
  for (const auto& [proc, sleep] : it->second) asleep_[proc] = sleep ? 1 : 0;
}

}  // namespace wsf::sched
