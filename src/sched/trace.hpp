// Execution traces and counters produced by the scheduler simulator.
#pragma once

#include <cstdint>
#include <vector>

#include "core/ids.hpp"

namespace wsf::sched {

/// Complete record of one simulated execution (sequential or parallel).
///
/// The trace vectors (proc_orders, global_order, executed_by, stolen_nodes)
/// are filled only when SimOptions::record_trace is set (the default);
/// counter-only sweeps disable it to skip the per-node allocation traffic.
struct SimResult {
  /// Per-processor node sequences, in the order each processor executed
  /// them. Concatenated they cover every node exactly once.
  std::vector<std::vector<core::NodeId>> proc_orders;
  /// Nodes in global execution order (ties broken by processor index within
  /// a round).
  std::vector<core::NodeId> global_order;
  /// For each node, the processor that executed it.
  std::vector<core::ProcId> executed_by;

  /// Number of simulation rounds until completion. Rounds are round-robin
  /// over the processors and every counted round is a *full* round: each
  /// awake processor takes exactly one action (execute, pop, steal attempt,
  /// or declined attempt) per round, including in the final round — the one
  /// during which the last node executes — where trailing processors still
  /// take their (necessarily workless) turns. Hence steps, idle_steps,
  /// declined_steals, and steal_attempts are all measured over the same
  /// steps × procs processor-round grid.
  std::uint64_t steps = 0;
  /// Successful steals (a node moved from a victim's deque top to a thief).
  std::uint64_t steals = 0;
  /// The nodes that were stolen, in steal order — the roots of the
  /// deviation chains of Theorem 8's proof.
  std::vector<core::NodeId> stolen_nodes;
  /// All steal attempts aimed at an actual victim, including failures.
  /// steal_attempts == steals + failed_steals; the ABP-style attempt count
  /// Theorem 8/9 benches reason about.
  std::uint64_t steal_attempts = 0;
  std::uint64_t failed_steals = 0;
  /// Steal operations that claimed two or more nodes (steal-half batches).
  /// Zero under StealPolicy::One.
  std::uint64_t batch_steals = 0;
  /// Nodes claimed beyond the first across all batch steals; every steal's
  /// first node is counted in `steals`, so nodes moved between deques
  /// total steals + batch_stolen_items.
  std::uint64_t batch_stolen_items = 0;
  /// Processor-rounds spent asleep (the controller's awake() said no).
  std::uint64_t idle_steps = 0;
  /// Workless processor-rounds where the controller declined to pick a
  /// victim (pick_victim returned the thief itself / an invalid processor).
  /// Kept separate from both idle_steps and steal_attempts so declined
  /// rounds cannot masquerade as sleep or as real ABP attempts.
  std::uint64_t declined_steals = 0;

  /// Times a touch was checked (its local parent executed) before the fork
  /// that spawns its future thread had executed — the unstructured-futures
  /// hazard of Figure 3. Always zero for structured computations.
  std::uint64_t premature_touches = 0;

  /// Cache misses per processor (empty when cache simulation is off).
  std::vector<std::uint64_t> misses_per_proc;

  std::uint64_t total_misses() const {
    std::uint64_t s = 0;
    for (auto m : misses_per_proc) s += m;
    return s;
  }
};

}  // namespace wsf::sched
