#include "sched/simulator.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

#include "support/check.hpp"

namespace wsf::sched {

Simulator::Simulator(const core::Graph& g, const SimOptions& opts,
                     ScheduleController* controller)
    : g_(g), layout_(g), opts_(opts), controller_(controller) {
  WSF_REQUIRE(opts_.procs >= 1, "need at least one processor");
  if (!controller_) {
    owned_controller_ = std::make_unique<RandomController>(
        opts_.seed, opts_.stall_prob, opts_.steal_nonempty_only,
        opts_.victim_policy);
    controller_ = owned_controller_.get();
  }
  pending_.resize(g_.num_nodes());
  executed_.resize(g_.num_nodes());
  current_.resize(opts_.procs);
  deques_.resize(opts_.procs);
  if (opts_.cache_lines > 0) {
    caches_.reserve(opts_.procs);
    for (std::uint32_t p = 0; p < opts_.procs; ++p)
      caches_.push_back(
          cache::make_cache(opts_.cache_policy, opts_.cache_lines));
  }
  reset_state();
}

void Simulator::reset_state() {
  const std::size_t n = g_.num_nodes();
  for (core::NodeId v = 0; v < static_cast<core::NodeId>(n); ++v)
    pending_[v] = layout_.in_degree(v);
  std::fill(executed_.begin(), executed_.end(), 0);
  std::fill(current_.begin(), current_.end(), core::kInvalidNode);
  for (auto& deque : deques_) deque.clear();  // keeps the ring buffers
  for (auto& cache : caches_) cache->reset();
  executed_count_ = 0;
  round_ = 0;
  ran_ = false;
  // Field-wise clear instead of `result_ = SimResult()`: a run_in_place()
  // replicate loop keeps the trace buffers' capacity across resets, so a
  // steady-state replicate allocates nothing result-sided.
  result_.steps = 0;
  result_.steals = 0;
  result_.steal_attempts = 0;
  result_.failed_steals = 0;
  result_.batch_steals = 0;
  result_.batch_stolen_items = 0;
  result_.idle_steps = 0;
  result_.declined_steals = 0;
  result_.premature_touches = 0;
  result_.stolen_nodes.clear();
  result_.global_order.clear();
  if (opts_.record_trace) {
    result_.proc_orders.resize(opts_.procs);
    for (auto& order : result_.proc_orders) {
      order.clear();
      order.reserve(n / opts_.procs + 1);
    }
    result_.executed_by.assign(n, 0);
    result_.global_order.reserve(n);
  } else {
    result_.proc_orders.clear();
    result_.executed_by.clear();
  }
  result_.misses_per_proc.assign(opts_.procs, 0);
}

void Simulator::reset(std::uint64_t seed) {
  WSF_REQUIRE(owned_controller_ != nullptr,
              "Simulator::reset requires the simulator-owned random "
              "controller; an external controller carries schedule state "
              "the simulator cannot rewind");
  opts_.seed = seed;
  owned_controller_->reseed(seed);
  reset_state();
}

SimResult simulate(const core::Graph& g, const SimOptions& opts,
                   ScheduleController* controller) {
  Simulator sim(g, opts, controller);
  return sim.run();
}

SimResult Simulator::run() {
  run_in_place();
  return std::move(result_);
}

const SimResult& Simulator::run_in_place() {
  WSF_REQUIRE(!ran_, "Simulator::run may be called once");
  ran_ = true;
  const std::size_t n = g_.num_nodes();
  // The computation starts with the root assigned to processor 0 (the
  // paper's executions always start this way; a different "root processor"
  // is just a relabeling).
  current_[0] = g_.root();

  const std::uint64_t max_steps =
      opts_.max_steps ? opts_.max_steps
                      : (64 + 64 * static_cast<std::uint64_t>(n)) *
                            std::max<std::uint64_t>(1, opts_.procs);
  controller_->on_start(*this);

  while (executed_count_ < n) {
    WSF_CHECK(round_ < max_steps,
              "simulation did not finish within "
                  << max_steps << " rounds (controller deadlock? "
                  << executed_count_ << "/" << n << " nodes executed)");
    // Every awake processor acts exactly once per round, including the
    // trailing processors of the round in which the computation completes
    // (their turns are necessarily declined/failed steal attempts, since no
    // deque holds work once every node has executed). Bailing mid-round
    // here would count a partial round as a full step and silently drop the
    // trailing processors' idle/steal accounting — see SimResult::steps.
    for (core::ProcId p = 0; p < opts_.procs; ++p) {
      if (!controller_->awake(*this, p)) {
        ++result_.idle_steps;
        continue;
      }
      if (current_[p] == core::kInvalidNode) {
        if (!deques_[p].empty()) {
          // Pop the bottom of the own deque and execute it this round.
          current_[p] = deques_[p].back();
          deques_[p].pop_back();
        } else {
          try_steal(p);
          continue;  // a steal attempt consumes the round
        }
      }
      const core::NodeId v = current_[p];
      current_[p] = core::kInvalidNode;
      execute(p, v);
    }
    ++round_;
  }
  result_.steps = round_;
  for (core::ProcId p = 0; p < opts_.procs; ++p)
    WSF_CHECK(deques_[p].empty() && current_[p] == core::kInvalidNode,
              "processor " << p << " still holds work after completion");
  return result_;
}

void Simulator::try_steal(core::ProcId p) {
  const core::ProcId victim = controller_->pick_victim(*this, p);
  if (victim == p || victim >= opts_.procs) {
    // Controller declined the attempt this round.
    ++result_.declined_steals;
    return;
  }
  ++result_.steal_attempts;
  if (deques_[victim].empty()) {
    ++result_.failed_steals;
    return;
  }
  const std::size_t observed = deques_[victim].size();
  const core::NodeId stolen = deques_[victim].front();  // top of the deque
  deques_[victim].pop_front();
  ++result_.steals;
  if (opts_.record_trace) result_.stolen_nodes.push_back(stolen);
  current_[p] = stolen;  // executed next round (a steal costs one round)
  if (opts_.steal_policy == core::StealPolicy::Half && observed >= 2) {
    // Steal-half: the same operation also claims the rest of the victim's
    // top half — ceil(observed/2) nodes total, the first of which is
    // `stolen`. The extras land on the thief's deque (empty by the run
    // loop's precondition) ordered exactly as the runtime's batch steal:
    // the thief's own pops run them oldest-first, while its deque top
    // holds the newest extra for onward thieves.
    const std::size_t extras = (observed + 1) / 2 - 1;
    WSF_DCHECK(deques_[p].empty(), "batch extras onto a non-empty deque");
    for (std::size_t i = 0; i < extras; ++i) {
      const core::NodeId e = deques_[victim].front();
      deques_[victim].pop_front();
      if (opts_.record_trace) result_.stolen_nodes.push_back(e);
      deques_[p].push_front(e);  // reverses: oldest extra ends at the bottom
    }
    ++result_.batch_steals;
    result_.batch_stolen_items += extras;
  }
  controller_->on_steal(*this, p, victim, stolen);
}

void Simulator::execute(core::ProcId p, core::NodeId v) {
  WSF_DCHECK(!executed_[v], "node executed twice");
  const core::BlockId block = layout_.block_of(v);
  if (!caches_.empty() && block != core::kNoBlock) {
    if (caches_[p]->access(block)) ++result_.misses_per_proc[p];
  }
  executed_[v] = 1;
  ++executed_count_;
  if (opts_.record_trace) {
    result_.proc_orders[p].push_back(v);
    result_.global_order.push_back(v);
    result_.executed_by[v] = p;
  }

  core::HalfEdge enabled[2];
  int enabled_count = 0;
  for (const core::HalfEdge& out : layout_.successors(v)) {
    const core::NodeId succ = out.node;
    WSF_DCHECK(pending_[succ] > 0);
    if (--pending_[succ] == 0) {
      enabled[enabled_count++] = out;
    } else if (out.kind == core::EdgeKind::Continuation &&
               layout_.is_touch(succ) && succ != layout_.final_node()) {
      // The processor just reached (checked) a touch that is not ready. If
      // the fork spawning the touched future has not even executed yet, the
      // touch was checked before its future thread exists — the Figure 3
      // hazard that structured computations exclude.
      const core::NodeId fork = layout_.corresponding_fork_of(succ);
      if (fork != core::kInvalidNode && !executed_[fork])
        ++result_.premature_touches;
    }
  }
  controller_->on_execute(*this, p, v);

  if (enabled_count == 2) {
    int take = 0;
    if (layout_.is_fork(v)) {
      const bool take_future = opts_.policy == core::ForkPolicy::FutureFirst;
      take =
          (enabled[0].kind == core::EdgeKind::Future) == take_future ? 0 : 1;
    } else {
      const bool take_touch = opts_.touch_enable == TouchEnable::TouchFirst;
      take =
          (enabled[0].kind == core::EdgeKind::Touch) == take_touch ? 0 : 1;
    }
    deques_[p].push_back(enabled[1 - take].node);  // bottom of the deque
    current_[p] = enabled[take].node;
  } else if (enabled_count == 1) {
    current_[p] = enabled[0].node;
  }
  // enabled_count == 0: the processor will pop or steal next round.
}

}  // namespace wsf::sched
