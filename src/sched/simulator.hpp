// P-processor parsimonious work-stealing simulator (Section 3 of the paper).
//
// Execution model (Arora–Blumofe–Plaxton enabling semantics, which the
// paper's proofs use):
//   * executing a node decrements the pending count of its successors; a
//     successor whose last predecessor just executed is *enabled*;
//   * with one enabled child, the processor executes it next;
//   * with two enabled children, it executes one and pushes the other onto
//     the *bottom* of its deque — at forks the fork policy picks the child
//     (future-first vs parent-first, Section 5), at future parents the
//     touch-enable rule picks (options.hpp);
//   * with none, it pops the bottom of its own deque; if the deque is empty
//     it spends the round on one steal attempt from the *top* of a victim's
//     deque (the controller picks the victim).
//
// Rounds are round-robin over processors: each awake processor acts once per
// round. The simulator is deterministic given the graph, options, and
// controller, making every experiment exactly reproducible.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "cache/cache.hpp"
#include "core/graph.hpp"
#include "core/layout.hpp"
#include "sched/controller.hpp"
#include "sched/options.hpp"
#include "sched/trace.hpp"
#include "support/ring_deque.hpp"

namespace wsf::sched {

class Simulator {
 public:
  /// Prepares a simulation of `g`. The controller may be null, in which
  /// case a RandomController(opts.seed, opts.stall_prob,
  /// opts.steal_nonempty_only) is used.
  Simulator(const core::Graph& g, const SimOptions& opts,
            ScheduleController* controller = nullptr);

  /// Runs the whole computation and returns the trace. Can be called once
  /// per construction/reset. Moves the result out of the simulator, so the
  /// trace buffers are *not* recycled by the next reset(); replicate loops
  /// that want full arena reuse should call run_in_place() instead.
  SimResult run();

  /// Runs the whole computation in place and returns a reference to the
  /// simulator-owned result, valid until the next reset()/run(). Together
  /// with reset(seed) this recycles the per-run trace vectors
  /// (proc_orders, global_order, executed_by, stolen_nodes,
  /// misses_per_proc) across seed replicates — the result-vector half of
  /// the sweep arena; run_replicates batches its replicates through this.
  const SimResult& run_in_place();

  /// Rewinds the simulator to its pre-run state with a new schedule seed,
  /// reusing the pending/executed/current/deque/cache allocations — the
  /// arena a sweep job recycles across seed replicates instead of paying
  /// O(nodes) construction per seed. run() after reset(s) produces exactly
  /// the result of a fresh Simulator(g, opts with seed s). Only available
  /// with the simulator-owned random controller (an external controller
  /// carries state the simulator cannot rewind).
  void reset(std::uint64_t seed);

  // ---- controller-facing const interface ----
  const core::Graph& graph() const { return g_; }
  /// The SoA/CSR view the hot loop runs on (same node ids as graph()).
  const core::GraphLayout& layout() const { return layout_; }
  std::uint32_t num_procs() const { return opts_.procs; }
  std::uint64_t round() const { return round_; }
  bool executed(core::NodeId v) const { return executed_[v] != 0; }
  /// The node a processor will execute next (kInvalidNode if idle).
  core::NodeId current(core::ProcId p) const { return current_[p]; }
  /// Deque contents, index 0 = top (steal end), back = bottom (owner end).
  const support::RingDeque<core::NodeId>& deque_of(core::ProcId p) const {
    return deques_[p];
  }
  bool deque_empty(core::ProcId p) const { return deques_[p].empty(); }
  /// Number of nodes executed so far.
  std::size_t executed_count() const { return executed_count_; }

 private:
  void execute(core::ProcId p, core::NodeId v);
  void try_steal(core::ProcId p);
  /// (Re)fills the run state in place: pending counts, executed marks,
  /// deque/cache contents, counters, and a fresh SimResult.
  void reset_state();

  const core::Graph& g_;
  /// Flat SoA/CSR view of g_; every per-node query in the execution loop
  /// (successors, kinds, blocks, corresponding forks) is an indexed load.
  core::GraphLayout layout_;
  SimOptions opts_;
  ScheduleController* controller_;
  std::unique_ptr<RandomController> owned_controller_;

  std::vector<std::uint32_t> pending_;
  std::vector<char> executed_;
  std::vector<core::NodeId> current_;
  std::vector<support::RingDeque<core::NodeId>> deques_;
  std::vector<std::unique_ptr<cache::CacheModel>> caches_;
  std::size_t executed_count_ = 0;
  std::uint64_t round_ = 0;
  bool ran_ = false;

  SimResult result_;
};

/// Convenience wrapper: simulate with the given options/controller.
SimResult simulate(const core::Graph& g, const SimOptions& opts,
                   ScheduleController* controller = nullptr);

}  // namespace wsf::sched
