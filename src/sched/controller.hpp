// Schedule controllers: who runs, who sleeps, who steals from whom.
//
// The paper's upper bounds (Theorems 8, 12, 16, 18) hold in expectation over
// random work stealing, which RandomController models (with optional stall
// injection — the bounds are robust to adversarial delays). The lower bounds
// (Theorems 9, 10) are proved with explicit adversarial executions ("p2
// falls asleep before executing w…"), which ScriptController reproduces by
// reacting to role-tagged nodes.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/ids.hpp"
#include "core/policy.hpp"
#include "support/rng.hpp"

namespace wsf::sched {

class Simulator;

/// Decides processor availability and steal victims during a simulation.
/// Controllers observe the simulation through the Simulator's const
/// interface and must be deterministic for a given seed.
class ScheduleController {
 public:
  virtual ~ScheduleController() = default;

  /// Called once before the first round.
  virtual void on_start(const Simulator& sim);

  /// Whether processor p takes an action this round.
  virtual bool awake(const Simulator& sim, core::ProcId p);

  /// Victim for a steal attempt by `thief`; return core::kInvalidThread…
  /// (we reuse ProcId semantics: return thief itself to skip the attempt).
  virtual core::ProcId pick_victim(const Simulator& sim,
                                   core::ProcId thief) = 0;

  /// Notification: p executed node v (called after counters update).
  virtual void on_execute(const Simulator& sim, core::ProcId p,
                          core::NodeId v);

  /// Notification: thief stole node v from victim.
  virtual void on_steal(const Simulator& sim, core::ProcId thief,
                        core::ProcId victim, core::NodeId v);
};

/// Uniform random work stealing with optional stall injection, the model
/// behind the expectation bounds. Deterministic given the seed.
class RandomController : public ScheduleController {
 public:
  RandomController(std::uint64_t seed, double stall_prob,
                   bool steal_nonempty_only,
                   core::VictimPolicy victim_policy =
                       core::VictimPolicy::Uniform);

  /// Rewinds the random stream to a fresh seed, as if newly constructed —
  /// lets Simulator::reset reuse the controller across seed replicates.
  /// Last-victim affinity state is cleared too (on_start re-sizes it).
  void reseed(std::uint64_t seed) {
    rng_ = support::Xoshiro256(seed);
    last_victim_.clear();
  }

  void on_start(const Simulator& sim) override;
  bool awake(const Simulator& sim, core::ProcId p) override;
  core::ProcId pick_victim(const Simulator& sim, core::ProcId thief) override;
  void on_steal(const Simulator& sim, core::ProcId thief, core::ProcId victim,
                core::NodeId v) override;

 private:
  support::Xoshiro256 rng_;
  double stall_prob_;
  bool steal_nonempty_only_;
  core::VictimPolicy victim_policy_;
  /// Scratch for pick_victim's non-empty-deque scan, kept across rounds so
  /// the steal hot path stays allocation-free after the first call.
  std::vector<core::ProcId> candidates_;
  /// Per-thief last successful victim (VictimPolicy::LastVictim); sized at
  /// on_start. An entry equal to the thief's own index means "none yet".
  std::vector<core::ProcId> last_victim_;
};

/// Scripted adversarial controller driven by node roles. Rules:
///   * sleep_after(role, p): p goes to sleep right after the node tagged
///     `role` is executed (by anyone);
///   * wake_after(role, p): p wakes right after `role` executes;
///   * sleep_now(p): p starts asleep;
///   * prefer_victim(thief, victims...): steal priority order — the first
///     victim with a non-empty deque is chosen; with no preference (or all
///     preferred deques empty) falls back to the lowest-indexed non-empty
///     deque other than the thief.
/// Roles are resolved against the graph at on_start; unknown roles are an
/// error (the generators and scripts must agree).
class ScriptController : public ScheduleController {
 public:
  ScriptController& sleep_after(const std::string& role, core::ProcId p);
  ScriptController& wake_after(const std::string& role, core::ProcId p);
  ScriptController& sleep_now(core::ProcId p);
  ScriptController& prefer_victim(core::ProcId thief,
                                  std::vector<core::ProcId> victims);

  void on_start(const Simulator& sim) override;
  bool awake(const Simulator& sim, core::ProcId p) override;
  core::ProcId pick_victim(const Simulator& sim, core::ProcId thief) override;
  void on_execute(const Simulator& sim, core::ProcId p,
                  core::NodeId v) override;

 private:
  struct PendingRule {
    std::string role;
    core::ProcId proc;
    bool sleep;  // false = wake
  };
  std::vector<PendingRule> pending_rules_;
  std::vector<core::ProcId> initially_asleep_;
  std::unordered_map<core::ProcId, std::vector<core::ProcId>> victim_pref_;

  // Resolved at on_start:
  std::unordered_map<core::NodeId, std::vector<std::pair<core::ProcId, bool>>>
      triggers_;
  std::vector<char> asleep_;
};

}  // namespace wsf::sched
