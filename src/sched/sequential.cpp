#include "sched/sequential.hpp"

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "cache/cache.hpp"
#include "support/check.hpp"

namespace wsf::sched {

SeqResult run_sequential(const core::Graph& g, const SimOptions& opts) {
  const std::size_t n = g.num_nodes();
  SeqResult result;
  result.order.reserve(n);
  result.position.assign(n, 0);

  std::unique_ptr<cache::CacheModel> cache;
  if (opts.cache_lines > 0)
    cache = cache::make_cache(opts.cache_policy, opts.cache_lines);

  // pending[v] = predecessors not yet executed; a node is enabled when its
  // last predecessor executes.
  std::vector<std::uint32_t> pending(n);
  for (core::NodeId v = 0; v < static_cast<core::NodeId>(n); ++v)
    pending[v] = static_cast<std::uint32_t>(g.in_degree(v));

  std::vector<core::NodeId> deque;  // bottom = back (LIFO for the owner)
  core::NodeId current = g.root();

  while (true) {
    // ---- execute `current` ----
    const core::Node& node = g.node(current);
    if (cache && node.block != core::kNoBlock) {
      if (cache->access(node.block)) ++result.misses;
    }
    result.position[current] = static_cast<std::uint32_t>(result.order.size());
    result.order.push_back(current);

    // ---- collect children enabled by this execution ----
    core::HalfEdge enabled[2];
    int enabled_count = 0;
    for (std::uint8_t i = 0; i < node.out_count; ++i) {
      const core::NodeId succ = node.out[i].node;
      WSF_DCHECK(pending[succ] > 0);
      if (--pending[succ] == 0) enabled[enabled_count++] = node.out[i];
    }

    // ---- choose the next node (parsimonious discipline) ----
    if (enabled_count == 2) {
      // Deterministic choice: forks follow the fork policy; future parents
      // follow the touch-enable rule. enabled[0]/[1] kinds are distinct
      // unless both are touch edges (super-final producer), where order is
      // immaterial (the final node runs last anyway).
      int take = 0;
      if (g.is_fork(current)) {
        const bool take_future =
            opts.policy == core::ForkPolicy::FutureFirst;
        take = (enabled[0].kind == core::EdgeKind::Future) == take_future
                   ? 0
                   : 1;
      } else {
        const bool take_touch = opts.touch_enable == TouchEnable::TouchFirst;
        take = (enabled[0].kind == core::EdgeKind::Touch) == take_touch ? 0
                                                                        : 1;
      }
      deque.push_back(enabled[1 - take].node);
      current = enabled[take].node;
      continue;
    }
    if (enabled_count == 1) {
      current = enabled[0].node;
      continue;
    }
    // Nothing enabled: pop the bottom of the deque.
    if (deque.empty()) break;
    current = deque.back();
    deque.pop_back();
  }

  WSF_CHECK(result.order.size() == n,
            "sequential execution finished after "
                << result.order.size() << " of " << n
                << " nodes — the DAG is not well formed");
  return result;
}

}  // namespace wsf::sched
