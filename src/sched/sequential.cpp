#include "sched/sequential.hpp"

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "cache/cache.hpp"
#include "support/check.hpp"

namespace wsf::sched {

SeqResult run_sequential(const core::GraphLayout& layout,
                         const SimOptions& opts) {
  const std::size_t n = layout.num_nodes();
  SeqResult result;
  result.order.reserve(n);
  result.position.assign(n, 0);

  std::unique_ptr<cache::CacheModel> cache;
  if (opts.cache_lines > 0)
    cache = cache::make_cache(opts.cache_policy, opts.cache_lines);

  // pending[v] = predecessors not yet executed; a node is enabled when its
  // last predecessor executes.
  std::vector<std::uint32_t> pending(n);
  for (core::NodeId v = 0; v < static_cast<core::NodeId>(n); ++v)
    pending[v] = layout.in_degree(v);

  std::vector<core::NodeId> deque;  // bottom = back (LIFO for the owner)
  core::NodeId current = layout.root();

  while (true) {
    // ---- execute `current` ----
    const core::BlockId block = layout.block_of(current);
    if (cache && block != core::kNoBlock) {
      if (cache->access(block)) ++result.misses;
    }
    result.position[current] = static_cast<std::uint32_t>(result.order.size());
    result.order.push_back(current);

    // ---- collect children enabled by this execution ----
    core::HalfEdge enabled[2];
    int enabled_count = 0;
    for (const core::HalfEdge& out : layout.successors(current)) {
      WSF_DCHECK(pending[out.node] > 0);
      if (--pending[out.node] == 0) enabled[enabled_count++] = out;
    }

    // ---- choose the next node (parsimonious discipline) ----
    if (enabled_count == 2) {
      // Deterministic choice: forks follow the fork policy; future parents
      // follow the touch-enable rule. enabled[0]/[1] kinds are distinct
      // unless both are touch edges (super-final producer), where order is
      // immaterial (the final node runs last anyway).
      int take = 0;
      if (layout.is_fork(current)) {
        const bool take_future =
            opts.policy == core::ForkPolicy::FutureFirst;
        take = (enabled[0].kind == core::EdgeKind::Future) == take_future
                   ? 0
                   : 1;
      } else {
        const bool take_touch = opts.touch_enable == TouchEnable::TouchFirst;
        take = (enabled[0].kind == core::EdgeKind::Touch) == take_touch ? 0
                                                                        : 1;
      }
      deque.push_back(enabled[1 - take].node);
      current = enabled[take].node;
      continue;
    }
    if (enabled_count == 1) {
      current = enabled[0].node;
      continue;
    }
    // Nothing enabled: pop the bottom of the deque.
    if (deque.empty()) break;
    current = deque.back();
    deque.pop_back();
  }

  WSF_CHECK(result.order.size() == n,
            "sequential execution finished after "
                << result.order.size() << " of " << n
                << " nodes — the DAG is not well formed");
  return result;
}

SeqResult run_sequential(const core::Graph& g, const SimOptions& opts) {
  return run_sequential(core::GraphLayout(g), opts);
}

core::NodeOrder make_node_order(const core::Graph& g,
                                core::NodeOrderKind kind,
                                std::uint64_t seed) {
  switch (kind) {
    case core::NodeOrderKind::Construction:
      return core::construction_order(g);
    case core::NodeOrderKind::Dfs:
      return core::dfs_order(g);
    case core::NodeOrderKind::Random:
      return core::random_order(g, seed);
    case core::NodeOrderKind::Sequential: {
      // Canonical baseline walk: default SimOptions (future-first,
      // touch-first, no cache — cache settings cannot change the order).
      const SeqResult seq = run_sequential(g, SimOptions{});
      return core::order_from_sequence(g, core::NodeOrderKind::Sequential,
                                       seq.order);
    }
  }
  WSF_REQUIRE(false, "unknown node order kind");
  return core::construction_order(g);
}

}  // namespace wsf::sched
