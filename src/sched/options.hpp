// Configuration shared by the sequential executor and the work-stealing
// simulator.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/policy.hpp"
#include "support/check.hpp"

namespace wsf::sched {

/// What a processor does when executing a node enables both the node's
/// continuation child and its touch child (possible only at *interior*
/// future parents, which occur in local-touch computations and in the main
/// thread). The paper's single-touch proofs never hit this case because a
/// single-touch future parent is its thread's last node.
enum class TouchEnable {
  /// Continue into the enabled touch and push the continuation — models
  /// futures runtimes that eagerly resume a waiting consumer when the value
  /// is produced. Default.
  TouchFirst,
  /// Continue the producer's own thread and push the enabled touch.
  ContinuationFirst,
};

inline const char* to_string(TouchEnable t) {
  return t == TouchEnable::TouchFirst ? "touch-first" : "continuation-first";
}

inline TouchEnable touch_enable_from_string(const std::string& s) {
  if (s == "touch-first" || s == "touch") return TouchEnable::TouchFirst;
  if (s == "continuation-first" || s == "continuation")
    return TouchEnable::ContinuationFirst;
  WSF_REQUIRE(false, "unknown touch-enable rule '"
                         << s << "' (touch-first | continuation-first)");
  return TouchEnable::TouchFirst;
}

struct SimOptions {
  /// Number of simulated processors P.
  std::uint32_t procs = 1;
  /// Child choice at forks (the paper's central policy knob).
  core::ForkPolicy policy = core::ForkPolicy::FutureFirst;
  TouchEnable touch_enable = TouchEnable::TouchFirst;

  /// Seed for the default random schedule controller.
  std::uint64_t seed = 1;
  /// With the default controller, probability that an awake processor stalls
  /// for a round — injects schedule diversity so steals (and therefore
  /// deviations) actually happen; the paper's bounds hold under any such
  /// adversarial delays.
  double stall_prob = 0.0;
  /// Default controller only steals from victims with non-empty deques. In
  /// a real ABP scheduler failed attempts are still possible under races
  /// with the victim popping its own bottom, but this simulator is
  /// deterministic and round-sequential, so restricting to non-empty
  /// victims simply avoids pointless attempts; set to false for faithful
  /// uniform-victim ABP accounting, where attempts on empty deques count
  /// as failed_steals.
  bool steal_nonempty_only = true;

  /// How much a thief claims per successful steal: one node (the paper's
  /// parsimonious model) or up to half the victim's deque (the steal-half
  /// amortization). Extra claimed nodes land on the thief's own deque; the
  /// steal still costs one round.
  core::StealPolicy steal_policy = core::StealPolicy::One;
  /// How the default random controller picks victims: uniform random (the
  /// paper's model), last-victim affinity, or nearest-neighbor scan.
  core::VictimPolicy victim_policy = core::VictimPolicy::Uniform;

  /// Cache lines per processor (C); 0 disables cache simulation.
  std::size_t cache_lines = 0;
  /// Cache replacement policy ("lru", "fifo", "direct", "assocW").
  std::string cache_policy = "lru";

  /// When set (the default), SimResult records the full execution trace
  /// (proc_orders, global_order, executed_by, stolen_nodes). Counter-only
  /// runs — large sweeps that just need steals/steps/misses — clear it to
  /// skip all per-node trace allocation. Deviation counting needs traces,
  /// so run_experiment() forces it back on for its parallel run.
  bool record_trace = true;

  /// Safety valve against controller bugs: the simulator throws if the
  /// execution does not finish within this many rounds
  /// (0 = auto: (64 + 64·N)·P rounds).
  std::uint64_t max_steps = 0;
};

}  // namespace wsf::sched
