// Experiment harness: run the sequential baseline and a parallel execution
// under identical policy/cache settings, then report deviations and
// additional cache misses — the paper's two locality measures.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/deviation.hpp"
#include "core/graph.hpp"
#include "core/traversal.hpp"
#include "sched/options.hpp"
#include "sched/sequential.hpp"
#include "sched/simulator.hpp"

namespace wsf::sched {

/// Everything a bench row needs about one (graph, schedule) pair.
struct ExperimentResult {
  core::DagStats stats;
  SeqResult seq;
  SimResult par;
  core::DeviationReport deviations;
  /// Parallel misses minus sequential misses (can be negative in principle;
  /// the paper's measure of the locality cost of parallelism).
  std::int64_t additional_misses = 0;
};

/// Runs the full comparison. The controller (may be null = random) drives
/// only the parallel execution; the sequential baseline always uses the same
/// fork policy, touch-enable rule, and cache configuration.
ExperimentResult run_experiment(const core::Graph& g, const SimOptions& opts,
                                ScheduleController* controller = nullptr);

/// Renders the per-processor execution sequences with role labels and
/// deviation marks ('*') — a textual schedule view for small graphs.
/// Nodes beyond `max_nodes` per processor are elided.
std::string format_schedule(const core::Graph& g, const SimResult& par,
                            const core::DeviationReport& deviations,
                            std::size_t max_nodes = 64);

}  // namespace wsf::sched
