// Sequential (single-processor) execution of a computation DAG.
//
// The paper's baseline is the one-processor execution of the parsimonious
// work-stealing scheduler: a single deque, no steals. This file implements
// that executor directly (stack discipline, no processor machinery); the
// work-stealing simulator run at P=1 must produce exactly the same order,
// which tests/test_simulator.cpp verifies as a cross-check.
#pragma once

#include <cstdint>
#include <vector>

#include "core/graph.hpp"
#include "core/layout.hpp"
#include "sched/options.hpp"

namespace wsf::sched {

struct SeqResult {
  /// All nodes in execution order.
  std::vector<core::NodeId> order;
  /// position[v] = index of v in `order`.
  std::vector<std::uint32_t> position;
  /// Total cache misses (0 if cache simulation disabled).
  std::uint64_t misses = 0;
};

/// Executes the whole DAG on one processor under the given fork policy and
/// touch-enable rule, optionally simulating a cache of opts.cache_lines
/// lines. Only `policy`, `touch_enable`, `cache_lines` and `cache_policy`
/// of the options are consulted. The layout overload runs on an existing
/// SoA view; the Graph overload builds a transient one.
SeqResult run_sequential(const core::GraphLayout& layout,
                         const SimOptions& opts);
SeqResult run_sequential(const core::Graph& g, const SimOptions& opts);

/// Builds the NodeOrder of the given kind for g. The `sequential` order is
/// the execution order of the 1-processor baseline under the DEFAULT
/// options (future-first, touch-first) regardless of what policy an
/// experiment later sweeps — one canonical "as a sequential run walks
/// memory" layout per graph. `seed` is consulted only by `random`.
core::NodeOrder make_node_order(const core::Graph& g,
                                core::NodeOrderKind kind,
                                std::uint64_t seed = 1);

}  // namespace wsf::sched
