#include "sched/harness.hpp"

#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>

namespace wsf::sched {

std::string format_schedule(const core::Graph& g, const SimResult& par,
                            const core::DeviationReport& deviations,
                            std::size_t max_nodes) {
  std::ostringstream os;
  for (std::size_t p = 0; p < par.proc_orders.size(); ++p) {
    os << "p" << p << ":";
    const auto& order = par.proc_orders[p];
    const std::size_t shown = std::min(order.size(), max_nodes);
    for (std::size_t i = 0; i < shown; ++i) {
      const core::NodeId v = order[i];
      os << ' ';
      if (deviations.is_deviation[v]) os << '*';
      const std::string& role = g.role_of(v);
      if (!role.empty())
        os << role;
      else
        os << v;
    }
    if (shown < order.size())
      os << " … (+" << order.size() - shown << ")";
    os << "\n";
  }
  return os.str();
}

ExperimentResult run_experiment(const core::Graph& g, const SimOptions& opts,
                                ScheduleController* controller) {
  ExperimentResult r;
  r.stats = core::compute_stats(g);
  r.seq = run_sequential(g, opts);
  // Deviation counting compares per-processor orders against the sequential
  // order, so the parallel run always records its trace.
  SimOptions par_opts = opts;
  par_opts.record_trace = true;
  r.par = simulate(g, par_opts, controller);
  r.deviations = core::count_deviations(g, r.seq.order, r.par.proc_orders);
  r.additional_misses = static_cast<std::int64_t>(r.par.total_misses()) -
                        static_cast<std::int64_t>(r.seq.misses);
  return r;
}

}  // namespace wsf::sched
