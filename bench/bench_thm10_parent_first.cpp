// E3 — Theorem 10 (Figures 7(b), 8): parent-first on structured single-touch
// computations can pay Ω(t·T∞) deviations and Ω(C·t·T∞) additional misses,
// while the sequential execution stays at O(C + t) misses.
#include "bench_common.hpp"
#include "sched/controller.hpp"

using namespace wsf;

namespace {

sched::ExperimentResult run_one_steal(const core::Graph& g, std::size_t C) {
  sched::SimOptions opts;
  opts.procs = 2;
  opts.policy = core::ForkPolicy::ParentFirst;
  opts.cache_lines = C;
  sched::ScriptController ctrl;
  ctrl.sleep_after("s[1]", 1).prefer_victim(1, {0});
  return sched::run_experiment(g, opts, &ctrl);
}

void part_fig7b(std::size_t C) {
  bench::print_header(
      "E3a — Figure 7(b) parity chain, parent-first, ONE steal of s1",
      "one steal at the start flips every stage and delivers the tail "
      "deviated: Ω(T∞) deviations, Ω(C·T∞) additional misses; sequential "
      "misses stay O(C + k)");
  support::Table table({"k", "n", "span", "seq miss", "add'l miss",
                        "deviations", "steals", "addl/(C*n)"});
  std::vector<double> ns, addl;
  for (std::uint32_t n : {8, 16, 32, 64}) {
    const std::uint32_t k = n / 2;
    auto gen = graphs::fig7b(k, n, C);
    const auto r = run_one_steal(gen.graph, C);
    table.row()
        .add(static_cast<std::uint64_t>(k))
        .add(static_cast<std::uint64_t>(n))
        .add(static_cast<std::uint64_t>(r.stats.span))
        .add(r.seq.misses)
        .add(r.additional_misses)
        .add(static_cast<std::uint64_t>(r.deviations.deviations))
        .add(r.par.steals)
        .add(static_cast<double>(r.additional_misses) /
             (static_cast<double>(C) * n));
    ns.push_back(n);
    addl.push_back(static_cast<double>(r.additional_misses));
  }
  table.print("");
  bench::print_exponent("additional misses vs n (∝ T∞)", ns, addl, 1.0,
                        0.3);
}

void part_fig8(std::size_t C) {
  bench::print_header(
      "E3b — Figure 8 branching tree, parent-first, ONE steal of s1",
      "t = Θ(2^depth) touches; deviations Ω(t·n) and additional misses "
      "Ω(C·t·n) from a single steal; sequential misses O(C + t)");
  support::Table table({"depth", "t", "n", "span", "seq miss", "add'l miss",
                        "deviations", "dev/(t*n)", "addl/(C*t*n)"});
  std::vector<double> ts, devs, addl;
  const std::uint32_t n = 16;
  for (std::uint32_t depth : {1, 2, 3, 4, 5}) {
    auto gen = graphs::fig8(depth, n, C);
    const auto r = run_one_steal(gen.graph, C);
    const auto leaves = static_cast<double>(1u << depth);
    table.row()
        .add(static_cast<std::uint64_t>(depth))
        .add(static_cast<std::uint64_t>(r.stats.touches))
        .add(static_cast<std::uint64_t>(n))
        .add(static_cast<std::uint64_t>(r.stats.span))
        .add(r.seq.misses)
        .add(r.additional_misses)
        .add(static_cast<std::uint64_t>(r.deviations.deviations))
        .add(static_cast<double>(r.deviations.deviations) / (leaves * n))
        .add(static_cast<double>(r.additional_misses) /
             (static_cast<double>(C) * leaves * n));
    ts.push_back(leaves);
    devs.push_back(static_cast<double>(r.deviations.deviations));
    addl.push_back(static_cast<double>(r.additional_misses));
  }
  table.print("");
  bench::print_exponent("deviations vs t", ts, devs, 1.0, 0.3);
  bench::print_exponent("additional misses vs t", ts, addl, 1.0, 0.3);
}

void part_policy_contrast(std::size_t C) {
  bench::print_header(
      "E3c — the same DAG under future-first (Section 5.1 vs 5.2)",
      "the future-first policy avoids the Theorem 10 blowup on the same "
      "graphs (upper bound O(C·P·T∞²) with tiny constants here)");
  support::Table table({"graph", "policy", "seq miss", "mean add'l miss",
                        "mean deviations", "mean steals"});
  for (std::uint32_t depth : {3u}) {
    auto gen = graphs::fig8(depth, 16, C);
    for (auto policy :
         {core::ForkPolicy::ParentFirst, core::ForkPolicy::FutureFirst}) {
      sched::SimOptions opts;
      opts.procs = 2;
      opts.policy = policy;
      opts.cache_lines = C;
      opts.stall_prob = 0.2;  // random work stealing with delays, 12 seeds
      const auto m = bench::mean_over_seeds(gen.graph, opts, 12);
      table.row()
          .add("fig8(d=3)")
          .add(to_string(policy))
          .add(m.seq_misses)
          .add(m.additional_misses)
          .add(m.deviations)
          .add(m.steals);
    }
  }
  table.print("");
}

}  // namespace

int main(int argc, char** argv) {
  support::ArgParser args(
      "bench_thm10_parent_first — regenerate the Theorem 10 / Figures 7–8 "
      "series");
  auto& cache = args.add_int("cache-lines", 16, "cache lines C");
  if (!args.parse(argc, argv)) return 0;
  const auto C = static_cast<std::size_t>(cache.value);
  part_fig7b(C);
  part_fig8(C);
  part_policy_contrast(C);
  return 0;
}
