// Shared helpers for the experiment benches: each bench regenerates the
// series for one paper claim and prints an aligned table plus a shape
// verdict. Absolute constants are ours; the *shape* (growth exponents,
// who wins, crossovers) is the reproduction target.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/bounds.hpp"
#include "core/classify.hpp"
#include "exp/sweep.hpp"
#include "graphs/generators.hpp"
#include "sched/harness.hpp"
#include "support/cli.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace wsf::bench {

inline void print_header(const std::string& id, const std::string& claim) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", id.c_str());
  std::printf("Claim: %s\n", claim.c_str());
  std::printf("==============================================================\n");
}

/// Prints the measured log-log growth exponent of ys against xs along with
/// the expectation, so the shape check is explicit in the output.
inline void print_exponent(const std::string& what,
                           const std::vector<double>& xs,
                           const std::vector<double>& ys,
                           double expected_exponent, double tolerance) {
  std::vector<double> fx, fy;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (xs[i] > 0 && ys[i] > 0) {
      fx.push_back(xs[i]);
      fy.push_back(ys[i]);
    }
  }
  if (fx.size() < 2) {
    std::printf("shape: %s — not enough positive samples to fit\n",
                what.c_str());
    return;
  }
  const auto fit = support::fit_loglog(fx, fy);
  const bool ok = fit.slope >= expected_exponent - tolerance &&
                  fit.slope <= expected_exponent + tolerance;
  std::printf("shape: %s grows with exponent %.2f (expected ~%.1f, r2=%.3f) "
              "=> %s\n",
              what.c_str(), fit.slope, expected_exponent, fit.r2,
              ok ? "OK" : "MISMATCH");
}

/// Mean over `seeds` random-work-stealing runs of the experiment. A thin
/// view over exp::run_replicates (seeds 1…seeds) so every bench aggregates
/// through the same subsystem wsf-sweep uses.
struct MeanExperiment {
  double deviations = 0;
  double additional_misses = 0;
  double steals = 0;
  double seq_misses = 0;
  std::uint64_t span = 0;
  std::size_t touches = 0;
  std::size_t nodes = 0;
};

inline MeanExperiment mean_over_seeds(const core::Graph& g,
                                      const sched::SimOptions& opts,
                                      std::uint64_t seeds) {
  const auto cell = exp::run_replicates(g, opts, /*seed_base=*/1, seeds);
  MeanExperiment m;
  m.deviations = cell.deviations.mean();
  m.additional_misses = cell.additional_misses.mean();
  m.steals = cell.steals.mean();
  m.seq_misses = cell.seq_misses.mean();
  m.span = cell.stats.span;
  m.touches = cell.stats.touches;
  m.nodes = cell.stats.nodes;
  return m;
}

}  // namespace wsf::bench
