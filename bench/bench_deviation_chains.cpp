// E14 (extension) — the deviation chains of Theorem 8's proof, measured:
// every steal roots at most one chain of touch deviations, and chains are
// bounded by T∞. On the fig6a gadget one steal roots one chain of length
// ≈ m; on random DAGs chains stay short.
#include "bench_common.hpp"
#include "graphs/fig6_controller.hpp"

using namespace wsf;

int main(int argc, char** argv) {
  support::ArgParser args(
      "bench_deviation_chains — Theorem 8's chain structure, measured");
  auto& seeds = args.add_int("seeds", 10, "random schedules per row");
  if (!args.parse(argc, argv)) return 0;
  const auto S = static_cast<std::uint64_t>(seeds.value);

  bench::print_header(
      "E14 — deviation chains (Theorem 8 proof structure)",
      "each steal roots one chain of touch deviations; chain length ≤ T∞; "
      "total touch deviations ≈ sum of chain lengths");

  {
    support::Table table({"m", "steals", "chains", "longest", "sum lengths",
                          "touch devs"});
    for (std::uint32_t m : {8, 16, 32, 64}) {
      auto gen = graphs::fig6a(m, 0);
      sched::SimOptions opts;
      opts.procs = 2;
      opts.policy = core::ForkPolicy::FutureFirst;
      graphs::Fig6Controller ctrl;
      const auto r = sched::run_experiment(gen.graph, opts, &ctrl);
      const auto chains = core::deviation_chains(
          gen.graph, r.deviations, r.par.stolen_nodes);
      std::size_t longest = 0, total = 0;
      for (const auto& c : chains) {
        longest = std::max(longest, c.touches.size());
        total += c.touches.size();
      }
      table.row()
          .add(static_cast<std::uint64_t>(m))
          .add(r.par.steals)
          .add(chains.size())
          .add(longest)
          .add(total)
          .add(r.deviations.touch_deviations);
    }
    table.print("fig6a (one scripted steal):");
  }

  {
    support::Table t2({"nodes", "T∞", "P", "mean steals",
                       "mean longest chain", "mean touch devs",
                       "mean chain sum"});
    for (std::uint32_t procs : {2, 8}) {
      graphs::RandomDagParams gp;
      gp.seed = 31;
      gp.target_nodes = 3000;
      const auto gen = graphs::random_single_touch(gp);
      double longest = 0, touch_devs = 0, steals = 0, sum = 0;
      std::uint64_t span = 0;
      for (std::uint64_t s = 1; s <= S; ++s) {
        sched::SimOptions opts;
        opts.procs = procs;
        opts.policy = core::ForkPolicy::FutureFirst;
        opts.seed = s;
        opts.stall_prob = 0.2;
        const auto r = sched::run_experiment(gen.graph, opts);
        const auto chains = core::deviation_chains(
            gen.graph, r.deviations, r.par.stolen_nodes);
        std::size_t lmax = 0, lsum = 0;
        for (const auto& c : chains) {
          lmax = std::max(lmax, c.touches.size());
          lsum += c.touches.size();
        }
        longest += static_cast<double>(lmax);
        sum += static_cast<double>(lsum);
        touch_devs += static_cast<double>(r.deviations.touch_deviations);
        steals += static_cast<double>(r.par.steals);
        span = r.stats.span;
      }
      const auto n = static_cast<double>(S);
      t2.row()
          .add(gen.graph.num_nodes())
          .add(span)
          .add(static_cast<std::uint64_t>(procs))
          .add(steals / n)
          .add(longest / n)
          .add(touch_devs / n)
          .add(sum / n);
    }
    t2.print("random single-touch DAGs:");
  }
  return 0;
}
