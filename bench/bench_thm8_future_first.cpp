// E1 — Theorem 8: future-first work stealing on structured single-touch
// computations incurs O(P·T∞) steals in expectation, O(P·T∞²) deviations,
// and O(C·P·T∞²) additional misses. This bench measures all three on random
// structured single-touch DAGs under randomized schedules with stall
// injection, and reports the measured/bound ratios (which must stay far
// below 1 and not grow with P).
#include "bench_common.hpp"

using namespace wsf;

namespace {

void sweep_procs(std::size_t C, std::uint64_t seeds) {
  bench::print_header(
      "E1a — Theorem 8 upper bound, sweep P (random single-touch DAGs)",
      "deviations = O(P·T∞²), additional misses = O(C·P·T∞²), steals = "
      "O(P·T∞); ratios to the bounds must stay << 1 and not grow with P");
  support::Table table({"P", "nodes", "T∞", "t", "mean steals",
                        "mean devs", "mean add'l miss",
                        "steals/(P*T)", "devs/(P*T^2)", "addl/(C*P*T^2)"});
  graphs::RandomDagParams gp;
  gp.seed = 1234;
  gp.target_nodes = 3000;
  gp.blocks = C * 2;
  const auto gen = graphs::random_single_touch(gp);
  for (std::uint32_t procs : {2, 4, 8, 16}) {
    sched::SimOptions opts;
    opts.procs = procs;
    opts.policy = core::ForkPolicy::FutureFirst;
    opts.cache_lines = C;
    opts.stall_prob = 0.2;
    const auto m = bench::mean_over_seeds(gen.graph, opts, seeds);
    table.row()
        .add(static_cast<std::uint64_t>(procs))
        .add(m.nodes)
        .add(static_cast<std::uint64_t>(m.span))
        .add(m.touches)
        .add(m.steals)
        .add(m.deviations)
        .add(m.additional_misses)
        .add(m.steals / core::abp_steal_bound(procs, m.span))
        .add(m.deviations / core::structured_deviation_bound(procs, m.span))
        .add(m.additional_misses /
             core::structured_miss_bound(C, procs, m.span));
  }
  table.print("");
}

void sweep_size(std::size_t C, std::uint64_t seeds) {
  bench::print_header(
      "E1b — Theorem 8 upper bound, sweep DAG size at P = 8",
      "the deviation/bound and miss/bound ratios must not grow with T∞");
  support::Table table({"nodes", "T∞", "mean steals", "mean devs",
                        "mean add'l miss", "devs/(P*T^2)",
                        "addl/(C*P*T^2)"});
  for (std::size_t target : {500u, 1000u, 2000u, 4000u, 8000u}) {
    graphs::RandomDagParams gp;
    gp.seed = 99 + target;
    gp.target_nodes = target;
    gp.blocks = C * 2;
    const auto gen = graphs::random_single_touch(gp);
    sched::SimOptions opts;
    opts.procs = 8;
    opts.policy = core::ForkPolicy::FutureFirst;
    opts.cache_lines = C;
    opts.stall_prob = 0.2;
    const auto m = bench::mean_over_seeds(gen.graph, opts, seeds);
    table.row()
        .add(m.nodes)
        .add(static_cast<std::uint64_t>(m.span))
        .add(m.steals)
        .add(m.deviations)
        .add(m.additional_misses)
        .add(m.deviations / core::structured_deviation_bound(8, m.span))
        .add(m.additional_misses / core::structured_miss_bound(C, 8, m.span));
  }
  table.print("");
  std::printf(
      "note: only touches and fork children may deviate under Theorem 8's\n"
      "argument; tests/test_deviation.cpp asserts the breakdown exactly.\n");
}

}  // namespace

int main(int argc, char** argv) {
  support::ArgParser args(
      "bench_thm8_future_first — Theorem 8 expectation bounds");
  auto& cache = args.add_int("cache-lines", 16, "cache lines C");
  auto& seeds = args.add_int("seeds", 10, "random schedules per row");
  if (!args.parse(argc, argv)) return 0;
  sweep_procs(static_cast<std::size_t>(cache.value),
              static_cast<std::uint64_t>(seeds.value));
  sweep_size(static_cast<std::size_t>(cache.value),
             static_cast<std::uint64_t>(seeds.value));
  return 0;
}
