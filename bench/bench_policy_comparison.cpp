// E8 — the paper's second contribution: on structured computations,
// choosing the FUTURE thread first at forks gives better cache locality
// than choosing the parent thread first. Head-to-head on every family.
//
// Built as a demonstration of the exp::analysis pipeline: raw per-seed
// rows go into one long table, group_by aggregates the replicates, pivot
// reshapes policies into columns, and with_ratio derives the pf/ff
// comparison — the same ops wsf-plot uses on sweep CSVs.
#include "bench_common.hpp"
#include "exp/analysis.hpp"
#include "graphs/registry.hpp"

using namespace wsf;
namespace an = exp::analysis;

int main(int argc, char** argv) {
  support::ArgParser args(
      "bench_policy_comparison — future-first vs parent-first across "
      "families");
  auto& cache = args.add_int("cache-lines", 16, "cache lines C");
  auto& seeds = args.add_int("seeds", 12, "random schedules per cell");
  auto& procs = args.add_int("procs", 4, "simulated processors");
  if (!args.parse(argc, argv)) return 0;
  const auto C = static_cast<std::size_t>(cache.value);
  const auto S = static_cast<std::uint64_t>(seeds.value);
  const auto P = static_cast<std::uint32_t>(procs.value);

  bench::print_header(
      "E8 — future-first vs parent-first (Sections 5.1 vs 5.2)",
      "on structured computations future-first must not lose, and on the "
      "touch-heavy constructions it wins by growing factors");
  struct Fam {
    const char* name;
    graphs::RegistryParams params;
  };
  std::vector<Fam> fams = {
      {"forkjoin", {.size = 7, .size2 = 2, .cache_lines = C}},
      {"fib", {.size = 14, .size2 = 0, .cache_lines = C}},
      {"future-chain", {.size = 24, .size2 = 2, .cache_lines = C}},
      {"pipeline", {.size = 4, .size2 = 24, .cache_lines = C}},
      {"fig7a", {.size = 32, .size2 = 0, .cache_lines = C}},
      {"fig7b", {.size = 16, .size2 = 32, .cache_lines = C}},
      {"fig8", {.size = 4, .size2 = 16, .cache_lines = C}},
      {"random-single-touch", {.size = 40, .size2 = 0, .cache_lines = C}},
      {"random-local-touch", {.size = 40, .size2 = 0, .cache_lines = C}},
  };

  // One long row per (family, policy, seed): the raw observations every
  // downstream table is derived from relationally.
  support::Table raw({"family", "nodes", "t", "policy", "seed",
                      "deviations", "additional_misses"});
  for (const auto& fam : fams) {
    const auto gen = graphs::make_named(fam.name, fam.params);
    for (auto policy :
         {core::ForkPolicy::FutureFirst, core::ForkPolicy::ParentFirst}) {
      sched::SimOptions opts;
      opts.procs = P;
      opts.policy = policy;
      opts.cache_lines = C;
      opts.stall_prob = 0.25;
      for (std::uint64_t k = 1; k <= S; ++k) {
        const auto cell = exp::run_replicates(gen.graph, opts, k, 1);
        raw.row()
            .add(fam.name)
            .add(cell.stats.nodes)
            .add(cell.stats.touches)
            .add(to_string(policy))
            .add(k)
            .add(cell.deviations.mean())
            .add(cell.additional_misses.mean());
      }
    }
  }

  // Replicates → means, policies → columns, comparison → derived ratio.
  const support::Table means = an::group_by(
      raw, {"family", "nodes", "t", "policy"},
      {{"deviations", an::Agg::Mean, "devs"},
       {"additional_misses", an::Agg::Mean, "misses"}});
  const support::Table devs =
      an::pivot(means, {"family", "nodes", "t"}, "policy", "devs");
  support::Table misses =
      an::pivot(means, {"family", "nodes", "t"}, "policy", "misses");
  misses = an::with_ratio(misses, "pf/ff miss", "parent-first",
                          "future-first");
  devs.print("deviations (mean over seeds)");
  misses.print("additional misses (mean over seeds)");
  std::printf(
      "reading: 'pf/ff miss' > 1 means parent-first pays more additional\n"
      "misses than future-first on the same DAG under the same schedules\n"
      "(blank when future-first pays none at all).\n");
  return 0;
}
