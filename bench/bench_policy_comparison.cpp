// E8 — the paper's second contribution: on structured computations,
// choosing the FUTURE thread first at forks gives better cache locality
// than choosing the parent thread first. Head-to-head on every family.
#include "bench_common.hpp"
#include "graphs/registry.hpp"

using namespace wsf;

int main(int argc, char** argv) {
  support::ArgParser args(
      "bench_policy_comparison — future-first vs parent-first across "
      "families");
  auto& cache = args.add_int("cache-lines", 16, "cache lines C");
  auto& seeds = args.add_int("seeds", 12, "random schedules per cell");
  auto& procs = args.add_int("procs", 4, "simulated processors");
  if (!args.parse(argc, argv)) return 0;
  const auto C = static_cast<std::size_t>(cache.value);
  const auto S = static_cast<std::uint64_t>(seeds.value);
  const auto P = static_cast<std::uint32_t>(procs.value);

  bench::print_header(
      "E8 — future-first vs parent-first (Sections 5.1 vs 5.2)",
      "on structured computations future-first must not lose, and on the "
      "touch-heavy constructions it wins by growing factors");
  support::Table table({"family", "nodes", "t", "ff devs", "pf devs",
                        "ff add'l miss", "pf add'l miss", "pf/ff miss"});
  struct Fam {
    const char* name;
    graphs::RegistryParams params;
  };
  std::vector<Fam> fams = {
      {"forkjoin", {.size = 7, .size2 = 2, .cache_lines = C}},
      {"fib", {.size = 14, .size2 = 0, .cache_lines = C}},
      {"future-chain", {.size = 24, .size2 = 2, .cache_lines = C}},
      {"pipeline", {.size = 4, .size2 = 24, .cache_lines = C}},
      {"fig7a", {.size = 32, .size2 = 0, .cache_lines = C}},
      {"fig7b", {.size = 16, .size2 = 32, .cache_lines = C}},
      {"fig8", {.size = 4, .size2 = 16, .cache_lines = C}},
      {"random-single-touch", {.size = 40, .size2 = 0, .cache_lines = C}},
      {"random-local-touch", {.size = 40, .size2 = 0, .cache_lines = C}},
  };
  for (const auto& fam : fams) {
    const auto gen = graphs::make_named(fam.name, fam.params);
    bench::MeanExperiment results[2];
    int i = 0;
    for (auto policy :
         {core::ForkPolicy::FutureFirst, core::ForkPolicy::ParentFirst}) {
      sched::SimOptions opts;
      opts.procs = P;
      opts.policy = policy;
      opts.cache_lines = C;
      opts.stall_prob = 0.25;
      results[i++] = bench::mean_over_seeds(gen.graph, opts, S);
    }
    const double ff = std::max(results[0].additional_misses, 0.0);
    const double pf = std::max(results[1].additional_misses, 0.0);
    table.row()
        .add(fam.name)
        .add(results[0].nodes)
        .add(results[0].touches)
        .add(results[0].deviations)
        .add(results[1].deviations)
        .add(results[0].additional_misses)
        .add(results[1].additional_misses)
        .add(ff > 0 ? pf / ff : (pf > 0 ? 99.0 : 1.0));
  }
  table.print("");
  std::printf(
      "reading: 'pf/ff miss' > 1 means parent-first pays more additional\n"
      "misses than future-first on the same DAG under the same schedules.\n");
  return 0;
}
