// E6 — Theorem 12: structured *local-touch* computations (multi-future
// producers, e.g. pipelines) under future-first also stay within
// O(P·T∞²) deviations / O(C·P·T∞²) additional misses.
#include "bench_common.hpp"

using namespace wsf;

int main(int argc, char** argv) {
  support::ArgParser args(
      "bench_thm12_local_touch — Theorem 12 on pipelines and random "
      "local-touch DAGs");
  auto& cache = args.add_int("cache-lines", 16, "cache lines C");
  auto& seeds = args.add_int("seeds", 10, "random schedules per row");
  if (!args.parse(argc, argv)) return 0;
  const auto C = static_cast<std::size_t>(cache.value);
  const auto S = static_cast<std::uint64_t>(seeds.value);

  bench::print_header(
      "E6a — Theorem 12 on pipelines (stages x items), future-first, P=8",
      "deviations = O(P·T∞²); ratios must stay << 1");
  support::Table table({"stages", "items", "nodes", "T∞", "mean devs",
                        "mean add'l miss", "devs/(P*T^2)",
                        "addl/(C*P*T^2)"});
  for (std::uint32_t stages : {2, 4, 8}) {
    for (std::uint32_t items : {8, 32}) {
      const auto gen = graphs::pipeline(stages, items, C);
      sched::SimOptions opts;
      opts.procs = 8;
      opts.policy = core::ForkPolicy::FutureFirst;
      opts.cache_lines = C;
      opts.stall_prob = 0.2;
      const auto m = bench::mean_over_seeds(gen.graph, opts, S);
      table.row()
          .add(static_cast<std::uint64_t>(stages))
          .add(static_cast<std::uint64_t>(items))
          .add(m.nodes)
          .add(static_cast<std::uint64_t>(m.span))
          .add(m.deviations)
          .add(m.additional_misses)
          .add(m.deviations / core::structured_deviation_bound(8, m.span))
          .add(m.additional_misses /
               core::structured_miss_bound(C, 8, m.span));
    }
  }
  table.print("");

  bench::print_header(
      "E6b — Theorem 12 on random local-touch DAGs, future-first",
      "same bounds on arbitrary multi-future producers");
  support::Table t2({"nodes", "T∞", "P", "mean devs", "mean add'l miss",
                     "devs/(P*T^2)"});
  for (std::uint32_t procs : {2, 8}) {
    for (std::size_t target : {1000u, 4000u}) {
      graphs::RandomDagParams gp;
      gp.seed = 7 + target;
      gp.target_nodes = target;
      gp.blocks = C * 2;
      const auto gen = graphs::random_local_touch(gp);
      sched::SimOptions opts;
      opts.procs = procs;
      opts.policy = core::ForkPolicy::FutureFirst;
      opts.cache_lines = C;
      opts.stall_prob = 0.2;
      const auto m = bench::mean_over_seeds(gen.graph, opts, S);
      t2.row()
          .add(m.nodes)
          .add(static_cast<std::uint64_t>(m.span))
          .add(static_cast<std::uint64_t>(procs))
          .add(m.deviations)
          .add(m.additional_misses)
          .add(m.deviations /
               core::structured_deviation_bound(procs, m.span));
    }
  }
  t2.print("");
  return 0;
}
