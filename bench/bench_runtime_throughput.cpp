// E11 — the real runtime: fib / reduce / quicksort / pipeline workloads
// under both spawn policies, with the software schedule counters (steals,
// parked touches, migrations) reported alongside wall time. Uses
// google-benchmark. On a single-core host the timing differences are
// modest; the counters are the interesting series (future-first parks far
// less on structured code when workers are not starved).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "runtime/pool.hpp"

namespace {

using wsf::runtime::Future;
using wsf::runtime::RuntimeOptions;
using wsf::runtime::Scheduler;
using wsf::runtime::spawn;
using wsf::runtime::SpawnPolicy;

std::uint64_t fib_seq(std::uint64_t n) {
  return n < 2 ? n : fib_seq(n - 1) + fib_seq(n - 2);
}

std::uint64_t fib_par(std::uint64_t n, std::uint64_t cutoff) {
  if (n < cutoff) return fib_seq(n);
  auto left = spawn([=] { return fib_par(n - 1, cutoff); });
  const std::uint64_t right = fib_par(n - 2, cutoff);
  return left.touch() + right;
}

long reduce_par(const std::vector<int>& data, std::size_t lo, std::size_t hi,
                std::size_t grain) {
  if (hi - lo <= grain)
    return std::accumulate(data.begin() + static_cast<std::ptrdiff_t>(lo),
                           data.begin() + static_cast<std::ptrdiff_t>(hi),
                           0L);
  const std::size_t mid = lo + (hi - lo) / 2;
  auto left = spawn([&, lo, mid] { return reduce_par(data, lo, mid, grain); });
  const long right = reduce_par(data, mid, hi, grain);
  return left.touch() + right;
}

void qsort_par(std::vector<int>& v, std::ptrdiff_t lo, std::ptrdiff_t hi) {
  if (hi - lo < 2048) {
    std::sort(v.begin() + lo, v.begin() + hi);
    return;
  }
  const int pivot = v[lo + (hi - lo) / 2];
  const auto mid1 = std::partition(v.begin() + lo, v.begin() + hi,
                                   [&](int x) { return x < pivot; });
  const auto mid2 =
      std::partition(mid1, v.begin() + hi, [&](int x) { return x == pivot; });
  const std::ptrdiff_t m1 = mid1 - v.begin();
  const std::ptrdiff_t m2 = mid2 - v.begin();
  auto left = spawn([&v, lo, m1] { qsort_par(v, lo, m1); });
  qsort_par(v, m2, hi);
  left.touch();
}

SpawnPolicy policy_of(const benchmark::State& state) {
  return state.range(0) == 0 ? SpawnPolicy::FutureFirst
                             : SpawnPolicy::ParentFirst;
}

void report_counters(benchmark::State& state, const Scheduler& sched) {
  const auto total = sched.counters().total();
  state.counters["spawns"] = static_cast<double>(total.spawns);
  state.counters["steals"] = static_cast<double>(total.steals);
  state.counters["parked"] = static_cast<double>(total.parked_touches);
  state.counters["migrations"] = static_cast<double>(total.migrations);
}

void BM_Fib(benchmark::State& state) {
  RuntimeOptions opts;
  opts.workers = 2;
  opts.policy = policy_of(state);
  Scheduler sched(opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched.run([] { return fib_par(22, 12); }));
  }
  report_counters(state, sched);
  state.SetLabel(to_string(opts.policy));
}
BENCHMARK(BM_Fib)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_Reduce(benchmark::State& state) {
  RuntimeOptions opts;
  opts.workers = 2;
  opts.policy = policy_of(state);
  Scheduler sched(opts);
  std::vector<int> data(1 << 18);
  std::iota(data.begin(), data.end(), 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sched.run([&] { return reduce_par(data, 0, data.size(), 4096); }));
  }
  report_counters(state, sched);
  state.SetLabel(to_string(opts.policy));
}
BENCHMARK(BM_Reduce)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_Quicksort(benchmark::State& state) {
  RuntimeOptions opts;
  opts.workers = 2;
  opts.policy = policy_of(state);
  Scheduler sched(opts);
  std::vector<int> base(1 << 16);
  wsf::support::Xoshiro256 rng(7);
  for (auto& x : base) x = static_cast<int>(rng.next() & 0xffffff);
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<int> v = base;
    state.ResumeTiming();
    sched.run([&] {
      qsort_par(v, 0, static_cast<std::ptrdiff_t>(v.size()));
    });
    benchmark::DoNotOptimize(v.data());
  }
  report_counters(state, sched);
  state.SetLabel(to_string(opts.policy));
}
BENCHMARK(BM_Quicksort)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_PipelineFutures(benchmark::State& state) {
  // Figure 5(b)-style chain: each stage receives the previous stage's
  // future and touches it (the passing pattern the paper legitimizes).
  RuntimeOptions opts;
  opts.workers = 2;
  opts.policy = policy_of(state);
  Scheduler sched(opts);
  for (auto _ : state) {
    const int result = sched.run([] {
      Future<int> prev = spawn([] { return 0; });
      for (int i = 1; i <= 256; ++i) {
        prev = spawn([p = std::move(prev)]() mutable {
          return p.touch() + 1;
        });
      }
      return prev.touch();
    });
    benchmark::DoNotOptimize(result);
  }
  report_counters(state, sched);
  state.SetLabel(to_string(opts.policy));
}
BENCHMARK(BM_PipelineFutures)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_SpawnTouchOverhead(benchmark::State& state) {
  RuntimeOptions opts;
  opts.workers = 1;
  opts.policy = policy_of(state);
  Scheduler sched(opts);
  for (auto _ : state) {
    const int result = sched.run([] {
      int sum = 0;
      for (int i = 0; i < 1000; ++i) {
        auto f = spawn([i] { return i; });
        sum += f.touch();
      }
      return sum;
    });
    benchmark::DoNotOptimize(result);
  }
  report_counters(state, sched);
  state.SetLabel(to_string(opts.policy));
}
BENCHMARK(BM_SpawnTouchOverhead)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
