// Measures the Simulator reset/arena API: a counter-only replicate loop
// that recycles one simulator (reset per seed) versus constructing a fresh
// simulator per seed — the allocation traffic run_replicates used to pay
// on every sweep cell. Results must be identical; only the time differs.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>

#include "bench_common.hpp"
#include "graphs/registry.hpp"
#include "sched/simulator.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

using namespace wsf;

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  support::ArgParser args(
      "bench_sim_reuse — replicate-loop cost with and without the "
      "Simulator reset/arena API (counter-only runs, no traces)");
  auto& family = args.add_string("family", "forkjoin", "graph family");
  auto& size = args.add_int("size", 10, "primary size parameter");
  auto& size2 = args.add_int("size2", 6, "secondary size parameter");
  auto& procs = args.add_int("procs", 8, "simulated processors");
  auto& seeds = args.add_int("seeds", 200, "replicates per measurement");
  auto& stall = args.add_double("stall", 0.25, "stall probability");
  auto& format = args.add_string("format", "table", "table | csv | json");
  auto& out = args.add_string("out", "",
                              "write the rendered table to this file "
                              "instead of stdout");
  if (!args.parse(argc, argv)) return 0;
  WSF_REQUIRE(format.value == "table" || format.value == "csv" ||
                  format.value == "json",
              "unknown --format '" << format.value
                                   << "' (table | csv | json)");

  if (format.value == "table" && out.value.empty())
    bench::print_header(
        "bench_sim_reuse",
        "one sweep job recycles its simulator's pending/executed/deque "
        "allocations across seed replicates instead of reconstructing");

  graphs::RegistryParams params;
  params.size = static_cast<std::uint32_t>(size.value);
  params.size2 = static_cast<std::uint32_t>(size2.value);
  const auto gen = graphs::make_named(family.value, params);

  sched::SimOptions opts;
  opts.procs = static_cast<std::uint32_t>(procs.value);
  opts.stall_prob = stall.value;
  opts.record_trace = false;

  const auto n_seeds = static_cast<std::uint64_t>(seeds.value);

  // Fresh construction per seed (the pre-arena replicate loop).
  std::uint64_t fresh_steals = 0;
  const auto t_fresh = std::chrono::steady_clock::now();
  for (std::uint64_t seed = 1; seed <= n_seeds; ++seed) {
    sched::SimOptions per_seed = opts;
    per_seed.seed = seed;
    fresh_steals += sched::simulate(gen.graph, per_seed).steals;
  }
  const double fresh_ms = ms_since(t_fresh);

  // One simulator, reset per seed; run() still moves each result out.
  std::uint64_t warm_steals = 0;
  sched::SimOptions first = opts;
  first.seed = 1;
  const auto t_warm = std::chrono::steady_clock::now();
  {
    sched::Simulator sim(gen.graph, first);
    for (std::uint64_t seed = 1; seed <= n_seeds; ++seed) {
      if (seed != 1) sim.reset(seed);
      warm_steals += sim.run().steals;
    }
  }
  const double warm_ms = ms_since(t_warm);

  // The batched replicate loop run_replicates uses: one simulator, results
  // read in place, so even the per-run result vectors are recycled.
  std::uint64_t batch_steals = 0;
  const auto t_batch = std::chrono::steady_clock::now();
  {
    sched::Simulator sim(gen.graph, first);
    for (std::uint64_t seed = 1; seed <= n_seeds; ++seed) {
      if (seed != 1) sim.reset(seed);
      batch_steals += sim.run_in_place().steals;
    }
  }
  const double batch_ms = ms_since(t_batch);

  support::Table table({"variant", "nodes", "procs", "seeds", "total_ms",
                        "us_per_replicate", "total_steals"});
  const auto nodes = static_cast<std::uint64_t>(gen.graph.num_nodes());
  table.row()
      .add("construct-per-seed")
      .add(nodes)
      .add(static_cast<std::uint64_t>(opts.procs))
      .add(n_seeds)
      .add(fresh_ms)
      .add(fresh_ms * 1000.0 / static_cast<double>(n_seeds))
      .add(fresh_steals);
  table.row()
      .add("reset-arena")
      .add(nodes)
      .add(static_cast<std::uint64_t>(opts.procs))
      .add(n_seeds)
      .add(warm_ms)
      .add(warm_ms * 1000.0 / static_cast<double>(n_seeds))
      .add(warm_steals);
  table.row()
      .add("reset-arena+in-place")
      .add(nodes)
      .add(static_cast<std::uint64_t>(opts.procs))
      .add(n_seeds)
      .add(batch_ms)
      .add(batch_ms * 1000.0 / static_cast<double>(n_seeds))
      .add(batch_steals);
  if (format.value == "table" && out.value.empty()) {
    table.print("replicate-loop cost");
  } else {
    const std::string rendered = format.value == "csv"    ? table.to_csv()
                                 : format.value == "json" ? table.to_json()
                                                          : table.to_string();
    if (out.value.empty()) {
      std::fputs(rendered.c_str(), stdout);
    } else {
      std::ofstream file(out.value);
      WSF_REQUIRE(file.good(), "cannot open '" << out.value << "'");
      file << rendered;
      WSF_REQUIRE(file.good(), "write to '" << out.value << "' failed");
    }
  }

  const bool identical =
      warm_steals == fresh_steals && batch_steals == fresh_steals;
  if (format.value == "table" && out.value.empty())
    std::printf(
        "identical results: %s; arena speedup: %.2fx; batched speedup: "
        "%.2fx\n",
        identical ? "yes" : "NO (BUG)",
        warm_ms > 0 ? fresh_ms / warm_ms : 0.0,
        batch_ms > 0 ? fresh_ms / batch_ms : 0.0);
  return identical ? 0 : 1;
}
