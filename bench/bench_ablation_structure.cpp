// E13 (extension; paper §7 future work) — how far can the structure
// restrictions be weakened? Interpolates between Figure 4 (structured) and
// Figure 3 (unstructured) by forking a fraction of consumers before their
// producers, and measures what the discipline buys: premature touch checks
// appear as soon as any consumer is early, and deviations grow with the
// unstructured fraction.
#include "bench_common.hpp"

using namespace wsf;

int main(int argc, char** argv) {
  support::ArgParser args(
      "bench_ablation_structure — weaken the single-touch discipline");
  auto& pairs = args.add_int("pairs", 24, "producer/consumer pairs");
  auto& seeds = args.add_int("seeds", 16, "random schedules per cell");
  if (!args.parse(argc, argv)) return 0;
  const auto P = static_cast<std::uint32_t>(pairs.value);
  const auto S = static_cast<std::uint64_t>(seeds.value);

  bench::print_header(
      "E13 — structure ablation (Section 7)",
      "premature touch checks and deviations vs the fraction of consumers "
      "forked before their producers (0 = Figure 4, 1 = Figure 3)");
  support::Table table({"unstructured frac", "classifier", "mean devs",
                        "max premature", "mean premature"});
  for (double frac : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const auto gen = graphs::unstructured_mix(P, frac, /*delay=*/16,
                                              /*seed=*/7);
    const auto rep = core::classify(gen.graph);
    double mean_devs = 0, mean_prem = 0;
    std::uint64_t max_prem = 0;
    for (std::uint64_t s = 1; s <= S; ++s) {
      sched::SimOptions opts;
      opts.procs = 4;
      opts.policy = core::ForkPolicy::FutureFirst;
      opts.seed = s;
      opts.stall_prob = 0.3;
      const auto r = sched::run_experiment(gen.graph, opts);
      mean_devs += static_cast<double>(r.deviations.deviations);
      mean_prem += static_cast<double>(r.par.premature_touches);
      max_prem = std::max(max_prem, r.par.premature_touches);
    }
    table.row()
        .add(frac)
        .add(rep.single_touch ? "single-touch" : "NOT single-touch")
        .add(mean_devs / static_cast<double>(S))
        .add(max_prem)
        .add(mean_prem / static_cast<double>(S));
  }
  table.print("");
  std::printf(
      "reading: the moment any consumer precedes its producer the\n"
      "classifier rejects the DAG and premature checks appear — the static\n"
      "discipline exactly predicts the dynamic hazard.\n");
  return 0;
}
