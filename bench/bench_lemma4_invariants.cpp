// E12 — Lemmas 4 and 11: the sequential-order invariants behind every upper
// bound, checked across seeds (the gtest suite asserts them; this bench
// reports the sweep as a table for the experiment record).
#include "bench_common.hpp"
#include "graphs/registry.hpp"
#include "sched/sequential.hpp"

using namespace wsf;

namespace {

struct Violations {
  std::uint64_t order = 0;        // future parent after local parent
  std::uint64_t right_child = 0;  // right child not right after last node
};

Violations check_lemma4(const core::Graph& g) {
  sched::SimOptions opts;
  opts.policy = core::ForkPolicy::FutureFirst;
  const auto r = sched::run_sequential(g, opts);
  Violations v;
  for (core::NodeId touch : g.touch_nodes()) {
    if (r.position[g.future_parent_of(touch)] >=
        r.position[g.local_parent_of(touch)])
      ++v.order;
    const core::NodeId fork = g.corresponding_fork_of(touch);
    if (fork == core::kInvalidNode) continue;
    if (r.position[g.fork_right_child(fork)] !=
        r.position[g.future_parent_of(touch)] + 1)
      ++v.right_child;
  }
  return v;
}

Violations check_lemma11(const core::Graph& g) {
  sched::SimOptions opts;
  opts.policy = core::ForkPolicy::FutureFirst;
  const auto r = sched::run_sequential(g, opts);
  Violations v;
  for (core::NodeId touch : g.touch_nodes()) {
    if (r.position[g.future_parent_of(touch)] >=
        r.position[g.local_parent_of(touch)])
      ++v.order;
  }
  for (core::ThreadId t = 1; t < g.num_threads(); ++t) {
    const auto& info = g.thread_info(t);
    if (r.position[g.fork_right_child(info.fork_node)] !=
        r.position[info.last_node] + 1)
      ++v.right_child;
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  support::ArgParser args(
      "bench_lemma4_invariants — sequential order invariants over seeds");
  auto& seeds = args.add_int("seeds", 50, "random DAGs per family");
  if (!args.parse(argc, argv)) return 0;
  const auto S = static_cast<std::uint64_t>(seeds.value);

  bench::print_header(
      "E12 — Lemma 4 / Lemma 11 sequential order invariants",
      "in the sequential future-first execution, every touch's future "
      "parent executes before its local parent, and the corresponding "
      "fork's right child immediately follows the future thread's last "
      "node; zero violations expected");

  support::Table table({"family", "DAGs", "touches checked",
                        "order violations", "right-child violations"});
  {
    std::uint64_t touches = 0;
    Violations total;
    for (std::uint64_t s = 1; s <= S; ++s) {
      graphs::RandomDagParams p;
      p.seed = s;
      p.target_nodes = 600;
      const auto gen = graphs::random_single_touch(p);
      const auto v = check_lemma4(gen.graph);
      total.order += v.order;
      total.right_child += v.right_child;
      touches += gen.graph.touch_nodes().size();
    }
    table.row()
        .add("random single-touch (Lemma 4)")
        .add(S)
        .add(touches)
        .add(total.order)
        .add(total.right_child);
  }
  {
    std::uint64_t touches = 0;
    Violations total;
    for (std::uint64_t s = 1; s <= S; ++s) {
      graphs::RandomDagParams p;
      p.seed = s;
      p.target_nodes = 600;
      const auto gen = graphs::random_local_touch(p);
      const auto v = check_lemma11(gen.graph);
      total.order += v.order;
      total.right_child += v.right_child;
      touches += gen.graph.touch_nodes().size();
    }
    table.row()
        .add("random local-touch (Lemma 11)")
        .add(S)
        .add(touches)
        .add(total.order)
        .add(total.right_child);
  }
  {
    std::uint64_t touches = 0;
    Violations total;
    std::uint64_t count = 0;
    for (const char* name : {"fig4", "fig5a", "fig5b", "fig6a", "fig6b",
                             "fig7a", "forkjoin", "fib", "future-chain"}) {
      graphs::RegistryParams p;
      p.size = 6;
      p.size2 = 4;
      const auto gen = graphs::make_named(name, p);
      const auto v = check_lemma4(gen.graph);
      total.order += v.order;
      total.right_child += v.right_child;
      touches += gen.graph.touch_nodes().size();
      ++count;
    }
    table.row()
        .add("paper constructions (Lemma 4)")
        .add(count)
        .add(touches)
        .add(total.order)
        .add(total.right_child);
  }
  table.print("");
  return 0;
}
