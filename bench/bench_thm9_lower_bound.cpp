// E2 — Theorem 9 (Figure 6): the future-first upper bound is tight.
//
// Regenerates three series:
//   (a) fig6a: one steal on one gadget — deviations Θ(m), additional misses
//       Θ(m·C), sequential misses O(m + C);
//   (b) fig6b: k gadgets, 3 processors — deviations Θ(k·m) = Θ(T∞²) for
//       constant P (with m = k);
//   (c) fig6c: `groups` parallel spines, 3·groups processors — deviations
//       Ω(P·T∞²) overall.
#include "bench_common.hpp"
#include "graphs/fig6_controller.hpp"

using namespace wsf;

namespace {

void part_a(std::size_t cache_lines) {
  bench::print_header(
      "E2a — Theorem 9 gadget (Figure 6(a)), future-first, one steal",
      "deviations = Θ(m); additional misses = Θ(m·C); sequential stays "
      "O(m + C)");
  support::Table table({"m", "C", "span", "seq miss", "par miss",
                        "add'l miss", "deviations", "steals",
                        "dev/m", "addl/(m*C)"});
  std::vector<double> ms, devs, addl;
  for (std::uint32_t m : {4, 8, 16, 32, 64, 128}) {
    auto gen = graphs::fig6a(m, cache_lines);
    sched::SimOptions opts;
    opts.procs = 2;
    opts.policy = core::ForkPolicy::FutureFirst;
    opts.cache_lines = cache_lines;
    graphs::Fig6Controller ctrl;
    const auto r = sched::run_experiment(gen.graph, opts, &ctrl);
    table.row()
        .add(static_cast<std::uint64_t>(m))
        .add(static_cast<std::uint64_t>(cache_lines))
        .add(static_cast<std::uint64_t>(r.stats.span))
        .add(r.seq.misses)
        .add(r.par.total_misses())
        .add(r.additional_misses)
        .add(static_cast<std::uint64_t>(r.deviations.deviations))
        .add(r.par.steals)
        .add(static_cast<double>(r.deviations.deviations) / m)
        .add(static_cast<double>(r.additional_misses) /
             (static_cast<double>(m) * static_cast<double>(cache_lines)));
    ms.push_back(m);
    devs.push_back(static_cast<double>(r.deviations.deviations));
    addl.push_back(static_cast<double>(r.additional_misses));
  }
  table.print("");
  bench::print_exponent("deviations vs m", ms, devs, 1.0, 0.25);
  bench::print_exponent("additional misses vs m", ms, addl, 1.0, 0.25);
}

void part_b() {
  bench::print_header(
      "E2b — Theorem 9 spine (Figure 6(b)), 3 processors",
      "with m = k, deviations = Θ(k²) = Θ(T∞²) at constant P");
  support::Table table({"k=m", "span", "deviations", "steals",
                        "dev/k^2"});
  std::vector<double> ks, devs;
  for (std::uint32_t k : {2, 4, 8, 16, 24}) {
    auto gen = graphs::fig6b(k, k, 0);
    sched::SimOptions opts;
    opts.procs = 3;
    opts.policy = core::ForkPolicy::FutureFirst;
    graphs::Fig6Controller ctrl;
    const auto r = sched::run_experiment(gen.graph, opts, &ctrl);
    table.row()
        .add(static_cast<std::uint64_t>(k))
        .add(static_cast<std::uint64_t>(r.stats.span))
        .add(static_cast<std::uint64_t>(r.deviations.deviations))
        .add(r.par.steals)
        .add(static_cast<double>(r.deviations.deviations) /
             (static_cast<double>(k) * k));
    ks.push_back(k);
    devs.push_back(static_cast<double>(r.deviations.deviations));
  }
  table.print("");
  bench::print_exponent("deviations vs k", ks, devs, 2.0, 0.35);
}

void part_c() {
  bench::print_header(
      "E2c — Theorem 9 composition (Figure 6(c)), 3·groups processors",
      "deviations = Ω(P·T∞²): linear in groups at fixed k, m");
  const std::uint32_t k = 6, m = 6;
  support::Table table({"groups", "P", "span", "deviations", "steals",
                        "dev/(groups*k*m)"});
  std::vector<double> gs, devs;
  for (std::uint32_t groups : {1, 2, 4, 8}) {
    auto gen = graphs::fig6c(groups, k, m, 0);
    sched::SimOptions opts;
    opts.procs = 3 * groups;
    opts.policy = core::ForkPolicy::FutureFirst;
    graphs::Fig6Controller ctrl;
    const auto r = sched::run_experiment(gen.graph, opts, &ctrl);
    table.row()
        .add(static_cast<std::uint64_t>(groups))
        .add(static_cast<std::uint64_t>(3 * groups))
        .add(static_cast<std::uint64_t>(r.stats.span))
        .add(static_cast<std::uint64_t>(r.deviations.deviations))
        .add(r.par.steals)
        .add(static_cast<double>(r.deviations.deviations) /
             (static_cast<double>(groups) * k * m));
    gs.push_back(groups);
    devs.push_back(static_cast<double>(r.deviations.deviations));
  }
  table.print("");
  bench::print_exponent("deviations vs groups (∝ P)", gs, devs, 1.0, 0.3);
}

}  // namespace

int main(int argc, char** argv) {
  support::ArgParser args(
      "bench_thm9_lower_bound — regenerate the Theorem 9 / Figure 6 series");
  auto& cache = args.add_int("cache-lines", 16, "cache lines C for part a");
  if (!args.parse(argc, argv)) return 0;
  part_a(static_cast<std::size_t>(cache.value));
  part_b();
  part_c();
  return 0;
}
