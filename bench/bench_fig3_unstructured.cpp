// E5 — Figure 3 vs Figure 4: unstructured futures allow a touch to be
// checked before its future thread is spawned; structured computations
// never do, under any schedule.
#include "bench_common.hpp"
#include "graphs/registry.hpp"
#include "sched/controller.hpp"

using namespace wsf;

int main(int argc, char** argv) {
  support::ArgParser args(
      "bench_fig3_unstructured — premature touches on unstructured DAGs");
  auto& seeds = args.add_int("seeds", 20, "random schedules per row");
  if (!args.parse(argc, argv)) return 0;

  bench::print_header(
      "E5 — Figure 3 (unstructured) vs Figure 4 (structured)",
      "a thief that steals the consumer chain of Figure 3 checks touches "
      "before their future threads are spawned; Figure 4 (and every "
      "structured family) never does");

  {
    support::Table table({"graph", "classifier", "schedule",
                          "premature touches"});
    auto f3 = graphs::fig3(8);
    sched::SimOptions opts;
    opts.procs = 2;
    opts.policy = core::ForkPolicy::FutureFirst;
    sched::ScriptController ctrl;
    ctrl.sleep_after("x", 1).prefer_victim(1, {0});
    const auto r = sched::simulate(f3.graph, opts, &ctrl);
    const auto rep = core::classify(f3.graph);
    table.row()
        .add("fig3")
        .add(rep.structured ? "structured" : "NOT structured")
        .add("scripted steal of x")
        .add(r.premature_touches);

    auto f4 = graphs::fig4(8, true);
    const auto rep4 = core::classify(f4.graph);
    std::uint64_t worst = 0;
    for (std::uint64_t s = 1; s <= static_cast<std::uint64_t>(seeds.value);
         ++s) {
      sched::SimOptions o2;
      o2.procs = 4;
      o2.seed = s;
      o2.stall_prob = 0.3;
      worst = std::max(worst,
                       sched::simulate(f4.graph, o2).premature_touches);
    }
    table.row()
        .add("fig4")
        .add(rep4.structured ? "structured" : "NOT structured")
        .add("random x" + std::to_string(seeds.value))
        .add(worst);
    table.print("");
  }

  {
    support::Table table({"family", "max premature over seeds"});
    for (const char* name :
         {"fig5a", "fig5b", "fig6a", "fig7a", "fig8", "forkjoin", "fib",
          "pipeline", "future-chain", "random-single-touch",
          "random-local-touch"}) {
      graphs::RegistryParams p;
      p.size = 5;
      p.size2 = 4;
      const auto gen = graphs::make_named(name, p);
      std::uint64_t worst = 0;
      for (std::uint64_t s = 1;
           s <= static_cast<std::uint64_t>(seeds.value); ++s) {
        sched::SimOptions opts;
        opts.procs = 4;
        opts.seed = s;
        opts.stall_prob = 0.3;
        worst = std::max(worst,
                         sched::simulate(gen.graph, opts).premature_touches);
      }
      table.row().add(name).add(worst);
    }
    table.print("structured families (must all be 0):");
  }
  return 0;
}
