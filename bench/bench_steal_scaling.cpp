// E9 — the Arora–Blumofe–Plaxton baseline the paper's proofs build on:
// parsimonious work stealing performs O(P·T∞) steals in expectation.
// The series is one declarative exp::SweepSpec; the per-family × per-P loop
// lives in the sweep runner, which executes the grid concurrently.
#include "bench_common.hpp"

#include <chrono>
#include <fstream>

using namespace wsf;

int main(int argc, char** argv) {
  support::ArgParser args("bench_steal_scaling — steals = O(P·T∞)");
  auto& seeds = args.add_int("seeds", 10, "random schedules per row");
  auto& threads = args.add_int("threads", 0,
                               "sweep worker threads (0 = hardware)");
  auto& format = args.add_string("format", "table", "table | csv | json");
  auto& out = args.add_string("out", "",
                              "write the rendered table to this file "
                              "instead of stdout");
  auto& timing_out = args.add_string(
      "timing-out", "",
      "also write a wall-clock timing JSON (label, configs, seeds, "
      "elapsed_ms, configs_per_sec) to this file");
  auto& label = args.add_string("label", "current",
                                "label column for --timing-out rows");
  try {
    if (!args.parse(argc, argv)) return 0;
  } catch (const CheckError& e) {
    std::fprintf(stderr, "bench_steal_scaling: %s\n", e.what());
    return 2;
  }
  WSF_REQUIRE(format.value == "table" || format.value == "csv" ||
                  format.value == "json",
              "unknown --format '" << format.value
                                   << "' (table | csv | json)");

  if (format.value == "table" && out.value.empty())
    bench::print_header(
        "E9 — steal scaling (ABP baseline, Section 3)",
        "mean steals / (P·T∞) stays bounded as P and the DAG grow");

  exp::SweepSpec spec;
  spec.graphs = {
      {"forkjoin", {.size = 8, .size2 = 2}, {}},
      {"fib", {.size = 16}, {}},
      {"random-single-touch", {.size = 60}, {}},
      {"pipeline", {.size = 6, .size2 = 32}, {}},
  };
  spec.procs = {2, 4, 8, 16};
  spec.policies = {core::ForkPolicy::FutureFirst};
  spec.cache_lines = {0};
  spec.stall_prob = 0.1;
  spec.seeds = static_cast<std::uint64_t>(seeds.value);
  const auto t0 = std::chrono::steady_clock::now();
  const auto sweep =
      exp::run_sweep(spec, static_cast<unsigned>(threads.value));
  const double elapsed_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - t0)
                                .count();

  support::Table table({"family", "nodes", "T∞", "P", "mean steals",
                        "steals/(P*T)"});
  for (const auto& row : sweep.rows) {
    const auto procs = row.config.options.procs;
    const double steals = row.cell.steals.mean();
    table.row()
        .add(row.config.family)
        .add(static_cast<std::uint64_t>(row.cell.stats.nodes))
        .add(static_cast<std::uint64_t>(row.cell.stats.span))
        .add(static_cast<std::uint64_t>(procs))
        .add(steals)
        .add(steals / core::abp_steal_bound(procs, row.cell.stats.span));
  }
  // The timing side channel is separate from the result table on purpose:
  // the table is deterministic (diffed exactly across refactors), the
  // timing row is the machine-local perf trajectory the snapshot diff
  // tracks with a tolerance.
  if (!timing_out.value.empty()) {
    support::Table timing({"label", "configs", "seeds", "elapsed_ms",
                           "configs_per_sec"});
    const auto configs = static_cast<std::uint64_t>(sweep.rows.size());
    timing.row()
        .add(label.value)
        .add(configs)
        .add(static_cast<std::uint64_t>(seeds.value))
        .add(elapsed_ms)
        .add(elapsed_ms > 0
                 ? static_cast<double>(configs) * 1000.0 / elapsed_ms
                 : 0.0);
    std::ofstream tfile(timing_out.value);
    WSF_REQUIRE(tfile.good(), "cannot open '" << timing_out.value << "'");
    tfile << timing.to_json();
    WSF_REQUIRE(tfile.good(),
                "write to '" << timing_out.value << "' failed");
  }

  const std::string rendered = format.value == "csv"    ? table.to_csv()
                               : format.value == "json" ? table.to_json()
                                                        : table.to_string();
  if (out.value.empty()) {
    std::fputs(rendered.c_str(), stdout);
    return 0;
  }
  std::ofstream file(out.value);
  WSF_REQUIRE(file.good(), "cannot open '" << out.value << "'");
  file << rendered;
  WSF_REQUIRE(file.good(), "write to '" << out.value << "' failed");
  return 0;
}
