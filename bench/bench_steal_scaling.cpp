// E9 — the Arora–Blumofe–Plaxton baseline the paper's proofs build on:
// parsimonious work stealing performs O(P·T∞) steals in expectation.
#include "bench_common.hpp"
#include "graphs/registry.hpp"

using namespace wsf;

int main(int argc, char** argv) {
  support::ArgParser args("bench_steal_scaling — steals = O(P·T∞)");
  auto& seeds = args.add_int("seeds", 10, "random schedules per row");
  if (!args.parse(argc, argv)) return 0;
  const auto S = static_cast<std::uint64_t>(seeds.value);

  bench::print_header(
      "E9 — steal scaling (ABP baseline, Section 3)",
      "mean steals / (P·T∞) stays bounded as P and the DAG grow");
  support::Table table({"family", "nodes", "T∞", "P", "mean steals",
                        "steals/(P*T)"});
  struct Row {
    const char* name;
    graphs::RegistryParams params;
  };
  const std::vector<Row> rows = {
      {"forkjoin", {.size = 8, .size2 = 2}},
      {"fib", {.size = 16}},
      {"random-single-touch", {.size = 60}},
      {"pipeline", {.size = 6, .size2 = 32}},
  };
  for (const auto& row : rows) {
    const auto gen = graphs::make_named(row.name, row.params);
    for (std::uint32_t procs : {2, 4, 8, 16}) {
      sched::SimOptions opts;
      opts.procs = procs;
      opts.policy = core::ForkPolicy::FutureFirst;
      opts.stall_prob = 0.1;
      const auto m = bench::mean_over_seeds(gen.graph, opts, S);
      table.row()
          .add(row.name)
          .add(m.nodes)
          .add(static_cast<std::uint64_t>(m.span))
          .add(static_cast<std::uint64_t>(procs))
          .add(m.steals)
          .add(m.steals / core::abp_steal_bound(procs, m.span));
    }
  }
  table.print("");
  return 0;
}
