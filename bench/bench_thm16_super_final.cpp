// E7 — Theorems 16 and 18: structured computations with a *super final
// node* (side-effect futures whose only touch is the final node) keep the
// O(P·T∞²) / O(C·P·T∞²) bounds under future-first.
#include "bench_common.hpp"

using namespace wsf;

int main(int argc, char** argv) {
  support::ArgParser args(
      "bench_thm16_super_final — super-final-node variants (Definitions "
      "13/17)");
  auto& cache = args.add_int("cache-lines", 16, "cache lines C");
  auto& seeds = args.add_int("seeds", 10, "random schedules per row");
  if (!args.parse(argc, argv)) return 0;
  const auto C = static_cast<std::size_t>(cache.value);
  const auto S = static_cast<std::uint64_t>(seeds.value);

  bench::print_header(
      "E7 — Theorem 16: single-touch computations with side-effect futures",
      "deviations = O(P·T∞²) and additional misses = O(C·P·T∞²) also hold "
      "when some threads are touched only by the super final node");
  support::Table table({"side-effect %", "nodes", "threads", "T∞", "Def13",
                        "mean devs", "mean add'l miss", "devs/(P*T^2)"});
  for (double prob : {0.0, 0.2, 0.5, 0.8}) {
    graphs::RandomDagParams gp;
    gp.seed = 4242;
    gp.target_nodes = 3000;
    gp.blocks = C * 2;
    gp.side_effect_prob = prob;
    const auto gen = graphs::random_single_touch(gp);
    const auto rep = core::classify(gen.graph);
    sched::SimOptions opts;
    opts.procs = 8;
    opts.policy = core::ForkPolicy::FutureFirst;
    opts.cache_lines = C;
    opts.stall_prob = 0.2;
    const auto m = bench::mean_over_seeds(gen.graph, opts, S);
    table.row()
        .add(prob * 100)
        .add(m.nodes)
        .add(gen.graph.num_threads())
        .add(static_cast<std::uint64_t>(m.span))
        .add(rep.single_touch_super ? "yes" : "NO")
        .add(m.deviations)
        .add(m.additional_misses)
        .add(m.deviations / core::structured_deviation_bound(8, m.span));
  }
  table.print("");

  bench::print_header(
      "E7b — Theorem 18: local-touch with super final node",
      "same bounds for multi-future producers left to the super final node");
  support::Table t2({"nodes", "T∞", "mean devs", "devs/(P*T^2)"});
  for (std::size_t target : {1000u, 4000u}) {
    graphs::RandomDagParams gp;
    gp.seed = 5555 + target;
    gp.target_nodes = target;
    const auto gen = graphs::random_local_touch(gp);
    sched::SimOptions opts;
    opts.procs = 8;
    opts.policy = core::ForkPolicy::FutureFirst;
    opts.stall_prob = 0.2;
    const auto m = bench::mean_over_seeds(gen.graph, opts, S);
    t2.row()
        .add(m.nodes)
        .add(static_cast<std::uint64_t>(m.span))
        .add(m.deviations)
        .add(m.deviations / core::structured_deviation_bound(8, m.span));
  }
  t2.print("");
  return 0;
}
