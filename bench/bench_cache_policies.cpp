// E10 — the Section 3 footnote: the upper-bound shapes hold for all simple
// cache replacement policies (and the lower-bound gadgets still blow up).
// Re-runs the fig6a and fig7a experiments under LRU, FIFO, direct-mapped,
// and 4-way set-associative caches.
#include "bench_common.hpp"
#include "graphs/fig6_controller.hpp"
#include "sched/controller.hpp"

using namespace wsf;

int main(int argc, char** argv) {
  support::ArgParser args(
      "bench_cache_policies — replacement-policy robustness");
  auto& cache = args.add_int("cache-lines", 16, "cache lines C");
  if (!args.parse(argc, argv)) return 0;
  const auto C = static_cast<std::size_t>(cache.value);

  bench::print_header(
      "E10 — simple replacement policies (LRU / FIFO / direct / assoc4)",
      "the additional-miss blowups of the lower-bound gadgets and the "
      "additional-miss moderation of future-first persist across policies");

  support::Table table({"gadget", "policy", "seq miss", "par miss",
                        "add'l miss"});
  for (const char* policy : {"lru", "fifo", "direct", "assoc4"}) {
    auto gen = graphs::fig6a(32, C);
    sched::SimOptions opts;
    opts.procs = 2;
    opts.policy = core::ForkPolicy::FutureFirst;
    opts.cache_lines = C;
    opts.cache_policy = policy;
    graphs::Fig6Controller ctrl;
    const auto r = sched::run_experiment(gen.graph, opts, &ctrl);
    table.row()
        .add("fig6a(m=32)")
        .add(policy)
        .add(r.seq.misses)
        .add(r.par.total_misses())
        .add(r.additional_misses);
  }
  for (const char* policy : {"lru", "fifo", "direct", "assoc4"}) {
    auto gen = graphs::fig7a(32, C);
    sched::SimOptions opts;
    opts.procs = 2;
    opts.policy = core::ForkPolicy::ParentFirst;
    opts.cache_lines = C;
    opts.cache_policy = policy;
    sched::ScriptController ctrl;
    ctrl.sleep_after("s", 1).prefer_victim(1, {0});
    const auto r = sched::run_experiment(gen.graph, opts, &ctrl);
    table.row()
        .add("fig7a(n=32)")
        .add(policy)
        .add(r.seq.misses)
        .add(r.par.total_misses())
        .add(r.additional_misses);
  }
  table.print("");
  std::printf(
      "note: the paper's constructions tune block layouts to LRU; other\n"
      "policies shift constants (direct-mapped adds conflict misses even\n"
      "sequentially) but the parallel blowup of the gadgets persists.\n");
  return 0;
}
