// E4 — Figure 2: a single touch can cost Ω(C·T∞) additional cache misses
// under the parent-first policy (the gadget the paper uses to lift
// Spoonhower et al.'s deviation bound to cache misses). Sweeps C and n on
// the fig7a construction (the paper: "This DAG is similar to the DAG in
// Figure 7(a)").
#include "bench_common.hpp"
#include "sched/controller.hpp"

using namespace wsf;

int main(int argc, char** argv) {
  support::ArgParser args(
      "bench_fig2_touch_locality — one touch costs Ω(C·T∞) under "
      "parent-first");
  if (!args.parse(argc, argv)) return 0;

  bench::print_header(
      "E4 — Figure 2: one deviated touch, parent-first",
      "stealing the single-node future {s} makes touch v fire early; the "
      "y_i/Z_i alternation then thrashes: additional misses = Θ(n·C) from "
      "ONE touch, sequential misses stay O(C)");
  support::Table table({"n", "C", "span", "seq miss", "par miss",
                        "add'l miss", "deviations", "addl/(n*C)"});
  std::vector<double> cs, addl;
  for (std::size_t C : {4u, 8u, 16u, 32u}) {
    const std::uint32_t n = 32;
    auto gen = graphs::fig7a(n, C);
    sched::SimOptions opts;
    opts.procs = 2;
    opts.policy = core::ForkPolicy::ParentFirst;
    opts.cache_lines = C;
    sched::ScriptController ctrl;
    ctrl.sleep_after("s", 1).prefer_victim(1, {0});
    const auto r = sched::run_experiment(gen.graph, opts, &ctrl);
    table.row()
        .add(static_cast<std::uint64_t>(n))
        .add(static_cast<std::uint64_t>(C))
        .add(static_cast<std::uint64_t>(r.stats.span))
        .add(r.seq.misses)
        .add(r.par.total_misses())
        .add(r.additional_misses)
        .add(static_cast<std::uint64_t>(r.deviations.deviations))
        .add(static_cast<double>(r.additional_misses) /
             (static_cast<double>(n) * static_cast<double>(C)));
    cs.push_back(static_cast<double>(C));
    addl.push_back(static_cast<double>(r.additional_misses));
  }
  table.print("");
  bench::print_exponent("additional misses vs C", cs, addl, 1.0, 0.3);

  support::Table t2({"n", "C", "seq miss", "add'l miss", "addl/(n*C)"});
  std::vector<double> ns, addl2;
  for (std::uint32_t n : {8, 16, 32, 64, 128}) {
    const std::size_t C = 16;
    auto gen = graphs::fig7a(n, C);
    sched::SimOptions opts;
    opts.procs = 2;
    opts.policy = core::ForkPolicy::ParentFirst;
    opts.cache_lines = C;
    sched::ScriptController ctrl;
    ctrl.sleep_after("s", 1).prefer_victim(1, {0});
    const auto r = sched::run_experiment(gen.graph, opts, &ctrl);
    t2.row()
        .add(static_cast<std::uint64_t>(n))
        .add(static_cast<std::uint64_t>(C))
        .add(r.seq.misses)
        .add(r.additional_misses)
        .add(static_cast<double>(r.additional_misses) /
             (static_cast<double>(n) * static_cast<double>(C)));
    ns.push_back(n);
    addl2.push_back(static_cast<double>(r.additional_misses));
  }
  t2.print("");
  bench::print_exponent("additional misses vs n (∝ T∞)", ns, addl2, 1.0,
                        0.25);
  return 0;
}
