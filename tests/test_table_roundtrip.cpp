// Property test over the whole Table serialization path: ~200 randomized
// tables — cells with commas, quotes, CRLF, embedded newlines, NaN
// (missing) cells, empty cells, unicode — must round-trip
// from_csv(to_csv(t)) == t exactly, and to_json() must stay parseable by
// from_json with the same cell contents. The RFC-4180 code previously had
// only hand-picked cases; this locks the full grammar down.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include "support/check.hpp"
#include "support/table.hpp"

namespace wsf {
namespace {

using support::Table;

// Characters chosen to stress every branch of the CSV quoter/parser and
// the JSON escaper: separators, quotes, both newline conventions, control
// characters, multi-byte UTF-8.
std::string random_cell(std::mt19937& rng) {
  static const std::vector<std::string> atoms = {
      "a", "b",  "xyz", ",",  "\"", "\n", "\r", "\r\n", " ",
      "\t", "—", "β",   "\\", ":",  "{",  "[",  "0",    "1.5",
  };
  std::uniform_int_distribution<std::size_t> len(0, 8);
  std::uniform_int_distribution<std::size_t> pick(0, atoms.size() - 1);
  std::string cell;
  const std::size_t n = len(rng);
  for (std::size_t i = 0; i < n; ++i) cell += atoms[pick(rng)];
  return cell;
}

Table random_table(std::mt19937& rng) {
  std::uniform_int_distribution<std::size_t> ncols(1, 6);
  std::uniform_int_distribution<std::size_t> nrows(0, 8);
  std::uniform_int_distribution<int> kind(0, 9);
  std::uniform_real_distribution<double> num(-1e6, 1e6);

  const std::size_t cols = ncols(rng);
  std::vector<std::string> headers;
  for (std::size_t c = 0; c < cols; ++c) {
    // Headers go through the same cell grammar; never empty so columns
    // stay addressable.
    std::string h = random_cell(rng);
    if (h.empty()) {
      // snprintf instead of string concatenation: gcc 12's -Werror=restrict
      // false-positives on the inlined basic_string append here.
      char fallback[24];
      std::snprintf(fallback, sizeof fallback, "h%zu", c);
      h = fallback;
    }
    headers.push_back(h);
  }
  Table t(headers);
  const std::size_t rows = nrows(rng);
  for (std::size_t r = 0; r < rows; ++r) {
    t.row();
    // Short rows are legal (fewer cells than the header) — but a row with
    // zero cells has no CSV record representation, so keep ≥ 1.
    std::uniform_int_distribution<std::size_t> rowlen(1, cols);
    const std::size_t cells = rowlen(rng);
    for (std::size_t c = 0; c < cells; ++c) {
      switch (kind(rng)) {
        case 0:
          t.add(std::string());  // empty (missing) cell
          break;
        case 1:
          // NaN renders as the missing cell by design.
          t.add(std::numeric_limits<double>::quiet_NaN());
          break;
        case 2:
          t.add(num(rng));
          break;
        case 3:
          t.add(static_cast<std::int64_t>(rng()) -
                static_cast<std::int64_t>(1LL << 31));
          break;
        default:
          t.add(random_cell(rng));
      }
    }
  }
  return t;
}

TEST(TableRoundTrip, TwoHundredRandomTablesThroughCsv) {
  std::mt19937 rng(20260730);
  for (int iter = 0; iter < 200; ++iter) {
    const Table t = random_table(rng);
    const std::string csv = t.to_csv();
    const Table back = Table::from_csv(csv);
    ASSERT_EQ(back.headers(), t.headers()) << "iteration " << iter
                                           << "\nCSV:\n" << csv;
    ASSERT_EQ(back.rows(), t.rows()) << "iteration " << iter << "\nCSV:\n"
                                     << csv;
    // Idempotence: a second pass reproduces the same bytes.
    ASSERT_EQ(back.to_csv(), csv) << "iteration " << iter;
  }
}

TEST(TableRoundTrip, TwoHundredRandomTablesThroughJson) {
  std::mt19937 rng(733);
  for (int iter = 0; iter < 200; ++iter) {
    const Table t = random_table(rng);
    if (t.num_rows() == 0) continue;  // an empty array keeps no columns
    const std::string json = t.to_json();
    const Table back = Table::from_json(json);
    ASSERT_EQ(back.headers(), t.headers()) << "iteration " << iter
                                           << "\nJSON:\n" << json;
    // to_json pads short rows with null, which reads back as the missing
    // cell — semantically the same row; compare cell by cell.
    ASSERT_EQ(back.num_rows(), t.num_rows()) << "iteration " << iter;
    for (std::size_t r = 0; r < t.num_rows(); ++r)
      for (std::size_t c = 0; c < t.headers().size(); ++c)
        ASSERT_EQ(back.cell(r, c), t.cell(r, c))
            << "iteration " << iter << " cell (" << r << ", " << c
            << ")\nJSON:\n" << json;
    // And the reparse emits identical JSON bytes.
    ASSERT_EQ(back.to_json(), json) << "iteration " << iter;
  }
}

TEST(TableRoundTrip, HandPickedEdgeCases) {
  // The classic mangling class: a cell that IS a separator sequence.
  Table t({"a,b", "c\"d", "e\nf"});
  t.row().add(",").add("\"\"").add("\r\n");
  t.row().add("");  // single empty cell, short row
  t.row().add("x").add("").add("");
  const Table back = Table::from_csv(t.to_csv());
  EXPECT_EQ(back.headers(), t.headers());
  EXPECT_EQ(back.rows(), t.rows());

  // CRLF line endings and a missing final newline both parse.
  const Table crlf = Table::from_csv("h1,h2\r\nv1,v2\r\nv3,v4");
  ASSERT_EQ(crlf.num_rows(), 2u);
  EXPECT_EQ(crlf.cell(1, 1), "v4");

  // Malformed input fails loudly.
  EXPECT_THROW(Table::from_csv("h\n\"unterminated"), CheckError);
  EXPECT_THROW(Table::from_csv("h\n\"x\"y\n"), CheckError);
  EXPECT_THROW(Table::from_csv("h1\nv1,v2\n"), CheckError);  // too wide
}

}  // namespace
}  // namespace wsf
