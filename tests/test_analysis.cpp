// Analysis layer: relational ops over Table (select / filter / group_by /
// pivot / derived columns / sort), the sweep loader's format normalization,
// and figure regeneration — including the acceptance property that every
// registered figure family renders byte-identically from a single-run CSV
// and a merged two-shard checkpoint pair.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "exp/analysis.hpp"
#include "exp/checkpoint.hpp"
#include "exp/sweep.hpp"
#include "graphs/registry.hpp"
#include "support/check.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace wsf {
namespace {

namespace an = exp::analysis;
using support::Table;

Table sample() {
  Table t({"family", "procs", "policy", "misses", "seq"});
  t.row().add("fig2").add(1).add("ff").add(3.0).add(2.0);
  t.row().add("fig2").add(2).add("ff").add(5.0).add(2.0);
  t.row().add("fig2").add(1).add("pf").add(4.0).add(2.0);
  t.row().add("fig2").add(2).add("pf").add(8.0).add(2.0);
  t.row().add("fig4").add(1).add("ff").add(1.0).add(0.0);
  return t;
}

TEST(Select, ProjectsAndReordersColumns) {
  const Table out = an::select(sample(), {"procs", "family"});
  ASSERT_EQ(out.headers(), (std::vector<std::string>{"procs", "family"}));
  ASSERT_EQ(out.num_rows(), 5u);
  EXPECT_EQ(out.cell(0, 0), "1");
  EXPECT_EQ(out.cell(0, 1), "fig2");
  EXPECT_THROW(an::select(sample(), {"no-such"}), CheckError);
}

TEST(Filter, KeepsMatchingRowsInOrder) {
  const Table out = an::filter(sample(), [](const an::RowView& r) {
    return r.num("misses") > 3.5;
  });
  ASSERT_EQ(out.num_rows(), 3u);
  EXPECT_EQ(out.cell(0, 3), "5");
  const Table eq = an::filter_eq(sample(), "policy", "pf");
  ASSERT_EQ(eq.num_rows(), 2u);
  EXPECT_EQ(eq.cell(1, 3), "8");
}

TEST(RowView, MissingAndNonNumericCells) {
  Table t({"a", "b"});
  t.row().add("x");  // short row: b missing
  const an::RowView r(t, 0);
  EXPECT_EQ(r.get("b"), "");
  EXPECT_TRUE(std::isnan(r.num("b")));
  EXPECT_THROW(r.num("a"), CheckError);  // "x" is not a number
}

TEST(GroupBy, AggregatesMatchAccumulator) {
  const Table g = an::group_by(
      sample(), {"policy"},
      {{"misses", an::Agg::Mean, ""},
       {"misses", an::Agg::Stderr, ""},
       {"misses", an::Agg::Min, ""},
       {"misses", an::Agg::Max, "peak"},
       {"misses", an::Agg::Count, ""},
       {"misses", an::Agg::Sum, ""}});
  ASSERT_EQ(g.headers(),
            (std::vector<std::string>{"policy", "mean_misses",
                                      "stderr_misses", "min_misses", "peak",
                                      "count_misses", "sum_misses"}));
  // Groups appear in first-appearance order: ff (3 rows), then pf.
  ASSERT_EQ(g.num_rows(), 2u);
  EXPECT_EQ(g.cell(0, 0), "ff");
  EXPECT_DOUBLE_EQ(g.number(0, 1), 3.0);  // mean(3, 5, 1)
  support::Accumulator acc;
  for (const double v : {3.0, 5.0, 1.0}) acc.add(v);
  // Cells are format_double-rendered (4 decimals): compare the rendering.
  EXPECT_EQ(g.cell(0, 2), support::format_double(exp::stderr_of(acc)));
  EXPECT_DOUBLE_EQ(g.number(0, 3), 1.0);
  EXPECT_DOUBLE_EQ(g.number(0, 4), 5.0);
  EXPECT_DOUBLE_EQ(g.number(0, 5), 3.0);
  EXPECT_DOUBLE_EQ(g.number(0, 6), 9.0);
  EXPECT_EQ(g.cell(1, 0), "pf");
  EXPECT_DOUBLE_EQ(g.number(1, 1), 6.0);
}

TEST(GroupBy, MissingCellsCarryNoSample) {
  Table t({"k", "v"});
  t.row().add("a").add(2.0);
  t.row().add("a").add("");   // missing: skipped
  t.row().add("b").add("");   // all-missing group
  const Table g = an::group_by(t, {"k"},
                               {{"v", an::Agg::Mean, ""},
                                {"v", an::Agg::Count, ""},
                                {"v", an::Agg::Stderr, ""}});
  EXPECT_DOUBLE_EQ(g.number(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(g.number(0, 2), 1.0);
  EXPECT_EQ(g.cell(0, 3), "");  // single sample: stderr missing
  EXPECT_EQ(g.cell(1, 1), "");  // no samples at all: mean missing
  EXPECT_DOUBLE_EQ(g.number(1, 2), 0.0);
}

TEST(Pivot, LongToWideAndDuplicateCellIsAnError) {
  // fig2@P1/ff and fig4@P1/ff share the (procs=1, ff) cell.
  try {
    an::pivot(sample(), {"procs"}, "policy", "misses");
    FAIL() << "pivot accepted a duplicate (row key, column key) pair";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("aggregate"), std::string::npos);
  }
  const Table fig2 = an::filter_eq(sample(), "family", "fig2");
  const Table w = an::pivot(fig2, {"procs"}, "policy", "misses");
  ASSERT_EQ(w.num_rows(), 2u);
  EXPECT_DOUBLE_EQ(w.number(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(w.number(0, 2), 4.0);
  EXPECT_DOUBLE_EQ(w.number(1, 1), 5.0);
  EXPECT_DOUBLE_EQ(w.number(1, 2), 8.0);

  // A combination never seen stays missing.
  Table partial({"p", "k", "v"});
  partial.row().add("1").add("x").add("10");
  partial.row().add("2").add("y").add("20");
  const Table pw = an::pivot(partial, {"p"}, "k", "v");
  EXPECT_EQ(pw.cell(0, 2), "");
  EXPECT_EQ(pw.cell(1, 1), "");
}

TEST(DerivedColumns, RatioAndConstant) {
  const Table r =
      an::with_ratio(sample(), "ratio", "misses", "seq");
  EXPECT_EQ(r.headers().back(), "ratio");
  EXPECT_DOUBLE_EQ(r.number(0, 5), 1.5);
  EXPECT_DOUBLE_EQ(r.number(1, 5), 2.5);
  EXPECT_EQ(r.cell(4, 5), "");  // denominator 0: missing, not inf

  const Table c = an::with_constant(sample(), "run", "A");
  EXPECT_EQ(c.cell(0, 5), "A");
  EXPECT_EQ(c.cell(4, 5), "A");

  const Table speedup = an::with_column(
      sample(), "speedup", [](const an::RowView& row) {
        const double p = row.num("procs");
        return support::format_double(p * 2.0);
      });
  EXPECT_DOUBLE_EQ(speedup.number(1, 5), 4.0);
}

TEST(SortBy, NumericAwareAndStable) {
  Table t({"x", "tag"});
  t.row().add("10").add("a");
  t.row().add("9").add("b");
  t.row().add("").add("c");
  t.row().add("9").add("d");
  const Table s = an::sort_by(t, {"x"});
  // Missing first, then numeric order (9 < 10, not lexicographic).
  EXPECT_EQ(s.cell(0, 1), "c");
  EXPECT_EQ(s.cell(1, 1), "b");  // stable: b before d
  EXPECT_EQ(s.cell(2, 1), "d");
  EXPECT_EQ(s.cell(3, 1), "a");
}

TEST(Join, WideTableFromTwoRuns) {
  // The sim-vs-runtime comparison shape: same identity keys, measures
  // side by side with per-side suffixes.
  Table sim({"family", "procs", "backend", "devs"});
  sim.row().add("fig2").add(1).add("sim").add(3.0);
  sim.row().add("fig2").add(2).add("sim").add(5.0);
  sim.row().add("fig4").add(1).add("sim").add(7.0);
  Table rt({"family", "procs", "backend", "devs"});
  rt.row().add("fig2").add(2).add("runtime").add(6.0);
  rt.row().add("fig2").add(1).add("runtime").add(3.0);

  const Table out = an::join(sim, rt, {"family", "procs"});
  const std::vector<std::string> expected{"family", "procs", "backend_A",
                                          "devs_A", "backend_B", "devs_B"};
  EXPECT_EQ(out.headers(), expected);
  // Inner join, left order major: fig4@1 has no runtime row and drops.
  ASSERT_EQ(out.num_rows(), 2u);
  EXPECT_EQ(out.rows()[0],
            (std::vector<std::string>{"fig2", "1", "sim", "3", "runtime",
                                      "3"}));
  EXPECT_EQ(out.rows()[1],
            (std::vector<std::string>{"fig2", "2", "sim", "5", "runtime",
                                      "6"}));
  // The joined wide table feeds straight into with_ratio.
  const Table ratio = an::with_ratio(out, "r", "devs_B", "devs_A");
  EXPECT_EQ(ratio.rows()[1].back(), "1.2");
}

TEST(Join, DuplicateRightKeysMultiplyAndMissingKeyThrows) {
  Table left({"k", "x"});
  left.row().add("a").add(1);
  Table right({"k", "y"});
  right.row().add("a").add(10);
  right.row().add("a").add(20);
  const Table out = an::join(left, right, {"k"});
  ASSERT_EQ(out.num_rows(), 2u);  // one per matching right row, right order
  EXPECT_EQ(out.rows()[0], (std::vector<std::string>{"a", "1", "10"}));
  EXPECT_EQ(out.rows()[1], (std::vector<std::string>{"a", "1", "20"}));

  EXPECT_THROW(an::join(left, right, {"nope"}), CheckError);
  EXPECT_THROW(an::join(left, right, {}), CheckError);
  EXPECT_THROW(an::join(left, right, {"k"}, "_s", "_s"), CheckError);
}

TEST(DistinctAndConcat, Basics) {
  EXPECT_EQ(an::distinct(sample(), "policy"),
            (std::vector<std::string>{"ff", "pf"}));
  const Table two = an::concat(sample(), sample());
  EXPECT_EQ(two.num_rows(), 10u);
  Table other({"different"});
  EXPECT_THROW(an::concat(sample(), other), CheckError);
}

TEST(TableAccessors, ColumnIndexAndNumber) {
  const Table t = sample();
  EXPECT_EQ(t.column_index("misses"), 3u);
  EXPECT_TRUE(t.has_column("seq"));
  EXPECT_FALSE(t.has_column("nope"));
  EXPECT_THROW(t.column_index("nope"), CheckError);
  EXPECT_DOUBLE_EQ(t.number(3, 3), 8.0);
  EXPECT_THROW(t.number(0, 2), CheckError);  // "ff" is not a number
  double v = 0.0;
  EXPECT_TRUE(support::cell_to_number("-1.5e2", &v));
  EXPECT_DOUBLE_EQ(v, -150.0);
  EXPECT_FALSE(support::cell_to_number("", &v));
  EXPECT_FALSE(support::cell_to_number("12x", &v));
  EXPECT_FALSE(support::cell_to_number("nan", &v));
}

TEST(FromJson, RoundTripsToJsonOutput) {
  const Table t = sample();
  const Table back = Table::from_json(t.to_json());
  EXPECT_EQ(back.headers(), t.headers());
  EXPECT_EQ(back.rows(), t.rows());
  // Escapes and null cells survive.
  Table tricky({"a\"b", "c"});
  tricky.row().add("line\nbreak").add("");
  const Table tb = Table::from_json(tricky.to_json());
  EXPECT_EQ(tb.headers().front(), "a\"b");
  EXPECT_EQ(tb.cell(0, 0), "line\nbreak");
  EXPECT_EQ(tb.cell(0, 1), "");
  EXPECT_THROW(Table::from_json("not json"), CheckError);
  EXPECT_THROW(Table::from_json("[]"), CheckError);
  EXPECT_THROW(Table::from_json("[{\"a\": 1}, {\"b\": 2}]"), CheckError);
}

exp::SweepSpec tiny_spec() {
  exp::SweepSpec spec;
  spec.graphs = {{"fig2", {.size = 4}, {}}, {"fig4", {.size = 4}, {}}};
  spec.procs = {1, 2, 4};
  spec.policies = {core::ForkPolicy::FutureFirst,
                   core::ForkPolicy::ParentFirst};
  spec.cache_lines = {0, 4};
  spec.seeds = 2;
  return spec;
}

TEST(LoadSweep, NormalizesCsvJsonAndCheckpoint) {
  const Table direct = exp::to_table(exp::run_sweep(tiny_spec(), 2));
  const Table from_csv = an::load_sweep(direct.to_csv());
  EXPECT_EQ(from_csv.to_csv(), direct.to_csv());
  const Table from_json = an::load_sweep(direct.to_json());
  EXPECT_EQ(from_json.to_csv(), direct.to_csv());

  // A raw checkpoint file: signature + bookkeeping columns stripped, rows
  // restored to config_index order.
  const std::string path = ::testing::TempDir() + "analysis_load.ckpt";
  std::remove(path.c_str());
  exp::SweepTableOptions opts;
  opts.threads = 2;
  opts.checkpoint_path = path;
  exp::run_sweep_table(tiny_spec(), opts);
  std::string text;
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
      text.append(buf, n);
    std::fclose(f);
  }
  const Table from_ckpt = an::load_sweep(text);
  EXPECT_EQ(from_ckpt.to_csv(), direct.to_csv());
}

TEST(RenderFigure, FamiliesRegisteredForEveryRegistryName) {
  for (const std::string& name : graphs::registry_names()) {
    const an::FigureFamily* fam = an::find_figure_family(name);
    ASSERT_NE(fam, nullptr) << "no figure family registered for " << name;
    EXPECT_EQ(fam->family, name);
    EXPECT_FALSE(fam->title.empty());
  }
  EXPECT_EQ(an::find_figure_family("no-such"), nullptr);
}

TEST(RenderFigure, DatShapeAndSeriesSelection) {
  const Table sweep = exp::to_table(exp::run_sweep(tiny_spec(), 2));
  const an::Figure fig = an::render_figure(sweep, "fig2");
  // Series split on the axes that vary: policy × cache_lines (touch rule
  // and size are constant in tiny_spec).
  EXPECT_EQ(fig.series.size(), 4u);
  EXPECT_EQ(fig.points, 3u);  // P ∈ {1, 2, 4}
  EXPECT_EQ(fig.x, "procs");
  EXPECT_NE(fig.dat.find("future-first C=0"), std::string::npos);
  EXPECT_NE(fig.dat.find("parent-first C=4"), std::string::npos);
  // The .dat body has one line per x value plus two comment lines and the
  // header line.
  std::size_t lines = 0;
  for (const char ch : fig.dat)
    if (ch == '\n') ++lines;
  EXPECT_EQ(lines, 2 + 1 + fig.points);
  // The .gp script plots every series from the right file.
  EXPECT_NE(fig.gp.find("fig2.dat"), std::string::npos);
  EXPECT_NE(fig.gp.find("for [i=2:5]"), std::string::npos);
  // The ASCII preview names every series in its legend.
  for (const std::string& s : fig.series)
    EXPECT_NE(fig.ascii.find(s), std::string::npos);

  // Unknown family / missing measure fail loudly.
  EXPECT_THROW(an::render_figure(sweep, "fig8"), CheckError);
  an::FigureOptions bad;
  bad.measure = "no_such_column";
  EXPECT_THROW(an::render_figure(sweep, "fig2", bad), CheckError);
}

TEST(RenderFigure, NormalizeDropsBaselinelessRows) {
  const Table sweep = exp::to_table(exp::run_sweep(tiny_spec(), 2));
  an::FigureOptions opts;
  opts.normalize = true;
  const an::Figure fig = an::render_figure(sweep, "fig2", opts);
  // C=0 rows have no miss baseline, so only the C=4 series survive and
  // the series split no longer includes cache_lines.
  EXPECT_EQ(fig.measure, "mean_additional_misses_over_seq");
  for (const std::string& s : fig.series)
    EXPECT_EQ(s.find("C="), std::string::npos) << s;
  EXPECT_EQ(fig.series.size(), 2u);  // the two policies
}

TEST(RenderFigure, CompareOverlayDoublesTheSeries) {
  const Table sweep = exp::to_table(exp::run_sweep(tiny_spec(), 2));
  const Table tagged =
      an::concat(an::with_constant(sweep, "run", "A"),
                 an::with_constant(sweep, "run", "B"));
  const an::Figure fig = an::render_figure(tagged, "fig2");
  EXPECT_EQ(fig.series.size(), 8u);  // policy × cache × run
  EXPECT_NE(fig.dat.find("future-first C=0 A"), std::string::npos);
  EXPECT_NE(fig.dat.find("future-first C=0 B"), std::string::npos);
}

TEST(RenderFigure, EmptyOrNanOnlySeriesFails) {
  Table sweep(exp::sweep_table_headers());
  // One fig2 row whose measure cell is missing: NaN-only series.
  std::vector<std::string> cells(sweep.headers().size(), "");
  cells[sweep.column_index("family")] = "fig2";
  cells[sweep.column_index("procs")] = "1";
  sweep.add_row(cells);
  try {
    an::render_figure(sweep, "fig2");
    FAIL() << "NaN-only series rendered";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("empty or NaN-only"),
              std::string::npos);
  }
  EXPECT_THROW(an::render_figure(sweep, "fig4"), CheckError);  // no rows
}

// The acceptance property: every registered figure family renders
// byte-identically from (a) the table of one unsharded run and (b) the
// merge of a two-shard checkpointed run of the same spec.
TEST(RenderFigure, AllFamiliesIdenticalFromSingleAndMergedRuns) {
  exp::SweepSpec spec;
  for (const std::string& name : graphs::registry_names())
    spec.graphs.push_back({name, {.size = 3, .size2 = 2}, {}});
  spec.procs = {1, 2};
  spec.policies = {core::ForkPolicy::FutureFirst,
                   core::ForkPolicy::ParentFirst};
  spec.cache_lines = {0, 2};
  spec.seeds = 1;

  const Table single = exp::to_table(exp::run_sweep(spec, 4));

  std::vector<exp::Checkpoint> shards;
  for (const std::uint32_t shard : {0u, 1u}) {
    const std::string path = ::testing::TempDir() + "analysis_shard" +
                             std::to_string(shard) + ".ckpt";
    std::remove(path.c_str());
    exp::SweepTableOptions opts;
    opts.threads = 4;
    opts.shard = {shard, 2};
    opts.checkpoint_path = path;
    exp::run_sweep_table(spec, opts);
    shards.push_back(exp::load_checkpoint(path));
  }
  const Table merged = exp::merge_checkpoints(shards);
  ASSERT_EQ(merged.to_csv(), single.to_csv());

  for (const std::string& name : graphs::registry_names()) {
    const an::Figure a = an::render_figure(single, name);
    const an::Figure b = an::render_figure(merged, name);
    EXPECT_EQ(a.dat, b.dat) << name;
    EXPECT_EQ(a.gp, b.gp) << name;
    EXPECT_EQ(a.ascii, b.ascii) << name;
    EXPECT_GT(a.points, 0u) << name;
    EXPECT_FALSE(a.series.empty()) << name;
  }
}

}  // namespace
}  // namespace wsf
