// Sweep subsystem: spec expansion, replicate aggregation, concurrent
// execution determinism, and CSV/JSON emission.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>

#include "support/check.hpp"

#include "exp/sweep.hpp"
#include "graphs/registry.hpp"
#include "sched/harness.hpp"

namespace wsf {
namespace {

using core::ForkPolicy;
using sched::TouchEnable;

exp::SweepSpec small_spec() {
  exp::SweepSpec spec;
  spec.graphs = {{"fig4", {.size = 4}}, {"fig6a", {.size = 4}}};
  spec.procs = {1, 2};
  spec.policies = {ForkPolicy::FutureFirst, ForkPolicy::ParentFirst};
  spec.touch_enables = {TouchEnable::TouchFirst};
  spec.cache_lines = {0, 4};
  spec.stall_prob = 0.25;
  spec.seeds = 3;
  spec.seed_base = 7;
  return spec;
}

TEST(SweepSpec, ExpandsTheFullCartesianProduct) {
  const auto spec = small_spec();
  const auto configs = exp::expand_spec(spec);
  // graphs(2) × cache(2) × procs(2) × policies(2) × touch(1)
  ASSERT_EQ(configs.size(), 16u);

  // Order: graphs × cache_lines × procs × policies × touch_enables.
  EXPECT_EQ(configs[0].family, "fig4");
  EXPECT_EQ(configs[0].options.cache_lines, 0u);
  EXPECT_EQ(configs[0].options.procs, 1u);
  EXPECT_EQ(configs[0].options.policy, ForkPolicy::FutureFirst);
  EXPECT_EQ(configs[1].options.policy, ForkPolicy::ParentFirst);
  EXPECT_EQ(configs[2].options.procs, 2u);
  EXPECT_EQ(configs[4].options.cache_lines, 4u);
  EXPECT_EQ(configs[8].family, "fig6a");

  for (const auto& cfg : configs) {
    // The graph-side cache annotation tracks the simulated geometry.
    EXPECT_EQ(cfg.params.cache_lines, cfg.options.cache_lines);
    EXPECT_EQ(cfg.options.stall_prob, spec.stall_prob);
    EXPECT_EQ(cfg.options.seed, spec.seed_base);
  }
  // Configurations differing only in P / policy share a generated graph.
  EXPECT_EQ(configs[0].graph_index, configs[3].graph_index);
  EXPECT_NE(configs[0].graph_index, configs[4].graph_index);
  EXPECT_EQ(configs[8].graph_index, 2u);

  const auto graphs = exp::generate_graphs(spec);
  ASSERT_EQ(graphs.size(), 4u);
  for (const auto& cfg : configs) ASSERT_LT(cfg.graph_index, graphs.size());
}

TEST(SweepSpec, RejectsEmptyAxes) {
  exp::SweepSpec spec = small_spec();
  spec.procs.clear();
  EXPECT_THROW(exp::expand_spec(spec), CheckError);
  spec = small_spec();
  spec.graphs.clear();
  EXPECT_THROW(exp::expand_spec(spec), CheckError);
  spec = small_spec();
  spec.seeds = 0;
  EXPECT_THROW(exp::expand_spec(spec), CheckError);
}

TEST(RunReplicates, MatchesPerSeedRunExperiment) {
  const auto gen = graphs::make_named("fig6a", {.size = 5, .cache_lines = 4});
  sched::SimOptions opts;
  opts.procs = 4;
  opts.cache_lines = 4;
  opts.stall_prob = 0.3;

  const std::uint64_t seed_base = 11;
  const std::uint64_t seeds = 4;
  const auto cell = exp::run_replicates(gen.graph, opts, seed_base, seeds);

  double dev_sum = 0, miss_sum = 0, steal_sum = 0, step_sum = 0;
  for (std::uint64_t k = 0; k < seeds; ++k) {
    opts.seed = seed_base + k;
    const auto r = sched::run_experiment(gen.graph, opts);
    dev_sum += static_cast<double>(r.deviations.deviations);
    miss_sum += static_cast<double>(r.additional_misses);
    steal_sum += static_cast<double>(r.par.steals);
    step_sum += static_cast<double>(r.par.steps);
  }
  const auto n = static_cast<double>(seeds);
  EXPECT_DOUBLE_EQ(cell.deviations.mean(), dev_sum / n);
  EXPECT_DOUBLE_EQ(cell.additional_misses.mean(), miss_sum / n);
  EXPECT_DOUBLE_EQ(cell.steals.mean(), steal_sum / n);
  EXPECT_DOUBLE_EQ(cell.steps.mean(), step_sum / n);
  EXPECT_EQ(cell.deviations.count(), seeds);
  EXPECT_EQ(cell.stats.nodes, gen.graph.num_nodes());
  // The sequential baseline is seed-independent.
  EXPECT_DOUBLE_EQ(exp::stderr_of(cell.seq_misses), 0.0);
}

TEST(Stderr, MatchesHandComputedValue) {
  support::Accumulator acc;
  for (const double x : {1.0, 2.0, 3.0, 4.0}) acc.add(x);
  EXPECT_DOUBLE_EQ(acc.mean(), 2.5);
  // Sample variance 5/3; stderr = sqrt(5/3) / sqrt(4).
  EXPECT_NEAR(exp::stderr_of(acc), std::sqrt(5.0 / 3.0) / 2.0, 1e-12);

  support::Accumulator single;
  single.add(42.0);
  EXPECT_DOUBLE_EQ(exp::stderr_of(single), 0.0);
}

TEST(RunSweep, DeterministicAcrossWorkerCounts) {
  const auto spec = small_spec();
  const auto a = exp::run_sweep(spec, 1);
  const auto b = exp::run_sweep(spec, 4);
  const std::string csv_a = exp::to_table(a).to_csv();
  const std::string csv_b = exp::to_table(b).to_csv();
  EXPECT_FALSE(csv_a.empty());
  EXPECT_EQ(csv_a, csv_b);
}

TEST(RunSweep, RowsMatchDirectReplicateRuns) {
  const auto spec = small_spec();
  const auto result = exp::run_sweep(spec, 3);
  ASSERT_EQ(result.rows.size(), 16u);
  EXPECT_EQ(result.seeds, spec.seeds);

  const auto graphs = exp::generate_graphs(spec);
  for (const auto& row : result.rows) {
    const auto direct =
        exp::run_replicates(graphs[row.config.graph_index].graph,
                            row.config.options, spec.seed_base, spec.seeds);
    EXPECT_DOUBLE_EQ(row.cell.deviations.mean(), direct.deviations.mean());
    EXPECT_DOUBLE_EQ(row.cell.additional_misses.mean(),
                     direct.additional_misses.mean());
    EXPECT_DOUBLE_EQ(row.cell.steals.mean(), direct.steals.mean());
  }
}

TEST(TouchEnableParsing, RejectsUnknownNames) {
  EXPECT_EQ(sched::touch_enable_from_string("touch-first"),
            TouchEnable::TouchFirst);
  EXPECT_EQ(sched::touch_enable_from_string("continuation-first"),
            TouchEnable::ContinuationFirst);
  EXPECT_THROW(sched::touch_enable_from_string("touchfirst"), CheckError);
}

TEST(RunSweep, UnknownFamilySurfacesAsCheckError) {
  exp::SweepSpec spec = small_spec();
  spec.graphs = {{"no-such-family", {}}};
  EXPECT_THROW(exp::run_sweep(spec, 2), CheckError);
}

TEST(SweepOutput, CsvHasHeaderAndOneLinePerConfig) {
  const auto spec = small_spec();
  const auto result = exp::run_sweep(spec, 2);
  const std::string csv = exp::to_table(result).to_csv();
  ASSERT_EQ(csv.rfind("family,size,size2,nodes,span,touches,procs,policy,",
                      0),
            0u);
  std::size_t lines = 0;
  for (const char ch : csv)
    if (ch == '\n') ++lines;
  EXPECT_EQ(lines, 1 + result.rows.size());
  EXPECT_NE(csv.find("future-first"), std::string::npos);
  EXPECT_NE(csv.find("parent-first"), std::string::npos);
}

TEST(SweepOutput, JsonIsAnArrayOfRowObjects) {
  const auto spec = small_spec();
  const auto result = exp::run_sweep(spec, 2);
  const std::string json = exp::to_table(result).to_json();
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '[');
  std::size_t objects = 0;
  for (const char ch : json)
    if (ch == '{') ++objects;
  EXPECT_EQ(objects, result.rows.size());
  // Numeric cells are unquoted, string cells quoted.
  EXPECT_NE(json.find("\"family\": \"fig4\""), std::string::npos);
  EXPECT_NE(json.find("\"procs\": 1"), std::string::npos);
  EXPECT_EQ(json.find("\"procs\": \""), std::string::npos);
}

}  // namespace
}  // namespace wsf
