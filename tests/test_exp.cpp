// Sweep subsystem: spec expansion, replicate aggregation, concurrent
// execution determinism, sharding/checkpoint/merge, and CSV/JSON emission.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "support/check.hpp"

#include "exp/checkpoint.hpp"
#include "exp/sweep.hpp"
#include "graphs/registry.hpp"
#include "sched/harness.hpp"

namespace wsf {
namespace {

using core::ForkPolicy;
using sched::TouchEnable;

exp::SweepSpec small_spec() {
  exp::SweepSpec spec;
  spec.graphs = {{"fig4", {.size = 4}, {}}, {"fig6a", {.size = 4}, {}}};
  spec.procs = {1, 2};
  spec.policies = {ForkPolicy::FutureFirst, ForkPolicy::ParentFirst};
  spec.touch_enables = {TouchEnable::TouchFirst};
  spec.cache_lines = {0, 4};
  spec.stall_prob = 0.25;
  spec.seeds = 3;
  spec.seed_base = 7;
  return spec;
}

TEST(SweepSpec, ExpandsTheFullCartesianProduct) {
  const auto spec = small_spec();
  const auto configs = exp::expand_spec(spec);
  // graphs(2) × cache(2) × procs(2) × policies(2) × touch(1)
  ASSERT_EQ(configs.size(), 16u);

  // Order: graphs × cache_lines × procs × policies × touch_enables.
  EXPECT_EQ(configs[0].family, "fig4");
  EXPECT_EQ(configs[0].options.cache_lines, 0u);
  EXPECT_EQ(configs[0].options.procs, 1u);
  EXPECT_EQ(configs[0].options.policy, ForkPolicy::FutureFirst);
  EXPECT_EQ(configs[1].options.policy, ForkPolicy::ParentFirst);
  EXPECT_EQ(configs[2].options.procs, 2u);
  EXPECT_EQ(configs[4].options.cache_lines, 4u);
  EXPECT_EQ(configs[8].family, "fig6a");

  for (const auto& cfg : configs) {
    // The graph-side cache annotation tracks the simulated geometry.
    EXPECT_EQ(cfg.params.cache_lines, cfg.options.cache_lines);
    EXPECT_EQ(cfg.options.stall_prob, spec.stall_prob);
    EXPECT_EQ(cfg.options.seed, spec.seed_base);
  }
  // Configurations differing only in P / policy share a generated graph.
  EXPECT_EQ(configs[0].graph_index, configs[3].graph_index);
  EXPECT_NE(configs[0].graph_index, configs[4].graph_index);
  EXPECT_EQ(configs[8].graph_index, 2u);

  const auto graphs = exp::generate_graphs(spec);
  ASSERT_EQ(graphs.size(), 4u);
  for (const auto& cfg : configs) ASSERT_LT(cfg.graph_index, graphs.size());
}

TEST(SweepSpec, RejectsEmptyAxes) {
  exp::SweepSpec spec = small_spec();
  spec.procs.clear();
  EXPECT_THROW(exp::expand_spec(spec), CheckError);
  spec = small_spec();
  spec.graphs.clear();
  EXPECT_THROW(exp::expand_spec(spec), CheckError);
  spec = small_spec();
  spec.seeds = 0;
  EXPECT_THROW(exp::expand_spec(spec), CheckError);
}

TEST(RunReplicates, MatchesPerSeedRunExperiment) {
  const auto gen = graphs::make_named("fig6a", {.size = 5, .cache_lines = 4});
  sched::SimOptions opts;
  opts.procs = 4;
  opts.cache_lines = 4;
  opts.stall_prob = 0.3;

  const std::uint64_t seed_base = 11;
  const std::uint64_t seeds = 4;
  const auto cell = exp::run_replicates(gen.graph, opts, seed_base, seeds);

  double dev_sum = 0, miss_sum = 0, steal_sum = 0, step_sum = 0;
  for (std::uint64_t k = 0; k < seeds; ++k) {
    opts.seed = seed_base + k;
    const auto r = sched::run_experiment(gen.graph, opts);
    dev_sum += static_cast<double>(r.deviations.deviations);
    miss_sum += static_cast<double>(r.additional_misses);
    steal_sum += static_cast<double>(r.par.steals);
    step_sum += static_cast<double>(r.par.steps);
  }
  const auto n = static_cast<double>(seeds);
  EXPECT_DOUBLE_EQ(cell.deviations.mean(), dev_sum / n);
  EXPECT_DOUBLE_EQ(cell.additional_misses.mean(), miss_sum / n);
  EXPECT_DOUBLE_EQ(cell.steals.mean(), steal_sum / n);
  EXPECT_DOUBLE_EQ(cell.steps.mean(), step_sum / n);
  EXPECT_EQ(cell.deviations.count(), seeds);
  EXPECT_EQ(cell.stats.nodes, gen.graph.num_nodes());
  // The sequential baseline is seed-independent.
  EXPECT_DOUBLE_EQ(exp::stderr_of(cell.seq_misses), 0.0);
}

TEST(Stderr, MatchesHandComputedValue) {
  support::Accumulator acc;
  for (const double x : {1.0, 2.0, 3.0, 4.0}) acc.add(x);
  EXPECT_DOUBLE_EQ(acc.mean(), 2.5);
  // Sample variance 5/3; stderr = sqrt(5/3) / sqrt(4).
  EXPECT_NEAR(exp::stderr_of(acc), std::sqrt(5.0 / 3.0) / 2.0, 1e-12);

  // A single replicate has no spread estimate: stderr is NaN (rendered as
  // a missing cell), not a false-precision 0.
  support::Accumulator single;
  single.add(42.0);
  EXPECT_TRUE(std::isnan(exp::stderr_of(single)));
}

TEST(RunSweep, DeterministicAcrossWorkerCounts) {
  const auto spec = small_spec();
  const auto a = exp::run_sweep(spec, 1);
  const auto b = exp::run_sweep(spec, 4);
  const std::string csv_a = exp::to_table(a).to_csv();
  const std::string csv_b = exp::to_table(b).to_csv();
  EXPECT_FALSE(csv_a.empty());
  EXPECT_EQ(csv_a, csv_b);
}

TEST(RunSweep, RowsMatchDirectReplicateRuns) {
  const auto spec = small_spec();
  const auto result = exp::run_sweep(spec, 3);
  ASSERT_EQ(result.rows.size(), 16u);
  EXPECT_EQ(result.seeds, spec.seeds);

  const auto graphs = exp::generate_graphs(spec);
  for (const auto& row : result.rows) {
    const auto direct =
        exp::run_replicates(graphs[row.config.graph_index].graph,
                            row.config.options, spec.seed_base, spec.seeds);
    EXPECT_DOUBLE_EQ(row.cell.deviations.mean(), direct.deviations.mean());
    EXPECT_DOUBLE_EQ(row.cell.additional_misses.mean(),
                     direct.additional_misses.mean());
    EXPECT_DOUBLE_EQ(row.cell.steals.mean(), direct.steals.mean());
  }
}

TEST(TouchEnableParsing, RejectsUnknownNames) {
  EXPECT_EQ(sched::touch_enable_from_string("touch-first"),
            TouchEnable::TouchFirst);
  EXPECT_EQ(sched::touch_enable_from_string("continuation-first"),
            TouchEnable::ContinuationFirst);
  EXPECT_THROW(sched::touch_enable_from_string("touchfirst"), CheckError);
}

TEST(RunSweep, UnknownFamilySurfacesAsCheckError) {
  exp::SweepSpec spec = small_spec();
  spec.graphs = {{"no-such-family", {}, {}}};
  EXPECT_THROW(exp::run_sweep(spec, 2), CheckError);
}

TEST(SweepOutput, CsvHasHeaderAndOneLinePerConfig) {
  const auto spec = small_spec();
  const auto result = exp::run_sweep(spec, 2);
  const std::string csv = exp::to_table(result).to_csv();
  ASSERT_EQ(csv.rfind(
                "backend,family,size,size2,nodes,span,touches,procs,policy,",
                0),
            0u);
  std::size_t lines = 0;
  for (const char ch : csv)
    if (ch == '\n') ++lines;
  EXPECT_EQ(lines, 1 + result.rows.size());
  EXPECT_NE(csv.find("future-first"), std::string::npos);
  EXPECT_NE(csv.find("parent-first"), std::string::npos);
}

TEST(SweepSpec, PerFamilySizeListsExpandAndShareGraphs) {
  exp::SweepSpec spec;
  spec.graphs = {{"fig4", {.size = 9}, {4, 6}}, {"fig6a", {.size = 5}, {}}};
  spec.procs = {1, 2};
  spec.policies = {ForkPolicy::FutureFirst};
  spec.touch_enables = {TouchEnable::TouchFirst};
  spec.cache_lines = {0, 4};

  // The axis list flattens to one single-size entry per (family, size).
  const auto axes = exp::flatten_graph_axes(spec);
  ASSERT_EQ(axes.size(), 3u);
  EXPECT_EQ(axes[0].family, "fig4");
  EXPECT_EQ(axes[0].params.size, 4u);
  EXPECT_EQ(axes[1].params.size, 6u);
  EXPECT_EQ(axes[2].family, "fig6a");
  EXPECT_EQ(axes[2].params.size, 5u);
  for (const auto& axis : axes) EXPECT_TRUE(axis.sizes.empty());

  // axes(3) × cache(2) × procs(2) configurations, graph-major order.
  const auto configs = exp::expand_spec(spec);
  ASSERT_EQ(configs.size(), 12u);
  EXPECT_EQ(configs[0].params.size, 4u);
  EXPECT_EQ(configs[4].params.size, 6u);
  EXPECT_EQ(configs[8].family, "fig6a");
  // Configurations differing only in P share one generated graph; each
  // (family, size, cache geometry) gets its own.
  EXPECT_EQ(configs[0].graph_index, configs[1].graph_index);
  EXPECT_EQ(configs[2].graph_index, 1u);  // fig4@4, C=4
  EXPECT_EQ(configs[4].graph_index, 2u);  // fig4@6, C=0
  EXPECT_EQ(configs[8].graph_index, 4u);  // fig6a@5, C=0

  // The generated graph list lines up with graph_index: every config's
  // graph was built from its own family and (per-family) size.
  const auto graphs = exp::generate_graphs(spec);
  ASSERT_EQ(graphs.size(), 6u);
  for (const auto& cfg : configs) {
    ASSERT_LT(cfg.graph_index, graphs.size());
    const auto direct = graphs::make_named(cfg.family, cfg.params);
    EXPECT_EQ(graphs[cfg.graph_index].graph.num_nodes(),
              direct.graph.num_nodes());
  }
}

TEST(RunSweep, ShardsPartitionConfigsRoundRobin) {
  const auto spec = small_spec();
  std::vector<char> seen(16, 0);
  for (const std::uint32_t shard : {0u, 1u, 2u}) {
    exp::SweepRunOptions opts;
    opts.threads = 2;
    opts.shard = {shard, 3};
    std::vector<std::size_t> indices;
    opts.on_row = [&](std::size_t i, const exp::SweepRow&) {
      indices.push_back(i);
    };
    const auto result = exp::run_sweep(spec, opts);
    for (const std::size_t i : indices) {
      EXPECT_EQ(i % 3, shard);
      EXPECT_FALSE(seen[i]) << "config " << i << " ran in two shards";
      seen[i] = 1;
    }
    // Non-owned rows keep their config but no replicates; to_table skips
    // them.
    EXPECT_EQ(exp::to_table(result).num_rows(), indices.size());
    for (std::size_t i = 0; i < result.rows.size(); ++i)
      EXPECT_EQ(result.rows[i].cell.deviations.count() > 0,
                i % 3 == shard);
  }
  for (const char s : seen) EXPECT_TRUE(s);  // the shards cover the grid
}

TEST(RunSweep, FailureCancelsRemainingJobs) {
  const auto spec = small_spec();  // 16 configurations
  exp::SweepRunOptions opts;
  opts.threads = 1;  // deterministic job order
  std::size_t rows_seen = 0;
  opts.on_row = [&](std::size_t, const exp::SweepRow&) {
    if (++rows_seen == 2) throw std::runtime_error("boom");
  };
  EXPECT_THROW(exp::run_sweep(spec, opts), std::runtime_error);
  // The cancel flag stops the worker loop: no further jobs are pulled
  // after the failure.
  EXPECT_EQ(rows_seen, 2u);
}

TEST(RunSweep, FailingConfigurationSurfacesAsCheckError) {
  auto spec = small_spec();
  spec.max_steps = 1;  // no schedule can finish in one round
  EXPECT_THROW(exp::run_sweep(spec, 4), CheckError);
}

TEST(SweepOutput, SingleReplicateStderrIsMissing) {
  auto spec = small_spec();
  spec.seeds = 1;
  const auto table = exp::to_table(exp::run_sweep(spec, 2));
  const auto& headers = table.headers();
  std::size_t stderr_col = headers.size();
  for (std::size_t c = 0; c < headers.size(); ++c)
    if (headers[c] == "stderr_deviations") stderr_col = c;
  ASSERT_LT(stderr_col, headers.size());
  for (const auto& row : table.rows()) EXPECT_EQ(row[stderr_col], "");
  // Missing cells render as a dash in the aligned table and null in JSON.
  EXPECT_NE(table.to_string().find("—"), std::string::npos);
  EXPECT_NE(table.to_json().find("\"stderr_deviations\": null"),
            std::string::npos);
}

namespace checkpointing {

std::string temp_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + name;
  std::remove(path.c_str());
  return path;
}

TEST(Checkpoint, RunSweepTableMatchesToTable) {
  const auto spec = small_spec();
  const std::string direct = exp::to_table(exp::run_sweep(spec, 2)).to_csv();
  exp::SweepTableOptions opts;
  opts.threads = 2;
  EXPECT_EQ(exp::run_sweep_table(spec, opts).to_csv(), direct);
}

TEST(Checkpoint, ShardedRunsMergeByteIdentical) {
  const auto spec = small_spec();
  const std::string full = exp::to_table(exp::run_sweep(spec, 2)).to_csv();
  std::vector<exp::Checkpoint> shards;
  for (const std::uint32_t shard : {0u, 1u}) {
    exp::SweepTableOptions opts;
    opts.threads = 2;
    opts.shard = {shard, 2};
    opts.checkpoint_path =
        temp_path("shard" + std::to_string(shard) + ".ckpt");
    exp::run_sweep_table(spec, opts);
    shards.push_back(exp::load_checkpoint(opts.checkpoint_path));
  }
  EXPECT_EQ(exp::merge_checkpoints(shards).to_csv(), full);
  // An incomplete set of shards must fail loudly, not emit a short table.
  EXPECT_THROW(exp::merge_checkpoints({shards[1]}), CheckError);
}

TEST(Checkpoint, ResumeExecutesOnlyMissingConfigs) {
  const auto spec = small_spec();
  const std::string full = exp::to_table(exp::run_sweep(spec, 2)).to_csv();
  const std::string path = temp_path("resume.ckpt");

  // A "killed" run that only finished the even-indexed half of the grid.
  {
    exp::SweepTableOptions opts;
    opts.threads = 2;
    opts.shard = {0, 2};
    opts.checkpoint_path = path;
    exp::run_sweep_table(spec, opts);
  }
  // Resuming the full grid re-executes exactly the odd-indexed configs…
  std::vector<std::size_t> executed;
  exp::SweepTableOptions opts;
  opts.threads = 1;
  opts.checkpoint_path = path;
  opts.on_row = [&](std::size_t i, const exp::SweepRow&) {
    executed.push_back(i);
  };
  const auto table = exp::run_sweep_table(spec, opts);
  EXPECT_EQ(executed.size(), 8u);
  for (const std::size_t i : executed) EXPECT_EQ(i % 2, 1u);
  EXPECT_EQ(table.to_csv(), full);

  // …and a second resume finds everything done and runs nothing.
  executed.clear();
  const auto again = exp::run_sweep_table(spec, opts);
  EXPECT_TRUE(executed.empty());
  EXPECT_EQ(again.to_csv(), full);
}

TEST(Checkpoint, TornTailIsDroppedAndReExecuted) {
  const auto spec = small_spec();
  const std::string full = exp::to_table(exp::run_sweep(spec, 2)).to_csv();
  const std::string path = temp_path("torn.ckpt");
  {
    exp::SweepTableOptions opts;
    opts.threads = 2;
    opts.checkpoint_path = path;
    exp::run_sweep_table(spec, opts);
  }
  // Chop the file mid-record, as a kill -9 during an append would.
  std::string text;
  {
    std::ifstream in(path, std::ios::binary);
    text.assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
  }
  ASSERT_GT(text.size(), 20u);
  {
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    out << text.substr(0, text.size() - 20);
  }
  std::vector<std::size_t> executed;
  exp::SweepTableOptions opts;
  opts.threads = 1;
  opts.checkpoint_path = path;
  opts.on_row = [&](std::size_t i, const exp::SweepRow&) {
    executed.push_back(i);
  };
  const auto table = exp::run_sweep_table(spec, opts);
  EXPECT_GE(executed.size(), 1u);  // at least the torn config re-ran
  EXPECT_LE(executed.size(), 2u);
  EXPECT_EQ(table.to_csv(), full);
  // The rewritten checkpoint is whole again: merging it alone reproduces
  // the full table (it has every config).
  EXPECT_EQ(exp::merge_checkpoints({exp::load_checkpoint(path)}).to_csv(),
            full);
}

TEST(Checkpoint, MismatchedSpecIsRejected) {
  const auto spec = small_spec();
  const std::string path = temp_path("mismatch.ckpt");
  {
    exp::SweepTableOptions opts;
    opts.threads = 2;
    opts.checkpoint_path = path;
    exp::run_sweep_table(spec, opts);
  }
  auto other = spec;
  other.procs = {2, 4};  // same grid shape, different configurations
  exp::SweepTableOptions opts;
  opts.checkpoint_path = path;
  EXPECT_THROW(exp::run_sweep_table(other, opts), CheckError);

  // Parameters the table rows do not carry (seed base, stall probability,
  // graph seed) are still rejected, via the spec signature.
  auto reseeded = spec;
  reseeded.seed_base = 99;
  EXPECT_THROW(exp::run_sweep_table(reseeded, opts), CheckError);
  auto restalled = spec;
  restalled.stall_prob = 0.75;
  EXPECT_THROW(exp::run_sweep_table(restalled, opts), CheckError);
}

TEST(Checkpoint, MergeRejectsMissingTrailingConfigs) {
  const auto spec = small_spec();
  const std::string path = temp_path("trailing.ckpt");
  {
    exp::SweepTableOptions opts;
    opts.threads = 2;
    opts.checkpoint_path = path;
    exp::run_sweep_table(spec, opts);
  }
  // Drop the record of the highest config index. A contiguity check alone
  // would miss this truncation; the signature's grid size must catch it.
  auto ckpt = exp::load_checkpoint(path);
  exp::Checkpoint truncated{ckpt.signature,
                            support::Table(ckpt.table.headers())};
  const std::string last = std::to_string(ckpt.table.rows().size() - 1);
  for (const auto& cells : ckpt.table.rows())
    if (cells.front() != last) truncated.table.add_row(cells);
  EXPECT_THROW(exp::merge_checkpoints({truncated}), CheckError);
}

TEST(Checkpoint, TornInitialHeaderWriteIsRecoverable) {
  const auto spec = small_spec();
  const std::string full = exp::to_table(exp::run_sweep(spec, 2)).to_csv();
  const std::string path = temp_path("torn-header.ckpt");
  {
    // A run killed between the signature and header writes: one complete
    // line, one partial. Re-running must start fresh, not error out.
    std::ofstream out(path, std::ios::binary);
    out << "# wsf-sweep-checkpoint " << exp::spec_signature(spec)
        << "\nconfig_in";
  }
  exp::SweepTableOptions opts;
  opts.threads = 2;
  opts.checkpoint_path = path;
  EXPECT_EQ(exp::run_sweep_table(spec, opts).to_csv(), full);

  // But a file that is not a checkpoint at all must never be clobbered.
  const std::string foreign = temp_path("notes.txt");
  {
    std::ofstream out(foreign, std::ios::binary);
    out << "do not lose me";
  }
  opts.checkpoint_path = foreign;
  EXPECT_THROW(exp::run_sweep_table(spec, opts), CheckError);
  std::ifstream check(foreign);
  std::string contents;
  std::getline(check, contents);
  EXPECT_EQ(contents, "do not lose me");
}

TEST(Checkpoint, WallMsColumnSurvivesResumeAndMerge) {
  const auto spec = small_spec();
  const std::string path = temp_path("wall.ckpt");
  // A partial run (the even-indexed half of the grid)…
  {
    exp::SweepTableOptions opts;
    opts.threads = 2;
    opts.shard = {0, 2};
    opts.checkpoint_path = path;
    exp::run_sweep_table(spec, opts);
  }
  const auto before = exp::load_checkpoint(path);
  ASSERT_GE(before.table.headers().size(), 2u);
  EXPECT_EQ(before.table.headers()[0], "config_index");
  EXPECT_EQ(before.table.headers()[1], "wall_ms");
  std::map<std::string, std::string> wall_before;
  for (const auto& row : before.table.rows()) {
    // wall_ms is a non-negative integer millisecond count.
    EXPECT_FALSE(row[1].empty());
    EXPECT_EQ(row[1].find_first_not_of("0123456789"), std::string::npos);
    wall_before[row[0]] = row[1];
  }
  ASSERT_EQ(wall_before.size(), 8u);

  // …then a resume of the full grid: restored rows keep their recorded
  // wall time verbatim (the resume rewrite must not re-time them).
  {
    exp::SweepTableOptions opts;
    opts.threads = 2;
    opts.checkpoint_path = path;
    exp::run_sweep_table(spec, opts);
  }
  const auto after = exp::load_checkpoint(path);
  EXPECT_EQ(after.table.num_rows(), 16u);
  for (const auto& row : after.table.rows()) {
    const auto it = wall_before.find(row[0]);
    if (it != wall_before.end()) {
      EXPECT_EQ(row[1], it->second);
    }
  }

  // Merging strips the bookkeeping columns: the final table's bytes do
  // not depend on machine speed.
  const auto merged = exp::merge_checkpoints({after});
  EXPECT_EQ(merged.headers(), exp::sweep_table_headers());
  EXPECT_EQ(merged.to_csv(), exp::to_table(exp::run_sweep(spec, 2)).to_csv());
}

TEST(Checkpoint, ProgressHeartbeatReportsDoneTotalAndEta) {
  const auto spec = small_spec();  // 16 configurations
  std::ostringstream progress;
  exp::SweepTableOptions opts;
  opts.threads = 1;
  opts.progress = &progress;
  exp::run_sweep_table(spec, opts);

  std::istringstream lines(progress.str());
  std::string line;
  std::size_t count = 0;
  std::string last;
  while (std::getline(lines, line)) {
    ++count;
    EXPECT_NE(line.find("/16 configs"), std::string::npos) << line;
    EXPECT_NE(line.find("ETA"), std::string::npos) << line;
    last = line;
  }
  EXPECT_EQ(count, 16u);  // one heartbeat per finished configuration
  EXPECT_NE(last.find("16/16 configs (100.0%)"), std::string::npos) << last;

  // A resumed run reports the restored configurations up front and only
  // heartbeats the re-executed ones.
  const std::string path = temp_path("progress.ckpt");
  {
    exp::SweepTableOptions half;
    half.threads = 2;
    half.shard = {0, 2};
    half.checkpoint_path = path;
    exp::run_sweep_table(spec, half);
  }
  std::ostringstream resumed;
  exp::SweepTableOptions resume;
  resume.threads = 1;
  resume.checkpoint_path = path;
  resume.progress = &resumed;
  exp::run_sweep_table(spec, resume);
  EXPECT_EQ(resumed.str().rfind("wsf-sweep: resumed 8/16 configs", 0), 0u);
  EXPECT_NE(resumed.str().find("9/16 configs"), std::string::npos);
  EXPECT_NE(resumed.str().find("16/16 configs (100.0%)"),
            std::string::npos);
}

TEST(Checkpoint, SignatureCoversResultAffectingParameters) {
  const auto spec = small_spec();
  const std::string base = exp::spec_signature(spec);
  auto changed = spec;
  changed.seed_base = 99;
  EXPECT_NE(exp::spec_signature(changed), base);
  changed = spec;
  changed.stall_prob = 0.9;
  EXPECT_NE(exp::spec_signature(changed), base);
  changed = spec;
  changed.cache_policy = "fifo";
  EXPECT_NE(exp::spec_signature(changed), base);
  changed = spec;
  changed.graphs[0].params.seed = 5;  // graph generation seed
  EXPECT_NE(exp::spec_signature(changed), base);
  changed = spec;
  changed.graphs[0].sizes = {4};  // same size via the per-family list
  EXPECT_EQ(exp::spec_signature(changed), base);
}

}  // namespace checkpointing

TEST(SweepOutput, JsonIsAnArrayOfRowObjects) {
  const auto spec = small_spec();
  const auto result = exp::run_sweep(spec, 2);
  const std::string json = exp::to_table(result).to_json();
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '[');
  std::size_t objects = 0;
  for (const char ch : json)
    if (ch == '{') ++objects;
  EXPECT_EQ(objects, result.rows.size());
  // Numeric cells are unquoted, string cells quoted.
  EXPECT_NE(json.find("\"family\": \"fig4\""), std::string::npos);
  EXPECT_NE(json.find("\"procs\": 1"), std::string::npos);
  EXPECT_EQ(json.find("\"procs\": \""), std::string::npos);
}

}  // namespace
}  // namespace wsf
