// Graph replay on the real work-stealing runtime (runtime/replay.hpp):
// with one worker the replayed node order must equal the sequential
// baseline (and hence the P=1 simulator) on every registered graph family
// under every policy combination; with many workers every node still
// executes exactly once, the counters reconcile, and the deviation measure
// is computable through the same core::count_deviations as the simulator.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "core/deviation.hpp"
#include "core/policy.hpp"
#include "graphs/registry.hpp"
#include "runtime/replay.hpp"
#include "sched/options.hpp"
#include "sched/sequential.hpp"
#include "sched/simulator.hpp"

namespace wsf {
namespace {

using core::ForkPolicy;
using sched::TouchEnable;

graphs::RegistryParams small_params() {
  graphs::RegistryParams params;
  params.size = 4;
  params.size2 = 3;
  params.seed = 1;
  return params;
}

runtime::SpawnPolicy spawn_policy(ForkPolicy p) {
  return p == ForkPolicy::FutureFirst ? runtime::SpawnPolicy::FutureFirst
                                      : runtime::SpawnPolicy::ParentFirst;
}

std::vector<core::NodeId> flatten(
    const std::vector<std::vector<core::NodeId>>& orders) {
  std::vector<core::NodeId> all;
  for (const auto& order : orders)
    all.insert(all.end(), order.begin(), order.end());
  return all;
}

TEST(Replay, OneWorkerMatchesSequentialOnEveryFamily) {
  // The acceptance gate of the runtime backend: a 1-worker replay is
  // *exactly* the sequential execution — same node order, zero deviations,
  // matching the P=1 simulator — for every registered construction, both
  // fork policies, and both touch-enable rules.
  for (const ForkPolicy policy :
       {ForkPolicy::FutureFirst, ForkPolicy::ParentFirst}) {
    runtime::RuntimeOptions ropts;
    ropts.workers = 1;
    ropts.policy = spawn_policy(policy);
    runtime::Scheduler sched(ropts);
    for (const std::string& family : graphs::registry_names()) {
      const auto gen = graphs::make_named(family, small_params());
      runtime::GraphReplayer replayer(gen.graph);
      for (const TouchEnable touch :
           {TouchEnable::TouchFirst, TouchEnable::ContinuationFirst}) {
        sched::SimOptions opts;
        opts.procs = 1;
        opts.policy = policy;
        opts.touch_enable = touch;
        const sched::SeqResult seq = sched::run_sequential(gen.graph, opts);

        runtime::ReplayOptions replay_opts;
        replay_opts.touch_enable = touch;
        const runtime::ReplayResult r = replayer.run(sched, replay_opts);
        const auto& orders = replayer.worker_orders();
        ASSERT_EQ(orders.size(), 1u);
        EXPECT_EQ(orders[0], seq.order)
            << family << " policy=" << to_string(policy)
            << " touch=" << to_string(touch);

        const core::DeviationReport dev =
            core::count_deviations(gen.graph, seq.order, orders);
        const sched::SimResult par = sched::simulate(gen.graph, opts);
        const core::DeviationReport sim_dev =
            core::count_deviations(gen.graph, seq.order, par.proc_orders);
        EXPECT_EQ(dev.deviations, sim_dev.deviations) << family;
        EXPECT_EQ(dev.deviations, 0u) << family;

        // The Figure 3 hazard cannot occur at one worker with the exact
        // sequential order unless the simulator sees it too.
        if (gen.expect.structured == 1) {
          EXPECT_EQ(r.premature_touches, 0u) << family;
        }
      }
    }
  }
}

TEST(Replay, ReplicatesReuseArenaAndStayIdentical) {
  // One scheduler + one replayer reused across replicates (the runtime
  // analogue of Simulator::reset): at one worker every replicate is the
  // same deterministic execution.
  const auto gen = graphs::make_named("fig4", small_params());
  runtime::RuntimeOptions ropts;
  ropts.workers = 1;
  runtime::Scheduler sched(ropts);
  runtime::GraphReplayer replayer(gen.graph);
  runtime::ReplayOptions opts;
  std::vector<core::NodeId> first;
  for (int k = 0; k < 5; ++k) {
    (void)replayer.run(sched, opts);
    const auto flat = flatten(replayer.worker_orders());
    if (k == 0)
      first = flat;
    else
      EXPECT_EQ(flat, first) << "replicate " << k;
  }
}

class ReplayBothPolicies : public ::testing::TestWithParam<ForkPolicy> {};

TEST_P(ReplayBothPolicies, MultiWorkerCoversEveryNodeOnce) {
  runtime::RuntimeOptions ropts;
  ropts.workers = 4;
  ropts.policy = spawn_policy(GetParam());
  runtime::Scheduler sched(ropts);
  for (const char* family :
       {"fig2", "fig4", "forkjoin", "pipeline", "random-local-touch"}) {
    const auto gen = graphs::make_named(family, small_params());
    runtime::GraphReplayer replayer(gen.graph);
    for (const TouchEnable touch :
         {TouchEnable::TouchFirst, TouchEnable::ContinuationFirst}) {
      runtime::ReplayOptions opts;
      opts.touch_enable = touch;
      (void)replayer.run(sched, opts);
      std::vector<core::NodeId> all = flatten(replayer.worker_orders());
      ASSERT_EQ(all.size(), gen.graph.num_nodes()) << family;
      std::sort(all.begin(), all.end());
      for (std::size_t i = 0; i < all.size(); ++i)
        ASSERT_EQ(all[i], static_cast<core::NodeId>(i))
            << family << ": node executed twice or missed";

      // Deviations are computable through the very same function the
      // simulator's measure uses; the sequential baseline must cover the
      // order (count_deviations validates coverage internally).
      sched::SimOptions sim_opts;
      sim_opts.policy = GetParam();
      sim_opts.touch_enable = touch;
      const sched::SeqResult seq = sched::run_sequential(gen.graph, sim_opts);
      const core::DeviationReport dev = core::count_deviations(
          gen.graph, seq.order, replayer.worker_orders());
      // Section 5.1's breakdown (only touches and fork children deviate)
      // is a single-touch property: local-touch graphs have interior
      // future parents whose pushed continuations can be stolen mid-
      // thread, which surfaces as an "other" deviation on any scheduler.
      if (gen.expect.structured == 1 && gen.expect.single_touch == 1) {
        EXPECT_EQ(dev.other_deviations, 0u) << family;
      }
    }
  }
}

TEST_P(ReplayBothPolicies, CountersReconcileAfterReplay) {
  runtime::RuntimeOptions ropts;
  ropts.workers = 4;
  ropts.policy = spawn_policy(GetParam());
  runtime::Scheduler sched(ropts);
  graphs::RegistryParams params = small_params();
  params.size = 6;
  const auto gen = graphs::make_named("fig8", params);
  runtime::GraphReplayer replayer(gen.graph);
  const runtime::ReplayResult r = replayer.run(sched, {});
  const runtime::WorkerCounters t = r.counters.total();

  // One fresh task per spawned future thread plus the injected root.
  EXPECT_EQ(t.tasks_run, t.spawns + 1);
  EXPECT_EQ(t.inbox_takes, 1u);
  // Every deque/inbox-sourced job was obtained exactly one way, and every
  // Resume job that was created was executed.
  EXPECT_EQ(t.local_pops + t.inbox_takes + t.steals,
            (t.tasks_run - t.inline_children) + t.resumes);
  EXPECT_EQ(t.resumes, t.continuations_pushed + t.wakes_pushed);
  // Every park resolves through exactly one handoff or one deque wake.
  EXPECT_EQ(t.parked_touches, t.handoff_runs + t.wakes_pushed);
  // Every fiber activation has one source.
  EXPECT_EQ(t.fiber_resumes, t.tasks_run + t.resumes + t.handoff_runs);
}

INSTANTIATE_TEST_SUITE_P(Policies, ReplayBothPolicies,
                         ::testing::Values(ForkPolicy::FutureFirst,
                                           ForkPolicy::ParentFirst),
                         [](const auto& info) {
                           return info.param == ForkPolicy::FutureFirst
                                      ? "FutureFirst"
                                      : "ParentFirst";
                         });

}  // namespace
}  // namespace wsf
