// Experiment harness and schedule formatting.
#include <gtest/gtest.h>

#include "graphs/generators.hpp"
#include "sched/harness.hpp"

namespace wsf::sched {
namespace {

TEST(Harness, ExperimentFieldsConsistent) {
  const auto gen = graphs::fib_dag(10);
  SimOptions opts;
  opts.procs = 4;
  opts.seed = 3;
  opts.stall_prob = 0.2;
  opts.cache_lines = 8;
  const auto r = run_experiment(gen.graph, opts);
  EXPECT_EQ(r.stats.nodes, gen.graph.num_nodes());
  EXPECT_EQ(r.seq.order.size(), gen.graph.num_nodes());
  EXPECT_EQ(r.additional_misses,
            static_cast<std::int64_t>(r.par.total_misses()) -
                static_cast<std::int64_t>(r.seq.misses));
  std::size_t flagged = 0;
  for (char f : r.deviations.is_deviation) flagged += f;
  EXPECT_EQ(flagged, r.deviations.deviations);
}

TEST(Harness, FormatScheduleShowsRolesAndDeviations) {
  const auto gen = graphs::fig4(2, true);
  SimOptions opts;
  opts.procs = 2;
  opts.seed = 1;
  opts.stall_prob = 0.3;
  const auto r = run_experiment(gen.graph, opts);
  const std::string s = format_schedule(gen.graph, r.par, r.deviations);
  EXPECT_NE(s.find("p0:"), std::string::npos);
  EXPECT_NE(s.find("p1:"), std::string::npos);
  EXPECT_NE(s.find("u1"), std::string::npos);  // role label rendered
}

TEST(Harness, FormatScheduleElidesLongRuns) {
  const auto gen = graphs::serial_chain(100);
  SimOptions opts;
  const auto r = run_experiment(gen.graph, opts);
  const std::string s =
      format_schedule(gen.graph, r.par, r.deviations, /*max_nodes=*/10);
  EXPECT_NE(s.find("(+90)"), std::string::npos);
}

TEST(Harness, SequentialBaselineUsesSamePolicy) {
  const auto gen = graphs::fig5b(2);
  SimOptions a;
  a.policy = core::ForkPolicy::FutureFirst;
  SimOptions b;
  b.policy = core::ForkPolicy::ParentFirst;
  const auto ra = run_experiment(gen.graph, a);
  const auto rb = run_experiment(gen.graph, b);
  EXPECT_NE(ra.seq.order, rb.seq.order);
  // Both single-processor runs have zero deviations against their own
  // baselines.
  EXPECT_EQ(ra.deviations.deviations, 0u);
  EXPECT_EQ(rb.deviations.deviations, 0u);
}

}  // namespace
}  // namespace wsf::sched
