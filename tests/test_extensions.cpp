// Tests for the extension features: deviation chains (Theorem 8's proof
// object) and the structure ablation generator (Section 7).
#include <gtest/gtest.h>

#include "core/classify.hpp"
#include "core/deviation.hpp"
#include "core/traversal.hpp"
#include "graphs/fig6_controller.hpp"
#include "graphs/generators.hpp"
#include "sched/harness.hpp"

namespace wsf {
namespace {

using core::ForkPolicy;
using sched::SimOptions;

TEST(DeviationChains, Fig6aOneStealOneLongChain) {
  auto gen = graphs::fig6a(16, 0);
  SimOptions opts;
  opts.procs = 2;
  opts.policy = ForkPolicy::FutureFirst;
  graphs::Fig6Controller ctrl;
  const auto r = sched::run_experiment(gen.graph, opts, &ctrl);
  ASSERT_EQ(r.par.steals, 1u);
  const auto chains =
      core::deviation_chains(gen.graph, r.deviations, r.par.stolen_nodes);
  ASSERT_EQ(chains.size(), 1u);
  // The chain walks the passing chain: x_1 … x_m (16 touches).
  EXPECT_GE(chains[0].touches.size(), 14u);
  EXPECT_LE(chains[0].touches.size(), 16u);
  // Chain touches must all be flagged deviations and form a path (each
  // deeper than the previous in topological position).
  for (core::NodeId x : chains[0].touches)
    EXPECT_TRUE(r.deviations.is_deviation[x]);
}

TEST(DeviationChains, NoStealNoChains) {
  auto gen = graphs::fig6a(8, 0);
  SimOptions opts;
  opts.procs = 1;
  const auto r = sched::run_experiment(gen.graph, opts);
  const auto chains =
      core::deviation_chains(gen.graph, r.deviations, r.par.stolen_nodes);
  EXPECT_TRUE(chains.empty());
}

TEST(DeviationChains, BoundedBySpanOnRandomDags) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    graphs::RandomDagParams gp;
    gp.seed = seed;
    gp.target_nodes = 800;
    const auto gen = graphs::random_single_touch(gp);
    const auto span = core::span(gen.graph);
    SimOptions opts;
    opts.procs = 4;
    opts.seed = seed;
    opts.stall_prob = 0.3;
    opts.policy = ForkPolicy::FutureFirst;
    const auto r = sched::run_experiment(gen.graph, opts);
    const auto chains =
        core::deviation_chains(gen.graph, r.deviations, r.par.stolen_nodes);
    EXPECT_EQ(chains.size(), r.par.steals) << "seed " << seed;
    for (const auto& c : chains)
      EXPECT_LE(c.touches.size(), span) << "seed " << seed;
  }
}

TEST(AblationMix, FullyStructuredIsSingleTouch) {
  const auto gen = graphs::unstructured_mix(12, 0.0, 8, 1);
  const auto rep = core::classify(gen.graph);
  EXPECT_TRUE(rep.structured);
  EXPECT_TRUE(rep.single_touch);
}

TEST(AblationMix, AnyEarlyConsumerBreaksStructure) {
  const auto gen = graphs::unstructured_mix(12, 1.0, 8, 1);
  const auto rep = core::classify(gen.graph);
  EXPECT_FALSE(rep.structured);
  EXPECT_FALSE(rep.single_touch);
  EXPECT_FALSE(rep.violations.empty());
}

TEST(AblationMix, PrematureTouchesTrackTheFraction) {
  // With frac = 0 no schedule produces premature checks; with frac = 1
  // thieving schedules do.
  std::uint64_t prem_structured = 0, prem_unstructured = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    SimOptions opts;
    opts.procs = 4;
    opts.seed = seed;
    opts.stall_prob = 0.3;
    {
      const auto gen = graphs::unstructured_mix(16, 0.0, 16, 3);
      prem_structured +=
          sched::simulate(gen.graph, opts).premature_touches;
    }
    {
      const auto gen = graphs::unstructured_mix(16, 1.0, 16, 3);
      prem_unstructured +=
          sched::simulate(gen.graph, opts).premature_touches;
    }
  }
  EXPECT_EQ(prem_structured, 0u);
  EXPECT_GT(prem_unstructured, 0u);
}

TEST(AblationMix, ExecutesCompletelyUnderAnySchedule) {
  for (double frac : {0.0, 0.5, 1.0}) {
    const auto gen = graphs::unstructured_mix(10, frac, 6, 5);
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      SimOptions opts;
      opts.procs = 3;
      opts.seed = seed;
      opts.stall_prob = 0.2;
      const auto r = sched::simulate(gen.graph, opts);
      std::size_t total = 0;
      for (const auto& po : r.proc_orders) total += po.size();
      EXPECT_EQ(total, gen.graph.num_nodes());
    }
  }
}

TEST(StolenNodes, RecordedInStealOrder) {
  auto gen = graphs::binary_forkjoin_tree(6, 2);
  SimOptions opts;
  opts.procs = 8;
  opts.seed = 5;
  const auto r = sched::simulate(gen.graph, opts);
  EXPECT_EQ(r.stolen_nodes.size(), r.steals);
  // Every stolen node is a fork child (only fork children enter deques).
  for (core::NodeId v : r.stolen_nodes) {
    const auto& node = gen.graph.node(v);
    ASSERT_EQ(node.in_count, 1);
    EXPECT_TRUE(gen.graph.is_fork(node.in[0].node));
  }
}

}  // namespace
}  // namespace wsf
