#include <gtest/gtest.h>

#include "core/builder.hpp"
#include "core/traversal.hpp"
#include "graphs/generators.hpp"

namespace wsf::core {
namespace {

Graph diamond() {
  // root → fork → (future: a) / (cont: b) → touch
  GraphBuilder b;
  const auto fk = b.fork(b.main_thread());
  b.step(fk.future_thread);
  b.step(b.main_thread());
  b.touch(b.main_thread(), fk.future_thread);
  return b.finish();
}

TEST(Traversal, TopoCoversAllNodesAndRespectsEdges) {
  const Graph g = diamond();
  const auto topo = topological_order(g);
  ASSERT_EQ(topo.size(), g.num_nodes());
  std::vector<std::size_t> pos(g.num_nodes());
  for (std::size_t i = 0; i < topo.size(); ++i) pos[topo[i]] = i;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const Node& n = g.node(v);
    for (std::uint8_t i = 0; i < n.out_count; ++i)
      EXPECT_LT(pos[v], pos[n.out[i].node]);
  }
}

TEST(Traversal, SpanOfChainIsLength) {
  const auto gen = graphs::serial_chain(17);
  EXPECT_EQ(span(gen.graph), 17u);
}

TEST(Traversal, SpanOfDiamond) {
  // root, fork, future-first node, future body, touch → 5 nodes.
  EXPECT_EQ(span(diamond()), 5u);
}

TEST(Traversal, ForkJoinTreeSpanGrowsLinearlyInDepth) {
  const auto d2 = graphs::binary_forkjoin_tree(2, 1);
  const auto d4 = graphs::binary_forkjoin_tree(4, 1);
  EXPECT_GT(span(d4.graph), span(d2.graph));
  // Work doubles per level.
  EXPECT_GT(d4.graph.num_nodes(), 3 * d2.graph.num_nodes());
}

TEST(Traversal, ReachabilityAndDescendants) {
  const Graph g = diamond();
  const NodeId fork = g.fork_nodes()[0];
  const NodeId touch = g.touch_nodes()[0];
  EXPECT_TRUE(is_descendant(g, fork, touch));
  EXPECT_FALSE(is_descendant(g, touch, fork));
  EXPECT_TRUE(is_descendant(g, fork, fork));
  const auto reach = reachable_from(g, fork);
  EXPECT_TRUE(reach[g.fork_left_child(fork)]);
  EXPECT_TRUE(reach[g.fork_right_child(fork)]);
  EXPECT_FALSE(reach[g.root()]);
}

TEST(Traversal, StatsCountEverything) {
  const auto gen = graphs::future_chain(4, 1, 3);
  const auto s = compute_stats(gen.graph);
  EXPECT_EQ(s.nodes, gen.graph.num_nodes());
  EXPECT_EQ(s.threads, gen.graph.num_threads());
  EXPECT_EQ(s.forks, gen.graph.fork_nodes().size());
  EXPECT_EQ(s.touches, gen.graph.touch_nodes().size());
  EXPECT_EQ(s.distinct_blocks, 4u);  // m1..m3 + poison m4
  EXPECT_GT(s.span, 0u);
}

TEST(Traversal, LongestPathFromRootMonotone) {
  const Graph g = diamond();
  const auto dist = longest_path_from_root(g);
  EXPECT_EQ(dist[g.root()], 1u);
  EXPECT_EQ(dist[g.final_node()], span(g));
}

}  // namespace
}  // namespace wsf::core
