// Error paths of the checkpoint merge/resume machinery: every way shard
// reassembly can be handed inconsistent inputs — duplicate configurations,
// overlapping shard partitions, mismatched spec signatures, tampered
// identity columns, foreign column sets — must fail loudly with a
// diagnostic naming the problem, never splice mismatched results.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "exp/checkpoint.hpp"
#include "exp/sweep.hpp"
#include "support/check.hpp"
#include "support/table.hpp"

namespace wsf {
namespace {

exp::SweepSpec spec_16() {
  exp::SweepSpec spec;
  spec.graphs = {{"fig4", {.size = 4}, {}}, {"fig6a", {.size = 4}, {}}};
  spec.procs = {1, 2};
  spec.policies = {core::ForkPolicy::FutureFirst,
                   core::ForkPolicy::ParentFirst};
  spec.cache_lines = {0, 4};
  spec.seeds = 2;
  return spec;
}

std::string temp_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + name;
  std::remove(path.c_str());
  return path;
}

// Runs one shard of the spec with a checkpoint and loads the result.
exp::Checkpoint shard_checkpoint(const exp::SweepSpec& spec,
                                 std::uint32_t index, std::uint32_t count,
                                 const std::string& name) {
  exp::SweepTableOptions opts;
  opts.threads = 2;
  opts.shard = {index, count};
  opts.checkpoint_path = temp_path(name);
  exp::run_sweep_table(spec, opts);
  return exp::load_checkpoint(opts.checkpoint_path);
}

// The CheckError message must mention every listed needle — diagnostics
// are part of the contract here, not decoration.
template <typename Fn>
void expect_failure_mentioning(Fn&& fn,
                               const std::vector<std::string>& needles) {
  try {
    fn();
    FAIL() << "expected a CheckError";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    for (const std::string& needle : needles)
      EXPECT_NE(what.find(needle), std::string::npos)
          << "diagnostic lacks '" << needle << "':\n" << what;
  }
}

TEST(MergeErrors, DuplicateConfigAcrossShards) {
  const auto spec = spec_16();
  const auto s0 = shard_checkpoint(spec, 0, 2, "dup0.ckpt");
  // The same shard twice: every config_index collides.
  expect_failure_mentioning(
      [&] { exp::merge_checkpoints({s0, s0}); },
      {"appears in more than one shard"});
}

TEST(MergeErrors, OverlappingShardPartitions) {
  const auto spec = spec_16();
  // Shard 0-of-2 owns {0,2,4,…}; shard 0-of-4 owns {0,4,8,…} — a genuine
  // operator mistake (inconsistent --shard flags across machines) whose
  // partitions overlap on every multiple of 4.
  const auto a = shard_checkpoint(spec, 0, 2, "overlap_a.ckpt");
  const auto b = shard_checkpoint(spec, 0, 4, "overlap_b.ckpt");
  expect_failure_mentioning(
      [&] { exp::merge_checkpoints({a, b}); },
      {"config 0", "more than one shard"});
}

TEST(MergeErrors, SignatureMismatchMidMerge) {
  const auto base = spec_16();
  auto other = base;
  other.stall_prob = 0.35;  // same grid shape, different experiment
  const auto s0 = shard_checkpoint(base, 0, 2, "sig0.ckpt");
  const auto s1 = shard_checkpoint(other, 1, 2, "sig1.ckpt");
  expect_failure_mentioning(
      [&] { exp::merge_checkpoints({s0, s1}); },
      {"shard 1", "different sweep spec", "signature mismatch"});
}

TEST(MergeErrors, IncompleteAndEmptyShardSets) {
  const auto spec = spec_16();
  const auto s0 = shard_checkpoint(spec, 0, 2, "half.ckpt");
  expect_failure_mentioning([&] { exp::merge_checkpoints({s0}); },
                            {"incomplete", "8 of 16"});
  expect_failure_mentioning([&] { exp::merge_checkpoints({}); },
                            {"nothing to merge"});
}

TEST(MergeErrors, ForeignColumnSetIsRejected) {
  const auto spec = spec_16();
  auto ckpt = shard_checkpoint(spec, 0, 2, "cols.ckpt");
  // A checkpoint from a build whose row format differs (extra column).
  std::vector<std::string> headers = ckpt.table.headers();
  headers.push_back("surprise");
  exp::Checkpoint foreign{ckpt.signature, support::Table(headers)};
  expect_failure_mentioning(
      [&] { exp::merge_checkpoints({foreign}); },
      {"different column set"});
}

// Resume-side error: a checkpoint whose per-row identity columns disagree
// with the spec expanded at that config_index.
TEST(MergeErrors, TamperedIdentityColumnRejectedOnResume) {
  const auto spec = spec_16();
  const std::string path = temp_path("tamper.ckpt");
  {
    exp::SweepTableOptions opts;
    opts.threads = 2;
    opts.checkpoint_path = path;
    exp::run_sweep_table(spec, opts);
  }
  // Swap a family cell: the signature still matches (it is spec-derived),
  // but row 0's identity no longer matches config 0.
  std::string text;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    text = buf.str();
  }
  // Skip the signature and header lines — their "fig4" occurrences are
  // spec-derived, and tampering them is the (already tested) signature
  // mismatch, not a row-identity mismatch.
  std::size_t body = 0;
  for (int newline = 0; newline < 2; ++newline)
    body = text.find('\n', body) + 1;
  const std::size_t at = text.find("fig4", body);
  ASSERT_NE(at, std::string::npos);
  text.replace(at, 4, "fig3");
  {
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    out << text;
  }
  exp::SweepTableOptions opts;
  opts.checkpoint_path = path;
  expect_failure_mentioning(
      [&] { exp::run_sweep_table(spec, opts); },
      {"does not match this sweep spec", "family", "fig3",
       "different grid"});
}

TEST(MergeErrors, CorruptWallMsCellRejectedOnResume) {
  const auto spec = spec_16();
  const std::string path = temp_path("wallms.ckpt");
  {
    exp::SweepTableOptions opts;
    opts.threads = 2;
    opts.checkpoint_path = path;
    exp::run_sweep_table(spec, opts);
  }
  // Corrupt the first data row's wall_ms cell (second column).
  std::string text;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    text = buf.str();
  }
  // Line 3 is the first data record: "<index>,<wall_ms>,…".
  std::size_t pos = 0;
  for (int newline = 0; newline < 2; ++newline)
    pos = text.find('\n', pos) + 1;
  const std::size_t comma = text.find(',', pos);
  const std::size_t comma2 = text.find(',', comma + 1);
  text.replace(comma + 1, comma2 - comma - 1, "soon");
  {
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    out << text;
  }
  exp::SweepTableOptions opts;
  opts.checkpoint_path = path;
  expect_failure_mentioning(
      [&] { exp::run_sweep_table(spec, opts); },
      {"bad wall_ms cell", "soon"});
}

}  // namespace
}  // namespace wsf
