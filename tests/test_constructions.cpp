// Quantitative checks of the paper's lower-bound constructions under the
// exact adversarial schedules the proofs describe. These tests pin the
// *shape* of every headline claim:
//   * fig6a / future_chain: one steal ⇒ Θ(m) deviations, Θ(m·C) additional
//     misses under future-first, sequential stays at O(m + C) (Theorem 9);
//   * fig7a: stealing {s} ⇒ Θ(n) deviations, Ω(n·C) additional misses under
//     parent-first, sequential stays at O(C) (Figure 2 / Theorem 10);
//   * fig7b / fig8: one steal at the start propagates to the tail(s);
//   * fig6b/fig6c: the self-organizing 3-processor (3·groups) rotation
//     accumulates Θ(k·m) (Θ(groups·k·m)) deviations.
#include <gtest/gtest.h>

#include "core/classify.hpp"
#include "graphs/fig6_controller.hpp"
#include "graphs/generators.hpp"
#include "sched/harness.hpp"

namespace wsf {
namespace {

using core::ForkPolicy;
using graphs::Fig6Controller;
using sched::ExperimentResult;
using sched::ScriptController;
using sched::SimOptions;

// ---------------------------------------------------------------------------
// fig6a — Theorem 9 gadget under future-first
// ---------------------------------------------------------------------------

ExperimentResult run_fig6a(std::uint32_t m, std::size_t C) {
  auto gen = graphs::fig6a(m, C);
  SimOptions opts;
  opts.procs = 2;
  opts.policy = ForkPolicy::FutureFirst;
  opts.cache_lines = C;
  Fig6Controller ctrl;
  return sched::run_experiment(gen.graph, opts, &ctrl);
}

TEST(Fig6a, IsCertifiedSingleTouch) {
  const auto gen = graphs::fig6a(8, 4);
  const auto report = core::classify(gen.graph);
  EXPECT_TRUE(report.structured);
  EXPECT_TRUE(report.single_touch);
  EXPECT_FALSE(report.fork_join);
}

TEST(Fig6a, OneStealCostsThetaMDeviations) {
  for (std::uint32_t m : {4u, 8u, 16u, 32u}) {
    const auto r = run_fig6a(m, /*C=*/0);
    EXPECT_EQ(r.par.steals, 1u) << "m=" << m;
    // Derivation: stolen f_2 plus f_3…f_m and g deviate on the thief; the
    // touches x_1…x_m deviate on the owner ⇒ about 2m deviations.
    EXPECT_GE(r.deviations.deviations, 2 * m - 2) << "m=" << m;
    EXPECT_LE(r.deviations.deviations, 2 * m + 4) << "m=" << m;
  }
}

TEST(Fig6a, OneStealCostsThetaMCAdditionalMisses) {
  const std::size_t C = 8;
  for (std::uint32_t m : {4u, 8u, 16u}) {
    const auto r = run_fig6a(m, C);
    // Sequential: palindrome keeps it near C + 2m.
    EXPECT_LE(r.seq.misses, C + 3 * m + 4) << "m=" << m;
    // Parallel: the thief's start-chain sweeps thrash: ≥ (m-1)(C-1) extra.
    EXPECT_GE(r.additional_misses,
              static_cast<std::int64_t>((m - 1) * (C - 2)))
        << "m=" << m;
  }
}

TEST(Fig6a, DeviationsAreOnlyTouchesAndForkChildren) {
  const auto r = run_fig6a(16, 4);
  // Section 5.1: in a single-touch computation only touches and fork
  // children can deviate.
  EXPECT_EQ(r.deviations.other_deviations, 0u);
  EXPECT_GT(r.deviations.touch_deviations, 0u);
  EXPECT_GT(r.deviations.fork_child_deviations, 0u);
}

TEST(Fig6a, NoStealNoDeviation) {
  auto gen = graphs::fig6a(8, 4);
  SimOptions opts;
  opts.procs = 1;
  opts.policy = ForkPolicy::FutureFirst;
  opts.cache_lines = 4;
  const auto r = sched::run_experiment(gen.graph, opts);
  EXPECT_EQ(r.par.steals, 0u);
  EXPECT_EQ(r.deviations.deviations, 0u);
  EXPECT_EQ(r.additional_misses, 0);
}

// ---------------------------------------------------------------------------
// fig6b / fig6c — composed Theorem 9 lower bound
// ---------------------------------------------------------------------------

TEST(Fig6b, ThreeProcessorRotationAccumulatesKM) {
  const std::uint32_t k = 6, m = 8;
  auto gen = graphs::fig6b(k, m, /*C=*/0);
  ASSERT_TRUE(core::classify(gen.graph).single_touch);
  SimOptions opts;
  opts.procs = 3;
  opts.policy = ForkPolicy::FutureFirst;
  Fig6Controller ctrl;
  const auto r = sched::run_experiment(gen.graph, opts, &ctrl);
  // Each of the k gadgets should dance: ≈ 2m deviations per gadget.
  EXPECT_GE(r.deviations.deviations, k * m) << "got too few deviations";
  EXPECT_GE(r.par.steals, k) << "spine + f-steals expected";
}

TEST(Fig6c, ParallelGroupsScaleDeviationsWithP) {
  const std::uint32_t k = 4, m = 6;
  std::uint64_t prev_devs = 0;
  for (std::uint32_t groups : {1u, 2u, 4u}) {
    auto gen = graphs::fig6c(groups, k, m, /*C=*/0);
    ASSERT_TRUE(core::classify(gen.graph).single_touch);
    SimOptions opts;
    opts.procs = 3 * groups;
    opts.policy = ForkPolicy::FutureFirst;
    Fig6Controller ctrl;
    const auto r = sched::run_experiment(gen.graph, opts, &ctrl);
    EXPECT_GE(r.deviations.deviations, groups * k * m / 2)
        << "groups=" << groups;
    EXPECT_GT(r.deviations.deviations, prev_devs) << "groups=" << groups;
    prev_devs = r.deviations.deviations;
  }
}

// ---------------------------------------------------------------------------
// fig7a — Figure 2 / Theorem 10 gadget under parent-first
// ---------------------------------------------------------------------------

ExperimentResult run_fig7a(std::uint32_t n, std::size_t C) {
  auto gen = graphs::fig7a(n, C);
  SimOptions opts;
  opts.procs = 2;
  opts.policy = ForkPolicy::ParentFirst;
  opts.cache_lines = C;
  ScriptController ctrl;
  ctrl.sleep_after("s", 1).prefer_victim(1, {0});
  return sched::run_experiment(gen.graph, opts, &ctrl);
}

TEST(Fig7a, IsCertifiedSingleTouchAndLocalTouch) {
  const auto gen = graphs::fig7a(6, 4);
  const auto report = core::classify(gen.graph);
  EXPECT_TRUE(report.structured);
  EXPECT_TRUE(report.single_touch);
  EXPECT_TRUE(report.local_touch);
}

TEST(Fig7a, SequentialParentFirstIsCheap) {
  const std::uint32_t n = 16;
  const std::size_t C = 8;
  auto gen = graphs::fig7a(n, C);
  SimOptions opts;
  opts.policy = ForkPolicy::ParentFirst;
  opts.cache_lines = C;
  const auto seq = sched::run_sequential(gen.graph, opts);
  // O(C) misses: one m1 load, C-1 from the first Z sweep, one y-block.
  EXPECT_LE(seq.misses, C + 4);
}

TEST(Fig7a, OneStealCostsNDeviationsAndNCMisses) {
  const std::size_t C = 8;
  for (std::uint32_t n : {4u, 8u, 16u}) {
    const auto r = run_fig7a(n, C);
    EXPECT_EQ(r.par.steals, 1u) << "n=" << n;
    // v and every y_i deviate, and so do the popped z_i1 fork children
    // (both kinds Theorem 8 allows) — about 2n in total.
    EXPECT_GE(r.deviations.deviations, n) << "n=" << n;
    EXPECT_LE(r.deviations.deviations, 3 * n + 6) << "n=" << n;
    // Each (Z_i, y_i) pair after the first costs about C+1 misses.
    EXPECT_GE(r.additional_misses,
              static_cast<std::int64_t>((n - 2) * (C - 1)))
        << "n=" << n;
  }
}

// ---------------------------------------------------------------------------
// fig7b — parity chain propagation
// ---------------------------------------------------------------------------

TEST(Fig7b, OneEarlyStealFlipsTheTail) {
  const std::uint32_t k = 8, n = 16;
  const std::size_t C = 8;
  auto gen = graphs::fig7b(k, n, C);
  ASSERT_TRUE(core::classify(gen.graph).single_touch);
  SimOptions opts;
  opts.procs = 2;
  opts.policy = ForkPolicy::ParentFirst;
  opts.cache_lines = C;

  // Sequential baseline is cheap even with the stage chain in front.
  const auto seq = sched::run_sequential(gen.graph, opts);
  EXPECT_LE(seq.misses, C + k + 6);

  ScriptController ctrl;
  ctrl.sleep_after("s[1]", 1).prefer_victim(1, {0});
  const auto r = sched::run_experiment(gen.graph, opts, &ctrl);
  EXPECT_EQ(r.par.steals, 1u);
  // The tail thrash dominates: about n deviations and n·C extra misses.
  EXPECT_GE(r.deviations.deviations, n);
  EXPECT_GE(r.additional_misses,
            static_cast<std::int64_t>((n - 2) * (C - 1)));
}

// ---------------------------------------------------------------------------
// fig8 — Theorem 10: Ω(t·T∞) deviations from one steal
// ---------------------------------------------------------------------------

TEST(Fig8, OneStealDeviatesEveryLeafTail) {
  const std::uint32_t depth = 3, n = 8;  // 2^3 = 8 leaves
  const std::size_t C = 4;
  auto gen = graphs::fig8(depth, n, C);
  ASSERT_TRUE(core::classify(gen.graph).single_touch);
  SimOptions opts;
  opts.procs = 2;
  opts.policy = ForkPolicy::ParentFirst;
  opts.cache_lines = C;

  const auto seq = sched::run_sequential(gen.graph, opts);

  ScriptController ctrl;
  ctrl.sleep_after("s[1]", 1).prefer_victim(1, {0});
  const auto r = sched::run_experiment(gen.graph, opts, &ctrl);
  EXPECT_EQ(r.par.steals, 1u);
  const std::uint64_t leaves = 1u << depth;
  // Every leaf tail contributes ≈ n deviations once flipped.
  EXPECT_GE(r.deviations.deviations, leaves * n / 2)
      << "expected most of the " << leaves << " leaf tails to deviate";
  EXPECT_GE(r.additional_misses,
            static_cast<std::int64_t>(leaves * (n - 2) * (C - 1) / 2));
  // Sequential execution stays near O(C + t).
  EXPECT_LE(seq.misses, C + leaves * 8 + 16);
}

}  // namespace
}  // namespace wsf
