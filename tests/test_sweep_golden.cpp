// Golden-file regression over the sweep output format: the byte-exact CSV
// of the `wsf-sweep --smoke` grid (exp::smoke_spec(), fixed seeds) is
// checked into tests/golden/ and diffed against a fresh in-process run.
// Any silent drift in simulation results, row order, aggregation, or CSV
// rendering (the PR 2 comma-mangling class of bug) fails here in ctest
// instead of only in CI's shard-merge diff.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "exp/checkpoint.hpp"
#include "exp/sweep.hpp"
#include "support/table.hpp"

#ifndef WSF_GOLDEN_FILE
#error "WSF_GOLDEN_FILE must point at tests/golden/sweep_smoke.csv"
#endif

namespace wsf {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string fresh_smoke_csv() {
  exp::SweepTableOptions opts;
  opts.threads = 4;
  return exp::run_sweep_table(exp::smoke_spec(), opts).to_csv();
}

TEST(SweepGolden, SmokeCsvMatchesCheckedInGoldenFile) {
  const std::string golden = slurp(WSF_GOLDEN_FILE);
  ASSERT_FALSE(golden.empty())
      << "cannot read golden file " << WSF_GOLDEN_FILE
      << " — regenerate with: ./build/tools/wsf-sweep --smoke --format=csv "
         "--out=tests/golden/sweep_smoke.csv";
  const std::string fresh = fresh_smoke_csv();
  if (fresh != golden) {
    // Find the first differing line so the failure is actionable without
    // diffing 121 lines by eye.
    std::istringstream a(golden), b(fresh);
    std::string la, lb;
    std::size_t line = 0;
    while (std::getline(a, la) && std::getline(b, lb)) {
      ++line;
      if (la != lb) break;
    }
    FAIL() << "sweep smoke CSV drifted from the golden file at line "
           << line << "\n  golden: " << la << "\n  fresh:  " << lb
           << "\nIf the change is intentional, regenerate with:\n"
           << "  ./build/tools/wsf-sweep --smoke --format=csv "
           << "--out=tests/golden/sweep_smoke.csv";
  }
}

TEST(SweepGolden, GoldenFileIsLosslessUnderRoundTrip) {
  // The golden bytes themselves round-trip through the parser — so the
  // checked-in artifact stays loadable by wsf-plot and merge tooling.
  const std::string golden = slurp(WSF_GOLDEN_FILE);
  ASSERT_FALSE(golden.empty());
  const support::Table t = support::Table::from_csv(golden);
  EXPECT_EQ(t.to_csv(), golden);
  EXPECT_EQ(t.headers(), exp::sweep_table_headers());
  EXPECT_EQ(t.num_rows(), 120u);  // the smoke grid's configuration count
}

}  // namespace
}  // namespace wsf
