// End-to-end tests of the fiber-based work-stealing futures runtime, under
// both spawn policies.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <string>
#include <vector>

#include "runtime/pool.hpp"
#include "support/check.hpp"

namespace wsf::runtime {
namespace {

std::uint64_t fib_seq(std::uint64_t n) {
  return n < 2 ? n : fib_seq(n - 1) + fib_seq(n - 2);
}

std::uint64_t fib_par(std::uint64_t n) {
  if (n < 10) return fib_seq(n);
  auto left = spawn([n] { return fib_par(n - 1); });
  const std::uint64_t right = fib_par(n - 2);
  return left.touch() + right;
}

class RuntimeBothPolicies : public ::testing::TestWithParam<SpawnPolicy> {};

TEST_P(RuntimeBothPolicies, FibIsCorrect) {
  RuntimeOptions opts;
  opts.workers = 4;
  opts.policy = GetParam();
  Scheduler sched(opts);
  EXPECT_EQ(sched.run([] { return fib_par(20); }), 6765u);
}

TEST_P(RuntimeBothPolicies, NestedSpawnsDeep) {
  RuntimeOptions opts;
  opts.workers = 3;
  opts.policy = GetParam();
  Scheduler sched(opts);
  // A chain of 300 nested spawns; each level touches its child.
  std::function<int(int)> deep = [&deep](int depth) -> int {
    if (depth == 0) return 1;
    auto f = spawn([&deep, depth] { return deep(depth - 1); });
    return f.touch() + 1;
  };
  EXPECT_EQ(sched.run([&] { return deep(300); }), 301);
}

TEST_P(RuntimeBothPolicies, ManyIndependentFutures) {
  RuntimeOptions opts;
  opts.workers = 4;
  opts.policy = GetParam();
  Scheduler sched(opts);
  const int result = sched.run([] {
    std::vector<Future<int>> futures;
    for (int i = 0; i < 200; ++i)
      futures.push_back(spawn([i] { return i; }));
    int sum = 0;
    for (auto& f : futures) sum += f.touch();
    return sum;
  });
  EXPECT_EQ(result, 199 * 200 / 2);
}

TEST_P(RuntimeBothPolicies, OutOfOrderTouches) {
  // Figure 5(a): touch futures in priority (non-LIFO) order.
  RuntimeOptions opts;
  opts.workers = 2;
  opts.policy = GetParam();
  Scheduler sched(opts);
  const std::string result = sched.run([] {
    auto a = spawn([] { return std::string("a"); });
    auto b = spawn([] { return std::string("b"); });
    auto c = spawn([] { return std::string("c"); });
    return c.touch() + a.touch() + b.touch();
  });
  EXPECT_EQ(result, "cab");
}

TEST_P(RuntimeBothPolicies, FuturePassing) {
  // Figure 5(b): a future is passed into another spawned task, which
  // touches it.
  RuntimeOptions opts;
  opts.workers = 2;
  opts.policy = GetParam();
  Scheduler sched(opts);
  const int result = sched.run([] {
    auto x = spawn([] { return 21; });
    auto y = spawn([x = std::move(x)]() mutable { return x.touch() * 2; });
    return y.touch();
  });
  EXPECT_EQ(result, 42);
}

TEST_P(RuntimeBothPolicies, VoidFutures) {
  RuntimeOptions opts;
  opts.workers = 2;
  opts.policy = GetParam();
  Scheduler sched(opts);
  std::atomic<int> hits{0};
  sched.run([&] {
    auto f = spawn([&] { hits.fetch_add(1); });
    f.touch();
  });
  EXPECT_EQ(hits.load(), 1);
}

TEST_P(RuntimeBothPolicies, SideEffectTasksFinishBeforeRunReturns) {
  // Futures never touched — the runtime analogue of super-final-node
  // computations (Definition 13): run() waits for quiescence.
  RuntimeOptions opts;
  opts.workers = 4;
  opts.policy = GetParam();
  Scheduler sched(opts);
  std::atomic<int> done{0};
  sched.run([&] {
    for (int i = 0; i < 50; ++i)
      (void)spawn([&done] { done.fetch_add(1); });
  });
  EXPECT_EQ(done.load(), 50);
}

TEST_P(RuntimeBothPolicies, ExceptionsPropagateThroughTouch) {
  RuntimeOptions opts;
  opts.workers = 2;
  opts.policy = GetParam();
  Scheduler sched(opts);
  EXPECT_THROW(sched.run([] {
    auto f = spawn([]() -> int { throw std::runtime_error("boom"); });
    return f.touch();
  }),
               std::runtime_error);
}

TEST_P(RuntimeBothPolicies, RunCanBeCalledRepeatedly) {
  RuntimeOptions opts;
  opts.workers = 2;
  opts.policy = GetParam();
  Scheduler sched(opts);
  for (int round = 0; round < 5; ++round) {
    EXPECT_EQ(sched.run([round] {
      auto f = spawn([round] { return round * 2; });
      return f.touch();
    }),
              round * 2);
  }
}

TEST_P(RuntimeBothPolicies, MoveOnlyResults) {
  RuntimeOptions opts;
  opts.workers = 2;
  opts.policy = GetParam();
  Scheduler sched(opts);
  auto result = sched.run([] {
    auto f = spawn([] { return std::make_unique<int>(7); });
    return f.touch();
  });
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(*result, 7);
}

INSTANTIATE_TEST_SUITE_P(Policies, RuntimeBothPolicies,
                         ::testing::Values(SpawnPolicy::FutureFirst,
                                           SpawnPolicy::ParentFirst),
                         [](const auto& param_info) {
                           return param_info.param == SpawnPolicy::FutureFirst
                                      ? "FutureFirst"
                                      : "ParentFirst";
                         });

TEST(Runtime, DoubleTouchRejected) {
  Scheduler sched({.workers = 2});
  EXPECT_THROW(sched.run([] {
    auto f = spawn([] { return 1; });
    (void)f.touch();
    return f.touch();  // single-touch violation
  }),
               CheckError);
}

TEST(Runtime, TouchOfEmptyHandleRejected) {
  Scheduler sched({.workers = 2});
  EXPECT_THROW(sched.run([] {
    Future<int> f;
    return f.touch();
  }),
               CheckError);
}

TEST(Runtime, SpawnOutsidePoolRejected) {
  EXPECT_THROW((void)spawn([] { return 1; }), CheckError);
}

TEST(Runtime, SingleWorkerStillCorrect) {
  Scheduler sched({.workers = 1});
  EXPECT_EQ(sched.run([] { return fib_par(16); }), 987u);
}

TEST(Runtime, CountersAccumulate) {
  RuntimeOptions opts;
  opts.workers = 4;
  Scheduler sched(opts);
  sched.reset_counters();
  (void)sched.run([] { return fib_par(18); });
  const auto total = sched.counters().total();
  EXPECT_GT(total.spawns, 0u);
  EXPECT_EQ(total.tasks_run, total.spawns + 1);  // + the root task
  EXPECT_GT(total.touches, 0u);
  EXPECT_GE(total.fibers_created + total.stacks_reused, total.tasks_run);
}

TEST(Runtime, FutureFirstRunsChildInline) {
  // Under future-first with one worker and no thief, the child must run to
  // completion before the parent resumes: the touch never parks.
  RuntimeOptions opts;
  opts.workers = 1;
  opts.policy = SpawnPolicy::FutureFirst;
  Scheduler sched(opts);
  sched.reset_counters();
  sched.run([] {
    for (int i = 0; i < 32; ++i) {
      auto f = spawn([i] { return i; });
      WSF_CHECK(f.ready(), "future-first child must be done at touch time");
      (void)f.touch();
    }
  });
  EXPECT_EQ(sched.counters().total().parked_touches, 0u);
}

TEST(Runtime, ParentFirstParksOnSingleWorker) {
  // Under parent-first with one worker, the child sits in the deque when
  // the parent touches: every touch parks once.
  RuntimeOptions opts;
  opts.workers = 1;
  opts.policy = SpawnPolicy::ParentFirst;
  Scheduler sched(opts);
  sched.reset_counters();
  sched.run([] {
    for (int i = 0; i < 32; ++i) {
      auto f = spawn([i] { return i; });
      (void)f.touch();
    }
  });
  EXPECT_EQ(sched.counters().total().parked_touches, 32u);
  EXPECT_EQ(sched.counters().total().direct_handoffs, 32u);
}

// Mirror of the PR 2 simulator Accounting suite for the runtime's
// WorkerCounters: the work-acquisition and park/wake counters must
// reconcile exactly with the tasks that ran, at quiescence, under both
// policies and various worker counts (see counters.hpp for the
// identities).
class Accounting : public ::testing::TestWithParam<SpawnPolicy> {
 protected:
  static void expect_reconciled(const WorkerCounters& t,
                                std::uint64_t runs) {
    // Every closure that ran was either spawned or injected by run().
    EXPECT_EQ(t.tasks_run, t.spawns + runs);
    EXPECT_EQ(t.inbox_takes, runs);
    // Every deque/inbox-sourced job was obtained exactly one way: pop of
    // the own deque bottom, inbox take, or steal — and those jobs are
    // exactly the non-inline fresh tasks plus the executed Resume jobs.
    EXPECT_EQ(t.local_pops + t.inbox_takes + t.steals,
              (t.tasks_run - t.inline_children) + t.resumes);
    // Every Resume job that was created was executed.
    EXPECT_EQ(t.resumes, t.continuations_pushed + t.wakes_pushed);
    // Every park resolves through exactly one handoff or one deque wake.
    EXPECT_EQ(t.parked_touches, t.handoff_runs + t.wakes_pushed);
    // Every fiber activation has one source: a fresh task, a Resume job,
    // or a handoff.
    EXPECT_EQ(t.fiber_resumes, t.tasks_run + t.resumes + t.handoff_runs);
  }
};

TEST_P(Accounting, ReconcilesOnFib) {
  for (const std::uint32_t workers : {1u, 2u, 4u}) {
    RuntimeOptions opts;
    opts.workers = workers;
    opts.policy = GetParam();
    Scheduler sched(opts);
    sched.reset_counters();
    (void)sched.run([] { return fib_par(18); });
    expect_reconciled(sched.counters().total(), 1);
  }
}

TEST_P(Accounting, ReconcilesAcrossRepeatedRuns) {
  RuntimeOptions opts;
  opts.workers = 3;
  opts.policy = GetParam();
  Scheduler sched(opts);
  sched.reset_counters();
  constexpr std::uint64_t kRuns = 6;
  for (std::uint64_t round = 0; round < kRuns; ++round) {
    (void)sched.run([] {
      std::vector<Future<int>> futures;
      for (int i = 0; i < 50; ++i) futures.push_back(spawn([i] { return i; }));
      int sum = 0;
      for (auto& f : futures) sum += f.touch();
      return sum;
    });
  }
  expect_reconciled(sched.counters().total(), kRuns);
}

TEST_P(Accounting, SingleWorkerHasNoSteals) {
  RuntimeOptions opts;
  opts.workers = 1;
  opts.policy = GetParam();
  Scheduler sched(opts);
  sched.reset_counters();
  (void)sched.run([] { return fib_par(16); });
  const auto t = sched.counters().total();
  EXPECT_EQ(t.steals, 0u);
  // The n==1 guard must bail before victim selection even starts: no
  // attempts, hence no RNG draws, no batch claims, no failed-steal backoff.
  EXPECT_EQ(t.steal_attempts, 0u);
  EXPECT_EQ(t.batch_steals, 0u);
  EXPECT_EQ(t.batch_stolen_items, 0u);
  EXPECT_EQ(t.steal_backoffs, 0u);
  EXPECT_EQ(t.migrations, 0u);
  expect_reconciled(t, 1);
}

INSTANTIATE_TEST_SUITE_P(Policies, Accounting,
                         ::testing::Values(SpawnPolicy::FutureFirst,
                                           SpawnPolicy::ParentFirst),
                         [](const auto& param_info) {
                           return param_info.param == SpawnPolicy::FutureFirst
                                      ? "FutureFirst"
                                      : "ParentFirst";
                         });

TEST(Runtime, StressManySmallTasks) {
  RuntimeOptions opts;
  opts.workers = 4;
  Scheduler sched(opts);
  const std::uint64_t result = sched.run([] {
    std::vector<Future<std::uint64_t>> fs;
    fs.reserve(2000);
    for (std::uint64_t i = 0; i < 2000; ++i)
      fs.push_back(spawn([i] { return i * i; }));
    std::uint64_t sum = 0;
    for (auto& f : fs) sum += f.touch();
    return sum;
  });
  std::uint64_t expected = 0;
  for (std::uint64_t i = 0; i < 2000; ++i) expected += i * i;
  EXPECT_EQ(result, expected);
}

TEST(Runtime, ParallelReduceTree) {
  Scheduler sched({.workers = 4});
  std::vector<int> data(1 << 14);
  std::iota(data.begin(), data.end(), 0);
  std::function<long(int, int)> reduce = [&](int lo, int hi) -> long {
    if (hi - lo <= 256)
      return std::accumulate(data.begin() + lo, data.begin() + hi, 0L);
    const int mid = lo + (hi - lo) / 2;
    auto left = spawn([&, lo, mid] { return reduce(lo, mid); });
    const long right = reduce(mid, hi);
    return left.touch() + right;
  };
  const long total =
      sched.run([&] { return reduce(0, static_cast<int>(data.size())); });
  EXPECT_EQ(total, static_cast<long>(data.size()) *
                       (static_cast<long>(data.size()) - 1) / 2);
}

}  // namespace
}  // namespace wsf::runtime
