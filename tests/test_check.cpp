// support/check.hpp: failure payloads, lazy message construction, and the
// Release-mode behaviour of WSF_DCHECK.
#include "support/check.hpp"

#include <gtest/gtest.h>

#include <string>

namespace wsf {
namespace {

TEST(Check, PassingCheckDoesNotThrow) {
  EXPECT_NO_THROW(WSF_CHECK(1 + 1 == 2));
  EXPECT_NO_THROW(WSF_CHECK(true, "never built"));
  EXPECT_NO_THROW(WSF_REQUIRE(true));
}

TEST(Check, FailureThrowsCheckErrorWithExpressionAndLocation) {
  try {
    WSF_CHECK(2 + 2 == 5);
    FAIL() << "WSF_CHECK did not throw";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("WSF_CHECK"), std::string::npos) << what;
    EXPECT_NE(what.find("2 + 2 == 5"), std::string::npos) << what;
    EXPECT_NE(what.find("test_check.cpp"), std::string::npos) << what;
  }
}

TEST(Check, RequireUsesDistinctLabel) {
  try {
    WSF_REQUIRE(false, "caller error");
    FAIL() << "WSF_REQUIRE did not throw";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("WSF_REQUIRE"), std::string::npos) << what;
    EXPECT_NE(what.find("caller error"), std::string::npos) << what;
  }
}

TEST(Check, StreamedMessageAppearsInWhat) {
  const int x = -3;
  try {
    WSF_CHECK(x > 0, "x was " << x << " (from " << std::string("caller") << ")");
    FAIL() << "WSF_CHECK did not throw";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("x was -3 (from caller)"),
              std::string::npos)
        << e.what();
  }
}

// The streamed message must only be materialised on failure: a passing check
// must not evaluate its message operands.
TEST(Check, MessageIsLazyOnSuccess) {
  int evaluations = 0;
  auto count = [&evaluations]() {
    ++evaluations;
    return 7;
  };
  WSF_CHECK(true, "value " << count());
  EXPECT_EQ(evaluations, 0);

  try {
    WSF_CHECK(false, "value " << count());
  } catch (const CheckError&) {
  }
  EXPECT_EQ(evaluations, 1);
}

TEST(Check, CheckErrorIsALogicError) {
  try {
    WSF_CHECK(false);
    FAIL() << "WSF_CHECK did not throw";
  } catch (const std::logic_error&) {
    SUCCEED();
  }
}

// WSF_DCHECK is a no-op under NDEBUG (Release): neither the condition's
// side effects nor the message may run. In debug builds it behaves like
// WSF_CHECK.
TEST(Check, DCheckCompilesAwayInRelease) {
  int condition_evaluations = 0;
  auto failing = [&condition_evaluations]() {
    ++condition_evaluations;
    return false;
  };
#ifdef NDEBUG
  static_cast<void>(failing);  // WSF_DCHECK discards its operands entirely
  EXPECT_NO_THROW(WSF_DCHECK(failing(), "unused"));
  EXPECT_EQ(condition_evaluations, 0);
#else
  EXPECT_THROW(WSF_DCHECK(failing(), "unused"), CheckError);
  EXPECT_EQ(condition_evaluations, 1);
#endif
}

}  // namespace
}  // namespace wsf
