// Cache model unit and property tests.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cache/cache.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace wsf::cache {
namespace {

using core::BlockId;

std::vector<BlockId> random_trace(std::uint64_t seed, std::size_t len,
                                  std::uint64_t universe) {
  support::Xoshiro256 rng(seed);
  std::vector<BlockId> t;
  t.reserve(len);
  for (std::size_t i = 0; i < len; ++i)
    t.push_back(static_cast<BlockId>(rng.below(universe)));
  return t;
}

std::uint64_t misses_on(CacheModel& c, const std::vector<BlockId>& trace) {
  std::uint64_t m = 0;
  for (BlockId b : trace)
    if (c.access(b)) ++m;
  return m;
}

TEST(Lru, ColdMissThenHit) {
  auto c = make_lru(4);
  EXPECT_TRUE(c->access(1));
  EXPECT_FALSE(c->access(1));
  EXPECT_EQ(c->misses(), 1u);
  EXPECT_EQ(c->hits(), 1u);
}

TEST(Lru, EvictsLeastRecentlyUsed) {
  auto c = make_lru(2);
  c->access(1);
  c->access(2);
  c->access(1);         // 2 is now LRU
  c->access(3);         // evicts 2
  EXPECT_TRUE(c->contains(1));
  EXPECT_FALSE(c->contains(2));
  EXPECT_TRUE(c->contains(3));
}

TEST(Lru, SweepOverCPlusOneThrashes) {
  // The classic pattern behind the paper's lower bounds: cyclically sweeping
  // C+1 blocks misses on every access.
  const std::size_t C = 6;
  auto c = make_lru(C);
  for (int round = 0; round < 5; ++round)
    for (BlockId b = 0; b <= static_cast<BlockId>(C); ++b)
      EXPECT_TRUE(c->access(b)) << "round " << round << " block " << b;
}

TEST(Lru, PalindromeSweepHitsAfterWarmup) {
  // Ascending then descending over exactly C blocks: everything after the
  // cold pass hits — the palindrome trick used by the fig6a gadget.
  const std::size_t C = 6;
  auto c = make_lru(C);
  for (BlockId b = 1; b <= static_cast<BlockId>(C); ++b) c->access(b);
  const auto cold = c->misses();
  for (int round = 0; round < 4; ++round) {
    for (BlockId b = static_cast<BlockId>(C); b >= 1; --b)
      EXPECT_FALSE(c->access(b));
    for (BlockId b = 1; b <= static_cast<BlockId>(C); ++b)
      EXPECT_FALSE(c->access(b));
  }
  EXPECT_EQ(c->misses(), cold);
}

TEST(Lru, InclusionProperty) {
  // LRU is a stack algorithm: a larger cache never misses more on the same
  // trace.
  const auto trace = random_trace(123, 4000, 64);
  std::uint64_t prev = UINT64_MAX;
  for (std::size_t C : {4u, 8u, 16u, 32u, 64u}) {
    auto c = make_lru(C);
    const auto m = misses_on(*c, trace);
    EXPECT_LE(m, prev) << "C=" << C;
    prev = m;
  }
}

TEST(Lru, ResetClearsEverything) {
  auto c = make_lru(2);
  c->access(1);
  c->reset();
  EXPECT_EQ(c->misses(), 0u);
  EXPECT_EQ(c->accesses(), 0u);
  EXPECT_FALSE(c->contains(1));
}

TEST(Fifo, EvictsOldestRegardlessOfUse) {
  auto c = make_fifo(2);
  c->access(1);
  c->access(2);
  c->access(1);  // refreshes recency but not FIFO order
  c->access(3);  // evicts 1 (oldest inserted)
  EXPECT_FALSE(c->contains(1));
  EXPECT_TRUE(c->contains(2));
  EXPECT_TRUE(c->contains(3));
}

TEST(Direct, ConflictMissesOnAliasedBlocks) {
  auto c = make_direct_mapped(4);
  EXPECT_TRUE(c->access(0));
  EXPECT_TRUE(c->access(4));   // same line as 0
  EXPECT_TRUE(c->access(0));   // conflict again
  EXPECT_FALSE(c->contains(4));
}

TEST(Direct, DistinctLinesCoexist) {
  auto c = make_direct_mapped(4);
  for (BlockId b = 0; b < 4; ++b) c->access(b);
  for (BlockId b = 0; b < 4; ++b) EXPECT_FALSE(c->access(b));
}

TEST(SetAssoc, FullyAssociativeMatchesLru) {
  // A C-way single-set cache is exactly LRU.
  const auto trace = random_trace(9, 3000, 32);
  auto lru = make_lru(8);
  auto assoc = make_set_associative(8, 8);
  EXPECT_EQ(misses_on(*lru, trace), misses_on(*assoc, trace));
}

TEST(SetAssoc, WithinSetLruOrder) {
  // 2 sets × 2 ways; even blocks map to set 0.
  auto c = make_set_associative(4, 2);
  c->access(0);
  c->access(2);
  c->access(0);  // 2 is LRU within set 0
  c->access(4);  // evicts 2
  EXPECT_TRUE(c->contains(0));
  EXPECT_FALSE(c->contains(2));
  EXPECT_TRUE(c->contains(4));
}

TEST(SetAssoc, RejectsIndivisibleGeometry) {
  EXPECT_THROW(make_set_associative(6, 4), wsf::CheckError);
}

TEST(Factory, BuildsEveryPolicy) {
  for (const char* name : {"lru", "fifo", "direct", "assoc2"}) {
    auto c = make_cache(name, 8);
    ASSERT_NE(c, nullptr) << name;
    EXPECT_EQ(c->capacity(), 8u) << name;
    c->access(3);
    EXPECT_TRUE(c->contains(3)) << name;
  }
}

TEST(Factory, RejectsUnknownPolicy) {
  EXPECT_THROW(make_cache("plru", 8), wsf::CheckError);
}

TEST(AllPolicies, MissCountNeverExceedsAccesses) {
  const auto trace = random_trace(77, 2000, 24);
  for (const char* name : {"lru", "fifo", "direct", "assoc4"}) {
    auto c = make_cache(name, 8);
    const auto m = misses_on(*c, trace);
    EXPECT_LE(m, trace.size()) << name;
    EXPECT_GE(m, 24u) << name << " must at least cold-miss the universe";
    EXPECT_EQ(c->accesses(), trace.size()) << name;
  }
}

TEST(AllPolicies, SingleLineCacheHitsOnlyRepeats) {
  for (const char* name : {"lru", "fifo", "direct", "assoc1"}) {
    auto c = make_cache(name, 1);
    EXPECT_TRUE(c->access(1)) << name;
    EXPECT_FALSE(c->access(1)) << name;
    EXPECT_TRUE(c->access(2)) << name;
    EXPECT_TRUE(c->access(1)) << name;
  }
}

}  // namespace
}  // namespace wsf::cache
