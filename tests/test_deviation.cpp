// Deviation counting (Section 4, Acar et al.'s drifted nodes).
#include <gtest/gtest.h>

#include "support/check.hpp"

#include "core/deviation.hpp"
#include "graphs/generators.hpp"
#include "sched/harness.hpp"

namespace wsf {
namespace {

using core::count_deviations;
using core::NodeId;

TEST(Deviation, IdenticalScheduleHasNone) {
  const auto gen = graphs::fib_dag(8);
  sched::SimOptions opts;
  const auto seq = sched::run_sequential(gen.graph, opts);
  const auto r = count_deviations(gen.graph, seq.order, {seq.order});
  EXPECT_EQ(r.deviations, 0u);
}

TEST(Deviation, SplitAtStealPointCountsOnce) {
  // Processor 0 runs a prefix, processor 1 the suffix: only the first node
  // of the suffix deviates (its seq predecessor ran on the other proc).
  const auto gen = graphs::serial_chain(10);
  sched::SimOptions opts;
  const auto seq = sched::run_sequential(gen.graph, opts);
  std::vector<NodeId> a(seq.order.begin(), seq.order.begin() + 4);
  std::vector<NodeId> b(seq.order.begin() + 4, seq.order.end());
  const auto r = count_deviations(gen.graph, seq.order, {a, b});
  EXPECT_EQ(r.deviations, 1u);
  EXPECT_TRUE(r.is_deviation[seq.order[4]]);
}

TEST(Deviation, FirstNodeNeverDeviates) {
  const auto gen = graphs::serial_chain(5);
  sched::SimOptions opts;
  const auto seq = sched::run_sequential(gen.graph, opts);
  const auto r = count_deviations(gen.graph, seq.order, {seq.order});
  EXPECT_FALSE(r.is_deviation[seq.order[0]]);
}

TEST(Deviation, ReorderWithinProcessorCounts) {
  // Execute two independent siblings in the non-sequential order.
  const auto gen = graphs::fig4(2, true);
  sched::SimOptions opts;
  const auto seq = sched::run_sequential(gen.graph, opts);
  // Parallel run with stalls to force a different interleaving.
  opts.procs = 2;
  opts.stall_prob = 0.4;
  opts.seed = 5;
  const auto par = sched::simulate(gen.graph, opts);
  const auto r = count_deviations(gen.graph, seq.order, par.proc_orders);
  // Whatever happened, the counter and flags must agree.
  std::size_t flagged = 0;
  for (char f : r.is_deviation) flagged += f;
  EXPECT_EQ(flagged, r.deviations);
  EXPECT_EQ(r.touch_deviations + r.fork_child_deviations +
                r.other_deviations,
            r.deviations);
}

TEST(Deviation, RejectsIncompleteCoverage) {
  const auto gen = graphs::serial_chain(5);
  sched::SimOptions opts;
  const auto seq = sched::run_sequential(gen.graph, opts);
  std::vector<NodeId> partial(seq.order.begin(), seq.order.begin() + 3);
  EXPECT_THROW(count_deviations(gen.graph, seq.order, {partial}),
               CheckError);
}

TEST(Deviation, SingleTouchBreakdownHasNoOtherKind) {
  // Theorem 8's structural fact: on structured single-touch computations
  // only touches and fork children can deviate (future-first policy).
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    graphs::RandomDagParams p;
    p.seed = seed;
    p.target_nodes = 300;
    const auto gen = graphs::random_single_touch(p);
    sched::SimOptions opts;
    opts.procs = 4;
    opts.seed = seed;
    opts.stall_prob = 0.3;
    opts.policy = core::ForkPolicy::FutureFirst;
    const auto r = sched::run_experiment(gen.graph, opts);
    EXPECT_EQ(r.deviations.other_deviations, 0u) << "seed " << seed;
  }
}

TEST(Deviation, ZeroWhenNoStealHappens) {
  const auto gen = graphs::fib_dag(9);
  sched::SimOptions opts;
  opts.procs = 1;
  const auto r = sched::run_experiment(gen.graph, opts);
  EXPECT_EQ(r.par.steals, 0u);
  EXPECT_EQ(r.deviations.deviations, 0u);
}

}  // namespace
}  // namespace wsf
