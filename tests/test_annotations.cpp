// Dynamic checks of the lock-discipline contracts that clang's
// -Wthread-safety analysis proves statically (support/thread_safety.hpp):
// GCC builds expand the annotations to nothing, so this suite exercises the
// same contracts at run time — the support::Mutex/CondVar wrappers, the
// SharedScheduler lease registry and its exclusive capability under
// concurrent churn, the serialized on_row sweep hook, concurrent
// checkpointed shards, and the drain()/abandoned-batch cv protocol the
// annotation audit reviewed.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "exp/backend.hpp"
#include "exp/checkpoint.hpp"
#include "exp/sweep.hpp"
#include "runtime/pool.hpp"
#include "support/check.hpp"
#include "support/thread_safety.hpp"

namespace wsf {
namespace {

// ---- support::Mutex / LockGuard / CondVar dynamic contract ----

TEST(SupportMutex, TryLockFailsCrossThreadWhileHeld) {
  support::Mutex m;
  std::atomic<bool> held{false};
  std::atomic<bool> release{false};
  std::thread holder([&] {
    const support::LockGuard lock(m);
    held.store(true, std::memory_order_release);
    while (!release.load(std::memory_order_acquire))
      std::this_thread::yield();
  });
  while (!held.load(std::memory_order_acquire)) std::this_thread::yield();
  // Explicit branches on try_lock (not EXPECT_FALSE(m.try_lock())): clang's
  // try-acquire analysis tracks the result only through direct conditions,
  // and gtest macros wrap it in an AssertionResult.
  if (m.try_lock()) {
    m.unlock();
    ADD_FAILURE() << "lock acquired while another thread held it";
  }
  release.store(true, std::memory_order_release);
  holder.join();
  if (m.try_lock()) {
    m.unlock();
  } else {
    ADD_FAILURE() << "released lock could not be reacquired";
  }
}

TEST(SupportMutex, CondVarWaitSeesNotifiedState) {
  support::Mutex m;
  support::CondVar cv;
  bool ready = false;  // guarded by m (dynamically, in this test)
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    {
      const support::LockGuard lock(m);
      ready = true;
    }
    cv.notify_one();
  });
  {
    support::UniqueLock lock(m);
    cv.wait(lock, [&] { return ready; });
    EXPECT_TRUE(ready);
  }
  producer.join();
}

// ---- SharedScheduler lease registry ----

TEST(SharedSchedulerLease, SameShapeAliasesDifferentShapeDoesNot) {
  runtime::RuntimeOptions opts;
  opts.workers = 2;
  auto a = runtime::SharedScheduler::acquire(opts);
  auto b = runtime::SharedScheduler::acquire(opts);
  EXPECT_EQ(a.get(), b.get()) << "same shape must share one scheduler";
  opts.workers = 1;
  auto c = runtime::SharedScheduler::acquire(opts);
  EXPECT_NE(a.get(), c.get());
  // The seed is deliberately not part of the key.
  opts.workers = 2;
  opts.seed = 0xfeed;
  EXPECT_EQ(runtime::SharedScheduler::acquire(opts).get(), a.get());
}

TEST(SharedSchedulerLease, ExclusiveIsARealCrossThreadMutex) {
  runtime::RuntimeOptions opts;
  opts.workers = 2;
  auto lease = runtime::SharedScheduler::acquire(opts);
  std::atomic<bool> held{false};
  std::atomic<bool> release{false};
  std::thread tenant([&] {
    const support::LockGuard lock(lease->exclusive());
    held.store(true, std::memory_order_release);
    while (!release.load(std::memory_order_acquire))
      std::this_thread::yield();
  });
  while (!held.load(std::memory_order_acquire)) std::this_thread::yield();
  if (lease->exclusive().try_lock()) {  // explicit branch: see above
    lease->exclusive().unlock();
    ADD_FAILURE() << "exclusive lease held by two tenants at once";
  }
  release.store(true, std::memory_order_release);
  tenant.join();
  if (lease->exclusive().try_lock()) {
    lease->exclusive().unlock();
  } else {
    ADD_FAILURE() << "released exclusive lease could not be reacquired";
  }
}

TEST(SharedSchedulerLease, ConcurrentChurnAliasesAndPrunes) {
  // Hammer the registry from several threads: leases of two shapes are
  // acquired, exercised, and dropped concurrently. Every lease must hand
  // out a working scheduler, and same-shape leases held at the same time
  // must alias (checked via the exclusive capability: per-job counter
  // deltas are exact only when tenants of one scheduler serialize).
  constexpr int kThreads = 4;
  constexpr int kIters = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &failures] {
      for (int i = 0; i < kIters; ++i) {
        runtime::RuntimeOptions opts;
        opts.workers = 1 + static_cast<std::uint32_t>((t + i) % 2);
        auto lease = runtime::SharedScheduler::acquire(opts);
        const support::LockGuard exclusive(lease->exclusive());
        if (lease->scheduler().run([] { return 6 * 7; }) != 42)
          failures.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  // All leases dropped: the registry prunes, and a fresh acquire still
  // works (a stale weak_ptr entry would hand out a dead scheduler).
  runtime::RuntimeOptions opts;
  opts.workers = 2;
  EXPECT_EQ(runtime::SharedScheduler::acquire(opts)->scheduler().run(
                [] { return 1; }),
            1);
}

// ---- sweep hooks and concurrent checkpointed shards ----

exp::SweepSpec tiny_sim_spec() {
  exp::SweepSpec spec;
  spec.graphs = {{"fig2", {.size = 4, .size2 = 3}, {}},
                 {"fig4", {.size = 4, .size2 = 3}, {}}};
  spec.procs = {1, 2};
  spec.policies = {core::ForkPolicy::FutureFirst,
                   core::ForkPolicy::ParentFirst};
  spec.seeds = 2;
  return spec;
}

std::string temp_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + name;
  std::remove(path.c_str());
  return path;
}

TEST(SweepHooks, OnRowIsSerializedAcrossWorkers) {
  // SweepShared::row_mutex's contract: on_row never runs concurrently with
  // itself, so hook authors (the checkpoint appender) need no locking of
  // their own. Detect overlap with a test-and-set at hook entry.
  const auto spec = tiny_sim_spec();
  const auto configs = exp::expand_spec(spec);
  std::atomic<bool> in_hook{false};
  std::atomic<int> overlaps{0};
  std::atomic<std::size_t> rows{0};
  exp::SweepRunOptions opts;
  opts.threads = 4;
  opts.on_row = [&](std::size_t, const exp::SweepRow&) {
    if (in_hook.exchange(true, std::memory_order_acq_rel))
      overlaps.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    rows.fetch_add(1, std::memory_order_relaxed);
    in_hook.store(false, std::memory_order_release);
  };
  (void)exp::run_sweep_expanded(spec, configs, opts);
  EXPECT_EQ(overlaps.load(), 0) << "on_row ran concurrently with itself";
  EXPECT_EQ(rows.load(), configs.size());
}

TEST(SweepHooks, ConcurrentShardsCheckpointAndMergeByteIdentical) {
  // Two shards of one grid executed *simultaneously* (the distributed-run
  // topology: separate processes in production, threads here), each
  // appending to its own checkpoint through the serialized on_row path;
  // the merge must equal the unsharded table byte-for-byte, and resuming a
  // finished shard concurrently must be a no-op returning the same table.
  const auto spec = tiny_sim_spec();
  const std::string full = exp::to_table(exp::run_sweep(spec, 2)).to_csv();
  const std::string paths[2] = {temp_path("conc-shard0.ckpt"),
                                temp_path("conc-shard1.ckpt")};
  auto run_shard = [&spec, &paths](std::uint32_t index) {
    exp::SweepTableOptions opts;
    opts.threads = 2;
    opts.shard = {index, 2};
    opts.checkpoint_path = paths[index];
    return exp::run_sweep_table(spec, opts);
  };
  std::thread other([&] { run_shard(1); });
  const std::string shard0_first = run_shard(0).to_csv();
  other.join();
  EXPECT_EQ(exp::merge_checkpoints({exp::load_checkpoint(paths[0]),
                                    exp::load_checkpoint(paths[1])})
                .to_csv(),
            full);
  // Concurrent resumes of both completed shards: everything restores from
  // the checkpoints (no recompute), identical tables come back.
  std::string shard1_resumed;
  std::thread resume1([&] { shard1_resumed = run_shard(1).to_csv(); });
  EXPECT_EQ(run_shard(0).to_csv(), shard0_first);
  resume1.join();
  EXPECT_FALSE(shard1_resumed.empty());
}

// ---- drain() / abandoned-batch cv protocol (regression) ----
// The annotation audit walked this protocol: jobs_in_flight_ increments
// are relaxed and unlocked (moving away from quiescence never wakes
// anyone), the completing decrement and JobState::done stores happen under
// quiescent_mutex_, and notify follows unlock. These tests pin the
// behavior a missed-wakeup bug would break — each would hang, and the
// suite's CTest timeout turns a hang into a failure.

TEST(DrainProtocol, AbandonedBatchResolvesHandlesAndDrainReturns) {
  runtime::Scheduler sched({.workers = 2});
  std::vector<runtime::JobHandle<int>> handles;
  {
    runtime::Batch batch(sched);
    for (int i = 0; i < 8; ++i)
      handles.push_back(batch.add([i] { return i; }));
    // Destroyed without submit: every staged job is abandoned.
  }
  for (auto& h : handles) {
    EXPECT_TRUE(h.done()) << "abandoned job not marked completed";
    EXPECT_THROW(h.wait(), CheckError);
  }
  // Abandonment balanced jobs_in_flight_, so drain() must return instead
  // of waiting for jobs that will never run.
  sched.drain();
  // And the scheduler is still a working service afterwards.
  EXPECT_EQ(sched.run([] { return 7; }), 7);
}

TEST(DrainProtocol, DrainRacesSubmissionAndAbandonmentWithoutHanging) {
  // Missed-wakeup stress: drain() repeatedly races job completion and
  // batch abandonment from other threads. A completion whose notify could
  // slip between drain()'s predicate check and its park would hang here.
  runtime::Scheduler sched({.workers = 2});
  std::atomic<bool> stop{false};
  std::thread submitter([&] {
    int burst = 0;
    while (!stop.load(std::memory_order_acquire)) {
      auto h = sched.submit([] { return 1; });
      if (burst++ % 3 == 0) {
        runtime::Batch batch(sched);
        (void)batch.add([] { return 2; });
        // Abandoned: completes without running, under quiescent_mutex_.
      }
      (void)h.wait();
    }
  });
  for (int i = 0; i < 200; ++i) sched.drain();
  stop.store(true, std::memory_order_release);
  submitter.join();
  sched.drain();
  EXPECT_EQ(sched.run([] { return 3; }), 3);
}

}  // namespace
}  // namespace wsf
