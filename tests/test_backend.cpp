// Pluggable sweep backends (exp/backend.hpp): the backend expansion axis,
// schema stability of runtime-backend rows, the sim-vs-runtime deviation
// agreement at one worker, and the checkpoint-signature isolation that
// keeps sim and runtime rows from ever merging silently.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "exp/backend.hpp"
#include "exp/checkpoint.hpp"
#include "exp/sweep.hpp"
#include "graphs/registry.hpp"
#include "support/check.hpp"

namespace wsf {
namespace {

using core::ForkPolicy;
using sched::TouchEnable;

exp::SweepSpec both_backends_spec() {
  exp::SweepSpec spec;
  spec.graphs = {{"fig2", {.size = 4, .size2 = 3}, {}},
                 {"fig4", {.size = 4, .size2 = 3}, {}}};
  spec.backends = {exp::BackendKind::Sim, exp::BackendKind::Runtime};
  spec.procs = {1, 2};
  spec.policies = {ForkPolicy::FutureFirst, ForkPolicy::ParentFirst};
  spec.touch_enables = {TouchEnable::TouchFirst};
  spec.cache_lines = {0};
  spec.seeds = 2;
  return spec;
}

std::string cell(const support::Table& t, std::size_t row,
                 const std::string& column) {
  return t.cell(row, t.column_index(column));
}

TEST(BackendSpec, BackendIsTheOutermostAxis) {
  const auto spec = both_backends_spec();
  const auto configs = exp::expand_spec(spec);
  // backends(2) × graphs(2) × cache(1) × procs(2) × policies(2) × touch(1)
  ASSERT_EQ(configs.size(), 16u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(configs[i].backend, exp::BackendKind::Sim);
    EXPECT_EQ(configs[i + 8].backend, exp::BackendKind::Runtime);
    // The two backends of a grid point share everything else, including
    // the generated graph.
    EXPECT_EQ(configs[i].family, configs[i + 8].family);
    EXPECT_EQ(configs[i].graph_index, configs[i + 8].graph_index);
    EXPECT_EQ(configs[i].options.procs, configs[i + 8].options.procs);
    EXPECT_EQ(configs[i].options.policy, configs[i + 8].options.policy);
  }
}

TEST(BackendSpec, ParsesNames) {
  EXPECT_EQ(exp::backend_from_string("sim"), exp::BackendKind::Sim);
  EXPECT_EQ(exp::backend_from_string("runtime"), exp::BackendKind::Runtime);
  EXPECT_THROW(exp::backend_from_string("hardware"), CheckError);
  EXPECT_STREQ(to_string(exp::BackendKind::Sim), "sim");
  EXPECT_STREQ(to_string(exp::BackendKind::Runtime), "runtime");
}

TEST(BackendRows, SharedSchemaWithPerBackendMeasureCoverage) {
  const auto spec = both_backends_spec();
  const auto table = exp::to_table(exp::run_sweep(spec, 2));
  EXPECT_EQ(table.headers(), exp::sweep_table_headers());
  ASSERT_EQ(table.num_rows(), 16u);
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    const bool sim = cell(table, r, "backend") == "sim";
    if (!sim) {
      EXPECT_EQ(cell(table, r, "backend"), "runtime");
    }
    // Both backends report the paper's deviation/steal measures…
    EXPECT_FALSE(cell(table, r, "mean_deviations").empty());
    EXPECT_FALSE(cell(table, r, "mean_steals").empty());
    EXPECT_EQ(cell(table, r, "replicates"), "2");
    // …while engine-specific measures stay missing on the other engine:
    // cache misses and the round grid exist only in the simulator, fiber
    // and wall-clock measures only on the runtime.
    EXPECT_EQ(cell(table, r, "mean_additional_misses").empty(), !sim);
    EXPECT_EQ(cell(table, r, "mean_seq_misses").empty(), !sim);
    EXPECT_EQ(cell(table, r, "mean_steps").empty(), !sim);
    EXPECT_EQ(cell(table, r, "mean_declined_steals").empty(), !sim);
    EXPECT_EQ(cell(table, r, "mean_fiber_switches").empty(), sim);
    EXPECT_EQ(cell(table, r, "mean_parked_touches").empty(), sim);
    EXPECT_EQ(cell(table, r, "mean_migrations").empty(), sim);
    EXPECT_EQ(cell(table, r, "mean_wall_us").empty(), sim);
  }
}

TEST(BackendRows, OneWorkerDeviationsAgreeAcrossBackendsOnEveryFamily) {
  // The paper's validation hinge: at P=1 both engines execute the exact
  // sequential order, so the deviation cells must agree exactly — for
  // every registered family.
  exp::SweepSpec spec;
  graphs::RegistryParams params;
  params.size = 4;
  params.size2 = 3;
  for (const std::string& family : graphs::registry_names())
    spec.graphs.push_back({family, params, {}});
  spec.backends = {exp::BackendKind::Sim, exp::BackendKind::Runtime};
  spec.procs = {1};
  spec.policies = {ForkPolicy::FutureFirst, ForkPolicy::ParentFirst};
  spec.touch_enables = {TouchEnable::TouchFirst,
                        TouchEnable::ContinuationFirst};
  spec.cache_lines = {0};
  spec.seeds = 2;

  const auto table = exp::to_table(exp::run_sweep(spec, 2));
  const std::size_t half = table.num_rows() / 2;
  ASSERT_GT(half, 0u);
  for (std::size_t r = 0; r < half; ++r) {
    ASSERT_EQ(cell(table, r, "backend"), "sim");
    ASSERT_EQ(cell(table, r + half, "backend"), "runtime");
    ASSERT_EQ(cell(table, r, "family"), cell(table, r + half, "family"));
    EXPECT_EQ(cell(table, r, "mean_deviations"),
              cell(table, r + half, "mean_deviations"))
        << cell(table, r, "family") << " " << cell(table, r, "policy")
        << " " << cell(table, r, "touch_enable");
    EXPECT_EQ(cell(table, r + half, "mean_deviations"), "0");
    EXPECT_EQ(cell(table, r + half, "mean_steals"), "0");
  }
}

TEST(BackendSpec, StealAxesExpandInnermost) {
  auto spec = both_backends_spec();
  spec.backends = {exp::BackendKind::Sim};
  spec.steal_policies = {core::StealPolicy::One, core::StealPolicy::Half};
  spec.victim_policies = {core::VictimPolicy::Uniform,
                          core::VictimPolicy::Nearest};
  const auto configs = exp::expand_spec(spec);
  // graphs(2) × procs(2) × policies(2) × steal(2) × victim(2)
  ASSERT_EQ(configs.size(), 32u);
  // The steal axes are the innermost loops and never affect the shared
  // graph: all four (steal, victim) variants of a grid point reference the
  // same generated graph.
  for (std::size_t i = 0; i < configs.size(); i += 4) {
    EXPECT_EQ(configs[i].options.steal_policy, core::StealPolicy::One);
    EXPECT_EQ(configs[i].options.victim_policy, core::VictimPolicy::Uniform);
    EXPECT_EQ(configs[i + 1].options.victim_policy,
              core::VictimPolicy::Nearest);
    EXPECT_EQ(configs[i + 2].options.steal_policy, core::StealPolicy::Half);
    for (std::size_t j = 1; j < 4; ++j) {
      EXPECT_EQ(configs[i + j].graph_index, configs[i].graph_index);
      EXPECT_EQ(configs[i + j].family, configs[i].family);
      EXPECT_EQ(configs[i + j].options.procs, configs[i].options.procs);
    }
  }
}

TEST(BackendRows, OneWorkerAgreesAcrossBackendsForEveryStealPolicyCombo) {
  // The steal-path twin of the P=1 validation hinge: with one worker no
  // steal ever happens, so every steal × victim policy combination must
  // leave both engines on the exact sequential order — agreeing deviation
  // cells, zero steals, zero batch items.
  exp::SweepSpec spec;
  spec.graphs = {{"fig2", {.size = 4, .size2 = 3}, {}},
                 {"fig4", {.size = 4, .size2 = 3}, {}}};
  spec.backends = {exp::BackendKind::Sim, exp::BackendKind::Runtime};
  spec.procs = {1};
  spec.policies = {ForkPolicy::FutureFirst};
  spec.touch_enables = {TouchEnable::TouchFirst};
  spec.cache_lines = {0};
  spec.steal_policies = {core::StealPolicy::One, core::StealPolicy::Half};
  spec.victim_policies = {core::VictimPolicy::Uniform,
                          core::VictimPolicy::LastVictim,
                          core::VictimPolicy::Nearest};
  spec.seeds = 2;

  const auto table = exp::to_table(exp::run_sweep(spec, 2));
  const std::size_t half = table.num_rows() / 2;
  ASSERT_EQ(half, 12u);  // graphs(2) × steal(2) × victim(3)
  for (std::size_t r = 0; r < half; ++r) {
    ASSERT_EQ(cell(table, r, "backend"), "sim");
    ASSERT_EQ(cell(table, r + half, "backend"), "runtime");
    ASSERT_EQ(cell(table, r, "steal"), cell(table, r + half, "steal"));
    ASSERT_EQ(cell(table, r, "victim"), cell(table, r + half, "victim"));
    EXPECT_EQ(cell(table, r, "mean_deviations"),
              cell(table, r + half, "mean_deviations"))
        << cell(table, r, "family") << " " << cell(table, r, "steal") << " "
        << cell(table, r, "victim");
    for (const std::size_t row : {r, r + half}) {
      EXPECT_EQ(cell(table, row, "mean_deviations"), "0");
      EXPECT_EQ(cell(table, row, "mean_steals"), "0");
      EXPECT_EQ(cell(table, row, "mean_batch_stolen_items"), "0");
    }
  }
}

TEST(BackendCheckpoints, SignatureSeparatesStealAxes) {
  const auto base = both_backends_spec();
  auto half = base;
  half.steal_policies = {core::StealPolicy::Half};
  auto nearest = base;
  nearest.victim_policies = {core::VictimPolicy::Nearest};
  // A grid run under a different steal or victim policy is a different
  // experiment: its checkpoints must never splice with the default grid's.
  EXPECT_NE(exp::spec_signature(base), exp::spec_signature(half));
  EXPECT_NE(exp::spec_signature(base), exp::spec_signature(nearest));
  EXPECT_NE(exp::spec_signature(base).find("steals=one;"),
            std::string::npos);
  EXPECT_NE(exp::spec_signature(half).find("steals=half;"),
            std::string::npos);
  EXPECT_NE(exp::spec_signature(nearest).find("victims=nearest;"),
            std::string::npos);
}

TEST(BackendCheckpoints, SignatureSeparatesBackends) {
  const auto spec = both_backends_spec();
  auto sim_only = spec;
  sim_only.backends = {exp::BackendKind::Sim};
  auto runtime_only = spec;
  runtime_only.backends = {exp::BackendKind::Runtime};

  const std::string sim_sig = exp::spec_signature(sim_only);
  const std::string rt_sig = exp::spec_signature(runtime_only);
  EXPECT_NE(sim_sig, rt_sig);
  EXPECT_NE(exp::spec_signature(spec), sim_sig);
  EXPECT_NE(sim_sig.find("backends=sim;"), std::string::npos);
  EXPECT_NE(rt_sig.find("backends=runtime;"), std::string::npos);

  // A checkpoint written by the sim grid must be rejected when resumed as
  // a runtime grid (and vice versa): sim and runtime rows never splice.
  const std::string path = ::testing::TempDir() + "backend.ckpt";
  std::remove(path.c_str());
  exp::SweepTableOptions opts;
  opts.threads = 2;
  opts.checkpoint_path = path;
  (void)exp::run_sweep_table(sim_only, opts);
  EXPECT_THROW(exp::run_sweep_table(runtime_only, opts), CheckError);

  // Shard checkpoints of different backends refuse to merge.
  const std::string rt_path = ::testing::TempDir() + "backend-rt.ckpt";
  std::remove(rt_path.c_str());
  exp::SweepTableOptions rt_opts;
  rt_opts.threads = 2;
  rt_opts.checkpoint_path = rt_path;
  (void)exp::run_sweep_table(runtime_only, rt_opts);
  EXPECT_THROW(exp::merge_checkpoints({exp::load_checkpoint(path),
                                       exp::load_checkpoint(rt_path)}),
               CheckError);
}

TEST(BackendCheckpoints, RuntimeRowsResumeVerbatim) {
  // Runtime measures are not reproducible run to run (real scheduling),
  // but a resume restores finished rows byte-for-byte instead of
  // re-executing them — same contract as the simulator backend.
  exp::SweepSpec spec = both_backends_spec();
  spec.backends = {exp::BackendKind::Runtime};
  const std::string path = ::testing::TempDir() + "backend-resume.ckpt";
  std::remove(path.c_str());
  {
    exp::SweepTableOptions opts;
    opts.threads = 2;
    opts.shard = {0, 2};
    opts.checkpoint_path = path;
    (void)exp::run_sweep_table(spec, opts);
  }
  const auto before = exp::load_checkpoint(path);
  std::vector<std::size_t> executed;
  exp::SweepTableOptions opts;
  opts.threads = 1;
  opts.checkpoint_path = path;
  opts.on_row = [&](std::size_t i, const exp::SweepRow&) {
    executed.push_back(i);
  };
  (void)exp::run_sweep_table(spec, opts);
  for (const std::size_t i : executed) EXPECT_EQ(i % 2, 1u);
  const auto after = exp::load_checkpoint(path);
  // Every row of the partial run survives the resume unchanged.
  for (const auto& row : before.table.rows()) {
    bool found = false;
    for (const auto& other : after.table.rows())
      if (other == row) found = true;
    EXPECT_TRUE(found) << "restored row was rewritten";
  }
}

}  // namespace
}  // namespace wsf
