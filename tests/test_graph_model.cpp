// Builder and Graph model invariants (Section 2.1 conventions).
#include <gtest/gtest.h>

#include "core/builder.hpp"
#include "core/dot.hpp"
#include "core/graph.hpp"
#include "support/check.hpp"

namespace wsf::core {
namespace {

TEST(Builder, MinimalGraphIsRootOnly) {
  GraphBuilder b;
  const Graph g = b.finish();
  EXPECT_EQ(g.num_nodes(), 1u);
  EXPECT_EQ(g.root(), g.final_node());
  EXPECT_EQ(g.num_threads(), 1u);
}

TEST(Builder, StepExtendsMainThread) {
  GraphBuilder b;
  const NodeId a = b.step(b.main_thread());
  const NodeId c = b.step(b.main_thread());
  const Graph g = b.finish();
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.final_node(), c);
  EXPECT_EQ(g.node(a).out[0].node, c);
  EXPECT_EQ(g.node(a).out[0].kind, EdgeKind::Continuation);
}

TEST(Builder, ForkCreatesFutureThread) {
  GraphBuilder b;
  const auto fk = b.fork(b.main_thread());
  b.step(fk.future_thread);
  b.step(b.main_thread());
  b.touch(b.main_thread(), fk.future_thread);
  const Graph g = b.finish();
  EXPECT_EQ(g.num_threads(), 2u);
  EXPECT_TRUE(g.is_fork(fk.fork_node));
  EXPECT_EQ(g.fork_left_child(fk.fork_node), fk.future_first);
  EXPECT_EQ(g.thread_of(fk.future_first), fk.future_thread);
  EXPECT_EQ(g.thread_info(fk.future_thread).fork_node, fk.fork_node);
  EXPECT_EQ(g.thread_info(fk.future_thread).parent, b.main_thread());
}

TEST(Builder, TouchRecordsBothParents) {
  GraphBuilder b;
  const auto fk = b.fork(b.main_thread());
  const NodeId body = b.step(fk.future_thread);
  const NodeId local = b.step(b.main_thread());
  const NodeId touch = b.touch(b.main_thread(), fk.future_thread);
  const Graph g = b.finish();
  EXPECT_TRUE(g.is_touch(touch));
  EXPECT_EQ(g.future_parent_of(touch), body);
  EXPECT_EQ(g.local_parent_of(touch), local);
  EXPECT_EQ(g.future_thread_of(touch), fk.future_thread);
  EXPECT_EQ(g.corresponding_fork_of(touch), fk.fork_node);
  EXPECT_TRUE(g.is_future_parent(body));
}

TEST(Builder, RejectsTouchAsForkChild) {
  GraphBuilder b;
  const auto f1 = b.fork(b.main_thread());
  b.step(f1.future_thread);
  // The main thread's tail is the fork node; touching now would make the
  // fork's right child a touch, which the paper's convention forbids.
  EXPECT_THROW(b.touch(b.main_thread(), f1.future_thread), CheckError);
}

TEST(Builder, RejectsSelfTouch) {
  GraphBuilder b;
  b.step(b.main_thread());
  EXPECT_THROW(b.touch(b.main_thread(), b.main_thread()), CheckError);
}

TEST(Builder, RejectsUnfinishedFutureThread) {
  GraphBuilder b;
  const auto fk = b.fork(b.main_thread());
  b.step(fk.future_thread);
  b.step(b.main_thread());
  // The future thread never touches anything: finish() must fail because
  // its last node has no outgoing touch edge.
  EXPECT_THROW(b.finish(), CheckError);
}

TEST(Builder, SuperFinalCollectsSideEffectThreads) {
  GraphBuilder b;
  const auto fk = b.fork(b.main_thread());
  b.step(fk.future_thread);
  b.step(b.main_thread());
  const Graph g = b.finish_super();
  EXPECT_TRUE(g.has_super_final());
  ASSERT_EQ(g.super_final_preds().size(), 1u);
  EXPECT_EQ(g.thread_of(g.super_final_preds()[0]), fk.future_thread);
  EXPECT_GE(g.in_degree(g.final_node()), 2u);
}

TEST(Builder, SuperFinalTouchAllAddsSecondTouch) {
  GraphBuilder b;
  const auto fk = b.fork(b.main_thread());
  b.step(fk.future_thread);
  b.step(b.main_thread());
  b.touch(b.main_thread(), fk.future_thread);
  const Graph g = b.finish_super(/*touch_all=*/true);
  EXPECT_TRUE(g.has_super_final());
  EXPECT_EQ(g.super_final_preds().size(), 1u);  // the already-touched thread
}

TEST(Builder, ChainAppendsBlocks) {
  GraphBuilder b;
  const NodeId last = b.chain(b.main_thread(), {7, 8, 9});
  const Graph g = b.finish();
  EXPECT_EQ(g.block_of(last), 9);
  EXPECT_EQ(g.num_nodes(), 4u);
}

TEST(Builder, FinishTwiceRejected) {
  GraphBuilder b;
  b.step(b.main_thread());
  (void)b.finish();
  EXPECT_THROW(b.finish(), CheckError);
}

TEST(Graph, RolesRoundTrip) {
  GraphBuilder b;
  const NodeId n = b.step(b.main_thread(), kNoBlock, "hello");
  const Graph g = b.finish();
  EXPECT_EQ(g.node_by_role("hello"), n);
  EXPECT_EQ(g.role_of(n), "hello");
  EXPECT_EQ(g.node_by_role("nope"), kInvalidNode);
  EXPECT_EQ(g.role_of(g.root()), "");
  EXPECT_EQ(g.all_roles().size(), 1u);
}

TEST(Graph, DuplicateRoleRejected) {
  GraphBuilder b;
  b.step(b.main_thread(), kNoBlock, "dup");
  EXPECT_THROW(b.step(b.main_thread(), kNoBlock, "dup"), CheckError);
}

TEST(Graph, EdgeAndDegreeAccounting) {
  GraphBuilder b;
  const auto fk = b.fork(b.main_thread());
  b.step(fk.future_thread);
  b.step(b.main_thread());
  const NodeId touch = b.touch(b.main_thread(), fk.future_thread);
  const Graph g = b.finish();
  // nodes: root, fork, future-first, future-body, right-child, touch.
  EXPECT_EQ(g.num_nodes(), 6u);
  EXPECT_EQ(g.in_degree(touch), 2u);
  EXPECT_EQ(g.out_degree(g.final_node()), 0u);
  EXPECT_EQ(g.touch_nodes().size(), 1u);
  EXPECT_EQ(g.fork_nodes().size(), 1u);
  EXPECT_EQ(g.touches_of_thread(fk.future_thread).size(), 1u);
}

TEST(Dot, RendersEdgesAndRoles) {
  GraphBuilder b;
  const auto fk = b.fork(b.main_thread(), kNoBlock, "the-fork");
  b.step(fk.future_thread, 3);
  b.step(b.main_thread());
  b.touch(b.main_thread(), fk.future_thread);
  const Graph g = b.finish();
  const std::string dot = to_dot(g);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("the-fork"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);  // future edge
  EXPECT_NE(dot.find("style=dotted"), std::string::npos);  // touch edge
  EXPECT_NE(dot.find("m3"), std::string::npos);            // block label
}

}  // namespace
}  // namespace wsf::core
