// Allocation accounting for the Simulator reset/arena API: a counter-only
// replicate loop that reuses one simulator must allocate far less than one
// that constructs a simulator per seed. Global operator new is replaced
// with a counting shim, so this suite lives in its own binary.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "core/deviation.hpp"
#include "graphs/registry.hpp"
#include "sched/sequential.hpp"
#include "sched/simulator.hpp"

namespace {

std::atomic<std::size_t> g_allocations{0};

}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  const auto a = static_cast<std::size_t>(align);
  const std::size_t rounded = (size + a - 1) / a * a;  // aligned_alloc rule
  if (void* p = std::aligned_alloc(a, rounded ? rounded : a)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace wsf {
namespace {

sched::SimOptions counter_only_options() {
  sched::SimOptions opts;
  opts.procs = 4;
  opts.stall_prob = 0.25;
  opts.record_trace = false;  // counters only: no per-node trace vectors
  return opts;
}

TEST(SimulatorReuse, ResetLoopAllocatesFarLessThanConstruction) {
  const auto gen = graphs::make_named("forkjoin", {.size = 7, .size2 = 4});
  const sched::SimOptions opts = counter_only_options();
  constexpr std::uint64_t kSeeds = 16;

  // Fresh-construction loop: pays pending/executed/current/deque
  // allocations per seed.
  std::uint64_t fresh_steals = 0;
  const std::size_t before_fresh =
      g_allocations.load(std::memory_order_relaxed);
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    sched::SimOptions per_seed = opts;
    per_seed.seed = seed;
    fresh_steals += sched::simulate(gen.graph, per_seed).steals;
  }
  const std::size_t fresh_allocs =
      g_allocations.load(std::memory_order_relaxed) - before_fresh;

  // Reused-arena loop: one construction, reset per seed.
  std::uint64_t warm_steals = 0;
  sched::SimOptions first = opts;
  first.seed = 1;
  sched::Simulator sim(gen.graph, first);
  const std::size_t before_warm =
      g_allocations.load(std::memory_order_relaxed);
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    if (seed != 1) sim.reset(seed);
    warm_steals += sim.run().steals;
  }
  const std::size_t warm_allocs =
      g_allocations.load(std::memory_order_relaxed) - before_warm;

  EXPECT_EQ(warm_steals, fresh_steals);  // reuse must not change results
  EXPECT_GT(fresh_allocs, 0u);
  // The arena loop re-allocates only the per-run result vectors (the
  // misses array moves out with each SimResult); everything sized by the
  // graph is recycled. Require a decisive gap, not a lucky margin.
  EXPECT_LT(warm_allocs * 4, fresh_allocs)
      << "warm=" << warm_allocs << " fresh=" << fresh_allocs;
}

TEST(SimulatorReuse, InPlaceBatchMatchesMovedOutResults) {
  // run_in_place() must produce exactly what run() produces; only the
  // ownership of the result buffers differs.
  const auto gen = graphs::make_named("forkjoin", {.size = 7, .size2 = 4});
  sched::SimOptions opts = counter_only_options();
  opts.record_trace = true;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    sched::SimOptions per_seed = opts;
    per_seed.seed = seed;
    const sched::SimResult moved = sched::simulate(gen.graph, per_seed);
    sched::Simulator sim(gen.graph, per_seed);
    const sched::SimResult& in_place = sim.run_in_place();
    EXPECT_EQ(in_place.steals, moved.steals);
    EXPECT_EQ(in_place.steps, moved.steps);
    EXPECT_EQ(in_place.global_order, moved.global_order);
    EXPECT_EQ(in_place.proc_orders, moved.proc_orders);
  }
}

TEST(SimulatorReuse, BatchedReplicateLoopIsAllocationFreeAtSteadyState) {
  // The run_replicates batch shape: one simulator arena + one deviation
  // counter, traces on (deviation counting needs proc_orders), results
  // read in place. After warm-up a replicate must allocate *nothing* —
  // simulator state, result vectors, and deviation report are all
  // recycled.
  const auto gen = graphs::make_named("forkjoin", {.size = 7, .size2 = 4});
  sched::SimOptions opts = counter_only_options();
  opts.record_trace = true;
  opts.seed = 1;
  const sched::SeqResult seq = sched::run_sequential(gen.graph, opts);
  sched::Simulator sim(gen.graph, opts);
  wsf::core::DeviationCounter counter(gen.graph, seq.order);
  std::uint64_t devs = 0;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {  // warm-up replicates
    if (seed != 1) sim.reset(seed);
    devs += counter.count(sim.run_in_place().proc_orders).deviations;
  }
  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  sim.reset(4);
  devs += counter.count(sim.run_in_place().proc_orders).deviations;
  const std::size_t per_replicate =
      g_allocations.load(std::memory_order_relaxed) - before;
  EXPECT_LE(per_replicate, 2u)
      << "steady-state batched replicate allocated " << per_replicate
      << " times";
  EXPECT_GT(devs + 1, 0u);  // keep the loop observable
}

TEST(SimulatorReuse, ResetIsAllocationLightPerReplicate) {
  const auto gen = graphs::make_named("forkjoin", {.size = 7, .size2 = 4});
  sched::SimOptions opts = counter_only_options();
  opts.seed = 1;
  sched::Simulator sim(gen.graph, opts);
  (void)sim.run();
  // Warm up one reset+run so lazily grown buffers (deque rings) exist…
  sim.reset(2);
  (void)sim.run();
  // …then a steady-state replicate should cost O(procs) allocations (the
  // result's misses_per_proc), independent of the graph size.
  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  sim.reset(3);
  (void)sim.run();
  const std::size_t per_replicate =
      g_allocations.load(std::memory_order_relaxed) - before;
  EXPECT_LE(per_replicate, 8u) << "steady-state replicate allocated "
                               << per_replicate << " times";
}

}  // namespace
}  // namespace wsf
