// parallel_for / parallel_invoke / parallel_reduce on both spawn policies.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "runtime/algorithms.hpp"
#include "support/check.hpp"

namespace wsf::runtime {
namespace {

class AlgorithmsBothPolicies : public ::testing::TestWithParam<SpawnPolicy> {
 protected:
  Scheduler make() {
    RuntimeOptions opts;
    opts.workers = 4;
    opts.policy = GetParam();
    return Scheduler(opts);
  }
};

TEST_P(AlgorithmsBothPolicies, ParallelForCoversRangeExactlyOnce) {
  RuntimeOptions opts;
  opts.workers = 4;
  opts.policy = GetParam();
  Scheduler sched(opts);
  constexpr std::size_t kN = 5000;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  sched.run([&] {
    parallel_for(0, kN, 64, [&](std::size_t i) { hits[i].fetch_add(1); });
  });
  for (std::size_t i = 0; i < kN; ++i)
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST_P(AlgorithmsBothPolicies, ParallelForEmptyAndTinyRanges) {
  RuntimeOptions opts;
  opts.workers = 2;
  opts.policy = GetParam();
  Scheduler sched(opts);
  int count = 0;
  sched.run([&] {
    parallel_for(5, 5, 8, [&](std::size_t) { ++count; });   // empty
    parallel_for(5, 6, 8, [&](std::size_t) { ++count; });   // single
  });
  EXPECT_EQ(count, 1);
}

TEST_P(AlgorithmsBothPolicies, ParallelInvokeReturnsBoth) {
  RuntimeOptions opts;
  opts.workers = 2;
  opts.policy = GetParam();
  Scheduler sched(opts);
  const auto [a, b] = sched.run([] {
    return parallel_invoke([] { return 6; }, [] { return 7; });
  });
  EXPECT_EQ(a, 6);
  EXPECT_EQ(b, 7);
}

TEST_P(AlgorithmsBothPolicies, ParallelReduceSum) {
  RuntimeOptions opts;
  opts.workers = 4;
  opts.policy = GetParam();
  Scheduler sched(opts);
  const long total = sched.run([] {
    return parallel_reduce<long>(
        0, 10000, 128, 0L, [](std::size_t i) { return static_cast<long>(i); },
        [](long a, long b) { return a + b; });
  });
  EXPECT_EQ(total, 10000L * 9999L / 2);
}

TEST_P(AlgorithmsBothPolicies, NestedParallelFor) {
  RuntimeOptions opts;
  opts.workers = 4;
  opts.policy = GetParam();
  Scheduler sched(opts);
  std::atomic<int> total{0};
  sched.run([&] {
    parallel_for(0, 32, 4, [&](std::size_t) {
      parallel_for(0, 32, 4, [&](std::size_t) { total.fetch_add(1); });
    });
  });
  EXPECT_EQ(total.load(), 32 * 32);
}

INSTANTIATE_TEST_SUITE_P(Policies, AlgorithmsBothPolicies,
                         ::testing::Values(SpawnPolicy::FutureFirst,
                                           SpawnPolicy::ParentFirst),
                         [](const auto& param_info) {
                           return param_info.param == SpawnPolicy::FutureFirst
                                      ? "FutureFirst"
                                      : "ParentFirst";
                         });

TEST(Algorithms, GrainZeroRejected) {
  Scheduler sched({.workers = 1});
  EXPECT_THROW(sched.run([] {
    parallel_for(0, 10, 0, [](std::size_t) {});
  }),
               CheckError);
}

}  // namespace
}  // namespace wsf::runtime
