// RingDeque behaviour: the flat ring buffer must be drop-in equivalent to
// std::deque for the simulator's access pattern (push/pop at the bottom,
// pop at the top, indexed reads from the top).
#include <gtest/gtest.h>

#include <cstdint>
#include <deque>

#include "support/ring_deque.hpp"
#include "support/rng.hpp"

namespace wsf {
namespace {

using support::RingDeque;

TEST(RingDeque, StartsEmpty) {
  RingDeque<int> d;
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.size(), 0u);
}

TEST(RingDeque, PushPopBackIsLifo) {
  RingDeque<int> d;
  for (int i = 0; i < 10; ++i) d.push_back(i);
  EXPECT_EQ(d.size(), 10u);
  for (int i = 9; i >= 0; --i) {
    EXPECT_EQ(d.back(), i);
    d.pop_back();
  }
  EXPECT_TRUE(d.empty());
}

TEST(RingDeque, PopFrontIsFifo) {
  RingDeque<int> d;
  for (int i = 0; i < 10; ++i) d.push_back(i);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(d.front(), i);
    d.pop_front();
  }
  EXPECT_TRUE(d.empty());
}

TEST(RingDeque, IndexZeroIsFront) {
  RingDeque<int> d;
  for (int i = 0; i < 5; ++i) d.push_back(i * 10);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(d[i], static_cast<int>(i) * 10);
}

TEST(RingDeque, WrapsAroundTheBuffer) {
  // Drive head around the ring several times: pop from the front while
  // pushing at the back keeps the size small but the indices wrapping.
  RingDeque<int> d;
  for (int i = 0; i < 4; ++i) d.push_back(i);
  for (int i = 4; i < 100; ++i) {
    d.push_back(i);
    d.pop_front();
  }
  EXPECT_EQ(d.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(d[i], 96 + static_cast<int>(i));
}

TEST(RingDeque, GrowthPreservesOrder) {
  RingDeque<int> d;
  // Offset the head first so growth has to unwrap a wrapped buffer.
  for (int i = 0; i < 6; ++i) d.push_back(i);
  for (int i = 0; i < 5; ++i) d.pop_front();
  for (int i = 6; i < 200; ++i) d.push_back(i);
  EXPECT_EQ(d.size(), 195u);
  for (std::size_t i = 0; i < d.size(); ++i)
    EXPECT_EQ(d[i], 5 + static_cast<int>(i));
}

TEST(RingDeque, ClearThenReuse) {
  RingDeque<int> d;
  for (int i = 0; i < 20; ++i) d.push_back(i);
  d.clear();
  EXPECT_TRUE(d.empty());
  d.push_back(7);
  EXPECT_EQ(d.front(), 7);
  EXPECT_EQ(d.back(), 7);
}

TEST(RingDeque, ReservePreallocates) {
  RingDeque<int> d;
  d.reserve(100);
  for (int i = 0; i < 100; ++i) d.push_back(i);
  EXPECT_EQ(d.size(), 100u);
  EXPECT_EQ(d.front(), 0);
  EXPECT_EQ(d.back(), 99);
}

TEST(RingDeque, FuzzAgainstStdDeque) {
  support::Xoshiro256 rng(2024);
  RingDeque<std::uint32_t> ours;
  std::deque<std::uint32_t> ref;
  for (int step = 0; step < 20000; ++step) {
    const auto op = rng.below(5);
    if (op <= 1 || ref.empty()) {
      const auto v = static_cast<std::uint32_t>(rng.next());
      ours.push_back(v);
      ref.push_back(v);
    } else if (op == 2) {
      ours.pop_back();
      ref.pop_back();
    } else if (op == 3) {
      ours.pop_front();
      ref.pop_front();
    } else {
      const auto i = rng.below(ref.size());
      ASSERT_EQ(ours[i], ref[i]);
    }
    ASSERT_EQ(ours.size(), ref.size());
    if (!ref.empty()) {
      ASSERT_EQ(ours.front(), ref.front());
      ASSERT_EQ(ours.back(), ref.back());
    }
  }
}

}  // namespace
}  // namespace wsf
