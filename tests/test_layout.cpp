// Node memory-layout orders (core/layout.hpp) and their central property:
// relabeling a DAG into a different node order changes where nodes live in
// memory but not the schedule structure, so every schedule-structure
// measure — deviations, steals, steps, and (because block annotations move
// with their nodes) cache misses — is invariant under it. This is what
// makes `layout` a legitimate experimental axis: any measured difference
// between layouts comes from the memory system, never from the scheduler
// seeing a different computation.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/deviation.hpp"
#include "core/layout.hpp"
#include "core/traversal.hpp"
#include "exp/analysis.hpp"
#include "exp/sweep.hpp"
#include "graphs/registry.hpp"
#include "runtime/pool.hpp"
#include "runtime/replay.hpp"
#include "sched/sequential.hpp"
#include "sched/simulator.hpp"

namespace wsf {
namespace {

using core::NodeId;
using core::NodeOrderKind;

constexpr NodeOrderKind kAllKinds[] = {
    NodeOrderKind::Construction, NodeOrderKind::Dfs,
    NodeOrderKind::Sequential, NodeOrderKind::Random};

graphs::RegistryParams small_params() {
  graphs::RegistryParams params;
  params.size = 6;
  params.size2 = 3;
  params.cache_lines = 8;  // annotate blocks so miss counts are exercised
  params.seed = 1;
  return params;
}

TEST(NodeOrder, PermutationPinsRootAndInverts) {
  for (const std::string& family : graphs::registry_names()) {
    const auto gen = graphs::make_named(family, small_params());
    for (const NodeOrderKind kind : kAllKinds) {
      const core::NodeOrder order =
          sched::make_node_order(gen.graph, kind, 7);
      const std::size_t n = gen.graph.num_nodes();
      ASSERT_EQ(order.new_id_of.size(), n) << family;
      ASSERT_EQ(order.old_id_of.size(), n) << family;
      EXPECT_EQ(order.kind, kind);
      // The root keeps id 0 (relabeled_graph requires it), and the two
      // mappings are inverse permutations.
      EXPECT_EQ(order.new_id_of[0], 0u) << family;
      EXPECT_EQ(order.old_id_of[0], 0u) << family;
      for (NodeId v = 0; v < static_cast<NodeId>(n); ++v)
        ASSERT_EQ(order.old_id_of[order.new_id_of[v]], v)
            << family << " " << core::to_string(kind);
    }
  }
}

TEST(NodeOrder, ToOriginalMapsRelabeledIdsBack) {
  const auto gen = graphs::make_named("fig4", small_params());
  const core::NodeOrder order =
      sched::make_node_order(gen.graph, NodeOrderKind::Dfs, 1);
  std::vector<NodeId> relabeled;
  for (NodeId v = 0; v < static_cast<NodeId>(gen.graph.num_nodes()); ++v)
    relabeled.push_back(order.new_id_of[v]);
  const std::vector<NodeId> back = order.to_original(relabeled);
  for (NodeId v = 0; v < static_cast<NodeId>(back.size()); ++v)
    ASSERT_EQ(back[v], v);
}

TEST(RelabeledGraph, StructuralStatsInvariant) {
  for (const std::string& family : graphs::registry_names()) {
    const auto gen = graphs::make_named(family, small_params());
    const core::DagStats base = core::compute_stats(gen.graph);
    for (const NodeOrderKind kind : kAllKinds) {
      if (kind == NodeOrderKind::Construction) continue;
      const core::NodeOrder order =
          sched::make_node_order(gen.graph, kind, 7);
      // relabeled_graph validates the result internally; the stats cross-
      // check asserts the DAG is the *same* computation, renumbered.
      const core::Graph g2 =
          core::relabeled_graph(gen.graph, order.new_id_of);
      EXPECT_EQ(g2.num_nodes(), gen.graph.num_nodes()) << family;
      EXPECT_EQ(g2.num_edges(), gen.graph.num_edges()) << family;
      EXPECT_EQ(g2.num_threads(), gen.graph.num_threads()) << family;
      const core::DagStats stats = core::compute_stats(g2);
      EXPECT_EQ(stats.nodes, base.nodes) << family;
      EXPECT_EQ(stats.span, base.span) << family;
      EXPECT_EQ(stats.touches, base.touches) << family;
    }
  }
}

// The deterministic-simulator half of the invariance property: for every
// registered family, the replicate aggregates the sweep actually reports
// (deviations, additional misses, steals, steps) are exactly equal across
// all four node orders — same seeds, same options, renumbered graph.
TEST(LayoutInvariance, SimulatorMeasuresExactAcrossOrders) {
  sched::SimOptions opts;
  opts.procs = 4;
  opts.cache_lines = 8;
  constexpr std::uint64_t kSeedBase = 7;
  constexpr std::uint64_t kSeeds = 3;
  for (const std::string& family : graphs::registry_names()) {
    const auto gen = graphs::make_named(family, small_params());
    const exp::SweepCell base =
        exp::run_replicates(gen.graph, opts, kSeedBase, kSeeds);
    for (const NodeOrderKind kind : kAllKinds) {
      if (kind == NodeOrderKind::Construction) continue;
      const core::NodeOrder order =
          sched::make_node_order(gen.graph, kind, 7);
      const core::Graph g2 =
          core::relabeled_graph(gen.graph, order.new_id_of);
      const exp::SweepCell cell =
          exp::run_replicates(g2, opts, kSeedBase, kSeeds);
      const std::string at =
          family + " layout=" + core::to_string(kind);
      EXPECT_EQ(cell.deviations.mean(), base.deviations.mean()) << at;
      EXPECT_EQ(cell.additional_misses.mean(),
                base.additional_misses.mean())
          << at;
      EXPECT_EQ(cell.seq_misses.mean(), base.seq_misses.mean()) << at;
      EXPECT_EQ(cell.steals.mean(), base.steals.mean()) << at;
      EXPECT_EQ(cell.steps.mean(), base.steps.mean()) << at;
    }
  }
}

// The runtime half: at one worker the replay order of a relabeled graph is
// exactly its own sequential baseline — zero deviations under every node
// order, for both spawn policies. (P>1 runtime runs are nondeterministic,
// so the exact-count comparison lives in the simulator test above.)
TEST(LayoutInvariance, RuntimeOneWorkerMatchesSequentialUnderAnyOrder) {
  for (const runtime::SpawnPolicy policy :
       {runtime::SpawnPolicy::FutureFirst,
        runtime::SpawnPolicy::ParentFirst}) {
    runtime::RuntimeOptions ropts;
    ropts.workers = 1;
    ropts.policy = policy;
    runtime::Scheduler sched(ropts);
    sched::SimOptions seq_opts;
    seq_opts.policy = policy == runtime::SpawnPolicy::FutureFirst
                          ? core::ForkPolicy::FutureFirst
                          : core::ForkPolicy::ParentFirst;
    for (const std::string& family : graphs::registry_names()) {
      const auto gen = graphs::make_named(family, small_params());
      for (const NodeOrderKind kind :
           {NodeOrderKind::Dfs, NodeOrderKind::Sequential,
            NodeOrderKind::Random}) {
        const core::NodeOrder order =
            sched::make_node_order(gen.graph, kind, 7);
        const core::Graph g2 =
            core::relabeled_graph(gen.graph, order.new_id_of);
        const sched::SeqResult seq = sched::run_sequential(g2, seq_opts);

        runtime::GraphReplayer replayer(g2);
        (void)replayer.run(sched, {});
        const auto& orders = replayer.worker_orders();
        ASSERT_EQ(orders.size(), 1u);
        EXPECT_EQ(orders[0], seq.order)
            << family << " layout=" << core::to_string(kind)
            << " policy=" << to_string(policy);
        const core::DeviationReport dev =
            core::count_deviations(g2, seq.order, orders);
        EXPECT_EQ(dev.deviations, 0u)
            << family << " layout=" << core::to_string(kind);
      }
    }
  }
}

// End-to-end through the sweep layer: the layout axis expands into its own
// configurations referencing relabeled shared graphs, the result table
// carries the layout identity column, and — invariance again — the
// deviation cells agree across layouts row-for-row.
TEST(SweepLayoutAxis, ExpandsAndReportsInvariantMeasures) {
  exp::SweepSpec spec;
  spec.graphs.push_back({"fig4", small_params(), {}});
  spec.procs = {1, 4};
  spec.cache_lines = {0, 8};
  spec.layouts = {NodeOrderKind::Construction, NodeOrderKind::Dfs,
                  NodeOrderKind::Sequential, NodeOrderKind::Random};
  spec.seeds = 2;

  const std::vector<exp::SweepConfig> configs = exp::expand_spec(spec);
  ASSERT_EQ(configs.size(), 2u * 4u * 2u);  // cache × layouts × procs
  const auto graphs_list = exp::generate_graphs(spec);
  ASSERT_EQ(graphs_list.size(), 2u * 4u);
  for (const exp::SweepConfig& cfg : configs) {
    ASSERT_LT(cfg.graph_index, graphs_list.size());
    // Every config's graph is the same computation, relabeled.
    EXPECT_EQ(graphs_list[cfg.graph_index].graph.num_nodes(),
              graphs_list.front().graph.num_nodes());
  }

  const exp::SweepResult result = exp::run_sweep(spec, 2);
  const support::Table table = exp::to_table(result);
  ASSERT_TRUE(table.has_column("layout"));
  const std::vector<std::string> layouts =
      exp::analysis::distinct(table, "layout");
  EXPECT_EQ(layouts.size(), 4u);

  // Group rows by everything except layout: each group's deviation cells
  // must agree across its four layout rows.
  const std::size_t c_procs = table.column_index("procs");
  const std::size_t c_cache = table.column_index("cache_lines");
  const std::size_t c_layout = table.column_index("layout");
  const std::size_t c_dev = table.column_index("mean_deviations");
  std::map<std::string, std::string> dev_of;
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    const std::string key =
        table.cell(r, c_procs) + "/" + table.cell(r, c_cache);
    const auto [it, fresh] = dev_of.emplace(key, table.cell(r, c_dev));
    if (!fresh) {
      EXPECT_EQ(table.cell(r, c_dev), it->second)
          << "procs/cache " << key << " layout "
          << table.cell(r, c_layout);
    }
  }
}

}  // namespace
}  // namespace wsf
