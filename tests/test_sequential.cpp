// Sequential executor tests, including the paper's Lemma 4 and Lemma 11
// order invariants as property tests over random structured DAGs.
#include <gtest/gtest.h>

#include "core/classify.hpp"
#include "graphs/generators.hpp"
#include "graphs/registry.hpp"
#include "sched/sequential.hpp"
#include "sched/simulator.hpp"

namespace wsf {
namespace {

using core::ForkPolicy;
using core::Graph;
using core::NodeId;
using sched::SeqResult;
using sched::SimOptions;

SeqResult run_seq(const Graph& g, ForkPolicy policy) {
  SimOptions opts;
  opts.policy = policy;
  return sched::run_sequential(g, opts);
}

void expect_is_permutation(const Graph& g, const SeqResult& r) {
  ASSERT_EQ(r.order.size(), g.num_nodes());
  std::vector<char> seen(g.num_nodes(), 0);
  for (NodeId v : r.order) {
    ASSERT_LT(v, g.num_nodes());
    EXPECT_FALSE(seen[v]) << "node " << v << " executed twice";
    seen[v] = 1;
  }
  // Dependency order: every node executes after all its predecessors.
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto& n = g.node(v);
    for (std::uint8_t i = 0; i < n.out_count; ++i)
      EXPECT_LT(r.position[v], r.position[n.out[i].node]);
  }
}

TEST(Sequential, ChainRunsInOrder) {
  const auto gen = graphs::serial_chain(10);
  const auto r = run_seq(gen.graph, ForkPolicy::FutureFirst);
  for (NodeId v = 0; v < 10; ++v) EXPECT_EQ(r.order[v], v);
}

TEST(Sequential, ExecutesEveryNodeOnceRespectingDeps) {
  for (const auto& name : graphs::registry_names()) {
    graphs::RegistryParams p;
    p.size = 4;
    p.size2 = 3;
    p.cache_lines = 2;
    const auto gen = graphs::make_named(name, p);
    for (auto policy : {ForkPolicy::FutureFirst, ForkPolicy::ParentFirst}) {
      const auto r = run_seq(gen.graph, policy);
      expect_is_permutation(gen.graph, r);
    }
  }
}

TEST(Sequential, FutureFirstDivesIntoFutureThread) {
  const auto gen = graphs::fig5b(2);
  const auto r = run_seq(gen.graph, ForkPolicy::FutureFirst);
  const Graph& g = gen.graph;
  const NodeId fork = g.fork_nodes()[0];
  EXPECT_EQ(r.position[g.fork_left_child(fork)], r.position[fork] + 1);
}

TEST(Sequential, ParentFirstContinuesParent) {
  const auto gen = graphs::fig5b(2);
  const auto r = run_seq(gen.graph, ForkPolicy::ParentFirst);
  const Graph& g = gen.graph;
  const NodeId fork = g.fork_nodes()[0];
  EXPECT_EQ(r.position[g.fork_right_child(fork)], r.position[fork] + 1);
}

TEST(Sequential, MatchesSimulatorAtPOne) {
  // Independent implementations must agree exactly — the cross-check for
  // both engines.
  for (const auto& name : graphs::registry_names()) {
    graphs::RegistryParams p;
    p.size = 5;
    p.size2 = 3;
    p.cache_lines = 3;
    const auto gen = graphs::make_named(name, p);
    for (auto policy : {ForkPolicy::FutureFirst, ForkPolicy::ParentFirst}) {
      SimOptions opts;
      opts.policy = policy;
      opts.procs = 1;
      opts.cache_lines = 3;
      const auto seq = sched::run_sequential(gen.graph, opts);
      const auto par = sched::simulate(gen.graph, opts);
      EXPECT_EQ(seq.order, par.proc_orders[0])
          << name << " under " << to_string(policy);
      EXPECT_EQ(seq.misses, par.total_misses()) << name;
      EXPECT_EQ(par.steals, 0u);
    }
  }
}

// ---------------------------------------------------------------------------
// Lemma 4: in the sequential future-first execution of a structured
// single-touch computation, (a) every touch's future parent executes before
// its local parent, and (b) the right child of the touch's corresponding
// fork immediately follows the touch's future parent (the future thread's
// last node).
// ---------------------------------------------------------------------------

void expect_lemma4(const Graph& g, const SeqResult& r) {
  for (NodeId touch : g.touch_nodes()) {
    const NodeId fparent = g.future_parent_of(touch);
    const NodeId lparent = g.local_parent_of(touch);
    EXPECT_LT(r.position[fparent], r.position[lparent])
        << "Lemma 4(a) violated at touch " << touch;
    const NodeId fork = g.corresponding_fork_of(touch);
    if (fork == core::kInvalidNode) continue;  // future thread is main
    // (b) holds when the future parent is the future thread's last node
    // (always, in single-touch computations).
    const NodeId right = g.fork_right_child(fork);
    EXPECT_EQ(r.position[right], r.position[fparent] + 1)
        << "Lemma 4(b) violated at touch " << touch;
  }
}

class Lemma4Property : public ::testing::TestWithParam<int> {};

TEST_P(Lemma4Property, HoldsOnRandomSingleTouchDags) {
  graphs::RandomDagParams p;
  p.seed = static_cast<std::uint64_t>(GetParam());
  p.target_nodes = 400;
  const auto gen = graphs::random_single_touch(p);
  ASSERT_TRUE(core::classify(gen.graph).single_touch);
  const auto r = run_seq(gen.graph, ForkPolicy::FutureFirst);
  expect_lemma4(gen.graph, r);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma4Property, ::testing::Range(1, 41));

TEST(Lemma4, HoldsOnPaperConstructions) {
  for (const char* name : {"fig4", "fig5a", "fig5b", "fig6a", "fig6b",
                           "fig7a", "forkjoin", "fib", "future-chain"}) {
    graphs::RegistryParams p;
    p.size = 4;
    p.size2 = 3;
    const auto gen = graphs::make_named(name, p);
    const auto r = run_seq(gen.graph, ForkPolicy::FutureFirst);
    expect_lemma4(gen.graph, r);
  }
}

// ---------------------------------------------------------------------------
// Lemma 11: local-touch analogue — future parents before local parents, and
// the fork's right child immediately follows the future thread's *last*
// node.
// ---------------------------------------------------------------------------

void expect_lemma11(const Graph& g, const SeqResult& r) {
  for (NodeId touch : g.touch_nodes()) {
    const NodeId fparent = g.future_parent_of(touch);
    const NodeId lparent = g.local_parent_of(touch);
    EXPECT_LT(r.position[fparent], r.position[lparent])
        << "Lemma 11 order violated at touch " << touch;
  }
  for (core::ThreadId t = 1; t < g.num_threads(); ++t) {
    const auto& info = g.thread_info(t);
    const NodeId right = g.fork_right_child(info.fork_node);
    EXPECT_EQ(r.position[right], r.position[info.last_node] + 1)
        << "right child of fork of thread " << t
        << " does not follow the thread's last node";
  }
}

class Lemma11Property : public ::testing::TestWithParam<int> {};

TEST_P(Lemma11Property, HoldsOnRandomLocalTouchDags) {
  graphs::RandomDagParams p;
  p.seed = static_cast<std::uint64_t>(GetParam());
  p.target_nodes = 400;
  const auto gen = graphs::random_local_touch(p);
  ASSERT_TRUE(core::classify(gen.graph).local_touch);
  const auto r = run_seq(gen.graph, ForkPolicy::FutureFirst);
  expect_lemma11(gen.graph, r);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma11Property, ::testing::Range(1, 41));

TEST(Lemma11, HoldsOnPipelines) {
  for (std::uint32_t stages : {1u, 2u, 4u}) {
    for (std::uint32_t items : {1u, 3u, 5u}) {
      const auto gen = graphs::pipeline(stages, items, 0);
      const auto r = run_seq(gen.graph, ForkPolicy::FutureFirst);
      expect_lemma11(gen.graph, r);
    }
  }
}

}  // namespace
}  // namespace wsf
