// Structural checks of the generators: closed-form sizes, roles, spans.
#include <gtest/gtest.h>

#include "core/traversal.hpp"
#include "graphs/generators.hpp"
#include "graphs/registry.hpp"
#include "support/check.hpp"

namespace wsf {
namespace {

using core::compute_stats;

TEST(Generators, SerialChainSizes) {
  for (std::size_t len : {1u, 2u, 10u, 100u}) {
    const auto g = graphs::serial_chain(len);
    EXPECT_EQ(g.graph.num_nodes(), len);
    EXPECT_EQ(core::span(g.graph), len);
    EXPECT_EQ(g.graph.num_threads(), 1u);
  }
}

TEST(Generators, ForkJoinTreeClosedForm) {
  for (std::uint32_t depth : {0u, 1u, 2u, 3u, 4u}) {
    const auto g = graphs::binary_forkjoin_tree(depth, 1);
    const auto s = compute_stats(g.graph);
    // 2^depth leaves; internal nodes contribute one fork + one touch each.
    EXPECT_EQ(s.forks, (1u << depth) - 1) << "depth " << depth;
    EXPECT_EQ(s.touches, (1u << depth) - 1) << "depth " << depth;
    EXPECT_EQ(s.threads, 1u << depth) << "depth " << depth;
  }
}

TEST(Generators, FibThreadCountMatchesRecursion) {
  // Threads = number of spawns = fib-tree internal nodes with n >= 2.
  const auto g = graphs::fib_dag(6);
  const auto s = compute_stats(g.graph);
  EXPECT_EQ(s.forks, s.touches);
  EXPECT_EQ(s.threads, s.forks + 1);
}

TEST(Generators, FutureChainSizes) {
  const std::uint32_t m = 5;
  const std::size_t C = 4;
  const auto g = graphs::future_chain(m, 1, C);
  const auto s = compute_stats(g.graph);
  EXPECT_EQ(s.forks, m);
  EXPECT_EQ(s.touches, m);
  EXPECT_EQ(s.threads, m + 1u);
  // Blocks: 1..C plus the poison block C+1.
  EXPECT_EQ(s.distinct_blocks, C + 1);
  // Span grows like m*C: the chain t_1 → x_1 → rest_2 → x_2 → …
  EXPECT_GE(s.span, m * C);
  // Roles present for the schedule scripts.
  EXPECT_NE(g.graph.node_by_role("f[1]"), core::kInvalidNode);
  EXPECT_NE(g.graph.node_by_role("g"), core::kInvalidNode);
  EXPECT_NE(g.graph.node_by_role("x[5]"), core::kInvalidNode);
}

TEST(Generators, FutureChainBlockFree) {
  const auto g = graphs::future_chain(4, 3, 0);
  EXPECT_EQ(compute_stats(g.graph).distinct_blocks, 0u);
}

TEST(Generators, PipelineSizes) {
  const std::uint32_t S = 3, M = 4;
  const auto g = graphs::pipeline(S, M, 0);
  const auto s = compute_stats(g.graph);
  EXPECT_EQ(s.threads, S + 1u);
  EXPECT_EQ(s.forks, S);
  // Every stage's M items are touched once by its consumer.
  EXPECT_EQ(s.touches, S * M);
}

TEST(Generators, Fig7aSizes) {
  const std::uint32_t n = 6;
  const std::size_t C = 4;
  const auto g = graphs::fig7a(n, C);
  const auto s = compute_stats(g.graph);
  EXPECT_EQ(s.forks, n + 1u);     // u_t plus x_1..x_n
  EXPECT_EQ(s.touches, n + 1u);   // v plus y_1..y_n
  EXPECT_EQ(s.distinct_blocks, C + 1);
  EXPECT_NE(g.graph.node_by_role("s"), core::kInvalidNode);
  EXPECT_NE(g.graph.node_by_role("v"), core::kInvalidNode);
}

TEST(Generators, Fig7bRoundsKUpToEven) {
  const auto g = graphs::fig7b(3, 4, 2);
  EXPECT_NE(g.graph.node_by_role("u[3]"), core::kInvalidNode);
  EXPECT_EQ(g.graph.node_by_role("u[4]"), core::kInvalidNode);
}

TEST(Generators, Fig8TouchCountGrowsGeometrically) {
  const auto d1 = compute_stats(graphs::fig8(1, 4, 2).graph);
  const auto d3 = compute_stats(graphs::fig8(3, 4, 2).graph);
  EXPECT_GT(d3.touches, 3 * d1.touches);
  EXPECT_GT(d3.threads, 3 * d1.threads);
}

TEST(Generators, Fig6bComposesGadgets) {
  const std::uint32_t k = 3, m = 4;
  const auto g = graphs::fig6b(k, m, 0);
  const auto s = compute_stats(g.graph);
  EXPECT_EQ(s.threads, 1u + k * (m + 1u));  // spine + k gadgets
  EXPECT_NE(g.graph.node_by_role("sg[2].f[1]"), core::kInvalidNode);
  EXPECT_NE(g.graph.node_by_role("sg[3].g"), core::kInvalidNode);
  EXPECT_NE(g.graph.node_by_role("q[3]"), core::kInvalidNode);
}

TEST(Generators, Fig6cGroupsMultiplyThreads) {
  const auto one = compute_stats(graphs::fig6c(1, 2, 3, 0).graph);
  const auto four = compute_stats(graphs::fig6c(4, 2, 3, 0).graph);
  EXPECT_GE(four.threads, 4 * one.threads - 4);
}

TEST(Generators, RandomSingleTouchRespectsTargetSize) {
  graphs::RandomDagParams p;
  p.seed = 3;
  p.target_nodes = 500;
  const auto g = graphs::random_single_touch(p);
  EXPECT_GT(g.graph.num_nodes(), 50u);
  EXPECT_LT(g.graph.num_nodes(), 5000u);
  EXPECT_GT(g.graph.num_threads(), 2u);
}

TEST(Generators, RandomDagsDifferBySeed) {
  graphs::RandomDagParams a, b;
  a.seed = 1;
  b.seed = 2;
  EXPECT_NE(graphs::random_single_touch(a).graph.num_nodes(),
            graphs::random_single_touch(b).graph.num_nodes());
}

TEST(Generators, RandomDagsStableForSeed) {
  graphs::RandomDagParams p;
  p.seed = 42;
  const auto a = graphs::random_single_touch(p);
  const auto b = graphs::random_single_touch(p);
  EXPECT_EQ(a.graph.num_nodes(), b.graph.num_nodes());
  EXPECT_EQ(a.graph.num_threads(), b.graph.num_threads());
}

TEST(Generators, RegistryRejectsUnknown) {
  EXPECT_THROW(graphs::make_named("nope", {}), CheckError);
}

TEST(Generators, RegistryNamesAllWork) {
  for (const auto& name : graphs::registry_names()) {
    graphs::RegistryParams p;
    p.size = 3;
    p.size2 = 2;
    EXPECT_NO_THROW((void)graphs::make_named(name, p)) << name;
  }
}

}  // namespace
}  // namespace wsf
