// Work-stealing simulator behaviour: determinism, work conservation, steal
// accounting, controllers, premature-touch detection (Figure 3 vs Figure 4).
#include <gtest/gtest.h>

#include "support/check.hpp"

#include "core/classify.hpp"
#include "graphs/generators.hpp"
#include "graphs/registry.hpp"
#include "sched/harness.hpp"
#include "sched/simulator.hpp"

namespace wsf {
namespace {

using core::ForkPolicy;
using sched::ScriptController;
using sched::SimOptions;
using sched::SimResult;

void expect_complete(const core::Graph& g, const SimResult& r) {
  std::vector<char> seen(g.num_nodes(), 0);
  std::size_t total = 0;
  for (const auto& order : r.proc_orders) {
    for (core::NodeId v : order) {
      ASSERT_LT(v, g.num_nodes());
      EXPECT_FALSE(seen[v]) << "node " << v << " executed twice";
      seen[v] = 1;
      ++total;
    }
  }
  EXPECT_EQ(total, g.num_nodes());
  EXPECT_EQ(r.global_order.size(), g.num_nodes());
}

TEST(Simulator, ExecutesEveryNodeOnceAcrossProcs) {
  for (const auto& name : graphs::registry_names()) {
    graphs::RegistryParams p;
    p.size = 5;
    p.size2 = 3;
    const auto gen = graphs::make_named(name, p);
    SimOptions opts;
    opts.procs = 4;
    opts.seed = 11;
    opts.stall_prob = 0.2;
    const auto r = sched::simulate(gen.graph, opts);
    expect_complete(gen.graph, r);
  }
}

TEST(Simulator, ResetReproducesFreshConstruction) {
  const auto gen =
      graphs::make_named("fig6a", {.size = 5, .size2 = 3, .cache_lines = 4});
  SimOptions opts;
  opts.procs = 4;
  opts.cache_lines = 4;
  opts.stall_prob = 0.3;
  opts.seed = 3;
  // One reused simulator, reset per seed, must match a fresh construction
  // per seed bit for bit — run_replicates depends on this equivalence.
  sched::Simulator reused(gen.graph, opts);
  for (std::uint64_t seed = 3; seed < 8; ++seed) {
    if (seed != 3) reused.reset(seed);
    const SimResult warm = reused.run();
    opts.seed = seed;
    const SimResult fresh = sched::simulate(gen.graph, opts);
    EXPECT_EQ(warm.global_order, fresh.global_order);
    EXPECT_EQ(warm.proc_orders, fresh.proc_orders);
    EXPECT_EQ(warm.stolen_nodes, fresh.stolen_nodes);
    EXPECT_EQ(warm.steals, fresh.steals);
    EXPECT_EQ(warm.steal_attempts, fresh.steal_attempts);
    EXPECT_EQ(warm.failed_steals, fresh.failed_steals);
    EXPECT_EQ(warm.declined_steals, fresh.declined_steals);
    EXPECT_EQ(warm.idle_steps, fresh.idle_steps);
    EXPECT_EQ(warm.steps, fresh.steps);
    EXPECT_EQ(warm.misses_per_proc, fresh.misses_per_proc);
    EXPECT_EQ(warm.premature_touches, fresh.premature_touches);
  }
}

TEST(Simulator, ResetRequiresOwnedController) {
  const auto gen = graphs::fib_dag(6);
  SimOptions opts;
  opts.procs = 2;
  ScriptController script;
  sched::Simulator sim(gen.graph, opts, &script);
  // An external controller carries schedule state the simulator cannot
  // rewind, so reset must refuse rather than silently desynchronize.
  EXPECT_THROW(sim.reset(5), CheckError);
}

TEST(Simulator, DeterministicForSeed) {
  const auto gen = graphs::fib_dag(10);
  SimOptions opts;
  opts.procs = 4;
  opts.seed = 99;
  opts.stall_prob = 0.3;
  const auto a = sched::simulate(gen.graph, opts);
  const auto b = sched::simulate(gen.graph, opts);
  EXPECT_EQ(a.global_order, b.global_order);
  EXPECT_EQ(a.steals, b.steals);
  EXPECT_EQ(a.proc_orders, b.proc_orders);
}

TEST(Simulator, DifferentSeedsUsuallyDiffer) {
  const auto gen = graphs::fib_dag(10);
  SimOptions opts;
  opts.procs = 4;
  opts.stall_prob = 0.3;
  opts.seed = 1;
  const auto a = sched::simulate(gen.graph, opts);
  opts.seed = 2;
  const auto b = sched::simulate(gen.graph, opts);
  EXPECT_NE(a.global_order, b.global_order);
}

TEST(Simulator, StealAccountingConsistent) {
  const auto gen = graphs::binary_forkjoin_tree(6, 2);
  SimOptions opts;
  opts.procs = 8;
  opts.seed = 3;
  const auto r = sched::simulate(gen.graph, opts);
  EXPECT_EQ(r.steal_attempts, r.steals + r.failed_steals);
  EXPECT_GT(r.steals, 0u) << "8 procs on a tree should steal";
}

TEST(Simulator, RunTwiceRejected) {
  const auto gen = graphs::serial_chain(4);
  SimOptions opts;
  sched::Simulator sim(gen.graph, opts);
  (void)sim.run();
  EXPECT_THROW(sim.run(), CheckError);
}

TEST(Simulator, CacheMissesMatchSequentialWhenSerial) {
  const auto gen = graphs::fig6a(4, 4);
  SimOptions opts;
  opts.procs = 1;
  opts.cache_lines = 4;
  const auto seq = sched::run_sequential(gen.graph, opts);
  const auto par = sched::simulate(gen.graph, opts);
  EXPECT_EQ(par.total_misses(), seq.misses);
}

TEST(Simulator, MoreProcsStillComplete) {
  const auto gen = graphs::pipeline(3, 5, 0);
  for (std::uint32_t procs : {1u, 2u, 5u, 16u}) {
    SimOptions opts;
    opts.procs = procs;
    opts.seed = procs;
    const auto r = sched::simulate(gen.graph, opts);
    expect_complete(gen.graph, r);
  }
}

TEST(Simulator, TouchEnablePolicyChangesOrderOnPipelines) {
  // Under parent-first the consumer reaches its first touch before the
  // producer runs, so a producer node enables its continuation and the
  // waiting touch simultaneously — the case TouchEnable decides.
  const auto gen = graphs::pipeline(2, 4, 0);
  SimOptions a;
  a.policy = ForkPolicy::ParentFirst;
  a.touch_enable = sched::TouchEnable::TouchFirst;
  SimOptions b;
  b.policy = ForkPolicy::ParentFirst;
  b.touch_enable = sched::TouchEnable::ContinuationFirst;
  const auto ra = sched::run_sequential(gen.graph, a);
  const auto rb = sched::run_sequential(gen.graph, b);
  EXPECT_NE(ra.order, rb.order);
}

// ---------------------------------------------------------------------------
// Premature touches (Figure 3 vs Figure 4)
// ---------------------------------------------------------------------------

TEST(PrematureTouch, Fig3StolenConsumerChecksEarly) {
  const auto gen = graphs::fig3(8);
  SimOptions opts;
  opts.procs = 2;
  opts.policy = ForkPolicy::FutureFirst;
  ScriptController ctrl;
  ctrl.sleep_after("x", 1).prefer_victim(1, {0});
  const auto r = sched::simulate(gen.graph, opts, &ctrl);
  EXPECT_GT(r.premature_touches, 0u)
      << "the stolen consumer must check v1 before u1 spawns its future";
}

TEST(PrematureTouch, StructuredComputationsNeverCheckEarly) {
  for (const char* name : {"fig4", "fig5a", "fig5b", "fig6a", "fig6b",
                           "fig7a", "fig7b", "fig8", "forkjoin", "fib",
                           "pipeline", "future-chain"}) {
    graphs::RegistryParams p;
    p.size = 4;
    p.size2 = 3;
    const auto gen = graphs::make_named(name, p);
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      SimOptions opts;
      opts.procs = 4;
      opts.seed = seed;
      opts.stall_prob = 0.25;
      const auto r = sched::simulate(gen.graph, opts);
      EXPECT_EQ(r.premature_touches, 0u) << name << " seed " << seed;
    }
  }
}

class RandomStructuredNoPremature : public ::testing::TestWithParam<int> {};

TEST_P(RandomStructuredNoPremature, Holds) {
  graphs::RandomDagParams p;
  p.seed = static_cast<std::uint64_t>(GetParam());
  p.target_nodes = 300;
  const auto gen = graphs::random_single_touch(p);
  SimOptions opts;
  opts.procs = 4;
  opts.seed = p.seed * 31 + 1;
  opts.stall_prob = 0.3;
  const auto r = sched::simulate(gen.graph, opts);
  EXPECT_EQ(r.premature_touches, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomStructuredNoPremature,
                         ::testing::Range(1, 21));

// ---------------------------------------------------------------------------
// Round / steal accounting (regression tests for the counter semantics:
// every counted round is a full round, and declined steal attempts are
// separate from both sleep and real ABP attempts)
// ---------------------------------------------------------------------------

TEST(Accounting, SerialChainTakesExactlyOneRoundPerNode) {
  const std::size_t length = 5;
  const auto gen = graphs::serial_chain(length);
  SimOptions opts;
  opts.procs = 1;
  const auto r = sched::simulate(gen.graph, opts);
  EXPECT_EQ(r.steps, length);
  EXPECT_EQ(r.idle_steps, 0u);
  EXPECT_EQ(r.declined_steals, 0u);
  EXPECT_EQ(r.steal_attempts, 0u);
}

TEST(Accounting, TrailingProcessorsActInTheFinalRound) {
  // 3 processors on a serial chain: p0 executes one node per round while p1
  // and p2 each burn their turn on a declined steal attempt (ScriptController
  // declines when every other deque is empty) — in EVERY round, including
  // the final one. steps × (procs - 1) workless turns must all be counted.
  const std::size_t length = 5;
  const auto gen = graphs::serial_chain(length);
  SimOptions opts;
  opts.procs = 3;
  ScriptController ctrl;
  const auto r = sched::simulate(gen.graph, opts, &ctrl);
  EXPECT_EQ(r.steps, length);
  EXPECT_EQ(r.declined_steals, 2 * length);
  EXPECT_EQ(r.idle_steps, 0u);
  EXPECT_EQ(r.steal_attempts, 0u);
  EXPECT_EQ(r.failed_steals, 0u);
}

TEST(Accounting, AsleepRoundsCountAsIdleIncludingTheFinalRound) {
  const std::size_t length = 7;
  const auto gen = graphs::serial_chain(length);
  SimOptions opts;
  opts.procs = 2;
  ScriptController ctrl;
  ctrl.sleep_now(1);
  const auto r = sched::simulate(gen.graph, opts, &ctrl);
  EXPECT_EQ(r.steps, length);
  EXPECT_EQ(r.idle_steps, length);
  EXPECT_EQ(r.declined_steals, 0u);
}

TEST(Accounting, UniformVictimAttemptsOnEmptyDequesAreFailedSteals) {
  // Faithful ABP accounting: with steal_nonempty_only = false the random
  // controller always picks a real victim, so p1's workless turns are
  // steal *attempts* that fail, not declined rounds.
  const std::size_t length = 6;
  const auto gen = graphs::serial_chain(length);
  SimOptions opts;
  opts.procs = 2;
  opts.steal_nonempty_only = false;
  const auto r = sched::simulate(gen.graph, opts);
  EXPECT_EQ(r.steps, length);
  EXPECT_EQ(r.steal_attempts, length);
  EXPECT_EQ(r.failed_steals, length);
  EXPECT_EQ(r.steals, 0u);
  EXPECT_EQ(r.declined_steals, 0u);
  EXPECT_EQ(r.idle_steps, 0u);
}

TEST(Accounting, ProcessorRoundGridIsConsistent) {
  // Over any run, each processor takes exactly one action per round:
  // executions + pops-that-execute + steal attempts + declines + asleep
  // rounds == steps × procs. Executions and pops both end in execute(), so
  // nodes + attempts + declines + idle == steps × procs exactly.
  const auto gen = graphs::binary_forkjoin_tree(6, 2);
  for (const double stall : {0.0, 0.3}) {
    SimOptions opts;
    opts.procs = 8;
    opts.seed = 5;
    opts.stall_prob = stall;
    const auto r = sched::simulate(gen.graph, opts);
    EXPECT_EQ(gen.graph.num_nodes() + r.steal_attempts + r.declined_steals +
                  r.idle_steps,
              r.steps * opts.procs)
        << "stall=" << stall;
  }
}

TEST(Accounting, BitIdenticalResultForSameSeed) {
  const auto gen = graphs::make_named("fig6b", {.size = 3, .size2 = 4,
                                                .cache_lines = 4});
  SimOptions opts;
  opts.procs = 4;
  opts.seed = 1234;
  opts.stall_prob = 0.25;
  opts.cache_lines = 4;
  const auto a = sched::simulate(gen.graph, opts);
  const auto b = sched::simulate(gen.graph, opts);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.steals, b.steals);
  EXPECT_EQ(a.steal_attempts, b.steal_attempts);
  EXPECT_EQ(a.failed_steals, b.failed_steals);
  EXPECT_EQ(a.declined_steals, b.declined_steals);
  EXPECT_EQ(a.idle_steps, b.idle_steps);
  EXPECT_EQ(a.premature_touches, b.premature_touches);
  EXPECT_EQ(a.global_order, b.global_order);
  EXPECT_EQ(a.proc_orders, b.proc_orders);
  EXPECT_EQ(a.executed_by, b.executed_by);
  EXPECT_EQ(a.stolen_nodes, b.stolen_nodes);
  EXPECT_EQ(a.misses_per_proc, b.misses_per_proc);
}

TEST(Accounting, TraceRecordingOffKeepsCountersAndSkipsTraces) {
  const auto gen = graphs::fib_dag(12);
  SimOptions opts;
  opts.procs = 4;
  opts.seed = 77;
  opts.stall_prob = 0.2;
  const auto with = sched::simulate(gen.graph, opts);
  opts.record_trace = false;
  const auto without = sched::simulate(gen.graph, opts);

  EXPECT_TRUE(without.proc_orders.empty());
  EXPECT_TRUE(without.global_order.empty());
  EXPECT_TRUE(without.executed_by.empty());
  EXPECT_TRUE(without.stolen_nodes.empty());

  // Recording must not perturb the schedule: every counter matches.
  EXPECT_EQ(without.steps, with.steps);
  EXPECT_EQ(without.steals, with.steals);
  EXPECT_EQ(without.steal_attempts, with.steal_attempts);
  EXPECT_EQ(without.failed_steals, with.failed_steals);
  EXPECT_EQ(without.declined_steals, with.declined_steals);
  EXPECT_EQ(without.idle_steps, with.idle_steps);
  EXPECT_EQ(without.misses_per_proc, with.misses_per_proc);
}

// ---------------------------------------------------------------------------
// ScriptController behaviour
// ---------------------------------------------------------------------------

TEST(ScriptController, UnknownRoleRejected) {
  const auto gen = graphs::serial_chain(4);
  SimOptions opts;
  opts.procs = 2;
  ScriptController ctrl;
  ctrl.sleep_after("no-such-role", 1);
  EXPECT_THROW(sched::simulate(gen.graph, opts, &ctrl), CheckError);
}

TEST(ScriptController, SleepNowKeepsProcessorIdle) {
  const auto gen = graphs::binary_forkjoin_tree(4, 1);
  SimOptions opts;
  opts.procs = 2;
  ScriptController ctrl;
  ctrl.sleep_now(1);
  const auto r = sched::simulate(gen.graph, opts, &ctrl);
  EXPECT_TRUE(r.proc_orders[1].empty());
  EXPECT_EQ(r.proc_orders[0].size(), gen.graph.num_nodes());
}

TEST(ScriptController, VictimPreferenceHonored) {
  const auto gen = graphs::binary_forkjoin_tree(5, 2);
  SimOptions opts;
  opts.procs = 3;
  ScriptController ctrl;
  ctrl.prefer_victim(1, {0}).prefer_victim(2, {0});
  const auto r = sched::simulate(gen.graph, opts, &ctrl);
  EXPECT_GT(r.steals, 0u);
}

}  // namespace
}  // namespace wsf
