// Classification (Definitions 1, 2, 3, 13, 17) against every generator's
// declared expectation — the central static cross-check of the repo.
#include <gtest/gtest.h>

#include "core/classify.hpp"
#include "graphs/generators.hpp"
#include "graphs/registry.hpp"

namespace wsf {
namespace {

using core::StructureReport;
using graphs::GeneratedDag;

void expect_matches(const GeneratedDag& d) {
  const StructureReport r = core::classify(d.graph);
  auto check = [&](int expected, bool actual, const char* what) {
    if (expected < 0) return;
    EXPECT_EQ(static_cast<bool>(expected), actual)
        << d.name << ": " << what << " mismatch; violations:\n"
        << [&] {
             std::string s;
             for (const auto& v : r.violations) s += "  " + v + "\n";
             return s;
           }();
  };
  check(d.expect.structured, r.structured, "structured");
  check(d.expect.single_touch, r.single_touch, "single_touch");
  check(d.expect.local_touch, r.local_touch, "local_touch");
  check(d.expect.fork_join, r.fork_join, "fork_join");
  check(d.expect.single_touch_super, r.single_touch_super,
        "single_touch_super");
  check(d.expect.local_touch_super, r.local_touch_super,
        "local_touch_super");
}

TEST(Classify, SerialChain) { expect_matches(graphs::serial_chain(5)); }

TEST(Classify, ForkJoinTree) {
  expect_matches(graphs::binary_forkjoin_tree(3, 2));
}

TEST(Classify, FibDag) { expect_matches(graphs::fib_dag(8)); }

TEST(Classify, FutureChainVariants) {
  expect_matches(graphs::future_chain(1, 2, 0));
  expect_matches(graphs::future_chain(2, 2, 0));
  expect_matches(graphs::future_chain(6, 1, 4));
}

TEST(Classify, Pipeline) {
  expect_matches(graphs::pipeline(1, 1, 0));
  expect_matches(graphs::pipeline(2, 3, 0));
  expect_matches(graphs::pipeline(3, 4, 2));
}

TEST(Classify, Fig3Unstructured) { expect_matches(graphs::fig3(4)); }

TEST(Classify, Fig4BothOrders) {
  expect_matches(graphs::fig4(2, true));
  expect_matches(graphs::fig4(2, false));
}

TEST(Classify, Fig5aOrders) {
  expect_matches(graphs::fig5a({0}));
  expect_matches(graphs::fig5a({1, 0}));       // LIFO → fork-join
  expect_matches(graphs::fig5a({0, 1}));       // FIFO → not fork-join
  expect_matches(graphs::fig5a({2, 0, 1}));    // priority order
}

TEST(Classify, Fig5b) { expect_matches(graphs::fig5b(3)); }

TEST(Classify, Fig6Family) {
  expect_matches(graphs::fig6a(4, 3));
  expect_matches(graphs::fig6b(3, 3, 0));
  expect_matches(graphs::fig6c(2, 2, 3, 0));
}

TEST(Classify, Fig7Family) {
  expect_matches(graphs::fig7a(5, 3));
  expect_matches(graphs::fig7b(4, 5, 3));
}

TEST(Classify, Fig8) { expect_matches(graphs::fig8(2, 4, 2)); }

class RandomSingleTouchClassify : public ::testing::TestWithParam<int> {};

TEST_P(RandomSingleTouchClassify, AlwaysSingleTouch) {
  graphs::RandomDagParams p;
  p.seed = static_cast<std::uint64_t>(GetParam());
  p.target_nodes = 300;
  expect_matches(graphs::random_single_touch(p));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSingleTouchClassify,
                         ::testing::Range(1, 26));

class RandomSingleTouchSuperClassify : public ::testing::TestWithParam<int> {
};

TEST_P(RandomSingleTouchSuperClassify, AlwaysDef13) {
  graphs::RandomDagParams p;
  p.seed = static_cast<std::uint64_t>(GetParam());
  p.target_nodes = 300;
  p.side_effect_prob = 0.3;
  const auto d = graphs::random_single_touch(p);
  expect_matches(d);
  const auto r = core::classify(d.graph);
  EXPECT_TRUE(r.single_touch_super);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSingleTouchSuperClassify,
                         ::testing::Range(1, 16));

class RandomLocalTouchClassify : public ::testing::TestWithParam<int> {};

TEST_P(RandomLocalTouchClassify, AlwaysLocalTouch) {
  graphs::RandomDagParams p;
  p.seed = static_cast<std::uint64_t>(GetParam());
  p.target_nodes = 300;
  expect_matches(graphs::random_local_touch(p));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomLocalTouchClassify,
                         ::testing::Range(1, 26));

TEST(Classify, LifoRandomSingleTouchIsForkJoinFreeOfPassing) {
  graphs::RandomDagParams p;
  p.seed = 7;
  p.target_nodes = 200;
  p.shuffle_touch_order = false;
  p.pass_prob = 0.0;
  const auto d = graphs::random_single_touch(p);
  const auto r = core::classify(d.graph);
  // LIFO touches without passing are exactly fork-join computations.
  EXPECT_TRUE(r.fork_join) << "seed 7 should yield a fork-join DAG";
  EXPECT_TRUE(r.single_touch);
  EXPECT_TRUE(r.local_touch);
}

TEST(Classify, RegistryAllNamesProduceValidGraphs) {
  for (const auto& name : graphs::registry_names()) {
    graphs::RegistryParams p;
    p.size = 4;
    p.size2 = 3;
    p.cache_lines = 2;
    const auto d = graphs::make_named(name, p);
    EXPECT_GT(d.graph.num_nodes(), 0u) << name;
    expect_matches(d);
  }
}

}  // namespace
}  // namespace wsf
