// Chase–Lev deque: sequential semantics plus owner/thief stress tests.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "runtime/chase_lev.hpp"

namespace wsf::runtime {
namespace {

using IntPtr = int*;

TEST(ChaseLev, LifoForOwner) {
  ChaseLevDeque<IntPtr> d;
  int a = 1, b = 2, c = 3;
  d.push_bottom(&a);
  d.push_bottom(&b);
  d.push_bottom(&c);
  EXPECT_EQ(d.pop_bottom(), &c);
  EXPECT_EQ(d.pop_bottom(), &b);
  EXPECT_EQ(d.pop_bottom(), &a);
  EXPECT_EQ(d.pop_bottom(), nullptr);
}

TEST(ChaseLev, FifoForThief) {
  ChaseLevDeque<IntPtr> d;
  int a = 1, b = 2, c = 3;
  d.push_bottom(&a);
  d.push_bottom(&b);
  d.push_bottom(&c);
  EXPECT_EQ(d.steal_top(), &a);
  EXPECT_EQ(d.steal_top(), &b);
  EXPECT_EQ(d.steal_top(), &c);
  EXPECT_EQ(d.steal_top(), nullptr);
}

TEST(ChaseLev, MixedEnds) {
  ChaseLevDeque<IntPtr> d;
  int v[4] = {0, 1, 2, 3};
  for (int& x : v) d.push_bottom(&x);
  EXPECT_EQ(d.steal_top(), &v[0]);
  EXPECT_EQ(d.pop_bottom(), &v[3]);
  EXPECT_EQ(d.steal_top(), &v[1]);
  EXPECT_EQ(d.pop_bottom(), &v[2]);
  EXPECT_EQ(d.pop_bottom(), nullptr);
  EXPECT_EQ(d.steal_top(), nullptr);
}

TEST(ChaseLev, GrowsPastInitialCapacity) {
  ChaseLevDeque<IntPtr> d(8);
  std::vector<int> vals(1000);
  for (int i = 0; i < 1000; ++i) d.push_bottom(&vals[i]);
  EXPECT_EQ(d.size_estimate(), 1000u);
  for (int i = 999; i >= 0; --i) EXPECT_EQ(d.pop_bottom(), &vals[i]);
}

TEST(ChaseLev, StressOwnerVsThieves) {
  // Owner pushes N items and pops; T thieves steal concurrently. Every item
  // must be extracted exactly once (checked by an atomic take-count per
  // item) and none lost.
  constexpr int kItems = 20000;
  constexpr int kThieves = 3;
  ChaseLevDeque<IntPtr> d;
  std::vector<int> vals(kItems);
  std::vector<std::atomic<int>> taken(kItems);
  for (auto& t : taken) t.store(0);
  for (int i = 0; i < kItems; ++i) vals[i] = i;

  std::atomic<bool> done{false};
  std::atomic<int> extracted{0};

  auto thief = [&] {
    while (!done.load(std::memory_order_acquire) ||
           d.size_estimate() > 0) {
      if (IntPtr p = d.steal_top()) {
        taken[*p].fetch_add(1);
        extracted.fetch_add(1);
      }
    }
  };
  std::vector<std::thread> thieves;
  for (int t = 0; t < kThieves; ++t) thieves.emplace_back(thief);

  // Owner: interleave pushes and pops.
  for (int i = 0; i < kItems; ++i) {
    d.push_bottom(&vals[i]);
    if (i % 3 == 0) {
      if (IntPtr p = d.pop_bottom()) {
        taken[*p].fetch_add(1);
        extracted.fetch_add(1);
      }
    }
  }
  while (IntPtr p = d.pop_bottom()) {
    taken[*p].fetch_add(1);
    extracted.fetch_add(1);
  }
  done.store(true, std::memory_order_release);
  for (auto& t : thieves) t.join();
  // Drain any residue (thieves may have exited between pops).
  while (IntPtr p = d.steal_top()) {
    taken[*p].fetch_add(1);
    extracted.fetch_add(1);
  }

  EXPECT_EQ(extracted.load(), kItems);
  for (int i = 0; i < kItems; ++i)
    ASSERT_EQ(taken[i].load(), 1) << "item " << i;
}

TEST(ChaseLev, StealBatchSequential) {
  ChaseLevDeque<IntPtr> d;
  int v[5] = {0, 1, 2, 3, 4};
  for (int& x : v) d.push_bottom(&x);
  // Half of 5 rounded up = 3, oldest-first; the bound caps the claim.
  std::vector<IntPtr> out;
  EXPECT_EQ(d.steal_batch(out, 16), 3u);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], &v[0]);
  EXPECT_EQ(out[1], &v[1]);
  EXPECT_EQ(out[2], &v[2]);
  out.clear();
  EXPECT_EQ(d.steal_batch(out, 1), 1u);  // max_n binds below half
  EXPECT_EQ(out[0], &v[3]);
  out.clear();
  EXPECT_EQ(d.steal_batch(out, 16), 1u);  // 1-element deque still yields 1
  EXPECT_EQ(out[0], &v[4]);
  out.clear();
  EXPECT_EQ(d.steal_batch(out, 16), 0u);  // empty
  EXPECT_TRUE(out.empty());
}

TEST(ChaseLev, StressOwnerVsBatchThieves) {
  // The steal-half version of StressOwnerVsThieves: the owner pushes and
  // free-pops at the bottom while thieves claim batches at the top. Every
  // item must be extracted exactly once — a batch claim that kept a stale
  // bottom would double-consume an owner-popped item — and the per-thief
  // claim tallies must sum to the extraction total (no item silently
  // dropped inside a batch).
  constexpr int kItems = 20000;
  constexpr int kThieves = 3;
  ChaseLevDeque<IntPtr> d;
  std::vector<int> vals(kItems);
  std::vector<std::atomic<int>> taken(kItems);
  for (auto& t : taken) t.store(0);
  for (int i = 0; i < kItems; ++i) vals[i] = i;

  std::atomic<bool> done{false};
  std::atomic<int> extracted{0};
  std::atomic<int> claimed_by_thieves{0};

  auto thief = [&] {
    std::vector<IntPtr> batch;
    int claimed = 0;
    while (!done.load(std::memory_order_acquire) ||
           d.size_estimate() > 0) {
      batch.clear();
      const std::size_t got = d.steal_batch(batch, 8);
      ASSERT_EQ(batch.size(), got);
      for (IntPtr p : batch) {
        taken[*p].fetch_add(1);
        extracted.fetch_add(1);
      }
      claimed += static_cast<int>(got);
    }
    claimed_by_thieves.fetch_add(claimed);
  };
  std::vector<std::thread> thieves;
  for (int t = 0; t < kThieves; ++t) thieves.emplace_back(thief);

  // Owner: interleave pushes and free-pops (the pops race the thieves'
  // batch claims — the hazard steal_batch must survive).
  int owner_took = 0;
  for (int i = 0; i < kItems; ++i) {
    d.push_bottom(&vals[i]);
    if (i % 3 == 0) {
      if (IntPtr p = d.pop_bottom()) {
        taken[*p].fetch_add(1);
        extracted.fetch_add(1);
        ++owner_took;
      }
    }
  }
  while (IntPtr p = d.pop_bottom()) {
    taken[*p].fetch_add(1);
    extracted.fetch_add(1);
    ++owner_took;
  }
  done.store(true, std::memory_order_release);
  for (auto& t : thieves) t.join();
  while (IntPtr p = d.steal_top()) {
    taken[*p].fetch_add(1);
    extracted.fetch_add(1);
    ++owner_took;
  }

  EXPECT_EQ(extracted.load(), kItems);
  // Sum-of-claims identity: every extraction was either an owner pop or
  // part of exactly one thief's batch tally.
  EXPECT_EQ(owner_took + claimed_by_thieves.load(), kItems);
  for (int i = 0; i < kItems; ++i)
    ASSERT_EQ(taken[i].load(), 1) << "item " << i;
}

TEST(ChaseLev, StressAllThieves) {
  // Everything is consumed by thieves only.
  constexpr int kItems = 8000;
  constexpr int kThieves = 4;
  ChaseLevDeque<IntPtr> d;
  std::vector<int> vals(kItems);
  std::vector<std::atomic<int>> taken(kItems);
  for (auto& t : taken) t.store(0);
  for (int i = 0; i < kItems; ++i) {
    vals[i] = i;
    d.push_bottom(&vals[i]);
  }
  std::atomic<int> extracted{0};
  auto thief = [&] {
    while (extracted.load(std::memory_order_acquire) < kItems) {
      if (IntPtr p = d.steal_top()) {
        taken[*p].fetch_add(1);
        extracted.fetch_add(1);
      }
    }
  };
  std::vector<std::thread> thieves;
  for (int t = 0; t < kThieves; ++t) thieves.emplace_back(thief);
  for (auto& t : thieves) t.join();
  for (int i = 0; i < kItems; ++i)
    ASSERT_EQ(taken[i].load(), 1) << "item " << i;
}

}  // namespace
}  // namespace wsf::runtime
