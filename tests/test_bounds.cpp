// Bound formula sanity (core/bounds.hpp) and cross-checks against the
// quantities the benches divide by.
#include <gtest/gtest.h>

#include "core/bounds.hpp"

namespace wsf::core {
namespace {

TEST(Bounds, AbpStealBound) {
  EXPECT_DOUBLE_EQ(abp_steal_bound(4, 100), 400.0);
  EXPECT_DOUBLE_EQ(abp_steal_bound(1, 1), 1.0);
}

TEST(Bounds, StructuredDeviationBoundQuadraticInSpan) {
  EXPECT_DOUBLE_EQ(structured_deviation_bound(2, 10), 200.0);
  EXPECT_DOUBLE_EQ(structured_deviation_bound(2, 20), 800.0);  // 4x
}

TEST(Bounds, MissBoundIsCTimesDeviationBound) {
  EXPECT_DOUBLE_EQ(structured_miss_bound(16, 2, 10),
                   16.0 * structured_deviation_bound(2, 10));
}

TEST(Bounds, ParentFirstBoundsLinearInTouchesAndSpan) {
  EXPECT_DOUBLE_EQ(parent_first_deviation_bound(5, 7), 35.0);
  EXPECT_DOUBLE_EQ(parent_first_miss_bound(3, 5, 7), 105.0);
}

TEST(Bounds, UnstructuredDominatesStructuredPerTouch) {
  // Ω(P·T∞ + t·T∞) with many touches exceeds the structured O(P·T∞²)
  // bound once t >> P·T∞ — the regime where discipline pays off.
  const double unstructured = unstructured_deviation_bound(2, 100000, 50);
  const double structured = structured_deviation_bound(2, 50);
  EXPECT_GT(unstructured, structured);
}

TEST(Bounds, MonotoneInEveryArgument) {
  EXPECT_LT(structured_deviation_bound(2, 10),
            structured_deviation_bound(3, 10));
  EXPECT_LT(structured_deviation_bound(2, 10),
            structured_deviation_bound(2, 11));
  EXPECT_LT(structured_miss_bound(4, 2, 10), structured_miss_bound(5, 2, 10));
  EXPECT_LT(parent_first_deviation_bound(4, 10),
            parent_first_deviation_bound(5, 10));
}

}  // namespace
}  // namespace wsf::core
