// Scheduler-as-a-service lifecycle: repeated and concurrent jobs on one
// long-lived Scheduler (per-job completion tracking), batched admission,
// abandoned-batch semantics, steady-state fiber-stack reuse across a 10k
// job stream, per-job counter snapshots, multi-tenant interleaving (two
// graphs replayed concurrently keep their standalone deviation counts),
// and the process-wide SharedScheduler registry. Runs under the tsan
// preset (label: runtime).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/deviation.hpp"
#include "core/policy.hpp"
#include "graphs/registry.hpp"
#include "runtime/pool.hpp"
#include "runtime/replay.hpp"
#include "sched/options.hpp"
#include "sched/sequential.hpp"
#include "support/check.hpp"
#include "support/thread_safety.hpp"

namespace wsf {
namespace {

using core::ForkPolicy;
using runtime::SpawnPolicy;
using sched::TouchEnable;

class ServiceBothPolicies
    : public ::testing::TestWithParam<SpawnPolicy> {};

INSTANTIATE_TEST_SUITE_P(Policies, ServiceBothPolicies,
                         ::testing::Values(SpawnPolicy::FutureFirst,
                                           SpawnPolicy::ParentFirst),
                         [](const auto& info) {
                           return info.param == SpawnPolicy::FutureFirst
                                      ? "FutureFirst"
                                      : "ParentFirst";
                         });

int tree_sum(int depth) {
  if (depth == 0) return 1;
  auto left = runtime::spawn([depth] { return tree_sum(depth - 1); });
  const int right = tree_sum(depth - 1);
  return left.touch() + right;
}

TEST_P(ServiceBothPolicies, RepeatedRunBackToBack) {
  // The regression the service rework guards: one Scheduler instance must
  // serve an arbitrary stream of run() jobs — the lifecycle (completion
  // tracking, fiber bookkeeping) fully resets between jobs.
  runtime::Scheduler sched({.workers = 2, .policy = GetParam()});
  for (int round = 0; round < 5; ++round) {
    const int sum = sched.run([] { return tree_sum(4); });
    EXPECT_EQ(sum, 1 << 4) << "round " << round;
  }
}

TEST_P(ServiceBothPolicies, ConcurrentJobsCompleteIndependently) {
  // A short job's run() must return while an unrelated long job is still
  // in flight. Under the old scheduler-global quiescence wait this
  // deadlocks: the short submitter waits for *all* outstanding tasks,
  // including the gated long job that is only released afterwards.
  runtime::Scheduler sched({.workers = 2, .policy = GetParam()});
  std::atomic<bool> release{false};
  auto long_job = sched.submit([&release] {
    while (!release.load(std::memory_order_acquire))
      std::this_thread::yield();
    return 42;
  });
  const int quick = sched.run([] { return tree_sum(3); });
  EXPECT_EQ(quick, 1 << 3);
  EXPECT_FALSE(long_job.done());
  release.store(true, std::memory_order_release);
  EXPECT_EQ(long_job.wait(), 42);
}

TEST_P(ServiceBothPolicies, BatchAdmitsAllJobsInOneOperation) {
  runtime::Scheduler sched({.workers = 2, .policy = GetParam()});
  std::vector<runtime::JobHandle<int>> handles;
  runtime::Batch batch(sched);
  for (int i = 0; i < 32; ++i)
    handles.push_back(batch.add([i] { return i * i + tree_sum(2) - 4; }));
  EXPECT_EQ(batch.size(), 32u);
  sched.submit(std::move(batch));
  for (int i = 0; i < 32; ++i) EXPECT_EQ(handles[i].wait(), i * i);
}

TEST_P(ServiceBothPolicies, AbandonedBatchMakesWaitThrow) {
  runtime::Scheduler sched({.workers = 1, .policy = GetParam()});
  runtime::JobHandle<int> handle;
  {
    runtime::Batch batch(sched);
    handle = batch.add([] { return 7; });
    // Batch destroyed without Scheduler::submit: the job never runs.
  }
  EXPECT_TRUE(handle.done());
  EXPECT_THROW(handle.wait(), CheckError);
}

TEST_P(ServiceBothPolicies, ExceptionPropagatesThroughHandle) {
  runtime::Scheduler sched({.workers = 2, .policy = GetParam()});
  auto handle = sched.submit(
      []() -> int { throw std::runtime_error("job failed"); });
  EXPECT_THROW(handle.wait(), std::runtime_error);
  // The scheduler stays healthy for the next job.
  EXPECT_EQ(sched.run([] { return tree_sum(3); }), 1 << 3);
}

TEST_P(ServiceBothPolicies, DrainWaitsForFireAndForgetJobs) {
  runtime::Scheduler sched({.workers = 2, .policy = GetParam()});
  std::atomic<int> effects{0};
  std::vector<runtime::JobHandle<void>> handles;
  for (int i = 0; i < 16; ++i)
    handles.push_back(sched.submit([&effects] {
      auto f = runtime::spawn(
          [&effects] { effects.fetch_add(1, std::memory_order_relaxed); });
      effects.fetch_add(1, std::memory_order_relaxed);
      (void)f;  // never touched: quiescence must still cover it
    }));
  sched.drain();
  EXPECT_EQ(effects.load(), 32);
  for (auto& h : handles) EXPECT_TRUE(h.done());
}

TEST_P(ServiceBothPolicies, TenThousandJobsReuseFiberStacksAtSteadyState) {
  // The fiber-return-path regression (stacks of migrated fibers used to
  // strand in their creating worker's live set until shutdown, so
  // sustained load grew stack memory unboundedly): across a 10k job
  // stream, the stack pool must cover steady state — zero fibers created
  // after warmup, every job running on recycled stacks.
  runtime::Scheduler sched(
      {.workers = 2, .policy = GetParam(), .stack_bytes = 64 * 1024});
  auto one_job = [&sched] {
    return sched.submit([] {
      auto a = runtime::spawn([] { return 1; });
      auto b = runtime::spawn([] { return 2; });
      return a.touch() + b.touch();
    });
  };
  constexpr int kWarmup = 500;
  constexpr int kJobs = 10000;
  for (int i = 0; i < kWarmup; ++i) EXPECT_EQ(one_job().wait(), 3);
  // Deterministic capacity floor on top of the warmed pool (the service's
  // prewarm API); demand variance beyond the warmup peak draws from this
  // slack instead of allocating.
  sched.prewarm(2 * sched.num_workers() + 8);
  const runtime::WorkerCounters before = sched.counters().total();
  for (int i = 0; i < kJobs; ++i) EXPECT_EQ(one_job().wait(), 3);
  const runtime::WorkerCounters after = sched.counters().total();
  const runtime::WorkerCounters delta =
      runtime::counters_since(after, before);
  EXPECT_EQ(delta.fibers_created, 0u)
      << "steady-state jobs allocated fiber stacks (pool not recycling)";
  // Every job's tasks ran on a recycled stack: ≥ 3 fibers per job.
  EXPECT_GE(delta.stacks_reused, static_cast<std::uint64_t>(3 * kJobs));
}

TEST_P(ServiceBothPolicies, PerJobCountersReconcileInIsolation) {
  // JobOptions::counters attaches a per-job delta built from the same
  // WorkerCounters; in isolation it must satisfy the reconciliation
  // identities the scheduler-wide counters satisfy at quiescence.
  runtime::Scheduler sched({.workers = 2, .policy = GetParam()});
  sched.run([] { return tree_sum(3); });  // background noise beforehand
  auto handle =
      sched.submit([] { return tree_sum(5); }, {.counters = true});
  EXPECT_EQ(handle.wait(), 1 << 5);
  const runtime::WorkerCounters t = handle.counters().total();
  EXPECT_EQ(t.local_pops + t.inbox_takes + t.steals,
            (t.tasks_run - t.inline_children) + t.resumes);
  EXPECT_EQ(t.resumes, t.continuations_pushed + t.wakes_pushed);
  EXPECT_EQ(t.parked_touches, t.handoff_runs + t.wakes_pushed);
  EXPECT_EQ(t.fiber_resumes, t.tasks_run + t.resumes + t.handoff_runs);
  // Exactly this job's root came through the inbox.
  EXPECT_EQ(t.inbox_takes, 1u);
  EXPECT_EQ(t.spawns, (1u << 5) - 1);
  EXPECT_GT(handle.latency_us() + 1, 0u);
}

TEST_P(ServiceBothPolicies, ManySubmittersInterleaveCorrectResults) {
  runtime::Scheduler sched({.workers = 2, .policy = GetParam()});
  constexpr int kThreads = 4;
  constexpr int kJobsEach = 50;
  std::vector<std::thread> submitters;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t)
    submitters.emplace_back([&sched, &failures] {
      for (int i = 0; i < kJobsEach; ++i)
        if (sched.run([] { return tree_sum(3); }) != 1 << 3)
          failures.fetch_add(1, std::memory_order_relaxed);
    });
  for (auto& t : submitters) t.join();
  EXPECT_EQ(failures.load(), 0);
}

// ---------------------------------------------------------------------------
// Multi-tenant graph replay.

std::uint64_t deviations_of(const core::Graph& g,
                            const std::vector<core::NodeId>& seq_order,
                            const runtime::GraphReplayer& replayer) {
  return core::count_deviations(g, seq_order, replayer.worker_orders())
      .deviations;
}

TEST(ServiceMultiTenant, ConcurrentGraphsKeepStandaloneDeviations) {
  // Two tenants submit different graphs to ONE 1-worker scheduler from two
  // threads. Each job's recorded node order — and hence its deviation
  // count against its own sequential baseline — must be what it is when
  // the graph runs alone: per-job state (events, orders, completion) is
  // fully isolated, and a worker interleaving two jobs preserves each
  // job's internal order.
  for (const ForkPolicy policy :
       {ForkPolicy::FutureFirst, ForkPolicy::ParentFirst}) {
    for (const TouchEnable touch :
         {TouchEnable::TouchFirst, TouchEnable::ContinuationFirst}) {
      sched::SimOptions opts;
      opts.procs = 1;
      opts.policy = policy;
      opts.touch_enable = touch;
      const auto gen_a =
          graphs::make_named("fig2", {.size = 5, .size2 = 3});
      const auto gen_b =
          graphs::make_named("forkjoin", {.size = 4, .size2 = 3});
      const sched::SeqResult seq_a =
          sched::run_sequential(gen_a.graph, opts);
      const sched::SeqResult seq_b =
          sched::run_sequential(gen_b.graph, opts);

      runtime::RuntimeOptions ropts;
      ropts.workers = 1;
      ropts.policy = policy == ForkPolicy::FutureFirst
                         ? SpawnPolicy::FutureFirst
                         : SpawnPolicy::ParentFirst;
      runtime::ReplayOptions replay_opts;
      replay_opts.touch_enable = touch;
      replay_opts.job_counters = false;

      // Standalone runs, one tenant at a time.
      runtime::Scheduler alone(ropts);
      runtime::GraphReplayer rep_a(gen_a.graph);
      runtime::GraphReplayer rep_b(gen_b.graph);
      (void)rep_a.run(alone, replay_opts);
      (void)rep_b.run(alone, replay_opts);
      const std::uint64_t alone_a =
          deviations_of(gen_a.graph, seq_a.order, rep_a);
      const std::uint64_t alone_b =
          deviations_of(gen_b.graph, seq_b.order, rep_b);

      // Concurrent runs, several rounds to exercise interleavings.
      runtime::Scheduler shared(ropts);
      for (int round = 0; round < 8; ++round) {
        std::thread tenant_a(
            [&] { (void)rep_a.run(shared, replay_opts); });
        std::thread tenant_b(
            [&] { (void)rep_b.run(shared, replay_opts); });
        tenant_a.join();
        tenant_b.join();
        EXPECT_EQ(deviations_of(gen_a.graph, seq_a.order, rep_a), alone_a)
            << "policy=" << to_string(policy)
            << " touch=" << sched::to_string(touch) << " round=" << round;
        EXPECT_EQ(deviations_of(gen_b.graph, seq_b.order, rep_b), alone_b)
            << "policy=" << to_string(policy)
            << " touch=" << sched::to_string(touch) << " round=" << round;
      }
    }
  }
}

TEST(ServiceSharedScheduler, RegistrySharesLiveInstancesByShape) {
  runtime::RuntimeOptions opts;
  opts.workers = 2;
  auto lease_a = runtime::SharedScheduler::acquire(opts);
  auto lease_b = runtime::SharedScheduler::acquire(opts);
  EXPECT_EQ(lease_a.get(), lease_b.get()) << "same shape, same scheduler";
  opts.workers = 1;
  auto lease_c = runtime::SharedScheduler::acquire(opts);
  EXPECT_NE(lease_a.get(), lease_c.get()) << "different shape";
  // Seed does not shape the pool: it only perturbs victim selection.
  opts.workers = 2;
  opts.seed = 999;
  auto lease_d = runtime::SharedScheduler::acquire(opts);
  EXPECT_EQ(lease_a.get(), lease_d.get());
  // Leased schedulers are live services.
  EXPECT_EQ(lease_a->scheduler().run([] { return tree_sum(3); }), 1 << 3);
  EXPECT_EQ(lease_c->scheduler().run([] { return tree_sum(3); }), 1 << 3);
}

// ---- admission control & backpressure ----

/// Submits a job that occupies the single worker until `release` goes true
/// — everything admitted behind it queues in the inbox — and returns once
/// the job is actually *running* (merely admitted is not enough: a later
/// submission could otherwise land in the same inbox take and become deque
/// work).
runtime::JobHandle<int> start_gate(runtime::Scheduler& sched,
                                   std::atomic<bool>& release) {
  std::atomic<bool> started{false};
  auto handle = sched.submit([&started, &release] {
    started.store(true, std::memory_order_release);
    while (!release.load(std::memory_order_acquire))
      std::this_thread::yield();
    return 1;
  });
  while (!started.load(std::memory_order_acquire)) std::this_thread::yield();
  return handle;
}

TEST(ServiceBackpressure, BoundedInboxBlocksThenUnblocksOnDrain) {
  // One worker, capacity 1: a gate job occupies the worker, one queued job
  // fills the inbox, and a third submission must block until a taker
  // drains the inbox. The blocked time is charged to
  // AdmissionStats::blocked_us.
  runtime::Scheduler sched({.workers = 1, .inbox_capacity = 1});
  std::atomic<bool> release{false};
  auto gate = start_gate(sched, release);
  auto queued = sched.submit([] { return 2; });

  std::atomic<bool> submitted{false};
  runtime::JobHandle<int> blocked;
  std::thread submitter([&] {
    // Inbox full: Block waits for space instead of failing or growing.
    blocked = sched.submit([] { return 3; });
    submitted.store(true, std::memory_order_release);
  });
  // The submitter must actually block (can't prove a negative forever;
  // 20ms of not-submitted is the practical assertion).
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(submitted.load(std::memory_order_acquire));

  release.store(true, std::memory_order_release);
  submitter.join();  // drain unblocks the submitter
  EXPECT_EQ(gate.wait(), 1);
  EXPECT_EQ(queued.wait(), 2);
  EXPECT_EQ(blocked.wait(), 3);
  const runtime::AdmissionStats stats = sched.admission();
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.admitted, 3u);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_GT(stats.blocked_us, 0u) << "the third submit never waited";
}

TEST(ServiceBackpressure, RejectFailsFastWhenInboxFull) {
  runtime::Scheduler sched({.workers = 1, .inbox_capacity = 1});
  std::atomic<bool> release{false};
  auto gate = start_gate(sched, release);
  auto queued = sched.submit([] { return 2; });

  auto result = sched.try_submit([] { return 3; }, {},
                                 {.policy = runtime::SubmitPolicy::Reject});
  EXPECT_EQ(result.status, runtime::SubmitStatus::Rejected);
  EXPECT_FALSE(result.admitted());
  EXPECT_FALSE(result.handle.valid()) << "a rejected job has no handle";

  release.store(true, std::memory_order_release);
  EXPECT_EQ(gate.wait(), 1);
  EXPECT_EQ(queued.wait(), 2);
  // After the drain there is space again: the caller's retry succeeds.
  auto retry = sched.try_submit([] { return 3; }, {},
                                {.policy = runtime::SubmitPolicy::Reject});
  ASSERT_TRUE(retry.admitted());
  EXPECT_EQ(retry.handle.wait(), 3);
  const runtime::AdmissionStats stats = sched.admission();
  EXPECT_EQ(stats.submitted, 4u);
  EXPECT_EQ(stats.admitted, 3u);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.timed_out, 0u);
}

TEST(ServiceBackpressure, TimeoutExpiresOnFullInbox) {
  runtime::Scheduler sched({.workers = 1, .inbox_capacity = 1});
  std::atomic<bool> release{false};
  auto gate = start_gate(sched, release);
  auto queued = sched.submit([] { return 2; });

  const auto t0 = std::chrono::steady_clock::now();
  auto result = sched.try_submit(
      [] { return 3; }, {},
      {.policy = runtime::SubmitPolicy::Timeout,
       .timeout = std::chrono::microseconds(2000)});
  const auto waited = std::chrono::steady_clock::now() - t0;
  EXPECT_EQ(result.status, runtime::SubmitStatus::TimedOut);
  EXPECT_GE(waited, std::chrono::microseconds(2000))
      << "timed out before the bound";

  release.store(true, std::memory_order_release);
  EXPECT_EQ(gate.wait(), 1);
  EXPECT_EQ(queued.wait(), 2);
  const runtime::AdmissionStats stats = sched.admission();
  EXPECT_EQ(stats.timed_out, 1u);
  EXPECT_GT(stats.blocked_us, 0u);
}

TEST(ServiceBackpressure, PriorityOrderingAcrossMixedBatch) {
  // One gated worker; a mixed-priority batch queues entirely in the inbox.
  // Once the gate lifts, High jobs must start before Normal before Low,
  // FIFO within each class. Recording order at job start (single worker)
  // observes the take order directly.
  runtime::Scheduler sched({.workers = 1});
  std::atomic<bool> release{false};
  auto gate = start_gate(sched, release);

  support::Mutex order_mutex;
  std::vector<int> order;
  runtime::Batch batch(sched);
  std::vector<runtime::JobHandle<void>> handles;
  // Tag encodes priority*100 + submission index; interleave the classes so
  // FIFO-within-class is distinguishable from admission order.
  const runtime::JobPriority prio[] = {runtime::JobPriority::Low,
                                       runtime::JobPriority::High,
                                       runtime::JobPriority::Normal};
  for (int i = 0; i < 9; ++i) {
    const runtime::JobPriority p = prio[i % 3];
    const int tag = static_cast<int>(p) * 100 + i;
    handles.push_back(batch.add(
        [&order_mutex, &order, tag] {
          support::LockGuard lock(order_mutex);
          order.push_back(tag);
        },
        {.priority = p}));
  }
  sched.submit(std::move(batch));
  release.store(true, std::memory_order_release);
  gate.wait();
  for (auto& h : handles) h.wait();

  support::LockGuard lock(order_mutex);
  ASSERT_EQ(order.size(), 9u);
  // Non-decreasing priority class, increasing index within a class.
  for (std::size_t i = 1; i < order.size(); ++i) {
    EXPECT_LE(order[i - 1] / 100, order[i] / 100)
        << "priority class ran out of order at " << i;
    if (order[i - 1] / 100 == order[i] / 100) {
      EXPECT_LT(order[i - 1] % 100, order[i] % 100)
          << "FIFO broken within a class at " << i;
    }
  }
}

TEST(ServiceBackpressure, DeadlineSheddingSurfacesAsShedOutcome) {
  runtime::Scheduler sched({.workers = 1});
  std::atomic<bool> release{false};
  std::atomic<bool> doomed_ran{false};
  auto gate = start_gate(sched, release);
  // 1ms deadline, but the gate holds the worker for ≥20ms: the job must
  // be shed at take-time, never running.
  auto doomed = sched.submit(
      [&doomed_ran] { doomed_ran.store(true, std::memory_order_release); },
      {.deadline = std::chrono::milliseconds(1)});
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  release.store(true, std::memory_order_release);
  gate.wait();

  EXPECT_EQ(doomed.wait_outcome(), runtime::JobOutcome::Shed);
  EXPECT_EQ(doomed.outcome(), runtime::JobOutcome::Shed);
  EXPECT_FALSE(doomed_ran.load(std::memory_order_acquire))
      << "a shed job must never run";
  EXPECT_THROW(doomed.wait(), CheckError);
  // The shed shows up in the worker counters and spent its whole life
  // queued: latency == queue time, zero service time.
  sched.drain();
  EXPECT_EQ(sched.counters().total().shed, 1u);
  EXPECT_GE(doomed.latency_us(), 1000u);
  EXPECT_EQ(doomed.latency_us(), doomed.queue_us());
  EXPECT_EQ(doomed.service_us(), 0u);
  // Admission-level identity: admitted == completed + shed.
  const runtime::AdmissionStats stats = sched.admission();
  EXPECT_EQ(stats.admitted, 2u);  // gate + doomed
}

TEST(ServiceBackpressure, LatencySplitsIntoQueueAndServiceTime) {
  runtime::Scheduler sched({.workers = 1});
  std::atomic<bool> release{false};
  auto gate = start_gate(sched, release);
  // Queued behind the gate for ≥3ms, then runs for ≥2ms.
  auto job = sched.submit([] {
    const auto until =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(2);
    while (std::chrono::steady_clock::now() < until) {}
    return 7;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(3));
  release.store(true, std::memory_order_release);
  gate.wait();
  EXPECT_EQ(job.wait(), 7);
  EXPECT_EQ(job.outcome(), runtime::JobOutcome::Completed);
  EXPECT_GE(job.queue_us(), 3000u) << "queue time missed the gate wait";
  EXPECT_GE(job.service_us(), 2000u) << "service time missed the spin";
  EXPECT_EQ(job.latency_us(), job.queue_us() + job.service_us());
}

TEST(ServiceBackpressure, OversizedBlockingBatchIsRefusedUpFront) {
  // A Block batch larger than the capacity can never fit — admitting it
  // would deadlock the submitter, so the scheduler refuses it instead.
  runtime::Scheduler sched({.workers = 1, .inbox_capacity = 2});
  runtime::Batch batch(sched);
  std::vector<runtime::JobHandle<void>> handles;
  for (int i = 0; i < 3; ++i) handles.push_back(batch.add([] {}));
  EXPECT_THROW(sched.submit(std::move(batch)), CheckError);
}

}  // namespace
}  // namespace wsf
