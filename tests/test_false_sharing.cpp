// False-sharing audit of the runtime's per-worker state.
//
// The compile-time half verifies the memory layout the runtime relies on:
// the Chase–Lev deque's thief-shared indices, the per-worker counter
// blocks, and the Worker object itself keep cross-thread traffic on its own
// cache lines (offsets asserted below and in runtime/chase_lev.hpp /
// runtime/counters.hpp). The run-time half is a stress test that hammers
// adjacent workers' counters while a monitoring thread snapshots them —
// under ThreadSanitizer (ctest label `runtime`, CI tsan job) this proves
// the single-writer relaxed-counter discipline is race-free even when
// neighbouring workers update as fast as they can.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

#include "runtime/chase_lev.hpp"
#include "runtime/counters.hpp"
#include "runtime/pool.hpp"

namespace wsf::runtime {
namespace detail {

// Worker is not standard-layout (it holds a Scheduler&), so offsetof is
// conditionally-supported; GCC and Clang evaluate it for this layout and
// only emit -Winvalid-offsetof, which we suppress for the audit.
struct WorkerAudit {
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Winvalid-offsetof"
  static constexpr std::size_t deque = offsetof(Worker, deque_);
  static constexpr std::size_t counters = offsetof(Worker, counters_);
  static constexpr std::size_t scratch = offsetof(Worker, sched_ctx_);
#pragma GCC diagnostic pop
};

// The deque (and with it its thief-CASed top_ index) starts on a cache
// line, so the cold header fields (sched_, id_, stack_bytes_) never bounce
// with steals.
static_assert(WorkerAudit::deque % 64 == 0,
              "Worker deque must start on a cache line");
static_assert(alignof(Worker) >= 64,
              "Worker must be allocated cache-line aligned");
// The counter block is line-aligned and occupies whole lines (asserted in
// counters.hpp), so snapshot readers never share a line with the owner-only
// rng_ above it or the suspend-protocol scratch below it.
static_assert(WorkerAudit::counters % 64 == 0,
              "Worker counters must start on a cache line");
static_assert(WorkerAudit::scratch / 64 >
                  (WorkerAudit::counters + sizeof(WorkerCounters) - 1) / 64,
              "suspend-protocol scratch must not share the counters' lines");
// Inside the deque: each shared index on its own line (re-asserted here so
// the audit is complete in one file; primary asserts in chase_lev.hpp).
static_assert(ChaseLevAudit::top / 64 != ChaseLevAudit::bottom / 64);
static_assert(ChaseLevAudit::array / 64 != ChaseLevAudit::bottom / 64);

}  // namespace detail

namespace {

TEST(FalseSharingAudit, CompileTimeLayout) {
  // The static_asserts above are the real test; record the audited offsets
  // so a layout change shows up in the test log, not just a compile error.
  EXPECT_EQ(detail::WorkerAudit::deque % 64, 0u);
  EXPECT_EQ(detail::WorkerAudit::counters % 64, 0u);
  EXPECT_EQ(alignof(WorkerCounters), 64u);
  EXPECT_EQ(sizeof(WorkerCounters) % 64, 0u);
  EXPECT_EQ(ChaseLevAudit::top % 64, 0u);
  EXPECT_EQ(ChaseLevAudit::bottom % 64, 0u);
  EXPECT_EQ(ChaseLevAudit::array % 64, 0u);
}

// Adjacent workers increment their own counters as fast as possible while
// the main thread repeatedly snapshots all of them (the racy-by-design
// monitoring read). TSan verifies the relaxed single-writer discipline;
// the final quiescent snapshot must account for every increment exactly.
TEST(FalseSharingStress, AdjacentCounterUpdatesUnderSnapshots) {
  RuntimeOptions opts;
  opts.workers = 4;
  Scheduler sched(opts);
  sched.reset_counters();

  constexpr int kJobs = 64;
  constexpr std::uint64_t kSpinsPerJob = 2000;

  std::atomic<bool> stop{false};
  std::thread monitor([&] {
    std::uint64_t sink = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const CountersReport snap = sched.counters();
      sink += snap.total().touches;  // consume so the reads are not elided
      std::this_thread::yield();
    }
    ASSERT_GE(sink, 0u);
  });

  std::vector<JobHandle<void>> handles;
  handles.reserve(kJobs);
  for (int j = 0; j < kJobs; ++j) {
    handles.push_back(sched.submit([] {
      // Each spawned future bumps its worker's spawns/touches cells; the
      // tight += loop stresses the counter lines themselves.
      auto f = spawn([] {
        for (std::uint64_t i = 0; i < kSpinsPerJob; ++i)
          detail::current_worker()->counters().touches += 1;
      });
      f.touch();
    }));
  }
  for (auto& h : handles) h.wait();
  stop.store(true, std::memory_order_release);
  monitor.join();

  // Quiescent snapshot: every touch-cell increment is visible exactly once
  // (kSpinsPerJob synthetic bumps plus the one real touch per job).
  const CountersReport final_snap = sched.counters();
  EXPECT_EQ(final_snap.total().touches,
            kJobs * (kSpinsPerJob + 1));
  EXPECT_EQ(final_snap.total().spawns, static_cast<std::uint64_t>(kJobs));
  EXPECT_EQ(final_snap.per_worker.size(), 4u);
}

}  // namespace
}  // namespace wsf::runtime
