#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>
#include <string>
#include <vector>

#include "support/check.hpp"
#include "support/cli.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace wsf::support {
namespace {

// ---- check macros ----

TEST(Check, PassesOnTrue) { EXPECT_NO_THROW(WSF_CHECK(1 + 1 == 2)); }

TEST(Check, ThrowsWithMessage) {
  try {
    const int x = 3;
    WSF_CHECK(x == 4, "x was " << x);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("x was 3"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("x == 4"), std::string::npos);
  }
}

TEST(Check, RequireThrows) {
  EXPECT_THROW(WSF_REQUIRE(false), CheckError);
}

// ---- rng ----

TEST(Rng, DeterministicForSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.below(13);
    EXPECT_LT(v, 13u);
  }
}

TEST(Rng, BelowCoversAllResidues) {
  Xoshiro256 rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, BelowRejectsZero) {
  Xoshiro256 rng(1);
  EXPECT_THROW(rng.below(0), CheckError);
}

TEST(Rng, Uniform01InUnitInterval) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, RangeInclusive) {
  Xoshiro256 rng(11);
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(Rng, DerivedSeedsDecorrelated) {
  const auto s1 = derive_seed(100, 0);
  const auto s2 = derive_seed(100, 1);
  EXPECT_NE(s1, s2);
  EXPECT_EQ(derive_seed(100, 0), s1);  // stable
}

// ---- stats ----

TEST(Stats, AccumulatorBasics) {
  Accumulator acc;
  for (double x : {1.0, 2.0, 3.0, 4.0}) acc.add(x);
  EXPECT_EQ(acc.count(), 4u);
  EXPECT_DOUBLE_EQ(acc.mean(), 2.5);
  EXPECT_DOUBLE_EQ(acc.min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 4.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 10.0);
  EXPECT_NEAR(acc.variance(), 5.0 / 3.0, 1e-12);
}

TEST(Stats, AccumulatorEmpty) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.variance(), 0.0);
}

TEST(Stats, LinearFitRecoversLine) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 20; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 * i + 7.0);
  }
  const auto fit = fit_linear(xs, ys);
  EXPECT_NEAR(fit.slope, 3.0, 1e-9);
  EXPECT_NEAR(fit.intercept, 7.0, 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(Stats, LogLogFitRecoversExponent) {
  std::vector<double> xs, ys;
  for (double x : {2.0, 4.0, 8.0, 16.0, 32.0}) {
    xs.push_back(x);
    ys.push_back(5.0 * x * x);  // y = 5 x^2
  }
  const auto fit = fit_loglog(xs, ys);
  EXPECT_NEAR(fit.slope, 2.0, 1e-9);
}

TEST(Stats, LogLogRejectsNonPositive) {
  EXPECT_THROW(fit_loglog({1.0, 0.0}, {1.0, 1.0}), CheckError);
}

TEST(Stats, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
  EXPECT_DOUBLE_EQ(median({}), 0.0);
}

// ---- cli ----

TEST(Cli, ParsesAllKinds) {
  ArgParser args("test");
  auto& i = args.add_int("count", 5, "a count");
  auto& d = args.add_double("ratio", 0.5, "a ratio");
  auto& s = args.add_string("name", "x", "a name");
  auto& bl = args.add_bool("verbose", false, "a switch");
  const char* argv[] = {"prog", "--count=7", "--ratio", "2.5",
                        "--name=abc", "--verbose"};
  ASSERT_TRUE(args.parse(6, argv));
  EXPECT_EQ(i.value, 7);
  EXPECT_DOUBLE_EQ(d.value, 2.5);
  EXPECT_EQ(s.value, "abc");
  EXPECT_TRUE(bl.value);
}

TEST(Cli, DefaultsSurviveEmptyArgv) {
  ArgParser args("test");
  auto& i = args.add_int("count", 5, "a count");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(args.parse(1, argv));
  EXPECT_EQ(i.value, 5);
}

TEST(Cli, RejectsUnknownFlag) {
  ArgParser args("test");
  args.add_int("count", 5, "a count");
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_THROW(args.parse(2, argv), CheckError);
}

TEST(Cli, RejectsBadInteger) {
  ArgParser args("test");
  args.add_int("count", 5, "a count");
  const char* argv[] = {"prog", "--count=abc"};
  EXPECT_THROW(args.parse(2, argv), CheckError);
}

TEST(Cli, RejectsDuplicateRegistration) {
  ArgParser args("test");
  args.add_int("count", 5, "a count");
  EXPECT_THROW(args.add_bool("count", false, "dup"), CheckError);
}

// ---- table ----

TEST(Table, AlignsAndRenders) {
  Table t({"name", "value"});
  t.row().add("alpha").add(std::int64_t{42});
  t.row().add("b").add(3.25);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("42"), std::string::npos);
  EXPECT_NE(s.find("3.25"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.row().add(std::int64_t{1}).add(std::int64_t{2});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(Table, CsvFieldQuotingRules) {
  EXPECT_EQ(csv_field("plain"), "plain");
  EXPECT_EQ(csv_field(""), "");
  EXPECT_EQ(csv_field("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_field("two\nlines"), "\"two\nlines\"");
  EXPECT_EQ(csv_field("cr\rhere"), "\"cr\rhere\"");
  EXPECT_EQ(csv_line({"a,b", "c"}), "\"a,b\",c\n");
  // A lone empty field is quoted so the record is not a blank line.
  EXPECT_EQ(csv_line({""}), "\"\"\n");
}

TEST(Table, SingleColumnMissingCellRoundTrips) {
  Table t({"only"});
  t.row().add(std::numeric_limits<double>::quiet_NaN());
  t.row().add("x");
  const std::string csv = t.to_csv();
  EXPECT_EQ(csv, "only\n\"\"\nx\n");
  const Table back = Table::from_csv(csv);
  EXPECT_EQ(back.rows(), t.rows());
}

TEST(Table, CsvQuotesCellsWithCommas) {
  // The seed emitter replaced ',' with ';' — silently corrupting any cell
  // with an embedded comma. RFC-4180 quoting keeps the bytes.
  Table t({"family", "note"});
  t.row().add("fig2,fig4").add("a \"quoted\" word");
  EXPECT_EQ(t.to_csv(),
            "family,note\n\"fig2,fig4\",\"a \"\"quoted\"\" word\"\n");
}

TEST(Table, CsvRoundTripsQuotedCells) {
  Table t({"name", "value", "note"});
  t.row().add("alpha,beta").add(std::int64_t{1}).add("say \"hi\"");
  t.row().add("two\nlines").add(2.5).add("");  // missing cell round-trips
  t.row().add(",,").add(-3.75).add("\"");
  const std::string csv = t.to_csv();
  const Table back = Table::from_csv(csv);
  EXPECT_EQ(back.headers(), t.headers());
  EXPECT_EQ(back.rows(), t.rows());
  EXPECT_EQ(back.to_csv(), csv);
}

TEST(Table, FromCsvAcceptsCrlfBareCrAndMissingFinalNewline) {
  const Table t = Table::from_csv("a,b\r\n1,2\r3,4");
  ASSERT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.rows()[0], (std::vector<std::string>{"1", "2"}));
  EXPECT_EQ(t.rows()[1], (std::vector<std::string>{"3", "4"}));
}

TEST(Table, FromCsvSkipsEmptyLines) {
  const Table t = Table::from_csv("a,b\n\n1,2\n\n\n3,4\n\n");
  ASSERT_EQ(t.num_rows(), 2u);
}

TEST(Table, FromCsvAllowsShortRowsButNotLongOnes) {
  const Table t = Table::from_csv("a,b,c\n1,2\n");
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.rows()[0].size(), 2u);
  EXPECT_THROW(Table::from_csv("a,b\n1,2,3\n"), CheckError);
}

TEST(Table, FromCsvRejectsMalformed) {
  EXPECT_THROW(Table::from_csv(""), CheckError);
  EXPECT_THROW(Table::from_csv("a,b\n\"unterminated"), CheckError);
  EXPECT_THROW(Table::from_csv("a,b\n\"x\"y,2\n"), CheckError);
}

TEST(Table, MissingCellRendering) {
  Table t({"a", "b"});
  t.row().add(std::numeric_limits<double>::quiet_NaN()).add(1.5);
  EXPECT_EQ(t.rows()[0][0], "");
  // Aligned output renders the em dash, CSV an empty field, JSON null.
  EXPECT_NE(t.to_string().find("—"), std::string::npos);
  EXPECT_EQ(t.to_csv(), "a,b\n,1.5\n");
  EXPECT_NE(t.to_json().find("\"a\": null"), std::string::npos);
  EXPECT_NE(t.to_json().find("\"b\": 1.5"), std::string::npos);
}

TEST(Table, AddRowBulkAppends) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), CheckError);
}

TEST(Table, RejectsOverfullRow) {
  Table t({"a"});
  t.row().add("x");
  EXPECT_THROW(t.add("y"), CheckError);
}

TEST(Table, FormatDoubleTrims) {
  EXPECT_EQ(format_double(2.0), "2");
  EXPECT_EQ(format_double(2.5), "2.5");
  EXPECT_EQ(format_double(2.5001), "2.5001");
}

}  // namespace
}  // namespace wsf::support
