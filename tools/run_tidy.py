#!/usr/bin/env python3
"""Parallel clang-tidy driver over a CMake compile_commands.json.

Why not `run-clang-tidy`: this wrapper (a) restricts the run to the repo's
own translation units — third-party sources dragged into the database by
FetchContent (googletest) and generated files under the build tree are not
ours to lint; (b) writes a machine-diffable report file for the CI artifact;
(c) exits non-zero iff any *owned* TU produced a finding, so the CI gate and
a local run agree exactly.

Usage: run_tidy.py [BUILD_DIR] [--jobs N] [--report FILE] [--clang-tidy BIN]
  BUILD_DIR defaults to ./build; it must contain compile_commands.json
  (configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON — the project default).

Exit status: 0 clean, 1 findings, 2 usage/environment errors.
"""

import argparse
import json
import os
import shutil
import subprocess
import sys
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

# Directories whose TUs we do not own (relative to the repo root, plus any
# absolute path that is not under the repo at all).
EXCLUDE_PARTS = ("build", "_deps", "googletest", "CMakeFiles")


def owned_sources(db_path: Path, repo: Path) -> list[str]:
    with db_path.open(encoding="utf-8") as f:
        db = json.load(f)
    sources = []
    for entry in db:
        src = Path(entry["file"])
        if not src.is_absolute():
            src = (Path(entry["directory"]) / src).resolve()
        try:
            rel = src.resolve().relative_to(repo)
        except ValueError:
            continue  # outside the repo (system or fetched sources)
        if any(part in EXCLUDE_PARTS for part in rel.parts):
            continue
        sources.append(str(src))
    return sorted(set(sources))


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("build_dir", nargs="?", default="build")
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 2)
    parser.add_argument("--report", default=None,
                        help="also write all findings to this file")
    parser.add_argument("--clang-tidy", default="clang-tidy",
                        help="clang-tidy binary to use")
    args = parser.parse_args(argv[1:])

    tidy = shutil.which(args.clang_tidy)
    if tidy is None:
        print(f"run_tidy: '{args.clang_tidy}' not found on PATH",
              file=sys.stderr)
        return 2
    repo = Path(__file__).resolve().parent.parent
    build = Path(args.build_dir)
    db = build / "compile_commands.json"
    if not db.is_file():
        print(f"run_tidy: {db} not found — configure with "
              "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON first", file=sys.stderr)
        return 2

    sources = owned_sources(db, repo)
    if not sources:
        print("run_tidy: no owned sources in the compilation database",
              file=sys.stderr)
        return 2

    def run_one(src: str) -> tuple[str, int, str]:
        proc = subprocess.run(
            [tidy, "-p", str(build), "--quiet", src],
            capture_output=True, text=True)
        # clang-tidy prints findings on stdout; suppressed-warning stats and
        # config noise go to stderr and are dropped unless the run failed to
        # parse at all (nonzero exit with empty stdout).
        out = proc.stdout.strip()
        if proc.returncode != 0 and not out:
            out = proc.stderr.strip()
        return src, proc.returncode, out

    failures = 0
    report_chunks = []
    with ThreadPoolExecutor(max_workers=max(1, args.jobs)) as pool:
        for src, code, out in pool.map(run_one, sources):
            rel = os.path.relpath(src, repo)
            if code == 0:
                print(f"  OK   {rel}")
                continue
            failures += 1
            print(f" FAIL  {rel}")
            if out:
                print(out)
                report_chunks.append(f"==== {rel} ====\n{out}\n")

    if args.report:
        Path(args.report).write_text(
            "".join(report_chunks) or "clang-tidy: no findings\n",
            encoding="utf-8")
    if failures:
        print(f"\nrun_tidy: findings in {failures}/{len(sources)} "
              "translation units.")
        return 1
    print(f"run_tidy: OK — {len(sources)} translation units clean.")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
