// wsf-plot — regenerate the paper's figures from wsf-sweep output.
//
// Consumes one or more sweep files (CSV, JSON, or raw checkpoint — shard
// merges and single runs load identically) and, per figure family present,
// emits a gnuplot-ready data/script pair plus a self-contained ASCII
// preview:
//
//   <outdir>/<family>.dat   whitespace table: x column, one column per series
//   <outdir>/<family>.gp    gnuplot script rendering <family>.png
//   <outdir>/<family>.txt   the ASCII preview (also printed to stdout)
//
//   ./build/tools/wsf-sweep --smoke --format=csv --out=smoke.csv
//   ./build/tools/wsf-plot --in=smoke.csv --outdir=figures
//   ./build/tools/wsf-plot --in=a.csv --compare=b.csv      # overlay 2 runs
//   ./build/tools/wsf-plot --in=run.csv --normalize        # y / seq baseline
//   ./build/tools/wsf-plot --in=shard0.ckpt,shard1.ckpt    # raw checkpoints
//
// A family whose data path is silently broken — no rows, or a series that
// is empty/NaN-only — fails the whole invocation, so CI catches output
// drift instead of uploading blank plots.
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "exp/analysis.hpp"
#include "exp/checkpoint.hpp"
#include "support/check.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

using namespace wsf;

namespace {

std::vector<std::string> split_list(const std::string& s) {
  std::vector<std::string> out;
  std::string item;
  for (const char ch : s) {
    if (ch == ',') {
      if (!item.empty()) out.push_back(item);
      item.clear();
    } else {
      item += ch;
    }
  }
  if (!item.empty()) out.push_back(item);
  WSF_REQUIRE(!out.empty(), "empty comma-separated list '" << s << "'");
  return out;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  WSF_REQUIRE(in.good(), "cannot read '" << path << "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// True when the file starts with the checkpoint signature prefix (reads
// only those bytes, not the whole file).
bool is_checkpoint_file(const std::string& path) {
  const std::string prefix = exp::kCheckpointSignaturePrefix;
  std::ifstream in(path, std::ios::binary);
  WSF_REQUIRE(in.good(), "cannot read '" << path << "'");
  std::string head(prefix.size(), '\0');
  in.read(head.data(), static_cast<std::streamsize>(head.size()));
  return static_cast<std::size_t>(in.gcount()) == prefix.size() &&
         head == prefix;
}

// Loads every listed sweep file into one row set. Several checkpoints are
// reassembled with merge_checkpoints (config_index order, signatures
// cross-checked — identical to `wsf-sweep --merge`), so plotting the raw
// shard files of a two-machine run gives byte-identical figures to
// plotting the merged CSV. Everything else is normalized per file by
// load_sweep and concatenated.
support::Table load_all(const std::string& files) {
  const std::vector<std::string> paths = split_list(files);
  bool all_checkpoints = paths.size() > 1;
  for (const std::string& path : paths)
    if (all_checkpoints && !is_checkpoint_file(path))
      all_checkpoints = false;
  if (all_checkpoints) {
    std::vector<exp::Checkpoint> shards;
    for (const std::string& path : paths)
      shards.push_back(exp::load_checkpoint(path));
    return exp::merge_checkpoints(shards);
  }
  support::Table merged({"family"});
  for (std::size_t i = 0; i < paths.size(); ++i) {
    support::Table t = exp::analysis::load_sweep(slurp(paths[i]));
    merged = i == 0 ? std::move(t) : exp::analysis::concat(merged, t);
  }
  return merged;
}

void write_file(const std::filesystem::path& path,
                const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  WSF_REQUIRE(out.good(), "cannot open '" << path.string() << "'");
  out << content;
  WSF_REQUIRE(out.good(), "write to '" << path.string() << "' failed");
}

// Side-by-side comparison of two runs (analysis::join): every identity
// column the two row sets share becomes a join key, the compared measure
// lands in <measure>_A / <measure>_B columns plus their ratio. This is how
// a simulated grid is validated against the same grid executed on the real
// work-stealing runtime (wsf-sweep --backend=runtime).
support::Table comparison_table(const support::Table& a,
                                const support::Table& b,
                                const std::string& measure) {
  std::vector<std::string> keys;
  for (const char* cand : {"family", "size", "size2", "procs", "policy",
                           "touch_enable", "cache_lines"})
    if (a.has_column(cand) && b.has_column(cand)) keys.push_back(cand);
  WSF_REQUIRE(!keys.empty(),
              "--compare-table: the inputs share no identity columns");
  // `backend` joins the keys only when it varies *within* an input: a
  // --backend=both file must pair sim rows with sim rows, not
  // cross-multiply the engines; two single-backend files (the sim-vs-
  // runtime case) instead keep backend as the labeled backend_A/backend_B
  // columns.
  if (a.has_column("backend") && b.has_column("backend") &&
      (exp::analysis::distinct(a, "backend").size() > 1 ||
       exp::analysis::distinct(b, "backend").size() > 1))
    keys.push_back("backend");
  WSF_REQUIRE(a.has_column(measure) && b.has_column(measure),
              "--compare-table: measure column '" << measure
                  << "' missing from an input");
  support::Table joined = exp::analysis::join(a, b, keys);
  joined = exp::analysis::with_ratio(joined, measure + "_ratio",
                                     measure + "_A", measure + "_B");
  std::vector<std::string> columns = keys;
  if (joined.has_column("backend_A")) columns.push_back("backend_A");
  if (joined.has_column("backend_B")) columns.push_back("backend_B");
  columns.push_back(measure + "_A");
  columns.push_back(measure + "_B");
  columns.push_back(measure + "_ratio");
  return exp::analysis::select(joined, columns);
}

}  // namespace

int main(int argc, char** argv) {
  support::ArgParser args(
      "wsf-plot — regenerate paper figures (gnuplot .dat/.gp + ASCII "
      "preview) from wsf-sweep CSV/JSON output or raw shard checkpoints");
  auto& in = args.add_string(
      "in", "", "comma-separated sweep files (CSV, JSON, or checkpoint); "
                "multiple files are concatenated");
  auto& compare = args.add_string(
      "compare", "",
      "second run to overlay: series are tagged with a run column (A = "
      "--in, B = --compare), e.g. a simulated grid vs the same grid on the "
      "real runtime (wsf-sweep --backend=runtime), two policies, or two "
      "commits");
  auto& compare_table = args.add_string(
      "compare-table", "",
      "with --compare: also write a side-by-side CSV (join on the shared "
      "identity columns; <measure>_A, <measure>_B, and their ratio) to "
      "this path — the sim-vs-runtime validation table");
  auto& families = args.add_string(
      "families", "", "figure families to render (default: every family "
                      "present in the input)");
  auto& x_axis = args.add_string("x", "", "x-axis column (default: the "
                                          "family's registered axis, "
                                          "usually procs)");
  auto& measure = args.add_string(
      "measure", "", "y-axis column (default: the family's registered "
                     "measure, e.g. mean_additional_misses)");
  auto& series = args.add_string(
      "series", "", "columns whose values split rows into series "
                    "(default: auto — the axes that vary)");
  auto& normalize = args.add_bool(
      "normalize", false,
      "divide the measure by the sequential baseline column "
      "(mean_seq_misses)");
  auto& outdir = args.add_string("outdir", "plots",
                                 "directory for the .dat/.gp/.txt files");
  auto& png = args.add_bool(
      "png", false,
      "also render <family>.png by running gnuplot on each written .gp "
      "script; when gnuplot is not on PATH a note is printed and the "
      ".dat/.gp/.txt outputs stand alone (the ASCII preview is always "
      "written)");
  auto& quiet = args.add_bool(
      "quiet", false, "do not print the ASCII previews to stdout");
  // Flag parsing must not escape main: an uncaught CheckError (e.g.
  // --quiet=maybe) would terminate with SIGABRT and no usable diagnostic.
  try {
    if (!args.parse(argc, argv)) return 0;
  } catch (const CheckError& e) {
    std::fprintf(stderr, "wsf-plot: %s\n", e.what());
    return 2;
  }

  try {
    WSF_REQUIRE(!in.value.empty(),
                "--in is required (one or more sweep CSV/JSON/checkpoint "
                "files)");
    WSF_REQUIRE(compare_table.value.empty() || !compare.value.empty(),
                "--compare-table requires --compare");
    support::Table sweep = load_all(in.value);
    if (!compare.value.empty()) {
      const support::Table other = load_all(compare.value);
      if (!compare_table.value.empty()) {
        const std::string m =
            measure.value.empty() ? "mean_deviations" : measure.value;
        const support::Table side_by_side =
            comparison_table(sweep, other, m);
        write_file(std::filesystem::path(compare_table.value),
                   side_by_side.to_csv());
        std::fprintf(stderr,
                     "wsf-plot: comparison table (%s), %zu joined rows -> "
                     "%s\n",
                     m.c_str(), side_by_side.num_rows(),
                     compare_table.value.c_str());
      }
      // Tag each run, then concatenate: "run" joins the series-splitting
      // axes, so every series appears once per run, labelled A/B.
      sweep = exp::analysis::with_constant(sweep, "run", "A");
      sweep = exp::analysis::concat(
          sweep, exp::analysis::with_constant(other, "run", "B"));
    }

    exp::analysis::FigureOptions fig_opts;
    fig_opts.x = x_axis.value;
    fig_opts.measure = measure.value;
    fig_opts.normalize = normalize.value;
    if (!series.value.empty())
      fig_opts.series_columns = split_list(series.value);

    std::vector<std::string> requested;
    if (!families.value.empty()) {
      requested = split_list(families.value);
    } else {
      // Registered-figure order first, then any unregistered families in
      // data order — every family in the input renders.
      const auto present = exp::analysis::distinct(sweep, "family");
      for (const auto& fam : exp::analysis::figure_families())
        for (const auto& p : present)
          if (p == fam.family) requested.push_back(p);
      for (const auto& p : present)
        if (!exp::analysis::find_figure_family(p)) requested.push_back(p);
    }
    WSF_REQUIRE(!requested.empty(), "no figure families in the input");

    const std::filesystem::path dir(outdir.value);
    std::filesystem::create_directories(dir);
    // The .gp scripts reference their .dat by bare filename, so gnuplot
    // must run with the output directory as its working directory.
    const bool have_gnuplot =
        png.value &&
        std::system("gnuplot --version > /dev/null 2>&1") == 0;
    if (png.value && !have_gnuplot)
      std::fprintf(stderr,
                   "wsf-plot: --png requested but gnuplot is not on PATH; "
                   "writing .dat/.gp/.txt only\n");
    for (const std::string& family : requested) {
      const exp::analysis::Figure fig =
          exp::analysis::render_figure(sweep, family, fig_opts);
      write_file(dir / (family + ".dat"), fig.dat);
      write_file(dir / (family + ".gp"), fig.gp);
      write_file(dir / (family + ".txt"), fig.ascii);
      bool rendered_png = false;
      if (have_gnuplot) {
        const std::string cmd = "cd '" + dir.string() + "' && gnuplot '" +
                                family + ".gp'";
        // A present-but-failing gnuplot is a broken figure, not a missing
        // renderer — fail loudly so CI never uploads silently blank plots.
        WSF_REQUIRE(std::system(cmd.c_str()) == 0,
                    "gnuplot failed on " << family << ".gp");
        rendered_png = true;
      }
      if (!quiet.value) std::fputs(fig.ascii.c_str(), stdout);
      std::fprintf(stderr,
                   "wsf-plot: %s — %zu series, %zu points -> %s/%s.{dat,"
                   "gp,txt%s}\n",
                   family.c_str(), fig.series.size(), fig.points,
                   outdir.value.c_str(), family.c_str(),
                   rendered_png ? ",png" : "");
    }
  } catch (const CheckError& e) {
    std::fprintf(stderr, "wsf-plot: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "wsf-plot: %s\n", e.what());
    return 1;
  }
  return 0;
}
