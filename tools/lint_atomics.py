#!/usr/bin/env python3
"""Atomics-rationale lint: every explicit std::memory_order use must carry a
rationale comment.

Policy (README "Static analysis"): a memory-ordering decision is an argument
about *which* release/acquire pair (or why no ordering is needed), and that
argument belongs next to the code — TSan can only check the orderings the
test schedules happen to exercise, but a reviewer can check a written
rationale on every build. Concretely, each line whose *code* (comments
stripped) mentions `memory_order_<kind>` must satisfy one of:

  * the line itself carries a `//` comment after the code, or
  * some line of the enclosing statement (scanning from the statement's
    first line down to the use) carries a `//` comment, or
  * the line immediately above the enclosing statement is a comment line
    (`//`, `///` or the interior of a `/* ... */` block).

The "enclosing statement" is found by walking upward while the previous
line neither ends a statement/block (';', '{', '}', ':', '>') nor is blank
nor is itself a comment line — a cheap heuristic that handles the
multi-line `store(...)` calls the codebase actually contains without
parsing C++.

Exit status: 0 when every use is covered, 1 otherwise (offenders listed as
file:line so editors can jump), 2 on usage errors.

Usage: lint_atomics.py [ROOT ...]   (default: the repo's src/ tree)
"""

import re
import sys
from pathlib import Path

USE_RE = re.compile(r"\bmemory_order_(relaxed|acquire|release|acq_rel|seq_cst|consume)\b")
EXTENSIONS = {".hpp", ".h", ".cpp", ".cc", ".cxx", ".hxx"}
# Lines ending a previous statement / opening a block: the next line starts
# a fresh statement. '>' catches template-argument line breaks in
# declarations like std::atomic<\n T> (rare but cheap to allow).
STATEMENT_BOUNDARY = (";", "{", "}", ":", ">", ")")


def strip_comment(line: str) -> str:
    """The code portion of a line (text left of any // comment)."""
    return line.split("//", 1)[0]


def is_comment_line(line: str) -> bool:
    s = line.strip()
    return s.startswith("//") or s.startswith("*") or s.startswith("/*")


def statement_start(lines: list[str], idx: int) -> int:
    """Index of the first line of the statement containing lines[idx]."""
    k = idx
    while k > 0:
        prev = lines[k - 1].strip()
        # A loop header ending in ';' is still the same statement — the
        # condition/step clauses of a multi-line `for` continue it.
        if prev.startswith(("for ", "for(", "while ", "while(")):
            k -= 1
            continue
        if not prev or is_comment_line(prev) or prev.endswith(STATEMENT_BOUNDARY):
            break
        k -= 1
    return k


def has_rationale(lines: list[str], idx: int) -> bool:
    if "//" in lines[idx]:
        return True
    start = statement_start(lines, idx)
    if any("//" in lines[k] for k in range(start, idx)):
        return True
    return start > 0 and is_comment_line(lines[start - 1])


def lint_file(path: Path) -> list[tuple[int, str]]:
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except (OSError, UnicodeDecodeError) as err:
        print(f"lint_atomics: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)
    offenders = []
    in_block_comment = False
    for i, line in enumerate(lines):
        # Track /* ... */ blocks so orderings mentioned in prose don't count.
        code = line
        if in_block_comment:
            end = code.find("*/")
            if end < 0:
                continue
            code = code[end + 2:]
            in_block_comment = False
        while "/*" in code:
            open_at = code.find("/*")
            close_at = code.find("*/", open_at + 2)
            if close_at < 0:
                code = code[:open_at]
                in_block_comment = True
                break
            code = code[:open_at] + code[close_at + 2:]
        if USE_RE.search(strip_comment(code)) and not has_rationale(lines, i):
            offenders.append((i + 1, line.strip()))
    return offenders


def main(argv: list[str]) -> int:
    repo_src = Path(__file__).resolve().parent.parent / "src"
    roots = [Path(a) for a in argv[1:]] or [repo_src]
    files: list[Path] = []
    for root in roots:
        if root.is_file():
            files.append(root)
        elif root.is_dir():
            files.extend(
                p for p in sorted(root.rglob("*")) if p.suffix in EXTENSIONS
            )
        else:
            print(f"lint_atomics: no such path: {root}", file=sys.stderr)
            return 2
    total_uses = 0
    failures = 0
    for path in files:
        text = path.read_text(encoding="utf-8", errors="replace")
        total_uses += len(USE_RE.findall(text))
        for lineno, snippet in lint_file(path):
            print(f"{path}:{lineno}: memory_order use without a rationale "
                  f"comment:\n    {snippet}")
            failures += 1
    if failures:
        print(f"\nlint_atomics: {failures} unexplained memory_order use(s). "
              "Add a same-line or preceding-comment rationale (see README "
              "'Static analysis').")
        return 1
    print(f"lint_atomics: OK — {total_uses} memory_order uses across "
          f"{len(files)} files, all with rationale comments.")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
