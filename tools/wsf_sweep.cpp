// wsf-sweep — run a whole experiment grid (the paper's figure/theorem
// tables) in one command, concurrently, and emit an aligned table, CSV, or
// JSON. Every cell is reproducible: it is the mean over --seeds replicates
// of run_experiment() with seeds --seed-base, --seed-base+1, …, so any row
// can be re-derived with sim_explorer or a single-run harness.
//
//   ./build/tools/wsf-sweep                                  # default grid
//   ./build/tools/wsf-sweep --smoke --format=csv --out=smoke.csv   # CI
//   ./build/tools/wsf-sweep --families=fig2,fig4 --procs=1,2,4,8
//       --policies=future-first,parent-first --cache-lines=0,16 --seeds=8
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/sweep.hpp"
#include "graphs/registry.hpp"
#include "support/check.hpp"
#include "support/cli.hpp"

using namespace wsf;

namespace {

std::vector<std::string> split_list(const std::string& s) {
  std::vector<std::string> out;
  std::string item;
  for (const char ch : s) {
    if (ch == ',') {
      if (!item.empty()) out.push_back(item);
      item.clear();
    } else {
      item += ch;
    }
  }
  if (!item.empty()) out.push_back(item);
  WSF_REQUIRE(!out.empty(), "empty comma-separated list '" << s << "'");
  return out;
}

template <typename T>
std::vector<T> split_numbers(const std::string& s) {
  std::vector<T> out;
  for (const std::string& item : split_list(s)) {
    WSF_REQUIRE(!item.empty() &&
                    item.find_first_not_of("0123456789") == std::string::npos,
                "expected a number, got '" << item << "'");
    unsigned long long v = 0;
    try {
      v = std::stoull(item);
    } catch (const std::out_of_range&) {
      WSF_REQUIRE(false, "number out of range: '" << item << "'");
    }
    if constexpr (std::numeric_limits<T>::max() <
                  std::numeric_limits<unsigned long long>::max()) {
      WSF_REQUIRE(v <= std::numeric_limits<T>::max(),
                  "number out of range: '" << item << "'");
    }
    out.push_back(static_cast<T>(v));
  }
  return out;
}

std::string known_families() {
  std::string all;
  for (const auto& name : graphs::registry_names())
    all += (all.empty() ? "" : ", ") + name;
  return all;
}

}  // namespace

int main(int argc, char** argv) {
  support::ArgParser args(
      "wsf-sweep — run an experiment grid (graph family × P × fork policy × "
      "touch rule × cache geometry × seeds) concurrently and emit the "
      "aggregated deviation / additional-miss / steal measures");
  auto& families = args.add_string(
      "families", "fig2,fig4,fig6a,forkjoin,pipeline",
      "comma-separated construction names (" + known_families() + ")");
  auto& size = args.add_int("size", 6, "primary size parameter, all families");
  auto& size2 = args.add_int("size2", 4, "secondary size parameter");
  auto& graph_seed = args.add_int("graph-seed", 1,
                                  "generation seed for random families");
  auto& procs = args.add_string("procs", "1,2,4,8",
                                "comma-separated processor counts");
  auto& policies = args.add_string("policies",
                                   "future-first,parent-first",
                                   "comma-separated fork policies");
  auto& touch = args.add_string("touch", "touch-first",
                                "comma-separated touch-enable rules "
                                "(touch-first, continuation-first)");
  auto& cache = args.add_string("cache-lines", "0,8,16",
                                "comma-separated cache lines per processor "
                                "(0 = no cache simulation)");
  auto& cache_policy = args.add_string("cache-policy", "lru",
                                       "lru | fifo | direct | assocW");
  auto& stall = args.add_double("stall", 0.2, "stall probability per round");
  auto& seeds = args.add_int("seeds", 4, "schedule-seed replicates per cell");
  auto& seed_base = args.add_int("seed-base", 1, "first replicate seed");
  auto& threads = args.add_int("threads", 0,
                               "worker threads (0 = hardware concurrency)");
  auto& format = args.add_string("format", "table", "table | csv | json");
  auto& out = args.add_string("out", "",
                              "write the rendered output to this file "
                              "instead of stdout");
  auto& smoke = args.add_bool(
      "smoke", false,
      "fast CI grid: tiny fig2/fig4 graphs, full P × policy × touch × cache "
      "axes, 2 seeds (overrides the grid flags)");
  if (!args.parse(argc, argv)) return 0;

  try {
    exp::SweepSpec spec;
    graphs::RegistryParams params;
    params.size = static_cast<std::uint32_t>(size.value);
    params.size2 = static_cast<std::uint32_t>(size2.value);
    params.seed = static_cast<std::uint64_t>(graph_seed.value);
    if (smoke.value) {
      params.size = 4;
      params.size2 = 3;
      for (const char* family : {"fig2", "fig4"})
        spec.graphs.push_back({family, params});
      spec.procs = {1, 2, 4, 8, 16};
      spec.policies = {core::ForkPolicy::FutureFirst,
                       core::ForkPolicy::ParentFirst};
      spec.touch_enables = {sched::TouchEnable::TouchFirst,
                            sched::TouchEnable::ContinuationFirst};
      spec.cache_lines = {0, 4, 8};
      spec.seeds = 2;
    } else {
      for (const std::string& family : split_list(families.value))
        spec.graphs.push_back({family, params});
      spec.procs = split_numbers<std::uint32_t>(procs.value);
      spec.policies.clear();
      for (const std::string& p : split_list(policies.value))
        spec.policies.push_back(core::fork_policy_from_string(p));
      spec.touch_enables.clear();
      for (const std::string& t : split_list(touch.value))
        spec.touch_enables.push_back(sched::touch_enable_from_string(t));
      spec.cache_lines = split_numbers<std::size_t>(cache.value);
      spec.seeds = static_cast<std::uint64_t>(seeds.value);
    }
    spec.cache_policy = cache_policy.value;
    spec.stall_prob = stall.value;
    spec.seed_base = static_cast<std::uint64_t>(seed_base.value);

    const auto t0 = std::chrono::steady_clock::now();
    const auto result =
        exp::run_sweep(spec, static_cast<unsigned>(threads.value));
    const auto elapsed_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - t0)
            .count();

    const auto table = exp::to_table(result);
    std::string rendered;
    if (format.value == "csv") {
      rendered = table.to_csv();
    } else if (format.value == "json") {
      rendered = table.to_json();
    } else {
      WSF_REQUIRE(format.value == "table",
                  "unknown --format '" << format.value
                                       << "' (table | csv | json)");
      rendered = table.to_string();
    }

    if (out.value.empty()) {
      std::fputs(rendered.c_str(), stdout);
    } else {
      std::ofstream file(out.value);
      WSF_REQUIRE(file.good(), "cannot open '" << out.value << "'");
      file << rendered;
      WSF_REQUIRE(file.good(), "write to '" << out.value << "' failed");
    }
    std::fprintf(stderr,
                 "wsf-sweep: %zu configurations x %llu seeds in %lld ms%s%s\n",
                 result.rows.size(),
                 static_cast<unsigned long long>(result.seeds),
                 static_cast<long long>(elapsed_ms),
                 out.value.empty() ? "" : " -> ", out.value.c_str());
  } catch (const CheckError& e) {
    std::fprintf(stderr, "wsf-sweep: %s\n", e.what());
    return 1;
  }
  return 0;
}
