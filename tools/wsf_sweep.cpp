// wsf-sweep — run a whole experiment grid (the paper's figure/theorem
// tables) in one command, concurrently, and emit an aligned table, CSV, or
// JSON. Every cell is reproducible: it is the mean over --seeds replicates
// of run_experiment() with seeds --seed-base, --seed-base+1, …, so any row
// can be re-derived with sim_explorer or a single-run harness.
//
// Sweeps are restartable and distributable: --checkpoint appends finished
// configurations to a CSV as they complete (a killed run resumes by
// re-executing only the missing ones), --shard k/n runs a deterministic
// 1-of-n slice of the grid on this machine, and --merge reassembles shard
// checkpoints into output byte-identical to a single-process run.
//
//   ./build/tools/wsf-sweep                                  # default grid
//   ./build/tools/wsf-sweep --smoke --format=csv --out=smoke.csv   # CI
//   ./build/tools/wsf-sweep --families=fig2:4:6:8,fig4 --procs=1,2,4,8
//       --policies=future-first,parent-first --cache-lines=0,16 --seeds=8
//   ./build/tools/wsf-sweep --shard=0/2 --checkpoint=shard0.ckpt ...
//   ./build/tools/wsf-sweep --merge=shard0.ckpt,shard1.ckpt --format=csv
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/backend.hpp"
#include "exp/checkpoint.hpp"
#include "exp/sweep.hpp"
#include "graphs/registry.hpp"
#include "support/check.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

using namespace wsf;

namespace {

std::vector<std::string> split_on(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string item;
  for (const char ch : s) {
    if (ch == sep) {
      if (!item.empty()) out.push_back(item);
      item.clear();
    } else {
      item += ch;
    }
  }
  if (!item.empty()) out.push_back(item);
  return out;
}

std::vector<std::string> split_list(const std::string& s) {
  std::vector<std::string> out = split_on(s, ',');
  WSF_REQUIRE(!out.empty(), "empty comma-separated list '" << s << "'");
  return out;
}

template <typename T>
T parse_number(const std::string& item) {
  WSF_REQUIRE(!item.empty() &&
                  item.find_first_not_of("0123456789") == std::string::npos,
              "expected a number, got '" << item << "'");
  unsigned long long v = 0;
  try {
    v = std::stoull(item);
  } catch (const std::out_of_range&) {
    WSF_REQUIRE(false, "number out of range: '" << item << "'");
  }
  if constexpr (std::numeric_limits<T>::max() <
                std::numeric_limits<unsigned long long>::max()) {
    WSF_REQUIRE(v <= std::numeric_limits<T>::max(),
                "number out of range: '" << item << "'");
  }
  return static_cast<T>(v);
}

template <typename T>
std::vector<T> split_numbers(const std::string& s) {
  std::vector<T> out;
  for (const std::string& item : split_list(s))
    out.push_back(parse_number<T>(item));
  return out;
}

/// One --families item: "name" (sizes from --size) or "name:s1:s2:…"
/// (a per-family size axis).
exp::GraphAxis parse_family(const std::string& item,
                            const graphs::RegistryParams& defaults) {
  const std::vector<std::string> parts = split_on(item, ':');
  WSF_REQUIRE(!parts.empty(), "empty family entry in --families");
  exp::GraphAxis axis{parts[0], defaults, {}};
  for (std::size_t i = 1; i < parts.size(); ++i)
    axis.sizes.push_back(parse_number<std::uint32_t>(parts[i]));
  return axis;
}

exp::SweepShard parse_shard(const std::string& s) {
  const std::vector<std::string> parts = split_on(s, '/');
  WSF_REQUIRE(parts.size() == 2,
              "--shard must be k/n (e.g. 0/2), got '" << s << "'");
  exp::SweepShard shard;
  shard.index = parse_number<std::uint32_t>(parts[0]);
  shard.count = parse_number<std::uint32_t>(parts[1]);
  WSF_REQUIRE(shard.count >= 1 && shard.index < shard.count,
              "--shard index must be in [0, count), got '" << s << "'");
  return shard;
}

std::string known_families() {
  std::string all;
  for (const auto& name : graphs::registry_names())
    all += (all.empty() ? "" : ", ") + name;
  return all;
}

void write_rendered(const std::string& rendered, const std::string& path) {
  if (path.empty()) {
    std::fputs(rendered.c_str(), stdout);
    return;
  }
  std::ofstream file(path);
  WSF_REQUIRE(file.good(), "cannot open '" << path << "'");
  file << rendered;
  WSF_REQUIRE(file.good(), "write to '" << path << "' failed");
}

std::string render(const support::Table& table, const std::string& format) {
  if (format == "csv") return table.to_csv();
  if (format == "json") return table.to_json();
  WSF_REQUIRE(format == "table",
              "unknown --format '" << format << "' (table | csv | json)");
  return table.to_string();
}

}  // namespace

int main(int argc, char** argv) {
  support::ArgParser args(
      "wsf-sweep — run an experiment grid (graph family × P × fork policy × "
      "touch rule × cache geometry × seeds) concurrently and emit the "
      "aggregated deviation / additional-miss / steal measures");
  auto& backend = args.add_string(
      "backend", "sim",
      "execution engine: sim (deterministic ABP simulator), runtime (the "
      "real fiber work-stealing scheduler), or both (the whole grid on "
      "each, told apart by the backend column); runtime configurations "
      "spawn their own P worker threads, so consider a small --threads "
      "value when sweeping large P on the runtime");
  auto& families = args.add_string(
      "families", "fig2,fig4,fig6a,forkjoin,pipeline",
      "comma-separated construction names (" + known_families() +
          "); append :s1:s2:… for a per-family size axis, e.g. fig2:4:6:8");
  auto& size = args.add_int("size", 6,
                            "primary size parameter for families without "
                            "their own :size list");
  auto& size2 = args.add_int("size2", 4, "secondary size parameter");
  auto& graph_seed = args.add_int("graph-seed", 1,
                                  "generation seed for random families");
  auto& procs = args.add_string("procs", "1,2,4,8",
                                "comma-separated processor counts");
  auto& policies = args.add_string("policies",
                                   "future-first,parent-first",
                                   "comma-separated fork policies");
  auto& touch = args.add_string("touch", "touch-first",
                                "comma-separated touch-enable rules "
                                "(touch-first, continuation-first)");
  auto& cache = args.add_string("cache-lines", "0,8,16",
                                "comma-separated cache lines per processor "
                                "(0 = no cache simulation)");
  auto& layout = args.add_string(
      "layout", "construction",
      "comma-separated node memory-layout orders (construction, dfs, "
      "sequential, random): each graph is relabeled into the order before "
      "anything runs, making node layout an experimental axis with its own "
      "identity column; applies to --smoke too");
  auto& steal = args.add_string(
      "steal", "one",
      "comma-separated steal-amount policies (one, half): how much a thief "
      "claims per successful steal, with its own identity column; applies "
      "to --smoke too");
  auto& victim = args.add_string(
      "victim", "uniform",
      "comma-separated victim-selection policies (uniform, last-victim, "
      "nearest); applies to --smoke too");
  auto& cache_policy = args.add_string("cache-policy", "lru",
                                       "lru | fifo | direct | assocW");
  auto& stall = args.add_double("stall", 0.2, "stall probability per round");
  auto& seeds = args.add_int("seeds", 4, "schedule-seed replicates per cell");
  auto& seed_base = args.add_int("seed-base", 1, "first replicate seed");
  auto& threads = args.add_int("threads", 0,
                               "worker threads (0 = hardware concurrency)");
  auto& shard = args.add_string("shard", "0/1",
                                "run only slice k of n of the grid (k/n); "
                                "configs are assigned round-robin, so shard "
                                "CSVs merge back into the single-run result");
  auto& checkpoint = args.add_string(
      "checkpoint", "",
      "append finished configurations to this CSV and resume from it: a "
      "killed run re-executes only the missing configs");
  auto& merge = args.add_string(
      "merge", "",
      "comma-separated shard checkpoint files to merge into one result "
      "(runs nothing and ignores the grid flags; output is byte-identical "
      "to an unsharded run)");
  auto& format = args.add_string("format", "table", "table | csv | json");
  auto& out = args.add_string("out", "",
                              "write the rendered output to this file "
                              "instead of stdout");
  auto& progress = args.add_bool(
      "progress", false,
      "print a done/total + ETA heartbeat line to stderr after each "
      "finished configuration");
  auto& smoke = args.add_bool(
      "smoke", false,
      "fast CI grid: tiny fig2/fig4 graphs, full P × policy × touch × cache "
      "axes, 2 seeds (overrides the grid flags)");
  // Flag parsing must not escape main: an uncaught CheckError (e.g.
  // --threads=abc) would terminate with SIGABRT and no usable diagnostic.
  try {
    if (!args.parse(argc, argv)) return 0;
  } catch (const CheckError& e) {
    std::fprintf(stderr, "wsf-sweep: %s\n", e.what());
    return 2;
  }

  try {
    if (!merge.value.empty()) {
      // Merge mode reads finished checkpoints; flags describing a run
      // would be silently meaningless, so reject the conflicting ones.
      WSF_REQUIRE(checkpoint.value.empty(),
                  "--merge and --checkpoint cannot be combined (merge "
                  "reads shard checkpoints and runs nothing)");
      WSF_REQUIRE(shard.value == "0/1",
                  "--merge and --shard cannot be combined");
      std::vector<exp::Checkpoint> shards;
      for (const std::string& path : split_list(merge.value))
        shards.push_back(exp::load_checkpoint(path));
      const support::Table merged = exp::merge_checkpoints(shards);
      write_rendered(render(merged, format.value), out.value);
      std::fprintf(stderr, "wsf-sweep: merged %zu shard checkpoints, %zu "
                           "configurations%s%s\n",
                   shards.size(), merged.num_rows(),
                   out.value.empty() ? "" : " -> ", out.value.c_str());
      return 0;
    }

    exp::SweepSpec spec;
    graphs::RegistryParams params;
    params.size = static_cast<std::uint32_t>(size.value);
    params.size2 = static_cast<std::uint32_t>(size2.value);
    params.seed = static_cast<std::uint64_t>(graph_seed.value);
    if (smoke.value) {
      spec = exp::smoke_spec();
    } else {
      for (const std::string& family : split_list(families.value))
        spec.graphs.push_back(parse_family(family, params));
      spec.procs = split_numbers<std::uint32_t>(procs.value);
      spec.policies.clear();
      for (const std::string& p : split_list(policies.value))
        spec.policies.push_back(core::fork_policy_from_string(p));
      spec.touch_enables.clear();
      for (const std::string& t : split_list(touch.value))
        spec.touch_enables.push_back(sched::touch_enable_from_string(t));
      spec.cache_lines = split_numbers<std::size_t>(cache.value);
      spec.seeds = static_cast<std::uint64_t>(seeds.value);
    }
    // Like --backend, --layout applies on top of --smoke so CI can run the
    // smoke grid under every layout order.
    spec.layouts.clear();
    for (const std::string& l : split_list(layout.value))
      spec.layouts.push_back(core::node_order_from_string(l));
    // The steal axes apply on top of --smoke too, mirroring --layout.
    spec.steal_policies.clear();
    for (const std::string& s : split_list(steal.value))
      spec.steal_policies.push_back(core::steal_policy_from_string(s));
    spec.victim_policies.clear();
    for (const std::string& v : split_list(victim.value))
      spec.victim_policies.push_back(core::victim_policy_from_string(v));
    spec.cache_policy = cache_policy.value;
    spec.stall_prob = stall.value;
    spec.seed_base = static_cast<std::uint64_t>(seed_base.value);
    // --backend applies to --smoke too: the CI runtime job runs the same
    // smoke grid on the real scheduler.
    if (backend.value == "both") {
      spec.backends = {exp::BackendKind::Sim, exp::BackendKind::Runtime};
    } else {
      WSF_REQUIRE(backend.value == "sim" || backend.value == "simulator" ||
                      backend.value == "runtime" || backend.value == "rt",
                  "unknown --backend '" << backend.value
                                        << "' (sim | runtime | both)");
      spec.backends = {exp::backend_from_string(backend.value)};
    }

    exp::SweepTableOptions run_opts;
    run_opts.threads = static_cast<unsigned>(threads.value);
    run_opts.shard = parse_shard(shard.value);
    run_opts.checkpoint_path = checkpoint.value;
    if (progress.value) run_opts.progress = &std::cerr;

    const auto t0 = std::chrono::steady_clock::now();
    const support::Table table = exp::run_sweep_table(spec, run_opts);
    const auto elapsed_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - t0)
            .count();

    write_rendered(render(table, format.value), out.value);
    std::fprintf(
        stderr,
        "wsf-sweep: %zu configurations (shard %s) x %llu seeds in %lld "
        "ms%s%s\n",
        table.num_rows(), shard.value.c_str(),
        static_cast<unsigned long long>(spec.seeds),
        static_cast<long long>(elapsed_ms), out.value.empty() ? "" : " -> ",
        out.value.c_str());
  } catch (const CheckError& e) {
    std::fprintf(stderr, "wsf-sweep: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "wsf-sweep: %s\n", e.what());
    return 1;
  }
  return 0;
}
