// wsf-load — sustained-load harness for the scheduler-as-a-service path.
//
// Drives a stream of graph-replay jobs through ONE long-lived
// runtime::Scheduler from several submitter threads, using batched
// admission (runtime::Batch) and per-job completion handles, and reports
// service-side measures: throughput (jobs/sec), the admission-to-completion
// latency distribution (mean/p50/p95/p99/max), and steady-state fiber-stack
// accounting — after the warmup jobs, a healthy service creates zero new
// fiber stacks (every job runs on recycled ones), which --strict turns
// into a nonzero exit for CI.
//
// Job mixes are deliberately unbalanced (the testpools-style shape):
//   uniform      every job is the same medium fork-join DAG
//   skewed       90% tiny fig2 jobs + 10% heavy fork-join jobs (heavy
//                tail: slots 0, 10, 20, … of the stream)
//   touch-heavy  alternating fig4 / fig2 jobs — many touch edges, so the
//                load is parks/wakes rather than spawns
//
//   ./build/tools/wsf-load --mix=skewed --jobs=12000 --warmup=1000 --strict
//   ./build/tools/wsf-load --mix=uniform --workers=2 --submitters=4
//   ./build/tools/wsf-load --mix=touch-heavy --baseline --format=csv
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <exception>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "graphs/registry.hpp"
#include "runtime/pool.hpp"
#include "runtime/replay.hpp"
#include "sched/options.hpp"
#include "support/check.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

using namespace wsf;

namespace {

struct MixKind {
  std::string family;
  graphs::RegistryParams params;
};

struct LoadConfig {
  std::string mix_name;
  std::vector<MixKind> kinds;
  /// kind index for the i-th job of the stream (the skew pattern).
  std::size_t (*kind_of)(std::uint64_t slot) = nullptr;
  std::uint32_t workers = 0;
  runtime::SpawnPolicy policy = runtime::SpawnPolicy::FutureFirst;
  sched::TouchEnable touch_enable = sched::TouchEnable::TouchFirst;
  std::uint64_t jobs = 10000;
  std::uint64_t warmup = 1000;
  std::uint64_t batch = 16;
  std::uint32_t submitters = 2;
};

struct LoadStats {
  std::uint64_t jobs = 0;
  std::uint64_t wall_us = 0;
  double jobs_per_sec = 0;
  double mean_us = 0;
  std::uint64_t p50_us = 0;
  std::uint64_t p95_us = 0;
  std::uint64_t p99_us = 0;
  std::uint64_t max_us = 0;
  /// Fiber stacks created during the measured phase (0 at steady state).
  std::uint64_t steady_fibers_created = 0;
  std::uint64_t fibers_created_total = 0;
  std::uint64_t stacks_reused = 0;
  std::uint64_t steals = 0;
  std::uint64_t migrations = 0;
};

std::size_t kind_uniform(std::uint64_t) { return 0; }
std::size_t kind_skewed(std::uint64_t slot) { return slot % 10 == 0 ? 1 : 0; }
std::size_t kind_alternate(std::uint64_t slot) { return slot % 2; }

LoadConfig make_mix(const std::string& name) {
  LoadConfig cfg;
  cfg.mix_name = name;
  if (name == "uniform") {
    cfg.kinds = {{"forkjoin", {.size = 5, .size2 = 3}}};
    cfg.kind_of = kind_uniform;
  } else if (name == "skewed") {
    // The testpools shape: a stream of tiny jobs with a 10% heavy tail
    // (~20x the nodes), so a worker that grabs a heavy job forces the
    // others to drain the tiny ones around it.
    cfg.kinds = {{"fig2", {.size = 3}},
                 {"forkjoin", {.size = 7, .size2 = 3}}};
    cfg.kind_of = kind_skewed;
  } else if (name == "touch-heavy") {
    cfg.kinds = {{"fig4", {.size = 6}}, {"fig2", {.size = 6}}};
    cfg.kind_of = kind_alternate;
  } else {
    WSF_REQUIRE(false, "unknown --mix '" << name
                                         << "' (uniform | skewed | "
                                            "touch-heavy)");
  }
  return cfg;
}

/// One submitter thread: pulls batch-sized job ranges off the shared
/// cursor, stages each job's replay into a runtime::Batch (one admission
/// per batch), then collects the handles and records per-job latency.
/// Replayer arenas are per (batch slot, kind) and reused across batches,
/// so a submitter's steady state allocates nothing graph-sized.
void submitter_loop(runtime::Scheduler& sched, const LoadConfig& cfg,
                    const std::vector<graphs::GeneratedDag>& dags,
                    std::atomic<std::uint64_t>& cursor, std::uint64_t limit,
                    std::vector<std::uint64_t>* latencies) {
  std::vector<std::vector<std::unique_ptr<runtime::GraphReplayer>>> arenas(
      cfg.batch);
  for (auto& per_kind : arenas)
    for (const auto& dag : dags)
      per_kind.push_back(
          std::make_unique<runtime::GraphReplayer>(dag.graph));
  runtime::ReplayOptions opts;
  opts.touch_enable = cfg.touch_enable;
  opts.job_counters = false;  // per-job baselines would allocate per job

  while (true) {
    const std::uint64_t start = cursor.fetch_add(cfg.batch);
    if (start >= limit) break;
    const std::uint64_t n = std::min(cfg.batch, limit - start);
    runtime::Batch batch(sched);
    for (std::uint64_t i = 0; i < n; ++i)
      arenas[i][cfg.kind_of(start + i)]->stage(batch, opts);
    sched.submit(std::move(batch));
    for (std::uint64_t i = 0; i < n; ++i) {
      const runtime::ReplayResult r =
          arenas[i][cfg.kind_of(start + i)]->collect();
      if (latencies) (*latencies)[start + i] = r.wall_us;
    }
  }
}

void run_phase(runtime::Scheduler& sched, const LoadConfig& cfg,
               const std::vector<graphs::GeneratedDag>& dags,
               std::uint64_t total_jobs,
               std::vector<std::uint64_t>* latencies) {
  std::atomic<std::uint64_t> cursor{0};
  std::vector<std::thread> submitters;
  submitters.reserve(cfg.submitters);
  for (std::uint32_t s = 0; s < cfg.submitters; ++s)
    submitters.emplace_back([&] {
      submitter_loop(sched, cfg, dags, cursor, total_jobs, latencies);
    });
  for (auto& t : submitters) t.join();
  sched.drain();
}

LoadStats run_load(const LoadConfig& cfg) {
  std::vector<graphs::GeneratedDag> dags;
  for (const MixKind& kind : cfg.kinds)
    dags.push_back(graphs::make_named(kind.family, kind.params));

  runtime::RuntimeOptions opts;
  opts.workers = cfg.workers;
  opts.policy = cfg.policy;
  // Replay bodies are flat loops; a small stack keeps the pooled set cheap.
  opts.stack_bytes = 128 * 1024;
  runtime::Scheduler sched(opts);

  // Warmup: same submitters, same batches, same mix — its purpose is to
  // reach the service's peak concurrent-fiber demand so the measured phase
  // runs entirely on recycled stacks. Peak demand is stochastic (it
  // depends on how parks and steals interleave), so warm until a full
  // round creates no new stack, then pre-provision a slack margin that
  // absorbs both per-worker local caches and scheduling variance.
  std::uint64_t created = sched.counters().total().fibers_created;
  for (int round = 0; round < 8; ++round) {
    run_phase(sched, cfg, dags, cfg.warmup, nullptr);
    const std::uint64_t now = sched.counters().total().fibers_created;
    if (now == created && round > 0) break;
    created = now;
  }
  sched.prewarm(2 * sched.num_workers() + 32);
  const runtime::WorkerCounters before = sched.counters().total();

  std::vector<std::uint64_t> latencies(cfg.jobs, 0);
  const auto t0 = std::chrono::steady_clock::now();
  run_phase(sched, cfg, dags, cfg.jobs, &latencies);
  const auto wall = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - t0);
  const runtime::WorkerCounters after = sched.counters().total();
  const runtime::WorkerCounters delta = runtime::counters_since(after, before);

  LoadStats stats;
  stats.jobs = cfg.jobs;
  stats.wall_us = static_cast<std::uint64_t>(wall.count());
  stats.jobs_per_sec = stats.wall_us == 0
                           ? 0
                           : 1e6 * static_cast<double>(cfg.jobs) /
                                 static_cast<double>(stats.wall_us);
  double sum = 0;
  for (const std::uint64_t us : latencies) sum += static_cast<double>(us);
  stats.mean_us = sum / static_cast<double>(latencies.size());
  std::sort(latencies.begin(), latencies.end());
  auto pct = [&](double q) {
    const std::size_t n = latencies.size();
    std::size_t i = static_cast<std::size_t>(q * static_cast<double>(n));
    if (i >= n) i = n - 1;
    return latencies[i];
  };
  stats.p50_us = pct(0.50);
  stats.p95_us = pct(0.95);
  stats.p99_us = pct(0.99);
  stats.max_us = latencies.back();
  stats.steady_fibers_created = delta.fibers_created;
  stats.fibers_created_total = after.fibers_created;
  stats.stacks_reused = delta.stacks_reused;
  stats.steals = delta.steals;
  stats.migrations = delta.migrations;
  return stats;
}

void write_rendered(const std::string& rendered, const std::string& path) {
  if (path.empty()) {
    std::fputs(rendered.c_str(), stdout);
    return;
  }
  std::ofstream file(path);
  WSF_REQUIRE(file.good(), "cannot open '" << path << "'");
  file << rendered;
  WSF_REQUIRE(file.good(), "write to '" << path << "' failed");
}

}  // namespace

int main(int argc, char** argv) {
  support::ArgParser args(
      "wsf-load — sustained-load harness: streams batched graph-replay "
      "jobs through one long-lived scheduler from several submitter "
      "threads and reports jobs/sec, latency percentiles, and steady-state "
      "fiber-stack accounting");
  auto& workers = args.add_int("workers", 0,
                               "worker threads (0 = hardware concurrency)");
  auto& policy = args.add_string("policy", "future-first",
                                 "fork policy (future-first | parent-first)");
  auto& touch = args.add_string("touch", "touch-first",
                                "touch-enable rule (touch-first | "
                                "continuation-first)");
  auto& mix = args.add_string("mix", "skewed",
                              "job mix: uniform | skewed (90% tiny + 10% "
                              "heavy) | touch-heavy");
  auto& jobs = args.add_int("jobs", 10000, "measured jobs");
  auto& warmup = args.add_int("warmup", 1000,
                              "warmup jobs before measuring (fills the "
                              "fiber-stack pool)");
  auto& batch = args.add_int("batch", 16, "jobs admitted per batch");
  auto& submitters = args.add_int("submitters", 2,
                                  "concurrent submitter threads");
  auto& baseline = args.add_bool(
      "baseline", false,
      "also run the measured jobs on a 1-worker, 1-submitter scheduler "
      "and report the throughput speedup");
  auto& strict = args.add_bool(
      "strict", false,
      "exit nonzero if the measured phase created any fiber stack "
      "(steady state must run entirely on recycled stacks)");
  auto& format = args.add_string("format", "table", "table | csv | json");
  auto& out = args.add_string("out", "",
                              "write the rendered output to this file "
                              "instead of stdout");

  // Flag parsing must not escape main: an uncaught CheckError (e.g.
  // --workers=abc) would terminate with SIGABRT and no usable diagnostic.
  try {
    if (!args.parse(argc, argv)) return 0;
  } catch (const CheckError& e) {
    std::fprintf(stderr, "wsf-load: %s\n", e.what());
    return 2;
  }

  try {
    LoadConfig cfg = make_mix(mix.value);
    cfg.workers = static_cast<std::uint32_t>(workers.value);
    WSF_REQUIRE(policy.value == "future-first" ||
                    policy.value == "parent-first",
                "unknown --policy '" << policy.value
                                     << "' (future-first | parent-first)");
    cfg.policy = policy.value == "future-first"
                     ? runtime::SpawnPolicy::FutureFirst
                     : runtime::SpawnPolicy::ParentFirst;
    cfg.touch_enable = sched::touch_enable_from_string(touch.value);
    WSF_REQUIRE(jobs.value > 0, "--jobs must be positive");
    WSF_REQUIRE(batch.value > 0, "--batch must be positive");
    WSF_REQUIRE(submitters.value > 0, "--submitters must be positive");
    cfg.jobs = static_cast<std::uint64_t>(jobs.value);
    cfg.warmup = static_cast<std::uint64_t>(warmup.value);
    cfg.batch = static_cast<std::uint64_t>(batch.value);
    cfg.submitters = static_cast<std::uint32_t>(submitters.value);

    const LoadStats stats = run_load(cfg);

    LoadStats base;
    if (baseline.value) {
      LoadConfig base_cfg = cfg;
      base_cfg.workers = 1;
      base_cfg.submitters = 1;
      base = run_load(base_cfg);
    }

    std::vector<std::string> headers = {
        "mix",         "workers",     "policy",
        "touch",       "jobs",        "batch",
        "submitters",  "wall_ms",     "jobs_per_sec",
        "mean_us",     "p50_us",      "p95_us",
        "p99_us",      "max_us",      "steady_fibers_created",
        "stacks_reused", "steals",    "migrations"};
    if (baseline.value) {
      headers.push_back("baseline_jobs_per_sec");
      headers.push_back("speedup");
    }
    support::Table table(headers);
    table.row()
        .add(cfg.mix_name)
        .add(cfg.workers == 0 ? std::thread::hardware_concurrency()
                              : cfg.workers)
        .add(runtime::to_string(cfg.policy))
        .add(sched::to_string(cfg.touch_enable))
        .add(stats.jobs)
        .add(cfg.batch)
        .add(cfg.submitters)
        .add(static_cast<double>(stats.wall_us) / 1000.0)
        .add(stats.jobs_per_sec)
        .add(stats.mean_us)
        .add(stats.p50_us)
        .add(stats.p95_us)
        .add(stats.p99_us)
        .add(stats.max_us)
        .add(stats.steady_fibers_created)
        .add(stats.stacks_reused)
        .add(stats.steals)
        .add(stats.migrations);
    if (baseline.value) {
      table.add(base.jobs_per_sec);
      table.add(base.jobs_per_sec == 0
                    ? 0.0
                    : stats.jobs_per_sec / base.jobs_per_sec);
    }
    WSF_REQUIRE(format.value == "table" || format.value == "csv" ||
                    format.value == "json",
                "unknown --format '" << format.value
                                     << "' (table | csv | json)");
    write_rendered(format.value == "csv"    ? table.to_csv()
                   : format.value == "json" ? table.to_json()
                                            : table.to_string(),
                   out.value);
    std::fprintf(stderr,
                 "wsf-load: %llu jobs (%s mix) at %.0f jobs/sec, p99 %llu "
                 "us, %llu steady-state fiber stacks created%s%s\n",
                 static_cast<unsigned long long>(stats.jobs),
                 cfg.mix_name.c_str(), stats.jobs_per_sec,
                 static_cast<unsigned long long>(stats.p99_us),
                 static_cast<unsigned long long>(stats.steady_fibers_created),
                 out.value.empty() ? "" : " -> ", out.value.c_str());
    if (strict.value && stats.steady_fibers_created != 0) {
      std::fprintf(stderr,
                   "wsf-load: --strict: measured phase created %llu fiber "
                   "stacks (expected 0 at steady state)\n",
                   static_cast<unsigned long long>(
                       stats.steady_fibers_created));
      return 3;
    }
  } catch (const CheckError& e) {
    std::fprintf(stderr, "wsf-load: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "wsf-load: %s\n", e.what());
    return 1;
  }
  return 0;
}
