// wsf-load — sustained-load harness for the scheduler-as-a-service path.
//
// Drives a stream of graph-replay jobs through ONE long-lived
// runtime::Scheduler from several submitter threads, using batched
// admission (runtime::Batch) and per-job completion handles, and reports
// service-side measures: throughput (jobs/sec), the admission-to-completion
// latency distribution (mean/p50/p95/p99/max, nearest-rank percentiles),
// the queue-time split (admission→first-run percentiles), admission
// accounting (submitted/completed/rejected/shed/blocked), and steady-state
// fiber-stack accounting — after the warmup jobs, a healthy service creates
// zero new fiber stacks (every job runs on recycled ones), which --strict
// turns into a nonzero exit for CI.
//
// Backpressure knobs exercise the bounded-admission path:
//   --inbox-cap=N        bound the scheduler inbox (0 = unbounded)
//   --admit=block|reject|timeout   what a submitter does when it is full
//   --offered-rate=R     open-loop pacing: offer R jobs/sec instead of
//                        closed-loop as-fast-as-possible
//   --deadline=D         per-job deadline (us); expired queued jobs are
//                        shed at take-time and reported as shed
//   --expect-overload    exit nonzero unless the run actually shed or
//                        rejected work (guards overload smokes in CI)
// Every run self-checks the admission identities:
//   completed + shed + rejected == jobs offered
//   admitted == completed + shed     (scheduler admission stats)
//
// Job mixes are deliberately unbalanced (the testpools-style shape):
//   uniform      every job is the same medium fork-join DAG
//   skewed       90% tiny fig2 jobs + 10% heavy fork-join jobs (heavy
//                tail: slots 0, 10, 20, … of the stream)
//   touch-heavy  alternating fig4 / fig2 jobs — many touch edges, so the
//                load is parks/wakes rather than spawns
//   steal-heavy  every job is a deep fork-join tree with unit leaves —
//                maximal fan-out per node of work, so throughput is
//                steal-path-bound (the --steal/--victim policy testbed)
//
//   ./build/tools/wsf-load --mix=skewed --jobs=12000 --warmup=1000 --strict
//   ./build/tools/wsf-load --mix=uniform --workers=2 --submitters=4
//   ./build/tools/wsf-load --inbox-cap=64 --admit=reject
//       --offered-rate=50000 --deadline=2000 --expect-overload
//   ./build/tools/wsf-load --sweep --sweep-workers=1,2,4
//       --sweep-batches=4,16,64 --format=csv   # latency-vs-throughput grid
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/policy.hpp"
#include "graphs/registry.hpp"
#include "runtime/pool.hpp"
#include "runtime/replay.hpp"
#include "sched/options.hpp"
#include "support/check.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

using namespace wsf;

namespace {

struct MixKind {
  std::string family;
  graphs::RegistryParams params;
};

struct LoadConfig {
  std::string mix_name;
  std::vector<MixKind> kinds;
  /// kind index for the i-th job of the stream (the skew pattern).
  std::size_t (*kind_of)(std::uint64_t slot) = nullptr;
  std::uint32_t workers = 0;
  runtime::SpawnPolicy policy = runtime::SpawnPolicy::FutureFirst;
  core::StealPolicy steal = core::StealPolicy::One;
  core::VictimPolicy victim = core::VictimPolicy::Uniform;
  sched::TouchEnable touch_enable = sched::TouchEnable::TouchFirst;
  std::uint64_t jobs = 10000;
  std::uint64_t warmup = 1000;
  std::uint64_t batch = 16;
  std::uint32_t submitters = 2;
  /// Scheduler inbox capacity; 0 = unbounded (no backpressure).
  std::uint64_t inbox_cap = 0;
  /// Full-inbox behavior for the measured phase.
  runtime::SubmitPolicy admit = runtime::SubmitPolicy::Block;
  /// Bound for --admit=timeout, microseconds.
  std::uint64_t admit_timeout_us = 1000;
  /// Open-loop offered rate, jobs/sec; 0 = closed loop.
  double offered_rate = 0;
  /// Per-job deadline, microseconds; 0 = none.
  std::uint64_t deadline_us = 0;
  /// Failed-admission retries per batch (0 = give up immediately): after a
  /// Rejected/Timeout submission the submitter backs off (capped
  /// exponential) and re-offers the same staged batch up to this many
  /// times.
  std::uint64_t retry = 0;
};

struct LoadStats {
  std::uint64_t jobs = 0;  ///< jobs offered (the --jobs stream length)
  std::uint64_t wall_us = 0;
  double jobs_per_sec = 0;  ///< *completed* jobs per second
  double mean_us = 0;
  std::uint64_t p50_us = 0;
  std::uint64_t p95_us = 0;
  std::uint64_t p99_us = 0;
  std::uint64_t max_us = 0;
  /// Queue-time (admission→first-run) percentiles over completed jobs —
  /// where overload shows up; service time is p*_us minus this component.
  std::uint64_t queue_p50_us = 0;
  std::uint64_t queue_p99_us = 0;
  // Admission accounting for the measured phase.
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  /// Failed admission: Reject fast-fails plus Timeout expiries.
  std::uint64_t rejected = 0;
  /// Admitted but deadline-expired before starting (never ran).
  std::uint64_t shed = 0;
  /// Jobs re-offered after a failed admission (--retry; one batch retry of
  /// n jobs counts n). submitted == jobs + retries by identity.
  std::uint64_t retries = 0;
  /// Jobs dropped after the whole --retry budget failed (== rejected, the
  /// terminal tally; reconciled against the scheduler's rejected/timed_out
  /// admission stats).
  std::uint64_t gave_up = 0;
  /// Submitter wall time spent blocked waiting for inbox space, ms.
  double blocked_ms = 0;
  /// Fiber stacks created during the measured phase (0 at steady state).
  std::uint64_t steady_fibers_created = 0;
  std::uint64_t fibers_created_total = 0;
  std::uint64_t stacks_reused = 0;
  std::uint64_t steals = 0;
  std::uint64_t migrations = 0;
  std::uint64_t batch_steals = 0;
  std::uint64_t batch_stolen_items = 0;
  std::uint64_t steal_backoffs = 0;
};

std::size_t kind_uniform(std::uint64_t) { return 0; }
std::size_t kind_skewed(std::uint64_t slot) { return slot % 10 == 0 ? 1 : 0; }
std::size_t kind_alternate(std::uint64_t slot) { return slot % 2; }

LoadConfig make_mix(const std::string& name) {
  LoadConfig cfg;
  cfg.mix_name = name;
  if (name == "uniform") {
    cfg.kinds = {{"forkjoin", {.size = 5, .size2 = 3}}};
    cfg.kind_of = kind_uniform;
  } else if (name == "skewed") {
    // The testpools shape: a stream of tiny jobs with a 10% heavy tail
    // (~20x the nodes), so a worker that grabs a heavy job forces the
    // others to drain the tiny ones around it.
    cfg.kinds = {{"fig2", {.size = 3}},
                 {"forkjoin", {.size = 7, .size2 = 3}}};
    cfg.kind_of = kind_skewed;
  } else if (name == "touch-heavy") {
    cfg.kinds = {{"fig4", {.size = 6}}, {"fig2", {.size = 6}}};
    cfg.kind_of = kind_alternate;
  } else if (name == "steal-heavy") {
    // Depth-7 perfect fork-join tree with unit-work leaves: 127 forks and
    // almost nothing else per job, so the deques churn and the workers
    // live in the steal path — the mix where steal/victim policy choices
    // actually move throughput.
    cfg.kinds = {{"forkjoin", {.size = 7, .size2 = 1}}};
    cfg.kind_of = kind_uniform;
  } else {
    WSF_REQUIRE(false, "unknown --mix '" << name
                                         << "' (uniform | skewed | "
                                            "touch-heavy | steal-heavy)");
  }
  return cfg;
}

/// Latency slot value for jobs that never completed (rejected/shed) — they
/// carry no service latency and are excluded from the percentile stats.
constexpr std::uint64_t kNoLatency = ~std::uint64_t{0};

/// Per-phase admission outcome tallies, accumulated by the submitters.
struct PhaseCounts {
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> shed{0};
  std::atomic<std::uint64_t> rejected{0};
  std::atomic<std::uint64_t> retries{0};
  std::atomic<std::uint64_t> gave_up{0};
};

/// One submitter thread: pulls batch-sized job ranges off the shared
/// cursor, stages each job's replay into a runtime::Batch (one admission
/// per batch), then collects the handles and records per-job latency and
/// queue time. Replayer arenas are per (batch slot, kind) and reused
/// across batches, so a submitter's steady state allocates nothing
/// graph-sized. Under --offered-rate the submitter paces admissions
/// open-loop: batch `start` is offered at t0 + start/rate, regardless of
/// how far completion has fallen behind — the pattern that actually
/// overloads a service.
void submitter_loop(runtime::Scheduler& sched, const LoadConfig& cfg,
                    const std::vector<graphs::GeneratedDag>& dags,
                    std::atomic<std::uint64_t>& cursor, std::uint64_t limit,
                    std::chrono::steady_clock::time_point t0,
                    PhaseCounts& counts,
                    std::vector<std::uint64_t>* latencies,
                    std::vector<std::uint64_t>* queues) {
  std::vector<std::vector<std::unique_ptr<runtime::GraphReplayer>>> arenas(
      cfg.batch);
  for (auto& per_kind : arenas)
    for (const auto& dag : dags)
      per_kind.push_back(
          std::make_unique<runtime::GraphReplayer>(dag.graph));
  runtime::ReplayOptions opts;
  opts.touch_enable = cfg.touch_enable;
  opts.job_counters = false;  // per-job baselines would allocate per job
  opts.deadline = std::chrono::microseconds(cfg.deadline_us);
  runtime::AdmitOptions admit_opts;
  admit_opts.policy = cfg.admit;
  admit_opts.timeout = std::chrono::microseconds(cfg.admit_timeout_us);

  while (true) {
    const std::uint64_t start = cursor.fetch_add(cfg.batch);
    if (start >= limit) break;
    const std::uint64_t n = std::min(cfg.batch, limit - start);
    if (cfg.offered_rate > 0) {
      std::this_thread::sleep_until(
          t0 + std::chrono::microseconds(static_cast<std::uint64_t>(
                   1e6 * static_cast<double>(start) / cfg.offered_rate)));
    }
    bool admitted = true;
    {
      runtime::Batch batch(sched);
      for (std::uint64_t i = 0; i < n; ++i)
        arenas[i][cfg.kind_of(start + i)]->stage(batch, opts);
      // A failed try_submit leaves the staged batch intact, so --retry can
      // re-offer the same jobs after a capped-exponential backoff (the
      // client-side twin of the workers' failed-steal backoff).
      std::uint64_t attempts = 0;
      std::uint64_t backoff_us = 0;
      constexpr std::uint64_t kRetryStartUs = 50;
      constexpr std::uint64_t kRetryCapUs = 2000;
      for (;;) {
        admitted = sched.try_submit(batch, admit_opts) ==
                   runtime::SubmitStatus::Admitted;
        if (admitted || attempts >= cfg.retry) break;
        ++attempts;
        counts.retries.fetch_add(n, std::memory_order_relaxed);
        backoff_us = backoff_us == 0 ? kRetryStartUs
                                     : std::min(backoff_us * 2, kRetryCapUs);
        std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
      }
      // A still-unadmitted batch is dropped here (scope exit): its jobs
      // resolve as Abandoned, which collect() below reports without
      // running anything.
    }
    if (!admitted) {
      counts.rejected.fetch_add(n, std::memory_order_relaxed);
      counts.gave_up.fetch_add(n, std::memory_order_relaxed);
    }
    for (std::uint64_t i = 0; i < n; ++i) {
      const runtime::ReplayResult r =
          arenas[i][cfg.kind_of(start + i)]->collect();
      switch (r.outcome) {
        case runtime::JobOutcome::Completed:
          counts.completed.fetch_add(1, std::memory_order_relaxed);
          if (latencies) (*latencies)[start + i] = r.wall_us;
          if (queues) (*queues)[start + i] = r.queue_us;
          break;
        case runtime::JobOutcome::Shed:
          counts.shed.fetch_add(1, std::memory_order_relaxed);
          break;
        default:  // Abandoned — already tallied as rejected above
          break;
      }
    }
  }
}

void run_phase(runtime::Scheduler& sched, const LoadConfig& cfg,
               const std::vector<graphs::GeneratedDag>& dags,
               std::uint64_t total_jobs, PhaseCounts& counts,
               std::vector<std::uint64_t>* latencies,
               std::vector<std::uint64_t>* queues) {
  std::atomic<std::uint64_t> cursor{0};
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> submitters;
  submitters.reserve(cfg.submitters);
  for (std::uint32_t s = 0; s < cfg.submitters; ++s)
    submitters.emplace_back([&] {
      submitter_loop(sched, cfg, dags, cursor, total_jobs, t0, counts,
                     latencies, queues);
    });
  for (auto& t : submitters) t.join();
  sched.drain();
}

/// Nearest-rank percentile over the first `n` entries of a sorted vector:
/// rank = ceil(q*n), 1-based. (The previous floor(q*n) index was one rank
/// high for every non-integral q*n — e.g. p50 of 4 samples read sorted[2],
/// the 3rd value, instead of the 2nd.)
std::uint64_t pct(const std::vector<std::uint64_t>& sorted, std::size_t n,
                  double q) {
  if (n == 0) return 0;
  auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(n)));
  if (rank < 1) rank = 1;
  if (rank > n) rank = n;
  return sorted[rank - 1];
}

LoadStats run_load(const LoadConfig& cfg) {
  std::vector<graphs::GeneratedDag> dags;
  for (const MixKind& kind : cfg.kinds)
    dags.push_back(graphs::make_named(kind.family, kind.params));

  runtime::RuntimeOptions opts;
  opts.workers = cfg.workers;
  opts.policy = cfg.policy;
  opts.steal = cfg.steal;
  opts.victim = cfg.victim;
  // Replay bodies are flat loops; a small stack keeps the pooled set cheap.
  opts.stack_bytes = 128 * 1024;
  opts.inbox_capacity = cfg.inbox_cap;
  runtime::Scheduler sched(opts);

  // Warmup: same submitters, same batches, same mix — its purpose is to
  // reach the service's peak concurrent-fiber demand so the measured phase
  // runs entirely on recycled stacks. Runs closed-loop with blocking
  // admission and no deadlines whatever the measured phase uses: shedding
  // or rejecting warmup jobs would leave the stack pool cold. Peak demand
  // is stochastic (it depends on how parks and steals interleave), so warm
  // until a full round creates no new stack, then pre-provision a slack
  // margin that absorbs both per-worker local caches and scheduling
  // variance.
  LoadConfig warm_cfg = cfg;
  warm_cfg.admit = runtime::SubmitPolicy::Block;
  warm_cfg.offered_rate = 0;
  warm_cfg.deadline_us = 0;
  warm_cfg.retry = 0;  // blocking admission never fails, nothing to retry
  std::uint64_t created = sched.counters().total().fibers_created;
  for (int round = 0; round < 8; ++round) {
    PhaseCounts warm_counts;
    run_phase(sched, warm_cfg, dags, cfg.warmup, warm_counts, nullptr,
              nullptr);
    const std::uint64_t now = sched.counters().total().fibers_created;
    if (now == created && round > 0) break;
    created = now;
  }
  sched.prewarm(2 * sched.num_workers() + 32);
  const runtime::WorkerCounters before = sched.counters().total();
  const runtime::AdmissionStats adm_before = sched.admission();

  std::vector<std::uint64_t> latencies(cfg.jobs, kNoLatency);
  std::vector<std::uint64_t> queues(cfg.jobs, kNoLatency);
  PhaseCounts counts;
  const auto t0 = std::chrono::steady_clock::now();
  run_phase(sched, cfg, dags, cfg.jobs, counts, &latencies, &queues);
  const auto wall = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - t0);
  const runtime::WorkerCounters after = sched.counters().total();
  const runtime::WorkerCounters delta = runtime::counters_since(after, before);
  const runtime::AdmissionStats adm_after = sched.admission();

  LoadStats stats;
  stats.jobs = cfg.jobs;
  stats.completed = counts.completed.load();
  stats.shed = counts.shed.load();
  stats.rejected = counts.rejected.load();
  stats.retries = counts.retries.load();
  stats.gave_up = counts.gave_up.load();
  stats.submitted = adm_after.submitted - adm_before.submitted;
  stats.blocked_ms =
      static_cast<double>(adm_after.blocked_us - adm_before.blocked_us) /
      1000.0;

  // The run validates its own books before reporting: every offered job
  // ended exactly one way, and the scheduler's view agrees with the
  // tool's. (`shed` additionally cross-checks the worker-side counter.)
  WSF_CHECK(stats.completed + stats.shed + stats.rejected == cfg.jobs,
            "admission accounting leak: " << stats.completed << " completed + "
                                          << stats.shed << " shed + "
                                          << stats.rejected << " rejected != "
                                          << cfg.jobs << " offered");
  WSF_CHECK(stats.submitted == cfg.jobs + stats.retries,
            "scheduler saw " << stats.submitted << " submissions for "
                             << cfg.jobs << " offered + " << stats.retries
                             << " retried jobs");
  // Every failed submission attempt the scheduler recorded was either
  // retried or terminally given up on by a submitter — the retry loop's
  // books against the scheduler's.
  WSF_CHECK((adm_after.rejected - adm_before.rejected) +
                    (adm_after.timed_out - adm_before.timed_out) ==
                stats.retries + stats.gave_up,
            "failed-admission accounting leak: scheduler rejected/timed out "
                << (adm_after.rejected - adm_before.rejected) << "/"
                << (adm_after.timed_out - adm_before.timed_out)
                << " submissions, submitters retried " << stats.retries
                << " and gave up on " << stats.gave_up);
  WSF_CHECK(stats.shed == delta.shed,
            "tool observed " << stats.shed << " shed jobs but workers shed "
                             << delta.shed);
  WSF_CHECK((adm_after.admitted - adm_before.admitted) ==
                stats.completed + stats.shed,
            "admitted != completed + shed: "
                << (adm_after.admitted - adm_before.admitted) << " vs "
                << stats.completed << " + " << stats.shed);

  stats.wall_us = static_cast<std::uint64_t>(wall.count());
  stats.jobs_per_sec = stats.wall_us == 0
                           ? 0
                           : 1e6 * static_cast<double>(stats.completed) /
                                 static_cast<double>(stats.wall_us);
  // Latency stats cover completed jobs only (kNoLatency sentinels sort to
  // the back); a fully-shed run reports zeros rather than reading past the
  // data.
  std::sort(latencies.begin(), latencies.end());
  std::sort(queues.begin(), queues.end());
  const auto n_done = static_cast<std::size_t>(stats.completed);
  double sum = 0;
  for (std::size_t i = 0; i < n_done; ++i)
    sum += static_cast<double>(latencies[i]);
  stats.mean_us = n_done == 0 ? 0 : sum / static_cast<double>(n_done);
  stats.p50_us = pct(latencies, n_done, 0.50);
  stats.p95_us = pct(latencies, n_done, 0.95);
  stats.p99_us = pct(latencies, n_done, 0.99);
  stats.max_us = n_done == 0 ? 0 : latencies[n_done - 1];
  stats.queue_p50_us = pct(queues, n_done, 0.50);
  stats.queue_p99_us = pct(queues, n_done, 0.99);
  stats.steady_fibers_created = delta.fibers_created;
  stats.fibers_created_total = after.fibers_created;
  stats.stacks_reused = delta.stacks_reused;
  stats.steals = delta.steals;
  stats.migrations = delta.migrations;
  stats.batch_steals = delta.batch_steals;
  stats.batch_stolen_items = delta.batch_stolen_items;
  stats.steal_backoffs = delta.steal_backoffs;
  return stats;
}

std::uint32_t resolved_workers(const LoadConfig& cfg) {
  return cfg.workers == 0 ? std::thread::hardware_concurrency()
                          : cfg.workers;
}

void add_stat_columns(support::Table& table, const LoadConfig& cfg,
                      const LoadStats& stats) {
  table.add(cfg.mix_name)
      .add(resolved_workers(cfg))
      .add(runtime::to_string(cfg.policy))
      .add(core::to_string(cfg.steal))
      .add(core::to_string(cfg.victim))
      .add(sched::to_string(cfg.touch_enable))
      .add(stats.jobs)
      .add(cfg.batch)
      .add(cfg.submitters)
      .add(cfg.inbox_cap)
      .add(runtime::to_string(cfg.admit))
      .add(cfg.offered_rate)
      .add(cfg.deadline_us)
      .add(static_cast<double>(stats.wall_us) / 1000.0)
      .add(stats.jobs_per_sec)
      .add(stats.mean_us)
      .add(stats.p50_us)
      .add(stats.p95_us)
      .add(stats.p99_us)
      .add(stats.max_us)
      .add(stats.queue_p50_us)
      .add(stats.queue_p99_us)
      .add(stats.submitted)
      .add(stats.completed)
      .add(stats.rejected)
      .add(stats.retries)
      .add(stats.gave_up)
      .add(stats.shed)
      .add(stats.blocked_ms)
      .add(stats.steady_fibers_created)
      .add(stats.stacks_reused)
      .add(stats.steals)
      .add(stats.migrations)
      .add(stats.batch_steals)
      .add(stats.batch_stolen_items)
      .add(stats.steal_backoffs);
}

const std::vector<std::string> kStatHeaders = {
    "mix",          "workers",      "policy",
    "steal",        "victim",
    "touch",        "jobs",         "batch",
    "submitters",   "inbox_cap",    "admit",
    "offered_rate", "deadline_us",  "wall_ms",
    "jobs_per_sec", "mean_us",      "p50_us",
    "p95_us",       "p99_us",       "max_us",
    "queue_p50_us", "queue_p99_us", "submitted",
    "completed",    "rejected",     "retries",
    "gave_up",      "shed",
    "blocked_ms",   "steady_fibers_created",
    "stacks_reused", "steals",      "migrations",
    "batch_steals", "batch_stolen_items", "steal_backoffs"};

void write_rendered(const std::string& rendered, const std::string& path) {
  if (path.empty()) {
    std::fputs(rendered.c_str(), stdout);
    return;
  }
  std::ofstream file(path);
  WSF_REQUIRE(file.good(), "cannot open '" << path << "'");
  file << rendered;
  WSF_REQUIRE(file.good(), "write to '" << path << "' failed");
}

/// Parses "1,2,4" into positive integers.
std::vector<std::uint64_t> parse_list(const std::string& flag,
                                      const std::string& value) {
  std::vector<std::uint64_t> out;
  std::size_t pos = 0;
  while (pos <= value.size()) {
    const std::size_t comma = std::min(value.find(',', pos), value.size());
    const std::string item = value.substr(pos, comma - pos);
    char* end = nullptr;
    const unsigned long long v = std::strtoull(item.c_str(), &end, 10);
    WSF_REQUIRE(!item.empty() && end && *end == '\0' && v > 0,
                "--" << flag << ": bad list entry '" << item
                     << "' (positive integers, comma-separated)");
    out.push_back(v);
    pos = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  support::ArgParser args(
      "wsf-load — sustained-load harness: streams batched graph-replay "
      "jobs through one long-lived scheduler from several submitter "
      "threads and reports jobs/sec, latency percentiles (with the "
      "queue/service split), admission accounting under backpressure "
      "(--inbox-cap/--admit/--offered-rate/--deadline), and steady-state "
      "fiber-stack accounting");
  auto& workers = args.add_int("workers", 0,
                               "worker threads (0 = hardware concurrency)");
  auto& policy = args.add_string("policy", "future-first",
                                 "fork policy (future-first | parent-first)");
  auto& steal = args.add_string("steal", "one",
                                "steal-amount policy (one | half): how much "
                                "a thief claims per successful steal");
  auto& victim = args.add_string("victim", "uniform",
                                 "victim-selection policy (uniform | "
                                 "last-victim | nearest)");
  auto& touch = args.add_string("touch", "touch-first",
                                "touch-enable rule (touch-first | "
                                "continuation-first)");
  auto& mix = args.add_string("mix", "skewed",
                              "job mix: uniform | skewed (90% tiny + 10% "
                              "heavy) | touch-heavy | steal-heavy");
  auto& jobs = args.add_int("jobs", 10000, "measured jobs");
  auto& warmup = args.add_int("warmup", 1000,
                              "warmup jobs before measuring (fills the "
                              "fiber-stack pool)");
  auto& batch = args.add_int("batch", 16, "jobs admitted per batch");
  auto& submitters = args.add_int("submitters", 2,
                                  "concurrent submitter threads");
  auto& inbox_cap = args.add_int("inbox-cap", 0,
                                 "scheduler inbox capacity in jobs "
                                 "(0 = unbounded, no backpressure)");
  auto& admit = args.add_string(
      "admit", "block",
      "full-inbox policy: block | reject | timeout (--policy stays the "
      "fork policy)");
  auto& admit_timeout = args.add_int("admit-timeout", 1000,
                                     "bound for --admit=timeout, us");
  auto& offered_rate = args.add_double(
      "offered-rate", 0,
      "open-loop offered load, jobs/sec (0 = closed loop); rates above "
      "sustainable throughput overload the service");
  auto& deadline = args.add_int(
      "deadline", 0,
      "per-job deadline in us (0 = none); jobs still queued past it are "
      "shed");
  auto& retry = args.add_int(
      "retry", 0,
      "re-offer a Rejected/Timeout batch up to N times with capped "
      "exponential backoff before giving it up (reported as "
      "retries/gave_up)");
  auto& expect_overload = args.add_bool(
      "expect-overload", false,
      "exit nonzero unless the run shed or rejected at least one job "
      "(for CI overload smokes)");
  auto& sweep = args.add_bool(
      "sweep", false,
      "run the full --sweep-workers x --sweep-batches grid and emit one "
      "row per cell with a leading 'family' column (for wsf-plot)");
  auto& sweep_workers = args.add_string(
      "sweep-workers", "1,2,4", "comma-separated worker counts for --sweep");
  auto& sweep_batches = args.add_string(
      "sweep-batches", "4,16,64", "comma-separated batch sizes for --sweep");
  auto& baseline = args.add_bool(
      "baseline", false,
      "also run the measured jobs on a 1-worker, 1-submitter scheduler "
      "and report the throughput speedup");
  auto& strict = args.add_bool(
      "strict", false,
      "exit nonzero if the measured phase created any fiber stack "
      "(steady state must run entirely on recycled stacks)");
  auto& format = args.add_string("format", "table", "table | csv | json");
  auto& out = args.add_string("out", "",
                              "write the rendered output to this file "
                              "instead of stdout");

  // Argument handling must not escape main: an uncaught CheckError (e.g.
  // --workers=abc or --jobs=0) would terminate with SIGABRT and no usable
  // diagnostic. Exit 2 = bad invocation, per the tools' convention.
  LoadConfig cfg;
  std::vector<std::uint64_t> grid_workers, grid_batches;
  try {
    if (!args.parse(argc, argv)) return 0;
    cfg = make_mix(mix.value);
    cfg.workers = static_cast<std::uint32_t>(workers.value);
    WSF_REQUIRE(policy.value == "future-first" ||
                    policy.value == "parent-first",
                "unknown --policy '" << policy.value
                                     << "' (future-first | parent-first)");
    cfg.policy = policy.value == "future-first"
                     ? runtime::SpawnPolicy::FutureFirst
                     : runtime::SpawnPolicy::ParentFirst;
    cfg.steal = core::steal_policy_from_string(steal.value);
    cfg.victim = core::victim_policy_from_string(victim.value);
    cfg.touch_enable = sched::touch_enable_from_string(touch.value);
    WSF_REQUIRE(jobs.value > 0, "--jobs must be positive");
    WSF_REQUIRE(warmup.value > 0, "--warmup must be positive");
    WSF_REQUIRE(batch.value > 0, "--batch must be positive");
    WSF_REQUIRE(submitters.value > 0, "--submitters must be positive");
    WSF_REQUIRE(inbox_cap.value >= 0, "--inbox-cap must be >= 0");
    WSF_REQUIRE(admit_timeout.value > 0, "--admit-timeout must be positive");
    WSF_REQUIRE(offered_rate.value >= 0, "--offered-rate must be >= 0");
    WSF_REQUIRE(deadline.value >= 0, "--deadline must be >= 0");
    WSF_REQUIRE(admit.value == "block" || admit.value == "reject" ||
                    admit.value == "timeout",
                "unknown --admit '" << admit.value
                                    << "' (block | reject | timeout)");
    cfg.jobs = static_cast<std::uint64_t>(jobs.value);
    cfg.warmup = static_cast<std::uint64_t>(warmup.value);
    cfg.batch = static_cast<std::uint64_t>(batch.value);
    cfg.submitters = static_cast<std::uint32_t>(submitters.value);
    cfg.inbox_cap = static_cast<std::uint64_t>(inbox_cap.value);
    cfg.admit = admit.value == "reject"    ? runtime::SubmitPolicy::Reject
                : admit.value == "timeout" ? runtime::SubmitPolicy::Timeout
                                           : runtime::SubmitPolicy::Block;
    cfg.admit_timeout_us = static_cast<std::uint64_t>(admit_timeout.value);
    cfg.offered_rate = offered_rate.value;
    cfg.deadline_us = static_cast<std::uint64_t>(deadline.value);
    WSF_REQUIRE(retry.value >= 0, "--retry must be >= 0");
    cfg.retry = static_cast<std::uint64_t>(retry.value);
    // A Block/Timeout batch larger than the inbox can never be admitted —
    // the scheduler refuses it, so refuse the invocation up front.
    WSF_REQUIRE(cfg.inbox_cap == 0 ||
                    cfg.admit == runtime::SubmitPolicy::Reject ||
                    cfg.batch <= cfg.inbox_cap,
                "--batch (" << cfg.batch << ") exceeds --inbox-cap ("
                            << cfg.inbox_cap
                            << "); blocking admission would deadlock");
    WSF_REQUIRE(format.value == "table" || format.value == "csv" ||
                    format.value == "json",
                "unknown --format '" << format.value
                                     << "' (table | csv | json)");
    if (sweep.value) {
      grid_workers = parse_list("sweep-workers", sweep_workers.value);
      grid_batches = parse_list("sweep-batches", sweep_batches.value);
      WSF_REQUIRE(!baseline.value, "--baseline does not combine with --sweep");
      // Same up-front refusal as the scalar --batch check, for every cell
      // of the grid.
      for (const std::uint64_t b : grid_batches)
        WSF_REQUIRE(cfg.inbox_cap == 0 ||
                        cfg.admit == runtime::SubmitPolicy::Reject ||
                        b <= cfg.inbox_cap,
                    "--sweep-batches cell ("
                        << b << ") exceeds --inbox-cap (" << cfg.inbox_cap
                        << "); blocking admission would deadlock");
    }
  } catch (const CheckError& e) {
    std::fprintf(stderr, "wsf-load: %s\n", e.what());
    return 2;
  }

  try {
    if (sweep.value) {
      // Latency-vs-throughput grid: one full load run per (workers, batch)
      // cell, same mix/admission config throughout. The leading 'family'
      // column makes the CSV a wsf-plot input:
      //   wsf-plot --in=<csv> --families=backpressure --x=jobs_per_sec
      //     --measure=p99_us --series=workers
      std::vector<std::string> headers = {"family"};
      headers.insert(headers.end(), kStatHeaders.begin(), kStatHeaders.end());
      support::Table table(headers);
      for (const std::uint64_t w : grid_workers) {
        for (const std::uint64_t b : grid_batches) {
          LoadConfig cell = cfg;
          cell.workers = static_cast<std::uint32_t>(w);
          cell.batch = b;
          const LoadStats stats = run_load(cell);
          table.row().add("backpressure");
          add_stat_columns(table, cell, stats);
          std::fprintf(stderr,
                       "wsf-load: sweep workers=%llu batch=%llu: %.0f "
                       "jobs/sec, p99 %llu us (queue %llu us)\n",
                       static_cast<unsigned long long>(w),
                       static_cast<unsigned long long>(b), stats.jobs_per_sec,
                       static_cast<unsigned long long>(stats.p99_us),
                       static_cast<unsigned long long>(stats.queue_p99_us));
        }
      }
      write_rendered(format.value == "csv"    ? table.to_csv()
                     : format.value == "json" ? table.to_json()
                                              : table.to_string(),
                     out.value);
      return 0;
    }

    const LoadStats stats = run_load(cfg);

    LoadStats base;
    if (baseline.value) {
      LoadConfig base_cfg = cfg;
      base_cfg.workers = 1;
      base_cfg.submitters = 1;
      base = run_load(base_cfg);
    }

    std::vector<std::string> headers = kStatHeaders;
    if (baseline.value) {
      headers.push_back("baseline_jobs_per_sec");
      headers.push_back("speedup");
    }
    support::Table table(headers);
    table.row();
    add_stat_columns(table, cfg, stats);
    if (baseline.value) {
      table.add(base.jobs_per_sec);
      table.add(base.jobs_per_sec == 0
                    ? 0.0
                    : stats.jobs_per_sec / base.jobs_per_sec);
    }
    write_rendered(format.value == "csv"    ? table.to_csv()
                   : format.value == "json" ? table.to_json()
                                            : table.to_string(),
                   out.value);
    std::fprintf(
        stderr,
        "wsf-load: %llu jobs (%s mix) at %.0f jobs/sec, p99 %llu us "
        "(queue %llu us), %llu rejected, %llu shed, %llu steady-state "
        "fiber stacks created%s%s\n",
        static_cast<unsigned long long>(stats.jobs), cfg.mix_name.c_str(),
        stats.jobs_per_sec, static_cast<unsigned long long>(stats.p99_us),
        static_cast<unsigned long long>(stats.queue_p99_us),
        static_cast<unsigned long long>(stats.rejected),
        static_cast<unsigned long long>(stats.shed),
        static_cast<unsigned long long>(stats.steady_fibers_created),
        out.value.empty() ? "" : " -> ", out.value.c_str());
    if (strict.value && stats.steady_fibers_created != 0) {
      std::fprintf(stderr,
                   "wsf-load: --strict: measured phase created %llu fiber "
                   "stacks (expected 0 at steady state)\n",
                   static_cast<unsigned long long>(
                       stats.steady_fibers_created));
      return 3;
    }
    if (expect_overload.value && stats.rejected + stats.shed == 0) {
      std::fprintf(stderr,
                   "wsf-load: --expect-overload: run completed every job "
                   "(no shedding or rejection happened)\n");
      return 4;
    }
  } catch (const CheckError& e) {
    std::fprintf(stderr, "wsf-load: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "wsf-load: %s\n", e.what());
    return 1;
  }
  return 0;
}
