// wsf-perf-diff — gate a fresh benchmark result against a checked-in
// snapshot (bench/snapshots/BENCH_*.json), the CI perf-trajectory step.
//
// Rows are matched by position and must agree on every identity column
// (family, P, workers, mix, …) exactly — a changed grid is a different
// benchmark, not a regression. Known throughput columns (jobs_per_sec,
// configs_per_sec) may drop and known latency columns (p99_us) may rise by
// at most --tolerance before the diff fails; explicitly ignored columns
// (wall_ms, p50/p95, …) are machine-noise and not gated. Deterministic
// measure columns fall under the exact identity rule by default, so a
// schedule-structure change (steal counts drifting) fails even when the
// machine got faster.
//
//   ./build/tools/wsf-perf-diff --tolerance=0.15
//       --baseline=bench/snapshots/BENCH_wsf_load_smoke.json
//       --current=load-fresh.json
#include <cmath>
#include <cstdio>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "support/check.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

using namespace wsf;

namespace {

std::vector<std::string> split_list(const std::string& s) {
  std::vector<std::string> out;
  std::string item;
  for (const char ch : s) {
    if (ch == ',') {
      if (!item.empty()) out.push_back(item);
      item.clear();
    } else {
      item += ch;
    }
  }
  if (!item.empty()) out.push_back(item);
  return out;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  WSF_REQUIRE(in.good(), "cannot read '" << path << "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

support::Table load_table(const std::string& path) {
  const std::string text = slurp(path);
  const std::size_t first = text.find_first_not_of(" \t\r\n");
  WSF_REQUIRE(first != std::string::npos, "'" << path << "' is empty");
  return text[first] == '[' ? support::Table::from_json(text)
                            : support::Table::from_csv(text);
}

bool contains(const std::vector<std::string>& names,
              const std::string& name) {
  for (const std::string& n : names)
    if (n == name) return true;
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  support::ArgParser args(
      "wsf-perf-diff — compare a fresh benchmark JSON/CSV against a "
      "checked-in snapshot: identity and deterministic columns must match "
      "exactly, throughput/latency columns within --tolerance");
  auto& baseline = args.add_string("baseline", "",
                                   "snapshot file (JSON or CSV)");
  auto& current = args.add_string("current", "",
                                  "fresh result file (JSON or CSV)");
  auto& tolerance = args.add_double(
      "tolerance", 0.15,
      "allowed fractional regression on the gated perf columns (0.15 = "
      "fail when throughput drops, or latency rises, by more than 15%)");
  auto& higher = args.add_string(
      "higher-better", "jobs_per_sec,configs_per_sec",
      "comma-separated throughput columns: fail when current < baseline * "
      "(1 - tolerance)");
  auto& lower = args.add_string(
      "lower-better", "p99_us",
      "comma-separated latency columns: fail when current > baseline * "
      "(1 + tolerance)");
  auto& ignore = args.add_string(
      "ignore",
      "wall_ms,mean_us,p50_us,p95_us,max_us,elapsed_ms,latency_us,"
      "queue_p50_us,queue_p99_us,blocked_ms,"
      "steals,migrations,stacks_reused,steady_fibers_created,"
      "batch_steals,batch_stolen_items,steal_backoffs",
      "comma-separated columns excluded from the diff entirely (noisy "
      "machine-dependent wall times and scheduling-dependent runtime "
      "counters; wsf-load --strict gates steady-state allocations itself)");
  try {
    if (!args.parse(argc, argv)) return 0;
  } catch (const CheckError& e) {
    std::fprintf(stderr, "wsf-perf-diff: %s\n", e.what());
    return 2;
  }

  try {
    WSF_REQUIRE(!baseline.value.empty() && !current.value.empty(),
                "--baseline and --current are both required");
    WSF_REQUIRE(tolerance.value >= 0.0, "--tolerance must be >= 0");
    const support::Table base = load_table(baseline.value);
    const support::Table cur = load_table(current.value);
    const std::vector<std::string> higher_cols = split_list(higher.value);
    const std::vector<std::string> lower_cols = split_list(lower.value);
    const std::vector<std::string> ignore_cols = split_list(ignore.value);

    WSF_REQUIRE(base.headers() == cur.headers(),
                "column sets differ between '" << baseline.value
                    << "' and '" << current.value
                    << "' — re-capture the snapshot if the benchmark "
                    << "format changed");
    WSF_REQUIRE(base.num_rows() == cur.num_rows(),
                "row counts differ: " << base.num_rows() << " vs "
                                      << cur.num_rows()
                                      << " — different benchmark grids");
    WSF_REQUIRE(base.num_rows() > 0, "snapshot has no rows");

    std::size_t failures = 0;
    std::size_t gated = 0;
    for (std::size_t c = 0; c < base.headers().size(); ++c) {
      const std::string& name = base.headers()[c];
      if (contains(ignore_cols, name)) continue;
      const bool is_higher = contains(higher_cols, name);
      const bool is_lower = contains(lower_cols, name);
      for (std::size_t r = 0; r < base.num_rows(); ++r) {
        const std::string& want = base.cell(r, c);
        const std::string& got = cur.cell(r, c);
        if (!is_higher && !is_lower) {
          // Identity / deterministic column: exact.
          if (want != got) {
            ++failures;
            std::fprintf(stderr,
                         "FAIL row %zu %s: '%s' != snapshot '%s' "
                         "(deterministic column)\n",
                         r, name.c_str(), got.c_str(), want.c_str());
          }
          continue;
        }
        ++gated;
        double b = 0.0, v = 0.0;
        WSF_REQUIRE(support::cell_to_number(want, &b) &&
                        support::cell_to_number(got, &v) &&
                        std::isfinite(b) && std::isfinite(v),
                    "row " << r << " column '" << name
                           << "': non-numeric perf cell ('" << want
                           << "' vs '" << got << "')");
        const double change = b != 0.0 ? (v - b) / b : 0.0;
        const bool regressed = is_higher ? change < -tolerance.value
                                         : change > tolerance.value;
        std::fprintf(stderr, "%s row %zu %-16s %12.4f -> %12.4f (%+.1f%%)\n",
                     regressed ? "FAIL" : "  ok", r, name.c_str(), b, v,
                     100.0 * change);
        if (regressed) ++failures;
      }
    }
    WSF_REQUIRE(gated > 0,
                "no gated perf columns found — check --higher-better/"
                "--lower-better against the snapshot's columns");
    if (failures) {
      std::fprintf(stderr,
                   "wsf-perf-diff: %zu regression(s) beyond %.0f%% vs %s\n",
                   failures, 100.0 * tolerance.value,
                   baseline.value.c_str());
      return 1;
    }
    std::fprintf(stderr, "wsf-perf-diff: OK — within %.0f%% of %s\n",
                 100.0 * tolerance.value, baseline.value.c_str());
  } catch (const CheckError& e) {
    std::fprintf(stderr, "wsf-perf-diff: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "wsf-perf-diff: %s\n", e.what());
    return 2;
  }
  return 0;
}
