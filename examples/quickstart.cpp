// Quickstart: spawn futures on the work-stealing runtime, touch them, and
// read the schedule counters. Build & run:
//   cmake -B build -S . && cmake --build build -j
//   ./build/examples/quickstart
#include <cstdio>

#include "runtime/pool.hpp"

namespace rt = wsf::runtime;

namespace {

std::uint64_t fib(std::uint64_t n) {
  if (n < 2) return n;
  if (n < 12) return fib(n - 1) + fib(n - 2);  // serial cutoff
  // Spawn fib(n-1) as a future (the paper's recommended future-first policy
  // runs it immediately and leaves our continuation stealable), compute
  // fib(n-2) ourselves, then touch.
  auto left = rt::spawn([n] { return fib(n - 1); });
  const std::uint64_t right = fib(n - 2);
  return left.touch() + right;
}

}  // namespace

int main() {
  rt::RuntimeOptions opts;
  opts.workers = 4;
  opts.policy = rt::SpawnPolicy::FutureFirst;
  rt::Scheduler sched(opts);

  const std::uint64_t result = sched.run([] { return fib(26); });
  std::printf("fib(26) = %llu\n", static_cast<unsigned long long>(result));

  // Software schedule counters — the quantities the paper reasons about.
  std::printf("counters: %s\n", sched.counters().to_string().c_str());

  // The runtime enforces the single-touch discipline (Definition 2):
  try {
    sched.run([] {
      auto f = rt::spawn([] { return 1; });
      (void)f.touch();
      return f.touch();  // second touch → error
    });
  } catch (const wsf::CheckError& e) {
    std::printf("single-touch enforcement works: %s\n", e.what());
  }
  return 0;
}
