// Figure 5(a): a thread creates a batch of futures, stores them in a
// priority queue, and touches them in priority order — legal under the
// paper's structured single-touch discipline, impossible in pure fork-join
// (which forces reverse-creation order).
#include <cstdio>
#include <queue>
#include <string>
#include <vector>

#include "runtime/pool.hpp"

namespace rt = wsf::runtime;

namespace {

struct Work {
  int priority;
  rt::Future<std::string> result;
};

struct ByPriority {
  bool operator()(const Work& a, const Work& b) const {
    return a.priority < b.priority;  // max-heap
  }
};

}  // namespace

int main() {
  rt::Scheduler sched({.workers = 4});
  const std::string log = sched.run([] {
    // Create futures in one order...
    std::priority_queue<Work, std::vector<Work>, ByPriority> queue;
    const int priorities[] = {2, 9, 4, 7, 1, 8};
    for (int p : priorities) {
      queue.push(Work{p, rt::spawn([p] {
                        return "job" + std::to_string(p);
                      })});
    }
    // ...and touch them in priority order (not creation order).
    std::string order;
    while (!queue.empty()) {
      // priority_queue::top is const; move out via const_cast-free pattern.
      Work w = std::move(const_cast<Work&>(queue.top()));
      queue.pop();
      order += w.result.touch() + " ";
    }
    return order;
  });
  std::printf("touched in priority order: %s\n", log.c_str());
  std::printf("(fork-join would only allow reverse creation order: "
              "job8 job1 job7 job4 job9 job2)\n");
  return 0;
}
