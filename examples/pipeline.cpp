// Local-touch pipeline on the real runtime (Definition 3 / Section 6.1;
// Blelloch & Reid-Miller's pipelining-with-futures): each stage is a future
// thread producing a stream of per-item futures that only its parent stage
// touches. Here: a 3-stage text pipeline (generate → transform → reduce).
#include <cstdio>
#include <vector>

#include "runtime/pool.hpp"

namespace rt = wsf::runtime;

namespace {

constexpr int kItems = 64;

/// Stage 2 (innermost producer): generate the raw items.
std::vector<rt::Future<int>> stage_generate() {
  std::vector<rt::Future<int>> out;
  out.reserve(kItems);
  for (int i = 0; i < kItems; ++i)
    out.push_back(rt::spawn([i] { return i * i; }));
  return out;
}

/// Stage 1: transform each item; touches stage 2's futures (its child's),
/// producing its own futures for stage 0.
std::vector<rt::Future<int>> stage_transform() {
  auto upstream = stage_generate();
  std::vector<rt::Future<int>> out;
  out.reserve(kItems);
  for (auto& item : upstream) {
    // Local touch: this thread created `upstream`, this thread consumes it.
    const int v = item.touch();
    out.push_back(rt::spawn([v] { return v + 1; }));
  }
  return out;
}

}  // namespace

int main() {
  rt::RuntimeOptions opts;
  opts.workers = 4;
  opts.policy = rt::SpawnPolicy::FutureFirst;  // the paper's recommendation
  rt::Scheduler sched(opts);

  const long total = sched.run([] {
    auto items = stage_transform();
    long sum = 0;
    for (auto& f : items) sum += f.touch();  // stage 0: reduce
    return sum;
  });

  long expected = 0;
  for (int i = 0; i < kItems; ++i) expected += i * i + 1;
  std::printf("pipeline sum = %ld (expected %ld) — %s\n", total, expected,
              total == expected ? "OK" : "WRONG");
  std::printf("counters: %s\n", sched.counters().to_string().c_str());
  return 0;
}
