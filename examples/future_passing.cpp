// Figure 5(b): MethodB / MethodC — a future is created by one task and
// passed (moved) into another task, which touches it. Still structured
// single-touch: exactly one of the receiving threads touches the future,
// and the touch is a descendant of the creating fork's right child.
#include <cstdio>
#include <string>

#include "runtime/pool.hpp"

namespace rt = wsf::runtime;

namespace {

// MethodC(Future f) { a = f.touch(); ... }
std::string method_c(rt::Future<std::string> f) {
  return "C(" + f.touch() + ")";
}

// MethodB { Future x = ...; Future y = MethodC(x); ... }
std::string method_b() {
  auto x = rt::spawn([] { return std::string("x-value"); });
  // Pass x into a new future thread; ownership moves with it, so only the
  // receiver may touch it (the runtime enforces single-touch).
  auto y = rt::spawn(
      [x = std::move(x)]() mutable { return method_c(std::move(x)); });
  return y.touch();
}

}  // namespace

int main() {
  rt::Scheduler sched({.workers = 2});
  const std::string result = sched.run([] { return method_b(); });
  std::printf("MethodB returned: %s\n", result.c_str());

  // A chain of passes (x handed down three levels) is still single-touch.
  const int deep = sched.run([] {
    auto x = rt::spawn([] { return 40; });
    auto l1 = rt::spawn([x = std::move(x)]() mutable {
      auto l2 = rt::spawn(
          [x = std::move(x)]() mutable { return x.touch() + 1; });
      return l2.touch() + 1;
    });
    return l1.touch();
  });
  std::printf("three-level pass: %d (expected 42)\n", deep);
  return 0;
}
