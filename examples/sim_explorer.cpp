// Simulator quickstart: build a computation DAG with the builder API (or
// pick a named construction), classify it against the paper's definitions,
// run the sequential baseline and a work-stealing schedule, and report
// deviations / additional cache misses. Also exports Graphviz.
//
//   ./build/examples/sim_explorer --graph fig8 --size 3 --size2 8
//       --cache-lines 8 --procs 2 --policy parent-first --dot fig8.dot
#include <cstdio>
#include <fstream>

#include "core/classify.hpp"
#include "core/dot.hpp"
#include "graphs/registry.hpp"
#include "sched/harness.hpp"
#include "support/cli.hpp"

using namespace wsf;

int main(int argc, char** argv) {
  support::ArgParser args("sim_explorer — inspect and simulate DAGs");
  auto& name = args.add_string("graph", "fig4", "construction name");
  auto& size = args.add_int("size", 6, "primary size parameter");
  auto& size2 = args.add_int("size2", 4, "secondary size parameter");
  auto& cache = args.add_int("cache-lines", 8, "cache lines per processor");
  auto& procs = args.add_int("procs", 4, "simulated processors");
  auto& policy = args.add_string("policy", "future-first",
                                 "future-first | parent-first");
  auto& seed = args.add_int("seed", 1, "schedule seed");
  auto& stall = args.add_double("stall", 0.2, "stall probability");
  auto& dot = args.add_string("dot", "", "write Graphviz to this file");
  auto& show = args.add_bool("show-schedule", false,
                             "print per-processor execution sequences "
                             "(deviations marked with '*')");
  if (!args.parse(argc, argv)) return 0;

  graphs::RegistryParams params;
  params.size = static_cast<std::uint32_t>(size.value);
  params.size2 = static_cast<std::uint32_t>(size2.value);
  params.cache_lines = static_cast<std::size_t>(cache.value);
  params.seed = static_cast<std::uint64_t>(seed.value);
  const auto gen = graphs::make_named(name.value, params);
  std::printf("%s: %s\n", gen.name.c_str(), gen.notes.c_str());

  const auto stats = core::compute_stats(gen.graph);
  std::printf("nodes=%zu edges=%zu threads=%zu forks=%zu touches=%zu "
              "span=%u blocks=%zu\n",
              stats.nodes, stats.edges, stats.threads, stats.forks,
              stats.touches, stats.span, stats.distinct_blocks);

  const auto report = core::classify(gen.graph);
  std::printf("classification: structured=%d single-touch=%d local-touch=%d "
              "fork-join=%d def13=%d def17=%d\n",
              report.structured, report.single_touch, report.local_touch,
              report.fork_join, report.single_touch_super,
              report.local_touch_super);
  for (const auto& v : report.violations)
    std::printf("  violation: %s\n", v.c_str());

  sched::SimOptions opts;
  opts.procs = static_cast<std::uint32_t>(procs.value);
  opts.policy = core::fork_policy_from_string(policy.value);
  opts.cache_lines = static_cast<std::size_t>(cache.value);
  opts.seed = static_cast<std::uint64_t>(seed.value);
  opts.stall_prob = stall.value;
  const auto r = sched::run_experiment(gen.graph, opts);
  std::printf("\n%u-processor %s schedule (seed %lld):\n",
              opts.procs, to_string(opts.policy),
              static_cast<long long>(seed.value));
  std::printf("  sequential misses : %llu\n",
              static_cast<unsigned long long>(r.seq.misses));
  std::printf("  parallel misses   : %llu\n",
              static_cast<unsigned long long>(r.par.total_misses()));
  std::printf("  additional misses : %lld\n",
              static_cast<long long>(r.additional_misses));
  std::printf("  deviations        : %zu (touch %zu, fork-child %zu, "
              "other %zu)\n",
              r.deviations.deviations, r.deviations.touch_deviations,
              r.deviations.fork_child_deviations,
              r.deviations.other_deviations);
  std::printf("  steals            : %llu   premature touches: %llu\n",
              static_cast<unsigned long long>(r.par.steals),
              static_cast<unsigned long long>(r.par.premature_touches));
  std::printf("  rounds            : %llu   (idle %llu, declined steals "
              "%llu)\n",
              static_cast<unsigned long long>(r.par.steps),
              static_cast<unsigned long long>(r.par.idle_steps),
              static_cast<unsigned long long>(r.par.declined_steals));

  if (show.value) {
    std::printf("\nschedule ('*' marks deviations):\n%s",
                sched::format_schedule(gen.graph, r.par, r.deviations)
                    .c_str());
  }

  if (!dot.value.empty()) {
    std::ofstream out(dot.value);
    out << core::to_dot(gen.graph);
    std::printf("wrote %s\n", dot.value.c_str());
  }
  return 0;
}
