// Divide-and-conquer quicksort on the runtime — the classic fork-join
// special case of structured single-touch computations, under both spawn
// policies.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "runtime/pool.hpp"
#include "support/rng.hpp"

namespace rt = wsf::runtime;

namespace {

void qsort_par(std::vector<int>& v, std::ptrdiff_t lo, std::ptrdiff_t hi) {
  if (hi - lo < 1024) {
    std::sort(v.begin() + lo, v.begin() + hi);
    return;
  }
  const int pivot = v[lo + (hi - lo) / 2];
  const auto mid1 = std::partition(v.begin() + lo, v.begin() + hi,
                                   [&](int x) { return x < pivot; });
  const auto mid2 =
      std::partition(mid1, v.begin() + hi, [&](int x) { return x == pivot; });
  const std::ptrdiff_t m1 = mid1 - v.begin();
  const std::ptrdiff_t m2 = mid2 - v.begin();
  auto left = rt::spawn([&v, lo, m1] { qsort_par(v, lo, m1); });
  qsort_par(v, m2, hi);
  left.touch();  // join
}

}  // namespace

int main() {
  for (auto policy :
       {rt::SpawnPolicy::FutureFirst, rt::SpawnPolicy::ParentFirst}) {
    rt::RuntimeOptions opts;
    opts.workers = 4;
    opts.policy = policy;
    rt::Scheduler sched(opts);

    std::vector<int> v(1 << 17);
    wsf::support::Xoshiro256 rng(42);
    for (auto& x : v) x = static_cast<int>(rng.next() & 0xfffff);

    sched.run([&] { qsort_par(v, 0, static_cast<std::ptrdiff_t>(v.size())); });

    std::printf("[%s] sorted %zu ints: %s | %s\n", to_string(policy),
                v.size(),
                std::is_sorted(v.begin(), v.end()) ? "OK" : "WRONG",
                sched.counters().to_string().c_str());
  }
  return 0;
}
